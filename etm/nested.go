// Package etm synthesizes Extended Transaction Models from the ASSET
// primitives exposed by package ariesrh — delegate, permit and the
// standard begin/commit/abort — following §2.2 of "Delegation: Efficiently
// Rewriting History".  No ETM here touches the recovery system: each model
// is a thin composition of delegations, which is precisely the paper's
// thesis (one general mechanism, many transaction models).
//
// Provided models:
//
//   - Nested transactions (Moss): subtransactions are failure-atomic
//     against their parent; on commit a child delegates all its changes
//     upward ("inheritance is an instance of delegation").
//   - Split/Join transactions (Pu et al.): a transaction splits off
//     responsibility for part of its work into an independent transaction,
//     or two transactions join into one.
//   - Reporting transactions: a long-running transaction periodically
//     publishes its current results by delegating them to a short-lived
//     committing transaction.
//   - Co-transactions: control (and object responsibility) ping-pongs
//     between two cooperating transactions at delegation points.
//   - Joint transactions: a set of transactions coupled into one fate via
//     form-dependency, committing through a single member by delegation.
//   - Open nested transactions: subtransactions commit for real at once
//     and the parent compensates semantically on abort.
package etm

import (
	"errors"
	"fmt"

	"ariesrh"
)

// ErrSubAborted is returned by Sub when the child function failed and the
// subtransaction was rolled back.  The parent survives (failure atomicity
// of subtransactions).
var ErrSubAborted = errors.New("etm: subtransaction aborted")

// NestedTx is a node in a nested-transaction tree: the root is a
// top-level transaction; children are created with Sub.
type NestedTx struct {
	tx     *ariesrh.Tx
	parent *NestedTx
}

// BeginNested starts the root of a nested transaction.
func BeginNested(db *ariesrh.DB) (*NestedTx, error) {
	tx, err := db.Begin()
	if err != nil {
		return nil, err
	}
	return &NestedTx{tx: tx}, nil
}

// Tx returns the underlying transaction (for delegation to/from the tree).
func (n *NestedTx) Tx() *ariesrh.Tx { return n.tx }

// Read reads obj within the (sub)transaction.
func (n *NestedTx) Read(obj ariesrh.ObjectID) ([]byte, error) { return n.tx.Read(obj) }

// Update updates obj within the (sub)transaction.
func (n *NestedTx) Update(obj ariesrh.ObjectID, val []byte) error { return n.tx.Update(obj, val) }

// Sub runs fn as a subtransaction, per the paper's translation (§2.2.2):
//
//	t1 = initiate(fn); permit(self(), t1); begin(t1)
//	if (!wait(t1)) abort(self())     // here: return the error instead
//	delegate(t1, self()); commit(t1)
//
// On success the child's changes are delegated to the parent — they become
// the parent's responsibility and are made permanent only when the topmost
// root commits.  On failure the child's own changes are rolled back and
// ErrSubAborted (wrapping fn's error) is returned; the parent remains
// intact and may retry or compensate.
func (n *NestedTx) Sub(fn func(*NestedTx) error) error {
	childTx, err := n.tx.DB().Begin()
	if err != nil {
		return err
	}
	child := &NestedTx{tx: childTx, parent: n}
	// permit(self(), t1): the child may access every object the parent
	// is currently responsible for without conflicting.
	objs, err := n.tx.Objects()
	if err != nil {
		childTx.Abort()
		return err
	}
	for _, obj := range objs {
		if err := n.tx.Permit(childTx, obj); err != nil {
			// The parent is responsible for the object but holds no
			// lock (it arrived via delegation without access);
			// access stays conflict-checked for the child.
			continue
		}
	}
	if err := fn(child); err != nil {
		if abortErr := childTx.Abort(); abortErr != nil && !errors.Is(abortErr, ariesrh.ErrTxDone) {
			return fmt.Errorf("etm: rollback of subtransaction failed: %v (after %w)", abortErr, err)
		}
		return fmt.Errorf("%w: %w", ErrSubAborted, err)
	}
	// delegate(t1, self()); commit(t1): inheritance by delegation.
	if err := childTx.DelegateAll(n.tx); err != nil {
		childTx.Abort()
		return err
	}
	return childTx.Commit()
}

// Commit commits the root transaction, making the whole tree's surviving
// changes permanent.  Calling Commit on a non-root node is an error: a
// subtransaction commits by returning nil from its Sub function.
func (n *NestedTx) Commit() error {
	if n.parent != nil {
		return fmt.Errorf("etm: commit of a subtransaction; return nil from Sub instead")
	}
	return n.tx.Commit()
}

// Abort rolls back the (sub)transaction and everything it is responsible
// for, including changes inherited from committed descendants.
func (n *NestedTx) Abort() error { return n.tx.Abort() }
