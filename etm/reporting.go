package etm

import (
	"fmt"

	"ariesrh"
)

// Report publishes tx's current results on the given objects (the
// reporting-transactions model, §2.2 / Chrysanthis & Ramamritham): a
// short-lived transaction receives the objects by delegation and commits
// immediately, making the delegated updates permanent and visible even
// though tx itself is still running — and even if tx later aborts or the
// system crashes.
//
// After a Report, tx is no longer responsible for the reported updates;
// updates it performs on the same objects afterwards form a new, again
// tentative, responsibility that a later Report can publish.
func Report(tx *ariesrh.Tx, objs ...ariesrh.ObjectID) error {
	rep, err := tx.DB().Begin()
	if err != nil {
		return err
	}
	for _, obj := range objs {
		if err := tx.Delegate(rep, obj); err != nil {
			rep.Abort()
			return fmt.Errorf("etm: report of object %d: %w", obj, err)
		}
	}
	return rep.Commit()
}

// Reporter wraps a long-running transaction with periodic publishing: every
// Interval updates, the touched objects are reported.
type Reporter struct {
	tx       *ariesrh.Tx
	Interval int
	pending  map[ariesrh.ObjectID]struct{}
	count    int
}

// NewReporter wraps tx; every interval updates, Update triggers a Report
// of the objects touched since the last one.
func NewReporter(tx *ariesrh.Tx, interval int) *Reporter {
	if interval < 1 {
		interval = 1
	}
	return &Reporter{tx: tx, Interval: interval, pending: make(map[ariesrh.ObjectID]struct{})}
}

// Update updates obj through the wrapped transaction, reporting
// accumulated results every Interval updates.
func (r *Reporter) Update(obj ariesrh.ObjectID, val []byte) error {
	if err := r.tx.Update(obj, val); err != nil {
		return err
	}
	r.pending[obj] = struct{}{}
	r.count++
	if r.count%r.Interval == 0 {
		return r.Flush()
	}
	return nil
}

// Flush reports everything pending.
func (r *Reporter) Flush() error {
	if len(r.pending) == 0 {
		return nil
	}
	objs := make([]ariesrh.ObjectID, 0, len(r.pending))
	for obj := range r.pending {
		objs = append(objs, obj)
	}
	if err := Report(r.tx, objs...); err != nil {
		return err
	}
	r.pending = make(map[ariesrh.ObjectID]struct{})
	return nil
}

// Tx returns the wrapped transaction.
func (r *Reporter) Tx() *ariesrh.Tx { return r.tx }
