package etm

import (
	"errors"
	"fmt"
	"testing"

	"ariesrh"
)

// TestNestedTreeCrashMidFlight: a crash while the root is still open kills
// the whole tree, including subtransactions that had already "committed"
// (their changes were delegated to the root, which is a loser).
func TestNestedTreeCrashMidFlight(t *testing.T) {
	db := newDB(t)
	root, err := BeginNested(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Sub(func(c *NestedTx) error {
		return c.Update(1, []byte("sub-committed"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := root.Update(2, []byte("root-own")); err != nil {
		t.Fatal(err)
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	wantVal(t, db, 1, "")
	wantVal(t, db, 2, "")
}

// TestNestedTreeCrashAfterRootCommit: once the root commits, everything
// the tree produced is durable.
func TestNestedTreeCrashAfterRootCommit(t *testing.T) {
	db := newDB(t)
	root, err := BeginNested(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Sub(func(c *NestedTx) error {
		if err := c.Update(1, []byte("leaf")); err != nil {
			return err
		}
		return c.Sub(func(g *NestedTx) error {
			return g.Update(2, []byte("grandleaf"))
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := root.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	wantVal(t, db, 1, "leaf")
	wantVal(t, db, 2, "grandleaf")
}

// TestSplitCrashBetweenHalves: the committed split half survives a crash
// that kills the still-open session.
func TestSplitCrashBetweenHalves(t *testing.T) {
	db := newDB(t)
	sess, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Update(1, []byte("finished")); err != nil {
		t.Fatal(err)
	}
	if err := sess.Update(2, []byte("in-progress")); err != nil {
		t.Fatal(err)
	}
	early, err := Split(sess, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := early.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	wantVal(t, db, 1, "finished")
	wantVal(t, db, 2, "")
}

// TestCoPairCrash: everything still in flight in a co-transaction pair is
// lost with a crash, regardless of which side held control.
func TestCoPairCrash(t *testing.T) {
	db := newDB(t)
	pair, err := BeginCoPair(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := pair.Update(1, []byte("a-side")); err != nil {
		t.Fatal(err)
	}
	if err := pair.Handoff(); err != nil {
		t.Fatal(err)
	}
	if err := pair.Update(2, []byte("b-side")); err != nil {
		t.Fatal(err)
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	wantVal(t, db, 1, "")
	wantVal(t, db, 2, "")
}

// TestManyReportsUnderCrashes interleaves reports and crashes: exactly the
// reported prefix survives each time.
func TestManyReportsUnderCrashes(t *testing.T) {
	db := newDB(t)
	reported := 0
	for round := 0; round < 3; round++ {
		job, err := db.Begin()
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 4; i++ {
			obj := ariesrh.ObjectID(round*10 + i)
			if err := job.Update(obj, []byte(fmt.Sprintf("r%d-%d", round, i))); err != nil {
				t.Fatal(err)
			}
			if i <= 2 {
				if err := Report(job, obj); err != nil {
					t.Fatal(err)
				}
				reported++
			}
		}
		if err := db.Crash(); err != nil {
			t.Fatal(err)
		}
		if err := db.Recover(); err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 4; i++ {
			obj := ariesrh.ObjectID(round*10 + i)
			if i <= 2 {
				wantVal(t, db, obj, fmt.Sprintf("r%d-%d", round, i))
			} else {
				wantVal(t, db, obj, "")
			}
		}
	}
	if reported != 6 {
		t.Fatalf("reported %d", reported)
	}
}

// TestNestedSubErrorWraps: Sub's error wraps both ErrSubAborted and the
// user error, so callers can distinguish the failure cause.
func TestNestedSubErrorWraps(t *testing.T) {
	db := newDB(t)
	root, err := BeginNested(db)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err = root.Sub(func(c *NestedTx) error { return boom })
	if !errors.Is(err, ErrSubAborted) || !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	root.Abort()
}
