package etm

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"ariesrh"
)

func newDB(t *testing.T) *ariesrh.DB {
	t.Helper()
	db, err := ariesrh.Open()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func wantVal(t *testing.T, db *ariesrh.DB, obj ariesrh.ObjectID, want string) {
	t.Helper()
	v, ok, err := db.ReadCommitted(obj)
	if err != nil {
		t.Fatal(err)
	}
	if want == "" {
		if ok && len(v) > 0 {
			t.Fatalf("object %d = %q, want empty", obj, v)
		}
		return
	}
	if !ok || !bytes.Equal(v, []byte(want)) {
		t.Fatalf("object %d = %q (ok=%v), want %q", obj, v, ok, want)
	}
}

const (
	objFlight = ariesrh.ObjectID(1)
	objHotel  = ariesrh.ObjectID(2)
)

// TestNestedTripSuccess is the paper's §2.2.2 trip example: airline and
// hotel reservations as subtransactions of a trip transaction.
func TestNestedTripSuccess(t *testing.T) {
	db := newDB(t)
	trip, err := BeginNested(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := trip.Sub(func(res *NestedTx) error {
		return res.Update(objFlight, []byte("UA-0042"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := trip.Sub(func(res *NestedTx) error {
		return res.Update(objHotel, []byte("room-17"))
	}); err != nil {
		t.Fatal(err)
	}
	// Before the root commits, nothing is permanent...
	// (values are applied in place but their fate is the root's).
	if err := trip.Commit(); err != nil {
		t.Fatal(err)
	}
	wantVal(t, db, objFlight, "UA-0042")
	wantVal(t, db, objHotel, "room-17")
}

// TestNestedTripHotelFails: the hotel reservation fails, the trip is
// canceled, and the *airline* reservation — already "committed" by its
// subtransaction — must not survive, because its effects were delegated
// to the root and the root aborted.
func TestNestedTripHotelFails(t *testing.T) {
	db := newDB(t)
	trip, err := BeginNested(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := trip.Sub(func(res *NestedTx) error {
		return res.Update(objFlight, []byte("UA-0042"))
	}); err != nil {
		t.Fatal(err)
	}
	err = trip.Sub(func(res *NestedTx) error {
		if err := res.Update(objHotel, []byte("room-17")); err != nil {
			return err
		}
		return errors.New("no rooms available")
	})
	if !errors.Is(err, ErrSubAborted) {
		t.Fatalf("err = %v, want ErrSubAborted", err)
	}
	// The failed subtransaction's own changes are already rolled back.
	wantVal(t, db, objHotel, "")
	// Cancel the trip: the airline reservation dies with the root.
	if err := trip.Abort(); err != nil {
		t.Fatal(err)
	}
	wantVal(t, db, objFlight, "")
}

func TestNestedSubFailureIsIsolated(t *testing.T) {
	// Failure atomicity: an aborting subtransaction does not take the
	// parent's own updates with it.
	db := newDB(t)
	root, err := BeginNested(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Update(10, []byte("parent-data")); err != nil {
		t.Fatal(err)
	}
	err = root.Sub(func(child *NestedTx) error {
		if err := child.Update(11, []byte("child-data")); err != nil {
			return err
		}
		return errors.New("boom")
	})
	if !errors.Is(err, ErrSubAborted) {
		t.Fatalf("err = %v", err)
	}
	if err := root.Commit(); err != nil {
		t.Fatal(err)
	}
	wantVal(t, db, 10, "parent-data")
	wantVal(t, db, 11, "")
}

func TestNestedThreeLevels(t *testing.T) {
	db := newDB(t)
	root, err := BeginNested(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Sub(func(mid *NestedTx) error {
		if err := mid.Update(1, []byte("mid")); err != nil {
			return err
		}
		return mid.Sub(func(leaf *NestedTx) error {
			return leaf.Update(2, []byte("leaf"))
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := root.Commit(); err != nil {
		t.Fatal(err)
	}
	wantVal(t, db, 1, "mid")
	wantVal(t, db, 2, "leaf")
}

func TestNestedChildSeesParentData(t *testing.T) {
	// permit lets the child read the parent's uncommitted updates.
	db := newDB(t)
	root, err := BeginNested(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Update(5, []byte("visible")); err != nil {
		t.Fatal(err)
	}
	if err := root.Sub(func(child *NestedTx) error {
		v, err := child.Read(5)
		if err != nil {
			return err
		}
		if string(v) != "visible" {
			return fmt.Errorf("child read %q", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := root.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestNestedCommitOnSubRejected(t *testing.T) {
	db := newDB(t)
	root, err := BeginNested(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Sub(func(child *NestedTx) error {
		return child.Commit()
	}); err == nil {
		t.Fatal("subtransaction Commit accepted")
	}
	root.Abort()
}

func TestSplitIndependentFates(t *testing.T) {
	db := newDB(t)
	t1, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := t1.Update(1, []byte("split-off")); err != nil {
		t.Fatal(err)
	}
	if err := t1.Update(2, []byte("kept")); err != nil {
		t.Fatal(err)
	}
	t2, err := Split(t1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The two halves commit/abort independently (§2.2.1).
	if err := t1.Abort(); err != nil {
		t.Fatal(err)
	}
	wantVal(t, db, 1, "split-off") // t2's responsibility, still alive
	wantVal(t, db, 2, "")          // died with t1
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	wantVal(t, db, 1, "split-off")
}

func TestSplitOfUnownedObjectFails(t *testing.T) {
	db := newDB(t)
	t1, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Split(t1, 42); err == nil {
		t.Fatal("split of unowned object accepted")
	}
	t1.Abort()
}

func TestJoin(t *testing.T) {
	db := newDB(t)
	t1, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := t2.Update(1, []byte("joined-work")); err != nil {
		t.Fatal(err)
	}
	if err := Join(t2, t1); err != nil {
		t.Fatal(err)
	}
	if !t2.Done() {
		t.Fatal("joined transaction still live")
	}
	// t1 now owns t2's work.
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	wantVal(t, db, 1, "joined-work")
}

func TestJoinThenAbortDropsJoinedWork(t *testing.T) {
	db := newDB(t)
	t1, _ := db.Begin()
	t2, _ := db.Begin()
	if err := t2.Update(1, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := Join(t2, t1); err != nil {
		t.Fatal(err)
	}
	if err := t1.Abort(); err != nil {
		t.Fatal(err)
	}
	wantVal(t, db, 1, "")
}

// TestReportingSurvivesCrash demonstrates delegation's control over
// recovery: results reported by a still-running transaction survive a
// crash that kills the transaction itself.
func TestReportingSurvivesCrash(t *testing.T) {
	db := newDB(t)
	long, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := long.Update(1, []byte("progress-1")); err != nil {
		t.Fatal(err)
	}
	if err := Report(long, 1); err != nil {
		t.Fatal(err)
	}
	if err := long.Update(2, []byte("unreported")); err != nil {
		t.Fatal(err)
	}
	// Crash: the long transaction is a loser...
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	// ...but its reported result is permanent.
	wantVal(t, db, 1, "progress-1")
	wantVal(t, db, 2, "")
}

func TestReporterFlushesEveryInterval(t *testing.T) {
	db := newDB(t)
	long, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	r := NewReporter(long, 3)
	for i := 1; i <= 7; i++ {
		if err := r.Update(ariesrh.ObjectID(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Updates 1..6 were reported (two flushes); 7 is pending.
	wantVal(t, db, 3, "v3")
	wantVal(t, db, 6, "v6")
	if err := long.Abort(); err != nil {
		t.Fatal(err)
	}
	wantVal(t, db, 6, "v6") // reported: survives the abort
	wantVal(t, db, 7, "")   // pending: dies with the transaction
}

func TestCoTransactionsPingPong(t *testing.T) {
	db := newDB(t)
	pair, err := BeginCoPair(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := pair.Update(1, []byte("from-a")); err != nil {
		t.Fatal(err)
	}
	a := pair.Active()
	if err := pair.Handoff(); err != nil {
		t.Fatal(err)
	}
	if pair.Active() == a {
		t.Fatal("control did not pass")
	}
	// B reads A's delegated work and builds on it.
	v, err := pair.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "from-a" {
		t.Fatalf("B sees %q", v)
	}
	if err := pair.Update(2, []byte("from-b")); err != nil {
		t.Fatal(err)
	}
	if err := pair.Handoff(); err != nil { // everything back to A
		t.Fatal(err)
	}
	if err := pair.Commit(); err != nil {
		t.Fatal(err)
	}
	wantVal(t, db, 1, "from-a")
	wantVal(t, db, 2, "from-b")
}

func TestCoTransactionsAbort(t *testing.T) {
	db := newDB(t)
	pair, err := BeginCoPair(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := pair.Update(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := pair.Handoff(); err != nil {
		t.Fatal(err)
	}
	if err := pair.Abort(); err != nil {
		t.Fatal(err)
	}
	wantVal(t, db, 1, "")
}

func TestJointCommit(t *testing.T) {
	db := newDB(t)
	j, err := BeginJoint(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < j.Size(); i++ {
		if err := j.Member(i).Update(ariesrh.ObjectID(i+1), []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		wantVal(t, db, ariesrh.ObjectID(i+1), fmt.Sprintf("m%d", i))
	}
}

func TestJointAbortTakesEveryone(t *testing.T) {
	db := newDB(t)
	j, err := BeginJoint(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < j.Size(); i++ {
		if err := j.Member(i).Update(ariesrh.ObjectID(i+1), []byte("doomed")); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Abort(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		wantVal(t, db, ariesrh.ObjectID(i+1), "")
	}
}

func TestJointMemberCascade(t *testing.T) {
	// Aborting the anchor member directly cascades to the others.
	db := newDB(t)
	j, err := BeginJoint(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Member(1).Update(5, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := j.Member(0).Abort(); err != nil {
		t.Fatal(err)
	}
	wantVal(t, db, 5, "")
	// Member 1 is gone at the engine level.
	if err := j.Member(1).Update(6, []byte("x")); !errors.Is(err, ariesrh.ErrTxGone) {
		t.Fatalf("err = %v, want ErrTxGone", err)
	}
}

func TestJointTooSmall(t *testing.T) {
	db := newDB(t)
	if _, err := BeginJoint(db, 1); err == nil {
		t.Fatal("joint of one accepted")
	}
}

func TestOpenNestedCommit(t *testing.T) {
	db := newDB(t)
	on, err := BeginOpenNested(db)
	if err != nil {
		t.Fatal(err)
	}
	// A child's effect is visible immediately, before the parent ends.
	if err := on.Sub(func(c *ariesrh.Tx) error {
		return c.Update(1, []byte("open-child"))
	}, func(c *ariesrh.Tx) error {
		return c.Update(1, nil)
	}); err != nil {
		t.Fatal(err)
	}
	wantVal(t, db, 1, "open-child") // visible NOW
	if err := on.Tx().Update(2, []byte("parent-own")); err != nil {
		t.Fatal(err)
	}
	if err := on.Commit(); err != nil {
		t.Fatal(err)
	}
	wantVal(t, db, 1, "open-child")
	wantVal(t, db, 2, "parent-own")
}

func TestOpenNestedAbortCompensates(t *testing.T) {
	db := newDB(t)
	on, err := BeginOpenNested(db)
	if err != nil {
		t.Fatal(err)
	}
	// Two children: a reservation counter and a booking record.
	if err := on.Sub(func(c *ariesrh.Tx) error {
		_, err := c.Increment(10, 1) // reserve a seat
		return err
	}, func(c *ariesrh.Tx) error {
		_, err := c.Increment(10, -1) // release it
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := on.Sub(func(c *ariesrh.Tx) error {
		return c.Update(11, []byte("booked"))
	}, func(c *ariesrh.Tx) error {
		return c.Update(11, []byte("canceled"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := on.Tx().Update(12, []byte("parent-own")); err != nil {
		t.Fatal(err)
	}
	// Parent aborts: its own work rolls back physically; the children
	// are compensated semantically, in reverse order.
	if err := on.Abort(); err != nil {
		t.Fatal(err)
	}
	wantVal(t, db, 12, "")
	wantVal(t, db, 11, "canceled")
	if v, err := db.CounterValue(10); err != nil || v != 0 {
		t.Fatalf("counter = %d err=%v", v, err)
	}
}

func TestOpenNestedChildSurvivesParentCrash(t *testing.T) {
	// The open-nesting point: a committed child survives even a crash
	// that kills the parent (no compensation runs — crashes cannot run
	// sagas; that is the documented trade).
	db := newDB(t)
	on, err := BeginOpenNested(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := on.Sub(func(c *ariesrh.Tx) error {
		return c.Update(1, []byte("durable-child"))
	}, nil); err != nil {
		t.Fatal(err)
	}
	if err := on.Tx().Update(2, []byte("parent-own")); err != nil {
		t.Fatal(err)
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	wantVal(t, db, 1, "durable-child")
	wantVal(t, db, 2, "")
}

func TestOpenNestedSubFailureRollsBackChild(t *testing.T) {
	db := newDB(t)
	on, err := BeginOpenNested(db)
	if err != nil {
		t.Fatal(err)
	}
	err = on.Sub(func(c *ariesrh.Tx) error {
		if err := c.Update(1, []byte("half")); err != nil {
			return err
		}
		return errors.New("boom")
	}, nil)
	if !errors.Is(err, ErrSubAborted) {
		t.Fatalf("err = %v", err)
	}
	wantVal(t, db, 1, "")
	if err := on.Commit(); err != nil {
		t.Fatal(err)
	}
}
