package etm

import (
	"fmt"

	"ariesrh"
)

// CoPair implements co-transactions (§2.2 / Chrysanthis & Ramamritham):
// two cooperating transactions between which control passes at delegation
// points.  Exactly one side is active at a time; Handoff delegates the
// named objects (or, with no arguments, everything the active side is
// responsible for) to the peer and passes control to it.
type CoPair struct {
	a, b   *ariesrh.Tx
	active *ariesrh.Tx
}

// BeginCoPair starts both cooperating transactions; side A is active.
func BeginCoPair(db *ariesrh.DB) (*CoPair, error) {
	a, err := db.Begin()
	if err != nil {
		return nil, err
	}
	b, err := db.Begin()
	if err != nil {
		a.Abort()
		return nil, err
	}
	return &CoPair{a: a, b: b, active: a}, nil
}

// Active returns the side currently holding control.
func (c *CoPair) Active() *ariesrh.Tx { return c.active }

// peer returns the inactive side.
func (c *CoPair) peer() *ariesrh.Tx {
	if c.active == c.a {
		return c.b
	}
	return c.a
}

// Update updates obj through the active side.
func (c *CoPair) Update(obj ariesrh.ObjectID, val []byte) error {
	return c.active.Update(obj, val)
}

// Read reads obj through the active side.
func (c *CoPair) Read(obj ariesrh.ObjectID) ([]byte, error) {
	return c.active.Read(obj)
}

// Handoff delegates the given objects (all of the active side's objects
// if none are named) to the peer and passes control to it.
func (c *CoPair) Handoff(objs ...ariesrh.ObjectID) error {
	peer := c.peer()
	if len(objs) == 0 {
		if err := c.active.DelegateAll(peer); err != nil {
			return err
		}
	} else {
		for _, obj := range objs {
			if err := c.active.Delegate(peer, obj); err != nil {
				return fmt.Errorf("etm: handoff of object %d: %w", obj, err)
			}
		}
	}
	c.active = peer
	return nil
}

// Commit commits the active side (which, after a final Handoff, is
// responsible for the pair's surviving work) and retires the peer by
// aborting it — by construction the peer is responsible for nothing the
// pair wants kept.
func (c *CoPair) Commit() error {
	if err := c.active.Commit(); err != nil {
		return err
	}
	if !c.peer().Done() {
		return c.peer().Abort()
	}
	return nil
}

// Abort rolls back both sides.
func (c *CoPair) Abort() error {
	var first error
	for _, tx := range []*ariesrh.Tx{c.a, c.b} {
		if !tx.Done() {
			if err := tx.Abort(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
