package etm

import (
	"errors"
	"fmt"

	"ariesrh"
)

// Joint transactions (§1 of the paper lists them among the models
// delegation synthesizes): a set of transactions that succeed or fail as
// one.  Mutual abort dependencies couple their failures; at commit time
// every member delegates its work to a single committer, so one commit
// record seals the joint outcome.
type Joint struct {
	db      *ariesrh.DB
	members []*ariesrh.Tx
}

// BeginJoint starts n jointly-fated transactions (n ≥ 2).
func BeginJoint(db *ariesrh.DB, n int) (*Joint, error) {
	if n < 2 {
		return nil, errors.New("etm: a joint transaction needs at least two members")
	}
	j := &Joint{db: db}
	for i := 0; i < n; i++ {
		tx, err := db.Begin()
		if err != nil {
			j.Abort()
			return nil, err
		}
		j.members = append(j.members, tx)
	}
	// Mutual abort dependencies along a cycle-free chain in each
	// direction is impossible (that IS a cycle) — the dependency graph
	// forbids mutual edges.  Use a star instead: everyone abort-depends
	// on member 0, and member 0 abort-depends on nobody; Abort() below
	// aborts member 0 first so the cascade reaches everyone.
	for _, tx := range j.members[1:] {
		if err := tx.FormDependency(j.members[0], ariesrh.AbortDependency); err != nil {
			j.Abort()
			return nil, err
		}
	}
	return j, nil
}

// Member returns the i-th member transaction.
func (j *Joint) Member(i int) *ariesrh.Tx { return j.members[i] }

// Size returns the number of members.
func (j *Joint) Size() int { return len(j.members) }

// Commit seals the joint outcome: members 1..n-1 delegate everything they
// are responsible for to member 0, retire, and member 0 commits.
func (j *Joint) Commit() error {
	head := j.members[0]
	for i, tx := range j.members[1:] {
		if err := tx.DelegateAll(head); err != nil {
			return fmt.Errorf("etm: joint member %d: %w", i+1, err)
		}
		if err := tx.Commit(); err != nil {
			return fmt.Errorf("etm: joint member %d retire: %w", i+1, err)
		}
	}
	return head.Commit()
}

// Abort rolls the whole joint transaction back.  Aborting member 0 first
// cascades through the abort dependencies; stragglers (members that never
// formed their edge because construction failed midway) are aborted
// explicitly.
func (j *Joint) Abort() error {
	var first error
	if len(j.members) > 0 && !j.members[0].Done() {
		first = j.members[0].Abort()
	}
	for _, tx := range j.members[1:] {
		if tx.Done() {
			continue
		}
		err := tx.Abort()
		if err == nil || errors.Is(err, ariesrh.ErrTxDone) || errors.Is(err, ariesrh.ErrTxGone) {
			// ErrTxGone: the cascade already ended the engine
			// transaction; the handle just doesn't know.
			continue
		}
		if first == nil {
			first = err
		}
	}
	return first
}
