package etm

import (
	"errors"
	"fmt"

	"ariesrh"
)

// OpenNested implements open nested transactions (§1 of the paper lists
// them among the models delegation synthesizes): a subtransaction's
// effects become visible AND permanent as soon as the subtransaction
// commits — it delegates its work to a short-lived committing transaction,
// exactly like a Report — and the parent compensates semantically, by
// running registered compensation actions, if it later aborts.
//
// This trades isolation for concurrency, the classic open-nesting deal:
// the parent cannot physically undo a committed child, so every Sub call
// supplies the compensation that logically reverses it.
type OpenNested struct {
	db            *ariesrh.DB
	tx            *ariesrh.Tx
	compensations []func(*ariesrh.Tx) error
	done          bool
}

// BeginOpenNested starts an open nested transaction.
func BeginOpenNested(db *ariesrh.DB) (*OpenNested, error) {
	tx, err := db.Begin()
	if err != nil {
		return nil, err
	}
	return &OpenNested{db: db, tx: tx}, nil
}

// Tx returns the parent's own transaction (for direct parent-level work,
// which stays closed-nested: it commits or aborts with the parent).
func (o *OpenNested) Tx() *ariesrh.Tx { return o.tx }

// Sub runs action as an open subtransaction.  On success the
// subtransaction's effects are committed immediately (visible to everyone,
// crash-durable) and compensate is remembered; if the parent later aborts,
// the compensations run in reverse order, each as its own committing
// transaction.  On failure the subtransaction is rolled back physically
// and the error returned wrapped in ErrSubAborted.
func (o *OpenNested) Sub(action func(*ariesrh.Tx) error, compensate func(*ariesrh.Tx) error) error {
	if o.done {
		return ariesrh.ErrTxDone
	}
	child, err := o.db.Begin()
	if err != nil {
		return err
	}
	if err := action(child); err != nil {
		if abortErr := child.Abort(); abortErr != nil && !errors.Is(abortErr, ariesrh.ErrTxDone) {
			return fmt.Errorf("etm: open-nested rollback failed: %v (after %w)", abortErr, err)
		}
		return fmt.Errorf("%w: %w", ErrSubAborted, err)
	}
	if err := child.Commit(); err != nil {
		return err
	}
	if compensate != nil {
		o.compensations = append(o.compensations, compensate)
	}
	return nil
}

// Commit commits the parent's own work and discards the compensations —
// the children's effects were already permanent.
func (o *OpenNested) Commit() error {
	if o.done {
		return ariesrh.ErrTxDone
	}
	if err := o.tx.Commit(); err != nil {
		return err
	}
	o.done = true
	o.compensations = nil
	return nil
}

// Abort rolls back the parent's own work physically, then compensates the
// committed children semantically, in reverse order.  Each compensation
// runs in its own transaction; the first failure stops the chain and is
// returned (remaining compensations are NOT run — the caller owns the
// partial-compensation decision, as in any saga).
func (o *OpenNested) Abort() error {
	if o.done {
		return ariesrh.ErrTxDone
	}
	if err := o.tx.Abort(); err != nil && !errors.Is(err, ariesrh.ErrTxDone) && !errors.Is(err, ariesrh.ErrTxGone) {
		return err
	}
	o.done = true
	for i := len(o.compensations) - 1; i >= 0; i-- {
		comp, err := o.db.Begin()
		if err != nil {
			return err
		}
		if err := o.compensations[i](comp); err != nil {
			comp.Abort()
			return fmt.Errorf("etm: compensation %d failed: %w", i, err)
		}
		if err := comp.Commit(); err != nil {
			return fmt.Errorf("etm: compensation %d commit: %w", i, err)
		}
	}
	o.compensations = nil
	return nil
}
