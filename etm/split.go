package etm

import (
	"fmt"

	"ariesrh"
)

// Split implements the split-transaction model (§2.2.1; Pu, Kaiser &
// Hutchinson): the splitting transaction tx delegates its operations on
// the given objects to a freshly initiated transaction, which is
// returned.  The two transactions can then commit or abort independently.
//
//	t2 = initiate(f); delegate(self(), t2, ob_set); begin(t2)
func Split(tx *ariesrh.Tx, objs ...ariesrh.ObjectID) (*ariesrh.Tx, error) {
	t2, err := tx.DB().Begin()
	if err != nil {
		return nil, err
	}
	for _, obj := range objs {
		if err := tx.Delegate(t2, obj); err != nil {
			t2.Abort()
			return nil, fmt.Errorf("etm: split of object %d: %w", obj, err)
		}
	}
	return t2, nil
}

// Join merges from into to (§2.2.1): from delegates *all* objects it is
// responsible for to to and then terminates.  After the join, to alone
// decides the fate of from's work.
//
//	wait(t2); delegate(t2, t1)
func Join(from, to *ariesrh.Tx) error {
	if err := from.DelegateAll(to); err != nil {
		return err
	}
	// With an empty Op_List, from's commit affects nothing; it simply
	// retires the transaction.
	return from.Commit()
}
