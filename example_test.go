package ariesrh_test

import (
	"fmt"

	"ariesrh"
	"ariesrh/etm"
)

// The worker/coordinator pattern: delegation decouples an update's fate
// from the transaction that made it.
func Example() {
	db, _ := ariesrh.Open()
	defer db.Close()

	worker, _ := db.Begin()
	coordinator, _ := db.Begin()
	_ = worker.Update(1, []byte("tentative result"))
	_ = worker.Delegate(coordinator, 1) // rewrite history: now it's the coordinator's
	_ = worker.Abort()                  // the delegated update survives
	_ = coordinator.Commit()            // ...and becomes permanent

	v, _, _ := db.ReadCommitted(1)
	fmt.Printf("%s\n", v)
	// Output: tentative result
}

// Delegation seen through the paper's ResponsibleTr lens: the log record
// still carries the invoker's ID, but responsibility has moved.
func ExampleDB_ResponsibleFor() {
	db, _ := ariesrh.Open()
	defer db.Close()

	t1, _ := db.Begin()
	t2, _ := db.Begin()
	_ = t1.Update(7, []byte("x")) // logged at LSN 3 as update[t1, 7]
	owner, _ := db.ResponsibleFor(3)
	fmt.Println(owner == t1.ID())
	_ = t1.Delegate(t2, 7)
	owner, _ = db.ResponsibleFor(3)
	fmt.Println(owner == t2.ID())
	// Output:
	// true
	// true
}

// Split transactions (§2.2.1): carve finished work out of an open-ended
// session and commit it independently.
func ExampleSplit() {
	db, _ := ariesrh.Open()
	defer db.Close()

	session, _ := db.Begin()
	_ = session.Update(1, []byte("done"))
	_ = session.Update(2, []byte("draft"))

	finished, _ := etm.Split(session, 1)
	_ = finished.Commit() // object 1 is now permanent
	_ = session.Abort()   // object 2 dies with the session

	v1, _, _ := db.ReadCommitted(1)
	_, ok2, _ := db.ReadCommitted(2)
	fmt.Printf("%s %v\n", v1, ok2)
	// Output: done false
}

// Commutative counters: concurrent increments never block each other, and
// an abort removes exactly its own deltas.
func ExampleTx_Increment() {
	db, _ := ariesrh.Open()
	defer db.Close()

	t1, _ := db.Begin()
	t2, _ := db.Begin()
	_, _ = t1.Increment(1, 10)
	_, _ = t2.Increment(1, 100) // compatible increment locks: no waiting
	_ = t1.Abort()              // logical undo: only -10
	_ = t2.Commit()

	v, _ := db.CounterValue(1)
	fmt.Println(v)
	// Output: 100
}

// Savepoints roll back only what the transaction is still responsible
// for: delegated-away work stands.
func ExampleTx_RollbackTo() {
	db, _ := ariesrh.Open()
	defer db.Close()

	tx, _ := db.Begin()
	keeper, _ := db.Begin()
	sp, _ := tx.Savepoint()
	_ = tx.Update(1, []byte("delegated"))
	_ = tx.Delegate(keeper, 1) // no longer tx's responsibility
	_ = tx.Update(2, []byte("scratch"))
	_ = tx.RollbackTo(sp) // undoes object 2 only
	_ = tx.Commit()
	_ = keeper.Commit()

	v1, _, _ := db.ReadCommitted(1)
	_, ok2, _ := db.ReadCommitted(2)
	fmt.Printf("%s %v\n", v1, ok2)
	// Output: delegated false
}
