// Command rhrecover runs a randomized delegation workload against the
// ARIES/RH engine, crashes it at a chosen point, recovers, verifies the
// result against the independent oracle, and prints what recovery did.
//
// Usage:
//
//	rhrecover [-seed N] [-steps N] [-deleg RATE] [-ckpt] [-crashes N]
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"ariesrh/internal/core"
	"ariesrh/internal/sim"
	"ariesrh/internal/wal"
)

func main() {
	seed := flag.Int64("seed", 1, "workload seed")
	steps := flag.Int("steps", 2000, "history length")
	deleg := flag.Float64("deleg", 0.15, "delegation rate")
	ckpt := flag.Bool("ckpt", true, "take a fuzzy checkpoint mid-run")
	crashes := flag.Int("crashes", 1, "number of crash/recover cycles (tests CLR idempotency)")
	failpoint := flag.Int("failpoint", 0, "inject a second crash after N CLRs of the first recovery's backward pass")
	metrics := flag.Bool("metrics", false, "print the engine metrics snapshot and the last recovery trace")
	flag.Parse()

	cfg := sim.Config{
		Seed:           *seed,
		Steps:          *steps,
		Objects:        *steps / 8,
		MaxActive:      8,
		DelegationRate: *deleg,
		TerminateRate:  0.10,
		AbortFraction:  0.3,
	}
	trace := sim.Generate(cfg)
	fmt.Printf("history: %d actions (seed %d, delegation rate %.2f)\n", len(trace), *seed, *deleg)

	engine, err := core.New(core.Options{PoolSize: 256})
	if err != nil {
		log.Fatal(err)
	}
	target := sim.CoreTarget{Engine: engine}
	rep := sim.NewReplayer(target, trace)
	oracle := sim.NewOracle()
	for _, a := range trace {
		if err := oracle.Apply(a); err != nil {
			log.Fatal(err)
		}
	}

	if *ckpt {
		if err := rep.RunTo(len(trace) / 2); err != nil {
			log.Fatal(err)
		}
		if err := engine.Checkpoint(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fuzzy checkpoint at action %d\n", len(trace)/2)
	}
	if err := rep.RunTo(-1); err != nil {
		log.Fatal(err)
	}
	losers := rep.LiveSlots()
	fmt.Printf("crash with %d transactions in flight\n", len(losers))

	before := engine.Stats()
	if *failpoint > 0 {
		if err := engine.Log().Flush(engine.Log().Head()); err != nil {
			log.Fatal(err)
		}
		if err := engine.Crash(); err != nil {
			log.Fatal(err)
		}
		engine.SetRecoveryFailpoint(*failpoint)
		err := engine.Recover()
		switch {
		case err == nil:
			fmt.Printf("failpoint %d never fired (fewer CLRs needed); recovery completed"+"\n", *failpoint)
		case errors.Is(err, core.ErrInjectedRecoveryFailure):
			fmt.Printf("injected crash after %d CLRs of the backward pass; recovering again"+"\n", *failpoint)
			if err := engine.Crash(); err != nil {
				log.Fatal(err)
			}
			if err := engine.Recover(); err != nil {
				log.Fatal(err)
			}
		default:
			log.Fatal(err)
		}
	}
	for i := 0; i < *crashes; i++ {
		if err := rep.CrashRecover(); err != nil {
			log.Fatal(err)
		}
	}
	s := engine.Stats()
	fmt.Printf("recovery: %d winners, %d losers\n", s.RecWinners, s.RecLosers)
	fmt.Printf("  forward pass : %d records scanned, %d changes redone\n",
		s.RecForwardRecords-before.RecForwardRecords, s.RecRedone-before.RecRedone)
	fmt.Printf("  backward pass: %d positions visited, %d skipped between clusters, %d CLRs written\n",
		s.RecBackwardVisited-before.RecBackwardVisited,
		s.RecBackwardSkipped-before.RecBackwardSkipped,
		s.RecCLRs-before.RecCLRs)

	if *metrics {
		tr := engine.LastRecoveryTrace()
		fmt.Printf("last recovery trace: forward %v (%d records, %d redone) + backward %v (%d visited, %d skipped, %d clusters, %d CLRs) = %v\n",
			tr.ForwardDur.Round(time.Microsecond), tr.ForwardRecords, tr.Redone,
			tr.BackwardDur.Round(time.Microsecond), tr.BackwardVisited, tr.BackwardSkipped, tr.Clusters, tr.CLRs,
			tr.TotalDur.Round(time.Microsecond))
		fmt.Println("metrics snapshot:")
		for _, line := range strings.Split(strings.TrimRight(engine.Metrics().Format(), "\n"), "\n") {
			fmt.Printf("  %s\n", line)
		}
	}

	oracle.CrashRecover(losers)
	mismatches := 0
	for obj := wal.ObjectID(1); obj <= wal.ObjectID(cfg.Objects); obj++ {
		want, wantOK := oracle.Value(obj)
		got, gotOK, err := engine.ReadObject(obj)
		if err != nil {
			log.Fatal(err)
		}
		gotPresent := gotOK && len(got) > 0
		if wantOK != gotPresent || (wantOK && !bytes.Equal(want, got)) {
			mismatches++
			fmt.Printf("  MISMATCH object %d: engine=%q oracle=%q\n", obj, got, want)
		}
	}
	if mismatches == 0 {
		fmt.Printf("verified: all %d objects match the independent oracle — "+
			"loser updates undone, winner updates (incl. delegated ones) preserved\n", cfg.Objects)
	} else {
		log.Fatalf("%d mismatches", mismatches)
	}
}
