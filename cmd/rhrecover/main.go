// Command rhrecover runs a randomized delegation workload against the
// ARIES/RH engine, crashes it at a chosen point, recovers, verifies the
// result against the independent oracle, and prints what recovery did.
//
// Usage:
//
//	rhrecover [-seed N] [-steps N] [-deleg RATE] [-ckpt] [-crashes N] [-parallel]
//
// With -parallel the engine recovers through the instant-restart
// pipeline: Recover returns with redo and undo still in flight, the tool
// serves a read mid-recovery (on-demand redo of just that object's
// chain), shows a write being rejected with ErrRecovering, and only then
// waits for the pipeline to drain.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"ariesrh/internal/core"
	"ariesrh/internal/sim"
	"ariesrh/internal/wal"
)

func main() {
	seed := flag.Int64("seed", 1, "workload seed")
	steps := flag.Int("steps", 2000, "history length")
	deleg := flag.Float64("deleg", 0.15, "delegation rate")
	ckpt := flag.Bool("ckpt", true, "take a fuzzy checkpoint mid-run")
	crashes := flag.Int("crashes", 1, "number of crash/recover cycles (tests CLR idempotency)")
	failpoint := flag.Int("failpoint", 0, "inject a second crash after N CLRs of the first recovery's backward pass")
	metrics := flag.Bool("metrics", false, "print the engine metrics snapshot and the last recovery trace")
	parallel := flag.Bool("parallel", false, "recover through the instant-restart pipeline and serve a read mid-recovery")
	flag.Parse()

	cfg := sim.Config{
		Seed:           *seed,
		Steps:          *steps,
		Objects:        *steps / 8,
		MaxActive:      8,
		DelegationRate: *deleg,
		TerminateRate:  0.10,
		AbortFraction:  0.3,
	}
	trace := sim.Generate(cfg)
	fmt.Printf("history: %d actions (seed %d, delegation rate %.2f)\n", len(trace), *seed, *deleg)

	engine, err := core.New(core.Options{PoolSize: 256, ParallelRecovery: *parallel})
	if err != nil {
		log.Fatal(err)
	}
	target := sim.CoreTarget{Engine: engine}
	rep := sim.NewReplayer(target, trace)
	oracle := sim.NewOracle()
	for _, a := range trace {
		if err := oracle.Apply(a); err != nil {
			log.Fatal(err)
		}
	}

	if *ckpt {
		if err := rep.RunTo(len(trace) / 2); err != nil {
			log.Fatal(err)
		}
		if err := engine.Checkpoint(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fuzzy checkpoint at action %d\n", len(trace)/2)
	}
	if err := rep.RunTo(-1); err != nil {
		log.Fatal(err)
	}
	losers := rep.LiveSlots()
	fmt.Printf("crash with %d transactions in flight\n", len(losers))

	before := engine.Stats()
	if *failpoint > 0 {
		if err := engine.Log().Flush(engine.Log().Head()); err != nil {
			log.Fatal(err)
		}
		if err := engine.Crash(); err != nil {
			log.Fatal(err)
		}
		engine.SetRecoveryFailpoint(*failpoint)
		err := engine.Recover()
		switch {
		case err == nil:
			fmt.Printf("failpoint %d never fired (fewer CLRs needed); recovery completed"+"\n", *failpoint)
		case errors.Is(err, core.ErrInjectedRecoveryFailure):
			fmt.Printf("injected crash after %d CLRs of the backward pass; recovering again"+"\n", *failpoint)
			if err := engine.Crash(); err != nil {
				log.Fatal(err)
			}
			if err := engine.Recover(); err != nil {
				log.Fatal(err)
			}
		default:
			log.Fatal(err)
		}
	}
	for i := 0; i < *crashes; i++ {
		if !*parallel {
			if err := rep.CrashRecover(); err != nil {
				log.Fatal(err)
			}
			continue
		}
		// Pipelined recovery: demonstrate the recovering-but-readable
		// window on the first cycle.  The hold keeps the pipeline from
		// flipping the engine writable until we have shown both sides of
		// the contract; all recovery work still completes under it.
		if err := engine.Log().Flush(engine.Log().Head()); err != nil {
			log.Fatal(err)
		}
		if err := engine.Crash(); err != nil {
			log.Fatal(err)
		}
		var hold chan struct{}
		if i == 0 {
			hold = make(chan struct{})
			engine.SetRecoveryHold(hold)
		}
		start := time.Now()
		if err := engine.Recover(); err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			_, ok, err := engine.ReadObject(1)
			if err != nil {
				log.Fatal(err)
			}
			ttfr := time.Since(start)
			fmt.Printf("pipeline recovery in flight (engine state: %s)\n", engine.Health().State)
			fmt.Printf("  read of object 1 served after %v (present=%v; on-demand redo of its chain only)\n",
				ttfr.Round(time.Microsecond), ok)
			if _, err := engine.Begin(); errors.Is(err, core.ErrRecovering) {
				fmt.Printf("  write rejected mid-recovery: %v\n", err)
			} else {
				log.Fatalf("expected ErrRecovering for a mid-recovery Begin, got %v", err)
			}
			close(hold)
		}
		if err := engine.WaitRecovered(); err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("  pipeline drained after %v; engine %s, writes accepted\n",
				time.Since(start).Round(time.Microsecond), engine.Health().State)
		}
	}
	s := engine.Stats()
	fmt.Printf("recovery: %d winners, %d losers\n", s.RecWinners, s.RecLosers)
	fmt.Printf("  forward pass : %d records scanned, %d changes redone\n",
		s.RecForwardRecords-before.RecForwardRecords, s.RecRedone-before.RecRedone)
	fmt.Printf("  backward pass: %d positions visited, %d skipped between clusters, %d CLRs written\n",
		s.RecBackwardVisited-before.RecBackwardVisited,
		s.RecBackwardSkipped-before.RecBackwardSkipped,
		s.RecCLRs-before.RecCLRs)

	if *metrics {
		tr := engine.LastRecoveryTrace()
		mode := "sequential"
		if tr.Parallel {
			mode = fmt.Sprintf("pipeline over %d segments, %d on-demand reads", tr.Segments, tr.OnDemandReads)
		}
		fmt.Printf("last recovery trace (%s): %d winners, %d losers, %v total\n",
			mode, tr.Winners, tr.Losers, tr.TotalDur.Round(time.Microsecond))
		for _, st := range tr.Stages {
			fmt.Printf("  stage %-8s %10v  %d units\n", st.Name, st.Dur.Round(time.Microsecond), st.Units)
		}
		fmt.Printf("  forward: %d records scanned, %d redone; backward: %d visited, %d skipped, %d clusters, %d CLRs\n",
			tr.ForwardRecords, tr.Redone,
			tr.BackwardVisited, tr.BackwardSkipped, tr.Clusters, tr.CLRs)
		fmt.Println("metrics snapshot:")
		for _, line := range strings.Split(strings.TrimRight(engine.Metrics().Format(), "\n"), "\n") {
			fmt.Printf("  %s\n", line)
		}
	}

	oracle.CrashRecover(losers)
	mismatches := 0
	for obj := wal.ObjectID(1); obj <= wal.ObjectID(cfg.Objects); obj++ {
		want, wantOK := oracle.Value(obj)
		got, gotOK, err := engine.ReadObject(obj)
		if err != nil {
			log.Fatal(err)
		}
		gotPresent := gotOK && len(got) > 0
		if wantOK != gotPresent || (wantOK && !bytes.Equal(want, got)) {
			mismatches++
			fmt.Printf("  MISMATCH object %d: engine=%q oracle=%q\n", obj, got, want)
		}
	}
	if mismatches == 0 {
		fmt.Printf("verified: all %d objects match the independent oracle — "+
			"loser updates undone, winner updates (incl. delegated ones) preserved\n", cfg.Objects)
	} else {
		log.Fatalf("%d mismatches", mismatches)
	}
}
