// Command rhstandby runs log-shipping replication over TCP: a primary
// serving its WAL to a hot standby that continuously replays it —
// updates and delegations landing in live scopes — and can be promoted
// at any moment, promotion being nothing but recovery's backward pass.
//
// Three modes:
//
//	rhstandby -listen :7070 -dir ./primary -writes 200
//	    Open (or create) a primary at -dir, attach a replica feed, and
//	    serve the log to one standby at a time, re-accepting after
//	    disconnects.  A background workload commits -writes delegation
//	    transactions so there is something to ship.
//
//	rhstandby -connect host:7070 -dir ./standby
//	    Open a standby at -dir (typically a directory restored from the
//	    primary's Backup; empty -dir streams from LSN 1) and follow,
//	    reconnecting on failure, printing health once a second.  On
//	    SIGINT/SIGTERM the standby is promoted before exit.
//
//	rhstandby -demo
//	    The full failover story end to end in one process, over real
//	    TCP on localhost: bootstrap backup, stream, crash the primary
//	    mid-transaction, promote the standby, verify winners survived
//	    and the in-flight loser did not.  Exits non-zero on any
//	    divergence; `make standby-demo` runs this.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"ariesrh"
)

func main() {
	var (
		listen   = flag.String("listen", "", "primary mode: address to serve the log on")
		connect  = flag.String("connect", "", "standby mode: primary address to follow")
		dir      = flag.String("dir", "", "database directory (primary) or restored backup (standby)")
		writes   = flag.Int("writes", 200, "primary mode: background transactions to commit")
		interval = flag.Duration("interval", 20*time.Millisecond, "primary mode: delay between background commits")
		demo     = flag.Bool("demo", false, "run the end-to-end failover demo on localhost")
	)
	flag.Parse()

	switch {
	case *demo:
		if err := runDemo(); err != nil {
			log.Fatalf("demo: %v", err)
		}
	case *listen != "":
		if err := runPrimary(*listen, *dir, *writes, *interval); err != nil {
			log.Fatalf("primary: %v", err)
		}
	case *connect != "":
		if err := runStandby(*connect, *dir); err != nil {
			log.Fatalf("standby: %v", err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runPrimary serves the log on addr while a background workload commits
// delegation transactions.
func runPrimary(addr, dir string, writes int, interval time.Duration) error {
	var opts ariesrh.Options
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		opts.Dir = dir
	}
	db, err := ariesrh.Open(opts)
	if err != nil {
		return err
	}
	defer db.Close()
	feed, err := db.AttachReplica()
	if err != nil {
		return err
	}
	defer feed.Detach()

	go workload(db, writes, interval)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	log.Printf("primary: serving log on %s (dir %q)", ln.Addr(), dir)
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		log.Printf("primary: standby connected from %s", conn.RemoteAddr())
		err = feed.Serve(conn)
		conn.Close()
		if errors.Is(err, ariesrh.ErrReplicaDetached) {
			return nil
		}
		log.Printf("primary: standby disconnected (%v); acked through LSN %d", err, feed.AckedLSN())
	}
}

// workload commits n two-transaction delegation rounds: the invoker
// updates, delegates to a sibling, and the sibling decides the fate.
func workload(db *ariesrh.DB, n int, interval time.Duration) {
	for i := 0; i < n; i++ {
		tor, err := db.Begin()
		if err != nil {
			log.Printf("primary workload: %v", err)
			return
		}
		tee, err := db.Begin()
		if err != nil {
			log.Printf("primary workload: %v", err)
			return
		}
		obj := ariesrh.ObjectID(1 + i%64)
		step := func(err error) bool {
			if err != nil {
				log.Printf("primary workload: %v", err)
			}
			return err == nil
		}
		if !step(tor.Update(obj, []byte(fmt.Sprintf("v%d", i)))) ||
			!step(tor.Delegate(tee, obj)) ||
			!step(tee.Commit()) ||
			!step(tor.Commit()) {
			return
		}
		time.Sleep(interval)
	}
	log.Printf("primary: workload done (%d rounds)", n)
}

// runStandby follows addr, reconnecting on failure, and promotes on
// SIGINT/SIGTERM.
func runStandby(addr, dir string) error {
	sb, err := ariesrh.OpenStandby(ariesrh.StandbyOptions{Dir: dir})
	if err != nil {
		return err
	}
	log.Printf("standby: opened at replayed LSN %d (dir %q)", sb.ReplayedLSN(), dir)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	followErr := make(chan error, 1)
	go func() {
		for {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				time.Sleep(time.Second)
				continue
			}
			err = sb.Follow(conn)
			conn.Close()
			if errors.Is(err, ariesrh.ErrSnapshotNeeded) {
				followErr <- err
				return
			}
			log.Printf("standby: stream lost (%v); reconnecting", err)
			time.Sleep(time.Second)
		}
	}()

	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			h := sb.Health()
			log.Printf("standby: %s replayed=%d durable=%d primary=%d lag=%d",
				h.State, h.ReplayedLSN, h.DurableLSN, h.PrimaryLSN, h.LagRecords)
		case err := <-followErr:
			return err
		case <-stop:
			log.Printf("standby: promoting at replayed LSN %d", sb.ReplayedLSN())
			db, err := sb.Promote()
			if err != nil {
				return err
			}
			log.Printf("standby: promoted; now a writable primary")
			return db.Close()
		}
	}
}

// runDemo is the scripted failover: everything the README quickstart
// promises, checked, over real TCP.
func runDemo() error {
	root, err := os.MkdirTemp("", "rhstandby-demo-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)
	primaryDir := filepath.Join(root, "primary")
	standbyDir := filepath.Join(root, "standby")
	if err := os.MkdirAll(primaryDir, 0o755); err != nil {
		return err
	}

	db, err := ariesrh.Open(ariesrh.Options{Dir: primaryDir})
	if err != nil {
		return err
	}
	// Pre-backup history: a delegated update whose delegatee commits.
	tor, _ := db.Begin()
	tee, _ := db.Begin()
	if err := tor.Update(1, []byte("pre-backup")); err != nil {
		return err
	}
	if err := tor.Delegate(tee, 1); err != nil {
		return err
	}
	if err := tee.Commit(); err != nil {
		return err
	}
	if err := tor.Commit(); err != nil {
		return err
	}

	// Attach BEFORE the backup: the retention pin must cover the gap.
	feed, err := db.AttachReplica()
	if err != nil {
		return err
	}
	if err := db.Backup(standbyDir); err != nil {
		return err
	}
	log.Printf("demo: backup taken at LSN %d", db.Engine().Log().Head())

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	serveDone := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			serveDone <- err
			return
		}
		serveDone <- feed.Serve(conn)
	}()

	sb, err := ariesrh.OpenStandby(ariesrh.StandbyOptions{Dir: standbyDir})
	if err != nil {
		return err
	}
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return err
	}
	followDone := make(chan error, 1)
	go func() { followDone <- sb.Follow(conn) }()

	// Post-backup traffic only the stream can deliver — and one
	// transaction left in flight when the "outage" hits.
	for i := 0; i < 50; i++ {
		tx, err := db.Begin()
		if err != nil {
			return err
		}
		if err := tx.Update(ariesrh.ObjectID(2+i%16), []byte(fmt.Sprintf("streamed-%d", i))); err != nil {
			return err
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	loser, _ := db.Begin()
	if err := loser.Update(99, []byte("in-flight-at-crash")); err != nil {
		return err
	}
	if err := db.Engine().Log().Flush(db.Engine().Log().Head()); err != nil {
		return err
	}
	target := uint64(db.Engine().Log().FlushedLSN())
	deadline := time.Now().Add(10 * time.Second)
	for sb.ReplayedLSN() < target || feed.AckedLSN() < target {
		if time.Now().After(deadline) {
			return fmt.Errorf("standby stuck at %d (acked %d), want %d",
				sb.ReplayedLSN(), feed.AckedLSN(), target)
		}
		time.Sleep(time.Millisecond)
	}
	h := sb.Health()
	snap := db.Metrics()
	log.Printf("demo: standby caught up: replayed=%d lag=%d; primary shipped %d records / %d bytes",
		h.ReplayedLSN, h.LagRecords, snap.Counter("repl.shipped_records"), snap.Counter("repl.shipped_bytes"))

	// The outage: sever the stream, promote the standby.
	conn.Close()
	<-serveDone
	<-followDone
	feed.Detach()
	promoted, err := sb.Promote()
	if err != nil {
		return err
	}
	log.Printf("demo: promoted at LSN %d", target)

	if v, ok, err := promoted.ReadCommitted(1); err != nil || !ok || string(v) != "pre-backup" {
		return fmt.Errorf("pre-backup history lost: %q %v %v", v, ok, err)
	}
	if v, ok, err := promoted.ReadCommitted(2); err != nil || !ok {
		return fmt.Errorf("streamed history lost: %q %v %v", v, ok, err)
	}
	if _, ok, _ := promoted.ReadCommitted(99); ok {
		return fmt.Errorf("in-flight loser survived promotion")
	}
	tx, err := promoted.Begin()
	if err != nil {
		return err
	}
	if err := tx.Update(100, []byte("new-epoch")); err != nil {
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	if err := promoted.Close(); err != nil {
		return err
	}
	db.Close()
	log.Printf("demo: OK — winners survived, loser undone, promoted primary accepts writes")
	return nil
}
