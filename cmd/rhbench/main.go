// Command rhbench regenerates the experiment tables of EXPERIMENTS.md: one
// experiment per efficiency claim of the paper (§3.2, §4.2, §3.7, §2.2),
// comparing ARIES/RH against conventional ARIES, the eager/lazy rewriting
// baselines, and the EOS-style NO-UNDO/REDO engine.
//
// Usage:
//
//	rhbench                              # run everything
//	rhbench -exp e3                      # run one experiment
//	rhbench -quick                       # smaller sizes (CI-friendly)
//	rhbench -exp e8 -json BENCH_E8.json  # machine-readable output
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"ariesrh/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: e1..e15, a1, or all")
	quick := flag.Bool("quick", false, "use smaller workload sizes")
	shards := flag.Int("shards", 0, "e15: sweep shard counts {1, N} instead of the default {1, 2, 4, 8}")
	jsonPath := flag.String("json", "", "also write the tables as a JSON array to this file")
	flag.Parse()

	scale := 1
	if *quick {
		scale = 4
	}

	runs := []struct {
		id  string
		run func() (*bench.Table, error)
	}{
		{"e1", func() (*bench.Table, error) {
			return bench.E1NoDelegationOverhead(400/scale, 16, 3)
		}},
		{"e2", func() (*bench.Table, error) {
			sizes := []int{1, 4, 16, 64, 256, 1024}
			if *quick {
				sizes = []int{1, 16, 256}
			}
			return bench.E2DelegationLinearity(sizes, 3)
		}},
		{"e3", func() (*bench.Table, error) {
			return bench.E3RecoveryVsDelegationRate(6000/scale, []float64{0, 0.05, 0.10, 0.20, 0.40})
		}},
		{"e4", func() (*bench.Table, error) {
			lengths := []int{1000, 4000, 16000, 64000}
			if *quick {
				lengths = []int{1000, 8000}
			}
			return bench.E4EagerSweepVsLogLength(lengths)
		}},
		{"e5", func() (*bench.Table, error) {
			return bench.E5EOS(400/scale, 16, 4)
		}},
		{"e6", func() (*bench.Table, error) {
			return bench.E6ETMMacro(2000 / scale)
		}},
		{"a1", func() (*bench.Table, error) {
			return bench.A1ClusterSweepAblation(6000/scale, []float64{0, 0.10, 0.40})
		}},
		{"e9", func() (*bench.Table, error) {
			txns, updates := 200, 8
			if *quick {
				txns = 50
			}
			return bench.E9MetricsInvariants(txns, updates, 64)
		}},
		{"e10", func() (*bench.Table, error) {
			seeds := []int64{1, 2, 3}
			steps, maxBoundaries := 1200, 0
			if *quick {
				seeds = []int64{1}
				steps, maxBoundaries = 600, 80
			}
			return bench.E10Torture(seeds, steps, maxBoundaries)
		}},
		{"e8", func() (*bench.Table, error) {
			// No 2-committer point: two workers pipeline-alternate behind
			// the device (each sync covers exactly one commit record), so
			// the curve only starts moving at 4 committers.
			committers := []int{1, 4, 8, 16, 32, 64}
			txnsPer, updatesPer, delay := 48, 4, 200*time.Microsecond
			if *quick {
				committers = []int{1, 4, 16, 64}
				txnsPer, delay = 24, 100*time.Microsecond
			}
			return bench.E8GroupCommit(committers, txnsPer, updatesPer, delay)
		}},
		{"e11", func() (*bench.Table, error) {
			committers := []int{1, 8, 32}
			txnsPer, updatesPer, delay := 48, 4, 200*time.Microsecond
			if *quick {
				committers = []int{1, 16}
				txnsPer, delay = 24, 100*time.Microsecond
			}
			return bench.E11ReplicationLag(committers, txnsPer, updatesPer, delay)
		}},
		{"e12", func() (*bench.Table, error) {
			// Contended committers over a shared hot set: the cell pair at
			// each count isolates what early lock release buys.
			committers := []int{1, 4, 8, 16, 32, 64}
			txnsPer, updatesPer, hot, delay := 32, 2, 12, 200*time.Microsecond
			if *quick {
				committers = []int{1, 8, 64}
				txnsPer, delay = 16, 100*time.Microsecond
			}
			return bench.E12EarlyLockRelease(committers, txnsPer, updatesPer, hot, delay)
		}},
		{"e13", func() (*bench.Table, error) {
			// Fixed prefix dropped from growing logs isolates archive cost
			// from retained length; the windowed cell bounds the footprint;
			// the crash sweep covers the rotation/archive maintenance paths.
			lengths := []int{8192, 32768, 131072}
			rounds, maxBoundaries := 80, 0
			if *quick {
				lengths = []int{4096, 16384, 65536}
				rounds, maxBoundaries = 40, 60
			}
			return bench.E13ArchiveCost(lengths, 2048, 1024, 4096, rounds, maxBoundaries)
		}},
		{"e14", func() (*bench.Table, error) {
			// Log length grows via the object count at a fixed chain
			// length per object, so the probe's on-demand redo is the
			// same work at every cell and only the replay volume moves.
			lengths := []int{8192, 32768, 131072}
			if *quick {
				lengths = []int{4096, 16384, 65536}
			}
			return bench.E14InstantRestart(lengths, 8, 16)
		}},
		{"e15", func() (*bench.Table, error) {
			// 64 committers against 1/2/4/8 shards: with group commit
			// off the device is the bottleneck, so throughput tracks the
			// number of independent per-shard force channels.
			counts := []int{1, 2, 4, 8}
			committers, txnsPer, updatesPer, delay := 64, 32, 4, 200*time.Microsecond
			if *quick {
				counts = []int{1, 4}
				txnsPer, delay = 12, 100*time.Microsecond
			}
			if *shards > 0 {
				counts = []int{1}
				if *shards != 1 {
					counts = append(counts, *shards)
				}
			}
			return bench.E15ShardScaling(counts, committers, txnsPer, updatesPer, delay)
		}},
	}

	var tables []*bench.Table
	ran := false
	for _, r := range runs {
		if *exp != "all" && !strings.EqualFold(*exp, r.id) {
			continue
		}
		ran = true
		table, err := r.run()
		if err != nil {
			log.Fatalf("%s: %v", r.id, err)
		}
		fmt.Println(table.Format())
		tables = append(tables, table)
	}
	if !ran {
		log.Fatalf("unknown experiment %q (want e1..e15, a1, or all)", *exp)
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(tables, "", "  ")
		if err != nil {
			log.Fatalf("marshal tables: %v", err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			log.Fatalf("write %s: %v", *jsonPath, err)
		}
		fmt.Printf("wrote %s (%d tables)\n", *jsonPath, len(tables))
	}
}
