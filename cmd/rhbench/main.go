// Command rhbench regenerates the experiment tables of EXPERIMENTS.md: one
// experiment per efficiency claim of the paper (§3.2, §4.2, §3.7, §2.2),
// comparing ARIES/RH against conventional ARIES, the eager/lazy rewriting
// baselines, and the EOS-style NO-UNDO/REDO engine.
//
// Usage:
//
//	rhbench            # run everything
//	rhbench -exp e3    # run one experiment
//	rhbench -quick     # smaller sizes (CI-friendly)
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"ariesrh/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: e1..e6, a1, or all")
	quick := flag.Bool("quick", false, "use smaller workload sizes")
	flag.Parse()

	scale := 1
	if *quick {
		scale = 4
	}

	runs := []struct {
		id  string
		run func() (*bench.Table, error)
	}{
		{"e1", func() (*bench.Table, error) {
			return bench.E1NoDelegationOverhead(400/scale, 16, 3)
		}},
		{"e2", func() (*bench.Table, error) {
			sizes := []int{1, 4, 16, 64, 256, 1024}
			if *quick {
				sizes = []int{1, 16, 256}
			}
			return bench.E2DelegationLinearity(sizes, 3)
		}},
		{"e3", func() (*bench.Table, error) {
			return bench.E3RecoveryVsDelegationRate(6000/scale, []float64{0, 0.05, 0.10, 0.20, 0.40})
		}},
		{"e4", func() (*bench.Table, error) {
			lengths := []int{1000, 4000, 16000, 64000}
			if *quick {
				lengths = []int{1000, 8000}
			}
			return bench.E4EagerSweepVsLogLength(lengths)
		}},
		{"e5", func() (*bench.Table, error) {
			return bench.E5EOS(400/scale, 16, 4)
		}},
		{"e6", func() (*bench.Table, error) {
			return bench.E6ETMMacro(2000 / scale)
		}},
		{"a1", func() (*bench.Table, error) {
			return bench.A1ClusterSweepAblation(6000/scale, []float64{0, 0.10, 0.40})
		}},
	}

	ran := false
	for _, r := range runs {
		if *exp != "all" && !strings.EqualFold(*exp, r.id) {
			continue
		}
		ran = true
		table, err := r.run()
		if err != nil {
			log.Fatalf("%s: %v", r.id, err)
		}
		fmt.Println(table.Format())
	}
	if !ran {
		log.Fatalf("unknown experiment %q (want e1..e6, a1, or all)", *exp)
	}
}
