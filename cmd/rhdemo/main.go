// Command rhdemo walks through the paper's running example (§3.1
// Example 1 / Figure 2): a log with updates by t1 and t2 followed by
// delegate(t1, t2, a).
//
// It shows the two implementations side by side:
//
//   - the EAGER baseline physically rewrites history — the "after
//     rewriting" row of Figure 2 appears in its log;
//   - ARIES/RH leaves the log untouched and rewrites history by
//     interpretation: ResponsibleTr(record) answers as if the records had
//     been written by the delegatee.
//
// Run with: go run ./cmd/rhdemo
package main

import (
	"fmt"
	"log"

	"ariesrh/internal/core"
	"ariesrh/internal/rewrite"
	"ariesrh/internal/wal"
)

const (
	objA = wal.ObjectID(100)
	objB = wal.ObjectID(101)
	objX = wal.ObjectID(102)
	objY = wal.ObjectID(103)
)

func objName(o wal.ObjectID) string {
	switch o {
	case objA:
		return "a"
	case objB:
		return "b"
	case objX:
		return "x"
	case objY:
		return "y"
	default:
		return fmt.Sprint(o)
	}
}

// driver abstracts the two engines for the common script.
type driver interface {
	Begin() (wal.TxID, error)
	Update(tx wal.TxID, obj wal.ObjectID, val []byte) error
	Delegate(tor, tee wal.TxID, obj wal.ObjectID) error
	Log() *wal.Log
}

// script replays Figure 2's history and returns (t1, t2).
func script(d driver) (wal.TxID, wal.TxID) {
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	t1, err := d.Begin()
	must(err)
	t2, err := d.Begin()
	must(err)
	must(d.Update(t1, objA, []byte("1"))) // update[t1, a]
	must(d.Update(t2, objX, []byte("2"))) // update[t2, x]
	must(d.Update(t1, objB, []byte("3"))) // update[t1, b]
	must(d.Update(t1, objA, []byte("4"))) // update[t1, a]
	must(d.Update(t2, objY, []byte("5"))) // update[t2, y]
	must(d.Delegate(t1, t2, objA))        // delegate(t1 -> t2, a)
	return t1, t2
}

func dumpLog(l *wal.Log) {
	head := l.Head()
	for lsn := wal.LSN(1); lsn <= head; lsn++ {
		rec, err := l.Get(lsn)
		if err != nil {
			log.Fatal(err)
		}
		switch rec.Type {
		case wal.TypeUpdate:
			fmt.Printf("  %3d  update[t%d, %s]\n", rec.LSN, rec.TxID, objName(rec.Object))
		case wal.TypeDelegate:
			fmt.Printf("  %3d  delegate(t%d -> t%d, %s)  torBC=%d teeBC=%d\n",
				rec.LSN, rec.Tor, rec.Tee, objName(rec.Object), rec.TorPrev, rec.TeePrev)
		default:
			fmt.Printf("  %3d  %s(t%d)\n", rec.LSN, rec.Type, rec.TxID)
		}
	}
}

func main() {
	fmt.Println("=== Figure 2, eager baseline: the log IS rewritten ===")
	eag, err := rewrite.New(rewrite.Options{Mode: rewrite.Eager})
	if err != nil {
		log.Fatal(err)
	}
	script(eag)
	dumpLog(eag.Log())
	s := eag.Stats()
	fmt.Printf("cost: %d records swept, %d records rewritten in place\n\n",
		s.DelegateSweepReads, s.Rewrites)

	fmt.Println("=== Figure 2, ARIES/RH: the log is NOT rewritten ===")
	rh, err := core.New(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	t1, t2 := script(rh)
	dumpLog(rh.Log())
	fmt.Println("...but interpreting it through ResponsibleTr (the scopes):")
	head := rh.Log().Head()
	for lsn := wal.LSN(1); lsn <= head; lsn++ {
		rec, err := rh.Log().Get(lsn)
		if err != nil {
			log.Fatal(err)
		}
		if rec.Type != wal.TypeUpdate {
			continue
		}
		owner, err := rh.ResponsibleFor(lsn)
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if owner != rec.TxID {
			marker = fmt.Sprintf("   <-- rewritten by interpretation (was t%d)", rec.TxID)
		}
		fmt.Printf("  %3d  update[t%d, %s]  ResponsibleTr = t%d%s\n",
			rec.LSN, rec.TxID, objName(rec.Object), owner, marker)
	}
	diff := rh.Log().Stats()
	fmt.Printf("cost: %d rewrites, delegation appended 1 record\n", diff.Rewrites)

	fmt.Println("\n=== Figure 5: the object lists after the delegation ===")
	for _, tx := range []wal.TxID{t1, t2} {
		objs, err := rh.ObjectsOf(tx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  Ob_List(t%d):", tx)
		if len(objs) == 0 {
			fmt.Print(" (empty)")
		}
		for _, obj := range objs {
			ops, _ := rh.OpList(tx)
			fmt.Printf(" %s(ops@%v)", objName(obj), ops)
			break
		}
		fmt.Println()
	}
	ops1, _ := rh.OpList(t1)
	ops2, _ := rh.OpList(t2)
	fmt.Printf("  Op_List(t%d) = %v   (its update of b)\n", t1, ops1)
	fmt.Printf("  Op_List(t%d) = %v (x, y, and the two delegated updates of a)\n", t2, ops2)

	example2()
}

// example2 walks §3.4 Example 2: t updates ob, delegates to t1, updates ob
// again, delegates to t2; t2 aborts, t1 commits — the first update
// persists, the second is undone, regardless of t's fate.
func example2() {
	fmt.Println("\n=== Example 2 (§3.4): two delegations, opposite fates ===")
	rh, err := core.New(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	tt, _ := rh.Begin()
	t1, _ := rh.Begin()
	t2, _ := rh.Begin()
	const ob = wal.ObjectID(9)
	must(rh.Update(tt, ob, []byte("first")))
	must(rh.Delegate(tt, t1, ob))
	must(rh.Update(tt, ob, []byte("second")))
	must(rh.Delegate(tt, t2, ob))
	show := func(when string) {
		v, _, _ := rh.ReadObject(ob)
		fmt.Printf("  %-28s ob = %q\n", when, v)
	}
	show("after both delegations:")
	must(rh.Abort(t2)) // the second update must be undone...
	show("after abort(t2):")
	must(rh.Commit(t1)) // ...and the first must persist.
	show("after commit(t1):")
	must(rh.Commit(tt))
	fmt.Println("  t's own fate was irrelevant: the delegatees decided.")
}
