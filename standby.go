package ariesrh

import (
	"io"
	"path/filepath"

	"ariesrh/internal/core"
	"ariesrh/internal/repl"
	"ariesrh/internal/storage"
	"ariesrh/internal/wal"
)

// Replication errors.
var (
	// ErrFollower is returned for mutating operations on a standby;
	// Standby.Promote turns it into a writable DB.
	ErrFollower = core.ErrFollower
	// ErrSnapshotNeeded is returned by Standby.Follow when the primary
	// has archived the records this standby would need: incremental
	// catch-up is impossible, rebuild the standby from a fresh
	// DB.Backup of the primary.
	ErrSnapshotNeeded = repl.ErrSnapshotNeeded
	// ErrReplicaDetached is returned by ReplicaFeed.Serve after Detach.
	ErrReplicaDetached = repl.ErrPrimaryClosed
)

// StateFollower is the Health state of a standby: reads are served at the
// replayed LSN, mutations return ErrFollower until promotion.
const StateFollower = core.StateFollower

// ReplicaFeed is the primary-side handle for one attached replica,
// returned by DB.AttachReplica.  It owns a retention pin on the log —
// wal.Archive never discards a record the replica has not acknowledged
// as durable — which survives disconnects: Serve may be called again
// with a fresh connection and the replica resumes from its cursor.
type ReplicaFeed struct{ p *repl.Primary }

// AttachReplica attaches a replica feed to the database.  Attach BEFORE
// taking the bootstrap Backup: the retention pin starts at the current
// log head, so every record a later backup misses is still in the log
// when the standby first connects.  Detach releases the pin.
func (db *DB) AttachReplica() (*ReplicaFeed, error) {
	if db.sh != nil {
		return nil, ErrSharded
	}
	p, err := repl.NewPrimary(db.eng)
	if err != nil {
		return nil, err
	}
	return &ReplicaFeed{p: p}, nil
}

// Serve ships log records to the replica over one connection (any
// io.ReadWriter: a TCP conn, an in-process pipe) until the connection
// fails, the replica hangs up, or Detach is called.  Reconnection is the
// caller's loop: accept a new connection, call Serve again.
func (f *ReplicaFeed) Serve(rw io.ReadWriter) error { return f.p.Serve(rw) }

// AckedLSN returns the highest LSN the replica has acknowledged as
// durable on its side (0 before the first ack).
func (f *ReplicaFeed) AckedLSN() uint64 { return uint64(f.p.AckedLSN()) }

// Detach releases the replica's retention pin and terminates any active
// Serve.  After Detach the replica can only come back via a fresh
// bootstrap if the log has been archived past its cursor.
func (f *ReplicaFeed) Detach() { f.p.Close() }

// StandbyOptions configures OpenStandby.
type StandbyOptions struct {
	// Dir, when non-empty, opens a file-backed standby — typically a
	// directory restored from DB.Backup of the primary (the snapshot
	// bootstrap path).  Empty opens an in-memory standby that must
	// receive the stream from LSN 1.
	Dir string
	// PoolSize is the buffer-pool capacity in pages (default 128).
	PoolSize int
	// ParallelRecovery makes Promote run its backward pass as the
	// instant-restart pipeline: Promote returns once the undo sweep is
	// started, the promoted DB reports StateRecovering and serves reads
	// (each gated on the undo of the loser clusters covering its object)
	// while writes return ErrRecovering until DB.WaitRecovered returns
	// nil.  The promoted state is identical to a sequential promotion's;
	// a pipeline failure leaves the engine a follower and Promote may be
	// retried.
	ParallelRecovery bool
}

// Standby is a hot-standby database: a follower engine continuously
// running recovery's forward pass over the shipped log — updates and
// delegate records land in live object lists exactly as on the primary —
// while serving consistent reads at the replayed LSN.
type Standby struct {
	rep *repl.Replica
	dir string
}

// OpenStandby opens a standby.  With StandbyOptions.Dir pointing at a
// restored DB.Backup, the standby first catches up on the local log
// (forward pass only; transactions in flight at backup time stay live —
// the stream decides their fate), then Follow resumes from the backup's
// head.  See the package example in README.md for the full bootstrap
// sequence: AttachReplica, Backup, restore, OpenStandby, Follow.
func OpenStandby(opts ...StandbyOptions) (*Standby, error) {
	var o StandbyOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	engineOpts := core.Options{PoolSize: o.PoolSize, Follower: true, ParallelRecovery: o.ParallelRecovery}
	cleanup := func() {}
	if o.Dir != "" {
		logDir, err := wal.OpenFileDir(filepath.Join(o.Dir, "wal"))
		if err != nil {
			return nil, err
		}
		master, err := wal.OpenFileStore(filepath.Join(o.Dir, "master"))
		if err != nil {
			logDir.Close()
			return nil, err
		}
		disk, err := storage.OpenFileDisk(filepath.Join(o.Dir, "pages.db"))
		if err != nil {
			logDir.Close()
			master.Close()
			return nil, err
		}
		engineOpts.LogDir = logDir
		engineOpts.MasterStore = master
		engineOpts.Disk = disk
		cleanup = func() {
			logDir.Close()
			master.Close()
			disk.Close()
		}
	}
	eng, err := core.New(engineOpts)
	if err != nil {
		cleanup()
		return nil, err
	}
	rep, err := repl.NewReplica(eng)
	if err != nil {
		cleanup()
		return nil, err
	}
	return &Standby{rep: rep, dir: o.Dir}, nil
}

// Follow connects to a primary feed over rw and applies the stream until
// the connection fails.  Safe to call again with a new connection after a
// disconnect: the standby resumes from its own durable log head.
func (s *Standby) Follow(rw io.ReadWriter) error { return s.rep.Follow(rw) }

// Read returns obj's value together with the replayed LSN the value is
// consistent with — the standby's read-your-replicated-writes primitive.
// Objects never written (or undone back to empty) return ok=false.
func (s *Standby) Read(obj ObjectID) (val []byte, ok bool, atLSN uint64, err error) {
	v, present, at, err := s.rep.Read(obj)
	if err != nil || !present || len(v) == 0 {
		return nil, false, uint64(at), err
	}
	return v, true, uint64(at), nil
}

// ReplayedLSN returns the standby's consistency point: the highest LSN
// replayed into pages and object lists.
func (s *Standby) ReplayedLSN() uint64 { return uint64(s.rep.Engine().ReplayedLSN()) }

// StandbyHealth describes a standby's position in the replication
// stream.
type StandbyHealth struct {
	// State is StateFollower while standing by (StateCrashed if the
	// standby engine was crashed under test).
	State HealthState
	// ReplayedLSN is the consistency point reads are served at.
	ReplayedLSN uint64
	// DurableLSN is how far the local log is forced; it bounds what this
	// standby has acknowledged to the primary.
	DurableLSN uint64
	// PrimaryLSN is the primary's flushed LSN as of the last received
	// batch (0 before the first).
	PrimaryLSN uint64
	// LagRecords is max(0, PrimaryLSN - ReplayedLSN).
	LagRecords uint64
}

// Health returns the standby's replication watermarks and state.
func (s *Standby) Health() StandbyHealth {
	h := s.rep.Health()
	return StandbyHealth{
		State:       s.rep.Engine().Health().State,
		ReplayedLSN: uint64(h.ReplayedLSN),
		DurableLSN:  uint64(h.DurableLSN),
		PrimaryLSN:  uint64(h.PrimaryLSN),
		LagRecords:  h.LagRecords,
	}
}

// Metrics returns the standby engine's metric snapshot (repl.replayed_lsn,
// repl.applied_records, repl.lag_records and the whole engine stack).
func (s *Standby) Metrics() MetricsSnapshot { return s.rep.Engine().Metrics() }

// Promote turns the standby into a primary and returns the writable DB.
// Promotion is the engine's ordinary recovery backward pass run over the
// standby's live analysis state: transactions whose fate the stream never
// decided are losers, their scope clusters are swept in strictly
// decreasing LSN order and undone via CLRs (§3.6.2) — there is no
// promotion-specific recovery code.  Disconnect Follow first.  After a
// successful Promote the Standby handle is dead; use the returned DB.
//
// With StandbyOptions.ParallelRecovery the sweep runs as a pipeline:
// Promote returns immediately with the DB in StateRecovering — reads flow
// throughout (never observing a half-undone object), writes are accepted
// once DB.WaitRecovered returns nil.
func (s *Standby) Promote() (*DB, error) {
	eng, err := s.rep.Promote()
	if err != nil {
		return nil, err
	}
	return &DB{eng: eng, dir: s.dir}, nil
}

// Engine exposes the follower engine for tools and tests.
func (s *Standby) Engine() *core.Engine { return s.rep.Engine() }

// Close shuts the standby down cleanly (flushes its log and pages,
// releases file handles).  Not valid after a successful Promote — close
// the returned DB instead.
func (s *Standby) Close() error { return s.rep.Engine().Close() }
