// Package delegation implements the volatile data structures of the
// paper's RH ("rewrite history") algorithm (§3.4): update scopes, the
// per-transaction object lists that carry them, and the backward-pass
// machinery — the loser-scope priority queue and the cluster sweep of
// §3.6.2 (Figures 7 and 8).
//
// A scope (invoker, firstLSN, lastLSN) covers the updates to one object
// that were invoked by one transaction within an LSN range and whose fate
// travels together under delegation.  The dual views of §2.1.1 —
// ResponsibleTr(update) and Op_List(t) — are both computable from the
// scopes, which is exactly why the paper stores them: responsibility can
// be tracked without touching the log.
//
// Scope discipline.  A transaction extends at most one ACTIVE scope per
// object — the one opened by its first update since it began or since it
// last delegated the object.  Scopes received through delegation are
// CLOSED: they are never extended or merged, only carried.  Two scopes
// with the same invoking transaction therefore cover disjoint LSN ranges
// (the invoker's active scope closed before the next one opened), which is
// the invariant the backward pass relies on: a log position is covered by
// a scope if and only if the update there belongs to that scope's
// responsibility thread.  (The paper's §3.5 remark instead states that
// same-invoker scopes never co-occur in one entry; we allow them — they
// arise when responsibility threads reunite via delegation chains — and
// rely on range disjointness, which is strictly safer than merging:
// merging two same-invoker ranges could swallow an intervening update that
// was delegated to a third transaction.)
package delegation

import (
	"fmt"
	"sort"

	"ariesrh/internal/wal"
)

// Scope covers the updates to Object invoked by Invoker with LSNs in
// [First, Last].  The transaction whose Ob_List holds the scope is
// responsible for those updates (it invoked them, or received them through
// a chain of delegations).
type Scope struct {
	// Object is the object the covered updates touched.
	Object wal.ObjectID
	// Invoker is the transaction that physically performed the updates
	// (the paper's "invoking transaction"; the log records carry its ID).
	Invoker wal.TxID
	// First and Last bound the LSNs of the covered updates, inclusive.
	First wal.LSN
	Last  wal.LSN
	// Owner is the transaction currently responsible for the covered
	// updates.  Inside an ObList it is implied by the containing list
	// and left as NilTx; OwnedScopes stamps it when scopes are pulled
	// out to build LsrScopes, so the backward pass can attribute
	// compensation log records to the right loser.
	Owner wal.TxID
}

// Contains reports whether lsn falls inside the scope.
func (s Scope) Contains(lsn wal.LSN) bool { return s.First <= lsn && lsn <= s.Last }

// String renders the scope like the paper's figures: "(t0, 5, 9) on 7".
func (s Scope) String() string {
	return fmt.Sprintf("(t%d, %d, %d) on %d", s.Invoker, s.First, s.Last, s.Object)
}

// Entry is the per-object record inside a transaction's Ob_List (Figure 5).
type Entry struct {
	// Deleg is the transaction that delegated the object to the owner,
	// or NilTx if the owner put it in its own list by updating.
	Deleg wal.TxID
	// Active is the scope the owner is currently extending with its own
	// updates (Invoker == owner), valid when HasActive.  It closes —
	// moves to Closed — when the owner delegates the object.
	HasActive bool
	Active    Scope
	// Closed are scopes no longer extended: received through delegation,
	// or the owner's own scopes from before a round-trip delegation.
	Closed []Scope
}

// Scopes returns all scopes in the entry (closed ones first, then the
// active one).
func (e *Entry) Scopes() []Scope {
	out := append([]Scope(nil), e.Closed...)
	if e.HasActive {
		out = append(out, e.Active)
	}
	return out
}

func (e *Entry) clone() *Entry {
	return &Entry{
		Deleg:     e.Deleg,
		HasActive: e.HasActive,
		Active:    e.Active,
		Closed:    append([]Scope(nil), e.Closed...),
	}
}

// ObList is a transaction's object list: the objects holding updates the
// transaction is currently responsible for.  Methods are not synchronized;
// the owning engine serializes access.
type ObList struct {
	m map[wal.ObjectID]*Entry
}

// NewObList returns an empty object list.
func NewObList() *ObList { return &ObList{m: make(map[wal.ObjectID]*Entry)} }

// Has reports whether the list contains obj — the well-formedness test of
// delegate(t1, t2, ob) in §3.5 (ResponsibleTr(update[ob]) = t1).
func (o *ObList) Has(obj wal.ObjectID) bool {
	_, ok := o.m[obj]
	return ok
}

// Entry returns the entry for obj, or nil.
func (o *ObList) Entry(obj wal.ObjectID) *Entry { return o.m[obj] }

// Len returns the number of objects in the list.
func (o *ObList) Len() int { return len(o.m) }

// Objects returns the object IDs in the list, sorted.
func (o *ObList) Objects() []wal.ObjectID {
	out := make([]wal.ObjectID, 0, len(o.m))
	for obj := range o.m {
		out = append(out, obj)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RecordUpdate adjusts scopes for update[owner, obj] logged at lsn (§3.5,
// step ADJUST SCOPES): the owner's active scope on obj extends to lsn; if
// there is none (first update since begin, or since the owner last
// delegated obj) a new active scope [lsn, lsn] opens.
func (o *ObList) RecordUpdate(owner wal.TxID, obj wal.ObjectID, lsn wal.LSN) {
	e, ok := o.m[obj]
	if !ok {
		e = &Entry{}
		o.m[obj] = e
	}
	if e.HasActive {
		if lsn > e.Active.Last {
			e.Active.Last = lsn
		}
		return
	}
	e.HasActive = true
	e.Active = Scope{Object: obj, Invoker: owner, First: lsn, Last: lsn}
}

// DelegateTo transfers this list's entry for obj into dst (§3.5, step
// TRANSFER RESPONSIBILITY): the delegator's active scope closes, all
// scopes move into dst's entry as closed scopes (dst's own active scope,
// if any, is untouched), the delegator is recorded, and the entry is
// removed from the delegator's list.  It returns false if obj is not in
// the list (ill-formed delegation).
func (o *ObList) DelegateTo(dst *ObList, from wal.TxID, obj wal.ObjectID) bool {
	src, ok := o.m[obj]
	if !ok {
		return false
	}
	d, ok := dst.m[obj]
	if !ok {
		d = &Entry{}
		dst.m[obj] = d
	}
	d.Deleg = from
	d.Closed = append(d.Closed, src.Closed...)
	if src.HasActive {
		d.Closed = append(d.Closed, src.Active)
	}
	delete(o.m, obj)
	return true
}

// AllScopes returns every scope in the list, ordered by object, then
// invoker, then first LSN (deterministic for tests and checkpoint
// encoding).
func (o *ObList) AllScopes() []Scope {
	var out []Scope
	for _, obj := range o.Objects() {
		scopes := o.m[obj].Scopes()
		sort.Slice(scopes, func(i, j int) bool {
			if scopes[i].Invoker != scopes[j].Invoker {
				return scopes[i].Invoker < scopes[j].Invoker
			}
			return scopes[i].First < scopes[j].First
		})
		out = append(out, scopes...)
	}
	return out
}

// OwnedScopes returns every scope in the list with Owner stamped to owner,
// the form the backward pass's LsrScopes is built from.
func (o *ObList) OwnedScopes(owner wal.TxID) []Scope {
	scopes := o.AllScopes()
	for i := range scopes {
		scopes[i].Owner = owner
	}
	return scopes
}

// MinFirst returns the smallest First across all scopes (the minLSN used
// by abort processing in §3.5), or NilLSN if the list is empty.
func (o *ObList) MinFirst() wal.LSN {
	min := wal.NilLSN
	for _, e := range o.m {
		for _, s := range e.Scopes() {
			if min == wal.NilLSN || s.First < min {
				min = s.First
			}
		}
	}
	return min
}

// Clone deep-copies the list.
func (o *ObList) Clone() *ObList {
	c := NewObList()
	for obj, e := range o.m {
		c.m[obj] = e.clone()
	}
	return c
}

// SetEntry installs an entry directly (checkpoint decoding).
func (o *ObList) SetEntry(obj wal.ObjectID, e *Entry) { o.m[obj] = e }
