package delegation

import (
	"reflect"
	"testing"

	"ariesrh/internal/wal"
)

func TestRecordUpdateOpensAndExtendsScopes(t *testing.T) {
	ol := NewObList()
	ol.RecordUpdate(1, 7, 100)
	e := ol.Entry(7)
	if e == nil || len(e.Scopes()) != 1 {
		t.Fatalf("entry = %+v", e)
	}
	want := Scope{Object: 7, Invoker: 1, First: 100, Last: 100}
	if e.Scopes()[0] != want {
		t.Fatalf("scope = %v, want %v", e.Scopes()[0], want)
	}
	ol.RecordUpdate(1, 7, 104)
	if got := e.Scopes()[0]; got.Last != 104 || got.First != 100 {
		t.Fatalf("extended scope = %v", got)
	}
}

func TestDelegateToMovesScopes(t *testing.T) {
	t1, t2 := NewObList(), NewObList()
	t1.RecordUpdate(1, 7, 100)
	t1.RecordUpdate(1, 7, 104)
	if ok := t1.DelegateTo(t2, 1, 7); !ok {
		t.Fatal("well-formed delegation rejected")
	}
	if t1.Has(7) {
		t.Fatal("delegator kept the object")
	}
	e := t2.Entry(7)
	if e == nil || e.Deleg != 1 {
		t.Fatalf("delegatee entry = %+v", e)
	}
	if sc := e.Scopes(); len(sc) != 1 || sc[0] != (Scope{Object: 7, Invoker: 1, First: 100, Last: 104}) {
		t.Fatalf("scopes = %v", sc)
	}
	// Ill-formed: t1 no longer responsible.
	if ok := t1.DelegateTo(t2, 1, 7); ok {
		t.Fatal("ill-formed delegation accepted")
	}
}

func TestDelegateToUnionsWithOwnScope(t *testing.T) {
	// t2 already updated 7 itself, then receives t1's updates on 7: the
	// union keeps both scopes (different invokers; §3.5 remark).
	t1, t2 := NewObList(), NewObList()
	t1.RecordUpdate(1, 7, 100)
	t2.RecordUpdate(2, 7, 102)
	t1.DelegateTo(t2, 1, 7)
	e := t2.Entry(7)
	if sc := e.Scopes(); len(sc) != 2 {
		t.Fatalf("scopes = %v", sc)
	}
	inv := map[wal.TxID]Scope{}
	for _, s := range e.Scopes() {
		if _, dup := inv[s.Invoker]; dup {
			t.Fatalf("two scopes share invoker t%d", s.Invoker)
		}
		inv[s.Invoker] = s
	}
}

func TestDelegateToKeepsSameInvokerScopesDisjoint(t *testing.T) {
	// t1's two disjoint scopes on the same object reunite in one list:
	// they must stay SEPARATE ranges.  Merging them into [100, 105]
	// would swallow position 103 — an update t1 delegated to someone
	// else entirely.
	a, b, c := NewObList(), NewObList(), NewObList()
	a.RecordUpdate(1, 7, 100) // scope (t1, 100, 100)
	a.DelegateTo(b, 1, 7)
	a.RecordUpdate(1, 7, 103) // scope (t1, 103, 103), stays with a third party
	third := NewObList()
	a.DelegateTo(third, 1, 7)
	a.RecordUpdate(1, 7, 105) // scope (t1, 105, 105)
	a.DelegateTo(c, 1, 7)
	// b and c both delegate to a common destination.
	dst := NewObList()
	b.DelegateTo(dst, 10, 7)
	c.DelegateTo(dst, 11, 7)
	sc := dst.Entry(7).Scopes()
	if len(sc) != 2 {
		t.Fatalf("scopes = %v, want two disjoint scopes", sc)
	}
	for _, s := range sc {
		if s.Contains(103) {
			t.Fatalf("scope %v covers the third party's update at 103", s)
		}
	}
}

func TestPaperExample2Scopes(t *testing.T) {
	// §3.4 Example 2: t updates ob, delegates to t1, updates ob again,
	// delegates to t2.  t1 and t2 must end up with disjoint scopes so
	// that t1's commit preserves the first update while t2's abort
	// undoes the second.
	lt, lt1, lt2 := NewObList(), NewObList(), NewObList()
	const ob = 9
	lt.RecordUpdate(5, ob, 200) // update[t, ob]
	lt.DelegateTo(lt1, 5, ob)   // delegate(t, t1, ob)
	lt.RecordUpdate(5, ob, 202) // update[t, ob]
	lt.DelegateTo(lt2, 5, ob)   // delegate(t, t2, ob)
	s1 := lt1.Entry(ob).Scopes()
	s2 := lt2.Entry(ob).Scopes()
	if len(s1) != 1 || s1[0] != (Scope{Object: ob, Invoker: 5, First: 200, Last: 200}) {
		t.Fatalf("t1 scopes = %v", s1)
	}
	if len(s2) != 1 || s2[0] != (Scope{Object: ob, Invoker: 5, First: 202, Last: 202}) {
		t.Fatalf("t2 scopes = %v", s2)
	}
	if lt.Has(ob) {
		t.Fatal("t still responsible for ob")
	}
}

func TestUpdateAfterDelegationOpensFreshScope(t *testing.T) {
	// §2.1.2: a transaction can keep operating on an object it has
	// delegated; the new updates form a new responsibility.
	a, b := NewObList(), NewObList()
	a.RecordUpdate(1, 7, 100)
	a.DelegateTo(b, 1, 7)
	a.RecordUpdate(1, 7, 110)
	e := a.Entry(7)
	if e == nil || len(e.Scopes()) != 1 || e.Scopes()[0].First != 110 {
		t.Fatalf("fresh scope = %+v", e)
	}
}

func TestMinFirst(t *testing.T) {
	ol := NewObList()
	if ol.MinFirst() != wal.NilLSN {
		t.Fatal("empty list MinFirst")
	}
	ol.RecordUpdate(1, 7, 50)
	ol.RecordUpdate(1, 8, 30)
	ol.RecordUpdate(2, 8, 40)
	if ol.MinFirst() != 30 {
		t.Fatalf("MinFirst = %d", ol.MinFirst())
	}
}

func TestObListCloneIndependent(t *testing.T) {
	ol := NewObList()
	ol.RecordUpdate(1, 7, 10)
	c := ol.Clone()
	c.RecordUpdate(1, 7, 20)
	if ol.Entry(7).Scopes()[0].Last != 10 {
		t.Fatal("clone aliases original")
	}
}

func TestStateEncodeDecodeRoundTrip(t *testing.T) {
	st := State{}
	a := NewObList()
	a.RecordUpdate(1, 7, 10)
	a.RecordUpdate(1, 8, 12)
	b := NewObList()
	b.RecordUpdate(2, 7, 14)
	a.DelegateTo(b, 1, 7)
	st[1] = a
	st[2] = b
	st[3] = NewObList()
	buf := EncodeState(st)
	got, err := DecodeState(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("decoded %d lists", len(got))
	}
	for tx, ol := range st {
		g := got[tx]
		if g == nil {
			t.Fatalf("missing tx %d", tx)
		}
		if !reflect.DeepEqual(g.AllScopes(), ol.AllScopes()) {
			t.Fatalf("tx %d scopes: got %v want %v", tx, g.AllScopes(), ol.AllScopes())
		}
		for _, obj := range ol.Objects() {
			if g.Entry(obj).Deleg != ol.Entry(obj).Deleg {
				t.Fatalf("tx %d obj %d deleg mismatch", tx, obj)
			}
		}
	}
	// Determinism.
	if string(EncodeState(st)) != string(buf) {
		t.Fatal("encoding not deterministic")
	}
}

func TestDecodeStateRejectsGarbage(t *testing.T) {
	st := State{1: NewObList()}
	st[1].RecordUpdate(1, 7, 10)
	buf := EncodeState(st)
	for n := 1; n < len(buf); n++ {
		if _, err := DecodeState(buf[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	if _, err := DecodeState(append(buf, 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
