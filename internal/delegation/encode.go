package delegation

import (
	"encoding/binary"
	"fmt"
	"sort"

	"ariesrh/internal/wal"
)

// State is the volatile delegation state of the whole system: each
// transaction's object list.  Fuzzy checkpoints serialize it into the
// checkpoint-end record so recovery can start from the checkpoint instead
// of the beginning of the log.
type State map[wal.TxID]*ObList

// EncodeState serializes the state deterministically (sorted by
// transaction, object, invoker).
func EncodeState(st State) []byte {
	txs := make([]wal.TxID, 0, len(st))
	for tx := range st {
		txs = append(txs, tx)
	}
	sort.Slice(txs, func(i, j int) bool { return txs[i] < txs[j] })
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(txs)))
	for _, tx := range txs {
		ol := st[tx]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(tx))
		objs := ol.Objects()
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(objs)))
		for _, obj := range objs {
			e := ol.Entry(obj)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(obj))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Deleg))
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(e.Closed)))
			for _, s := range e.Closed {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Invoker))
				buf = binary.LittleEndian.AppendUint64(buf, uint64(s.First))
				buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Last))
			}
			if e.HasActive {
				buf = append(buf, 1)
				buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Active.Invoker))
				buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Active.First))
				buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Active.Last))
			} else {
				buf = append(buf, 0)
			}
		}
	}
	return buf
}

type stateDecoder struct {
	buf []byte
	off int
}

func (d *stateDecoder) u8() (uint8, error) {
	if d.off+1 > len(d.buf) {
		return 0, fmt.Errorf("delegation: truncated state")
	}
	v := d.buf[d.off]
	d.off++
	return v, nil
}

func (d *stateDecoder) u16() (uint16, error) {
	if d.off+2 > len(d.buf) {
		return 0, fmt.Errorf("delegation: truncated state")
	}
	v := binary.LittleEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v, nil
}

func (d *stateDecoder) u32() (uint32, error) {
	if d.off+4 > len(d.buf) {
		return 0, fmt.Errorf("delegation: truncated state")
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

func (d *stateDecoder) u64() (uint64, error) {
	if d.off+8 > len(d.buf) {
		return 0, fmt.Errorf("delegation: truncated state")
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

// DecodeState parses a buffer produced by EncodeState.
func DecodeState(buf []byte) (State, error) {
	d := &stateDecoder{buf: buf}
	nTx, err := d.u32()
	if err != nil {
		return nil, err
	}
	// nTx comes off the wire: cap the pre-allocation so a corrupt count
	// costs a parse error, not an out-of-memory allocation.  Each encoded
	// transaction is at least 8 bytes, so the buffer itself bounds the
	// real entry count.
	maxTx := uint32(len(d.buf) / 8)
	if nTx > maxTx {
		return nil, fmt.Errorf("delegation: state claims %d transactions in %d bytes", nTx, len(d.buf))
	}
	st := make(State, nTx)
	for i := uint32(0); i < nTx; i++ {
		txRaw, err := d.u32()
		if err != nil {
			return nil, err
		}
		tx := wal.TxID(txRaw)
		nObj, err := d.u32()
		if err != nil {
			return nil, err
		}
		ol := NewObList()
		for j := uint32(0); j < nObj; j++ {
			objRaw, err := d.u64()
			if err != nil {
				return nil, err
			}
			delegRaw, err := d.u32()
			if err != nil {
				return nil, err
			}
			nScopes, err := d.u16()
			if err != nil {
				return nil, err
			}
			e := &Entry{Deleg: wal.TxID(delegRaw)}
			readScope := func() (Scope, error) {
				inv, err := d.u32()
				if err != nil {
					return Scope{}, err
				}
				first, err := d.u64()
				if err != nil {
					return Scope{}, err
				}
				last, err := d.u64()
				if err != nil {
					return Scope{}, err
				}
				return Scope{
					Object:  wal.ObjectID(objRaw),
					Invoker: wal.TxID(inv),
					First:   wal.LSN(first),
					Last:    wal.LSN(last),
				}, nil
			}
			for k := uint16(0); k < nScopes; k++ {
				s, err := readScope()
				if err != nil {
					return nil, err
				}
				e.Closed = append(e.Closed, s)
			}
			hasActive, err := d.u8()
			if err != nil {
				return nil, err
			}
			if hasActive == 1 {
				s, err := readScope()
				if err != nil {
					return nil, err
				}
				e.HasActive = true
				e.Active = s
			} else if hasActive != 0 {
				return nil, fmt.Errorf("delegation: bad active-scope flag %d", hasActive)
			}
			ol.SetEntry(wal.ObjectID(objRaw), e)
		}
		st[tx] = ol
	}
	if d.off != len(buf) {
		return nil, fmt.Errorf("delegation: %d trailing bytes in state", len(buf)-d.off)
	}
	return st, nil
}
