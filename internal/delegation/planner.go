package delegation

import (
	"container/heap"

	"ariesrh/internal/wal"
)

// Planner drives the backward pass of ARIES/RH (§3.6.2, Figure 8).  Given
// the loser scopes (LsrScopes), it yields — in strictly decreasing order —
// exactly the log positions inside clusters of overlapping loser scopes,
// skipping the log between clusters.  At each yielded position the engine
// asks ShouldUndo whether the record there is a loser update.
//
// Invariants (asserted by the property tests):
//   - positions are yielded in strictly decreasing LSN order
//     (each log record is visited at most once);
//   - every LSN inside some loser scope is yielded;
//   - no LSN outside every loser scope is yielded.
type Planner struct {
	heap    scopeHeap
	cluster map[clusterKey][]Scope

	k          wal.LSN
	begCluster wal.LSN
	started    bool
	done       bool

	// Visited counts yielded positions; Skipped counts log positions
	// jumped over between clusters.  The benchmark harness reports both.
	Visited uint64
	Skipped uint64
	// Clusters counts the clusters of overlapping scopes swept: it is
	// incremented when the sweep enters its first cluster and on every
	// β-jump to the next one.
	Clusters uint64
}

type clusterKey struct {
	invoker wal.TxID
	object  wal.ObjectID
}

// scopeHeap is a max-heap of scopes ordered by Last (the paper suggests a
// priority queue sorted by right end, largest first).
type scopeHeap []Scope

func (h scopeHeap) Len() int            { return len(h) }
func (h scopeHeap) Less(i, j int) bool  { return h[i].Last > h[j].Last }
func (h scopeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *scopeHeap) Push(x interface{}) { *h = append(*h, x.(Scope)) }
func (h *scopeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	s := old[n-1]
	*h = old[:n-1]
	return s
}

// NewPlanner builds a planner over the loser scopes.  Scopes with
// First == NilLSN are ignored (defensive; such scopes cover nothing).
func NewPlanner(scopes []Scope) *Planner {
	p := &Planner{cluster: make(map[clusterKey][]Scope)}
	for _, s := range scopes {
		if s.First == wal.NilLSN || s.Last < s.First {
			continue
		}
		p.heap = append(p.heap, s)
	}
	heap.Init(&p.heap)
	return p
}

// Next yields the next log position to examine, or (NilLSN, false) when the
// sweep is complete.  The engine must call ShouldUndo (if the record at the
// position is an update) before the following Next call.
func (p *Planner) Next() (wal.LSN, bool) {
	if p.done {
		return wal.NilLSN, false
	}
	if !p.started {
		p.started = true
		if p.heap.Len() == 0 {
			p.done = true
			return wal.NilLSN, false
		}
		p.k = p.heap[0].Last
		p.begCluster = p.k
		p.Clusters++
		p.absorb()
		p.Visited++
		return p.k, true
	}
	// Finish the previous position: scopes beginning there are fully
	// processed (Figure 8, step α3).
	p.expire()
	p.k-- // α4
	if p.k < p.begCluster {
		// Cluster exhausted (end of the repeat loop); jump to the
		// right end of the next cluster (step β).
		if p.heap.Len() == 0 {
			p.done = true
			return wal.NilLSN, false
		}
		next := p.heap[0].Last
		if next < p.k {
			p.Skipped += uint64(p.k - next)
			p.k = next
		}
		p.begCluster = p.k
		p.Clusters++
	}
	p.absorb() // α1
	p.Visited++
	return p.k, true
}

// absorb moves every scope whose Last equals the current position from
// LsrScopes into the cluster, lowering begCluster (step α1).
func (p *Planner) absorb() {
	for p.heap.Len() > 0 && p.heap[0].Last == p.k {
		s := heap.Pop(&p.heap).(Scope)
		key := clusterKey{invoker: s.Invoker, object: s.Object}
		p.cluster[key] = append(p.cluster[key], s)
		if s.First < p.begCluster {
			p.begCluster = s.First
		}
	}
}

// expire removes cluster scopes that begin at the current position — they
// have been fully swept (step α3).
func (p *Planner) expire() {
	for key, scopes := range p.cluster {
		kept := scopes[:0]
		for _, s := range scopes {
			if s.First != p.k {
				kept = append(kept, s)
			}
		}
		if len(kept) == 0 {
			delete(p.cluster, key)
		} else {
			p.cluster[key] = kept
		}
	}
}

// ShouldUndo reports whether the update record at lsn — invoked by invoker
// on object — falls inside a loser scope of the current cluster (step α2:
// "a record is a loser update if it is within the ends of a loser scope
// whose invoking transaction is the same as the update's invoking
// transaction").  On a hit it also returns the scope's Owner, the loser
// transaction responsible for the update, to which the compensation log
// record is attributed.
func (p *Planner) ShouldUndo(invoker wal.TxID, object wal.ObjectID, lsn wal.LSN) (wal.TxID, bool) {
	for _, s := range p.cluster[clusterKey{invoker: invoker, object: object}] {
		if s.Contains(lsn) {
			return s.Owner, true
		}
	}
	return wal.NilTx, false
}

// ClusterSize returns the number of scopes in the current cluster; test
// and trace helper.
func (p *Planner) ClusterSize() int {
	n := 0
	for _, scopes := range p.cluster {
		n += len(scopes)
	}
	return n
}
