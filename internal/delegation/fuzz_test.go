package delegation

import "testing"

// FuzzDecodeState checks the checkpoint-state decoder never panics and
// round-trips what it accepts.
func FuzzDecodeState(f *testing.F) {
	st := State{1: NewObList(), 2: NewObList()}
	st[1].RecordUpdate(1, 7, 10)
	st[2].RecordUpdate(2, 7, 12)
	st[1].DelegateTo(st[2], 1, 7)
	f.Add(EncodeState(st))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeState(data)
		if err != nil {
			return
		}
		re := EncodeState(got)
		got2, err := DecodeState(re)
		if err != nil {
			t.Fatalf("accepted state does not round trip: %v", err)
		}
		if string(EncodeState(got2)) != string(re) {
			t.Fatal("re-encoding unstable")
		}
	})
}
