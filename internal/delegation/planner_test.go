package delegation

import (
	"math/rand"
	"testing"

	"ariesrh/internal/wal"
)

// collect runs the planner to completion and returns the visited LSNs.
func collect(t *testing.T, p *Planner) []wal.LSN {
	t.Helper()
	var out []wal.LSN
	for {
		k, ok := p.Next()
		if !ok {
			break
		}
		out = append(out, k)
		if len(out) > 1_000_000 {
			t.Fatal("planner did not terminate")
		}
	}
	return out
}

func TestPlannerEmpty(t *testing.T) {
	p := NewPlanner(nil)
	if k, ok := p.Next(); ok {
		t.Fatalf("empty planner yielded %d", k)
	}
}

func TestPlannerSingleScope(t *testing.T) {
	p := NewPlanner([]Scope{{Object: 1, Invoker: 1, First: 5, Last: 9}})
	got := collect(t, p)
	want := []wal.LSN{9, 8, 7, 6, 5}
	if len(got) != len(want) {
		t.Fatalf("visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("visited %v, want %v", got, want)
		}
	}
}

func TestPlannerSkipsBetweenClusters(t *testing.T) {
	// Figure 7 shape: three clusters with gaps between them.
	scopes := []Scope{
		{Object: 1, Invoker: 1, First: 2, Last: 4},   // first (oldest) cluster
		{Object: 2, Invoker: 2, First: 10, Last: 14}, // middle cluster ...
		{Object: 3, Invoker: 3, First: 12, Last: 17}, // ... overlapping scopes
		{Object: 1, Invoker: 1, First: 13, Last: 15}, // ...
		{Object: 4, Invoker: 4, First: 30, Last: 33}, // last cluster
	}
	p := NewPlanner(scopes)
	got := collect(t, p)
	var want []wal.LSN
	for k := 33; k >= 30; k-- {
		want = append(want, wal.LSN(k))
	}
	for k := 17; k >= 10; k-- {
		want = append(want, wal.LSN(k))
	}
	for k := 4; k >= 2; k-- {
		want = append(want, wal.LSN(k))
	}
	if len(got) != len(want) {
		t.Fatalf("visited %v\nwant    %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("visited %v\nwant    %v", got, want)
		}
	}
	if p.Skipped == 0 {
		t.Fatal("no skipping recorded despite gaps")
	}
}

func TestPlannerShouldUndo(t *testing.T) {
	scopes := []Scope{
		{Object: 7, Invoker: 1, First: 5, Last: 9, Owner: 42},
		{Object: 8, Invoker: 2, First: 7, Last: 12, Owner: 43},
	}
	p := NewPlanner(scopes)
	undone := map[wal.LSN]bool{}
	for {
		k, ok := p.Next()
		if !ok {
			break
		}
		// At each position, probe the combinations an engine would.
		if owner, ok := p.ShouldUndo(1, 7, k); ok {
			if owner != 42 {
				t.Fatalf("owner = t%d, want t42", owner)
			}
			undone[k] = true
		}
		if _, ok := p.ShouldUndo(2, 7, k); ok {
			t.Fatalf("wrong invoker matched at %d", k)
		}
		if _, ok := p.ShouldUndo(1, 8, k); ok {
			t.Fatalf("wrong object matched at %d", k)
		}
	}
	for k := wal.LSN(5); k <= 9; k++ {
		if !undone[k] {
			t.Fatalf("in-scope position %d not undoable", k)
		}
	}
	if len(undone) != 5 {
		t.Fatalf("undone = %v", undone)
	}
}

func TestPlannerAdjacentScopesFormOneCluster(t *testing.T) {
	// Overlap at a single point: [3,6] and [6,9] share position 6.
	p := NewPlanner([]Scope{
		{Object: 1, Invoker: 1, First: 3, Last: 6},
		{Object: 2, Invoker: 2, First: 6, Last: 9},
	})
	got := collect(t, p)
	if len(got) != 7 || got[0] != 9 || got[len(got)-1] != 3 {
		t.Fatalf("visited %v", got)
	}
	if p.Skipped != 0 {
		t.Fatalf("skipped %d positions inside one cluster", p.Skipped)
	}
}

func TestPlannerDuplicateRightEnds(t *testing.T) {
	p := NewPlanner([]Scope{
		{Object: 1, Invoker: 1, First: 4, Last: 8},
		{Object: 2, Invoker: 2, First: 6, Last: 8},
		{Object: 3, Invoker: 3, First: 8, Last: 8},
	})
	got := collect(t, p)
	if len(got) != 5 || got[0] != 8 || got[4] != 4 {
		t.Fatalf("visited %v", got)
	}
}

// TestPlannerProperties is the paper's §3.6.2 efficiency/correctness
// argument as a randomized property: positions strictly decrease (each
// record visited at most once), every in-scope position is visited, no
// out-of-scope position is visited, and ShouldUndo answers exactly
// scope membership.
func TestPlannerProperties(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20)
		var scopes []Scope
		inScope := map[wal.LSN]bool{}
		type probe struct {
			inv wal.TxID
			obj wal.ObjectID
		}
		covered := map[wal.LSN]map[probe]bool{}
		for i := 0; i < n; i++ {
			first := wal.LSN(rng.Intn(200) + 1)
			last := first + wal.LSN(rng.Intn(30))
			s := Scope{
				Object:  wal.ObjectID(rng.Intn(5) + 1),
				Invoker: wal.TxID(rng.Intn(5) + 1),
				First:   first,
				Last:    last,
			}
			scopes = append(scopes, s)
			for k := s.First; k <= s.Last; k++ {
				inScope[k] = true
				if covered[k] == nil {
					covered[k] = map[probe]bool{}
				}
				covered[k][probe{s.Invoker, s.Object}] = true
			}
		}
		p := NewPlanner(scopes)
		visited := map[wal.LSN]bool{}
		prev := wal.LSN(1 << 62)
		for {
			k, ok := p.Next()
			if !ok {
				break
			}
			if k >= prev {
				t.Fatalf("seed %d: position %d after %d (not strictly decreasing)", seed, k, prev)
			}
			prev = k
			if !inScope[k] {
				t.Fatalf("seed %d: visited out-of-scope position %d", seed, k)
			}
			visited[k] = true
			for inv := wal.TxID(1); inv <= 5; inv++ {
				for obj := wal.ObjectID(1); obj <= 5; obj++ {
					want := covered[k][probe{inv, obj}]
					if _, got := p.ShouldUndo(inv, obj, k); got != want {
						t.Fatalf("seed %d: ShouldUndo(t%d, %d, %d) = %v, want %v", seed, inv, obj, k, got, want)
					}
				}
			}
		}
		for k := range inScope {
			if !visited[k] {
				t.Fatalf("seed %d: in-scope position %d never visited", seed, k)
			}
		}
		if p.ClusterSize() != 0 {
			t.Fatalf("seed %d: cluster not drained", seed)
		}
	}
}

func TestPlannerIgnoresDegenerateScopes(t *testing.T) {
	p := NewPlanner([]Scope{
		{Object: 1, Invoker: 1, First: wal.NilLSN, Last: 5},
		{Object: 2, Invoker: 1, First: 9, Last: 5}, // inverted
	})
	if k, ok := p.Next(); ok {
		t.Fatalf("degenerate scopes yielded %d", k)
	}
}
