package delegation

import (
	"fmt"
	"testing"

	"ariesrh/internal/wal"
)

func BenchmarkPlannerSweep(b *testing.B) {
	for _, scopes := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("scopes-%d", scopes), func(b *testing.B) {
			// Disjoint singleton scopes spread over a sparse range:
			// the sweep must skip between all of them.
			ss := make([]Scope, scopes)
			for i := range ss {
				pos := wal.LSN(i*100 + 1)
				ss[i] = Scope{Object: wal.ObjectID(i), Invoker: 1, First: pos, Last: pos + 3, Owner: 2}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := NewPlanner(ss)
				for {
					k, ok := p.Next()
					if !ok {
						break
					}
					p.ShouldUndo(1, wal.ObjectID(0), k)
				}
			}
		})
	}
}

func BenchmarkObListRecordUpdate(b *testing.B) {
	b.ReportAllocs()
	ol := NewObList()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ol.RecordUpdate(1, wal.ObjectID(i%512), wal.LSN(i+1))
	}
}

func BenchmarkDelegateTo(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		src, dst := NewObList(), NewObList()
		for o := 0; o < 16; o++ {
			src.RecordUpdate(1, wal.ObjectID(o), wal.LSN(i+o+1))
		}
		b.StartTimer()
		for o := 0; o < 16; o++ {
			src.DelegateTo(dst, 1, wal.ObjectID(o))
		}
	}
}

func BenchmarkEncodeState(b *testing.B) {
	st := State{}
	for tx := wal.TxID(1); tx <= 32; tx++ {
		ol := NewObList()
		for o := 0; o < 16; o++ {
			ol.RecordUpdate(tx, wal.ObjectID(int(tx)*100+o), wal.LSN(int(tx)*1000+o))
		}
		st[tx] = ol
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeState(st)
	}
}
