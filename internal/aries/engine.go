// Package aries implements conventional ARIES (§3.3 of the paper): an
// UNDO/REDO recovery engine with write-ahead logging, per-transaction
// backward chains, compensation log records with UndoNextLSN, fuzzy
// checkpoints, and the classic two-phase restart — a forward analysis+redo
// pass that repeats history, then a backward undo pass that rolls back the
// loser transactions by continually taking the maximum outstanding LSN.
//
// It has no delegation support whatsoever; it is the baseline for the
// paper's "no delegation, no overhead" claim (§4.2): on delegation-free
// workloads, ARIES/RH must match this engine's cost.
package aries

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"ariesrh/internal/buffer"
	"ariesrh/internal/lock"
	"ariesrh/internal/object"
	"ariesrh/internal/storage"
	"ariesrh/internal/txn"
	"ariesrh/internal/wal"
)

// Errors returned by engine operations.
var (
	ErrNoSuchTxn = errors.New("aries: no such transaction")
	ErrCrashed   = errors.New("aries: engine crashed; run Recover")
)

// Options configures an Engine.
type Options struct {
	// PoolSize is the buffer-pool capacity in pages (default 128).
	PoolSize int
	// LogDir, Disk and MasterStore override the default in-memory
	// stable storage.
	LogDir      wal.Dir
	Disk        storage.DiskManager
	MasterStore wal.Store
}

// Stats counts engine activity.
type Stats struct {
	Begins  uint64
	Updates uint64
	Reads   uint64
	Commits uint64
	Aborts  uint64
	CLRs    uint64

	RecForwardRecords  uint64
	RecRedone          uint64
	RecBackwardVisited uint64
	RecCLRs            uint64
	RecLosers          uint64
	RecWinners         uint64
}

// Engine is a conventional ARIES transaction manager.
type Engine struct {
	mu    sync.Mutex
	log   *wal.Log
	disk  storage.DiskManager
	pool  *buffer.Pool
	store *object.Store
	locks *lock.Manager
	txns  *txn.Table

	master  *master
	crashed bool
	stats   Stats
}

// New creates an engine over fresh or existing stable storage.
func New(opts Options) (*Engine, error) {
	if opts.PoolSize <= 0 {
		opts.PoolSize = 128
	}
	if opts.LogDir == nil {
		opts.LogDir = wal.NewMemDir()
	}
	if opts.Disk == nil {
		opts.Disk = storage.NewMemDisk()
	}
	if opts.MasterStore == nil {
		opts.MasterStore = wal.NewMemStore()
	}
	log, err := wal.NewLog(opts.LogDir)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		log:    log,
		disk:   opts.Disk,
		locks:  lock.NewManager(),
		txns:   txn.NewTable(),
		master: &master{store: opts.MasterStore},
	}
	e.pool = buffer.NewPool(opts.Disk, opts.PoolSize, func(lsn wal.LSN) error { return e.log.Flush(lsn) })
	e.store, err = object.Open(e.pool, opts.Disk)
	if err != nil {
		return nil, err
	}
	if log.Head() > 0 {
		e.crashed = true
		if err := e.Recover(); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Log exposes the write-ahead log for inspection.
func (e *Engine) Log() *wal.Log { return e.log }

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Begin starts a transaction.
func (e *Engine) Begin() (wal.TxID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return wal.NilTx, ErrCrashed
	}
	info := e.txns.Begin()
	lsn, err := e.log.Append(&wal.Record{Type: wal.TypeBegin, TxID: info.ID})
	if err != nil {
		return wal.NilTx, err
	}
	info.LastLSN = lsn
	info.UndoNextLSN = lsn
	e.stats.Begins++
	return info.ID, nil
}

func (e *Engine) activeInfo(tx wal.TxID) (*txn.Info, error) {
	info := e.txns.Get(tx)
	if info == nil || info.Status != txn.Active {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchTxn, tx)
	}
	return info, nil
}

// Read returns the value of obj under a shared lock.
func (e *Engine) Read(tx wal.TxID, obj wal.ObjectID) ([]byte, error) {
	e.mu.Lock()
	if e.crashed {
		e.mu.Unlock()
		return nil, ErrCrashed
	}
	if _, err := e.activeInfo(tx); err != nil {
		e.mu.Unlock()
		return nil, err
	}
	e.mu.Unlock()
	if err := e.locks.Acquire(tx, obj, lock.Shared); err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return nil, ErrCrashed
	}
	v, _, err := e.store.Read(obj)
	if err != nil {
		return nil, err
	}
	e.stats.Reads++
	return v, nil
}

// Update performs update[tx, obj] ← val with physical before/after logging.
func (e *Engine) Update(tx wal.TxID, obj wal.ObjectID, val []byte) error {
	e.mu.Lock()
	if e.crashed {
		e.mu.Unlock()
		return ErrCrashed
	}
	if _, err := e.activeInfo(tx); err != nil {
		e.mu.Unlock()
		return err
	}
	e.mu.Unlock()
	if err := e.locks.Acquire(tx, obj, lock.Exclusive); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return ErrCrashed
	}
	info, err := e.activeInfo(tx)
	if err != nil {
		e.locks.ReleaseAll(tx) // stale grant for a dead tx
		return err
	}
	before, _, err := e.store.Read(obj)
	if err != nil {
		return err
	}
	lsn, err := e.log.Append(&wal.Record{
		Type:    wal.TypeUpdate,
		TxID:    tx,
		PrevLSN: info.LastLSN,
		Object:  obj,
		Before:  before,
		After:   val,
	})
	if err != nil {
		return err
	}
	if err := e.store.Write(obj, val, lsn); err != nil {
		return err
	}
	info.LastLSN = lsn
	e.stats.Updates++
	return nil
}

// Commit commits tx: the log is forced through the commit record.
func (e *Engine) Commit(tx wal.TxID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return ErrCrashed
	}
	info, err := e.activeInfo(tx)
	if err != nil {
		return err
	}
	lsn, err := e.log.Append(&wal.Record{Type: wal.TypeCommit, TxID: tx, PrevLSN: info.LastLSN})
	if err != nil {
		return err
	}
	if err := e.log.Flush(lsn); err != nil {
		return err
	}
	if _, err := e.log.Append(&wal.Record{Type: wal.TypeEnd, TxID: tx, PrevLSN: lsn}); err != nil {
		return err
	}
	e.locks.ReleaseAll(tx)
	e.txns.Remove(tx)
	e.stats.Commits++
	return nil
}

// Abort rolls tx back by following its backward chain, writing a CLR per
// undone update.
func (e *Engine) Abort(tx wal.TxID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return ErrCrashed
	}
	info, err := e.activeInfo(tx)
	if err != nil {
		return err
	}
	if err := e.rollbackChain(info, wal.NilLSN); err != nil {
		return err
	}
	lsn, err := e.log.Append(&wal.Record{Type: wal.TypeAbort, TxID: tx, PrevLSN: info.LastLSN})
	if err != nil {
		return err
	}
	if err := e.log.Flush(lsn); err != nil {
		return err
	}
	if _, err := e.log.Append(&wal.Record{Type: wal.TypeEnd, TxID: tx, PrevLSN: lsn}); err != nil {
		return err
	}
	e.locks.ReleaseAll(tx)
	e.txns.Remove(tx)
	e.stats.Aborts++
	return nil
}

// rollbackChain undoes tx's updates starting at its chain head, stopping
// at stopAt (exclusive; NilLSN = roll back everything).  CLRs advance
// UndoNextLSN so crashes never repeat an undo.
func (e *Engine) rollbackChain(info *txn.Info, stopAt wal.LSN) error {
	next := info.LastLSN
	for next != wal.NilLSN && next > stopAt {
		rec, err := e.log.Get(next)
		if err != nil {
			return err
		}
		switch rec.Type {
		case wal.TypeUpdate:
			clr := &wal.Record{
				Type:        wal.TypeCLR,
				TxID:        info.ID,
				PrevLSN:     info.LastLSN,
				Object:      rec.Object,
				Before:      rec.Before,
				UndoNextLSN: rec.PrevLSN,
				Compensates: rec.LSN,
			}
			lsn, err := e.log.Append(clr)
			if err != nil {
				return err
			}
			if err := e.store.Write(rec.Object, rec.Before, lsn); err != nil {
				return err
			}
			info.LastLSN = lsn
			e.stats.CLRs++
			next = rec.PrevLSN
		case wal.TypeCLR:
			next = rec.UndoNextLSN
		default:
			next = rec.PrevLSN
		}
	}
	return nil
}

// Checkpoint takes a fuzzy checkpoint (transaction table + dirty-page
// table) and updates the master record.
func (e *Engine) Checkpoint() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return ErrCrashed
	}
	beginLSN, err := e.log.Append(&wal.Record{Type: wal.TypeCheckpointBegin})
	if err != nil {
		return err
	}
	payload := encodeCkpt(beginLSN, e.txns.Snapshot(), e.pool.DirtyPageTable())
	endLSN, err := e.log.Append(&wal.Record{Type: wal.TypeCheckpointEnd, PrevLSN: beginLSN, Payload: payload})
	if err != nil {
		return err
	}
	if err := e.log.Flush(endLSN); err != nil {
		return err
	}
	return e.master.Set(endLSN)
}

// Crash simulates a failure.
func (e *Engine) Crash() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.log.Crash(); err != nil {
		return err
	}
	if err := e.store.Crash(); err != nil {
		return err
	}
	e.locks.Reset()
	e.txns.Reset(1)
	e.crashed = true
	return nil
}

// ReadObject reads obj without locking; test/tool helper.
func (e *Engine) ReadObject(obj wal.ObjectID) ([]byte, bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return nil, false, ErrCrashed
	}
	return e.store.Read(obj)
}

type master struct{ store wal.Store }

func (m *master) Set(lsn wal.LSN) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(lsn))
	if _, err := m.store.WriteAt(buf[:], 0); err != nil {
		return err
	}
	return m.store.Sync()
}

func (m *master) Get() (wal.LSN, error) {
	size, err := m.store.Size()
	if err != nil || size < 8 {
		return wal.NilLSN, err
	}
	var buf [8]byte
	if _, err := m.store.ReadAt(buf[:], 0); err != nil {
		return wal.NilLSN, err
	}
	return wal.LSN(binary.LittleEndian.Uint64(buf[:])), nil
}

func encodeCkpt(beginLSN wal.LSN, infos []txn.Info, dpt map[storage.PageID]wal.LSN) []byte {
	var buf []byte
	buf = binary.LittleEndian.AppendUint64(buf, uint64(beginLSN))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(infos)))
	for _, info := range infos {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(info.ID))
		buf = append(buf, byte(info.Status))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(info.LastLSN))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(info.UndoNextLSN))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(dpt)))
	for pid, recLSN := range dpt {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(pid))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(recLSN))
	}
	return buf
}

func decodeCkpt(buf []byte) (beginLSN wal.LSN, infos []txn.Info, dpt map[storage.PageID]wal.LSN, err error) {
	bad := fmt.Errorf("aries: truncated checkpoint payload")
	off := 0
	need := func(n int) bool { return off+n <= len(buf) }
	if !need(12) {
		return 0, nil, nil, bad
	}
	beginLSN = wal.LSN(binary.LittleEndian.Uint64(buf[off:]))
	off += 8
	n := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	for i := 0; i < n; i++ {
		if !need(21) {
			return 0, nil, nil, bad
		}
		infos = append(infos, txn.Info{
			ID:          wal.TxID(binary.LittleEndian.Uint32(buf[off:])),
			Status:      txn.Status(buf[off+4]),
			LastLSN:     wal.LSN(binary.LittleEndian.Uint64(buf[off+5:])),
			UndoNextLSN: wal.LSN(binary.LittleEndian.Uint64(buf[off+13:])),
		})
		off += 21
	}
	if !need(4) {
		return 0, nil, nil, bad
	}
	m := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	// m comes off the wire; each entry is 12 bytes, so the buffer bounds
	// the real count.  Reject absurd values instead of pre-allocating.
	if m > (len(buf)-off)/12 {
		return 0, nil, nil, bad
	}
	dpt = make(map[storage.PageID]wal.LSN, m)
	for i := 0; i < m; i++ {
		if !need(12) {
			return 0, nil, nil, bad
		}
		pid := storage.PageID(binary.LittleEndian.Uint32(buf[off:]))
		dpt[pid] = wal.LSN(binary.LittleEndian.Uint64(buf[off+4:]))
		off += 12
	}
	if off != len(buf) {
		return 0, nil, nil, fmt.Errorf("aries: trailing checkpoint bytes")
	}
	return beginLSN, infos, dpt, nil
}

// Savepoint marks a partial-rollback point for tx (classic ARIES partial
// rollback via the backward chain and UndoNextLSN).
type Savepoint struct {
	tx  wal.TxID
	lsn wal.LSN
}

// Savepoint records a rollback point at tx's current chain head.
func (e *Engine) Savepoint(tx wal.TxID) (Savepoint, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return Savepoint{}, ErrCrashed
	}
	info, err := e.activeInfo(tx)
	if err != nil {
		return Savepoint{}, err
	}
	return Savepoint{tx: tx, lsn: info.LastLSN}, nil
}

// RollbackTo undoes tx's updates back to (but not including) the
// savepoint, following the backward chain and writing CLRs.  The
// transaction stays active.
func (e *Engine) RollbackTo(sp Savepoint) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return ErrCrashed
	}
	info, err := e.activeInfo(sp.tx)
	if err != nil {
		return err
	}
	return e.rollbackChain(info, sp.lsn)
}
