package aries

import (
	"fmt"

	"ariesrh/internal/txn"
	"ariesrh/internal/wal"
)

// Recover restarts the engine: a forward analysis+redo pass from the last
// checkpoint repeats history; the backward undo pass then rolls back the
// losers by continually taking the maximum outstanding UndoNextLSN across
// all loser transactions, so the log is read in strictly decreasing LSN
// order (§3.3, Figure 3).
func (e *Engine) Recover() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.crashed {
		return fmt.Errorf("aries: Recover called without a crash")
	}

	scanStart := wal.LSN(1)
	analysisAfter := wal.NilLSN
	head := e.log.Head()
	if ckptEnd, err := e.master.Get(); err != nil {
		return err
	} else if ckptEnd != wal.NilLSN && ckptEnd <= head {
		rec, err := e.log.Get(ckptEnd)
		if err != nil {
			return err
		}
		if rec.Type != wal.TypeCheckpointEnd {
			return fmt.Errorf("aries: master record points at %v", rec.Type)
		}
		beginLSN, infos, dpt, err := decodeCkpt(rec.Payload)
		if err != nil {
			return err
		}
		for _, info := range infos {
			reg := e.txns.Register(info.ID)
			reg.Status = info.Status
			reg.LastLSN = info.LastLSN
			reg.UndoNextLSN = info.UndoNextLSN
		}
		redoStart := beginLSN
		for _, recLSN := range dpt {
			if recLSN == wal.NilLSN {
				redoStart = 1
				break
			}
			if recLSN < redoStart {
				redoStart = recLSN
			}
		}
		scanStart = redoStart
		analysisAfter = ckptEnd
	}

	// Forward pass: analysis + redo.
	applied := make(map[wal.ObjectID]wal.LSN)
	e.log.ResetReadCursor()
	err := e.log.Scan(scanStart, wal.NilLSN, func(rec *wal.Record) (bool, error) {
		e.stats.RecForwardRecords++
		analyze := rec.LSN > analysisAfter
		switch rec.Type {
		case wal.TypeBegin:
			if analyze {
				info := e.txns.Register(rec.TxID)
				info.Status = txn.Active
				info.LastLSN = rec.LSN
				info.UndoNextLSN = rec.LSN
			}
		case wal.TypeUpdate:
			if analyze {
				info := e.txns.Register(rec.TxID)
				info.LastLSN = rec.LSN
				info.UndoNextLSN = rec.LSN
			}
			if err := e.redoApply(applied, rec.Object, rec.After, rec.LSN); err != nil {
				return false, err
			}
		case wal.TypeCLR:
			if analyze {
				if info := e.txns.Get(rec.TxID); info != nil {
					info.LastLSN = rec.LSN
					info.UndoNextLSN = rec.UndoNextLSN
				}
			}
			if err := e.redoApply(applied, rec.Object, rec.Before, rec.LSN); err != nil {
				return false, err
			}
		case wal.TypeCommit:
			if analyze {
				e.stats.RecWinners++
				if info := e.txns.Get(rec.TxID); info != nil {
					info.Status = txn.Committed
					info.LastLSN = rec.LSN
				}
			}
		case wal.TypeAbort:
			if analyze {
				if info := e.txns.Get(rec.TxID); info != nil {
					info.Status = txn.Aborted
					info.LastLSN = rec.LSN
				}
			}
		case wal.TypeEnd:
			if analyze {
				e.txns.Remove(rec.TxID)
			}
		case wal.TypeCheckpointBegin, wal.TypeCheckpointEnd:
		case wal.TypeDelegate:
			return false, fmt.Errorf("aries: delegate record %d in a conventional ARIES log", rec.LSN)
		default:
			return false, fmt.Errorf("aries: unexpected record %v", rec.Type)
		}
		return true, nil
	})
	if err != nil {
		return err
	}

	// Classify and undo losers: continually take the max UndoNextLSN.
	undoNext := make(map[wal.TxID]wal.LSN)
	for _, info := range e.txns.Snapshot() {
		if info.Status == txn.Committed {
			if _, err := e.log.Append(&wal.Record{Type: wal.TypeEnd, TxID: info.ID, PrevLSN: info.LastLSN}); err != nil {
				return err
			}
			e.txns.Remove(info.ID)
			continue
		}
		e.stats.RecLosers++
		undoNext[info.ID] = info.UndoNextLSN
	}
	for len(undoNext) > 0 {
		var maxTx wal.TxID
		var maxLSN wal.LSN
		for id, lsn := range undoNext {
			if lsn >= maxLSN {
				maxLSN = lsn
				maxTx = id
			}
		}
		if maxLSN == wal.NilLSN {
			break
		}
		rec, err := e.log.Get(maxLSN)
		if err != nil {
			return err
		}
		e.stats.RecBackwardVisited++
		info := e.txns.Get(maxTx)
		switch rec.Type {
		case wal.TypeUpdate:
			clr := &wal.Record{
				Type:        wal.TypeCLR,
				TxID:        maxTx,
				PrevLSN:     info.LastLSN,
				Object:      rec.Object,
				Before:      rec.Before,
				UndoNextLSN: rec.PrevLSN,
				Compensates: rec.LSN,
			}
			lsn, err := e.log.Append(clr)
			if err != nil {
				return err
			}
			if err := e.store.Write(rec.Object, rec.Before, lsn); err != nil {
				return err
			}
			info.LastLSN = lsn
			e.stats.CLRs++
			e.stats.RecCLRs++
			undoNext[maxTx] = rec.PrevLSN
		case wal.TypeCLR:
			undoNext[maxTx] = rec.UndoNextLSN
		case wal.TypeBegin:
			delete(undoNext, maxTx)
			continue
		default:
			undoNext[maxTx] = rec.PrevLSN
		}
		if undoNext[maxTx] == wal.NilLSN {
			delete(undoNext, maxTx)
		}
	}
	for _, info := range e.txns.Snapshot() {
		lsn, err := e.log.Append(&wal.Record{Type: wal.TypeAbort, TxID: info.ID, PrevLSN: info.LastLSN})
		if err != nil {
			return err
		}
		if _, err := e.log.Append(&wal.Record{Type: wal.TypeEnd, TxID: info.ID, PrevLSN: lsn}); err != nil {
			return err
		}
		e.txns.Remove(info.ID)
	}
	if err := e.log.Flush(e.log.Head()); err != nil {
		return err
	}
	e.crashed = false
	return nil
}

// redoApply repeats history for one logged change (see the identically
// named helper in internal/core for the pageLSN-coverage argument).
func (e *Engine) redoApply(applied map[wal.ObjectID]wal.LSN, obj wal.ObjectID, val []byte, lsn wal.LSN) error {
	la, ok := applied[obj]
	if !ok {
		pl, err := e.store.PageLSN(obj)
		if err != nil {
			return err
		}
		la = pl
		applied[obj] = la
	}
	if lsn <= la {
		return nil
	}
	if err := e.store.Write(obj, val, lsn); err != nil {
		return err
	}
	applied[obj] = lsn
	e.stats.RecRedone++
	return nil
}
