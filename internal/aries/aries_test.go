package aries

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"ariesrh/internal/wal"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(Options{PoolSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func mustBegin(t *testing.T, e *Engine) wal.TxID {
	t.Helper()
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func mustUpdate(t *testing.T, e *Engine, tx wal.TxID, obj wal.ObjectID, val string) {
	t.Helper()
	if err := e.Update(tx, obj, []byte(val)); err != nil {
		t.Fatalf("update: %v", err)
	}
}

func wantValue(t *testing.T, e *Engine, obj wal.ObjectID, want string) {
	t.Helper()
	v, ok, err := e.ReadObject(obj)
	if err != nil {
		t.Fatal(err)
	}
	if want == "" {
		if ok && len(v) > 0 {
			t.Fatalf("object %d = %q, want empty", obj, v)
		}
		return
	}
	if !ok || !bytes.Equal(v, []byte(want)) {
		t.Fatalf("object %d = %q (ok=%v), want %q", obj, v, ok, want)
	}
}

func crashAndRecover(t *testing.T, e *Engine) {
	t.Helper()
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}
}

func TestCommitAbortBasics(t *testing.T) {
	e := newEngine(t)
	t1 := mustBegin(t, e)
	mustUpdate(t, e, t1, 1, "one")
	if err := e.Commit(t1); err != nil {
		t.Fatal(err)
	}
	wantValue(t, e, 1, "one")
	t2 := mustBegin(t, e)
	mustUpdate(t, e, t2, 1, "two")
	mustUpdate(t, e, t2, 2, "junk")
	if err := e.Abort(t2); err != nil {
		t.Fatal(err)
	}
	wantValue(t, e, 1, "one")
	wantValue(t, e, 2, "")
}

func TestAbortFollowsBackwardChain(t *testing.T) {
	e := newEngine(t)
	t1 := mustBegin(t, e)
	for i := 0; i < 10; i++ {
		mustUpdate(t, e, t1, wal.ObjectID(i%3+1), fmt.Sprintf("v%d", i))
	}
	if err := e.Abort(t1); err != nil {
		t.Fatal(err)
	}
	for obj := wal.ObjectID(1); obj <= 3; obj++ {
		wantValue(t, e, obj, "")
	}
	if e.Stats().CLRs != 10 {
		t.Fatalf("CLRs = %d, want 10", e.Stats().CLRs)
	}
}

func TestRecoveryWinnersAndLosers(t *testing.T) {
	e := newEngine(t)
	w := mustBegin(t, e)
	l := mustBegin(t, e)
	mustUpdate(t, e, w, 1, "keep")
	mustUpdate(t, e, l, 2, "drop")
	if err := e.Commit(w); err != nil {
		t.Fatal(err)
	}
	if err := e.Log().Flush(e.Log().Head()); err != nil {
		t.Fatal(err)
	}
	crashAndRecover(t, e)
	wantValue(t, e, 1, "keep")
	wantValue(t, e, 2, "")
	s := e.Stats()
	if s.RecWinners != 1 || s.RecLosers != 1 {
		t.Fatalf("winners=%d losers=%d", s.RecWinners, s.RecLosers)
	}
}

func TestRecoveryWithCheckpoint(t *testing.T) {
	e := newEngine(t)
	w := mustBegin(t, e)
	mustUpdate(t, e, w, 1, "pre-ckpt")
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustUpdate(t, e, w, 2, "post-ckpt")
	if err := e.Commit(w); err != nil {
		t.Fatal(err)
	}
	l := mustBegin(t, e)
	mustUpdate(t, e, l, 3, "junk")
	if err := e.Log().Flush(e.Log().Head()); err != nil {
		t.Fatal(err)
	}
	crashAndRecover(t, e)
	wantValue(t, e, 1, "pre-ckpt")
	wantValue(t, e, 2, "post-ckpt")
	wantValue(t, e, 3, "")
}

func TestRecoveryLoserSpanningCheckpoint(t *testing.T) {
	e := newEngine(t)
	l := mustBegin(t, e)
	mustUpdate(t, e, l, 1, "junk")
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustUpdate(t, e, l, 2, "more-junk")
	if err := e.Log().Flush(e.Log().Head()); err != nil {
		t.Fatal(err)
	}
	crashAndRecover(t, e)
	wantValue(t, e, 1, "")
	wantValue(t, e, 2, "")
}

func TestRecoveryRepeatedCrashes(t *testing.T) {
	e := newEngine(t)
	setup := mustBegin(t, e)
	mustUpdate(t, e, setup, 1, "base")
	if err := e.Commit(setup); err != nil {
		t.Fatal(err)
	}
	l := mustBegin(t, e)
	mustUpdate(t, e, l, 1, "junk")
	if err := e.Log().Flush(e.Log().Head()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		crashAndRecover(t, e)
	}
	wantValue(t, e, 1, "base")
}

func TestAbortedBeforeCrashIdempotent(t *testing.T) {
	e := newEngine(t)
	setup := mustBegin(t, e)
	mustUpdate(t, e, setup, 1, "base")
	if err := e.Commit(setup); err != nil {
		t.Fatal(err)
	}
	l := mustBegin(t, e)
	mustUpdate(t, e, l, 1, "junk")
	if err := e.Abort(l); err != nil {
		t.Fatal(err)
	}
	crashAndRecover(t, e)
	wantValue(t, e, 1, "base")
}

func TestDelegateRecordRejected(t *testing.T) {
	// A conventional ARIES log must never contain delegate records; the
	// engine reports corruption rather than silently misinterpreting.
	e := newEngine(t)
	t1 := mustBegin(t, e)
	mustUpdate(t, e, t1, 1, "x")
	if _, err := e.Log().Append(&wal.Record{Type: wal.TypeDelegate, TxID: t1, Tor: t1, Tee: 99, Object: 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.Log().Flush(e.Log().Head()); err != nil {
		t.Fatal(err)
	}
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := e.Recover(); err == nil {
		t.Fatal("recovery accepted a delegate record")
	}
}

func TestOperationsAfterCrashRejected(t *testing.T) {
	e := newEngine(t)
	tx := mustBegin(t, e)
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Begin(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v", err)
	}
	if err := e.Update(tx, 1, []byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v", err)
	}
}

func TestBackwardPassMonotone(t *testing.T) {
	// Interleaved losers: the undo pass must still read the log in
	// decreasing order; we verify via the wal random-read counter.
	e := newEngine(t)
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	for i := 0; i < 20; i++ {
		mustUpdate(t, e, t1, wal.ObjectID(i+1), "a")
		mustUpdate(t, e, t2, wal.ObjectID(i+100), "b")
	}
	if err := e.Log().Flush(e.Log().Head()); err != nil {
		t.Fatal(err)
	}
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		wantValue(t, e, wal.ObjectID(i+1), "")
		wantValue(t, e, wal.ObjectID(i+100), "")
	}
	if got := e.Stats().RecBackwardVisited; got != 42 { // 40 updates + 2 begins
		t.Fatalf("backward visited %d records", got)
	}
}

func TestSavepointPartialRollback(t *testing.T) {
	e := newEngine(t)
	tx := mustBegin(t, e)
	mustUpdate(t, e, tx, 1, "keep")
	sp, err := e.Savepoint(tx)
	if err != nil {
		t.Fatal(err)
	}
	mustUpdate(t, e, tx, 1, "drop")
	mustUpdate(t, e, tx, 2, "drop-too")
	if err := e.RollbackTo(sp); err != nil {
		t.Fatal(err)
	}
	wantValue(t, e, 1, "keep")
	wantValue(t, e, 2, "")
	mustUpdate(t, e, tx, 3, "after")
	if err := e.Commit(tx); err != nil {
		t.Fatal(err)
	}
	wantValue(t, e, 1, "keep")
	wantValue(t, e, 3, "after")
}

func TestSavepointThenFullAbortNoDoubleUndo(t *testing.T) {
	e := newEngine(t)
	setup := mustBegin(t, e)
	mustUpdate(t, e, setup, 1, "base")
	if err := e.Commit(setup); err != nil {
		t.Fatal(err)
	}
	tx := mustBegin(t, e)
	mustUpdate(t, e, tx, 1, "v1")
	sp, _ := e.Savepoint(tx)
	mustUpdate(t, e, tx, 1, "v2")
	if err := e.RollbackTo(sp); err != nil {
		t.Fatal(err)
	}
	wantValue(t, e, 1, "v1")
	mustUpdate(t, e, tx, 1, "v3")
	if err := e.Abort(tx); err != nil {
		t.Fatal(err)
	}
	// UndoNextLSN in the CLRs must have steered the abort past the
	// already-compensated region: final value is the committed base.
	wantValue(t, e, 1, "base")
}

func TestSavepointCrashLosesIt(t *testing.T) {
	e := newEngine(t)
	tx := mustBegin(t, e)
	mustUpdate(t, e, tx, 1, "junk")
	sp, _ := e.Savepoint(tx)
	_ = sp
	if err := e.Log().Flush(e.Log().Head()); err != nil {
		t.Fatal(err)
	}
	crashAndRecover(t, e)
	wantValue(t, e, 1, "")
}
