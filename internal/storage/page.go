// Package storage implements the stable database storage the recovery
// engines operate on: fixed-size slotted pages holding object records, and
// disk managers (in-memory and file-backed) that persist them.
//
// Updates are done in place on the updated object (paper §2.1.1), so each
// object occupies a fixed slot on a fixed page once allocated; the physical
// before/after images in the WAL address objects, and the object directory
// (internal/object) maps ObjectID → (page, slot).
//
// Each page carries a pageLSN — the LSN of the last log record whose change
// is reflected in the page — which makes redo idempotent: a redo is applied
// only when the record's LSN exceeds the pageLSN.
package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"ariesrh/internal/wal"
)

// PageID identifies a page.  Pages are numbered densely from 0.
type PageID uint32

// Geometry of the page format.
const (
	// PageSize is the size of a page on disk in bytes.
	PageSize = 4096
	// MaxValueSize is the largest object value storable in a slot.
	MaxValueSize = 112
	// slotSize = used flag + object id + value length + value bytes.
	slotSize = 1 + 8 + 2 + MaxValueSize
	// pageHeaderSize = pageLSN + crc + slot count.
	pageHeaderSize = 8 + 4 + 2
	// SlotsPerPage is the number of object slots on each page.
	SlotsPerPage = (PageSize - pageHeaderSize) / slotSize
)

// Slot holds one object record inside a page.
type Slot struct {
	// Used reports whether the slot holds an object.
	Used bool
	// Object is the ID of the stored object.
	Object wal.ObjectID
	// Value is the object's current value (≤ MaxValueSize bytes).
	Value []byte
}

// Page is the in-memory form of a disk page.
type Page struct {
	// LSN is the pageLSN: the LSN of the last record applied to the page.
	LSN wal.LSN
	// Slots are the object records.
	Slots [SlotsPerPage]Slot
}

// FreeSlot returns the index of an unused slot, or -1 if the page is full.
func (p *Page) FreeSlot() int {
	for i := range p.Slots {
		if !p.Slots[i].Used {
			return i
		}
	}
	return -1
}

// Marshal serializes the page into a PageSize-byte buffer with a checksum
// over the payload.
func (p *Page) Marshal() ([]byte, error) {
	buf := make([]byte, PageSize)
	binary.LittleEndian.PutUint64(buf[0:], uint64(p.LSN))
	binary.LittleEndian.PutUint16(buf[12:], uint16(SlotsPerPage))
	off := pageHeaderSize
	for i := range p.Slots {
		s := &p.Slots[i]
		if len(s.Value) > MaxValueSize {
			return nil, fmt.Errorf("storage: slot %d value %d bytes exceeds max %d", i, len(s.Value), MaxValueSize)
		}
		if s.Used {
			buf[off] = 1
		}
		binary.LittleEndian.PutUint64(buf[off+1:], uint64(s.Object))
		binary.LittleEndian.PutUint16(buf[off+9:], uint16(len(s.Value)))
		copy(buf[off+11:], s.Value)
		off += slotSize
	}
	sum := crc32.ChecksumIEEE(buf[12:]) // everything after the crc field
	binary.LittleEndian.PutUint32(buf[8:], sum)
	return buf, nil
}

// UnmarshalPage parses a PageSize-byte buffer produced by Marshal.
func UnmarshalPage(buf []byte) (*Page, error) {
	if len(buf) != PageSize {
		return nil, fmt.Errorf("storage: page buffer is %d bytes, want %d", len(buf), PageSize)
	}
	sum := binary.LittleEndian.Uint32(buf[8:])
	if crc32.ChecksumIEEE(buf[12:]) != sum {
		return nil, fmt.Errorf("storage: page checksum mismatch")
	}
	if n := binary.LittleEndian.Uint16(buf[12:]); int(n) != SlotsPerPage {
		return nil, fmt.Errorf("storage: page has %d slots, want %d", n, SlotsPerPage)
	}
	p := &Page{LSN: wal.LSN(binary.LittleEndian.Uint64(buf[0:]))}
	off := pageHeaderSize
	for i := range p.Slots {
		s := &p.Slots[i]
		s.Used = buf[off] == 1
		s.Object = wal.ObjectID(binary.LittleEndian.Uint64(buf[off+1:]))
		n := int(binary.LittleEndian.Uint16(buf[off+9:]))
		if n > MaxValueSize {
			return nil, fmt.Errorf("storage: slot %d declares %d value bytes", i, n)
		}
		s.Value = append([]byte(nil), buf[off+11:off+11+n]...)
		off += slotSize
	}
	return p, nil
}

// Clone deep-copies the page.
func (p *Page) Clone() *Page {
	c := &Page{LSN: p.LSN}
	for i := range p.Slots {
		c.Slots[i] = p.Slots[i]
		c.Slots[i].Value = append([]byte(nil), p.Slots[i].Value...)
	}
	return c
}
