package storage

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"ariesrh/internal/wal"
)

func TestPageMarshalRoundTrip(t *testing.T) {
	p := &Page{LSN: 12345}
	p.Slots[0] = Slot{Used: true, Object: 7, Value: []byte("hello")}
	p.Slots[3] = Slot{Used: true, Object: 9, Value: bytes.Repeat([]byte{0xAB}, MaxValueSize)}
	buf, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != PageSize {
		t.Fatalf("marshal produced %d bytes", len(buf))
	}
	got, err := UnmarshalPage(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.LSN != p.LSN {
		t.Fatalf("LSN = %d, want %d", got.LSN, p.LSN)
	}
	for i := range p.Slots {
		if got.Slots[i].Used != p.Slots[i].Used || got.Slots[i].Object != p.Slots[i].Object ||
			!bytes.Equal(got.Slots[i].Value, p.Slots[i].Value) {
			t.Fatalf("slot %d mismatch: got %+v want %+v", i, got.Slots[i], p.Slots[i])
		}
	}
}

func TestPageMarshalRejectsOversizedValue(t *testing.T) {
	p := &Page{}
	p.Slots[0] = Slot{Used: true, Object: 1, Value: make([]byte, MaxValueSize+1)}
	if _, err := p.Marshal(); err == nil {
		t.Fatal("oversized value accepted")
	}
}

func TestPageChecksumDetectsCorruption(t *testing.T) {
	p := &Page{LSN: 1}
	p.Slots[0] = Slot{Used: true, Object: 1, Value: []byte("v")}
	buf, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	buf[100] ^= 0xFF
	if _, err := UnmarshalPage(buf); err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestPageRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(lsn uint64, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := &Page{LSN: wal.LSN(lsn)}
		for i := range p.Slots {
			if r.Intn(2) == 0 {
				continue
			}
			v := make([]byte, r.Intn(MaxValueSize+1))
			r.Read(v)
			p.Slots[i] = Slot{Used: true, Object: wal.ObjectID(r.Uint64()), Value: v}
		}
		buf, err := p.Marshal()
		if err != nil {
			return false
		}
		got, err := UnmarshalPage(buf)
		if err != nil || got.LSN != p.LSN {
			return false
		}
		for i := range p.Slots {
			if got.Slots[i].Used != p.Slots[i].Used || got.Slots[i].Object != p.Slots[i].Object ||
				!bytes.Equal(got.Slots[i].Value, p.Slots[i].Value) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPageFreeSlot(t *testing.T) {
	p := &Page{}
	if p.FreeSlot() != 0 {
		t.Fatalf("empty page free slot = %d", p.FreeSlot())
	}
	for i := range p.Slots {
		p.Slots[i].Used = true
	}
	if p.FreeSlot() != -1 {
		t.Fatal("full page reported a free slot")
	}
	p.Slots[5].Used = false
	if p.FreeSlot() != 5 {
		t.Fatalf("free slot = %d, want 5", p.FreeSlot())
	}
}

func testDisk(t *testing.T, d DiskManager) {
	t.Helper()
	if d.NumPages() != 0 {
		t.Fatalf("fresh disk has %d pages", d.NumPages())
	}
	pid, err := d.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if pid != 0 || d.NumPages() != 1 {
		t.Fatalf("first page id = %d, pages = %d", pid, d.NumPages())
	}
	p := &Page{LSN: 99}
	p.Slots[1] = Slot{Used: true, Object: 4, Value: []byte("val")}
	if err := d.WritePage(pid, p); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadPage(pid)
	if err != nil {
		t.Fatal(err)
	}
	if got.LSN != 99 || !got.Slots[1].Used || string(got.Slots[1].Value) != "val" {
		t.Fatalf("read back %+v", got)
	}
	if _, err := d.ReadPage(5); err == nil {
		t.Fatal("read of unallocated page succeeded")
	}
	if err := d.WritePage(5, p); err == nil {
		t.Fatal("write of unallocated page succeeded")
	}
	s := d.Stats()
	if s.Reads == 0 || s.Writes == 0 {
		t.Fatalf("stats not counted: %+v", s)
	}
}

func TestMemDisk(t *testing.T) { testDisk(t, NewMemDisk()) }

func TestFileDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	d, err := OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	testDisk(t, d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: pages persist.
	d2, err := OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.NumPages() != 1 {
		t.Fatalf("reopened disk has %d pages", d2.NumPages())
	}
	got, err := d2.ReadPage(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.LSN != 99 {
		t.Fatalf("reopened page LSN = %d", got.LSN)
	}
}

func TestPageClone(t *testing.T) {
	p := &Page{LSN: 5}
	p.Slots[0] = Slot{Used: true, Object: 1, Value: []byte("abc")}
	c := p.Clone()
	c.Slots[0].Value[0] = 'X'
	c.LSN = 9
	if p.Slots[0].Value[0] != 'a' || p.LSN != 5 {
		t.Fatal("clone aliases the original")
	}
}
