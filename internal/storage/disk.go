package storage

import (
	"fmt"
	"os"
	"sync"
)

// DiskStats counts page-level I/O for the benchmark harness.
type DiskStats struct {
	// Reads and Writes count whole-page transfers.
	Reads  uint64
	Writes uint64
}

// Sub returns the element-wise difference s - o.
func (s DiskStats) Sub(o DiskStats) DiskStats {
	return DiskStats{Reads: s.Reads - o.Reads, Writes: s.Writes - o.Writes}
}

// DiskManager persists pages.  Page writes are atomic at page granularity
// (real systems achieve this with sector-aligned writes; the simulated
// manager provides it trivially).  Both implementations survive the
// engines' simulated crashes: only buffered (in-pool) state is volatile.
type DiskManager interface {
	// ReadPage reads page pid into a fresh Page.
	ReadPage(pid PageID) (*Page, error)
	// WritePage durably writes the page.
	WritePage(pid PageID, p *Page) error
	// Allocate appends a fresh, empty page and returns its ID.
	Allocate() (PageID, error)
	// NumPages returns the number of allocated pages.
	NumPages() PageID
	// Stats returns cumulative I/O counters.
	Stats() DiskStats
	// Close releases the manager.
	Close() error
}

// MemDisk is an in-memory DiskManager that models stable storage.
type MemDisk struct {
	mu    sync.RWMutex
	pages [][]byte
	stats DiskStats
}

// NewMemDisk returns an empty in-memory disk.
func NewMemDisk() *MemDisk { return &MemDisk{} }

// ReadPage implements DiskManager.
func (d *MemDisk) ReadPage(pid PageID) (*Page, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(pid) >= len(d.pages) {
		return nil, fmt.Errorf("storage: read of unallocated page %d", pid)
	}
	d.stats.Reads++
	return UnmarshalPage(d.pages[pid])
}

// WritePage implements DiskManager.
func (d *MemDisk) WritePage(pid PageID, p *Page) error {
	buf, err := p.Marshal()
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(pid) >= len(d.pages) {
		return fmt.Errorf("storage: write of unallocated page %d", pid)
	}
	d.pages[pid] = buf
	d.stats.Writes++
	return nil
}

// Allocate implements DiskManager.
func (d *MemDisk) Allocate() (PageID, error) {
	empty, err := (&Page{}).Marshal()
	if err != nil {
		return 0, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pages = append(d.pages, empty)
	return PageID(len(d.pages) - 1), nil
}

// NumPages implements DiskManager.
func (d *MemDisk) NumPages() PageID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return PageID(len(d.pages))
}

// Stats implements DiskManager.
func (d *MemDisk) Stats() DiskStats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.stats
}

// Close implements DiskManager.
func (d *MemDisk) Close() error { return nil }

// FileDisk is a DiskManager backed by a single file of concatenated pages.
type FileDisk struct {
	mu    sync.Mutex
	f     *os.File
	n     PageID
	stats DiskStats
}

// OpenFileDisk opens (creating if necessary) a page file at path.
func OpenFileDisk(path string) (*FileDisk, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if fi.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s size %d is not page aligned", path, fi.Size())
	}
	return &FileDisk{f: f, n: PageID(fi.Size() / PageSize)}, nil
}

// ReadPage implements DiskManager.
func (d *FileDisk) ReadPage(pid PageID) (*Page, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if pid >= d.n {
		return nil, fmt.Errorf("storage: read of unallocated page %d", pid)
	}
	buf := make([]byte, PageSize)
	if _, err := d.f.ReadAt(buf, int64(pid)*PageSize); err != nil {
		return nil, fmt.Errorf("storage: read page %d: %w", pid, err)
	}
	d.stats.Reads++
	return UnmarshalPage(buf)
}

// WritePage implements DiskManager.
func (d *FileDisk) WritePage(pid PageID, p *Page) error {
	buf, err := p.Marshal()
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if pid >= d.n {
		return fmt.Errorf("storage: write of unallocated page %d", pid)
	}
	if _, err := d.f.WriteAt(buf, int64(pid)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", pid, err)
	}
	if err := d.f.Sync(); err != nil {
		return err
	}
	d.stats.Writes++
	return nil
}

// Allocate implements DiskManager.
func (d *FileDisk) Allocate() (PageID, error) {
	empty, err := (&Page{}).Marshal()
	if err != nil {
		return 0, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	pid := d.n
	if _, err := d.f.WriteAt(empty, int64(pid)*PageSize); err != nil {
		return 0, fmt.Errorf("storage: allocate page %d: %w", pid, err)
	}
	d.n++
	return pid, nil
}

// NumPages implements DiskManager.
func (d *FileDisk) NumPages() PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.n
}

// Stats implements DiskManager.
func (d *FileDisk) Stats() DiskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Close implements DiskManager.
func (d *FileDisk) Close() error { return d.f.Close() }
