package txn

import (
	"sync"
	"testing"

	"ariesrh/internal/wal"
)

func TestBeginAssignsFreshIDs(t *testing.T) {
	tab := NewTable()
	a := tab.Begin()
	b := tab.Begin()
	if a.ID == b.ID || a.ID == wal.NilTx || b.ID == wal.NilTx {
		t.Fatalf("ids: %d %d", a.ID, b.ID)
	}
	if a.Status != Active {
		t.Fatalf("status = %v", a.Status)
	}
}

func TestRegisterIdempotentAndAdvancesNext(t *testing.T) {
	tab := NewTable()
	info := tab.Register(10)
	if again := tab.Register(10); again != info {
		t.Fatal("re-register returned a new entry")
	}
	if next := tab.Begin(); next.ID != 11 {
		t.Fatalf("begin after register(10) gave %d", next.ID)
	}
}

func TestGetRemove(t *testing.T) {
	tab := NewTable()
	a := tab.Begin()
	if tab.Get(a.ID) != a {
		t.Fatal("get missed")
	}
	tab.Remove(a.ID)
	if tab.Get(a.ID) != nil {
		t.Fatal("removed entry still present")
	}
	if tab.Get(999) != nil {
		t.Fatal("unknown id returned an entry")
	}
}

func TestSnapshotOrderedCopies(t *testing.T) {
	tab := NewTable()
	tab.Register(3)
	tab.Register(1)
	tab.Register(2)
	snap := tab.Snapshot()
	if len(snap) != 3 || snap[0].ID != 1 || snap[1].ID != 2 || snap[2].ID != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
	snap[0].LastLSN = 999
	if tab.Get(1).LastLSN == 999 {
		t.Fatal("snapshot aliases table entries")
	}
}

func TestActiveFiltersByStatus(t *testing.T) {
	tab := NewTable()
	a := tab.Begin()
	b := tab.Begin()
	c := tab.Begin()
	b.Status = Committed
	c.Status = Aborted
	act := tab.Active()
	if len(act) != 1 || act[0] != a.ID {
		t.Fatalf("active = %v", act)
	}
}

func TestResetSeedsNextID(t *testing.T) {
	tab := NewTable()
	tab.Begin()
	tab.Reset(100)
	if tab.Len() != 0 {
		t.Fatal("reset kept entries")
	}
	if got := tab.Begin().ID; got != 100 {
		t.Fatalf("post-reset id = %d", got)
	}
	tab.Reset(0)
	if got := tab.Begin().ID; got != 1 {
		t.Fatalf("reset(0) id = %d", got)
	}
}

func TestStatusString(t *testing.T) {
	if Active.String() != "active" || Committed.String() != "committed" || Aborted.String() != "aborted" {
		t.Fatal("status names")
	}
}

func TestConcurrentBegin(t *testing.T) {
	tab := NewTable()
	const n = 200
	ids := make(chan wal.TxID, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids <- tab.Begin().ID
		}()
	}
	wg.Wait()
	close(ids)
	seen := make(map[wal.TxID]bool)
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
}
