// Package txn implements the transaction table (the paper's Tr_List, §3.4):
// for each transaction its status and the head of its backward chain (the
// LSN of the most recent record written on its behalf), plus the
// winner/loser marking recovery uses.
package txn

import (
	"fmt"
	"sort"
	"sync"

	"ariesrh/internal/wal"
)

// Status is a transaction's lifecycle state.
type Status int

// Transaction states.
const (
	// Active transactions may update, delegate, commit or abort.
	Active Status = iota
	// Committed transactions have a durable commit record.
	Committed
	// Aborted transactions have been rolled back.
	Aborted
	// Prepared transactions are in-doubt participants of a cross-shard
	// transaction (internal/shard's per-shard-logged 2PC): a durable
	// prepare record pins them, and only the coordinator shard's
	// decision — or presumed abort when the coordinator has none —
	// resolves them to Committed or Aborted.  Recovery classifies them
	// as neither winner nor loser: their effects stay redone and
	// un-undone until resolution.
	Prepared
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Active:
		return "active"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	case Prepared:
		return "prepared"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Info is one transaction-table entry.
type Info struct {
	// ID is the transaction's identifier.
	ID wal.TxID
	// Status is the lifecycle state.
	Status Status
	// LastLSN is the head of the transaction's backward chain: the LSN
	// of the most recent log record written on its behalf.
	LastLSN wal.LSN
	// UndoNextLSN is the next record to undo during rollback (advanced
	// past already-compensated records by CLRs).
	UndoNextLSN wal.LSN
}

// Table is the transaction table.  It is safe for concurrent use.
type Table struct {
	mu   sync.Mutex
	m    map[wal.TxID]*Info
	next wal.TxID
}

// NewTable returns an empty transaction table.
func NewTable() *Table {
	return &Table{m: make(map[wal.TxID]*Info), next: 1}
}

// Begin allocates a fresh transaction ID and inserts an Active entry.
func (t *Table) Begin() *Info {
	t.mu.Lock()
	defer t.mu.Unlock()
	info := &Info{ID: t.next, Status: Active}
	t.next++
	t.m[info.ID] = info
	return info
}

// Register inserts an entry with a specific ID (used by recovery when
// rebuilding the table from begin records).  Registering an existing ID
// returns the existing entry.
func (t *Table) Register(id wal.TxID) *Info {
	t.mu.Lock()
	defer t.mu.Unlock()
	if info, ok := t.m[id]; ok {
		return info
	}
	info := &Info{ID: id, Status: Active}
	t.m[id] = info
	if id >= t.next {
		t.next = id + 1
	}
	return info
}

// Get returns the entry for id, or nil.
func (t *Table) Get(id wal.TxID) *Info {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m[id]
}

// Remove deletes the entry for id (written after the end record).
func (t *Table) Remove(id wal.TxID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.m, id)
}

// Snapshot returns copies of all entries ordered by ID (checkpointing).
func (t *Table) Snapshot() []Info {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Info, 0, len(t.m))
	for _, info := range t.m {
		out = append(out, *info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Active returns the IDs of all active transactions, ordered.
func (t *Table) Active() []wal.TxID {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []wal.TxID
	for id, info := range t.m {
		if info.Status == Active {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Reset clears the table, optionally seeding the next transaction ID so
// post-recovery transactions do not reuse IDs present in the log.
func (t *Table) Reset(nextID wal.TxID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m = make(map[wal.TxID]*Info)
	if nextID < 1 {
		nextID = 1
	}
	t.next = nextID
}

// Len returns the number of entries.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}
