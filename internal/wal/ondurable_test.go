package wal

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// failSyncStore fails Sync with a configurable error.
type failSyncStore struct {
	*MemStore
	mu  sync.Mutex
	err error
}

func (s *failSyncStore) FailSyncsWith(err error) {
	s.mu.Lock()
	s.err = err
	s.mu.Unlock()
}

func (s *failSyncStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return s.MemStore.Sync()
}

func appendN(t *testing.T, l *Log, n int) LSN {
	t.Helper()
	var last LSN
	for i := 0; i < n; i++ {
		lsn, err := l.Append(&Record{Type: TypeUpdate, TxID: 1, Object: 1, After: []byte{byte(i)}})
		if err != nil {
			t.Fatal(err)
		}
		last = lsn
	}
	return last
}

func waitCB(t *testing.T, ch <-chan error) error {
	t.Helper()
	select {
	case err := <-ch:
		return err
	case <-time.After(2 * time.Second):
		t.Fatal("OnDurable callback never fired")
		return nil
	}
}

// TestOnDurableAlreadyFlushed: a registration at or below the durable
// horizon fires immediately with nil.
func TestOnDurableAlreadyFlushed(t *testing.T) {
	l, err := NewLog(NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	lsn := appendN(t, l, 3)
	if err := l.Flush(lsn); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	l.OnDurable(lsn, func(err error) { got <- err })
	if err := waitCB(t, got); err != nil {
		t.Fatalf("callback error = %v, want nil", err)
	}
}

// TestOnDurableFiresOnSyncFlush: a pending registration fires once a
// synchronous Flush covers it, and registrations above the flushed range
// stay pending.
func TestOnDurableFiresOnSyncFlush(t *testing.T) {
	l, err := NewLog(NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	last := appendN(t, l, 5)
	low, high := make(chan error, 1), make(chan error, 1)
	l.OnDurable(2, func(err error) { low <- err })
	l.OnDurable(last, func(err error) { high <- err })
	if err := l.Flush(3); err != nil {
		t.Fatal(err)
	}
	if err := waitCB(t, low); err != nil {
		t.Fatalf("low callback error = %v, want nil", err)
	}
	select {
	case err := <-high:
		t.Fatalf("high callback fired early (err=%v) at flushed=%d", err, l.FlushedLSN())
	case <-time.After(50 * time.Millisecond):
	}
	if err := l.Flush(last); err != nil {
		t.Fatal(err)
	}
	if err := waitCB(t, high); err != nil {
		t.Fatalf("high callback error = %v, want nil", err)
	}
}

// TestOnDurableFiresOnGroupFlush: registrations are served by the group
// flush leader alongside FlushAsync waiters.
func TestOnDurableFiresOnGroupFlush(t *testing.T) {
	l, err := NewLog(NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	last := appendN(t, l, 4)
	got := make(chan error, 1)
	l.OnDurable(last, func(err error) { got <- err })
	if ferr := <-l.FlushAsync(last); ferr != nil {
		t.Fatal(ferr)
	}
	if err := waitCB(t, got); err != nil {
		t.Fatalf("callback error = %v, want nil", err)
	}
}

// TestOnDurableErrorOnFailedFlush: a failed flush round delivers its
// error to pending registrations exactly once.
func TestOnDurableErrorOnFailedFlush(t *testing.T) {
	store := &failSyncStore{MemStore: NewMemStore()}
	l, err := NewLog(store)
	if err != nil {
		t.Fatal(err)
	}
	l.SetFlushRetryPolicy(0, 0)
	last := appendN(t, l, 2)
	injected := errors.New("device gone")
	store.FailSyncsWith(injected)
	got := make(chan error, 2)
	l.OnDurable(last, func(err error) { got <- err })
	if ferr := <-l.FlushAsync(last); ferr == nil {
		t.Fatal("FlushAsync succeeded through a failing device")
	}
	if err := waitCB(t, got); !errors.Is(err, injected) {
		t.Fatalf("callback error = %v, want wrapped %v", err, injected)
	}
	// Exactly once: a later successful flush must not re-fire it.
	store.FailSyncsWith(nil)
	if err := l.Flush(last); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		t.Fatalf("callback fired twice (second err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestOnDurableErrorOnCrash: Crash delivers an error to every pending
// registration — the instance they registered against is gone.
func TestOnDurableErrorOnCrash(t *testing.T) {
	l, err := NewLog(NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	last := appendN(t, l, 2)
	got := make(chan error, 1)
	l.OnDurable(last, func(err error) { got <- err })
	if err := l.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := waitCB(t, got); err == nil {
		t.Fatal("callback delivered nil across a crash that lost the records")
	}
}
