package wal

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// failSyncDir wraps a MemDir so every device's Sync fails with a
// configurable error — the failure mode of a dying disk.
type failSyncDir struct {
	*MemDir
	mu  sync.Mutex
	err error
}

func (d *failSyncDir) FailSyncsWith(err error) {
	d.mu.Lock()
	d.err = err
	d.mu.Unlock()
}

func (d *failSyncDir) Open(name string) (Store, error) {
	s, err := d.MemDir.Open(name)
	if err != nil {
		return nil, err
	}
	return &failSyncDev{Store: s, dir: d}, nil
}

type failSyncDev struct {
	Store
	dir *failSyncDir
}

func (s *failSyncDev) Sync() error {
	s.dir.mu.Lock()
	err := s.dir.err
	s.dir.mu.Unlock()
	if err != nil {
		return err
	}
	return s.Store.Sync()
}

func appendN(t *testing.T, l *Log, n int) LSN {
	t.Helper()
	var last LSN
	for i := 0; i < n; i++ {
		lsn, err := l.Append(&Record{Type: TypeUpdate, TxID: 1, Object: 1, After: []byte{byte(i)}})
		if err != nil {
			t.Fatal(err)
		}
		last = lsn
	}
	return last
}

func waitCB(t *testing.T, ch <-chan error) error {
	t.Helper()
	select {
	case err := <-ch:
		return err
	case <-time.After(2 * time.Second):
		t.Fatal("OnDurable callback never fired")
		return nil
	}
}

// TestOnDurableAlreadyFlushed: a registration at or below the durable
// horizon fires immediately with nil.
func TestOnDurableAlreadyFlushed(t *testing.T) {
	l, err := NewLog(NewMemDir())
	if err != nil {
		t.Fatal(err)
	}
	lsn := appendN(t, l, 3)
	if err := l.Flush(lsn); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	l.OnDurable(lsn, func(err error) { got <- err })
	if err := waitCB(t, got); err != nil {
		t.Fatalf("callback error = %v, want nil", err)
	}
}

// TestOnDurableFiresOnSyncFlush: a pending registration fires once a
// synchronous Flush covers it, and registrations above the flushed range
// stay pending.
func TestOnDurableFiresOnSyncFlush(t *testing.T) {
	l, err := NewLog(NewMemDir())
	if err != nil {
		t.Fatal(err)
	}
	last := appendN(t, l, 5)
	low, high := make(chan error, 1), make(chan error, 1)
	l.OnDurable(2, func(err error) { low <- err })
	l.OnDurable(last, func(err error) { high <- err })
	if err := l.Flush(3); err != nil {
		t.Fatal(err)
	}
	if err := waitCB(t, low); err != nil {
		t.Fatalf("low callback error = %v, want nil", err)
	}
	select {
	case err := <-high:
		t.Fatalf("high callback fired early (err=%v) at flushed=%d", err, l.FlushedLSN())
	case <-time.After(50 * time.Millisecond):
	}
	if err := l.Flush(last); err != nil {
		t.Fatal(err)
	}
	if err := waitCB(t, high); err != nil {
		t.Fatalf("high callback error = %v, want nil", err)
	}
}

// TestOnDurableFiresOnGroupFlush: registrations are served by the group
// flush leader alongside FlushAsync waiters.
func TestOnDurableFiresOnGroupFlush(t *testing.T) {
	l, err := NewLog(NewMemDir())
	if err != nil {
		t.Fatal(err)
	}
	last := appendN(t, l, 4)
	got := make(chan error, 1)
	l.OnDurable(last, func(err error) { got <- err })
	if ferr := <-l.FlushAsync(last); ferr != nil {
		t.Fatal(ferr)
	}
	if err := waitCB(t, got); err != nil {
		t.Fatalf("callback error = %v, want nil", err)
	}
}

// TestOnDurableErrorOnFailedFlush: a failed flush round delivers its
// error to pending registrations exactly once.
func TestOnDurableErrorOnFailedFlush(t *testing.T) {
	dir := &failSyncDir{MemDir: NewMemDir()}
	l, err := NewLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	l.SetFlushRetryPolicy(0, 0)
	last := appendN(t, l, 2)
	injected := errors.New("device gone")
	dir.FailSyncsWith(injected)
	got := make(chan error, 2)
	l.OnDurable(last, func(err error) { got <- err })
	if ferr := <-l.FlushAsync(last); ferr == nil {
		t.Fatal("FlushAsync succeeded through a failing device")
	}
	if err := waitCB(t, got); !errors.Is(err, injected) {
		t.Fatalf("callback error = %v, want wrapped %v", err, injected)
	}
	// Exactly once: a later successful flush must not re-fire it.
	dir.FailSyncsWith(nil)
	if err := l.Flush(last); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		t.Fatalf("callback fired twice (second err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestOnDurableErrorOnCrash: Crash delivers an error to every pending
// registration — the instance they registered against is gone — and the
// error carries the ErrLogCrashed sentinel so callers can tell a crash
// from a device refusal.
func TestOnDurableErrorOnCrash(t *testing.T) {
	l, err := NewLog(NewMemDir())
	if err != nil {
		t.Fatal(err)
	}
	last := appendN(t, l, 2)
	got := make(chan error, 1)
	l.OnDurable(last, func(err error) { got <- err })
	if err := l.Crash(); err != nil {
		t.Fatal(err)
	}
	cberr := waitCB(t, got)
	if cberr == nil {
		t.Fatal("callback delivered nil across a crash that lost the records")
	}
	if !errors.Is(cberr, ErrLogCrashed) {
		t.Fatalf("callback error = %v, want errors.Is(_, ErrLogCrashed)", cberr)
	}
}
