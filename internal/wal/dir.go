package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Dir is the stable-storage directory a segmented Log lives in: a flat
// namespace of independently syncable byte devices (segment images and
// manifest images).  The Log layers segment framing, the manifest and
// crash semantics on top; a Dir only promises per-device durability
// (the Store contract) plus a stable name → device mapping.
//
// Contract:
//
//   - Open creates the named device if absent and returns THE SAME Store
//     instance for the same name until Remove — the Log re-opens devices
//     across a simulated Crash and must observe the same underlying
//     bytes (and, under fault injection, the same fault schedule).
//   - Remove deletes the device and its name.  Removal of an open device
//     is allowed (the Log removes archived segments it no longer reads).
//   - List returns the current names in unspecified order.
//   - Namespace operations are durable: a name created by Open survives
//     a crash once Open returns, and a Remove survives a crash once it
//     returns.  The Log's manifest-generation commit protocol depends on
//     this ordering (new generation's name durable before its contents
//     are synced, old generation's unlink durable only afterwards);
//     MemDir satisfies it trivially, FileDir by fsyncing the directory.
//
// Two implementations are provided: MemDir (simulated stable storage)
// and FileDir (a real directory); internal/fault provides a third with
// deterministic fault injection across all devices.
type Dir interface {
	// Open returns the device with the given name, creating it empty if
	// it does not exist.
	Open(name string) (Store, error)
	// Remove deletes the named device.  Removing a missing name is an
	// error.
	Remove(name string) error
	// List returns the names of all devices in the directory.
	List() ([]string, error)
	// Close releases every device the Dir handed out.  It does not imply
	// Sync.
	Close() error
}

// MemDir is an in-memory Dir whose devices are MemStores.  Like
// MemStore it models the stable medium itself: every write is
// immediately durable, so crash semantics (unsynced-byte loss, torn
// appends, refused removes) come from wrapping it — or replacing it —
// with a fault-injecting Dir.  The zero value is ready to use.
type MemDir struct {
	mu    sync.Mutex
	files map[string]*MemStore
}

// NewMemDir returns an empty in-memory directory.
func NewMemDir() *MemDir { return &MemDir{} }

// Open returns the named MemStore, creating it if absent.
func (d *MemDir) Open(name string) (Store, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.files == nil {
		d.files = make(map[string]*MemStore)
	}
	s, ok := d.files[name]
	if !ok {
		s = NewMemStore()
		d.files[name] = s
	}
	return s, nil
}

// Remove deletes the named device.
func (d *MemDir) Remove(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[name]; !ok {
		return fmt.Errorf("wal: remove %s: no such device", name)
	}
	delete(d.files, name)
	return nil
}

// List returns the device names, sorted for determinism.
func (d *MemDir) List() ([]string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.files))
	for name := range d.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Close is a no-op.
func (d *MemDir) Close() error { return nil }

// Put installs a device image under name, replacing any existing one;
// used by fault snapshots and tests to materialize a directory state.
func (d *MemDir) Put(name string, data []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.files == nil {
		d.files = make(map[string]*MemStore)
	}
	s := NewMemStore()
	if len(data) > 0 {
		_, _ = s.WriteAt(data, 0)
	}
	d.files[name] = s
}

// FileDir is a Dir backed by a real directory on disk.  It caches the
// FileStore per name so repeated Opens observe one file handle, and
// closes them all on Close.  Namespace operations are made durable by
// fsyncing the directory inode: after creating a file in Open and after
// every Remove — a file Sync alone does not persist its directory
// entry, and the manifest commit protocol is only crash-atomic if the
// new generation's name can never be lost while the old generation's
// unlink (or segment deletes) survive.
type FileDir struct {
	mu   sync.Mutex
	path string
	open map[string]*FileStore
}

// OpenFileDir opens (creating if necessary) the directory at path.
func OpenFileDir(path string) (*FileDir, error) {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open dir %s: %w", path, err)
	}
	return &FileDir{path: path, open: make(map[string]*FileStore)}, nil
}

// syncSelf fsyncs the directory inode, making file creations and
// removals durable.  Callers hold d.mu.
func (d *FileDir) syncSelf() error {
	f, err := os.Open(d.path)
	if err != nil {
		return fmt.Errorf("wal: sync dir %s: %w", d.path, err)
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: sync dir %s: %w", d.path, err)
	}
	return nil
}

// Open returns the named file device, creating it if absent.  Creating
// a file fsyncs the directory before returning, so the name is durable
// before any caller treats a later device Sync as a commit point.
func (d *FileDir) Open(name string) (Store, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if s, ok := d.open[name]; ok {
		return s, nil
	}
	full := filepath.Join(d.path, name)
	_, statErr := os.Stat(full)
	created := os.IsNotExist(statErr)
	s, err := OpenFileStore(full)
	if err != nil {
		return nil, err
	}
	if created {
		if err := d.syncSelf(); err != nil {
			_ = s.Close()
			_ = os.Remove(full)
			return nil, err
		}
	}
	d.open[name] = s
	return s, nil
}

// Remove closes (if open) and deletes the named file, fsyncing the
// directory so the unlink is durable before returning.
func (d *FileDir) Remove(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if s, ok := d.open[name]; ok {
		_ = s.Close()
		delete(d.open, name)
	}
	if err := os.Remove(filepath.Join(d.path, name)); err != nil {
		return err
	}
	return d.syncSelf()
}

// List returns the names of the regular files in the directory.
func (d *FileDir) List() ([]string, error) {
	entries, err := os.ReadDir(d.path)
	if err != nil {
		return nil, fmt.Errorf("wal: list dir %s: %w", d.path, err)
	}
	var names []string
	for _, e := range entries {
		if e.Type().IsRegular() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Close closes every file handle the Dir handed out.
func (d *FileDir) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var err error
	for name, s := range d.open {
		if cerr := s.Close(); err == nil {
			err = cerr
		}
		delete(d.open, name)
	}
	return err
}
