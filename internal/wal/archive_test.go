package wal

import (
	"errors"
	"fmt"
	"testing"

	"ariesrh/internal/obs"
)

// dirBytes sums the sizes of every device in dir — the log's physical
// footprint on stable storage.
func dirBytes(t *testing.T, dir Dir) int64 {
	t.Helper()
	names, err := dir.List()
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, name := range names {
		dev, err := dir.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		size, err := dev.Size()
		if err != nil {
			t.Fatal(err)
		}
		total += size
	}
	return total
}

// newTinySegLog returns a log over dir that rotates after every record
// (SegmentBytes=1), so archives can reclaim at record granularity.
func newTinySegLog(t *testing.T, dir Dir) *Log {
	t.Helper()
	l, err := NewLogWith(dir, LogOptions{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestArchiveBasic(t *testing.T) {
	dir := NewMemDir()
	l := newTinySegLog(t, dir)
	for i := 1; i <= 10; i++ {
		mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: ObjectID(i)})
	}
	if err := l.Flush(10); err != nil {
		t.Fatal(err)
	}
	sizeBefore := dirBytes(t, dir)
	if err := l.Archive(6); err != nil {
		t.Fatal(err)
	}
	sizeAfter := dirBytes(t, dir)
	if sizeAfter >= sizeBefore {
		t.Fatalf("directory did not shrink: %d -> %d", sizeBefore, sizeAfter)
	}
	if l.Base() != 6 || l.Head() != 10 {
		t.Fatalf("base=%d head=%d", l.Base(), l.Head())
	}
	// Archived records are gone; surviving ones intact.
	if _, err := l.Get(6); !errors.Is(err, ErrArchived) {
		t.Fatalf("Get(6) err = %v", err)
	}
	for lsn := LSN(7); lsn <= 10; lsn++ {
		r, err := l.Get(lsn)
		if err != nil {
			t.Fatal(err)
		}
		if r.LSN != lsn || r.Object != ObjectID(lsn) {
			t.Fatalf("record %d = %+v", lsn, r)
		}
	}
	// LSNs keep counting from where they were.
	lsn := mustAppend(t, l, &Record{Type: TypeCommit, TxID: 1, PrevLSN: 10})
	if lsn != 11 {
		t.Fatalf("post-archive append lsn = %d", lsn)
	}
}

func TestArchiveSurvivesReopenAndCrash(t *testing.T) {
	dir := NewMemDir()
	l := newTinySegLog(t, dir)
	for i := 1; i <= 8; i++ {
		mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: ObjectID(i)})
	}
	if err := l.Flush(8); err != nil {
		t.Fatal(err)
	}
	if err := l.Archive(5); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: 9}) // LSN 9, unflushed
	if err := l.Crash(); err != nil {
		t.Fatal(err)
	}
	if l.Base() != 5 || l.Head() != 8 {
		t.Fatalf("after crash: base=%d head=%d", l.Base(), l.Head())
	}
	// Fresh Log over the same directory.
	l2, err := NewLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Base() != 5 || l2.Head() != 8 {
		t.Fatalf("reopen: base=%d head=%d", l2.Base(), l2.Head())
	}
	r, err := l2.Get(7)
	if err != nil || r.Object != 7 {
		t.Fatalf("Get(7) = %+v, %v", r, err)
	}
}

func TestArchiveRejectsUnflushed(t *testing.T) {
	l := newMemLog(t)
	mustAppend(t, l, &Record{Type: TypeBegin, TxID: 1})
	mustAppend(t, l, &Record{Type: TypeCommit, TxID: 1, PrevLSN: 1})
	if err := l.Flush(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Archive(2); err == nil {
		t.Fatal("archiving past the flushed LSN accepted")
	}
	if err := l.Archive(1); err != nil {
		t.Fatal(err)
	}
	// Idempotent / monotone.
	if err := l.Archive(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Archive(0); err != nil {
		t.Fatal(err)
	}
	if l.Base() != 1 {
		t.Fatalf("base = %d", l.Base())
	}
}

func TestArchiveThenScanStartsAfterBase(t *testing.T) {
	l := newMemLog(t)
	for i := 1; i <= 6; i++ {
		mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: ObjectID(i)})
	}
	if err := l.Flush(6); err != nil {
		t.Fatal(err)
	}
	if err := l.Archive(3); err != nil {
		t.Fatal(err)
	}
	var seen []ObjectID
	if err := l.Scan(NilLSN, NilLSN, func(r *Record) (bool, error) {
		seen = append(seen, r.Object)
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[0] != 4 || seen[2] != 6 {
		t.Fatalf("scan = %v", seen)
	}
}

func TestArchiveRewriteOfArchivedRejected(t *testing.T) {
	l := newMemLog(t)
	mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: 1})
	mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: 2})
	if err := l.Flush(2); err != nil {
		t.Fatal(err)
	}
	if err := l.Archive(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Rewrite(1, func(r *Record) { r.TxID = 2 }); !errors.Is(err, ErrArchived) {
		t.Fatalf("err = %v", err)
	}
	if err := l.Rewrite(2, func(r *Record) { r.TxID = 2 }); err != nil {
		t.Fatal(err)
	}
	// Crash: the rewritten stable record keeps the patch.
	if err := l.Crash(); err != nil {
		t.Fatal(err)
	}
	r, err := l.Get(2)
	if err != nil || r.TxID != 2 {
		t.Fatalf("Get(2) = %+v, %v", r, err)
	}
}

// TestArchiveMidSegmentIsLogical pins the archive's logical-first
// contract: with every record in one big segment, Archive moves the base
// exactly to upTo (records at or below it answer ErrArchived) even
// though no whole segment can be reclaimed — and the base survives
// reopen via the manifest.
func TestArchiveMidSegmentIsLogical(t *testing.T) {
	dir := NewMemDir()
	l, err := NewLog(dir) // default cap: everything fits one segment
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: ObjectID(i)})
	}
	if err := l.Flush(6); err != nil {
		t.Fatal(err)
	}
	segsBefore := len(l.Segments())
	if err := l.Archive(4); err != nil {
		t.Fatal(err)
	}
	if l.Base() != 4 {
		t.Fatalf("base = %d, want 4", l.Base())
	}
	if got := len(l.Segments()); got != segsBefore {
		t.Fatalf("segments = %d, want %d (mid-segment archive must not drop files)", got, segsBefore)
	}
	if _, err := l.Get(4); !errors.Is(err, ErrArchived) {
		t.Fatalf("Get(4) err = %v", err)
	}
	if _, err := l.Get(5); err != nil {
		t.Fatal(err)
	}
	l2, err := NewLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Base() != 4 || l2.Head() != 6 {
		t.Fatalf("reopen: base=%d head=%d", l2.Base(), l2.Head())
	}
	if _, err := l2.Get(4); !errors.Is(err, ErrArchived) {
		t.Fatalf("reopened Get(4) err = %v", err)
	}
}

// TestArchiveDeviceFailureLeavesStateIntact pins the archive's ordering
// contract: the manifest write is the commit point, and it happens
// BEFORE any volatile mutation — a device failure during the archive
// must leave the log exactly as it was, with every record readable and
// the metrics untouched.
func TestArchiveDeviceFailureLeavesStateIntact(t *testing.T) {
	dir := &failSyncDir{MemDir: NewMemDir()}
	l, err := NewLogWith(dir, LogOptions{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	l.Instrument(reg)
	for i := 1; i <= 6; i++ {
		mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: ObjectID(i)})
	}
	if err := l.Flush(6); err != nil {
		t.Fatal(err)
	}
	segsBefore := len(l.Segments())
	statsBefore := l.Stats()

	dir.FailSyncsWith(fmt.Errorf("injected sync failure"))
	if err := l.Archive(4); err == nil {
		t.Fatal("archive succeeded despite failing device")
	}
	dir.FailSyncsWith(nil)

	// Nothing moved: base, segments, metrics, and every record.
	if l.Base() != NilLSN {
		t.Fatalf("failed archive moved base to %d", l.Base())
	}
	if got := len(l.Segments()); got != segsBefore {
		t.Fatalf("failed archive changed segment count %d -> %d", segsBefore, got)
	}
	if d := l.Stats().Sub(statsBefore); d.Archives != 0 {
		t.Fatalf("failed archive counted in stats: %+v", d)
	}
	if got := reg.Counter("wal.archives").Load(); got != 0 {
		t.Fatalf("wal.archives = %d after failed archive, want 0", got)
	}
	for lsn := LSN(1); lsn <= 6; lsn++ {
		if _, err := l.Get(lsn); err != nil {
			t.Fatalf("Get(%d) after failed archive: %v", lsn, err)
		}
	}
	// The log remains fully usable: append, flush, then archive for real.
	mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: 7})
	if err := l.Flush(7); err != nil {
		t.Fatal(err)
	}
	if err := l.Archive(4); err != nil {
		t.Fatal(err)
	}
	if l.Base() != 4 {
		t.Fatalf("base = %d after recovery archive", l.Base())
	}
	if got := reg.Counter("wal.archives").Load(); got != 1 {
		t.Fatalf("wal.archives = %d after one successful archive, want 1", got)
	}
	if d := l.Stats().Sub(statsBefore); d.Archives != 1 {
		t.Fatalf("stats after successful archive: %+v", d)
	}
}

// TestFailedManifestAttemptRemoved pins the cleanup contract of a
// failed manifest write: the attempt's device must not remain in the
// directory.  On a real filesystem a failed fsync does not prove the
// bytes were lost; a fully written, CRC-valid higher generation left
// behind would outrank the authoritative manifest at the next recovery
// while referencing segments the failed archive went on to delete.
func TestFailedManifestAttemptRemoved(t *testing.T) {
	dir := &failSyncDir{MemDir: NewMemDir()}
	l, err := NewLogWith(dir, LogOptions{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: ObjectID(i)})
	}
	if err := l.Flush(6); err != nil {
		t.Fatal(err)
	}

	dir.FailSyncsWith(fmt.Errorf("injected sync failure"))
	if err := l.Archive(4); err == nil {
		t.Fatal("archive succeeded despite failing device")
	}
	dir.FailSyncsWith(nil)

	// Exactly one manifest image remains: the authoritative generation.
	names, err := dir.List()
	if err != nil {
		t.Fatal(err)
	}
	var manifests []uint64
	for _, name := range names {
		if gen, ok := parseNumbered(name, "manifest-"); ok {
			manifests = append(manifests, gen)
		}
	}
	if len(manifests) != 1 || manifests[0] != l.manifestGen {
		t.Fatalf("manifests on device after failed archive: %v (authoritative gen %d)", manifests, l.manifestGen)
	}

	// Recovery from this directory picks the authoritative generation and
	// sees every record.
	l2, err := NewLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Base() != NilLSN || l2.Head() != 6 {
		t.Fatalf("reopen after failed archive: base=%d head=%d", l2.Base(), l2.Head())
	}
}
