package wal

import (
	"errors"
	"testing"
)

func TestArchiveBasic(t *testing.T) {
	store := NewMemStore()
	l, err := NewLog(store)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: ObjectID(i)})
	}
	if err := l.Flush(10); err != nil {
		t.Fatal(err)
	}
	sizeBefore, _ := store.Size()
	if err := l.Archive(6); err != nil {
		t.Fatal(err)
	}
	sizeAfter, _ := store.Size()
	if sizeAfter >= sizeBefore {
		t.Fatalf("device did not shrink: %d -> %d", sizeBefore, sizeAfter)
	}
	if l.Base() != 6 || l.Head() != 10 {
		t.Fatalf("base=%d head=%d", l.Base(), l.Head())
	}
	// Archived records are gone; surviving ones intact.
	if _, err := l.Get(6); !errors.Is(err, ErrArchived) {
		t.Fatalf("Get(6) err = %v", err)
	}
	for lsn := LSN(7); lsn <= 10; lsn++ {
		r, err := l.Get(lsn)
		if err != nil {
			t.Fatal(err)
		}
		if r.LSN != lsn || r.Object != ObjectID(lsn) {
			t.Fatalf("record %d = %+v", lsn, r)
		}
	}
	// LSNs keep counting from where they were.
	lsn := mustAppend(t, l, &Record{Type: TypeCommit, TxID: 1, PrevLSN: 10})
	if lsn != 11 {
		t.Fatalf("post-archive append lsn = %d", lsn)
	}
}

func TestArchiveSurvivesReopenAndCrash(t *testing.T) {
	store := NewMemStore()
	l, err := NewLog(store)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: ObjectID(i)})
	}
	if err := l.Flush(8); err != nil {
		t.Fatal(err)
	}
	if err := l.Archive(5); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: 9}) // LSN 9, unflushed
	if err := l.Crash(); err != nil {
		t.Fatal(err)
	}
	if l.Base() != 5 || l.Head() != 8 {
		t.Fatalf("after crash: base=%d head=%d", l.Base(), l.Head())
	}
	// Fresh Log over the same device.
	l2, err := NewLog(store)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Base() != 5 || l2.Head() != 8 {
		t.Fatalf("reopen: base=%d head=%d", l2.Base(), l2.Head())
	}
	r, err := l2.Get(7)
	if err != nil || r.Object != 7 {
		t.Fatalf("Get(7) = %+v, %v", r, err)
	}
}

func TestArchiveRejectsUnflushed(t *testing.T) {
	l := newMemLog(t)
	mustAppend(t, l, &Record{Type: TypeBegin, TxID: 1})
	mustAppend(t, l, &Record{Type: TypeCommit, TxID: 1, PrevLSN: 1})
	if err := l.Flush(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Archive(2); err == nil {
		t.Fatal("archiving past the flushed LSN accepted")
	}
	if err := l.Archive(1); err != nil {
		t.Fatal(err)
	}
	// Idempotent / monotone.
	if err := l.Archive(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Archive(0); err != nil {
		t.Fatal(err)
	}
	if l.Base() != 1 {
		t.Fatalf("base = %d", l.Base())
	}
}

func TestArchiveThenScanStartsAfterBase(t *testing.T) {
	l := newMemLog(t)
	for i := 1; i <= 6; i++ {
		mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: ObjectID(i)})
	}
	if err := l.Flush(6); err != nil {
		t.Fatal(err)
	}
	if err := l.Archive(3); err != nil {
		t.Fatal(err)
	}
	var seen []ObjectID
	if err := l.Scan(NilLSN, NilLSN, func(r *Record) (bool, error) {
		seen = append(seen, r.Object)
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[0] != 4 || seen[2] != 6 {
		t.Fatalf("scan = %v", seen)
	}
}

func TestArchiveRewriteOfArchivedRejected(t *testing.T) {
	l := newMemLog(t)
	mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: 1})
	mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: 2})
	if err := l.Flush(2); err != nil {
		t.Fatal(err)
	}
	if err := l.Archive(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Rewrite(1, func(r *Record) { r.TxID = 2 }); !errors.Is(err, ErrArchived) {
		t.Fatalf("err = %v", err)
	}
	if err := l.Rewrite(2, func(r *Record) { r.TxID = 2 }); err != nil {
		t.Fatal(err)
	}
	// Crash: the rewritten stable record keeps the patch.
	if err := l.Crash(); err != nil {
		t.Fatal(err)
	}
	r, err := l.Get(2)
	if err != nil || r.TxID != 2 {
		t.Fatalf("Get(2) = %+v, %v", r, err)
	}
}
