package wal

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// Store is the stable-storage device a Log persists to.  It is a plain
// random-access byte device; the Log layers framing, LSNs and crash
// semantics on top.  Two implementations are provided: MemStore (simulated
// stable storage, used by tests, benchmarks and crash injection) and
// FileStore (a real file); internal/fault wraps either with deterministic
// fault injection.
//
// Crash-safety contract: bytes are guaranteed durable — i.e. survive
// (*Log).Crash and a process failure — only once a Sync call issued
// after the write has returned nil.  Written-but-unsynced bytes may
// survive a crash entirely, partially (a torn prefix of the last
// append), or not at all; the Log's recovery scan tolerates exactly
// that by truncating a torn final frame.  A Sync that returns an error
// promises nothing about the writes it covered.
type Store interface {
	io.ReaderAt
	io.WriterAt
	// Size returns the current size of the device in bytes.
	Size() (int64, error)
	// Sync forces previously written bytes to stable storage.  On nil
	// return every byte written before the call is durable; on error
	// their fate is unknown (the Log treats such errors as transient
	// and retries unless they are marked ErrNoRetry).
	Sync() error
	// Truncate shrinks the device to size bytes.  Like writes, a
	// truncation is durable only after a subsequent successful Sync.
	Truncate(size int64) error
	// Close releases the device.  It does not imply Sync.
	Close() error
}

// MemStore is an in-memory Store that simulates stable storage.  Bytes
// written and synced survive (*Log).Crash, which makes it the device of
// choice for deterministic crash-injection tests.  MemStore itself is
// stricter than the Store contract requires: every write is immediately
// "stable" (Sync is a no-op), so it never produces torn tails on its
// own — wrap it in a fault.Store to model unsynced-byte loss and torn
// appends.  The zero value is an empty, ready-to-use store.
type MemStore struct {
	mu   sync.RWMutex
	data []byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// ReadAt implements io.ReaderAt.
func (s *MemStore) ReadAt(p []byte, off int64) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if off < 0 {
		return 0, fmt.Errorf("wal: negative offset %d", off)
	}
	if off >= int64(len(s.data)) {
		return 0, io.EOF
	}
	n := copy(p, s.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt, growing the store as needed.
func (s *MemStore) WriteAt(p []byte, off int64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("wal: negative offset %d", off)
	}
	end := off + int64(len(p))
	if end > int64(len(s.data)) {
		if end > int64(cap(s.data)) {
			// Grow geometrically: a simple make(end) here would
			// copy the whole store on every growing write, turning
			// a sequence of appends quadratic.
			newCap := 2 * cap(s.data)
			if int64(newCap) < end {
				newCap = int(end)
			}
			grown := make([]byte, end, newCap)
			copy(grown, s.data)
			s.data = grown
		} else {
			s.data = s.data[:end]
		}
	}
	copy(s.data[off:], p)
	return len(p), nil
}

// Size returns the number of bytes in the store.
func (s *MemStore) Size() (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int64(len(s.data)), nil
}

// Sync is a no-op: MemStore models the stable device itself.
func (s *MemStore) Sync() error { return nil }

// Truncate shrinks the store to size bytes.
func (s *MemStore) Truncate(size int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if size < 0 || size > int64(len(s.data)) {
		return fmt.Errorf("wal: truncate size %d out of range [0,%d]", size, len(s.data))
	}
	s.data = s.data[:size]
	return nil
}

// Close is a no-op.
func (s *MemStore) Close() error { return nil }

// Bytes returns a copy of the store contents; test helper.
func (s *MemStore) Bytes() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]byte(nil), s.data...)
}

// FileStore is a Store backed by a file on disk.
type FileStore struct{ f *os.File }

// OpenFileStore opens (creating if necessary) the file at path as a Store.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	return &FileStore{f: f}, nil
}

// ReadAt implements io.ReaderAt.
func (s *FileStore) ReadAt(p []byte, off int64) (int, error) { return s.f.ReadAt(p, off) }

// WriteAt implements io.WriterAt.
func (s *FileStore) WriteAt(p []byte, off int64) (int, error) { return s.f.WriteAt(p, off) }

// Size returns the file size.
func (s *FileStore) Size() (int64, error) {
	fi, err := s.f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Sync fsyncs the file.
func (s *FileStore) Sync() error { return s.f.Sync() }

// Truncate shrinks the file.
func (s *FileStore) Truncate(size int64) error { return s.f.Truncate(size) }

// Close closes the file.
func (s *FileStore) Close() error { return s.f.Close() }
