package wal

import (
	"bytes"
	"testing"
)

// twopcSampleRecords are seed frames for the cross-shard record types
// introduced for internal/shard's per-shard-logged 2PC.
func twopcSampleRecords() []*Record {
	return []*Record{
		{Type: TypePrepare, LSN: 21, TxID: 3, PrevLSN: 20, GID: 1, Shard: 0},
		{Type: TypePrepare, LSN: 22, TxID: 4, PrevLSN: 0, GID: ^uint64(0), Shard: ^uint32(0)},
		{Type: TypeDelegateOut, LSN: 23, TxID: 3, PrevLSN: 21, Tor: 3, Tee: 5, TorPrev: 21, TeePrev: 9, Object: 77, GID: 42, Shard: 2},
		{Type: TypeDelegateOut, LSN: 24, TxID: 1, PrevLSN: 0, Tor: 1, Tee: 2, TorPrev: 0, TeePrev: 0, Object: 0, GID: 0, Shard: 0},
		{Type: TypeDelegateIn, LSN: 25, TxID: 5, PrevLSN: 10, Object: 77, GID: 42, Shard: 1},
		{Type: TypeDelegateIn, LSN: 26, TxID: 6, PrevLSN: 0, Object: ObjectID(^uint64(0) >> 1), GID: 7, Shard: 7},
	}
}

// FuzzDecodePrepare fuzzes the decoder with emphasis on the cross-shard
// 2PC record types (prepare, delegate-out, delegate-in): arbitrary bytes
// must never panic, and any accepted frame must re-encode byte-identically
// — the property the per-shard durable-log oracle and in-doubt resolution
// depend on, since both re-read these frames from raw device bytes after
// a crash.
func FuzzDecodePrepare(f *testing.F) {
	for _, r := range twopcSampleRecords() {
		enc, err := EncodeRecord(r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
		// Torn prefixes of every 2PC frame: a participant may crash
		// mid-flush of its prepare record; the cut frame must be
		// rejected, which is what makes "prepared" mean "prepare frame
		// fully durable" and keeps presumed abort sound.
		for _, cut := range []int{1, frameHeaderSize - 1, frameHeaderSize, len(enc) / 2, len(enc) - 1} {
			if cut > 0 && cut < len(enc) {
				f.Add(append([]byte(nil), enc[:cut]...))
			}
		}
		// Bit flips in the type-specific tail (GID / shard fields).
		for i := frameHeaderSize + 21; i < len(enc); i++ {
			mut := append([]byte(nil), enc...)
			mut[i] ^= 0x80
			f.Add(mut)
		}
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		re, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("accepted record does not re-encode: %v", err)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("round trip changed bytes:\n in  %x\n out %x", data[:n], re)
		}
	})
}
