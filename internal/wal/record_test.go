package wal

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleRecords() []*Record {
	return []*Record{
		{Type: TypeBegin, LSN: 1, TxID: 7},
		{Type: TypeUpdate, LSN: 2, TxID: 7, PrevLSN: 1, Object: 42, Before: []byte("old"), After: []byte("new")},
		{Type: TypeUpdate, LSN: 3, TxID: 7, PrevLSN: 2, Object: 43, Before: nil, After: []byte{}},
		{Type: TypeCLR, LSN: 4, TxID: 7, PrevLSN: 3, Object: 42, UndoNextLSN: 1, Compensates: 2, Before: []byte("old")},
		{Type: TypeDelegate, LSN: 5, TxID: 7, PrevLSN: 4, Tor: 7, Tee: 9, TorPrev: 4, TeePrev: 0, Object: 42},
		{Type: TypeCommit, LSN: 6, TxID: 9, PrevLSN: 5},
		{Type: TypeAbort, LSN: 7, TxID: 7, PrevLSN: 4},
		{Type: TypeEnd, LSN: 8, TxID: 7, PrevLSN: 7},
		{Type: TypeCheckpointBegin, LSN: 9},
		{Type: TypeCheckpointEnd, LSN: 10, PrevLSN: 9, Payload: []byte{1, 2, 3, 0, 255}},
		{Type: TypePrepare, LSN: 11, TxID: 7, PrevLSN: 5, GID: 0xDEADBEEF01, Shard: 2},
		{Type: TypeDelegateOut, LSN: 12, TxID: 7, PrevLSN: 11, Tor: 7, Tee: 9, TorPrev: 11, TeePrev: 0, Object: 42, GID: 0xDEADBEEF02, Shard: 3},
		{Type: TypeDelegateIn, LSN: 13, TxID: 9, PrevLSN: 6, Object: 42, GID: 0xDEADBEEF02, Shard: 1},
	}
}

// normalize maps nil byte slices to empty so reflect.DeepEqual tolerates the
// decoder's empty-slice representation.
func normalize(r *Record) *Record {
	c := r.clone()
	if c.Before == nil {
		c.Before = []byte{}
	}
	if c.After == nil {
		c.After = []byte{}
	}
	if c.Payload == nil {
		c.Payload = []byte{}
	}
	return c
}

func TestRecordRoundTrip(t *testing.T) {
	for _, r := range sampleRecords() {
		enc, err := EncodeRecord(r)
		if err != nil {
			t.Fatalf("encode %v: %v", r, err)
		}
		got, n, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", r, err)
		}
		if n != len(enc) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(enc))
		}
		if !reflect.DeepEqual(normalize(got), normalize(r)) {
			t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, r)
		}
	}
}

func TestRecordRoundTripStream(t *testing.T) {
	var stream []byte
	recs := sampleRecords()
	for _, r := range recs {
		enc, err := EncodeRecord(r)
		if err != nil {
			t.Fatal(err)
		}
		stream = append(stream, enc...)
	}
	off, i := 0, 0
	for off < len(stream) {
		r, n, err := DecodeRecord(stream[off:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if r.LSN != recs[i].LSN {
			t.Fatalf("record %d: LSN %d want %d", i, r.LSN, recs[i].LSN)
		}
		off += n
		i++
	}
	if i != len(recs) {
		t.Fatalf("decoded %d records, want %d", i, len(recs))
	}
}

func TestRecordCorruptionDetected(t *testing.T) {
	r := &Record{Type: TypeUpdate, LSN: 2, TxID: 7, PrevLSN: 1, Object: 42, Before: []byte("aaa"), After: []byte("bbb")}
	enc, err := EncodeRecord(r)
	if err != nil {
		t.Fatal(err)
	}
	for i := range enc {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x40
		if _, _, err := DecodeRecord(bad); err == nil {
			// Flipping a bit inside the length prefix may still fail;
			// a successful decode of a corrupted frame is only legal
			// if it decodes to exactly the same record (impossible
			// here since we flipped a bit somewhere in the frame).
			t.Errorf("byte %d: corruption not detected", i)
		}
	}
}

func TestRecordTruncationDetected(t *testing.T) {
	r := &Record{Type: TypeUpdate, LSN: 2, TxID: 7, Object: 42, Before: []byte("aaa"), After: []byte("bbb")}
	enc, err := EncodeRecord(r)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(enc); n++ {
		if _, _, err := DecodeRecord(enc[:n]); !errors.Is(err, ErrCorrupt) {
			t.Errorf("prefix of %d bytes: err = %v, want ErrCorrupt", n, err)
		}
	}
}

func TestRecordUnknownTypeRejected(t *testing.T) {
	if _, err := EncodeRecord(&Record{Type: RecordType(200)}); err == nil {
		t.Fatal("encoding unknown type succeeded")
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(txRaw uint32, prev uint64, obj uint64, before, after []byte) bool {
		if len(before) > 1000 {
			before = before[:1000]
		}
		if len(after) > 1000 {
			after = after[:1000]
		}
		r := &Record{
			Type:    TypeUpdate,
			LSN:     LSN(rng.Uint64()%1_000_000 + 1),
			TxID:    TxID(txRaw),
			PrevLSN: LSN(prev),
			Object:  ObjectID(obj),
			Before:  before,
			After:   after,
		}
		enc, err := EncodeRecord(r)
		if err != nil {
			return false
		}
		got, n, err := DecodeRecord(enc)
		if err != nil || n != len(enc) {
			return false
		}
		return got.LSN == r.LSN && got.TxID == r.TxID && got.PrevLSN == r.PrevLSN &&
			got.Object == r.Object && bytes.Equal(got.Before, r.Before) && bytes.Equal(got.After, r.After)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordString(t *testing.T) {
	cases := []struct {
		r    *Record
		want string
	}{
		{&Record{Type: TypeUpdate, LSN: 102, TxID: 2, Object: 7}, "102 update[t2, 7]"},
		{&Record{Type: TypeDelegate, LSN: 106, Tor: 1, Tee: 2, Object: 7}, "106 delegate(t1 -> t2, 7)"},
		{&Record{Type: TypeCommit, LSN: 9, TxID: 3}, "9 commit(t3)"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
