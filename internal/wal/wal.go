// Package wal implements the write-ahead log used by every recovery engine
// in this repository: the ARIES/RH engine (internal/core), the plain ARIES
// baseline (internal/aries), the naïve history-rewriting baselines
// (internal/rewrite) and, in per-transaction form, the EOS-style engine
// (internal/eos).
//
// The log is an append-only sequence of typed records identified by
// monotonically increasing log sequence numbers (LSNs).  Records of one
// transaction are linked into a backward chain (BC) through their PrevLSN
// fields; delegate records additionally carry the backward-chain heads of
// both the delegator and the delegatee (fields torBC/teeBC in Figure 6 of
// the paper).
//
// Crash semantics are simulated, never process-fatal: records appended but
// not yet flushed live only in volatile memory and are discarded by
// (*Log).Crash, mirroring the loss of the in-memory log tail on a real
// failure.  All access paths are instrumented (AccessStats) so benchmarks
// can report log I/O in the units the paper argues in: appends, flushes,
// sequential reads, random reads, and in-place rewrites (the latter used
// only by the naïve baselines, which physically rewrite history).
package wal

import "fmt"

// LSN is a log sequence number.  LSNs are dense 1-based sequence numbers:
// the n-th record appended to a log has LSN n.  The zero value NilLSN never
// names a record and is used as the end marker of backward chains.
type LSN uint64

// NilLSN is the null log sequence number, used to terminate backward chains
// and to mean "no record".
const NilLSN LSN = 0

// TxID identifies a transaction.  The zero value is reserved and never
// assigned to a live transaction.
type TxID uint32

// NilTx is the reserved, never-assigned transaction ID.
const NilTx TxID = 0

// ObjectID identifies a database object (the unit of delegation in this
// implementation, per §2.1.2 of the paper: delegating an object delegates
// the delegator's operations on that object).
type ObjectID uint64

// RecordType discriminates log record kinds.
type RecordType uint8

// Log record types.  TypeDelegate is the record type introduced by the
// paper (§3.4, Figure 6); all others are conventional ARIES record types.
const (
	TypeInvalid RecordType = iota
	// TypeBegin marks the start of a transaction.
	TypeBegin
	// TypeUpdate records an in-place object update with before and after
	// images (physical UNDO/REDO logging).
	TypeUpdate
	// TypeCLR is a compensation log record written when an update is
	// undone, carrying UndoNextLSN so undo work is never repeated.
	TypeCLR
	// TypeDelegate records delegate(tor, tee, object): the transfer of
	// responsibility for tor's updates to object over to tee.
	TypeDelegate
	// TypeCommit marks transaction commit; the log must be flushed
	// through this record before the commit is acknowledged.
	TypeCommit
	// TypeAbort marks the start of a rollback.
	TypeAbort
	// TypeEnd marks the completion of commit or rollback processing.
	TypeEnd
	// TypeCheckpointBegin and TypeCheckpointEnd bracket a fuzzy
	// checkpoint; the end record carries the serialized transaction
	// table, dirty page table and delegation state.
	TypeCheckpointBegin
	TypeCheckpointEnd
	// TypeIncrement records a commutative counter increment with a
	// logical (delta) description: undo applies the negated delta, so
	// increments by different transactions may interleave on one object
	// (the paper's "not all update operations conflict", §2.1.1, and
	// the counter example of §3.4).
	TypeIncrement
	// TypePrepare marks a local transaction as an in-doubt participant
	// of the cross-shard transaction GID (internal/shard's per-shard-
	// logged 2PC).  The record rides the participant shard's own log and
	// must be flushed before the participant votes yes; after a crash an
	// analyzed Prepare without a following commit/abort leaves the
	// transaction in-doubt until the coordinator shard is asked for the
	// decision (presumed abort when the coordinator has none).
	TypePrepare
	// TypeDelegateOut records the home-shard half of a cross-shard
	// delegation: like TypeDelegate it transfers responsibility between
	// two local transactions on this shard's log, and additionally names
	// the global transaction (GID) and coordinator shard of the
	// delegatee so the cross-shard history can be audited from any one
	// shard's log.  Cluster undo remains local to this shard.
	TypeDelegateOut
	// TypeDelegateIn is the acquirer-side bookkeeping half of a
	// cross-shard delegation, logged on the delegatee's coordinator
	// shard.  It carries no state change — redo and undo both skip it —
	// and exists so the coordinator shard's log records that the global
	// transaction took responsibility for an object homed elsewhere.
	TypeDelegateIn
)

// String returns the conventional short name of the record type.
func (t RecordType) String() string {
	switch t {
	case TypeBegin:
		return "begin"
	case TypeUpdate:
		return "update"
	case TypeCLR:
		return "clr"
	case TypeDelegate:
		return "delegate"
	case TypeCommit:
		return "commit"
	case TypeAbort:
		return "abort"
	case TypeEnd:
		return "end"
	case TypeCheckpointBegin:
		return "ckpt-begin"
	case TypeCheckpointEnd:
		return "ckpt-end"
	case TypeIncrement:
		return "increment"
	case TypePrepare:
		return "prepare"
	case TypeDelegateOut:
		return "delegate-out"
	case TypeDelegateIn:
		return "delegate-in"
	default:
		return fmt.Sprintf("invalid(%d)", uint8(t))
	}
}

// Record is a single log record.  One struct covers all record types; the
// per-type encoders serialize only the fields meaningful for the type.
type Record struct {
	// LSN is assigned by (*Log).Append and identifies the record.
	LSN LSN
	// Type discriminates the record kind.
	Type RecordType
	// TxID is the transaction on whose behalf the record was written.
	// For delegate records this is the delegator.  The naïve rewriting
	// baselines mutate this field in place — that is precisely the
	// "rewriting history" the paper's RH algorithm avoids.
	TxID TxID
	// PrevLSN links the record into TxID's backward chain.
	PrevLSN LSN

	// Object, Before and After are set on update records; CLRs reuse
	// Object and Before (the image being restored).
	Object ObjectID
	Before []byte
	After  []byte

	// UndoNextLSN (CLR only) is the next record of the transaction to
	// undo; Compensates is the LSN of the update this CLR undoes.
	UndoNextLSN LSN
	Compensates LSN

	// Delegate-record fields (Figure 6 of the paper).  Tor duplicates
	// TxID; TorPrev and TeePrev are the backward-chain heads of the
	// delegator and delegatee at the time of the delegation.
	Tor     TxID
	Tee     TxID
	TorPrev LSN
	TeePrev LSN

	// Payload carries opaque data for checkpoint-end records.
	Payload []byte

	// Delta is the signed amount of an increment record; on a CLR it is
	// the (negated) logical compensation of an undone increment, in
	// which case Logical is set and Before is unused.
	Delta   int64
	Logical bool

	// Cross-shard fields (prepare, delegate-out and delegate-in
	// records).  GID is the cluster-wide id of the distributed
	// transaction; Shard names the peer shard involved: the coordinator
	// shard on prepare records, the delegatee's coordinator shard on
	// delegate-out records, and the object's home shard on delegate-in
	// records.
	GID   uint64
	Shard uint32
}

// IsUndoable reports whether the record represents a change that the undo
// pass may need to roll back.
func (r *Record) IsUndoable() bool { return r.Type == TypeUpdate || r.Type == TypeIncrement }

// String renders the record compactly, in the style of the paper's figures,
// e.g. "102 update[t2, 7]" or "106 delegate(t1 -> t2, 7)".
func (r *Record) String() string {
	switch r.Type {
	case TypeUpdate:
		return fmt.Sprintf("%d update[t%d, %d]", r.LSN, r.TxID, r.Object)
	case TypeIncrement:
		return fmt.Sprintf("%d increment[t%d, %d, %+d]", r.LSN, r.TxID, r.Object, r.Delta)
	case TypeCLR:
		return fmt.Sprintf("%d clr[t%d, %d undoNext=%d]", r.LSN, r.TxID, r.Object, r.UndoNextLSN)
	case TypeDelegate:
		return fmt.Sprintf("%d delegate(t%d -> t%d, %d)", r.LSN, r.Tor, r.Tee, r.Object)
	case TypePrepare:
		return fmt.Sprintf("%d prepare[t%d, gid=%d coord=%d]", r.LSN, r.TxID, r.GID, r.Shard)
	case TypeDelegateOut:
		return fmt.Sprintf("%d delegate-out(t%d -> t%d, %d gid=%d peer=%d)", r.LSN, r.Tor, r.Tee, r.Object, r.GID, r.Shard)
	case TypeDelegateIn:
		return fmt.Sprintf("%d delegate-in[t%d, %d gid=%d home=%d]", r.LSN, r.TxID, r.Object, r.GID, r.Shard)
	default:
		return fmt.Sprintf("%d %s(t%d)", r.LSN, r.Type, r.TxID)
	}
}

// clone returns a deep copy of the record so callers can hold decoded
// records without aliasing the log's internal cache.
func (r *Record) clone() *Record {
	c := *r
	c.Before = append([]byte(nil), r.Before...)
	c.After = append([]byte(nil), r.After...)
	c.Payload = append([]byte(nil), r.Payload...)
	return &c
}
