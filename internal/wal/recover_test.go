package wal

import (
	"fmt"
	"testing"
)

// failOpenDir wraps a Dir so Open of one specific name fails — an
// unreadable file, the failure mode pickManifest must fall back past.
type failOpenDir struct {
	Dir
	name string
}

func (d *failOpenDir) Open(name string) (Store, error) {
	if name == d.name {
		return nil, fmt.Errorf("injected open failure: %s", name)
	}
	return d.Dir.Open(name)
}

// TestPickManifestSkipsUnreadableGeneration pins recovery's fallback
// contract: a higher-generation manifest whose device cannot be opened
// or read is skipped like a torn one, so a single unreadable file does
// not block recovery when a valid older generation exists.
func TestPickManifestSkipsUnreadableGeneration(t *testing.T) {
	mem := NewMemDir()
	l, err := NewLog(mem)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3)
	if err := l.Flush(3); err != nil {
		t.Fatal(err)
	}
	goodGen := l.manifestGen

	// Plant a higher-generation manifest name whose device refuses to
	// open.
	badName := manifestName(goodGen + 7)
	mem.Put(badName, []byte("unreadable"))
	dir := &failOpenDir{Dir: mem, name: badName}

	names, err := dir.List()
	if err != nil {
		t.Fatal(err)
	}
	m, err := pickManifest(dir, names)
	if err != nil {
		t.Fatalf("pickManifest: %v", err)
	}
	if m == nil || m.gen != goodGen {
		t.Fatalf("pickManifest picked %+v, want gen %d", m, goodGen)
	}

	// A full reopen over the same directory recovers every record.
	l2, err := NewLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Head() != 3 {
		t.Fatalf("reopen head = %d, want 3", l2.Head())
	}
}

// TestPickManifestErrorsWhenNoGenerationUsable pins the other half of
// the fallback contract: when EVERY manifest generation is unreadable,
// pickManifest surfaces the error rather than returning nil — a nil
// would send Open down the fresh-init path and discard the directory.
func TestPickManifestErrorsWhenNoGenerationUsable(t *testing.T) {
	mem := NewMemDir()
	badName := manifestName(1)
	mem.Put(badName, []byte("unreadable"))
	dir := &failOpenDir{Dir: mem, name: badName}
	names, err := dir.List()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pickManifest(dir, names); err == nil {
		t.Fatal("pickManifest returned nil error with no usable generation")
	}
}

// TestFreshInitLeavesUnknownNamesAlone pins initFreshDir to the same
// namespace policy as sweepStrays: only seg-/manifest- files belong to
// the log; pointing a fresh log at a directory containing unrelated
// files must not delete them.
func TestFreshInitLeavesUnknownNamesAlone(t *testing.T) {
	mem := NewMemDir()
	mem.Put("notes.txt", []byte("user data, not the log's"))
	mem.Put(segmentName(3), nil) // headerless stray: swept
	l, err := NewLog(mem)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 2)
	if err := l.Flush(2); err != nil {
		t.Fatal(err)
	}
	names, err := mem.List()
	if err != nil {
		t.Fatal(err)
	}
	var sawNotes, sawStray bool
	for _, name := range names {
		if name == "notes.txt" {
			sawNotes = true
		}
		if name == segmentName(3) {
			sawStray = true
		}
	}
	if !sawNotes {
		t.Fatalf("fresh init deleted unknown file notes.txt (dir: %v)", names)
	}
	if sawStray {
		t.Fatalf("fresh init left headerless stray %s (dir: %v)", segmentName(3), names)
	}
}
