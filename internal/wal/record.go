package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Binary layout of an encoded record:
//
//	u32 bodyLen | u32 crc32(body) | body
//
// body:
//
//	u8  type
//	u64 lsn
//	u32 txid
//	u64 prevLSN
//	... type-specific fields ...
//
// All integers are little-endian.  The frame is self-describing so a log can
// be rescanned from byte 0 after a crash, and the CRC detects torn tails.

// ErrCorrupt is returned when a record frame fails its checksum or is
// structurally malformed.
var ErrCorrupt = errors.New("wal: corrupt record")

// ErrTruncated is returned when the buffer ends before the frame does — a
// torn tail after a crash, recoverable by dropping the partial frame.  It
// wraps ErrCorrupt, so errors.Is(err, ErrCorrupt) also holds.
var ErrTruncated = errors.New("wal: truncated record")

const frameHeaderSize = 8

type recordEncoder struct{ buf []byte }

func (e *recordEncoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *recordEncoder) u16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }
func (e *recordEncoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *recordEncoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

func (e *recordEncoder) bytes16(p []byte) {
	if len(p) > 0xFFFF {
		panic("wal: image larger than 64 KiB")
	}
	e.u16(uint16(len(p)))
	e.buf = append(e.buf, p...)
}

func (e *recordEncoder) bytes32(p []byte) {
	e.u32(uint32(len(p)))
	e.buf = append(e.buf, p...)
}

type recordDecoder struct {
	buf []byte
	off int
	err error
}

func (d *recordDecoder) fail() {
	if d.err == nil {
		d.err = ErrCorrupt
	}
}

func (d *recordDecoder) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *recordDecoder) u16() uint16 {
	if d.err != nil || d.off+2 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

func (d *recordDecoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *recordDecoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *recordDecoder) bytes16() []byte {
	n := int(d.u16())
	if d.err != nil || d.off+n > len(d.buf) {
		d.fail()
		return nil
	}
	p := append([]byte(nil), d.buf[d.off:d.off+n]...)
	d.off += n
	return p
}

func (d *recordDecoder) bytes32() []byte {
	n := int(d.u32())
	if d.err != nil || d.off+n > len(d.buf) {
		d.fail()
		return nil
	}
	p := append([]byte(nil), d.buf[d.off:d.off+n]...)
	d.off += n
	return p
}

// EncodeRecord serializes r into a framed, checksummed byte slice.
func EncodeRecord(r *Record) ([]byte, error) {
	var e recordEncoder
	e.buf = make([]byte, frameHeaderSize, frameHeaderSize+64+len(r.Before)+len(r.After)+len(r.Payload))
	e.u8(uint8(r.Type))
	e.u64(uint64(r.LSN))
	e.u32(uint32(r.TxID))
	e.u64(uint64(r.PrevLSN))
	switch r.Type {
	case TypeBegin, TypeCommit, TypeAbort, TypeEnd, TypeCheckpointBegin:
		// header only
	case TypeUpdate:
		e.u64(uint64(r.Object))
		e.bytes16(r.Before)
		e.bytes16(r.After)
	case TypeCLR:
		e.u64(uint64(r.Object))
		e.u64(uint64(r.UndoNextLSN))
		e.u64(uint64(r.Compensates))
		if r.Logical {
			e.u8(1)
			e.u64(uint64(r.Delta))
		} else {
			e.u8(0)
			e.bytes16(r.Before)
		}
	case TypeIncrement:
		e.u64(uint64(r.Object))
		e.u64(uint64(r.Delta))
	case TypeDelegate:
		e.u32(uint32(r.Tor))
		e.u32(uint32(r.Tee))
		e.u64(uint64(r.TorPrev))
		e.u64(uint64(r.TeePrev))
		e.u64(uint64(r.Object))
	case TypePrepare:
		e.u64(r.GID)
		e.u32(r.Shard)
	case TypeDelegateOut:
		e.u32(uint32(r.Tor))
		e.u32(uint32(r.Tee))
		e.u64(uint64(r.TorPrev))
		e.u64(uint64(r.TeePrev))
		e.u64(uint64(r.Object))
		e.u64(r.GID)
		e.u32(r.Shard)
	case TypeDelegateIn:
		e.u64(uint64(r.Object))
		e.u64(r.GID)
		e.u32(r.Shard)
	case TypeCheckpointEnd:
		e.bytes32(r.Payload)
	default:
		return nil, fmt.Errorf("wal: cannot encode record type %v", r.Type)
	}
	body := e.buf[frameHeaderSize:]
	binary.LittleEndian.PutUint32(e.buf[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(e.buf[4:], crc32.ChecksumIEEE(body))
	return e.buf, nil
}

// DecodeRecord parses one framed record from the front of p, returning the
// record and the total number of bytes consumed.  It returns ErrCorrupt
// (possibly wrapped) when the frame is truncated or fails its checksum.
func DecodeRecord(p []byte) (*Record, int, error) {
	if len(p) < frameHeaderSize {
		return nil, 0, fmt.Errorf("%w (%w): frame header", ErrTruncated, ErrCorrupt)
	}
	bodyLen := int(binary.LittleEndian.Uint32(p[0:]))
	sum := binary.LittleEndian.Uint32(p[4:])
	if len(p) < frameHeaderSize+bodyLen {
		return nil, 0, fmt.Errorf("%w (%w): body wants %d bytes", ErrTruncated, ErrCorrupt, bodyLen)
	}
	body := p[frameHeaderSize : frameHeaderSize+bodyLen]
	if crc32.ChecksumIEEE(body) != sum {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	d := recordDecoder{buf: body}
	r := &Record{}
	r.Type = RecordType(d.u8())
	r.LSN = LSN(d.u64())
	r.TxID = TxID(d.u32())
	r.PrevLSN = LSN(d.u64())
	switch r.Type {
	case TypeBegin, TypeCommit, TypeAbort, TypeEnd, TypeCheckpointBegin:
	case TypeUpdate:
		r.Object = ObjectID(d.u64())
		r.Before = d.bytes16()
		r.After = d.bytes16()
	case TypeCLR:
		r.Object = ObjectID(d.u64())
		r.UndoNextLSN = LSN(d.u64())
		r.Compensates = LSN(d.u64())
		if d.u8() == 1 {
			r.Logical = true
			r.Delta = int64(d.u64())
		} else {
			r.Before = d.bytes16()
		}
	case TypeIncrement:
		r.Object = ObjectID(d.u64())
		r.Delta = int64(d.u64())
	case TypeDelegate:
		r.Tor = TxID(d.u32())
		r.Tee = TxID(d.u32())
		r.TorPrev = LSN(d.u64())
		r.TeePrev = LSN(d.u64())
		r.Object = ObjectID(d.u64())
	case TypePrepare:
		r.GID = d.u64()
		r.Shard = d.u32()
	case TypeDelegateOut:
		r.Tor = TxID(d.u32())
		r.Tee = TxID(d.u32())
		r.TorPrev = LSN(d.u64())
		r.TeePrev = LSN(d.u64())
		r.Object = ObjectID(d.u64())
		r.GID = d.u64()
		r.Shard = d.u32()
	case TypeDelegateIn:
		r.Object = ObjectID(d.u64())
		r.GID = d.u64()
		r.Shard = d.u32()
	case TypeCheckpointEnd:
		r.Payload = d.bytes32()
	default:
		return nil, 0, fmt.Errorf("%w: unknown record type %d", ErrCorrupt, uint8(r.Type))
	}
	if d.err != nil {
		return nil, 0, d.err
	}
	if d.off != len(body) {
		return nil, 0, fmt.Errorf("%w: %d trailing bytes in body", ErrCorrupt, len(body)-d.off)
	}
	return r, frameHeaderSize + bodyLen, nil
}
