package wal

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

func mustAppend(t *testing.T, l *Log, r *Record) LSN {
	t.Helper()
	lsn, err := l.Append(r)
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	return lsn
}

func newMemLog(t *testing.T) *Log {
	t.Helper()
	l, err := NewLog(NewMemDir())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// activeSegmentDev returns the device of the log's append-target segment.
func activeSegmentDev(t *testing.T, dir Dir, l *Log) Store {
	t.Helper()
	segs := l.Segments()
	dev, err := dir.Open(segs[len(segs)-1].Name)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func TestLogAppendAssignsDenseLSNs(t *testing.T) {
	l := newMemLog(t)
	for i := 1; i <= 10; i++ {
		lsn := mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: ObjectID(i), After: []byte{byte(i)}})
		if lsn != LSN(i) {
			t.Fatalf("append %d: lsn = %d", i, lsn)
		}
	}
	if l.Head() != 10 {
		t.Fatalf("head = %d, want 10", l.Head())
	}
}

func TestLogGet(t *testing.T) {
	l := newMemLog(t)
	mustAppend(t, l, &Record{Type: TypeBegin, TxID: 3})
	mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 3, PrevLSN: 1, Object: 9, After: []byte("x")})
	r, err := l.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Type != TypeUpdate || r.Object != 9 || r.PrevLSN != 1 {
		t.Fatalf("got %+v", r)
	}
	if _, err := l.Get(0); !errors.Is(err, ErrNoSuchLSN) {
		t.Fatalf("Get(0) err = %v", err)
	}
	if _, err := l.Get(3); !errors.Is(err, ErrNoSuchLSN) {
		t.Fatalf("Get(3) err = %v", err)
	}
	// Mutating the returned record must not affect the log.
	r.Object = 1000
	r2, _ := l.Get(2)
	if r2.Object != 9 {
		t.Fatal("Get returned an aliased record")
	}
}

func TestLogFlushAndCrash(t *testing.T) {
	l := newMemLog(t)
	for i := 0; i < 5; i++ {
		mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: ObjectID(i)})
	}
	if err := l.Flush(3); err != nil {
		t.Fatal(err)
	}
	if got := l.FlushedLSN(); got != 3 {
		t.Fatalf("flushedLSN = %d, want 3", got)
	}
	if err := l.Crash(); err != nil {
		t.Fatal(err)
	}
	if l.Head() != 3 {
		t.Fatalf("head after crash = %d, want 3", l.Head())
	}
	if _, err := l.Get(4); !errors.Is(err, ErrNoSuchLSN) {
		t.Fatalf("record 4 survived the crash: %v", err)
	}
	// Appends after the crash continue from the surviving head.
	lsn := mustAppend(t, l, &Record{Type: TypeCommit, TxID: 1, PrevLSN: 3})
	if lsn != 4 {
		t.Fatalf("post-crash append lsn = %d, want 4", lsn)
	}
}

func TestLogFlushPastHeadFlushesAll(t *testing.T) {
	l := newMemLog(t)
	mustAppend(t, l, &Record{Type: TypeBegin, TxID: 1})
	if err := l.Flush(99); err != nil {
		t.Fatal(err)
	}
	if l.FlushedLSN() != 1 {
		t.Fatalf("flushedLSN = %d", l.FlushedLSN())
	}
}

func TestLogReopenFromDir(t *testing.T) {
	dir := NewMemDir()
	l, err := NewLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, &Record{Type: TypeBegin, TxID: 2})
	mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 2, PrevLSN: 1, Object: 5, Before: []byte("a"), After: []byte("b")})
	if err := l.Flush(2); err != nil {
		t.Fatal(err)
	}
	l2, err := NewLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Head() != 2 || l2.FlushedLSN() != 2 {
		t.Fatalf("reopened head=%d flushed=%d", l2.Head(), l2.FlushedLSN())
	}
	r, err := l2.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Object != 5 || string(r.After) != "b" {
		t.Fatalf("reopened record: %+v", r)
	}
}

func TestLogTornTailTruncated(t *testing.T) {
	dir := NewMemDir()
	l, err := NewLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, &Record{Type: TypeBegin, TxID: 1})
	mustAppend(t, l, &Record{Type: TypeCommit, TxID: 1, PrevLSN: 1})
	if err := l.Flush(2); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write: chop bytes off the active segment's tail.
	dev := activeSegmentDev(t, dir, l)
	size, _ := dev.Size()
	if err := dev.Truncate(size - 3); err != nil {
		t.Fatal(err)
	}
	l2, err := NewLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Head() != 1 {
		t.Fatalf("head = %d, want 1 (torn record dropped)", l2.Head())
	}
}

func TestLogScan(t *testing.T) {
	l := newMemLog(t)
	for i := 1; i <= 6; i++ {
		mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: ObjectID(i)})
	}
	var got []ObjectID
	err := l.Scan(2, 5, func(r *Record) (bool, error) {
		got = append(got, r.Object)
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []ObjectID{2, 3, 4, 5}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("scan = %v, want %v", got, want)
	}
	// Early stop.
	n := 0
	if err := l.Scan(NilLSN, NilLSN, func(r *Record) (bool, error) { n++; return n < 3, nil }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestLogRewrite(t *testing.T) {
	l := newMemLog(t)
	mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: 7, Before: []byte("a"), After: []byte("b")})
	if err := l.Rewrite(1, func(r *Record) { r.TxID = 2 }); err != nil {
		t.Fatal(err)
	}
	r, _ := l.Get(1)
	if r.TxID != 2 {
		t.Fatalf("rewrite not applied: %+v", r)
	}
	// Size-changing rewrites are rejected.
	err := l.Rewrite(1, func(r *Record) { r.After = []byte("grown") })
	if !errors.Is(err, ErrRewriteSizeChanged) {
		t.Fatalf("err = %v, want ErrRewriteSizeChanged", err)
	}
	// LSN-changing rewrites are rejected.
	if err := l.Rewrite(1, func(r *Record) { r.LSN = 99 }); err == nil {
		t.Fatal("LSN rewrite accepted")
	}
}

func TestLogRewriteStablePatchesDevice(t *testing.T) {
	dir := NewMemDir()
	l, err := NewLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: 7, After: []byte("x")})
	if err := l.Flush(1); err != nil {
		t.Fatal(err)
	}
	before := l.Stats()
	if err := l.Rewrite(1, func(r *Record) { r.TxID = 9 }); err != nil {
		t.Fatal(err)
	}
	d := l.Stats().Sub(before)
	if d.Rewrites != 1 || d.RewriteFlushes != 1 {
		t.Fatalf("stats diff = %+v", d)
	}
	// The patch must survive a crash (it went to stable storage).
	if err := l.Crash(); err != nil {
		t.Fatal(err)
	}
	r, err := l.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.TxID != 9 {
		t.Fatalf("stable rewrite lost: %+v", r)
	}
}

func TestLogAccessStatsSequentialVsRandom(t *testing.T) {
	l := newMemLog(t)
	for i := 0; i < 10; i++ {
		mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: ObjectID(i)})
	}
	l.ResetReadCursor()
	base := l.Stats()
	for lsn := LSN(10); lsn >= 1; lsn-- { // backward sweep is sequential
		if _, err := l.Get(lsn); err != nil {
			t.Fatal(err)
		}
	}
	d := l.Stats().Sub(base)
	if d.RandomReads > 1 { // only the first positioning read may be random
		t.Fatalf("backward sweep counted %d random reads", d.RandomReads)
	}
	base = l.Stats()
	for _, lsn := range []LSN{5, 1, 7, 3} { // cursor sits at 1 after the sweep
		if _, err := l.Get(lsn); err != nil {
			t.Fatal(err)
		}
	}
	d = l.Stats().Sub(base)
	if d.RandomReads != 4 {
		t.Fatalf("scattered reads counted %d random reads, want 4", d.RandomReads)
	}
}

func TestLogFileDir(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	dir, err := OpenFileDir(path)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, &Record{Type: TypeBegin, TxID: 1})
	mustAppend(t, l, &Record{Type: TypeCommit, TxID: 1, PrevLSN: 1})
	if err := l.Flush(2); err != nil {
		t.Fatal(err)
	}
	if err := dir.Close(); err != nil {
		t.Fatal(err)
	}
	dir2, err := OpenFileDir(path)
	if err != nil {
		t.Fatal(err)
	}
	defer dir2.Close()
	l2, err := NewLog(dir2)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Head() != 2 {
		t.Fatalf("file-backed reopen head = %d", l2.Head())
	}
}

func TestLogConcurrentAppends(t *testing.T) {
	l := newMemLog(t)
	const goroutines, per = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append(&Record{Type: TypeUpdate, TxID: TxID(g + 1), Object: ObjectID(i)}); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if l.Head() != goroutines*per {
		t.Fatalf("head = %d, want %d", l.Head(), goroutines*per)
	}
	// Every LSN must be readable and dense.
	for lsn := LSN(1); lsn <= goroutines*per; lsn++ {
		if _, err := l.Get(lsn); err != nil {
			t.Fatalf("get %d: %v", lsn, err)
		}
	}
}

func TestLogInteriorCorruptionRefusesOpen(t *testing.T) {
	dir := NewMemDir()
	l, err := NewLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, &Record{Type: TypeBegin, TxID: 1})
	mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: 1, After: []byte("v")})
	mustAppend(t, l, &Record{Type: TypeCommit, TxID: 1, PrevLSN: 2})
	if err := l.Flush(3); err != nil {
		t.Fatal(err)
	}
	// Flip a byte INSIDE the first record's body (interior corruption:
	// covered by the frame checksum, not the frame length field).
	dev := activeSegmentDev(t, dir, l)
	var b [1]byte
	off := int64(SegmentHeaderSize) + 8 + 3
	if _, err := dev.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := dev.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	if _, err := NewLog(dir); err == nil {
		t.Fatal("interior corruption silently accepted")
	} else if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	// Restore the byte: a genuinely torn tail (short final frame) still
	// opens, dropping only the torn record.
	b[0] ^= 0xFF
	if _, err := dev.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	size, _ := dev.Size()
	if err := dev.Truncate(size - 3); err != nil {
		t.Fatal(err)
	}
	l3, err := NewLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if l3.Head() != 2 {
		t.Fatalf("head after torn tail = %d, want 2", l3.Head())
	}
}
