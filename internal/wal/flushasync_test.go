package wal

import (
	"sync"
	"testing"
	"time"
)

// gatedStore blocks Sync until released, so tests can deterministically
// pile waiters onto the flush queue while the leader's first device sync
// is in flight.
type gatedStore struct {
	*MemStore
	mu      sync.Mutex
	armed   bool // NewLog itself syncs (header write); gate only after setup
	syncs   int
	gate    chan struct{} // each armed Sync receives once from here
	entered chan struct{} // signaled when an armed Sync starts waiting
}

func newGatedStore() *gatedStore {
	return &gatedStore{
		MemStore: NewMemStore(),
		gate:     make(chan struct{}),
		entered:  make(chan struct{}, 16),
	}
}

func (s *gatedStore) arm() {
	s.mu.Lock()
	s.armed = true
	s.mu.Unlock()
}

func (s *gatedStore) Sync() error {
	s.mu.Lock()
	armed := s.armed
	if armed {
		s.syncs++
	}
	s.mu.Unlock()
	if armed {
		s.entered <- struct{}{}
		<-s.gate
	}
	return s.MemStore.Sync()
}

func (s *gatedStore) syncCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncs
}

func TestFlushAsyncSingleWaiter(t *testing.T) {
	l := newMemLog(t)
	lsn := mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: 7})
	if err := <-l.FlushAsync(lsn); err != nil {
		t.Fatalf("FlushAsync: %v", err)
	}
	if got := l.FlushedLSN(); got < lsn {
		t.Fatalf("FlushedLSN = %d, want >= %d", got, lsn)
	}
	st := l.Stats()
	if st.GroupedFlushes != 1 || st.FlushWaiters != 1 {
		t.Fatalf("stats = grouped %d / waiters %d, want 1/1", st.GroupedFlushes, st.FlushWaiters)
	}
}

func TestFlushAsyncAlreadyDurable(t *testing.T) {
	l := newMemLog(t)
	lsn := mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: 7})
	if err := l.Flush(lsn); err != nil {
		t.Fatal(err)
	}
	st0 := l.Stats()
	// Already-covered requests complete immediately without a device trip.
	if err := <-l.FlushAsync(lsn); err != nil {
		t.Fatalf("FlushAsync: %v", err)
	}
	d := l.Stats().Sub(st0)
	if d.Flushes != 0 || d.GroupedFlushes != 0 {
		t.Fatalf("already-durable FlushAsync touched the device: %+v", d)
	}
}

// TestFlushAsyncCoalesces pins the leader's first sync on a gate, queues
// more waiters behind it, then releases the gate: the second (and final)
// sync must cover every queued waiter, giving exactly 2 device syncs for
// N+1 requests.
func TestFlushAsyncCoalesces(t *testing.T) {
	store := newGatedStore()
	l, err := NewLog(store)
	if err != nil {
		t.Fatal(err)
	}
	store.arm()

	first := mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: 1})
	ch0 := l.FlushAsync(first)
	<-store.entered // leader is now blocked inside Sync for LSN `first`

	const extra = 5
	chans := make([]<-chan error, 0, extra)
	for i := 0; i < extra; i++ {
		lsn := mustAppend(t, l, &Record{Type: TypeUpdate, TxID: TxID(i + 2), Object: ObjectID(i + 2)})
		chans = append(chans, l.FlushAsync(lsn))
	}
	// None of the later waiters may complete while the first sync is stuck.
	for i, ch := range chans {
		select {
		case err := <-ch:
			t.Fatalf("waiter %d completed before its records were synced (err=%v)", i, err)
		default:
		}
	}

	store.gate <- struct{}{} // release sync #1 (covers only `first`)
	if err := <-ch0; err != nil {
		t.Fatalf("first waiter: %v", err)
	}
	<-store.entered          // leader started sync #2 for the max queued LSN
	store.gate <- struct{}{} // release it
	for i, ch := range chans {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("waiter %d: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("waiter %d not released after covering sync", i)
		}
	}

	if got := store.syncCount(); got != 2 {
		t.Fatalf("device syncs = %d, want 2 (one per batch)", got)
	}
	st := l.Stats()
	if st.GroupedFlushes != 2 {
		t.Fatalf("GroupedFlushes = %d, want 2", st.GroupedFlushes)
	}
	if st.FlushWaiters != extra+1 {
		t.Fatalf("FlushWaiters = %d, want %d", st.FlushWaiters, extra+1)
	}
}
