package wal

import (
	"sync"
	"testing"
	"time"
)

// gatedDir blocks every device Sync until released, so tests can
// deterministically pile waiters onto the flush queue while the leader's
// first device sync is in flight.
type gatedDir struct {
	*MemDir
	mu      sync.Mutex
	armed   bool // NewLog itself syncs (init writes); gate only after setup
	syncs   int
	gate    chan struct{} // each armed Sync receives once from here
	entered chan struct{} // signaled when an armed Sync starts waiting
}

func newGatedDir() *gatedDir {
	return &gatedDir{
		MemDir:  NewMemDir(),
		gate:    make(chan struct{}),
		entered: make(chan struct{}, 16),
	}
}

func (d *gatedDir) arm() {
	d.mu.Lock()
	d.armed = true
	d.mu.Unlock()
}

func (d *gatedDir) Open(name string) (Store, error) {
	s, err := d.MemDir.Open(name)
	if err != nil {
		return nil, err
	}
	return &gatedDev{Store: s, dir: d}, nil
}

func (d *gatedDir) syncCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.syncs
}

type gatedDev struct {
	Store
	dir *gatedDir
}

func (s *gatedDev) Sync() error {
	d := s.dir
	d.mu.Lock()
	armed := d.armed
	if armed {
		d.syncs++
	}
	d.mu.Unlock()
	if armed {
		d.entered <- struct{}{}
		<-d.gate
	}
	return s.Store.Sync()
}

func TestFlushAsyncSingleWaiter(t *testing.T) {
	l := newMemLog(t)
	lsn := mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: 7})
	if err := <-l.FlushAsync(lsn); err != nil {
		t.Fatalf("FlushAsync: %v", err)
	}
	if got := l.FlushedLSN(); got < lsn {
		t.Fatalf("FlushedLSN = %d, want >= %d", got, lsn)
	}
	st := l.Stats()
	if st.GroupedFlushes != 1 || st.FlushWaiters != 1 {
		t.Fatalf("stats = grouped %d / waiters %d, want 1/1", st.GroupedFlushes, st.FlushWaiters)
	}
}

func TestFlushAsyncAlreadyDurable(t *testing.T) {
	l := newMemLog(t)
	lsn := mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: 7})
	if err := l.Flush(lsn); err != nil {
		t.Fatal(err)
	}
	st0 := l.Stats()
	// Already-covered requests complete immediately without a device trip.
	if err := <-l.FlushAsync(lsn); err != nil {
		t.Fatalf("FlushAsync: %v", err)
	}
	d := l.Stats().Sub(st0)
	if d.Flushes != 0 || d.GroupedFlushes != 0 {
		t.Fatalf("already-durable FlushAsync touched the device: %+v", d)
	}
}

// TestFlushAsyncCoalesces pins the leader's first sync on a gate, queues
// more waiters behind it, then releases the gate: the second (and final)
// sync must cover every queued waiter, giving exactly 2 device syncs for
// N+1 requests.
func TestFlushAsyncCoalesces(t *testing.T) {
	dir := newGatedDir()
	l, err := NewLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	dir.arm()

	first := mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: 1})
	ch0 := l.FlushAsync(first)
	<-dir.entered // leader is now blocked inside Sync for LSN `first`

	const extra = 5
	chans := make([]<-chan error, 0, extra)
	for i := 0; i < extra; i++ {
		lsn := mustAppend(t, l, &Record{Type: TypeUpdate, TxID: TxID(i + 2), Object: ObjectID(i + 2)})
		chans = append(chans, l.FlushAsync(lsn))
	}
	// None of the later waiters may complete while the first sync is stuck.
	for i, ch := range chans {
		select {
		case err := <-ch:
			t.Fatalf("waiter %d completed before its records were synced (err=%v)", i, err)
		default:
		}
	}

	dir.gate <- struct{}{} // release sync #1 (covers only `first`)
	if err := <-ch0; err != nil {
		t.Fatalf("first waiter: %v", err)
	}
	<-dir.entered          // leader started sync #2 for the max queued LSN
	dir.gate <- struct{}{} // release it
	for i, ch := range chans {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("waiter %d: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("waiter %d not released after covering sync", i)
		}
	}

	if got := dir.syncCount(); got != 2 {
		t.Fatalf("device syncs = %d, want 2 (one per batch)", got)
	}
	st := l.Stats()
	if st.GroupedFlushes != 2 {
		t.Fatalf("GroupedFlushes = %d, want 2", st.GroupedFlushes)
	}
	if st.FlushWaiters != extra+1 {
		t.Fatalf("FlushWaiters = %d, want %d", st.FlushWaiters, extra+1)
	}
}
