package wal

import (
	"errors"
	"fmt"
)

// decodedSegment is the result of decoding one segment image: the record
// frames that survived on the device, their offsets, and whether the
// image ended in a torn (partially written) frame.
type decodedSegment struct {
	hdr     segmentHeader
	data    []byte // frame bytes that decoded cleanly (header excluded)
	offsets []int
	recs    []*Record
	torn    bool // image had trailing bytes that did not decode
}

// decodeSegmentImage parses a raw segment image (header + frames).  A
// trailing partial frame — the signature of a crash between WriteAt and
// Sync — is reported via torn, not as an error; density violations and
// interior corruption are errors.
func decodeSegmentImage(buf []byte) (*decodedSegment, error) {
	hdr, err := decodeSegmentHeader(buf)
	if err != nil {
		return nil, err
	}
	d := &decodedSegment{hdr: hdr}
	body := buf[segmentHeaderSize:]
	off := 0
	for off < len(body) {
		r, n, err := DecodeRecord(body[off:])
		if err != nil {
			if errors.Is(err, ErrTruncated) {
				d.torn = true
				break
			}
			return nil, fmt.Errorf("segment %d at offset %d: %w", hdr.num, off, err)
		}
		want := hdr.firstLSN + LSN(len(d.recs))
		if r.LSN != want {
			return nil, fmt.Errorf("%w: segment %d record at offset %d has LSN %d, want %d",
				ErrCorrupt, hdr.num, off, r.LSN, want)
		}
		d.offsets = append(d.offsets, off)
		d.recs = append(d.recs, r)
		off += n
	}
	d.data = body[:off]
	return d, nil
}

// loadFromDir (re)initializes the log from its directory: pick the
// authoritative manifest, decode every listed segment, repair the torn
// tail a crash may have left, and sweep files no generation references.
//
// What recovery tolerates, and why it is enough: flushing writes+syncs
// segment chunks in strict LSN order, so at any instant at most ONE
// segment device carries unsynced frame bytes.  A crash therefore leaves
// (a) a clean prefix of fully durable segments, (b) at most one segment
// with a shorter-than-volatile — possibly mid-frame torn — frame run,
// and (c) possibly empty later segments (their headers were synced by
// rotation but no frames ever reached them).  Decodable frames appearing
// AFTER such a gap would mean the device reordered a sync barrier and
// are refused as corruption.  A torn or missing higher manifest
// generation (crash mid-rotation or mid-archive) is ignored in favor of
// the previous generation, whose files are all still present because
// files are deleted only after the generation dropping them is durable.
func (l *Log) loadFromDir() error {
	names, err := l.dir.List()
	if err != nil {
		return fmt.Errorf("wal: open: %w", err)
	}
	m, err := pickManifest(l.dir, names)
	if err != nil {
		return fmt.Errorf("wal: open: %w", err)
	}
	if m == nil {
		return l.initFreshDir(names)
	}
	if len(m.segs) == 0 {
		return fmt.Errorf("%w: manifest lists no segments", ErrCorrupt)
	}

	l.base = m.base
	l.manifestGen = m.gen
	head := m.base
	if m.segs[0].firstLSN <= m.base {
		// The first segment retains records at or below the archived
		// base (archive is logical-first, physical at segment
		// granularity); continuity is judged from its first record.
		head = m.segs[0].firstLSN - 1
	}
	var live []*segment
	var dropped []uint64
	for _, e := range m.segs {
		dev, err := l.dir.Open(segmentName(e.num))
		if err != nil {
			return fmt.Errorf("wal: open segment %d: %w", e.num, err)
		}
		buf, err := readAll(dev)
		if err != nil {
			return fmt.Errorf("wal: read segment %d: %w", e.num, err)
		}
		d, err := decodeSegmentImage(buf)
		if err != nil {
			// A listed segment's header was synced before the manifest
			// listing it; an unreadable header here is real corruption,
			// not a crash artifact.
			return fmt.Errorf("wal: %w", err)
		}
		if d.hdr.num != e.num || d.hdr.firstLSN != e.firstLSN {
			return fmt.Errorf("%w: segment %d header (num %d, firstLSN %d) disagrees with manifest entry (firstLSN %d)",
				ErrCorrupt, e.num, d.hdr.num, d.hdr.firstLSN, e.firstLSN)
		}
		if e.firstLSN > head+1 {
			// Unreachable past the durable head: the segment was created
			// by a rotation whose volatile tail died with the process.
			if len(d.recs) > 0 {
				return fmt.Errorf("%w: segment %d holds records %d.. after durable head %d",
					ErrCorrupt, e.num, e.firstLSN, head)
			}
			dropped = append(dropped, e.num)
			continue
		}
		if len(live) > 0 && e.firstLSN != head+1 {
			return fmt.Errorf("%w: segment %d first LSN %d overlaps durable head %d",
				ErrCorrupt, e.num, e.firstLSN, head)
		}
		if d.torn {
			// Discard the torn trailing frame from the device so future
			// appends and flushes extend a clean image.
			if err := dev.Truncate(segmentHeaderSize + int64(len(d.data))); err != nil {
				return fmt.Errorf("wal: truncate torn segment %d: %w", e.num, err)
			}
			if err := dev.Sync(); err != nil {
				return fmt.Errorf("wal: sync torn segment %d: %w", e.num, err)
			}
		}
		live = append(live, &segment{
			num:          e.num,
			firstLSN:     e.firstLSN,
			dev:          dev,
			data:         d.data,
			offsets:      d.offsets,
			cache:        d.recs,
			flushedBytes: int64(len(d.data)),
		})
		head = e.firstLSN + LSN(len(d.recs)) - 1
	}
	if head < l.base {
		return fmt.Errorf("%w: durable head %d below archived base %d", ErrCorrupt, head, l.base)
	}

	l.segs = live
	l.flushedLSN = head
	if len(dropped) > 0 {
		// Make the pruned segment set durable BEFORE deleting any file:
		// a listed segment must always exist.
		if err := l.writeManifestLocked(l.base, manifestEntries(live)); err != nil {
			return err
		}
		for _, num := range dropped {
			_ = l.dir.Remove(segmentName(num))
		}
	}
	l.sweepStrays(names)
	l.met.segments.Set(int64(len(l.segs)))
	return nil
}

// initFreshDir initializes an empty directory: segment 1 plus manifest
// generation 1.  A directory with no decodable manifest but with segment
// record data is refused with ErrNoManifest — nothing says which
// segments are live, so silently re-initializing would discard records.
// Headerless or empty stray seg-/manifest- files (a crash during a
// previous fresh init) are removed; unknown names are left alone, the
// same policy as sweepStrays.
func (l *Log) initFreshDir(names []string) error {
	for _, name := range names {
		if num, ok := parseNumbered(name, "seg-"); ok {
			dev, err := l.dir.Open(name)
			if err != nil {
				return fmt.Errorf("wal: open: %w", err)
			}
			buf, err := readAll(dev)
			if err != nil {
				return fmt.Errorf("wal: open: %w", err)
			}
			if d, err := decodeSegmentImage(buf); err == nil && len(d.recs) > 0 {
				return fmt.Errorf("%w: segment %d holds records", ErrNoManifest, num)
			}
		} else if _, ok := parseNumbered(name, "manifest-"); !ok {
			continue // unknown name: not ours to delete
		}
		_ = l.dir.Remove(name)
	}
	dev, err := l.dir.Open(segmentName(1))
	if err != nil {
		return fmt.Errorf("wal: init: %w", err)
	}
	hdr := encodeSegmentHeader(segmentHeader{num: 1, firstLSN: 1})
	if _, err := dev.WriteAt(hdr, 0); err != nil {
		return fmt.Errorf("wal: init: %w", err)
	}
	if err := dev.Sync(); err != nil {
		return fmt.Errorf("wal: init: %w", err)
	}
	l.base = NilLSN
	l.manifestGen = 0
	l.flushedLSN = NilLSN
	l.segs = []*segment{{num: 1, firstLSN: 1, dev: dev}}
	if err := l.writeManifestLocked(NilLSN, manifestEntries(l.segs)); err != nil {
		return err
	}
	l.met.segments.Set(1)
	return nil
}

// sweepStrays removes files the authoritative state no longer references:
// manifest images of other generations and segment files outside the live
// set (leftovers of an interrupted rotation, archive or prune).  Failures
// are ignored — a stray is re-swept at the next open.
func (l *Log) sweepStrays(names []string) {
	liveSegs := make(map[uint64]struct{}, len(l.segs))
	for _, s := range l.segs {
		liveSegs[s.num] = struct{}{}
	}
	for _, name := range names {
		if gen, ok := parseNumbered(name, "manifest-"); ok {
			if gen != l.manifestGen {
				_ = l.dir.Remove(name)
			}
			continue
		}
		if num, ok := parseNumbered(name, "seg-"); ok {
			if _, live := liveSegs[num]; !live {
				_ = l.dir.Remove(name)
			}
			continue
		}
		// Unknown names are left alone.
	}
}

// ReadDurable decodes the durable record sequence of a log directory
// without opening a Log over it: the archived base plus every record the
// authoritative manifest's segments hold, in LSN order — including
// records at or below the base that their segment still retains (callers
// filter by LSN as needed).  It is read-only and tolerant exactly like
// recovery: a torn trailing frame or an empty trailing segment ends the
// sequence; it never repairs the directory.  Crash oracles use it to ask
// "what would recovery see?" of a post-crash image.
func ReadDurable(dir Dir) (base LSN, recs []*Record, err error) {
	names, err := dir.List()
	if err != nil {
		return NilLSN, nil, err
	}
	m, err := pickManifest(dir, names)
	if err != nil {
		return NilLSN, nil, err
	}
	if m == nil {
		return NilLSN, nil, nil
	}
	head := m.base
	if len(m.segs) > 0 && m.segs[0].firstLSN <= m.base {
		head = m.segs[0].firstLSN - 1
	}
	for _, e := range m.segs {
		dev, err := dir.Open(segmentName(e.num))
		if err != nil {
			return NilLSN, nil, err
		}
		buf, err := readAll(dev)
		if err != nil {
			return NilLSN, nil, err
		}
		d, err := decodeSegmentImage(buf)
		if err != nil {
			return NilLSN, nil, err
		}
		if e.firstLSN > head+1 {
			break // durable sequence ends at the gap
		}
		recs = append(recs, d.recs...)
		head = e.firstLSN + LSN(len(d.recs)) - 1
		if d.torn {
			break
		}
	}
	return m.base, recs, nil
}
