package wal

import (
	"fmt"
	"testing"
)

func BenchmarkEncodeUpdateRecord(b *testing.B) {
	r := &Record{Type: TypeUpdate, LSN: 42, TxID: 7, PrevLSN: 41, Object: 9,
		Before: []byte("before-image-value"), After: []byte("after-image-value")}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeRecord(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeUpdateRecord(b *testing.B) {
	r := &Record{Type: TypeUpdate, LSN: 42, TxID: 7, PrevLSN: 41, Object: 9,
		Before: []byte("before-image-value"), After: []byte("after-image-value")}
	enc, err := EncodeRecord(r)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeRecord(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLogAppend(b *testing.B) {
	l, err := NewLog(NewMemDir())
	if err != nil {
		b.Fatal(err)
	}
	r := &Record{Type: TypeUpdate, TxID: 1, Object: 5, After: []byte("value")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLogAppendFlushEvery(b *testing.B) {
	for _, every := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("flush-%d", every), func(b *testing.B) {
			l, err := NewLog(NewMemDir())
			if err != nil {
				b.Fatal(err)
			}
			r := &Record{Type: TypeUpdate, TxID: 1, Object: 5, After: []byte("value")}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lsn, err := l.Append(r)
				if err != nil {
					b.Fatal(err)
				}
				if i%every == 0 {
					if err := l.Flush(lsn); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func BenchmarkLogBackwardSweep(b *testing.B) {
	l, err := NewLog(NewMemDir())
	if err != nil {
		b.Fatal(err)
	}
	const n = 10_000
	for i := 0; i < n; i++ {
		if _, err := l.Append(&Record{Type: TypeUpdate, TxID: 1, Object: ObjectID(i)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for lsn := LSN(n); lsn >= 1; lsn-- {
			if _, err := l.Get(lsn); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/n, "ns/record")
}
