package wal

import (
	"bytes"
	"testing"
)

// FuzzDecodeRecord checks that arbitrary bytes never panic the decoder and
// that anything it accepts re-encodes to the same bytes (round-trip
// stability — the property the log's crash rescan depends on).
func FuzzDecodeRecord(f *testing.F) {
	for _, r := range sampleRecords() {
		enc, err := EncodeRecord(r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		re, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("accepted record does not re-encode: %v", err)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("round trip changed bytes:\n in  %x\n out %x", data[:n], re)
		}
	})
}
