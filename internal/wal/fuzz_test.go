package wal

import (
	"bytes"
	"errors"
	"testing"
)

// TestDecodeRecordTornPrefix pins the torn-tail contract exhaustively:
// every proper prefix of a valid frame must be rejected (never silently
// accepted, never panic), which is what makes the recovery rescan stop
// cleanly at a torn tail instead of replaying garbage.
func TestDecodeRecordTornPrefix(t *testing.T) {
	for _, r := range sampleRecords() {
		enc, err := EncodeRecord(r)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(enc); cut++ {
			_, _, err := DecodeRecord(enc[:cut])
			if err == nil {
				t.Fatalf("type %v: prefix of %d/%d bytes decoded successfully", r.Type, cut, len(enc))
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("type %v: prefix error %v does not wrap ErrCorrupt", r.Type, err)
			}
		}
	}
}

// FuzzDecodeRecord checks that arbitrary bytes never panic the decoder and
// that anything it accepts re-encodes to the same bytes (round-trip
// stability — the property the log's crash rescan depends on).
func FuzzDecodeRecord(f *testing.F) {
	for _, r := range sampleRecords() {
		enc, err := EncodeRecord(r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	// Torn-write prefixes: a crash mid-flush persists some prefix of the
	// last append, so the decoder must reject every cut of a valid frame
	// without panicking — that is what lets the recovery rescan stop
	// cleanly at the torn tail.
	for _, r := range sampleRecords() {
		enc, err := EncodeRecord(r)
		if err != nil {
			f.Fatal(err)
		}
		for _, cut := range []int{1, frameHeaderSize - 1, frameHeaderSize, frameHeaderSize + 1, len(enc) / 2, len(enc) - 1} {
			if cut > 0 && cut < len(enc) {
				f.Add(append([]byte(nil), enc[:cut]...))
			}
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		re, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("accepted record does not re-encode: %v", err)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("round trip changed bytes:\n in  %x\n out %x", data[:n], re)
		}
	})
}

// FuzzDecodeManifest checks that arbitrary bytes never panic the
// manifest decoder — in particular that a corrupt entry count cannot
// force an oversized preallocation — and that anything it accepts
// re-encodes to the same bytes (a recovery pick must be deterministic).
func FuzzDecodeManifest(f *testing.F) {
	for _, m := range []*manifest{
		{gen: 1, base: NilLSN, segs: []manifestEntry{{num: 1, firstLSN: 1}}},
		{gen: 7, base: 42, segs: []manifestEntry{{num: 3, firstLSN: 40}, {num: 4, firstLSN: 50}}},
		{gen: 2, base: 9, segs: nil},
	} {
		f.Add(encodeManifest(m))
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	// A count field claiming the maximum: the decoder must bound its
	// allocation by the buffer length, not the declared count.
	huge := encodeManifest(&manifest{gen: 1, base: 0, segs: []manifestEntry{{num: 1, firstLSN: 1}}})
	huge = append([]byte(nil), huge...)
	huge[manifestFixedSize] = 0xFF
	huge[manifestFixedSize+1] = 0xFF
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(data)
		if err != nil {
			return
		}
		if !bytes.Equal(encodeManifest(m), data) {
			t.Fatalf("accepted manifest does not round-trip: %x", data)
		}
	})
}

// FuzzDecodeSegmentHeader checks that arbitrary bytes never panic the
// segment-header decoder and that accepted headers round-trip.
func FuzzDecodeSegmentHeader(f *testing.F) {
	f.Add(encodeSegmentHeader(segmentHeader{num: 1, firstLSN: 1}))
	f.Add(encodeSegmentHeader(segmentHeader{num: 1<<40 + 3, firstLSN: 9999}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, segmentHeaderSize+8))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := decodeSegmentHeader(data)
		if err != nil {
			return
		}
		if !bytes.Equal(encodeSegmentHeader(h), data[:segmentHeaderSize]) {
			t.Fatalf("accepted header does not round-trip: %x", data[:segmentHeaderSize])
		}
	})
}
