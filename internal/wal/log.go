package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"ariesrh/internal/obs"
)

// AccessStats counts log accesses in the units the paper's efficiency
// argument (§4.2) is phrased in.  Benchmarks snapshot and diff these.
type AccessStats struct {
	// Appends is the number of records appended.
	Appends uint64
	// Flushes is the number of Flush calls that reached the device;
	// FlushedBytes the bytes they wrote.
	Flushes      uint64
	FlushedBytes uint64
	// Reads counts record fetches; SequentialReads those whose LSN was
	// adjacent to (or equal to) the previously read LSN, RandomReads the
	// rest.  ARIES and ARIES/RH read the log strictly sequentially in
	// each pass; the eager rewriter does not.
	Reads           uint64
	SequentialReads uint64
	RandomReads     uint64
	// Rewrites counts in-place record mutations (naïve baselines only);
	// RewriteFlushes those that had to patch already-stable bytes.
	Rewrites       uint64
	RewriteFlushes uint64
	// GroupedFlushes counts device write+sync rounds performed by the
	// group-commit leader (each also counts in Flushes); FlushWaiters the
	// FlushAsync requests that queued behind one.  FlushWaiters /
	// GroupedFlushes is the coalescing ratio: how many commits each
	// device sync amortized over.
	GroupedFlushes uint64
	FlushWaiters   uint64
	// FlushRetries counts device write+sync attempts that failed with a
	// retriable error and were retried after backoff; FlushErrors the
	// flushes that surfaced an error to their caller after the retry
	// budget was exhausted (or the error was marked ErrNoRetry).
	FlushRetries uint64
	FlushErrors  uint64
}

// Sub returns the element-wise difference s - o.
func (s AccessStats) Sub(o AccessStats) AccessStats {
	return AccessStats{
		Appends:         s.Appends - o.Appends,
		Flushes:         s.Flushes - o.Flushes,
		FlushedBytes:    s.FlushedBytes - o.FlushedBytes,
		Reads:           s.Reads - o.Reads,
		SequentialReads: s.SequentialReads - o.SequentialReads,
		RandomReads:     s.RandomReads - o.RandomReads,
		Rewrites:        s.Rewrites - o.Rewrites,
		RewriteFlushes:  s.RewriteFlushes - o.RewriteFlushes,
		GroupedFlushes:  s.GroupedFlushes - o.GroupedFlushes,
		FlushWaiters:    s.FlushWaiters - o.FlushWaiters,
		FlushRetries:    s.FlushRetries - o.FlushRetries,
		FlushErrors:     s.FlushErrors - o.FlushErrors,
	}
}

// ErrNoSuchLSN is returned by Get for LSNs that name no record.
var ErrNoSuchLSN = errors.New("wal: no such LSN")

// ErrArchived is returned by Get/Scan/Rewrite for LSNs that were
// discarded by Archive.  Every path wraps it through errArchived, so the
// message shape is uniform: "wal: record archived: lsn N <= base M".
var ErrArchived = errors.New("wal: record archived")

// errArchived wraps ErrArchived with the one message shape all paths
// share.
func errArchived(lsn, base LSN) error {
	return fmt.Errorf("%w: lsn %d <= base %d", ErrArchived, lsn, base)
}

// ErrRewriteSizeChanged is returned by Rewrite when the mutated record does
// not re-encode to exactly its original size (in-place patching would
// corrupt the frame stream).
var ErrRewriteSizeChanged = errors.New("wal: rewrite changed record size")

// ErrNoRetry marks a device error that the flush retry loop must not
// retry.  A Store whose Sync failure is known to be permanent for the
// rest of the run (an injected crash point, a device torn out from under
// the process) wraps its error with ErrNoRetry so the log surfaces it
// immediately instead of burning the backoff budget.  Plain device
// errors, by contrast, are treated as possibly transient and retried.
var ErrNoRetry = errors.New("wal: device error is not retriable")

// logMagic heads the stable device, followed by the base LSN (the number
// of records discarded by Archive); record frames follow.
const logMagic uint32 = 0x57414C31 // "WAL1"

const logHeaderSize = 12

// HeaderSize is the size in bytes of the stable-device header (magic +
// base LSN) that precedes the first record frame.  Tools that decode a
// raw device image directly — the fault injector, the torture harness —
// skip this prefix and then read record frames with DecodeRecord.
const HeaderSize = logHeaderSize

// Log is the write-ahead log.  It is safe for concurrent use.
//
// Volatile state: all appended records live in an in-memory buffer and a
// decoded cache.  Durable state: Flush copies encoded bytes to the Store.
// Crash discards everything past the last flush and re-opens from the
// Store, exactly as a real system loses its in-memory log tail.
//
// Archive discards a stable prefix of the log (records the engine proved
// no future recovery can need — see core.MinRequiredLSN), compacting both
// the volatile image and the device; archived LSNs answer ErrArchived.
type Log struct {
	mu    sync.Mutex
	store Store

	base    LSN    // records 1..base have been archived
	data    []byte // encoded records, volatile image (prefix mirrored in store)
	offsets []int  // offsets[i] = byte offset (in data) of record base+i+1
	cache   []*Record

	flushedBytes int64 // bytes of data durably mirrored (excluding header)
	flushedLSN   LSN

	// Group-flush state (see FlushAsync).  flushQ holds pending waiters;
	// flushLeader is true while a leader goroutine is draining the queue;
	// flushInFlight is true while the leader has released mu for device
	// I/O — every other device writer (Flush, Rewrite, Archive, Crash via
	// loadFromStore) must wait for it via flushIdle.
	flushQ        []flushWaiter
	flushLeader   bool
	flushInFlight bool
	flushIdle     *sync.Cond
	flushScratch  []byte

	// durableCBs holds OnDurable registrations not yet covered by the
	// durable horizon; each fires exactly once (see OnDurable).
	durableCBs []durableCB

	// Flush retry policy: a failed device write+Sync is retried up to
	// retryMax times with exponential backoff starting at retryBackoff,
	// unless the error is marked ErrNoRetry.  See SetFlushRetryPolicy.
	retryMax     int
	retryBackoff time.Duration

	// Tail subscriptions (see Subscribe): tailCond is broadcast whenever
	// the durable horizon advances (or a subscription closes), waking
	// blocked Next calls; each live subscription's retention pin bounds
	// what Archive may discard.
	subs     map[*Subscription]struct{}
	tailCond *sync.Cond

	lastReadLSN LSN
	stats       AccessStats
	met         logMetrics
}

// logMetrics holds the log's pre-resolved obs handles.  A fresh Log binds
// them to a private registry so they are never nil; the owning engine
// rebinds them to its own registry via Instrument.
type logMetrics struct {
	reg            *obs.Registry
	appends        *obs.Counter
	flushes        *obs.Counter
	flushedBytes   *obs.Counter
	groupedFlushes *obs.Counter
	flushWaiters   *obs.Counter
	flushRetries   *obs.Counter
	flushErrors    *obs.Counter
	reads          *obs.Counter
	scans          *obs.Counter
	archives       *obs.Counter
	rewrites       *obs.Counter
	flushNs        *obs.Histogram
}

func bindLogMetrics(r *obs.Registry) logMetrics {
	return logMetrics{
		reg:            r,
		appends:        r.Counter("wal.appends"),
		flushes:        r.Counter("wal.flushes"),
		flushedBytes:   r.Counter("wal.flushed_bytes"),
		groupedFlushes: r.Counter("wal.grouped_flushes"),
		flushWaiters:   r.Counter("wal.flush_waiters"),
		flushRetries:   r.Counter("wal.flush_retries"),
		flushErrors:    r.Counter("wal.flush_errors"),
		reads:          r.Counter("wal.reads"),
		scans:          r.Counter("wal.scans"),
		archives:       r.Counter("wal.archives"),
		rewrites:       r.Counter("wal.rewrites"),
		flushNs:        r.Histogram("wal.flush_ns"),
	}
}

// Instrument rebinds the log's metrics to reg (see internal/obs).  The
// counters restart from reg's current values; call it at construction
// time, before traffic.
func (l *Log) Instrument(reg *obs.Registry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.met = bindLogMetrics(reg)
}

// flushWaiter is one FlushAsync request: release ch (with nil or an
// error) once every record with LSN ≤ upTo is durable.
type flushWaiter struct {
	upTo LSN
	ch   chan error
}

// durableCB is one OnDurable registration: fn is invoked, on its own
// goroutine, once every record with LSN ≤ upTo is durable — or with the
// error that stopped the durable horizon short of upTo.
type durableCB struct {
	upTo LSN
	fn   func(error)
}

// NewLog creates a log on top of store, recovering any records already
// present on the device (e.g. after a crash or a process restart).
func NewLog(store Store) (*Log, error) {
	l := &Log{
		store:        store,
		met:          bindLogMetrics(obs.NewRegistry()),
		retryMax:     defaultFlushRetries,
		retryBackoff: defaultFlushBackoff,
	}
	l.flushIdle = sync.NewCond(&l.mu)
	l.tailCond = sync.NewCond(&l.mu)
	l.subs = make(map[*Subscription]struct{})
	if err := l.loadFromStore(); err != nil {
		return nil, err
	}
	return l, nil
}

// Default flush retry policy: three retries, 200µs initial backoff
// doubling each attempt — at most ~1.4ms of added latency before a
// persistent device error is surfaced to the committer.
const (
	defaultFlushRetries = 3
	defaultFlushBackoff = 200 * time.Microsecond
)

// SetFlushRetryPolicy configures how flushes respond to device errors:
// up to retries re-attempts of the write+Sync, sleeping backoff before
// the first retry and doubling it for each subsequent one.  retries = 0
// disables retrying.  Call it at setup time; it waits out any in-flight
// group flush before taking effect.
func (l *Log) SetFlushRetryPolicy(retries int, backoff time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.waitFlushIdleLocked()
	if retries < 0 {
		retries = 0
	}
	l.retryMax = retries
	l.retryBackoff = backoff
}

// writeSyncRetry performs the device write+Sync for a flush, retrying
// transient failures per the retry policy.  It returns the number of
// retries performed and the final error (nil on success).  Errors
// wrapping ErrNoRetry are surfaced immediately.  The caller must hold
// the device (either l.mu on the synchronous path, or the flushInFlight
// fence on the group path); sleeping inside the loop is bounded by the
// policy.
func (l *Log) writeSyncRetry(buf []byte, off int64) (retries int, err error) {
	backoff := l.retryBackoff
	for attempt := 0; ; attempt++ {
		_, err = l.store.WriteAt(buf, off)
		if err == nil {
			err = l.store.Sync()
		}
		if err == nil {
			return attempt, nil
		}
		if errors.Is(err, ErrNoRetry) || attempt >= l.retryMax {
			return attempt, err
		}
		time.Sleep(backoff)
		backoff *= 2
	}
}

// waitFlushIdleLocked blocks (releasing l.mu) until no group-flush device
// I/O is in flight.  Callers hold l.mu and must re-validate any state they
// read before the wait.
func (l *Log) waitFlushIdleLocked() {
	for l.flushInFlight {
		l.flushIdle.Wait()
	}
}

// writeHeader persists the device header (magic + base LSN).
func (l *Log) writeHeader() error {
	var hdr [logHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], logMagic)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(l.base))
	if _, err := l.store.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("wal: write header: %w", err)
	}
	return l.store.Sync()
}

// loadFromStore scans the stable device and rebuilds the volatile image.
// A torn final frame (possible with a real file after a true crash) is
// truncated away rather than reported as corruption.
func (l *Log) loadFromStore() error {
	size, err := l.store.Size()
	if err != nil {
		return fmt.Errorf("wal: size: %w", err)
	}
	l.base = 0
	if size == 0 {
		// Fresh device: stamp the header.
		l.data = l.data[:0]
		l.offsets = l.offsets[:0]
		l.cache = l.cache[:0]
		l.flushedBytes = 0
		l.flushedLSN = 0
		return l.writeHeader()
	}
	if size < logHeaderSize {
		return fmt.Errorf("%w: device smaller than the log header", ErrCorrupt)
	}
	var hdr [logHeaderSize]byte
	if _, err := l.store.ReadAt(hdr[:], 0); err != nil {
		return fmt.Errorf("wal: read header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != logMagic {
		return fmt.Errorf("%w: bad log magic", ErrCorrupt)
	}
	l.base = LSN(binary.LittleEndian.Uint64(hdr[4:]))
	body := size - logHeaderSize
	data := make([]byte, body)
	if body > 0 {
		if _, err := io.ReadFull(io.NewSectionReader(l.store, logHeaderSize, body), data); err != nil {
			return fmt.Errorf("wal: read: %w", err)
		}
	}
	l.data = l.data[:0]
	l.offsets = l.offsets[:0]
	l.cache = l.cache[:0]
	off := 0
	for off < len(data) {
		r, n, err := DecodeRecord(data[off:])
		if err != nil {
			if errors.Is(err, ErrTruncated) {
				// Torn tail — the frame runs past the end of the
				// device, the expected signature of a crash mid
				// write.  Keep the valid prefix.
				break
			}
			// A complete frame that fails its checksum (or is
			// structurally bad) is interior corruption — bit rot
			// or tampering, not a torn write.  Refusing to open is
			// the only safe answer: silently truncating here would
			// discard committed history after the bad frame.
			return fmt.Errorf("wal: interior corruption at byte %d: %w", off, err)
		}
		l.offsets = append(l.offsets, off)
		l.cache = append(l.cache, r)
		off += n
	}
	l.data = append(l.data, data[:off]...)
	l.flushedBytes = int64(off)
	l.flushedLSN = l.base + LSN(len(l.offsets))
	if int64(off) != body {
		if err := l.store.Truncate(logHeaderSize + int64(off)); err != nil {
			return fmt.Errorf("wal: truncate torn tail: %w", err)
		}
	}
	// Sanity: LSNs must be dense above the base.
	for i, r := range l.cache {
		if r.LSN != l.base+LSN(i+1) {
			return fmt.Errorf("%w: record %d carries LSN %d", ErrCorrupt, int(l.base)+i+1, r.LSN)
		}
	}
	return nil
}

// Append assigns the next LSN to r, encodes it and appends it to the
// volatile log image.  The record is not durable until Flush (or a flush
// forced by commit processing) covers it.
func (l *Log) Append(r *Record) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r.LSN = l.base + LSN(len(l.offsets)+1)
	enc, err := EncodeRecord(r)
	if err != nil {
		return NilLSN, err
	}
	l.offsets = append(l.offsets, len(l.data))
	l.data = append(l.data, enc...)
	l.cache = append(l.cache, r.clone())
	l.stats.Appends++
	l.met.appends.Inc()
	return r.LSN, nil
}

// Head returns the LSN of the most recently appended record (NilLSN if the
// log is empty).
func (l *Log) Head() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base + LSN(len(l.offsets))
}

// Base returns the highest archived LSN (NilLSN if nothing was archived).
func (l *Log) Base() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// FlushedLSN returns the largest LSN known to be durable.
func (l *Log) FlushedLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushedLSN
}

// OnDurable registers fn to be invoked exactly once: with nil after
// every record with LSN ≤ upTo reaches stable storage, or with a non-nil
// error when this log instance stops advancing toward it (a failed flush
// round, or a crash that discards the volatile tail).  fn runs on its
// own goroutine, so it may take arbitrary locks and re-enter the log.
// An error delivery does not by itself say whether the records survived
// — only that no completion will follow; the registrant must re-validate
// against durable state (FlushedLSN, or post-recovery analysis).
//
// This is the commit-pipelining hook for early lock release: the engine
// registers the post-durability work of a commit (clearing violable lock
// markers, accounting the ack) here instead of holding the committer on
// the device sync.
func (l *Log) OnDurable(upTo LSN, fn func(error)) {
	l.mu.Lock()
	if upTo <= l.flushedLSN {
		l.mu.Unlock()
		go fn(nil)
		return
	}
	l.durableCBs = append(l.durableCBs, durableCB{upTo: upTo, fn: fn})
	l.mu.Unlock()
}

// runDurableCBsLocked dispatches OnDurable callbacks after a flush
// attempt: with nil for every registration the durable horizon now
// covers, or — when the attempt failed — with err for all of them (a
// registrant always has a matching flush in flight, so the failed round
// is the one that was meant to cover it).  Callbacks run on fresh
// goroutines; dispatching under l.mu is therefore deadlock-free even
// when the callback re-enters the log or takes the engine latch.
func (l *Log) runDurableCBsLocked(err error) {
	if len(l.durableCBs) == 0 {
		return
	}
	if err != nil {
		for _, cb := range l.durableCBs {
			go cb.fn(err)
		}
		l.durableCBs = nil
		return
	}
	rest := l.durableCBs[:0]
	for _, cb := range l.durableCBs {
		if cb.upTo <= l.flushedLSN {
			go cb.fn(nil)
		} else {
			rest = append(rest, cb)
		}
	}
	l.durableCBs = rest
}

// Flush makes all records with LSN ≤ upTo durable.  Flushing past the head
// flushes the whole log.  Transient device errors are retried per the
// flush retry policy; an error return means the records are NOT durable
// and the durable horizon is unchanged.
func (l *Log) Flush(upTo LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.waitFlushIdleLocked()
	if head := l.base + LSN(len(l.offsets)); upTo > head {
		upTo = head
	}
	if upTo <= l.flushedLSN {
		return nil
	}
	var end int64
	if int(upTo-l.base) == len(l.offsets) {
		end = int64(len(l.data))
	} else {
		end = int64(l.offsets[upTo-l.base]) // offset of the record after upTo
	}
	start := time.Now()
	retries, err := l.writeSyncRetry(l.data[l.flushedBytes:end], logHeaderSize+l.flushedBytes)
	l.stats.FlushRetries += uint64(retries)
	l.met.flushRetries.Add(uint64(retries))
	if err != nil {
		l.stats.FlushErrors++
		l.met.flushErrors.Inc()
		err = fmt.Errorf("wal: flush: %w", err)
		l.runDurableCBsLocked(err)
		return err
	}
	l.stats.Flushes++
	l.stats.FlushedBytes += uint64(end - l.flushedBytes)
	l.met.flushes.Inc()
	l.met.flushedBytes.Add(uint64(end - l.flushedBytes))
	l.met.flushNs.Observe(time.Since(start))
	l.flushedBytes = end
	l.flushedLSN = upTo
	l.runDurableCBsLocked(nil)
	l.tailCond.Broadcast()
	return nil
}

// FlushAsync makes every record with LSN ≤ upTo durable without holding the
// caller on the device: the returned channel (buffered, never blocking the
// sender) receives exactly one value — nil once the records are stable, or
// the device error that prevented it.
//
// Concurrent requests are coalesced (group commit): waiters register their
// target LSN, one leader goroutine performs a single write+Sync covering
// the highest LSN queued, and every waiter whose target that round covers
// is released together.  N committers thus pay ~1 device sync per batch
// rather than N.  AccessStats records the batching: FlushWaiters counts
// requests that queued, GroupedFlushes the leader rounds that served them.
func (l *Log) FlushAsync(upTo LSN) <-chan error {
	ch := make(chan error, 1)
	l.mu.Lock()
	if head := l.base + LSN(len(l.offsets)); upTo > head {
		upTo = head
	}
	if upTo <= l.flushedLSN {
		l.mu.Unlock()
		ch <- nil
		return ch
	}
	l.flushQ = append(l.flushQ, flushWaiter{upTo: upTo, ch: ch})
	l.stats.FlushWaiters++
	l.met.flushWaiters.Inc()
	if !l.flushLeader {
		l.flushLeader = true
		go l.groupFlushLoop()
	}
	l.mu.Unlock()
	return ch
}

// groupFlushLoop is the group-commit leader.  Each round it targets the
// highest LSN queued, performs one device write+Sync for the whole range
// (releasing l.mu for the I/O), then releases every waiter the new durable
// horizon covers.  Requests arriving during the I/O join the next round.
// The leader exits when the queue drains; the next FlushAsync elects a new
// one.
func (l *Log) groupFlushLoop() {
	l.mu.Lock()
	for len(l.flushQ) > 0 {
		target := l.flushQ[0].upTo
		for _, w := range l.flushQ[1:] {
			if w.upTo > target {
				target = w.upTo
			}
		}
		// A Crash interleaved with this loop can shrink the head below a
		// waiter's target (the record was lost with the volatile tail):
		// clamp, and release such waiters below — the engine's crashed
		// flag, rechecked by every committer, governs their fate.
		head := l.base + LSN(len(l.offsets))
		if target > head {
			target = head
		}
		var err error
		if target > l.flushedLSN {
			err = l.flushRangeUnlatched(target)
			head = l.base + LSN(len(l.offsets))
		}
		l.runDurableCBsLocked(err)
		queued := len(l.flushQ)
		rest := l.flushQ[:0]
		for _, w := range l.flushQ {
			switch {
			case w.upTo <= l.flushedLSN || w.upTo > head:
				w.ch <- nil
			case err != nil:
				// This leader cannot make the waiter durable; it
				// must see the failure rather than wait forever.
				w.ch <- err
			default:
				rest = append(rest, w)
			}
		}
		if released := queued - len(rest); released > 0 && l.met.reg.HasEventHook() {
			l.met.reg.Emit(obs.Event{Name: "wal.group_flush", LSN: uint64(l.flushedLSN), Value: int64(released)})
		}
		l.flushQ = rest
	}
	l.flushLeader = false
	l.mu.Unlock()
}

// flushRangeUnlatched makes records through upTo durable while allowing
// appends to proceed: the unflushed range is copied to a scratch buffer
// under l.mu, the mutex is released for the device write+Sync (with
// flushInFlight fencing out every other device writer), then re-acquired to
// publish the new durable horizon.  Called only by the group-flush leader
// with l.mu held and upTo ≤ head.
func (l *Log) flushRangeUnlatched(upTo LSN) error {
	var end int64
	if int(upTo-l.base) == len(l.offsets) {
		end = int64(len(l.data))
	} else {
		end = int64(l.offsets[upTo-l.base])
	}
	start := l.flushedBytes
	l.flushScratch = append(l.flushScratch[:0], l.data[start:end]...)
	buf := l.flushScratch
	l.flushInFlight = true
	l.mu.Unlock()
	began := time.Now()
	retries, err := l.writeSyncRetry(buf, logHeaderSize+start)
	took := time.Since(began)
	l.mu.Lock()
	l.flushInFlight = false
	l.flushIdle.Broadcast()
	l.stats.FlushRetries += uint64(retries)
	l.met.flushRetries.Add(uint64(retries))
	if err != nil {
		l.stats.FlushErrors++
		l.met.flushErrors.Inc()
		return fmt.Errorf("wal: flush: %w", err)
	}
	l.flushedBytes = end
	l.flushedLSN = upTo
	l.tailCond.Broadcast()
	l.stats.Flushes++
	l.stats.GroupedFlushes++
	l.stats.FlushedBytes += uint64(end - start)
	l.met.flushes.Inc()
	l.met.groupedFlushes.Inc()
	l.met.flushedBytes.Add(uint64(end - start))
	l.met.flushNs.Observe(took)
	return nil
}

// Get returns the record with the given LSN.  The returned record is a
// copy; callers may retain or modify it freely.
func (l *Log) Get(lsn LSN) (*Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r, err := l.getLocked(lsn)
	if err != nil {
		return nil, err
	}
	return r.clone(), nil
}

func (l *Log) getLocked(lsn LSN) (*Record, error) {
	if lsn != NilLSN && lsn <= l.base {
		return nil, errArchived(lsn, l.base)
	}
	if lsn == NilLSN || int(lsn-l.base) > len(l.offsets) {
		return nil, fmt.Errorf("%w: %d (head %d)", ErrNoSuchLSN, lsn, l.base+LSN(len(l.offsets)))
	}
	l.stats.Reads++
	l.met.reads.Inc()
	d := int64(lsn) - int64(l.lastReadLSN)
	if d == 1 || d == -1 || d == 0 {
		l.stats.SequentialReads++
	} else {
		l.stats.RandomReads++
	}
	l.lastReadLSN = lsn
	return l.cache[lsn-l.base-1], nil
}

// Scan iterates records with LSN in [from, to] in increasing order, calling
// fn for each.  fn returning false stops the scan early.  A to of NilLSN
// means "through the head of the log".
func (l *Log) Scan(from, to LSN, fn func(*Record) (bool, error)) error {
	l.mu.Lock()
	head := l.base + LSN(len(l.offsets))
	base := l.base
	l.met.scans.Inc()
	l.mu.Unlock()
	if from == NilLSN {
		from = 1
	}
	if from <= base {
		from = base + 1
	}
	if to == NilLSN || to > head {
		to = head
	}
	for lsn := from; lsn <= to; lsn++ {
		l.mu.Lock()
		r, err := l.getLocked(lsn)
		if err != nil {
			l.mu.Unlock()
			return err
		}
		r = r.clone()
		l.mu.Unlock()
		ok, err := fn(r)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
	return nil
}

// Rewrite mutates the record at lsn in place via fn and patches both the
// volatile image and (if the record was already durable) the stable device.
// This is the physical "rewriting of history" of the naïve baselines; the
// ARIES/RH engine never calls it.  The mutated record must encode to the
// same number of bytes.
func (l *Log) Rewrite(lsn LSN, fn func(*Record)) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.waitFlushIdleLocked()
	if lsn != NilLSN && lsn <= l.base {
		return errArchived(lsn, l.base)
	}
	if lsn == NilLSN || int(lsn-l.base) > len(l.offsets) {
		return fmt.Errorf("%w: %d", ErrNoSuchLSN, lsn)
	}
	idx := int(lsn - l.base - 1)
	r := l.cache[idx].clone()
	fn(r)
	if r.LSN != lsn {
		return fmt.Errorf("wal: rewrite may not change the LSN of record %d", lsn)
	}
	enc, err := EncodeRecord(r)
	if err != nil {
		return err
	}
	off := l.offsets[idx]
	var end int
	if idx+1 == len(l.offsets) {
		end = len(l.data)
	} else {
		end = l.offsets[idx+1]
	}
	if len(enc) != end-off {
		return fmt.Errorf("%w: %d -> %d bytes", ErrRewriteSizeChanged, end-off, len(enc))
	}
	copy(l.data[off:end], enc)
	l.cache[idx] = r
	l.stats.Rewrites++
	l.met.rewrites.Inc()
	if int64(end) <= l.flushedBytes {
		// The record was already stable: patch the device in place
		// (a random write, the cost the paper's RH design avoids).
		if _, err := l.store.WriteAt(enc, logHeaderSize+int64(off)); err != nil {
			return fmt.Errorf("wal: rewrite flush: %w", err)
		}
		if err := l.store.Sync(); err != nil {
			return err
		}
		l.stats.RewriteFlushes++
	}
	return nil
}

// Crash simulates a failure: every record past the last flush is lost and
// the log is re-opened from stable storage.  Accumulated access statistics
// survive (they describe the device, not the process).
func (l *Log) Crash() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Let any in-flight group flush finish its device I/O: a write that
	// has already been issued to the device is not undone by losing the
	// process, and re-reading the store mid-write would tear it.  Pending
	// waiters are released normally by the leader (it holds l.mu between
	// rounds, so it drains before we proceed whenever it is mid-queue);
	// their transactions then observe the engine's crashed flag.
	l.waitFlushIdleLocked()
	// The crash takes the shipping side down with it: every tail
	// subscription is closed (a real process failure severs its
	// replication connections); replicas reattach after recovery with
	// their LSN cursor.
	l.closeAllSubsLocked(fmt.Errorf("%w: log crashed", ErrSubscriptionClosed))
	// Pending durability callbacks can never complete: their records may
	// be in the discarded tail, and even if durable, the instance they
	// registered against is being torn down.  Deliver the failure; the
	// registrant re-validates against post-recovery state.
	l.runDurableCBsLocked(errors.New("wal: log crashed before durability"))
	stats := l.stats
	if err := l.loadFromStore(); err != nil {
		return err
	}
	l.stats = stats
	l.lastReadLSN = NilLSN
	return nil
}

// Stats returns a snapshot of the access counters.
func (l *Log) Stats() AccessStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Archive discards every record with LSN ≤ upTo from both the volatile
// image and the stable device, compacting the device in place.  Only the
// durable prefix may be archived (upTo must not exceed the flushed LSN):
// archiving is for reclaiming log space, not for dropping live tail.
// Archiving more than once is fine; archiving NilLSN is a no-op.
func (l *Log) Archive(upTo LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.waitFlushIdleLocked()
	// Retention pin: an attached tail subscription (a replica) may still
	// need records from its pin onward; clamp rather than discard them.
	if pin := l.minPinLocked(); pin != NilLSN && upTo >= pin {
		upTo = pin - 1
	}
	if upTo <= l.base {
		return nil
	}
	if upTo > l.flushedLSN {
		return fmt.Errorf("wal: archive through %d beyond flushed LSN %d", upTo, l.flushedLSN)
	}
	cut := int(upTo - l.base) // records to drop
	var cutBytes int
	if cut == len(l.offsets) {
		cutBytes = len(l.data)
	} else {
		cutBytes = l.offsets[cut]
	}
	l.data = append(l.data[:0], l.data[cutBytes:]...)
	l.offsets = l.offsets[:copy(l.offsets, l.offsets[cut:])]
	for i := range l.offsets {
		l.offsets[i] -= cutBytes
	}
	l.cache = l.cache[:copy(l.cache, l.cache[cut:])]
	l.base = upTo
	l.flushedBytes -= int64(cutBytes)
	l.met.archives.Inc()
	// Compact the device: header with the new base, then the surviving
	// stable bytes.
	if err := l.writeHeader(); err != nil {
		return err
	}
	if _, err := l.store.WriteAt(l.data[:l.flushedBytes], logHeaderSize); err != nil {
		return fmt.Errorf("wal: archive compact: %w", err)
	}
	if err := l.store.Truncate(logHeaderSize + l.flushedBytes); err != nil {
		return fmt.Errorf("wal: archive truncate: %w", err)
	}
	return l.store.Sync()
}

// ResetReadCursor forgets the sequential-access cursor; passes that want
// their first read not to count as random can call it.  Test helper.
func (l *Log) ResetReadCursor() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lastReadLSN = NilLSN
}
