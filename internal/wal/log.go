package wal

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ariesrh/internal/obs"
)

// AccessStats counts log accesses in the units the paper's efficiency
// argument (§4.2) is phrased in.  Benchmarks snapshot and diff these.
type AccessStats struct {
	// Appends is the number of records appended.
	Appends uint64
	// Flushes is the number of Flush calls that reached the device;
	// FlushedBytes the bytes they wrote.
	Flushes      uint64
	FlushedBytes uint64
	// Reads counts record fetches; SequentialReads those whose LSN was
	// adjacent to (or equal to) the previously read LSN, RandomReads the
	// rest.  ARIES and ARIES/RH read the log strictly sequentially in
	// each pass; the eager rewriter does not.
	Reads           uint64
	SequentialReads uint64
	RandomReads     uint64
	// Rewrites counts in-place record mutations (naïve baselines only);
	// RewriteFlushes those that had to patch already-stable bytes.
	Rewrites       uint64
	RewriteFlushes uint64
	// GroupedFlushes counts device write+sync rounds performed by the
	// group-commit leader (each also counts in Flushes); FlushWaiters the
	// FlushAsync requests that queued behind one.  FlushWaiters /
	// GroupedFlushes is the coalescing ratio: how many commits each
	// device sync amortized over.
	GroupedFlushes uint64
	FlushWaiters   uint64
	// FlushRetries counts device write+sync attempts that failed with a
	// retriable error and were retried after backoff; FlushErrors the
	// flushes that surfaced an error to their caller after the retry
	// budget was exhausted (or the error was marked ErrNoRetry).
	FlushRetries uint64
	FlushErrors  uint64
	// Rotations counts segment rotations (a fresh segment image opened
	// because the active one reached the segment cap); Archives the
	// Archive calls that advanced the base.
	Rotations uint64
	Archives  uint64
}

// Sub returns the element-wise difference s - o.
func (s AccessStats) Sub(o AccessStats) AccessStats {
	return AccessStats{
		Appends:         s.Appends - o.Appends,
		Flushes:         s.Flushes - o.Flushes,
		FlushedBytes:    s.FlushedBytes - o.FlushedBytes,
		Reads:           s.Reads - o.Reads,
		SequentialReads: s.SequentialReads - o.SequentialReads,
		RandomReads:     s.RandomReads - o.RandomReads,
		Rewrites:        s.Rewrites - o.Rewrites,
		RewriteFlushes:  s.RewriteFlushes - o.RewriteFlushes,
		GroupedFlushes:  s.GroupedFlushes - o.GroupedFlushes,
		FlushWaiters:    s.FlushWaiters - o.FlushWaiters,
		FlushRetries:    s.FlushRetries - o.FlushRetries,
		FlushErrors:     s.FlushErrors - o.FlushErrors,
		Rotations:       s.Rotations - o.Rotations,
		Archives:        s.Archives - o.Archives,
	}
}

// ErrNoSuchLSN is returned by Get for LSNs that name no record.
var ErrNoSuchLSN = errors.New("wal: no such LSN")

// ErrArchived is returned by Get/Scan/Rewrite for LSNs that were
// discarded by Archive.  Every path wraps it through errArchived, so the
// message shape is uniform: "wal: record archived: lsn N <= base M".
var ErrArchived = errors.New("wal: record archived")

// errArchived wraps ErrArchived with the one message shape all paths
// share.
func errArchived(lsn, base LSN) error {
	return fmt.Errorf("%w: lsn %d <= base %d", ErrArchived, lsn, base)
}

// ErrRewriteSizeChanged is returned by Rewrite when the mutated record does
// not re-encode to exactly its original size (in-place patching would
// corrupt the frame stream).
var ErrRewriteSizeChanged = errors.New("wal: rewrite changed record size")

// ErrNoRetry marks a device error that the flush retry loop must not
// retry.  A Store whose Sync failure is known to be permanent for the
// rest of the run (an injected crash point, a device torn out from under
// the process) wraps its error with ErrNoRetry so the log surfaces it
// immediately instead of burning the backoff budget.  Plain device
// errors, by contrast, are treated as possibly transient and retried.
var ErrNoRetry = errors.New("wal: device error is not retriable")

// ErrLogCrashed is the sentinel wrapped into every OnDurable failure
// delivery caused by (*Log).Crash: the registered record's durability
// was still pending when the log instance went down, so no completion
// will ever follow.  Callers match it with errors.Is to distinguish a
// crash (the durable log alone decides the record's fate at recovery)
// from a live device refusing a flush (the record is NOT durable and
// the caller must act on that).
var ErrLogCrashed = errors.New("wal: log crashed")

// LogOptions tunes a Log at construction time.
type LogOptions struct {
	// SegmentBytes is the rotation threshold: once the active segment
	// holds at least this many record bytes, the next Append seals it
	// and opens a fresh segment.  0 means DefaultSegmentBytes.  A single
	// record larger than the threshold still fits — rotation happens
	// between records, so the cap is soft by up to one record.
	SegmentBytes int64
}

// Log is the write-ahead log.  It is safe for concurrent use.
//
// Volatile state: all appended records live in per-segment in-memory
// buffers and decoded caches.  Durable state: the log's directory holds
// one append-only image per segment plus a generation-numbered manifest
// (see manifest.go); Flush copies encoded bytes to the segment devices
// in LSN order.  Crash discards everything past the last flush and
// re-opens from the directory, exactly as a real system loses its
// in-memory log tail.
//
// Appending past the segment cap rotates: the active segment is sealed
// and a fresh one (with its own device) becomes the append target, the
// manifest being rewritten — as a new generation, never in place — to
// list it.  Archive discards a stable prefix of the log (records the
// engine proved no future recovery can need — see core.MinRequiredLSN)
// by bumping the manifest's base and deleting whole sealed segment
// files; archived LSNs answer ErrArchived.
type Log struct {
	mu  sync.Mutex
	dir Dir

	segCap      int64
	segs        []*segment // live segments, ascending; last is the append target
	base        LSN        // records 1..base have been archived
	manifestGen uint64     // generation of the authoritative manifest image

	flushedLSN LSN // durable horizon

	// Group-flush state (see FlushAsync).  flushQ holds pending waiters;
	// flushLeader is true while a leader goroutine is draining the queue;
	// flushInFlight is true while the leader has released mu for device
	// I/O — every other device writer (Flush, Rewrite, Archive, Crash via
	// loadFromDir) must wait for it via flushIdle.
	flushQ        []flushWaiter
	flushLeader   bool
	flushInFlight bool
	flushIdle     *sync.Cond
	flushScratch  []byte

	// durableCBs holds OnDurable registrations not yet covered by the
	// durable horizon; each fires exactly once (see OnDurable).
	durableCBs []durableCB

	// Flush retry policy: a failed device write+Sync is retried up to
	// retryMax times with exponential backoff starting at retryBackoff,
	// unless the error is marked ErrNoRetry.  See SetFlushRetryPolicy.
	retryMax     int
	retryBackoff time.Duration

	// Tail subscriptions (see Subscribe): tailCond is broadcast whenever
	// the durable horizon advances (or a subscription closes), waking
	// blocked Next calls; each live subscription's retention pin bounds
	// what Archive may discard.
	subs     map[*Subscription]struct{}
	tailCond *sync.Cond

	lastReadLSN LSN
	stats       AccessStats
	met         logMetrics
}

// segment is one live log segment: a device image plus the volatile
// mirror of its record bytes.  Records firstLSN..firstLSN+len(offsets)-1
// live here; data holds their frames (the durable prefix mirrored on dev
// after the segment header).
type segment struct {
	num      uint64
	firstLSN LSN
	dev      Store

	data    []byte // encoded frames, volatile image
	offsets []int  // offsets[i] = byte offset (in data) of record firstLSN+i
	cache   []*Record

	flushedBytes int64 // bytes of data durably mirrored (excluding header)
}

// lastLSN returns the LSN of the segment's last record (firstLSN-1 when
// empty, so callers can treat it uniformly as "records through lastLSN").
func (s *segment) lastLSN() LSN { return s.firstLSN + LSN(len(s.offsets)) - 1 }

// SegmentInfo describes one live segment; see (*Log).Segments.
type SegmentInfo struct {
	// Name is the device name inside the log's Dir.
	Name string
	// Num is the segment number; FirstLSN the LSN of its first record.
	Num      uint64
	FirstLSN LSN
	// Records is the number of records in the segment (volatile image);
	// Bytes their encoded size, DurableBytes the durable prefix of it.
	Records      int
	Bytes        int64
	DurableBytes int64
	// Sealed reports that the segment is no longer the append target.
	Sealed bool
}

// logMetrics holds the log's pre-resolved obs handles.  A fresh Log binds
// them to a private registry so they are never nil; the owning engine
// rebinds them to its own registry via Instrument.
type logMetrics struct {
	reg            *obs.Registry
	appends        *obs.Counter
	flushes        *obs.Counter
	flushedBytes   *obs.Counter
	groupedFlushes *obs.Counter
	flushWaiters   *obs.Counter
	flushRetries   *obs.Counter
	flushErrors    *obs.Counter
	reads          *obs.Counter
	scans          *obs.Counter
	archives       *obs.Counter
	rotations      *obs.Counter
	segments       *obs.Gauge
	rewrites       *obs.Counter
	flushNs        *obs.Histogram
}

func bindLogMetrics(r *obs.Registry) logMetrics {
	return logMetrics{
		reg:            r,
		appends:        r.Counter("wal.appends"),
		flushes:        r.Counter("wal.flushes"),
		flushedBytes:   r.Counter("wal.flushed_bytes"),
		groupedFlushes: r.Counter("wal.grouped_flushes"),
		flushWaiters:   r.Counter("wal.flush_waiters"),
		flushRetries:   r.Counter("wal.flush_retries"),
		flushErrors:    r.Counter("wal.flush_errors"),
		reads:          r.Counter("wal.reads"),
		scans:          r.Counter("wal.scans"),
		archives:       r.Counter("wal.archives"),
		rotations:      r.Counter("wal.rotations"),
		segments:       r.Gauge("wal.segments"),
		rewrites:       r.Counter("wal.rewrites"),
		flushNs:        r.Histogram("wal.flush_ns"),
	}
}

// Instrument rebinds the log's metrics to reg (see internal/obs).  The
// counters restart from reg's current values; call it at construction
// time, before traffic.
func (l *Log) Instrument(reg *obs.Registry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.met = bindLogMetrics(reg)
	l.met.segments.Set(int64(len(l.segs)))
}

// flushWaiter is one FlushAsync request: release ch (with nil or an
// error) once every record with LSN ≤ upTo is durable.
type flushWaiter struct {
	upTo LSN
	ch   chan error
}

// durableCB is one OnDurable registration: fn is invoked, on its own
// goroutine, once every record with LSN ≤ upTo is durable — or with the
// error that stopped the durable horizon short of upTo.
type durableCB struct {
	upTo LSN
	fn   func(error)
}

// NewLog creates a log over dir with default options, recovering any
// segments already present (e.g. after a crash or a process restart).
func NewLog(dir Dir) (*Log, error) { return NewLogWith(dir, LogOptions{}) }

// NewLogWith creates a log over dir with the given options, recovering
// any segments already present.
func NewLogWith(dir Dir, o LogOptions) (*Log, error) {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	l := &Log{
		dir:          dir,
		segCap:       o.SegmentBytes,
		met:          bindLogMetrics(obs.NewRegistry()),
		retryMax:     defaultFlushRetries,
		retryBackoff: defaultFlushBackoff,
	}
	l.flushIdle = sync.NewCond(&l.mu)
	l.tailCond = sync.NewCond(&l.mu)
	l.subs = make(map[*Subscription]struct{})
	if err := l.loadFromDir(); err != nil {
		return nil, err
	}
	return l, nil
}

// Default flush retry policy: three retries, 200µs initial backoff
// doubling each attempt — at most ~1.4ms of added latency before a
// persistent device error is surfaced to the committer.
const (
	defaultFlushRetries = 3
	defaultFlushBackoff = 200 * time.Microsecond
)

// SetFlushRetryPolicy configures how flushes respond to device errors:
// up to retries re-attempts of the write+Sync, sleeping backoff before
// the first retry and doubling it for each subsequent one.  retries = 0
// disables retrying.  Call it at setup time; it waits out any in-flight
// group flush before taking effect.
func (l *Log) SetFlushRetryPolicy(retries int, backoff time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.waitFlushIdleLocked()
	if retries < 0 {
		retries = 0
	}
	l.retryMax = retries
	l.retryBackoff = backoff
}

// writeSyncRetry performs a device write+Sync for a flush, retrying
// transient failures per the retry policy.  It returns the number of
// retries performed and the final error (nil on success).  Errors
// wrapping ErrNoRetry are surfaced immediately.  The caller must hold
// the device (either l.mu on the synchronous path, or the flushInFlight
// fence on the group path); sleeping inside the loop is bounded by the
// policy.
func (l *Log) writeSyncRetry(dev Store, buf []byte, off int64) (retries int, err error) {
	backoff := l.retryBackoff
	for attempt := 0; ; attempt++ {
		_, err = dev.WriteAt(buf, off)
		if err == nil {
			err = dev.Sync()
		}
		if err == nil {
			return attempt, nil
		}
		if errors.Is(err, ErrNoRetry) || attempt >= l.retryMax {
			return attempt, err
		}
		time.Sleep(backoff)
		backoff *= 2
	}
}

// waitFlushIdleLocked blocks (releasing l.mu) until no group-flush device
// I/O is in flight.  Callers hold l.mu and must re-validate any state they
// read before the wait.
func (l *Log) waitFlushIdleLocked() {
	for l.flushInFlight {
		l.flushIdle.Wait()
	}
}

// headLocked returns the LSN of the most recently appended record.
func (l *Log) headLocked() LSN {
	return l.segs[len(l.segs)-1].lastLSN()
}

// segIndexLocked returns the index of the segment holding lsn, or -1 if
// lsn precedes the first live segment.  The returned segment may not
// actually contain lsn (it may lie past the head); callers bound-check.
func (l *Log) segIndexLocked(lsn LSN) int {
	lo, hi := 0, len(l.segs)-1
	if lsn < l.segs[0].firstLSN {
		return -1
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if l.segs[mid].firstLSN <= lsn {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// recordAtLocked returns the cached record at lsn, or nil if no live
// segment holds it.  No access stats are recorded.
func (l *Log) recordAtLocked(lsn LSN) *Record {
	if lsn == NilLSN {
		return nil
	}
	i := l.segIndexLocked(lsn)
	if i < 0 {
		return nil
	}
	seg := l.segs[i]
	idx := int(lsn - seg.firstLSN)
	if idx < 0 || idx >= len(seg.cache) {
		return nil
	}
	return seg.cache[idx]
}

// writeManifestLocked persists a fresh manifest generation listing
// entries with the given base, then makes it authoritative.  The write
// is crash-atomic by construction: the new generation's image is
// written whole to its own device and synced; until that sync returns,
// the previous generation remains the one recovery picks.  Only on
// success is the in-memory generation bumped and the old image removed
// (best-effort — a stray old generation is cleaned up at next open).
//
// A failed attempt removes its device before returning: a fully
// written image whose Sync errored may nonetheless prove durable (a
// real fsync failure does not imply the bytes were lost), and a
// CRC-valid higher generation left on the device would outrank the
// authoritative one at the next recovery while referencing segments
// the failed operation then deleted.  The removal is best-effort only
// as a last resort — if it too fails, the next successful write of
// this generation number truncates the stale image first.
func (l *Log) writeManifestLocked(base LSN, entries []manifestEntry) error {
	gen := l.manifestGen + 1
	dev, err := l.dir.Open(manifestName(gen))
	if err != nil {
		return fmt.Errorf("wal: manifest: %w", err)
	}
	buf := encodeManifest(&manifest{gen: gen, base: base, segs: entries})
	// A previous failed attempt may have left longer working bytes on
	// this generation's device; truncate so the image is exactly buf.
	if err := dev.Truncate(0); err != nil {
		_ = l.dir.Remove(manifestName(gen))
		return fmt.Errorf("wal: manifest truncate: %w", err)
	}
	if _, err := dev.WriteAt(buf, 0); err != nil {
		_ = l.dir.Remove(manifestName(gen))
		return fmt.Errorf("wal: manifest write: %w", err)
	}
	if err := dev.Sync(); err != nil {
		_ = l.dir.Remove(manifestName(gen))
		return fmt.Errorf("wal: manifest sync: %w", err)
	}
	old := l.manifestGen
	l.manifestGen = gen
	if old > 0 {
		_ = l.dir.Remove(manifestName(old))
	}
	return nil
}

// manifestEntriesLocked builds the manifest entry list for segs.
func manifestEntries(segs []*segment) []manifestEntry {
	entries := make([]manifestEntry, len(segs))
	for i, s := range segs {
		entries[i] = manifestEntry{num: s.num, firstLSN: s.firstLSN}
	}
	return entries
}

// rotateLocked seals the active segment and opens a fresh one as the
// append target: new device, durable segment header, then a manifest
// generation listing it.  On any failure the volatile log is untouched
// (the append that triggered the rotation fails) and the partially
// created device is removed best-effort — recovery ignores and deletes
// segments the manifest does not list.
func (l *Log) rotateLocked() error {
	head := l.headLocked()
	num := l.segs[len(l.segs)-1].num + 1
	name := segmentName(num)
	dev, err := l.dir.Open(name)
	if err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	hdr := encodeSegmentHeader(segmentHeader{num: num, firstLSN: head + 1})
	if _, err := dev.WriteAt(hdr, 0); err != nil {
		_ = l.dir.Remove(name)
		return fmt.Errorf("wal: rotate: %w", err)
	}
	if err := dev.Sync(); err != nil {
		_ = l.dir.Remove(name)
		return fmt.Errorf("wal: rotate: %w", err)
	}
	entries := append(manifestEntries(l.segs), manifestEntry{num: num, firstLSN: head + 1})
	if err := l.writeManifestLocked(l.base, entries); err != nil {
		_ = l.dir.Remove(name)
		return err
	}
	l.segs = append(l.segs, &segment{num: num, firstLSN: head + 1, dev: dev})
	l.stats.Rotations++
	l.met.rotations.Inc()
	l.met.segments.Set(int64(len(l.segs)))
	if l.met.reg.HasEventHook() {
		l.met.reg.Emit(obs.Event{Name: "wal.rotate", LSN: uint64(head + 1), Value: int64(num)})
	}
	return nil
}

// Append assigns the next LSN to r, encodes it and appends it to the
// active segment's volatile image, rotating to a fresh segment first if
// the active one has reached the segment cap.  The record is not durable
// until Flush (or a flush forced by commit processing) covers it.  A
// rotation failure (the new segment's header or the manifest could not
// be made durable) surfaces here with the volatile log unchanged.
func (l *Log) Append(r *Record) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	active := l.segs[len(l.segs)-1]
	if int64(len(active.data)) >= l.segCap && len(active.offsets) > 0 {
		if err := l.rotateLocked(); err != nil {
			return NilLSN, err
		}
		active = l.segs[len(l.segs)-1]
	}
	r.LSN = l.headLocked() + 1
	enc, err := EncodeRecord(r)
	if err != nil {
		return NilLSN, err
	}
	active.offsets = append(active.offsets, len(active.data))
	active.data = append(active.data, enc...)
	active.cache = append(active.cache, r.clone())
	l.stats.Appends++
	l.met.appends.Inc()
	return r.LSN, nil
}

// Head returns the LSN of the most recently appended record (NilLSN if the
// log is empty).
func (l *Log) Head() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.headLocked()
}

// Base returns the highest archived LSN (NilLSN if nothing was archived).
func (l *Log) Base() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// FlushedLSN returns the largest LSN known to be durable.
func (l *Log) FlushedLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushedLSN
}

// Segments returns a snapshot of the live segment layout, oldest first.
func (l *Log) Segments() []SegmentInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SegmentInfo, len(l.segs))
	for i, s := range l.segs {
		out[i] = SegmentInfo{
			Name:         segmentName(s.num),
			Num:          s.num,
			FirstLSN:     s.firstLSN,
			Records:      len(s.offsets),
			Bytes:        int64(len(s.data)),
			DurableBytes: s.flushedBytes,
			Sealed:       i < len(l.segs)-1,
		}
	}
	return out
}

// OnDurable registers fn to be invoked exactly once: with nil after
// every record with LSN ≤ upTo reaches stable storage, or with a non-nil
// error when this log instance stops advancing toward it (a failed flush
// round, or a crash — matching ErrLogCrashed — that discards the
// volatile tail).  fn runs on its own goroutine, so it may take
// arbitrary locks and re-enter the log.  An error delivery does not by
// itself say whether the records survived — only that no completion will
// follow; the registrant must re-validate against durable state
// (FlushedLSN, or post-recovery analysis).
//
// This is the commit-pipelining hook for early lock release: the engine
// registers the post-durability work of a commit (clearing violable lock
// markers, accounting the ack) here instead of holding the committer on
// the device sync.
func (l *Log) OnDurable(upTo LSN, fn func(error)) {
	l.mu.Lock()
	if upTo <= l.flushedLSN {
		l.mu.Unlock()
		go fn(nil)
		return
	}
	l.durableCBs = append(l.durableCBs, durableCB{upTo: upTo, fn: fn})
	l.mu.Unlock()
}

// runDurableCBsLocked dispatches OnDurable callbacks after a flush
// attempt: with nil for every registration the durable horizon now
// covers, and — when the attempt failed — with err for all remaining (a
// registrant always has a matching flush in flight, so the failed round
// is the one that was meant to cover it).  Callbacks run on fresh
// goroutines; dispatching under l.mu is therefore deadlock-free even
// when the callback re-enters the log or takes the engine latch.
func (l *Log) runDurableCBsLocked(err error) {
	if len(l.durableCBs) == 0 {
		return
	}
	rest := l.durableCBs[:0]
	for _, cb := range l.durableCBs {
		switch {
		case cb.upTo <= l.flushedLSN:
			go cb.fn(nil)
		case err != nil:
			go cb.fn(err)
		default:
			rest = append(rest, cb)
		}
	}
	l.durableCBs = rest
	if err != nil {
		l.durableCBs = nil
	}
}

// flushChunk is one contiguous device write of a flush: bytes
// [start,end) of seg.data, which once synced advance the durable
// horizon to endLSN.
type flushChunk struct {
	seg    *segment
	start  int64
	end    int64
	endLSN LSN
}

// flushChunksLocked plans the device writes that make records through
// upTo durable: one chunk per segment with unflushed bytes in the range,
// in LSN order.  The caller guarantees flushedLSN < upTo ≤ head.
func (l *Log) flushChunksLocked(upTo LSN) []flushChunk {
	var chunks []flushChunk
	i := l.segIndexLocked(l.flushedLSN + 1)
	if i < 0 {
		i = 0
	}
	for ; i < len(l.segs); i++ {
		seg := l.segs[i]
		if seg.firstLSN > upTo {
			break
		}
		var end int64
		var endLSN LSN
		if upTo >= seg.lastLSN() {
			end = int64(len(seg.data))
			endLSN = seg.lastLSN()
		} else {
			end = int64(seg.offsets[upTo-seg.firstLSN+1])
			endLSN = upTo
		}
		if end > seg.flushedBytes {
			chunks = append(chunks, flushChunk{seg: seg, start: seg.flushedBytes, end: end, endLSN: endLSN})
		}
	}
	return chunks
}

// Flush makes all records with LSN ≤ upTo durable.  Flushing past the head
// flushes the whole log.  Transient device errors are retried per the
// flush retry policy; an error return means records past the (possibly
// advanced) durable horizon are NOT durable.  Chunks are written and
// synced in strict LSN order — segment by segment — so the durable log
// is always a prefix: a failure mid-way leaves earlier segments durable
// and later ones untouched, never a gap.
func (l *Log) Flush(upTo LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.waitFlushIdleLocked()
	if head := l.headLocked(); upTo > head {
		upTo = head
	}
	if upTo <= l.flushedLSN {
		return nil
	}
	chunks := l.flushChunksLocked(upTo)
	start := time.Now()
	var flushed uint64
	var err error
	for _, c := range chunks {
		retries, werr := l.writeSyncRetry(c.seg.dev, c.seg.data[c.start:c.end], segmentHeaderSize+c.start)
		l.stats.FlushRetries += uint64(retries)
		l.met.flushRetries.Add(uint64(retries))
		if werr != nil {
			err = werr
			break
		}
		c.seg.flushedBytes = c.end
		l.flushedLSN = c.endLSN
		flushed += uint64(c.end - c.start)
	}
	if flushed > 0 {
		l.stats.Flushes++
		l.stats.FlushedBytes += flushed
		l.met.flushes.Inc()
		l.met.flushedBytes.Add(flushed)
		l.met.flushNs.Observe(time.Since(start))
		l.tailCond.Broadcast()
	}
	if err != nil {
		l.stats.FlushErrors++
		l.met.flushErrors.Inc()
		err = fmt.Errorf("wal: flush: %w", err)
		l.runDurableCBsLocked(err)
		return err
	}
	l.runDurableCBsLocked(nil)
	return nil
}

// FlushAsync makes every record with LSN ≤ upTo durable without holding the
// caller on the device: the returned channel (buffered, never blocking the
// sender) receives exactly one value — nil once the records are stable, or
// the device error that prevented it.
//
// Concurrent requests are coalesced (group commit): waiters register their
// target LSN, one leader goroutine performs a single write+Sync covering
// the highest LSN queued, and every waiter whose target that round covers
// is released together.  N committers thus pay ~1 device sync per batch
// rather than N.  AccessStats records the batching: FlushWaiters counts
// requests that queued, GroupedFlushes the leader rounds that served them.
func (l *Log) FlushAsync(upTo LSN) <-chan error {
	ch := make(chan error, 1)
	l.mu.Lock()
	if head := l.headLocked(); upTo > head {
		upTo = head
	}
	if upTo <= l.flushedLSN {
		l.mu.Unlock()
		ch <- nil
		return ch
	}
	l.flushQ = append(l.flushQ, flushWaiter{upTo: upTo, ch: ch})
	l.stats.FlushWaiters++
	l.met.flushWaiters.Inc()
	if !l.flushLeader {
		l.flushLeader = true
		go l.groupFlushLoop()
	}
	l.mu.Unlock()
	return ch
}

// groupFlushLoop is the group-commit leader.  Each round it targets the
// highest LSN queued, performs one device write+Sync pass for the whole
// range (releasing l.mu for the I/O), then releases every waiter the new
// durable horizon covers.  Requests arriving during the I/O join the next
// round.  The leader exits when the queue drains; the next FlushAsync
// elects a new one.
func (l *Log) groupFlushLoop() {
	l.mu.Lock()
	for len(l.flushQ) > 0 {
		target := l.flushQ[0].upTo
		for _, w := range l.flushQ[1:] {
			if w.upTo > target {
				target = w.upTo
			}
		}
		// A Crash interleaved with this loop can shrink the head below a
		// waiter's target (the record was lost with the volatile tail):
		// clamp, and release such waiters below — the engine's crashed
		// flag, rechecked by every committer, governs their fate.
		head := l.headLocked()
		if target > head {
			target = head
		}
		var err error
		if target > l.flushedLSN {
			err = l.flushRangeUnlatched(target)
			head = l.headLocked()
		}
		l.runDurableCBsLocked(err)
		queued := len(l.flushQ)
		rest := l.flushQ[:0]
		for _, w := range l.flushQ {
			switch {
			case w.upTo <= l.flushedLSN || w.upTo > head:
				w.ch <- nil
			case err != nil:
				// This leader cannot make the waiter durable; it
				// must see the failure rather than wait forever.
				w.ch <- err
			default:
				rest = append(rest, w)
			}
		}
		if released := queued - len(rest); released > 0 && l.met.reg.HasEventHook() {
			l.met.reg.Emit(obs.Event{Name: "wal.group_flush", LSN: uint64(l.flushedLSN), Value: int64(released)})
		}
		l.flushQ = rest
	}
	l.flushLeader = false
	l.mu.Unlock()
}

// flushRangeUnlatched makes records through upTo durable while allowing
// appends to proceed: the unflushed chunks are copied to a scratch buffer
// under l.mu, the mutex is released for the device writes+Syncs (with
// flushInFlight fencing out every other device writer), then re-acquired
// to publish the new durable horizon.  Rotation during the unlatched I/O
// is safe — it only creates new devices, never touching the chunks being
// written.  Called only by the group-flush leader with l.mu held and
// upTo ≤ head.
func (l *Log) flushRangeUnlatched(upTo LSN) error {
	chunks := l.flushChunksLocked(upTo)
	if len(chunks) == 0 {
		return nil
	}
	// Copy every chunk's bytes into one scratch buffer (appends may grow
	// and reallocate segment data while the mutex is released).
	scratch := l.flushScratch[:0]
	offs := make([]int, len(chunks)+1)
	for i, c := range chunks {
		scratch = append(scratch, c.seg.data[c.start:c.end]...)
		offs[i+1] = len(scratch)
	}
	l.flushScratch = scratch
	l.flushInFlight = true
	l.mu.Unlock()
	began := time.Now()
	var err error
	var retries int
	done := 0
	for i, c := range chunks {
		var r int
		r, err = l.writeSyncRetry(c.seg.dev, scratch[offs[i]:offs[i+1]], segmentHeaderSize+c.start)
		retries += r
		if err != nil {
			break
		}
		done = i + 1
	}
	took := time.Since(began)
	l.mu.Lock()
	l.flushInFlight = false
	l.flushIdle.Broadcast()
	l.stats.FlushRetries += uint64(retries)
	l.met.flushRetries.Add(uint64(retries))
	var flushed uint64
	for _, c := range chunks[:done] {
		c.seg.flushedBytes = c.end
		l.flushedLSN = c.endLSN
		flushed += uint64(c.end - c.start)
	}
	if flushed > 0 {
		l.flushedLSN = chunks[done-1].endLSN
		l.tailCond.Broadcast()
		l.stats.Flushes++
		l.stats.GroupedFlushes++
		l.stats.FlushedBytes += flushed
		l.met.flushes.Inc()
		l.met.groupedFlushes.Inc()
		l.met.flushedBytes.Add(flushed)
		l.met.flushNs.Observe(took)
	}
	if err != nil {
		l.stats.FlushErrors++
		l.met.flushErrors.Inc()
		return fmt.Errorf("wal: flush: %w", err)
	}
	return nil
}

// Get returns the record with the given LSN.  The returned record is a
// copy; callers may retain or modify it freely.
func (l *Log) Get(lsn LSN) (*Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r, err := l.getLocked(lsn)
	if err != nil {
		return nil, err
	}
	return r.clone(), nil
}

func (l *Log) getLocked(lsn LSN) (*Record, error) {
	if lsn != NilLSN && lsn <= l.base {
		return nil, errArchived(lsn, l.base)
	}
	r := l.recordAtLocked(lsn)
	if r == nil {
		return nil, fmt.Errorf("%w: %d (head %d)", ErrNoSuchLSN, lsn, l.headLocked())
	}
	l.stats.Reads++
	l.met.reads.Inc()
	d := int64(lsn) - int64(l.lastReadLSN)
	if d == 1 || d == -1 || d == 0 {
		l.stats.SequentialReads++
	} else {
		l.stats.RandomReads++
	}
	l.lastReadLSN = lsn
	return r, nil
}

// Scan iterates records with LSN in [from, to] in increasing order, calling
// fn for each.  fn returning false stops the scan early.  A to of NilLSN
// means "through the head of the log".
func (l *Log) Scan(from, to LSN, fn func(*Record) (bool, error)) error {
	l.mu.Lock()
	head := l.headLocked()
	base := l.base
	l.met.scans.Inc()
	l.mu.Unlock()
	if from == NilLSN {
		from = 1
	}
	if from <= base {
		from = base + 1
	}
	if to == NilLSN || to > head {
		to = head
	}
	for lsn := from; lsn <= to; lsn++ {
		l.mu.Lock()
		r, err := l.getLocked(lsn)
		if err != nil {
			l.mu.Unlock()
			return err
		}
		r = r.clone()
		l.mu.Unlock()
		ok, err := fn(r)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
	return nil
}

// RecordShards returns one slice of decoded records per live segment,
// oldest segment first, covering every record with LSN in [from, head]
// (NilLSN means "from the log's base").  The slices alias the log's
// in-memory record cache under one latch acquisition: callers MUST
// treat both the slices and the records as read-only.
//
// This is the parallel-recovery scan surface.  Sealed segments are
// immutable, so their shards may be walked by concurrent workers with
// no further synchronization; the active segment's shard is a
// snapshot — records appended after the call (e.g. recovery's own
// CLRs) are not visible through it, which is exactly what a recovery
// scan wants.  The crash contract is the caller's: shards reflect the
// volatile image, so take them only after Crash/open reloaded the log
// from the durable segment files (as Recover does).  Records below an
// Archive that runs after the call are served from the snapshot, not
// an error — do not hold shards across an Archive.
func (l *Log) RecordShards(from LSN) [][]*Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from == NilLSN {
		from = 1
	}
	if from <= l.base {
		from = l.base + 1
	}
	shards := make([][]*Record, 0, len(l.segs))
	for _, seg := range l.segs {
		if len(seg.cache) == 0 {
			continue
		}
		lo := 0
		if from > seg.firstLSN {
			lo = int(from - seg.firstLSN)
		}
		if lo >= len(seg.cache) {
			continue
		}
		hi := len(seg.cache)
		// Full-slice expression: appends to the active segment's cache
		// can never write into a shard's spare capacity.
		shards = append(shards, seg.cache[lo:hi:hi])
	}
	return shards
}

// Rewrite mutates the record at lsn in place via fn and patches both the
// volatile image and (if the record was already durable) the stable
// segment device.  This is the physical "rewriting of history" of the
// naïve baselines; the ARIES/RH engine never calls it.  The mutated
// record must encode to the same number of bytes.
func (l *Log) Rewrite(lsn LSN, fn func(*Record)) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.waitFlushIdleLocked()
	if lsn != NilLSN && lsn <= l.base {
		return errArchived(lsn, l.base)
	}
	i := -1
	if lsn != NilLSN {
		i = l.segIndexLocked(lsn)
	}
	if i < 0 || int(lsn-l.segs[i].firstLSN) >= len(l.segs[i].offsets) {
		return fmt.Errorf("%w: %d", ErrNoSuchLSN, lsn)
	}
	seg := l.segs[i]
	idx := int(lsn - seg.firstLSN)
	r := seg.cache[idx].clone()
	fn(r)
	if r.LSN != lsn {
		return fmt.Errorf("wal: rewrite may not change the LSN of record %d", lsn)
	}
	enc, err := EncodeRecord(r)
	if err != nil {
		return err
	}
	off := seg.offsets[idx]
	var end int
	if idx+1 == len(seg.offsets) {
		end = len(seg.data)
	} else {
		end = seg.offsets[idx+1]
	}
	if len(enc) != end-off {
		return fmt.Errorf("%w: %d -> %d bytes", ErrRewriteSizeChanged, end-off, len(enc))
	}
	copy(seg.data[off:end], enc)
	seg.cache[idx] = r
	l.stats.Rewrites++
	l.met.rewrites.Inc()
	if int64(end) <= seg.flushedBytes {
		// The record was already stable: patch the device in place
		// (a random write, the cost the paper's RH design avoids).
		if _, err := seg.dev.WriteAt(enc, segmentHeaderSize+int64(off)); err != nil {
			return fmt.Errorf("wal: rewrite flush: %w", err)
		}
		if err := seg.dev.Sync(); err != nil {
			return err
		}
		l.stats.RewriteFlushes++
	}
	return nil
}

// Crash simulates a failure: every record past the last flush is lost and
// the log is re-opened from stable storage.  Accumulated access statistics
// survive (they describe the device, not the process).
func (l *Log) Crash() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Let any in-flight group flush finish its device I/O: a write that
	// has already been issued to the device is not undone by losing the
	// process, and re-reading the store mid-write would tear it.  Pending
	// waiters are released normally by the leader (it holds l.mu between
	// rounds, so it drains before we proceed whenever it is mid-queue);
	// their transactions then observe the engine's crashed flag.
	l.waitFlushIdleLocked()
	// The crash takes the shipping side down with it: every tail
	// subscription is closed (a real process failure severs its
	// replication connections); replicas reattach after recovery with
	// their LSN cursor.
	l.closeAllSubsLocked(fmt.Errorf("%w: log crashed", ErrSubscriptionClosed))
	// Pending durability callbacks can never complete: their records may
	// be in the discarded tail, and even if durable, the instance they
	// registered against is being torn down.  Deliver the failure —
	// wrapping ErrLogCrashed so registrants can errors.Is-match it; the
	// registrant re-validates against post-recovery state.
	l.runDurableCBsLocked(fmt.Errorf("%w before durability", ErrLogCrashed))
	stats := l.stats
	if err := l.loadFromDir(); err != nil {
		return err
	}
	l.stats = stats
	l.lastReadLSN = NilLSN
	return nil
}

// Stats returns a snapshot of the access counters.
func (l *Log) Stats() AccessStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Archive discards every record with LSN ≤ upTo: archived LSNs answer
// ErrArchived and whole sealed segments below the new base are deleted
// from the directory.  Only the durable prefix may be archived (upTo
// must not exceed the flushed LSN): archiving is for reclaiming log
// space, not for dropping live tail.  Archiving more than once is fine;
// archiving NilLSN is a no-op.
//
// Crash contract: the archive commits by writing a fresh manifest
// generation (new base, surviving segment list) to its own device and
// syncing it — live segment bytes are never rewritten, so there is no
// torn-compaction window.  A crash or error before that sync leaves the
// previous manifest authoritative and the log (volatile and durable)
// exactly as it was; a crash after it leaves the archive fully
// committed, with any not-yet-deleted segment files swept as garbage on
// the next open.  Device cost is O(segments dropped + manifest size),
// independent of total log length.
func (l *Log) Archive(upTo LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.waitFlushIdleLocked()
	// Retention pin: an attached tail subscription (a replica) may still
	// need records from its pin onward; clamp rather than discard them.
	if pin := l.minPinLocked(); pin != NilLSN && upTo >= pin {
		upTo = pin - 1
	}
	if upTo <= l.base {
		return nil
	}
	if upTo > l.flushedLSN {
		return fmt.Errorf("wal: archive through %d beyond flushed LSN %d", upTo, l.flushedLSN)
	}
	// Whole sealed segments at or below the new base are dropped; the
	// active segment always survives.
	drop := 0
	for drop < len(l.segs)-1 && l.segs[drop+1].firstLSN <= upTo+1 {
		drop++
	}
	kept := l.segs[drop:]
	// Commit point: the new manifest generation.  Nothing volatile is
	// touched until it is durable, so a failure here leaves the log
	// fully consistent (and the archives counter untouched).
	if err := l.writeManifestLocked(upTo, manifestEntries(kept)); err != nil {
		return err
	}
	dropped := l.segs[:drop]
	l.segs = append(l.segs[:0:0], kept...)
	l.base = upTo
	l.stats.Archives++
	l.met.archives.Inc()
	l.met.segments.Set(int64(len(l.segs)))
	for _, s := range dropped {
		// Best-effort: a segment file that cannot be deleted now is
		// unreferenced by the manifest and is swept at the next open.
		_ = l.dir.Remove(segmentName(s.num))
	}
	return nil
}

// ResetReadCursor forgets the sequential-access cursor; passes that want
// their first read not to count as random can call it.  Test helper.
func (l *Log) ResetReadCursor() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lastReadLSN = NilLSN
}
