package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"
)

// On-disk layout of a segmented log directory:
//
//	seg-<num>       segment image: segment header | record frames
//	manifest-<gen>  manifest image (one per generation, immutable)
//
// <num> and <gen> are 16-digit zero-padded lowercase hex.  A segment
// image is strictly append-only after its header is written; a manifest
// image is written whole exactly once and then synced.  The manifest
// with the highest generation that decodes (magic, version, CRC) is the
// authoritative one; a torn or partial higher generation — the signature
// of a crash mid-rotation or mid-archive — is simply ignored, which is
// what makes manifest updates crash-atomic without any in-place writes.
//
// Segment header (segmentHeaderSize bytes):
//
//	u32 magic "WSG1" | u32 reserved | u64 num | u64 firstLSN
//
// Manifest body:
//
//	u32 magic "WMF1" | u32 version | u64 gen | u64 base |
//	u32 count | count × { u64 num | u64 firstLSN } | u32 crc32
//
// The CRC covers every byte before it.  All integers little-endian.

// ErrNoManifest is returned when a log directory contains segment data
// but no decodable manifest — nothing says which segments are live, so
// opening must refuse rather than guess.
var ErrNoManifest = errors.New("wal: no valid manifest")

const (
	segmentMagic  uint32 = 0x31475357 // "WSG1"
	manifestMagic uint32 = 0x31464D57 // "WMF1"

	manifestVersion = 1

	segmentHeaderSize  = 24
	manifestFixedSize  = 24 // magic+version+gen+base
	manifestEntrySize  = 16
	manifestCRCSize    = 4
	manifestCountSize  = 4
	maxManifestEntries = 1 << 20 // hard sanity bound on decode
)

// SegmentHeaderSize is the size in bytes of the per-segment header that
// precedes the first record frame of a segment image.  Tools that decode
// a raw segment image directly skip this prefix and then read record
// frames with DecodeRecord.
const SegmentHeaderSize = segmentHeaderSize

// DefaultSegmentBytes is the rotation threshold used when LogOptions
// does not override it: once a segment's record bytes reach it, the next
// append opens a fresh segment.
const DefaultSegmentBytes = 1 << 20

// segmentName / manifestName build the canonical device names.
func segmentName(num uint64) string  { return fmt.Sprintf("seg-%016x", num) }
func manifestName(gen uint64) string { return fmt.Sprintf("manifest-%016x", gen) }

// parseNumbered extracts the hex suffix of a "<prefix><16 hex>" name;
// ok is false for any other shape.
func parseNumbered(name, prefix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) {
		return 0, false
	}
	hex := name[len(prefix):]
	if len(hex) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// segmentHeader is the decoded fixed prefix of a segment image.
type segmentHeader struct {
	num      uint64
	firstLSN LSN
}

func encodeSegmentHeader(h segmentHeader) []byte {
	buf := make([]byte, segmentHeaderSize)
	binary.LittleEndian.PutUint32(buf[0:], segmentMagic)
	binary.LittleEndian.PutUint64(buf[8:], h.num)
	binary.LittleEndian.PutUint64(buf[16:], uint64(h.firstLSN))
	return buf
}

// decodeSegmentHeader parses the fixed header at the front of a segment
// image.  A buffer shorter than the header is reported as ErrTruncated
// (a segment created but torn before its header sync), any other
// malformation as ErrCorrupt.
func decodeSegmentHeader(p []byte) (segmentHeader, error) {
	if len(p) < segmentHeaderSize {
		return segmentHeader{}, fmt.Errorf("%w (%w): segment header", ErrTruncated, ErrCorrupt)
	}
	if binary.LittleEndian.Uint32(p[0:]) != segmentMagic {
		return segmentHeader{}, fmt.Errorf("%w: bad segment magic", ErrCorrupt)
	}
	return segmentHeader{
		num:      binary.LittleEndian.Uint64(p[8:]),
		firstLSN: LSN(binary.LittleEndian.Uint64(p[16:])),
	}, nil
}

// manifestEntry names one live segment and the LSN of its first record.
type manifestEntry struct {
	num      uint64
	firstLSN LSN
}

// manifest is the decoded low-water-mark index of the log: the archived
// base and the ordered list of live segments.
type manifest struct {
	gen  uint64
	base LSN
	segs []manifestEntry
}

func encodeManifest(m *manifest) []byte {
	buf := make([]byte, 0, manifestFixedSize+manifestCountSize+len(m.segs)*manifestEntrySize+manifestCRCSize)
	buf = binary.LittleEndian.AppendUint32(buf, manifestMagic)
	buf = binary.LittleEndian.AppendUint32(buf, manifestVersion)
	buf = binary.LittleEndian.AppendUint64(buf, m.gen)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.base))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.segs)))
	for _, e := range m.segs {
		buf = binary.LittleEndian.AppendUint64(buf, e.num)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.firstLSN))
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// decodeManifest parses a whole manifest image.  The declared entry
// count is validated against the buffer length BEFORE any allocation is
// sized from it, so a corrupt count cannot force an oversized
// preallocation (the same discipline as decodeCheckpoint).
func decodeManifest(p []byte) (*manifest, error) {
	if len(p) < manifestFixedSize+manifestCountSize+manifestCRCSize {
		return nil, fmt.Errorf("%w (%w): manifest", ErrTruncated, ErrCorrupt)
	}
	if binary.LittleEndian.Uint32(p[0:]) != manifestMagic {
		return nil, fmt.Errorf("%w: bad manifest magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(p[4:]); v != manifestVersion {
		return nil, fmt.Errorf("%w: manifest version %d", ErrCorrupt, v)
	}
	count := int64(binary.LittleEndian.Uint32(p[manifestFixedSize:]))
	if count > maxManifestEntries {
		return nil, fmt.Errorf("%w: manifest declares %d segments", ErrCorrupt, count)
	}
	want := int64(manifestFixedSize+manifestCountSize+manifestCRCSize) + count*manifestEntrySize
	if int64(len(p)) < want {
		return nil, fmt.Errorf("%w (%w): manifest wants %d bytes, have %d", ErrTruncated, ErrCorrupt, want, len(p))
	}
	if int64(len(p)) > want {
		return nil, fmt.Errorf("%w: %d trailing manifest bytes", ErrCorrupt, int64(len(p))-want)
	}
	body := p[:want-manifestCRCSize]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(p[want-manifestCRCSize:]) {
		return nil, fmt.Errorf("%w: manifest checksum mismatch", ErrCorrupt)
	}
	m := &manifest{
		gen:  binary.LittleEndian.Uint64(p[8:]),
		base: LSN(binary.LittleEndian.Uint64(p[16:])),
		segs: make([]manifestEntry, 0, count),
	}
	off := manifestFixedSize + manifestCountSize
	for i := int64(0); i < count; i++ {
		m.segs = append(m.segs, manifestEntry{
			num:      binary.LittleEndian.Uint64(p[off:]),
			firstLSN: LSN(binary.LittleEndian.Uint64(p[off+8:])),
		})
		off += manifestEntrySize
	}
	// Structural sanity: segment numbers and first LSNs must be strictly
	// increasing, and the first segment must not start above base+1.
	for i := 1; i < len(m.segs); i++ {
		if m.segs[i].num <= m.segs[i-1].num || m.segs[i].firstLSN <= m.segs[i-1].firstLSN {
			return nil, fmt.Errorf("%w: manifest segments not strictly increasing", ErrCorrupt)
		}
	}
	if len(m.segs) > 0 && m.segs[0].firstLSN > m.base+1 {
		return nil, fmt.Errorf("%w: manifest base %d below first segment LSN %d", ErrCorrupt, m.base, m.segs[0].firstLSN)
	}
	return m, nil
}

// readAll reads the entire contents of a device.
func readAll(dev Store) ([]byte, error) {
	size, err := dev.Size()
	if err != nil {
		return nil, err
	}
	if size == 0 {
		return nil, nil
	}
	buf := make([]byte, size)
	if _, err := dev.ReadAt(buf, 0); err != nil {
		return nil, err
	}
	return buf, nil
}

// pickManifest scans names for manifest images and returns the decoded
// manifest with the highest generation that passes validation, or nil
// if none does.  Torn higher generations are skipped, not errors: an
// interrupted manifest write leaves exactly that shape behind.  A
// generation whose device cannot be opened or read is skipped the same
// way — a single unreadable higher generation must not block recovery
// when a valid older one exists; only if NO generation is usable is the
// first such error surfaced (rather than nil, which would let a fresh
// init discard the directory).
func pickManifest(dir Dir, names []string) (*manifest, error) {
	var gens []uint64
	for _, name := range names {
		if gen, ok := parseNumbered(name, "manifest-"); ok {
			gens = append(gens, gen)
		}
	}
	// Highest generation first.
	for i := 0; i < len(gens); i++ {
		for j := i + 1; j < len(gens); j++ {
			if gens[j] > gens[i] {
				gens[i], gens[j] = gens[j], gens[i]
			}
		}
	}
	var firstErr error
	for _, gen := range gens {
		dev, err := dir.Open(manifestName(gen))
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("manifest gen %d: %w", gen, err)
			}
			continue
		}
		buf, err := readAll(dev)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("manifest gen %d: %w", gen, err)
			}
			continue
		}
		m, err := decodeManifest(buf)
		if err != nil || m.gen != gen {
			continue // torn or stale image; fall back to an older gen
		}
		return m, nil
	}
	return nil, firstErr
}
