package wal

import (
	"errors"
	"fmt"
)

// ErrSubscriptionClosed is returned by Subscription.Next once the
// subscription has been closed — explicitly via Close, or implicitly by
// (*Log).Crash (a process failure severs replication connections).
var ErrSubscriptionClosed = errors.New("wal: subscription closed")

// Subscription is a tailing cursor over the durable prefix of a Log: it
// delivers flushed records in strict LSN order, blocking until the
// durable horizon advances, and pins log retention so Archive never
// discards a record the subscriber has not acknowledged.
//
// The replication primary holds one Subscription per attached replica:
// Next feeds the shipping loop, Ack follows the replica's durability
// acknowledgements, and the pin guarantees a briefly disconnected (but
// still attached) replica can always resume from its cursor.
//
// A Subscription is safe for concurrent use (Next from a shipping
// goroutine, Ack/Close from an acknowledgement reader).
type Subscription struct {
	l      *Log
	cursor LSN // next LSN Next will deliver (guarded by l.mu)
	pin    LSN // oldest LSN Archive must retain (guarded by l.mu)
	closed bool
	err    error
}

// Subscribe opens a tailing cursor whose first delivered record is from.
// The records from onward are pinned against Archive until acknowledged
// (see Ack) or the subscription is closed.  Subscribing at or below the
// archived base fails with ErrArchived: those records are gone, the
// subscriber needs a snapshot bootstrap instead.  from may point past the
// current head; delivery then starts once the log grows and flushes that
// far.  Subscribing at NilLSN tails from the oldest retained record.
func (l *Log) Subscribe(from LSN) (*Subscription, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from == NilLSN {
		from = l.base + 1
	}
	if from <= l.base {
		return nil, errArchived(from, l.base)
	}
	s := &Subscription{l: l, cursor: from, pin: from}
	l.subs[s] = struct{}{}
	return s, nil
}

// Next blocks until at least one durable record at or past the cursor
// exists, then returns up to max of them (max <= 0 means no bound) in
// LSN order and advances the cursor.  The returned records are deep
// copies.  It returns an error wrapping ErrSubscriptionClosed once the
// subscription is closed; records delivered before the close remain
// valid.
func (s *Subscription) Next(max int) ([]*Record, error) {
	l := s.l
	l.mu.Lock()
	defer l.mu.Unlock()
	for !s.closed && s.cursor > l.flushedLSN {
		l.tailCond.Wait()
	}
	if s.closed {
		return nil, s.err
	}
	if s.cursor <= l.base {
		// Cannot happen while the pin holds (Archive clamps to pin-1 and
		// pin <= cursor); defensive.
		return nil, errArchived(s.cursor, l.base)
	}
	end := l.flushedLSN
	if max > 0 && end-s.cursor+1 > LSN(max) {
		end = s.cursor + LSN(max) - 1
	}
	out := make([]*Record, 0, end-s.cursor+1)
	for lsn := s.cursor; lsn <= end; lsn++ {
		r := l.recordAtLocked(lsn)
		if r == nil {
			// Cannot happen: the pin kept every LSN >= cursor live.
			return nil, fmt.Errorf("%w: %d", ErrNoSuchLSN, lsn)
		}
		out = append(out, r.clone())
	}
	s.cursor = end + 1
	return out, nil
}

// Ack records that the subscriber has made every record with LSN <= upTo
// durable on its side: the retention pin advances past them and Archive
// may discard them.  Acks are monotonic; a stale (lower) upTo is a no-op.
func (s *Subscription) Ack(upTo LSN) {
	s.l.mu.Lock()
	defer s.l.mu.Unlock()
	if upTo+1 > s.pin {
		s.pin = upTo + 1
	}
}

// Cursor returns the LSN the next Next call will deliver first.
func (s *Subscription) Cursor() LSN {
	s.l.mu.Lock()
	defer s.l.mu.Unlock()
	return s.cursor
}

// Pin returns the oldest LSN the subscription currently pins against
// Archive (NilLSN once closed).
func (s *Subscription) Pin() LSN {
	s.l.mu.Lock()
	defer s.l.mu.Unlock()
	if s.closed {
		return NilLSN
	}
	return s.pin
}

// Close releases the subscription and its retention pin; a blocked Next
// returns ErrSubscriptionClosed.  Close is idempotent.
func (s *Subscription) Close() {
	s.l.mu.Lock()
	defer s.l.mu.Unlock()
	s.closeLocked(fmt.Errorf("%w by subscriber", ErrSubscriptionClosed))
}

func (s *Subscription) closeLocked(err error) {
	if s.closed {
		return
	}
	s.closed = true
	s.err = err
	delete(s.l.subs, s)
	s.l.tailCond.Broadcast()
}

// closeAllSubsLocked closes every live subscription with err; the caller
// holds l.mu.
func (l *Log) closeAllSubsLocked(err error) {
	for s := range l.subs {
		s.closeLocked(err)
	}
}

// minPinLocked returns the lowest retention pin across live
// subscriptions (NilLSN if there are none); the caller holds l.mu.
func (l *Log) minPinLocked() LSN {
	min := NilLSN
	for s := range l.subs {
		if min == NilLSN || s.pin < min {
			min = s.pin
		}
	}
	return min
}
