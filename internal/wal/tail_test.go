package wal

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSubscribeDeliversFlushedRecordsInOrder(t *testing.T) {
	l := newMemLog(t)
	for i := 1; i <= 5; i++ {
		mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: ObjectID(i)})
	}
	if err := l.Flush(3); err != nil {
		t.Fatal(err)
	}
	sub, err := l.Subscribe(1)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	recs, err := sub.Next(0)
	if err != nil {
		t.Fatal(err)
	}
	// Only the durable prefix is delivered; LSNs 4-5 are volatile tail.
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	for i, r := range recs {
		if r.LSN != LSN(i+1) || r.Object != ObjectID(i+1) {
			t.Fatalf("record %d = %v", i, r)
		}
	}
	// Flushing more wakes a blocked Next.
	done := make(chan []*Record, 1)
	go func() {
		recs, err := sub.Next(0)
		if err != nil {
			t.Error(err)
		}
		done <- recs
	}()
	time.Sleep(10 * time.Millisecond) // let the goroutine block
	if err := l.Flush(5); err != nil {
		t.Fatal(err)
	}
	recs = <-done
	if len(recs) != 2 || recs[0].LSN != 4 || recs[1].LSN != 5 {
		t.Fatalf("tail delivery = %v", recs)
	}
}

func TestSubscribeNextHonorsMax(t *testing.T) {
	l := newMemLog(t)
	for i := 1; i <= 6; i++ {
		mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: ObjectID(i)})
	}
	if err := l.Flush(6); err != nil {
		t.Fatal(err)
	}
	sub, err := l.Subscribe(NilLSN)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	for want := LSN(1); want <= 6; want += 2 {
		recs, err := sub.Next(2)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 2 || recs[0].LSN != want {
			t.Fatalf("batch at %d = %v", want, recs)
		}
	}
}

func TestSubscribePinBlocksArchive(t *testing.T) {
	l := newMemLog(t)
	for i := 1; i <= 10; i++ {
		mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: ObjectID(i)})
	}
	if err := l.Flush(10); err != nil {
		t.Fatal(err)
	}
	sub, err := l.Subscribe(1)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing acknowledged: Archive may discard nothing.
	if err := l.Archive(8); err != nil {
		t.Fatal(err)
	}
	if l.Base() != 0 {
		t.Fatalf("archive ignored the pin: base = %d", l.Base())
	}
	// Acks release the prefix, and only the prefix.
	sub.Ack(4)
	if err := l.Archive(8); err != nil {
		t.Fatal(err)
	}
	if l.Base() != 4 {
		t.Fatalf("base = %d, want 4 (acked LSN)", l.Base())
	}
	if _, err := l.Get(5); err != nil {
		t.Fatalf("unacked record archived: %v", err)
	}
	// Closing drops the pin entirely.
	sub.Close()
	if err := l.Archive(8); err != nil {
		t.Fatal(err)
	}
	if l.Base() != 8 {
		t.Fatalf("base after close = %d", l.Base())
	}
}

func TestSubscribeBelowBaseNeedsSnapshot(t *testing.T) {
	l := newMemLog(t)
	for i := 1; i <= 4; i++ {
		mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: ObjectID(i)})
	}
	if err := l.Flush(4); err != nil {
		t.Fatal(err)
	}
	if err := l.Archive(3); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Subscribe(2); !errors.Is(err, ErrArchived) {
		t.Fatalf("Subscribe(2) err = %v, want ErrArchived", err)
	}
	// NilLSN tails from the oldest retained record.
	sub, err := l.Subscribe(NilLSN)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	recs, err := sub.Next(1)
	if err != nil || len(recs) != 1 || recs[0].LSN != 4 {
		t.Fatalf("Next = %v, %v", recs, err)
	}
}

func TestSubscriptionClosedByCloseAndCrash(t *testing.T) {
	l := newMemLog(t)
	sub, err := l.Subscribe(1)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := sub.Next(0)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	sub.Close()
	if err := <-errc; !errors.Is(err, ErrSubscriptionClosed) {
		t.Fatalf("Next after Close = %v", err)
	}
	sub.Close() // idempotent

	// Crash closes every live subscription.
	sub2, err := l.Subscribe(1)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		_, err := sub2.Next(0)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := l.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; !errors.Is(err, ErrSubscriptionClosed) {
		t.Fatalf("Next after Crash = %v", err)
	}
	if pin := sub2.Pin(); pin != NilLSN {
		t.Fatalf("closed subscription still pins %d", pin)
	}
}

func TestSubscribeDeliveredUnderGroupFlush(t *testing.T) {
	// Records made durable by the group-commit leader (FlushAsync) must
	// reach subscribers exactly like synchronous flushes.
	l := newMemLog(t)
	sub, err := l.Subscribe(1)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	const n = 20
	for i := 1; i <= n; i++ {
		mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: ObjectID(i)})
	}
	if err := <-l.FlushAsync(LSN(n)); err != nil {
		t.Fatal(err)
	}
	var got []LSN
	for len(got) < n {
		recs, err := sub.Next(0)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			got = append(got, r.LSN)
		}
	}
	for i, lsn := range got {
		if lsn != LSN(i+1) {
			t.Fatalf("delivery order broken at %d: %v", i, got)
		}
	}
}

// TestErrArchivedMessageShape pins the one wrap format every archived-LSN
// path shares: Get (and Scan, which reads through the same path) and
// Rewrite used to produce differently shaped messages for the same
// condition.
func TestErrArchivedMessageShape(t *testing.T) {
	l := newMemLog(t)
	for i := 1; i <= 5; i++ {
		mustAppend(t, l, &Record{Type: TypeUpdate, TxID: 1, Object: ObjectID(i)})
	}
	if err := l.Flush(5); err != nil {
		t.Fatal(err)
	}
	if err := l.Archive(2); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%s: lsn 1 <= base 2", ErrArchived.Error())
	_, getErr := l.Get(1)
	rewriteErr := l.Rewrite(1, func(*Record) {})
	scanErr := l.Scan(NilLSN, NilLSN, func(r *Record) (bool, error) {
		// Archive under the scanner's feet: the next iteration reads an
		// archived LSN through the Get path.
		return true, l.Archive(4)
	})
	for name, err := range map[string]error{"Get": getErr, "Rewrite": rewriteErr, "Scan": scanErr} {
		if err == nil || !errors.Is(err, ErrArchived) {
			t.Fatalf("%s err = %v, want ErrArchived", name, err)
		}
		if name != "Scan" && err.Error() != want {
			t.Fatalf("%s message = %q, want %q", name, err.Error(), want)
		}
	}
	// The Scan-path message differs only in the LSN/base values, not shape.
	if got := scanErr.Error(); got != fmt.Sprintf("%s: lsn 4 <= base 4", ErrArchived.Error()) {
		t.Fatalf("Scan message = %q", got)
	}
}

// TestArchiveRaceWithGroupFlushAndScan exercises Archive concurrently
// with the group-flush leader and concurrent Scans — the retention pin
// lands on this path.  Run under -race; correctness here is "no data
// race, no lost records above the base".
func TestArchiveRaceWithGroupFlushAndScan(t *testing.T) {
	l := newMemLog(t)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Appender + group committer: append a record, wait on the coalesced
	// flush, exactly as concurrent commits do.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				lsn, err := l.Append(&Record{Type: TypeUpdate, TxID: TxID(w + 1), Object: ObjectID(i%8 + 1)})
				if err != nil {
					t.Error(err)
					return
				}
				if err := <-l.FlushAsync(lsn); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	// Archiver: repeatedly discard most of the durable prefix.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			flushed := l.FlushedLSN()
			if flushed > 4 {
				if err := l.Archive(flushed - 4); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	// Scanners: full scans racing both; ErrArchived mid-scan is the
	// expected face of the base moving underfoot and is tolerated.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				prev := NilLSN
				err := l.Scan(NilLSN, NilLSN, func(r *Record) (bool, error) {
					if prev != NilLSN && r.LSN != prev+1 {
						return false, fmt.Errorf("scan skipped: %d after %d", r.LSN, prev)
					}
					prev = r.LSN
					return true, nil
				})
				if err != nil && !errors.Is(err, ErrArchived) {
					t.Error(err)
					return
				}
			}
		}()
	}

	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Post-condition: everything above the base is intact and dense.
	base, head := l.Base(), l.Head()
	for lsn := base + 1; lsn <= head; lsn++ {
		if _, err := l.Get(lsn); err != nil {
			t.Fatalf("Get(%d) after race = %v (base %d head %d)", lsn, err, base, head)
		}
	}
}
