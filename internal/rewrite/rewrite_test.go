package rewrite

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"ariesrh/internal/wal"
)

func newEng(t *testing.T, mode Mode) *Engine {
	t.Helper()
	e, err := New(Options{Mode: mode, PoolSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func begin(t *testing.T, e *Engine) wal.TxID {
	t.Helper()
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func update(t *testing.T, e *Engine, tx wal.TxID, obj wal.ObjectID, val string) {
	t.Helper()
	if err := e.Update(tx, obj, []byte(val)); err != nil {
		t.Fatalf("update: %v", err)
	}
}

func wantVal(t *testing.T, e *Engine, obj wal.ObjectID, want string) {
	t.Helper()
	v, ok, err := e.ReadObject(obj)
	if err != nil {
		t.Fatal(err)
	}
	if want == "" {
		if ok && len(v) > 0 {
			t.Fatalf("object %d = %q, want empty", obj, v)
		}
		return
	}
	if !ok || !bytes.Equal(v, []byte(want)) {
		t.Fatalf("object %d = %q (ok=%v), want %q", obj, v, ok, want)
	}
}

func crashRecover(t *testing.T, e *Engine) {
	t.Helper()
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}
}

// TestFigure1EagerRewrite replays §3.1 Example 1 / Figure 2 through the
// eager engine and asserts the log is physically rewritten exactly as the
// figure's "after rewriting" row: t1's updates to a now carry t2, t1's
// update to b does not.
func TestFigure1EagerRewrite(t *testing.T) {
	e := newEng(t, Eager)
	t1 := begin(t, e) // LSN 1
	t2 := begin(t, e) // LSN 2
	const a, b, x, y = 100, 101, 102, 103
	update(t, e, t1, a, "1")                      // LSN 3
	update(t, e, t2, x, "2")                      // LSN 4
	update(t, e, t1, b, "3")                      // LSN 5
	update(t, e, t1, a, "4")                      // LSN 6
	update(t, e, t2, y, "5")                      // LSN 7
	if err := e.Delegate(t1, t2, a); err != nil { // LSN 8
		t.Fatal(err)
	}
	for _, c := range []struct {
		lsn  wal.LSN
		want wal.TxID
	}{{3, t2}, {4, t2}, {5, t1}, {6, t2}, {7, t2}} {
		rec, err := e.Log().Get(c.lsn)
		if err != nil {
			t.Fatal(err)
		}
		if rec.TxID != c.want {
			t.Fatalf("record %d carries t%d, want t%d", c.lsn, rec.TxID, c.want)
		}
	}
	s := e.Stats()
	if s.Rewrites != 2 {
		t.Fatalf("rewrites = %d, want 2", s.Rewrites)
	}
	if s.DelegateSweepReads == 0 {
		t.Fatal("eager sweep read no records")
	}
}

func TestLazyDoesNotTouchLogDuringNormalProcessing(t *testing.T) {
	e := newEng(t, Lazy)
	t1 := begin(t, e)
	t2 := begin(t, e)
	update(t, e, t1, 1, "v")
	if err := e.Delegate(t1, t2, 1); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Rewrites != 0 {
		t.Fatal("lazy mode rewrote during normal processing")
	}
	rec, err := e.Log().Get(3)
	if err != nil {
		t.Fatal(err)
	}
	if rec.TxID != t1 {
		t.Fatalf("record rewritten eagerly in lazy mode")
	}
}

func TestLazyRewritesDuringRecovery(t *testing.T) {
	e := newEng(t, Lazy)
	t1 := begin(t, e)
	t2 := begin(t, e)
	update(t, e, t1, 1, "delegated") // LSN 3
	if err := e.Delegate(t1, t2, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(t2); err != nil {
		t.Fatal(err)
	}
	if err := e.Log().Flush(e.Log().Head()); err != nil {
		t.Fatal(err)
	}
	crashRecover(t, e)
	// Recovery rewrote the update to carry the (loser) delegatee... t2
	// committed, so the record now carries t2 and the value survives.
	rec, err := e.Log().Get(3)
	if err != nil {
		t.Fatal(err)
	}
	if rec.TxID != t2 {
		t.Fatalf("record 3 carries t%d after lazy recovery, want t%d", rec.TxID, t2)
	}
	if e.Stats().RecRewrites == 0 {
		t.Fatal("lazy recovery performed no rewrites")
	}
	wantVal(t, e, 1, "delegated")
}

func perMode(t *testing.T, f func(t *testing.T, mode Mode)) {
	for _, mode := range []Mode{Eager, Lazy} {
		t.Run(mode.String(), func(t *testing.T) { f(t, mode) })
	}
}

func TestDelegationSemanticsMatchRH(t *testing.T) {
	// Functionally, both naïve engines realize the same delegation
	// semantics as ARIES/RH — at higher cost.
	perMode(t, func(t *testing.T, mode Mode) {
		e := newEng(t, mode)
		t1 := begin(t, e)
		t2 := begin(t, e)
		update(t, e, t1, 1, "delegated")
		update(t, e, t1, 2, "own")
		if err := e.Delegate(t1, t2, 1); err != nil {
			t.Fatal(err)
		}
		if err := e.Abort(t1); err != nil {
			t.Fatal(err)
		}
		wantVal(t, e, 1, "delegated")
		wantVal(t, e, 2, "")
		if err := e.Commit(t2); err != nil {
			t.Fatal(err)
		}
		wantVal(t, e, 1, "delegated")
	})
}

func TestRecoveryDelegationWinnerLoser(t *testing.T) {
	perMode(t, func(t *testing.T, mode Mode) {
		e := newEng(t, mode)
		t1 := begin(t, e)
		t2 := begin(t, e)
		update(t, e, t1, 1, "keep") // delegated to the winner t2
		update(t, e, t1, 2, "drop") // stays with the loser t1
		if err := e.Delegate(t1, t2, 1); err != nil {
			t.Fatal(err)
		}
		if err := e.Commit(t2); err != nil {
			t.Fatal(err)
		}
		if err := e.Log().Flush(e.Log().Head()); err != nil {
			t.Fatal(err)
		}
		crashRecover(t, e)
		wantVal(t, e, 1, "keep")
		wantVal(t, e, 2, "")
	})
}

func TestRecoveryChain(t *testing.T) {
	perMode(t, func(t *testing.T, mode Mode) {
		e := newEng(t, mode)
		t0 := begin(t, e)
		t1 := begin(t, e)
		t2 := begin(t, e)
		update(t, e, t0, 5, "chained")
		if err := e.Delegate(t0, t1, 5); err != nil {
			t.Fatal(err)
		}
		if err := e.Delegate(t1, t2, 5); err != nil {
			t.Fatal(err)
		}
		if err := e.Commit(t2); err != nil {
			t.Fatal(err)
		}
		if err := e.Log().Flush(e.Log().Head()); err != nil {
			t.Fatal(err)
		}
		crashRecover(t, e)
		wantVal(t, e, 5, "chained")
	})
}

func TestEagerSweepCostGrowsWithLog(t *testing.T) {
	// The eager sweep examines every record back to the delegator's
	// begin — padding the log with unrelated traffic makes one delegation
	// proportionally more expensive.  This is the E4 effect.
	costAt := func(padding int) uint64 {
		e, err := New(Options{Mode: Eager, PoolSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		t1, _ := e.Begin()
		if err := e.Update(t1, 1, []byte("v")); err != nil {
			t.Fatal(err)
		}
		filler, _ := e.Begin()
		for i := 0; i < padding; i++ {
			if err := e.Update(filler, wal.ObjectID(1000+i), []byte("pad")); err != nil {
				t.Fatal(err)
			}
		}
		t2, _ := e.Begin()
		if err := e.Delegate(t1, t2, 1); err != nil {
			t.Fatal(err)
		}
		return e.Stats().DelegateSweepReads
	}
	small := costAt(10)
	large := costAt(1000)
	if large < small*10 {
		t.Fatalf("sweep cost did not grow with log length: %d vs %d", small, large)
	}
}

func TestRewritePersistsAcrossCrash(t *testing.T) {
	// An eager rewrite of already-stable records must hit the device, or
	// recovery would mis-attribute the update.
	e := newEng(t, Eager)
	t1 := begin(t, e)
	t2 := begin(t, e)
	update(t, e, t1, 1, "v")
	if err := e.Log().Flush(e.Log().Head()); err != nil {
		t.Fatal(err)
	}
	if err := e.Delegate(t1, t2, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(t2); err != nil {
		t.Fatal(err)
	}
	if err := e.Log().Flush(e.Log().Head()); err != nil {
		t.Fatal(err)
	}
	logStats := e.Log().Stats()
	if logStats.RewriteFlushes == 0 {
		t.Fatal("stable rewrite did not patch the device")
	}
	crashRecover(t, e)
	wantVal(t, e, 1, "v")
}

func TestDelegatePreconditions(t *testing.T) {
	perMode(t, func(t *testing.T, mode Mode) {
		e := newEng(t, mode)
		t1 := begin(t, e)
		t2 := begin(t, e)
		if err := e.Delegate(t1, t2, 9); !errors.Is(err, ErrNotResponsible) {
			t.Fatalf("err = %v", err)
		}
		update(t, e, t1, 9, "v")
		if err := e.Delegate(t1, 99, 9); !errors.Is(err, ErrNoSuchTxn) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestManyDelegationsRecovery(t *testing.T) {
	perMode(t, func(t *testing.T, mode Mode) {
		e := newEng(t, mode)
		var winners []wal.TxID
		for i := 0; i < 10; i++ {
			src := begin(t, e)
			dst := begin(t, e)
			obj := wal.ObjectID(i + 1)
			update(t, e, src, obj, fmt.Sprintf("v%d", i))
			if err := e.Delegate(src, dst, obj); err != nil {
				t.Fatal(err)
			}
			if i%2 == 0 {
				if err := e.Commit(dst); err != nil {
					t.Fatal(err)
				}
				winners = append(winners, dst)
			}
			// src stays active: loser.
		}
		if err := e.Log().Flush(e.Log().Head()); err != nil {
			t.Fatal(err)
		}
		crashRecover(t, e)
		for i := 0; i < 10; i++ {
			obj := wal.ObjectID(i + 1)
			if i%2 == 0 {
				wantVal(t, e, obj, fmt.Sprintf("v%d", i))
			} else {
				wantVal(t, e, obj, "")
			}
		}
		_ = winners
	})
}
