// Package rewrite implements the two naïve delegation designs the paper
// rejects (§3.2), as instrumented baselines:
//
//   - Eager: each delegate(t1, t2, ob) is applied to the log immediately,
//     exactly as the operational semantics of Figure 1 — the log is swept
//     backwards from the delegation point to t1's begin record, and every
//     update[t1, ob] record is rewritten in place to carry t2's transaction
//     ID (setTransID).  Records already on stable storage are patched with
//     random writes.  Cost: one (potentially whole-log) sweep plus random
//     log I/O per delegation.
//
//   - Lazy: delegations are only logged during normal processing (cheap,
//     like RH); during recovery the log is physically rewritten — every
//     update record whose responsibility moved is patched to carry its
//     final delegatee's ID — before the undo pass runs.  Cost: rewrite I/O
//     at recovery time, plus the correctness burden of mutating the log in
//     other than append mode.
//
// Because in-place rewriting leaves per-transaction backward chains stale,
// both engines roll back with full backward log scans (the paper notes
// this very repair problem as a reason the naïve designs are fragile).
// Every access is counted so the benchmark harness can reproduce the
// paper's cost comparison against ARIES/RH.
package rewrite

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"ariesrh/internal/buffer"
	"ariesrh/internal/lock"
	"ariesrh/internal/object"
	"ariesrh/internal/storage"
	"ariesrh/internal/txn"
	"ariesrh/internal/wal"
)

// Mode selects when the log is physically rewritten.
type Mode int

// Rewrite modes.
const (
	// Eager rewrites the log at delegation time (Figure 1 applied
	// literally).
	Eager Mode = iota
	// Lazy logs delegations during normal processing and rewrites the
	// log during recovery.
	Lazy
)

// String names the mode.
func (m Mode) String() string {
	if m == Lazy {
		return "lazy"
	}
	return "eager"
}

// Errors returned by engine operations.
var (
	ErrNoSuchTxn      = errors.New("rewrite: no such transaction")
	ErrNotResponsible = errors.New("rewrite: delegator not responsible for object")
	ErrCrashed        = errors.New("rewrite: engine crashed; run Recover")
)

// Stats counts engine activity, including the rewrite costs that motivate
// ARIES/RH.
type Stats struct {
	Begins      uint64
	Updates     uint64
	Delegations uint64
	Commits     uint64
	Aborts      uint64
	CLRs        uint64

	// DelegateSweepReads counts log records examined by eager delegation
	// sweeps; Rewrites counts in-place record mutations (both modes).
	DelegateSweepReads uint64
	Rewrites           uint64

	RecForwardRecords  uint64
	RecRedone          uint64
	RecBackwardVisited uint64
	RecRewrites        uint64
	RecCLRs            uint64
	RecLosers          uint64
	RecWinners         uint64
}

// opRef names one update record a transaction is responsible for.
type opRef struct {
	lsn wal.LSN
	obj wal.ObjectID
}

// Engine is a transaction manager with delegation implemented by physical
// history rewriting.  Functionally it matches ARIES/RH; its costs do not.
type Engine struct {
	mu    sync.Mutex
	mode  Mode
	log   *wal.Log
	disk  storage.DiskManager
	pool  *buffer.Pool
	store *object.Store
	locks *lock.Manager
	txns  *txn.Table

	// ops maps each live transaction to the update records it is
	// responsible for; beginLSN records where each transaction's log
	// presence starts (the sweep bound of Figure 1).
	ops      map[wal.TxID][]opRef
	beginLSN map[wal.TxID]wal.LSN

	crashed bool
	stats   Stats
}

// Options configures an Engine.
type Options struct {
	Mode     Mode
	PoolSize int
	LogDir   wal.Dir
	Disk     storage.DiskManager
}

// New creates a rewrite-based engine.
func New(opts Options) (*Engine, error) {
	if opts.PoolSize <= 0 {
		opts.PoolSize = 128
	}
	if opts.LogDir == nil {
		opts.LogDir = wal.NewMemDir()
	}
	if opts.Disk == nil {
		opts.Disk = storage.NewMemDisk()
	}
	log, err := wal.NewLog(opts.LogDir)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		mode:     opts.Mode,
		log:      log,
		disk:     opts.Disk,
		locks:    lock.NewManager(),
		txns:     txn.NewTable(),
		ops:      make(map[wal.TxID][]opRef),
		beginLSN: make(map[wal.TxID]wal.LSN),
	}
	e.pool = buffer.NewPool(opts.Disk, opts.PoolSize, func(lsn wal.LSN) error { return e.log.Flush(lsn) })
	e.store, err = object.Open(e.pool, opts.Disk)
	if err != nil {
		return nil, err
	}
	if log.Head() > 0 {
		e.crashed = true
		if err := e.Recover(); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Log exposes the write-ahead log for inspection.
func (e *Engine) Log() *wal.Log { return e.log }

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Begin starts a transaction.
func (e *Engine) Begin() (wal.TxID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return wal.NilTx, ErrCrashed
	}
	info := e.txns.Begin()
	lsn, err := e.log.Append(&wal.Record{Type: wal.TypeBegin, TxID: info.ID})
	if err != nil {
		return wal.NilTx, err
	}
	info.LastLSN = lsn
	e.ops[info.ID] = nil
	e.beginLSN[info.ID] = lsn
	e.stats.Begins++
	return info.ID, nil
}

func (e *Engine) activeInfo(tx wal.TxID) (*txn.Info, error) {
	info := e.txns.Get(tx)
	if info == nil || info.Status != txn.Active {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchTxn, tx)
	}
	return info, nil
}

// Update performs update[tx, obj] ← val.
func (e *Engine) Update(tx wal.TxID, obj wal.ObjectID, val []byte) error {
	e.mu.Lock()
	if e.crashed {
		e.mu.Unlock()
		return ErrCrashed
	}
	if _, err := e.activeInfo(tx); err != nil {
		e.mu.Unlock()
		return err
	}
	e.mu.Unlock()
	if err := e.locks.Acquire(tx, obj, lock.Exclusive); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return ErrCrashed
	}
	info, err := e.activeInfo(tx)
	if err != nil {
		e.locks.ReleaseAll(tx) // stale grant for a dead tx
		return err
	}
	before, _, err := e.store.Read(obj)
	if err != nil {
		return err
	}
	lsn, err := e.log.Append(&wal.Record{
		Type:    wal.TypeUpdate,
		TxID:    tx,
		PrevLSN: info.LastLSN,
		Object:  obj,
		Before:  before,
		After:   val,
	})
	if err != nil {
		return err
	}
	if err := e.store.Write(obj, val, lsn); err != nil {
		return err
	}
	info.LastLSN = lsn
	e.ops[tx] = append(e.ops[tx], opRef{lsn: lsn, obj: obj})
	e.stats.Updates++
	return nil
}

// Delegate transfers responsibility for tor's updates on obj to tee.  In
// Eager mode the log is rewritten on the spot, per Figure 1; in Lazy mode
// a delegate record is appended and the rewrite deferred to recovery.
func (e *Engine) Delegate(tor, tee wal.TxID, obj wal.ObjectID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return ErrCrashed
	}
	torInfo, err := e.activeInfo(tor)
	if err != nil {
		return err
	}
	teeInfo, err := e.activeInfo(tee)
	if err != nil {
		return err
	}
	var moved []opRef
	kept := e.ops[tor][:0]
	for _, ref := range e.ops[tor] {
		if ref.obj == obj {
			moved = append(moved, ref)
		} else {
			kept = append(kept, ref)
		}
	}
	if len(moved) == 0 {
		return fmt.Errorf("%w: t%d has no updates on object %d", ErrNotResponsible, tor, obj)
	}
	e.ops[tor] = kept
	e.ops[tee] = append(e.ops[tee], moved...)
	lsn, err := e.log.Append(&wal.Record{
		Type:    wal.TypeDelegate,
		TxID:    tor,
		PrevLSN: torInfo.LastLSN,
		Tor:     tor,
		Tee:     tee,
		TorPrev: torInfo.LastLSN,
		TeePrev: teeInfo.LastLSN,
		Object:  obj,
	})
	if err != nil {
		return err
	}
	torInfo.LastLSN = lsn
	teeInfo.LastLSN = lsn
	if e.mode == Eager {
		// Figure 1: sweep backwards from the delegate record to t1's
		// begin record — or further, to the oldest update t1 received
		// through earlier delegations, which can predate its begin.
		// Without intact per-transaction chains the sweep must examine
		// every record in the range — the cost the paper highlights
		// ("in principle sweeping the whole log").
		low := e.beginLSN[tor]
		for _, ref := range moved {
			if ref.lsn < low {
				low = ref.lsn
			}
		}
		for k := lsn - 1; k >= low && k != wal.NilLSN; k-- {
			rec, err := e.log.Get(k)
			if err != nil {
				return err
			}
			e.stats.DelegateSweepReads++
			if rec.Type == wal.TypeUpdate && rec.TxID == tor && rec.Object == obj {
				if err := e.log.Rewrite(k, func(r *wal.Record) { r.TxID = tee }); err != nil {
					return err
				}
				e.stats.Rewrites++
			}
		}
	}
	if _, held := e.locks.Holds(tor, obj); held {
		if err := e.locks.Share(tor, tee, obj); err != nil {
			return err
		}
	}
	e.stats.Delegations++
	return nil
}

// Commit commits tx.
func (e *Engine) Commit(tx wal.TxID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return ErrCrashed
	}
	info, err := e.activeInfo(tx)
	if err != nil {
		return err
	}
	lsn, err := e.log.Append(&wal.Record{Type: wal.TypeCommit, TxID: tx, PrevLSN: info.LastLSN})
	if err != nil {
		return err
	}
	if err := e.log.Flush(lsn); err != nil {
		return err
	}
	if _, err := e.log.Append(&wal.Record{Type: wal.TypeEnd, TxID: tx, PrevLSN: lsn}); err != nil {
		return err
	}
	e.locks.ReleaseAll(tx)
	e.txns.Remove(tx)
	delete(e.ops, tx)
	delete(e.beginLSN, tx)
	e.stats.Commits++
	return nil
}

// Abort rolls back every update tx is responsible for, in reverse LSN
// order.
func (e *Engine) Abort(tx wal.TxID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return ErrCrashed
	}
	info, err := e.activeInfo(tx)
	if err != nil {
		return err
	}
	refs := append([]opRef(nil), e.ops[tx]...)
	sort.Slice(refs, func(i, j int) bool { return refs[i].lsn > refs[j].lsn })
	for _, ref := range refs {
		rec, err := e.log.Get(ref.lsn)
		if err != nil {
			return err
		}
		if err := e.writeCLR(info, rec); err != nil {
			return err
		}
	}
	lsn, err := e.log.Append(&wal.Record{Type: wal.TypeAbort, TxID: tx, PrevLSN: info.LastLSN})
	if err != nil {
		return err
	}
	if err := e.log.Flush(lsn); err != nil {
		return err
	}
	if _, err := e.log.Append(&wal.Record{Type: wal.TypeEnd, TxID: tx, PrevLSN: lsn}); err != nil {
		return err
	}
	e.locks.ReleaseAll(tx)
	e.txns.Remove(tx)
	delete(e.ops, tx)
	delete(e.beginLSN, tx)
	e.stats.Aborts++
	return nil
}

func (e *Engine) writeCLR(info *txn.Info, rec *wal.Record) error {
	clr := &wal.Record{
		Type:        wal.TypeCLR,
		TxID:        info.ID,
		PrevLSN:     info.LastLSN,
		Object:      rec.Object,
		Before:      rec.Before,
		UndoNextLSN: rec.PrevLSN,
		Compensates: rec.LSN,
	}
	lsn, err := e.log.Append(clr)
	if err != nil {
		return err
	}
	if err := e.store.Write(rec.Object, rec.Before, lsn); err != nil {
		return err
	}
	info.LastLSN = lsn
	e.stats.CLRs++
	return nil
}

// Crash simulates a failure.
func (e *Engine) Crash() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.log.Crash(); err != nil {
		return err
	}
	if err := e.store.Crash(); err != nil {
		return err
	}
	e.locks.Reset()
	e.txns.Reset(1)
	e.ops = make(map[wal.TxID][]opRef)
	e.beginLSN = make(map[wal.TxID]wal.LSN)
	e.crashed = true
	return nil
}

// ReadObject reads obj without locking; test/tool helper.
func (e *Engine) ReadObject(obj wal.ObjectID) ([]byte, bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return nil, false, ErrCrashed
	}
	return e.store.Read(obj)
}
