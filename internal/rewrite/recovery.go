package rewrite

import (
	"fmt"
	"sort"

	"ariesrh/internal/txn"
	"ariesrh/internal/wal"
)

// Recover restarts a rewrite-based engine.
//
// Eager mode: the log was already rewritten at delegation time, so the
// forward pass attributes each update to the transaction ID now stored in
// its record; delegate records are ignored.
//
// Lazy mode: the forward pass replays delegate records into the volatile
// responsibility map, then — before undo — physically rewrites every
// update record whose responsibility moved so it carries its final
// delegatee's ID ("rewriting history" for real, the cost RH avoids).
//
// Both modes then undo the losers with a full backward scan: in-place
// rewriting leaves per-transaction backward chains stale, so chains cannot
// be trusted and every record in the loser range must be examined.
func (e *Engine) Recover() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.crashed {
		return fmt.Errorf("rewrite: Recover called without a crash")
	}

	applied := make(map[wal.ObjectID]wal.LSN)
	compensated := make(map[wal.LSN]bool)
	e.log.ResetReadCursor()
	err := e.log.Scan(1, wal.NilLSN, func(rec *wal.Record) (bool, error) {
		e.stats.RecForwardRecords++
		switch rec.Type {
		case wal.TypeBegin:
			info := e.txns.Register(rec.TxID)
			info.Status = txn.Active
			info.LastLSN = rec.LSN
			// Eager rewriting can place a transaction's (rewritten)
			// update records BEFORE its begin record; never clobber
			// state already accumulated for it.
			if _, ok := e.beginLSN[rec.TxID]; !ok {
				e.beginLSN[rec.TxID] = rec.LSN
			}
		case wal.TypeUpdate:
			info := e.txns.Register(rec.TxID)
			info.LastLSN = rec.LSN
			e.ops[rec.TxID] = append(e.ops[rec.TxID], opRef{lsn: rec.LSN, obj: rec.Object})
			if e.beginLSN[rec.TxID] == wal.NilLSN {
				e.beginLSN[rec.TxID] = rec.LSN
			}
			if err := e.redoApply(applied, rec.Object, rec.After, rec.LSN); err != nil {
				return false, err
			}
		case wal.TypeCLR:
			compensated[rec.Compensates] = true
			if info := e.txns.Get(rec.TxID); info != nil {
				info.LastLSN = rec.LSN
			}
			if err := e.redoApply(applied, rec.Object, rec.Before, rec.LSN); err != nil {
				return false, err
			}
		case wal.TypeDelegate:
			if e.mode == Lazy {
				// Replay the responsibility transfer.
				var moved []opRef
				kept := e.ops[rec.Tor][:0]
				for _, ref := range e.ops[rec.Tor] {
					if ref.obj == rec.Object {
						moved = append(moved, ref)
					} else {
						kept = append(kept, ref)
					}
				}
				e.ops[rec.Tor] = kept
				e.ops[rec.Tee] = append(e.ops[rec.Tee], moved...)
			}
			// Eager mode: the log already reflects the delegation.
		case wal.TypeCommit:
			e.stats.RecWinners++
			if info := e.txns.Get(rec.TxID); info != nil {
				info.Status = txn.Committed
			}
		case wal.TypeAbort:
			if info := e.txns.Get(rec.TxID); info != nil {
				info.Status = txn.Aborted
			}
		case wal.TypeEnd:
			if e.mode == Lazy {
				// The ending transaction is the final owner of
				// everything still in its ops list; rewrite its
				// delegated-in records now, before the list is
				// dropped, or the backward scan would attribute
				// them to their (possibly loser) invokers.
				if err := e.rewriteOwned(rec.TxID); err != nil {
					return false, err
				}
			}
			e.txns.Remove(rec.TxID)
			delete(e.ops, rec.TxID)
			delete(e.beginLSN, rec.TxID)
		default:
			return false, fmt.Errorf("rewrite: unexpected record %v", rec.Type)
		}
		return true, nil
	})
	if err != nil {
		return err
	}

	// Lazy mode: rewrite history now — patch every update record whose
	// responsibility moved so its TxID names the final delegatee.
	// (Records owned by transactions that ended before the crash were
	// already patched during the forward pass.)
	if e.mode == Lazy {
		for owner := range e.ops {
			if err := e.rewriteOwned(owner); err != nil {
				return err
			}
		}
	}

	// Classify losers.
	losers := make(map[wal.TxID]bool)
	minBegin := wal.NilLSN
	for _, info := range e.txns.Snapshot() {
		if info.Status == txn.Committed {
			if _, err := e.log.Append(&wal.Record{Type: wal.TypeEnd, TxID: info.ID, PrevLSN: info.LastLSN}); err != nil {
				return err
			}
			e.txns.Remove(info.ID)
			delete(e.ops, info.ID)
			delete(e.beginLSN, info.ID)
			continue
		}
		e.stats.RecLosers++
		losers[info.ID] = true
		// The sweep must reach back to the oldest update a loser is
		// responsible for; with rewriting, record TxIDs are authoritative,
		// but delegated-in updates may precede the loser's own begin.
		for _, ref := range e.ops[info.ID] {
			if minBegin == wal.NilLSN || ref.lsn < minBegin {
				minBegin = ref.lsn
			}
		}
		if b := e.beginLSN[info.ID]; b != wal.NilLSN && (minBegin == wal.NilLSN || b < minBegin) {
			minBegin = b
		}
	}

	// Backward pass: full scan — every record between the head and the
	// oldest loser position is examined (chains are stale).
	if len(losers) > 0 && minBegin != wal.NilLSN {
		head := e.log.Head()
		clrStop := head // CLRs appended below must not be re-visited
		for k := clrStop; k >= minBegin; k-- {
			rec, err := e.log.Get(k)
			if err != nil {
				return err
			}
			e.stats.RecBackwardVisited++
			if rec.Type != wal.TypeUpdate || !losers[rec.TxID] || compensated[rec.LSN] {
				continue
			}
			info := e.txns.Get(rec.TxID)
			if err := e.writeCLR(info, rec); err != nil {
				return err
			}
			e.stats.RecCLRs++
		}
	}

	// Terminate losers.
	ids := make([]wal.TxID, 0, len(losers))
	for id := range losers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		info := e.txns.Get(id)
		if info == nil {
			continue
		}
		lsn, err := e.log.Append(&wal.Record{Type: wal.TypeAbort, TxID: id, PrevLSN: info.LastLSN})
		if err != nil {
			return err
		}
		if _, err := e.log.Append(&wal.Record{Type: wal.TypeEnd, TxID: id, PrevLSN: lsn}); err != nil {
			return err
		}
		e.txns.Remove(id)
		delete(e.ops, id)
		delete(e.beginLSN, id)
	}
	if err := e.log.Flush(e.log.Head()); err != nil {
		return err
	}
	e.crashed = false
	return nil
}

// rewriteOwned patches every update record in owner's ops list that does
// not yet carry owner's transaction ID — the physical "rewriting of
// history" the lazy design performs during recovery.
func (e *Engine) rewriteOwned(owner wal.TxID) error {
	for _, ref := range e.ops[owner] {
		rec, err := e.log.Get(ref.lsn)
		if err != nil {
			return err
		}
		if rec.Type == wal.TypeUpdate && rec.TxID != owner {
			if err := e.log.Rewrite(ref.lsn, func(r *wal.Record) { r.TxID = owner }); err != nil {
				return err
			}
			e.stats.Rewrites++
			e.stats.RecRewrites++
		}
	}
	return nil
}

// redoApply repeats history for one logged change (see internal/core for
// the pageLSN-coverage argument).
func (e *Engine) redoApply(applied map[wal.ObjectID]wal.LSN, obj wal.ObjectID, val []byte, lsn wal.LSN) error {
	la, ok := applied[obj]
	if !ok {
		pl, err := e.store.PageLSN(obj)
		if err != nil {
			return err
		}
		la = pl
		applied[obj] = la
	}
	if lsn <= la {
		return nil
	}
	if err := e.store.Write(obj, val, lsn); err != nil {
		return err
	}
	applied[obj] = lsn
	e.stats.RecRedone++
	return nil
}
