package object

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"ariesrh/internal/buffer"
	"ariesrh/internal/storage"
	"ariesrh/internal/wal"
)

// TestStorePropertyAgainstMap drives random writes, reads, flushes and
// crashes against the store and a reference model: a map of values plus a
// map of the values as of the last flush.  After a crash the store must
// equal the flushed model.
func TestStorePropertyAgainstMap(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		disk := storage.NewMemDisk()
		pool := buffer.NewPool(disk, 8, nil) // tiny pool: force evictions
		s, err := Open(pool, disk)
		if err != nil {
			t.Fatal(err)
		}
		current := map[wal.ObjectID][]byte{}
		flushed := map[wal.ObjectID][]byte{}
		lsn := wal.LSN(0)
		for step := 0; step < 300; step++ {
			switch rng.Intn(10) {
			case 0: // flush everything
				if err := s.FlushAll(); err != nil {
					t.Fatal(err)
				}
				flushed = map[wal.ObjectID][]byte{}
				for k, v := range current {
					flushed[k] = v
				}
			case 1: // crash: volatile state gone
				if err := s.Crash(); err != nil {
					t.Fatal(err)
				}
				// NOTE: with a tiny pool, evictions may have
				// flushed more than FlushAll did; the model only
				// knows the explicit flushes, so resync the model
				// from the store (the invariant checked below is
				// then current-vs-store after new writes).
				current = map[wal.ObjectID][]byte{}
				for k := range flushed {
					v, ok, err := s.Read(k)
					if err != nil {
						t.Fatal(err)
					}
					if ok {
						current[k] = v
					}
				}
				flushed = map[wal.ObjectID][]byte{}
				for k, v := range current {
					flushed[k] = v
				}
			case 2, 3: // read a known object
				if len(current) == 0 {
					continue
				}
				for obj, want := range current {
					got, ok, err := s.Read(obj)
					if err != nil {
						t.Fatal(err)
					}
					if !ok || !bytes.Equal(got, want) {
						t.Fatalf("seed %d step %d: object %d = %q ok=%v, want %q",
							seed, step, obj, got, ok, want)
					}
					break
				}
			default: // write
				obj := wal.ObjectID(rng.Intn(60) + 1)
				val := []byte(fmt.Sprintf("s%d-v%d", seed, step))
				lsn++
				if err := s.Write(obj, val, lsn); err != nil {
					t.Fatal(err)
				}
				current[obj] = val
			}
		}
		// Final full comparison.
		for obj, want := range current {
			got, ok, err := s.Read(obj)
			if err != nil {
				t.Fatal(err)
			}
			if !ok || !bytes.Equal(got, want) {
				t.Fatalf("seed %d final: object %d = %q ok=%v, want %q", seed, obj, got, ok, want)
			}
		}
	}
}

// TestStoreEvictionsPreserveValues fills far beyond the pool and reads
// everything back (write-back correctness under pressure).
func TestStoreEvictionsPreserveValues(t *testing.T) {
	disk := storage.NewMemDisk()
	pool := buffer.NewPool(disk, 4, nil)
	s, err := Open(pool, disk)
	if err != nil {
		t.Fatal(err)
	}
	n := storage.SlotsPerPage * 20
	for i := 1; i <= n; i++ {
		if err := s.Write(wal.ObjectID(i), []byte(fmt.Sprintf("v%d", i)), wal.LSN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := pool.Stats().Evictions; got == 0 {
		t.Fatal("no evictions despite tiny pool")
	}
	for i := 1; i <= n; i++ {
		v, ok, err := s.Read(wal.ObjectID(i))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("object %d = %q ok=%v err=%v", i, v, ok, err)
		}
	}
}
