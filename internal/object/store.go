// Package object implements the object-level access layer shared by all
// recovery engines: a directory mapping ObjectID → (page, slot) over the
// buffer pool, with the pageLSN discipline that makes redo idempotent.
//
// Objects are registers of up to storage.MaxValueSize bytes.  An object
// that has never been written reads as absent; engines model "the value
// before the first update" with an empty before-image, so undoing the first
// update of an object restores the empty value.
package object

import (
	"fmt"
	"sync"

	"ariesrh/internal/buffer"
	"ariesrh/internal/storage"
	"ariesrh/internal/wal"
)

type rid struct {
	pid  storage.PageID
	slot int
}

// Store provides object reads and (logged-elsewhere) object writes on top
// of the buffer pool.  It is safe for concurrent use.
//
// The directory is volatile: Crash discards it and Reload rebuilds it by
// scanning the stable pages, exactly as a real system rebuilds its
// in-memory maps during restart.
type Store struct {
	mu   sync.Mutex
	pool *buffer.Pool
	disk storage.DiskManager
	dir  map[wal.ObjectID]rid
	// free lists pages believed to have at least one free slot.
	free []storage.PageID
}

// Open creates a store over pool and disk and loads the directory from the
// stable pages.
func Open(pool *buffer.Pool, disk storage.DiskManager) (*Store, error) {
	s := &Store{pool: pool, disk: disk}
	if err := s.Reload(); err != nil {
		return nil, err
	}
	return s, nil
}

// Reload rebuilds the directory and free list by scanning every stable
// page.  Called at open and after a simulated crash.
func (s *Store) Reload() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dir = make(map[wal.ObjectID]rid)
	s.free = s.free[:0]
	n := s.disk.NumPages()
	for pid := storage.PageID(0); pid < n; pid++ {
		page, err := s.disk.ReadPage(pid)
		if err != nil {
			return fmt.Errorf("object: reload page %d: %w", pid, err)
		}
		hasFree := false
		for i := range page.Slots {
			sl := &page.Slots[i]
			if sl.Used {
				s.dir[sl.Object] = rid{pid: pid, slot: i}
			} else {
				hasFree = true
			}
		}
		if hasFree {
			s.free = append(s.free, pid)
		}
	}
	return nil
}

// Read returns the current value of obj and whether it exists.  The
// returned slice is a copy.
func (s *Store) Read(obj wal.ObjectID) ([]byte, bool, error) {
	s.mu.Lock()
	r, ok := s.dir[obj]
	s.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	page, err := s.pool.Fetch(r.pid)
	if err != nil {
		return nil, false, err
	}
	defer s.pool.Unpin(r.pid, false, wal.NilLSN)
	sl := &page.Slots[r.slot]
	if !sl.Used || sl.Object != obj {
		return nil, false, fmt.Errorf("object: directory entry for %d is stale", obj)
	}
	return append([]byte(nil), sl.Value...), true, nil
}

// Write sets obj to val and stamps the containing page with pageLSN lsn
// (the LSN of the log record describing this change, which the caller must
// have appended first — write-ahead logging).  A new slot is allocated for
// objects not yet stored.
func (s *Store) Write(obj wal.ObjectID, val []byte, lsn wal.LSN) error {
	if len(val) > storage.MaxValueSize {
		return fmt.Errorf("object: value of %d bytes exceeds max %d", len(val), storage.MaxValueSize)
	}
	r, err := s.locate(obj)
	if err != nil {
		return err
	}
	page, err := s.pool.Fetch(r.pid)
	if err != nil {
		return err
	}
	sl := &page.Slots[r.slot]
	sl.Used = true
	sl.Object = obj
	sl.Value = append(sl.Value[:0], val...)
	if lsn > page.LSN {
		page.LSN = lsn
	}
	return s.pool.Unpin(r.pid, true, lsn)
}

// Prefetch pulls the page holding obj into the buffer pool without reading
// or writing its contents, so a later Read/Write under the engine latch
// hits memory.  The point is latch-scope reduction: the page fault — and a
// possible eviction of another dirty page, with its write-back and
// WAL-rule log flush — happens on the caller's thread with no engine latch
// held.  Purely a performance hint: unknown objects are ignored, errors
// are swallowed (the latched access will surface them), and the page may
// be evicted again before it is used.
func (s *Store) Prefetch(obj wal.ObjectID) {
	s.mu.Lock()
	r, ok := s.dir[obj]
	s.mu.Unlock()
	if !ok {
		return
	}
	_ = s.pool.Prefault(r.pid)
}

// PageLSN returns the pageLSN of the page holding obj (NilLSN for objects
// not yet stored).  The redo pass uses it to decide whether a logged change
// is already reflected on the page.
func (s *Store) PageLSN(obj wal.ObjectID) (wal.LSN, error) {
	s.mu.Lock()
	r, ok := s.dir[obj]
	s.mu.Unlock()
	if !ok {
		return wal.NilLSN, nil
	}
	page, err := s.pool.Fetch(r.pid)
	if err != nil {
		return wal.NilLSN, err
	}
	defer s.pool.Unpin(r.pid, false, wal.NilLSN)
	return page.LSN, nil
}

// PageOf returns the page currently holding obj without allocating one
// for unknown objects.  Parallel recovery uses it to group redo work and
// to seed per-page baselines: an absent object has no stable image, so
// its redo baseline is NilLSN.
func (s *Store) PageOf(obj wal.ObjectID) (storage.PageID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.dir[obj]
	return r.pid, ok
}

// Locate returns the page holding obj, allocating a slot (and, if
// needed, a page) for objects not yet stored.  Parallel recovery calls
// it before the first write touching obj so the page's pre-recovery
// pageLSN can be captured while it is still the stable one.
func (s *Store) Locate(obj wal.ObjectID) (storage.PageID, error) {
	r, err := s.locate(obj)
	return r.pid, err
}

// PageLSNAt returns the pageLSN of page pid.  Unlike PageLSN it is
// keyed by page, not object: recovery baselines are per page, because a
// page flushed at pageLSN pl covers the updates with LSN ≤ pl of every
// object stored in it.
func (s *Store) PageLSNAt(pid storage.PageID) (wal.LSN, error) {
	page, err := s.pool.Fetch(pid)
	if err != nil {
		return wal.NilLSN, err
	}
	defer s.pool.Unpin(pid, false, wal.NilLSN)
	return page.LSN, nil
}

// locate returns the rid for obj, allocating a slot (and, if needed, a
// page) for new objects.
func (s *Store) locate(obj wal.ObjectID) (rid, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.dir[obj]; ok {
		return r, nil
	}
	for len(s.free) > 0 {
		pid := s.free[len(s.free)-1]
		page, err := s.pool.Fetch(pid)
		if err != nil {
			return rid{}, err
		}
		slot := page.FreeSlot()
		if slot < 0 {
			s.pool.Unpin(pid, false, wal.NilLSN)
			s.free = s.free[:len(s.free)-1]
			continue
		}
		// Reserve the slot; the caller's Write fills it in and marks
		// the page dirty with the real recLSN.  The reservation itself
		// is volatile: losing it to eviction or a crash is harmless
		// because Write re-establishes the slot contents.
		page.Slots[slot].Used = true
		page.Slots[slot].Object = obj
		if err := s.pool.Unpin(pid, false, wal.NilLSN); err != nil {
			return rid{}, err
		}
		r := rid{pid: pid, slot: slot}
		s.dir[obj] = r
		return r, nil
	}
	pid, err := s.disk.Allocate()
	if err != nil {
		return rid{}, err
	}
	s.free = append(s.free, pid)
	page, err := s.pool.Fetch(pid)
	if err != nil {
		return rid{}, err
	}
	page.Slots[0].Used = true
	page.Slots[0].Object = obj
	if err := s.pool.Unpin(pid, false, wal.NilLSN); err != nil {
		return rid{}, err
	}
	r := rid{pid: pid, slot: 0}
	s.dir[obj] = r
	return r, nil
}

// Crash discards the pool contents and the volatile directory, then
// rebuilds the directory from stable storage.
func (s *Store) Crash() error {
	s.pool.Crash()
	return s.Reload()
}

// FlushAll writes all dirty pages back (clean shutdown).
func (s *Store) FlushAll() error { return s.pool.FlushAll() }

// NumObjects returns the number of directory entries; test helper.
func (s *Store) NumObjects() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.dir)
}
