package object

import (
	"fmt"
	"testing"

	"ariesrh/internal/buffer"
	"ariesrh/internal/storage"
	"ariesrh/internal/wal"
)

func newStore(t *testing.T) (*Store, storage.DiskManager) {
	t.Helper()
	disk := storage.NewMemDisk()
	pool := buffer.NewPool(disk, 64, nil)
	s, err := Open(pool, disk)
	if err != nil {
		t.Fatal(err)
	}
	return s, disk
}

func TestStoreReadAbsent(t *testing.T) {
	s, _ := newStore(t)
	v, ok, err := s.Read(7)
	if err != nil {
		t.Fatal(err)
	}
	if ok || v != nil {
		t.Fatalf("absent object read as %q ok=%v", v, ok)
	}
}

func TestStoreWriteRead(t *testing.T) {
	s, _ := newStore(t)
	if err := s.Write(7, []byte("hello"), 3); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Read(7)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || string(v) != "hello" {
		t.Fatalf("read %q ok=%v", v, ok)
	}
	lsn, err := s.PageLSN(7)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 3 {
		t.Fatalf("pageLSN = %d, want 3", lsn)
	}
	// Overwrite keeps the same slot and bumps the pageLSN.
	if err := s.Write(7, []byte("world"), 9); err != nil {
		t.Fatal(err)
	}
	v, _, _ = s.Read(7)
	if string(v) != "world" {
		t.Fatalf("read %q", v)
	}
	if lsn, _ := s.PageLSN(7); lsn != 9 {
		t.Fatalf("pageLSN = %d, want 9", lsn)
	}
}

func TestStorePageLSNMonotone(t *testing.T) {
	s, _ := newStore(t)
	s.Write(1, []byte("a"), 10)
	// Writing with a smaller LSN (redo of an older record sharing the
	// page would not happen, but Write must not regress the pageLSN).
	s.Write(1, []byte("b"), 4)
	if lsn, _ := s.PageLSN(1); lsn != 10 {
		t.Fatalf("pageLSN regressed to %d", lsn)
	}
}

func TestStoreAllocatesAcrossPages(t *testing.T) {
	s, disk := newStore(t)
	n := storage.SlotsPerPage*2 + 3
	for i := 0; i < n; i++ {
		if err := s.Write(wal.ObjectID(i+1), []byte(fmt.Sprintf("v%d", i)), wal.LSN(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if disk.NumPages() < 3 {
		t.Fatalf("%d objects fit in %d pages", n, disk.NumPages())
	}
	for i := 0; i < n; i++ {
		v, ok, err := s.Read(wal.ObjectID(i + 1))
		if err != nil || !ok {
			t.Fatalf("object %d: ok=%v err=%v", i+1, ok, err)
		}
		if string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("object %d = %q", i+1, v)
		}
	}
	if s.NumObjects() != n {
		t.Fatalf("directory has %d entries, want %d", s.NumObjects(), n)
	}
}

func TestStoreCrashLosesUnflushed(t *testing.T) {
	s, _ := newStore(t)
	s.Write(1, []byte("durable"), 1)
	if err := s.FlushAll(); err != nil {
		t.Fatal(err)
	}
	s.Write(1, []byte("volatile"), 2)
	s.Write(2, []byte("new"), 3)
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := s.Read(1)
	if !ok || string(v) != "durable" {
		t.Fatalf("object 1 after crash: %q ok=%v", v, ok)
	}
	// Object 2 was never flushed: after the crash the directory may or
	// may not contain a reserved slot for it, but its value must be gone.
	if v, ok, _ := s.Read(2); ok && len(v) > 0 {
		t.Fatalf("object 2 survived crash with value %q", v)
	}
}

func TestStoreReloadRebuildsDirectory(t *testing.T) {
	disk := storage.NewMemDisk()
	pool := buffer.NewPool(disk, 64, nil)
	s, err := Open(pool, disk)
	if err != nil {
		t.Fatal(err)
	}
	s.Write(5, []byte("x"), 1)
	s.Write(6, []byte("y"), 2)
	if err := s.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// A second store over the same disk sees both objects.
	pool2 := buffer.NewPool(disk, 64, nil)
	s2, err := Open(pool2, disk)
	if err != nil {
		t.Fatal(err)
	}
	for obj, want := range map[wal.ObjectID]string{5: "x", 6: "y"} {
		v, ok, err := s2.Read(obj)
		if err != nil || !ok || string(v) != want {
			t.Fatalf("object %d: %q ok=%v err=%v", obj, v, ok, err)
		}
	}
}

func TestStoreRejectsOversizedValue(t *testing.T) {
	s, _ := newStore(t)
	if err := s.Write(1, make([]byte, storage.MaxValueSize+1), 1); err == nil {
		t.Fatal("oversized write accepted")
	}
}
