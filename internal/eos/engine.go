// Package eos implements an EOS-style NO-UNDO/REDO storage manager with
// delegation, per §3.7 of the paper.
//
// EOS avoids undo entirely by never applying a transaction's changes to
// the database until the transaction is ready to commit.  Each transaction
// accumulates its updates in a volatile *private log*; the *global log*
// holds only committed material.  On commit, the private log is written to
// the global log followed by a commit record and a flush, and only then
// are the values applied to the data pages.  On abort — or on a crash,
// which implicitly aborts everything active — the private log is simply
// discarded.
//
// Delegation with private logs ("rewriting history across different
// private logs"): restricted to read/write operations, compatible updates
// execute in isolation, so it suffices for the delegator to hand the
// delegatee an *image* of the object's current state at delegation time
// (§3.7).  The image entry is stored in the delegatee's private log — the
// delegation record at the delegatee — and the delegator *filters out* its
// own entries for the object, so a later commit of the delegator no longer
// publishes them.  The delegatee never needs the delegator again.
//
// Recovery is redo-only: a single forward sweep of the global log replays
// the entries of every transaction whose commit record made it to stable
// storage; entries with no following commit record (a crash mid-commit)
// are discarded.
package eos

import (
	"errors"
	"fmt"
	"sync"

	"ariesrh/internal/buffer"
	"ariesrh/internal/lock"
	"ariesrh/internal/object"
	"ariesrh/internal/storage"
	"ariesrh/internal/txn"
	"ariesrh/internal/wal"
)

// Errors returned by engine operations.
var (
	ErrNoSuchTxn      = errors.New("eos: no such transaction")
	ErrNotResponsible = errors.New("eos: delegator not responsible for object")
	ErrCrashed        = errors.New("eos: engine crashed; run Recover")
)

// entryKind discriminates private-log entries.
type entryKind uint8

const (
	// entryUpdate is a write performed by the owning transaction.
	entryUpdate entryKind = iota
	// entryImage is the object image received through a delegation.
	entryImage
)

// privEntry is one private-log entry.
type privEntry struct {
	kind entryKind
	obj  wal.ObjectID
	val  []byte
	// invoker is the transaction that originally wrote the value (for
	// images: the delegator at the time of hand-over); informational.
	invoker wal.TxID
}

// Stats counts engine activity.
type Stats struct {
	Begins         uint64
	Updates        uint64
	Reads          uint64
	Delegations    uint64
	Commits        uint64
	Aborts         uint64
	PrivateEntries uint64
	// Filtered counts delegated-away entries removed from delegator
	// private logs (the §3.7 commit-time filter, applied at delegation).
	Filtered uint64
	// GlobalRecords counts records published to the global log.
	GlobalRecords uint64

	RecForwardRecords uint64
	RecRedone         uint64
	RecDiscarded      uint64
	RecWinners        uint64
}

// Options configures an Engine.
type Options struct {
	PoolSize int
	LogDir   wal.Dir
	Disk     storage.DiskManager
}

// Engine is the EOS-style transaction manager.
type Engine struct {
	mu     sync.Mutex
	global *wal.Log
	disk   storage.DiskManager
	pool   *buffer.Pool
	store  *object.Store
	locks  *lock.Manager
	txns   *txn.Table

	private map[wal.TxID][]privEntry

	crashed bool
	stats   Stats
}

// New creates an engine over fresh or existing stable storage.
func New(opts Options) (*Engine, error) {
	if opts.PoolSize <= 0 {
		opts.PoolSize = 128
	}
	if opts.LogDir == nil {
		opts.LogDir = wal.NewMemDir()
	}
	if opts.Disk == nil {
		opts.Disk = storage.NewMemDisk()
	}
	log, err := wal.NewLog(opts.LogDir)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		global:  log,
		disk:    opts.Disk,
		locks:   lock.NewManager(),
		txns:    txn.NewTable(),
		private: make(map[wal.TxID][]privEntry),
	}
	// NO-UNDO: data pages only ever hold committed values, so evictions
	// need no WAL coupling beyond flushing the already-flushed global
	// log; pass the flush hook anyway for uniform accounting.
	e.pool = buffer.NewPool(opts.Disk, opts.PoolSize, func(lsn wal.LSN) error { return e.global.Flush(lsn) })
	e.store, err = object.Open(e.pool, opts.Disk)
	if err != nil {
		return nil, err
	}
	if log.Head() > 0 {
		e.crashed = true
		if err := e.Recover(); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Log exposes the global log for inspection.
func (e *Engine) Log() *wal.Log { return e.global }

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Begin starts a transaction.  Nothing is logged: the global log holds
// only committed material.
func (e *Engine) Begin() (wal.TxID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return wal.NilTx, ErrCrashed
	}
	info := e.txns.Begin()
	e.private[info.ID] = nil
	e.stats.Begins++
	return info.ID, nil
}

func (e *Engine) activeInfo(tx wal.TxID) (*txn.Info, error) {
	info := e.txns.Get(tx)
	if info == nil || info.Status != txn.Active {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchTxn, tx)
	}
	return info, nil
}

// Read returns tx's view of obj: its own latest private value (including
// delegated-in images) if any, else the committed database value.
func (e *Engine) Read(tx wal.TxID, obj wal.ObjectID) ([]byte, error) {
	e.mu.Lock()
	if e.crashed {
		e.mu.Unlock()
		return nil, ErrCrashed
	}
	if _, err := e.activeInfo(tx); err != nil {
		e.mu.Unlock()
		return nil, err
	}
	e.mu.Unlock()
	if err := e.locks.Acquire(tx, obj, lock.Shared); err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return nil, ErrCrashed
	}
	e.stats.Reads++
	if v, ok := e.privateView(tx, obj); ok {
		return v, nil
	}
	v, _, err := e.store.Read(obj)
	return v, err
}

// privateView returns tx's latest private value for obj, if any.
func (e *Engine) privateView(tx wal.TxID, obj wal.ObjectID) ([]byte, bool) {
	entries := e.private[tx]
	for i := len(entries) - 1; i >= 0; i-- {
		if entries[i].obj == obj {
			return append([]byte(nil), entries[i].val...), true
		}
	}
	return nil, false
}

// Update records update[tx, obj] ← val in tx's private log.  The database
// pages are untouched until commit (NO-UNDO).
func (e *Engine) Update(tx wal.TxID, obj wal.ObjectID, val []byte) error {
	if len(val) > storage.MaxValueSize {
		return fmt.Errorf("eos: value of %d bytes exceeds max %d", len(val), storage.MaxValueSize)
	}
	e.mu.Lock()
	if e.crashed {
		e.mu.Unlock()
		return ErrCrashed
	}
	if _, err := e.activeInfo(tx); err != nil {
		e.mu.Unlock()
		return err
	}
	e.mu.Unlock()
	if err := e.locks.Acquire(tx, obj, lock.Exclusive); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return ErrCrashed
	}
	if _, err := e.activeInfo(tx); err != nil {
		e.locks.ReleaseAll(tx) // stale grant for a dead tx
		return err
	}
	e.private[tx] = append(e.private[tx], privEntry{
		kind:    entryUpdate,
		obj:     obj,
		val:     append([]byte(nil), val...),
		invoker: tx,
	})
	e.stats.Updates++
	e.stats.PrivateEntries++
	return nil
}

// Delegate transfers responsibility for tor's state of obj to tee: tee's
// private log receives an image of tor's current view of the object, and
// tor's entries for obj are filtered out, so tor's commit or abort no
// longer affects them (§3.7).
func (e *Engine) Delegate(tor, tee wal.TxID, obj wal.ObjectID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return ErrCrashed
	}
	if _, err := e.activeInfo(tor); err != nil {
		return err
	}
	if _, err := e.activeInfo(tee); err != nil {
		return err
	}
	image, ok := e.privateView(tor, obj)
	if !ok {
		return fmt.Errorf("%w: t%d holds no private state for object %d", ErrNotResponsible, tor, obj)
	}
	// Filter tor's entries for obj out of its private log.
	kept := e.private[tor][:0]
	for _, en := range e.private[tor] {
		if en.obj == obj {
			e.stats.Filtered++
			continue
		}
		kept = append(kept, en)
	}
	e.private[tor] = kept
	// The delegatee stores the image — its delegation record.
	e.private[tee] = append(e.private[tee], privEntry{
		kind:    entryImage,
		obj:     obj,
		val:     image,
		invoker: tor,
	})
	e.stats.PrivateEntries++
	if _, held := e.locks.Holds(tor, obj); held {
		if err := e.locks.Share(tor, tee, obj); err != nil {
			return err
		}
	}
	e.stats.Delegations++
	return nil
}

// Commit publishes tx's private log: every entry is appended to the global
// log, followed by a commit record; the log is flushed through the commit
// record, and only then are the values applied to the data pages.
func (e *Engine) Commit(tx wal.TxID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return ErrCrashed
	}
	if _, err := e.activeInfo(tx); err != nil {
		return err
	}
	type applyItem struct {
		obj wal.ObjectID
		val []byte
		lsn wal.LSN
	}
	var toApply []applyItem
	for _, en := range e.private[tx] {
		lsn, err := e.global.Append(&wal.Record{
			Type:   wal.TypeUpdate,
			TxID:   tx,
			Object: en.obj,
			After:  en.val,
		})
		if err != nil {
			return err
		}
		e.stats.GlobalRecords++
		toApply = append(toApply, applyItem{obj: en.obj, val: en.val, lsn: lsn})
	}
	commitLSN, err := e.global.Append(&wal.Record{Type: wal.TypeCommit, TxID: tx})
	if err != nil {
		return err
	}
	e.stats.GlobalRecords++
	if err := e.global.Flush(commitLSN); err != nil {
		return err
	}
	// Apply after the flush: the pages only ever hold committed values.
	for _, item := range toApply {
		if err := e.store.Write(item.obj, item.val, item.lsn); err != nil {
			return err
		}
	}
	e.locks.ReleaseAll(tx)
	e.txns.Remove(tx)
	delete(e.private, tx)
	e.stats.Commits++
	return nil
}

// Abort discards tx's private log.  Nothing reached the database, so
// nothing is undone — that is the point of NO-UNDO.
func (e *Engine) Abort(tx wal.TxID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return ErrCrashed
	}
	if _, err := e.activeInfo(tx); err != nil {
		return err
	}
	e.locks.ReleaseAll(tx)
	e.txns.Remove(tx)
	delete(e.private, tx)
	e.stats.Aborts++
	return nil
}

// Crash simulates a failure: all private logs (and with them every active
// transaction) vanish; the global log keeps its flushed prefix.
func (e *Engine) Crash() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.global.Crash(); err != nil {
		return err
	}
	if err := e.store.Crash(); err != nil {
		return err
	}
	e.locks.Reset()
	e.txns.Reset(1)
	e.private = make(map[wal.TxID][]privEntry)
	e.crashed = true
	return nil
}

// Recover replays the global log: a single forward sweep redoes the
// entries of every transaction whose commit record is present; trailing
// entries without a commit record (crash mid-commit) are discarded.
func (e *Engine) Recover() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.crashed {
		return fmt.Errorf("eos: Recover called without a crash")
	}
	type pending struct {
		obj wal.ObjectID
		val []byte
		lsn wal.LSN
	}
	buffered := make(map[wal.TxID][]pending)
	applied := make(map[wal.ObjectID]wal.LSN)
	e.global.ResetReadCursor()
	err := e.global.Scan(1, wal.NilLSN, func(rec *wal.Record) (bool, error) {
		e.stats.RecForwardRecords++
		switch rec.Type {
		case wal.TypeUpdate:
			buffered[rec.TxID] = append(buffered[rec.TxID], pending{obj: rec.Object, val: rec.After, lsn: rec.LSN})
		case wal.TypeCommit:
			e.stats.RecWinners++
			for _, p := range buffered[rec.TxID] {
				la, ok := applied[p.obj]
				if !ok {
					pl, err := e.store.PageLSN(p.obj)
					if err != nil {
						return false, err
					}
					la = pl
					applied[p.obj] = la
				}
				if p.lsn <= la {
					continue
				}
				if err := e.store.Write(p.obj, p.val, p.lsn); err != nil {
					return false, err
				}
				applied[p.obj] = p.lsn
				e.stats.RecRedone++
			}
			delete(buffered, rec.TxID)
		default:
			return false, fmt.Errorf("eos: unexpected record %v in global log", rec.Type)
		}
		return true, nil
	})
	if err != nil {
		return err
	}
	for _, entries := range buffered {
		e.stats.RecDiscarded += uint64(len(entries))
	}
	e.crashed = false
	return nil
}

// ReadObject reads the committed value of obj without locking.
func (e *Engine) ReadObject(obj wal.ObjectID) ([]byte, bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return nil, false, ErrCrashed
	}
	return e.store.Read(obj)
}
