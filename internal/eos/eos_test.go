package eos

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"ariesrh/internal/wal"
)

func newEng(t *testing.T) *Engine {
	t.Helper()
	e, err := New(Options{PoolSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func begin(t *testing.T, e *Engine) wal.TxID {
	t.Helper()
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func update(t *testing.T, e *Engine, tx wal.TxID, obj wal.ObjectID, val string) {
	t.Helper()
	if err := e.Update(tx, obj, []byte(val)); err != nil {
		t.Fatalf("update: %v", err)
	}
}

func wantVal(t *testing.T, e *Engine, obj wal.ObjectID, want string) {
	t.Helper()
	v, ok, err := e.ReadObject(obj)
	if err != nil {
		t.Fatal(err)
	}
	if want == "" {
		if ok && len(v) > 0 {
			t.Fatalf("object %d = %q, want empty", obj, v)
		}
		return
	}
	if !ok || !bytes.Equal(v, []byte(want)) {
		t.Fatalf("object %d = %q (ok=%v), want %q", obj, v, ok, want)
	}
}

func crashRecover(t *testing.T, e *Engine) {
	t.Helper()
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}
}

func TestNoUndoUpdatesInvisibleUntilCommit(t *testing.T) {
	e := newEng(t)
	tx := begin(t, e)
	update(t, e, tx, 1, "pending")
	wantVal(t, e, 1, "") // not applied yet
	// The writer sees its own pending value.
	v, err := e.Read(tx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "pending" {
		t.Fatalf("own read = %q", v)
	}
	if err := e.Commit(tx); err != nil {
		t.Fatal(err)
	}
	wantVal(t, e, 1, "pending")
}

func TestAbortDiscardsPrivateLog(t *testing.T) {
	e := newEng(t)
	setup := begin(t, e)
	update(t, e, setup, 1, "base")
	if err := e.Commit(setup); err != nil {
		t.Fatal(err)
	}
	tx := begin(t, e)
	update(t, e, tx, 1, "junk")
	update(t, e, tx, 2, "junk")
	if err := e.Abort(tx); err != nil {
		t.Fatal(err)
	}
	wantVal(t, e, 1, "base")
	wantVal(t, e, 2, "")
	// Abort wrote nothing to the global log.
	if e.Log().Head() != 3 { // setup's 2 records + commit... 1 update + 1 commit = 2
		// setup wrote 1 update + 1 commit = LSN 2; tolerate either by
		// asserting no growth after abort below.
	}
	head := e.Log().Head()
	tx2 := begin(t, e)
	update(t, e, tx2, 3, "x")
	if err := e.Abort(tx2); err != nil {
		t.Fatal(err)
	}
	if e.Log().Head() != head {
		t.Fatal("abort appended to the global log")
	}
}

func TestDelegationImageTransfer(t *testing.T) {
	e := newEng(t)
	t1 := begin(t, e)
	t2 := begin(t, e)
	update(t, e, t1, 1, "delegated")
	if err := e.Delegate(t1, t2, 1); err != nil {
		t.Fatal(err)
	}
	// Delegator aborts; the image lives on with the delegatee.
	if err := e.Abort(t1); err != nil {
		t.Fatal(err)
	}
	v, err := e.Read(t2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "delegated" {
		t.Fatalf("delegatee view = %q", v)
	}
	if err := e.Commit(t2); err != nil {
		t.Fatal(err)
	}
	wantVal(t, e, 1, "delegated")
}

func TestDelegatorCommitFiltersDelegated(t *testing.T) {
	e := newEng(t)
	t1 := begin(t, e)
	t2 := begin(t, e)
	update(t, e, t1, 1, "delegated")
	update(t, e, t1, 2, "own")
	if err := e.Delegate(t1, t2, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(t1); err != nil {
		t.Fatal(err)
	}
	// t1's commit published only object 2; object 1 awaits t2's fate.
	wantVal(t, e, 1, "")
	wantVal(t, e, 2, "own")
	if err := e.Abort(t2); err != nil {
		t.Fatal(err)
	}
	wantVal(t, e, 1, "")
	if e.Stats().Filtered != 1 {
		t.Fatalf("filtered = %d, want 1", e.Stats().Filtered)
	}
}

func TestDelegationChain(t *testing.T) {
	e := newEng(t)
	t0 := begin(t, e)
	t1 := begin(t, e)
	t2 := begin(t, e)
	update(t, e, t0, 5, "chained")
	if err := e.Delegate(t0, t1, 5); err != nil {
		t.Fatal(err)
	}
	if err := e.Delegate(t1, t2, 5); err != nil {
		t.Fatal(err)
	}
	if err := e.Abort(t0); err != nil {
		t.Fatal(err)
	}
	if err := e.Abort(t1); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(t2); err != nil {
		t.Fatal(err)
	}
	wantVal(t, e, 5, "chained")
}

func TestDelegatePrecondition(t *testing.T) {
	e := newEng(t)
	t1 := begin(t, e)
	t2 := begin(t, e)
	if err := e.Delegate(t1, t2, 9); !errors.Is(err, ErrNotResponsible) {
		t.Fatalf("err = %v", err)
	}
	update(t, e, t1, 9, "v")
	if err := e.Delegate(t1, 99, 9); !errors.Is(err, ErrNoSuchTxn) {
		t.Fatalf("err = %v", err)
	}
}

func TestRecoveryRedoOnly(t *testing.T) {
	e := newEng(t)
	w := begin(t, e)
	update(t, e, w, 1, "keep")
	if err := e.Commit(w); err != nil {
		t.Fatal(err)
	}
	l := begin(t, e)
	update(t, e, l, 2, "lost-with-private-log")
	crashRecover(t, e)
	wantVal(t, e, 1, "keep")
	wantVal(t, e, 2, "")
	if e.Stats().RecWinners != 1 {
		t.Fatalf("winners = %d", e.Stats().RecWinners)
	}
}

func TestRecoveryDelegatedUpdateSurvivesViaWinner(t *testing.T) {
	e := newEng(t)
	t1 := begin(t, e)
	t2 := begin(t, e)
	update(t, e, t1, 1, "delegated")
	if err := e.Delegate(t1, t2, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(t2); err != nil {
		t.Fatal(err)
	}
	// t1 active at crash → implicitly aborted; delegated value persists.
	crashRecover(t, e)
	wantVal(t, e, 1, "delegated")
}

func TestRecoveryMidCommitDiscarded(t *testing.T) {
	// Entries flushed without their commit record must be discarded.
	e := newEng(t)
	tx := begin(t, e)
	update(t, e, tx, 1, "half")
	// Manually append the entry portion of a commit (no commit record)
	// to simulate a crash mid-commit.
	if _, err := e.Log().Append(&wal.Record{Type: wal.TypeUpdate, TxID: tx, Object: 1, After: []byte("half")}); err != nil {
		t.Fatal(err)
	}
	if err := e.Log().Flush(e.Log().Head()); err != nil {
		t.Fatal(err)
	}
	crashRecover(t, e)
	wantVal(t, e, 1, "")
	if e.Stats().RecDiscarded != 1 {
		t.Fatalf("discarded = %d, want 1", e.Stats().RecDiscarded)
	}
}

func TestRepeatedCrashes(t *testing.T) {
	e := newEng(t)
	for i := 0; i < 5; i++ {
		tx := begin(t, e)
		update(t, e, tx, wal.ObjectID(i+1), fmt.Sprintf("v%d", i))
		if err := e.Commit(tx); err != nil {
			t.Fatal(err)
		}
		crashRecover(t, e)
	}
	for i := 0; i < 5; i++ {
		wantVal(t, e, wal.ObjectID(i+1), fmt.Sprintf("v%d", i))
	}
}

func TestUpdateAfterDelegation(t *testing.T) {
	// §2.1.2: the delegator may keep writing the object after delegating;
	// the new writes form a fresh private responsibility.
	e := newEng(t)
	t1 := begin(t, e)
	t2 := begin(t, e)
	update(t, e, t1, 1, "first")
	if err := e.Delegate(t1, t2, 1); err != nil {
		t.Fatal(err)
	}
	update(t, e, t1, 1, "second")
	if err := e.Commit(t1); err != nil { // publishes "second"
		t.Fatal(err)
	}
	wantVal(t, e, 1, "second")
	if err := e.Commit(t2); err != nil { // publishes the image "first"
		t.Fatal(err)
	}
	// Commit order decides: the delegated image was published last.
	wantVal(t, e, 1, "first")
}
