package eos

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"ariesrh/internal/wal"
)

// eosOracle models EOS semantics directly: per-transaction pending
// overlays, delegation as image hand-over + filtering, commit as publish
// in commit order, abort/crash as discard.
type eosOracle struct {
	db      map[wal.ObjectID][]byte
	pending map[int]map[wal.ObjectID][]byte // slot → overlay (insertion order irrelevant: last value per object wins)
	order   map[int][]wal.ObjectID          // publish order per slot
}

func newEOSOracle() *eosOracle {
	return &eosOracle{
		db:      map[wal.ObjectID][]byte{},
		pending: map[int]map[wal.ObjectID][]byte{},
		order:   map[int][]wal.ObjectID{},
	}
}

func (o *eosOracle) begin(slot int) {
	o.pending[slot] = map[wal.ObjectID][]byte{}
	o.order[slot] = nil
}

func (o *eosOracle) view(slot int, obj wal.ObjectID) []byte {
	if v, ok := o.pending[slot][obj]; ok {
		return v
	}
	return o.db[obj]
}

func (o *eosOracle) update(slot int, obj wal.ObjectID, val []byte) {
	if _, seen := o.pending[slot][obj]; !seen {
		o.order[slot] = append(o.order[slot], obj)
	}
	o.pending[slot][obj] = append([]byte(nil), val...)
}

func (o *eosOracle) delegate(tor, tee int, obj wal.ObjectID) {
	image := o.view(tor, obj)
	// Filter from the delegator...
	delete(o.pending[tor], obj)
	kept := o.order[tor][:0]
	for _, ob := range o.order[tor] {
		if ob != obj {
			kept = append(kept, ob)
		}
	}
	o.order[tor] = kept
	// ...image to the delegatee.
	o.update(tee, obj, image)
}

func (o *eosOracle) commit(slot int) {
	for _, obj := range o.order[slot] {
		o.db[obj] = o.pending[slot][obj]
	}
	delete(o.pending, slot)
	delete(o.order, slot)
}

func (o *eosOracle) abort(slot int) {
	delete(o.pending, slot)
	delete(o.order, slot)
}

// TestEOSRandomTracesMatchOracle replays random legal EOS histories and
// compares committed state (and per-transaction views) with the oracle,
// including after a crash+recover at the end.
func TestEOSRandomTracesMatchOracle(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := newEng(t)
		oracle := newEOSOracle()
		ids := map[int]wal.TxID{}
		responsible := map[int]map[wal.ObjectID]bool{}
		holders := map[wal.ObjectID]map[int]bool{}
		var live []int
		nextSlot := 0

		beginSlot := func() {
			id, err := e.Begin()
			if err != nil {
				t.Fatal(err)
			}
			ids[nextSlot] = id
			responsible[nextSlot] = map[wal.ObjectID]bool{}
			oracle.begin(nextSlot)
			live = append(live, nextSlot)
			nextSlot++
		}
		removeLive := func(slot int) {
			for i, s := range live {
				if s == slot {
					live = append(live[:i], live[i+1:]...)
					break
				}
			}
			for _, hs := range holders {
				delete(hs, slot)
			}
		}

		for step := 0; step < 150; step++ {
			if len(live) == 0 || (len(live) < 4 && rng.Intn(5) == 0) {
				beginSlot()
				continue
			}
			slot := live[rng.Intn(len(live))]
			switch rng.Intn(10) {
			case 0: // commit
				if err := e.Commit(ids[slot]); err != nil {
					t.Fatal(err)
				}
				oracle.commit(slot)
				removeLive(slot)
			case 1: // abort
				if err := e.Abort(ids[slot]); err != nil {
					t.Fatal(err)
				}
				oracle.abort(slot)
				removeLive(slot)
			case 2: // delegate
				var objs []wal.ObjectID
				for obj := range responsible[slot] {
					objs = append(objs, obj)
				}
				if len(objs) == 0 || len(live) < 2 {
					continue
				}
				// smallest object for determinism
				min := objs[0]
				for _, o := range objs[1:] {
					if o < min {
						min = o
					}
				}
				tee := live[rng.Intn(len(live))]
				if tee == slot {
					continue
				}
				if err := e.Delegate(ids[slot], ids[tee], min); err != nil {
					t.Fatal(err)
				}
				oracle.delegate(slot, tee, min)
				delete(responsible[slot], min)
				responsible[tee][min] = true
				if holders[min] == nil {
					holders[min] = map[int]bool{}
				}
				holders[min][tee] = true
			default: // update (lock-safe)
				obj := wal.ObjectID(rng.Intn(20) + 1)
				if hs := holders[obj]; len(hs) > 0 && !hs[slot] {
					continue
				}
				val := []byte(fmt.Sprintf("s%d-%d", seed, step))
				if err := e.Update(ids[slot], obj, val); err != nil {
					t.Fatal(err)
				}
				oracle.update(slot, obj, val)
				responsible[slot][obj] = true
				if holders[obj] == nil {
					holders[obj] = map[int]bool{}
				}
				holders[obj][slot] = true
				// Views must match.
				got, err := e.Read(ids[slot], obj)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, oracle.view(slot, obj)) {
					t.Fatalf("seed %d step %d: view %q, oracle %q", seed, step, got, oracle.view(slot, obj))
				}
			}
		}
		// Crash: live transactions vanish (oracle: abort them).
		for _, slot := range live {
			oracle.abort(slot)
		}
		if err := e.Crash(); err != nil {
			t.Fatal(err)
		}
		if err := e.Recover(); err != nil {
			t.Fatal(err)
		}
		for obj := wal.ObjectID(1); obj <= 20; obj++ {
			want := oracle.db[obj]
			got, ok, err := e.ReadObject(obj)
			if err != nil {
				t.Fatal(err)
			}
			gotPresent := ok && len(got) > 0
			wantPresent := len(want) > 0
			if gotPresent != wantPresent || (wantPresent && !bytes.Equal(got, want)) {
				t.Fatalf("seed %d: object %d = %q (present=%v), want %q", seed, obj, got, gotPresent, want)
			}
		}
	}
}
