package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ariesrh/internal/wal"
)

// syncStore is a wal.Dir wrapper for flush-path fault injection: it
// counts device Sync calls, can gate them (each armed Sync blocks until
// the gate is closed), and can make them fail.  Arming happens after
// engine setup so the log-initialization syncs and test fixtures are not
// affected.
type syncStore struct {
	*wal.MemDir
	mu      sync.Mutex
	gated   bool
	failing bool
	syncs   int
	gate    chan struct{}
	entered chan struct{}
}

func newSyncStore() *syncStore {
	return &syncStore{
		MemDir:  wal.NewMemDir(),
		gate:    make(chan struct{}),
		entered: make(chan struct{}, 16),
	}
}

var errInjectedSync = errors.New("injected sync failure")

func (s *syncStore) Open(name string) (wal.Store, error) {
	dev, err := s.MemDir.Open(name)
	if err != nil {
		return nil, err
	}
	return &syncStoreDev{Store: dev, dir: s}, nil
}

type syncStoreDev struct {
	wal.Store
	dir *syncStore
}

func (d *syncStoreDev) Sync() error {
	s := d.dir
	s.mu.Lock()
	gated, failing := s.gated, s.failing
	if gated || failing {
		s.syncs++
	}
	s.mu.Unlock()
	if failing {
		return errInjectedSync
	}
	if gated {
		s.entered <- struct{}{}
		<-s.gate
	}
	return d.Store.Sync()
}

func (s *syncStore) arm(gated bool) { s.mu.Lock(); s.gated = gated; s.mu.Unlock() }
func (s *syncStore) fail(on bool)   { s.mu.Lock(); s.failing = on; s.mu.Unlock() }
func (s *syncStore) syncCount() int { s.mu.Lock(); defer s.mu.Unlock(); return s.syncs }

// TestAbortRoutesThroughGroupFlusher is the regression test for the abort
// flush bug left behind by the group-commit change: abortLocked kept
// calling the synchronous log.Flush while holding the engine latch,
// bypassing the coalesced flusher entirely.  Post-fix, an abort in
// group-commit mode must register a flush waiter (wal.FlushAsync) instead
// of performing its own latched sync; pre-fix this counter never moves
// for aborts.
func TestAbortRoutesThroughGroupFlusher(t *testing.T) {
	e, err := New(Options{GroupCommit: GroupCommitOn})
	if err != nil {
		t.Fatal(err)
	}
	tx := mustBegin(t, e)
	mustUpdate(t, e, tx, 1, "doomed")
	before := e.LogStats().FlushWaiters
	mustAbort(t, e, tx)
	after := e.LogStats().FlushWaiters
	if after != before+1 {
		t.Fatalf("FlushWaiters went %d -> %d across an abort; want exactly one coalesced-flush wait", before, after)
	}
	wantValue(t, e, 1, "")
}

// TestConcurrentAbortsCoalesceSyncs counts device syncs under concurrent
// aborts.  The first abort's leader sync is gated; while it is in flight
// every other abort must append its records and queue on the group
// flusher (off-latch), so releasing the gate lets one further sync cover
// all of them: N aborts, at most 2 syncs.  Pre-fix, each abort performed
// its own sync while holding the engine latch, serializing the aborts one
// device sync apart and never enqueueing a single flush waiter.
func TestConcurrentAbortsCoalesceSyncs(t *testing.T) {
	store := newSyncStore()
	e, err := New(Options{LogDir: store, GroupCommit: GroupCommitOn})
	if err != nil {
		t.Fatal(err)
	}
	const aborts = 4
	txs := make([]wal.TxID, aborts)
	for i := range txs {
		txs[i] = mustBegin(t, e)
		mustUpdate(t, e, txs[i], wal.ObjectID(i+1), fmt.Sprintf("doomed-%d", i))
	}
	waitersBefore := e.LogStats().FlushWaiters

	store.arm(true)
	var wg sync.WaitGroup
	errs := make([]error, aborts)
	for i := range txs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = e.Abort(txs[i])
		}(i)
	}

	// Wait for the leader to block inside its device sync, then for every
	// abort to have queued on the flusher.  Pre-fix code never enqueues a
	// waiter (each abort syncs under the latch), so this poll would hang;
	// the deadline turns that into a clean failure.
	deadline := time.After(5 * time.Second)
	select {
	case <-store.entered:
	case <-deadline:
		close(store.gate)
		t.Fatal("no gated sync started: aborts are not reaching the device via the group flusher")
	}
	for e.LogStats().FlushWaiters < waitersBefore+aborts {
		select {
		case <-deadline:
			close(store.gate)
			t.Fatalf("only %d/%d aborts queued on the group flusher (pre-fix aborts flush synchronously under the latch)",
				e.LogStats().FlushWaiters-waitersBefore, aborts)
		case <-time.After(time.Millisecond):
		}
	}
	close(store.gate)
	wg.Wait()
	store.arm(false)

	for i, err := range errs {
		if err != nil {
			t.Fatalf("abort %d: %v", i, err)
		}
	}
	if n := store.syncCount(); n >= aborts {
		t.Fatalf("%d aborts took %d device syncs; want coalescing (< %d)", aborts, n, aborts)
	}
	for i := range txs {
		wantValue(t, e, wal.ObjectID(i+1), "")
	}
}

// TestCommitFlushErrorRestoresBackwardChain is the regression test for
// the group-commit error path leaving info.LastLSN pointing at the
// never-flushed commit record after the flush failed.  The transaction is
// returned to Active, so a subsequent Abort writes CLRs — and pre-fix
// those CLRs chained off the dead commit record instead of the
// transaction's last update.  Post-fix the chain must head at the last
// update, and the abort/crash/recover sequence must leave the object
// clean.
func TestCommitFlushErrorRestoresBackwardChain(t *testing.T) {
	store := newSyncStore()
	e, err := New(Options{LogDir: store, GroupCommit: GroupCommitOn})
	if err != nil {
		t.Fatal(err)
	}
	tx := mustBegin(t, e)
	mustUpdate(t, e, tx, 7, "not durable")
	updateLSN := e.Log().Head()

	store.fail(true)
	cerr := e.Commit(tx)
	store.fail(false)
	if !errors.Is(cerr, errInjectedSync) {
		t.Fatalf("Commit error = %v, want injected sync failure", cerr)
	}

	// The transaction is back to Active and its backward chain heads at
	// the update, not at the unflushed commit record.
	info := e.txns.Get(tx)
	if info == nil {
		t.Fatal("transaction vanished after failed commit")
	}
	if info.LastLSN != updateLSN {
		t.Fatalf("LastLSN = %d after failed commit, want %d (the last update; the commit record was never flushed)",
			info.LastLSN, updateLSN)
	}

	// Aborting now must chain the CLR off the update.
	mustAbort(t, e, tx)
	var clr *wal.Record
	head := e.Log().Head()
	for k := updateLSN; k <= head; k++ {
		rec, err := e.Log().Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Type == wal.TypeCLR && rec.Compensates == updateLSN {
			clr = rec
			break
		}
	}
	if clr == nil {
		t.Fatal("no CLR compensating the update after abort")
	}
	if clr.PrevLSN != updateLSN {
		t.Fatalf("CLR.PrevLSN = %d, want %d (pre-fix it points at the never-flushed commit record)",
			clr.PrevLSN, updateLSN)
	}

	// End-to-end: crash and recover; the aborted update must stay undone.
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}
	wantValue(t, e, 7, "")
}
