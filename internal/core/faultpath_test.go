package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ariesrh/internal/fault"
	"ariesrh/internal/wal"
)

// TestPersistentSyncErrorReleasesAllFlushWaiters is the regression test
// for the group-commit flush-waiter audit: when the leader's sync fails
// persistently, EVERY queued waiter must be woken with the error — none
// may be left parked on its channel — and the engine must land in
// queryable read-only degraded mode rather than wedging or panicking.
func TestPersistentSyncErrorReleasesAllFlushWaiters(t *testing.T) {
	store := fault.NewDir(fault.Plan{})
	e, err := New(Options{LogDir: store, GroupCommit: GroupCommitOn})
	if err != nil {
		t.Fatal(err)
	}

	// Some committed-and-durable work the degraded engine must keep serving.
	setup := mustBegin(t, e)
	mustUpdate(t, e, setup, 1000, "durable")
	if err := e.Commit(setup); err != nil {
		t.Fatal(err)
	}

	const committers = 6
	txs := make([]wal.TxID, committers)
	for i := range txs {
		txs[i] = mustBegin(t, e)
		mustUpdate(t, e, txs[i], wal.ObjectID(i+1), fmt.Sprintf("doomed-%d", i))
	}

	store.SetFailAllSyncs(true)
	errs := make([]error, committers)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := range txs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = e.Commit(txs[i])
		}(i)
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("committers still blocked after 30s: flush waiters leaked on persistent leader sync error")
	}
	for i, cerr := range errs {
		if cerr == nil {
			t.Fatalf("committer %d succeeded against a dead device", i)
		}
		if !errors.Is(cerr, fault.ErrDeviceFailed) && !errors.Is(cerr, ErrDegraded) {
			t.Fatalf("committer %d error = %v, want the device failure or ErrDegraded", i, cerr)
		}
	}

	// The WAL spent its retry budget before surfacing anything.
	stats := e.LogStats()
	if stats.FlushRetries == 0 {
		t.Fatal("no flush retries recorded; the bounded-backoff path went unexercised")
	}
	if stats.FlushErrors == 0 {
		t.Fatal("no flush errors recorded despite a dead device")
	}

	// Degraded, not crashed — and the state says why.
	h := e.Health()
	if h.State != StateDegraded {
		t.Fatalf("Health = %v, want degraded", h.State)
	}
	if h.Err == nil {
		t.Fatal("degraded Health carries no cause")
	}

	// Reads still serve; mutations are rejected with ErrDegraded.
	if v, ok, err := e.ReadObject(1000); err != nil || !ok || string(v) != "durable" {
		t.Fatalf("read in degraded mode = %q/%v/%v, want the committed value", v, ok, err)
	}
	if _, err := e.Begin(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Begin in degraded mode = %v, want ErrDegraded", err)
	}
	if err := e.Update(txs[0], 1, []byte("x")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Update in degraded mode = %v, want ErrDegraded", err)
	}
	// Abort is the sanctioned way out for the failed committers: it needs
	// no new durable bytes and must succeed (releasing locks) even now.
	if err := e.Abort(txs[0]); err != nil {
		t.Fatalf("Abort in degraded mode = %v, want success", err)
	}
	if got := e.Metrics().Gauge("core.degraded"); got != 1 {
		t.Fatalf("core.degraded gauge = %d, want 1", got)
	}

	// Heal the device, crash (dropping unsynced bytes, as a real restart
	// would) and recover: the engine is healthy again, committed work
	// survives, the never-acknowledged commits do not.
	store.SetFailAllSyncs(false)
	if _, err := store.CrashNow(); err != nil {
		t.Fatal(err)
	}
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}
	if h := e.Health(); h.State != StateHealthy {
		t.Fatalf("Health after recovery = %v, want healthy", h.State)
	}
	wantValue(t, e, 1000, "durable")
	for i := 0; i < committers; i++ {
		wantValue(t, e, wal.ObjectID(i+1), "")
	}
	if _, err := e.Begin(); err != nil {
		t.Fatalf("Begin after recovery = %v, want success", err)
	}
	if got := e.Metrics().Gauge("core.degraded"); got != 0 {
		t.Fatalf("core.degraded gauge = %d after recovery, want 0", got)
	}
}

// TestDegradedAbortWithoutForce pins the synchronous-path half of the
// abort contract: with GroupCommitOff and a dead device, Abort still
// completes (undo applied, locks released) and degrades the engine
// instead of failing.
func TestDegradedAbortWithoutForce(t *testing.T) {
	store := fault.NewDir(fault.Plan{})
	e, err := New(Options{LogDir: store, GroupCommit: GroupCommitOff})
	if err != nil {
		t.Fatal(err)
	}
	tx := mustBegin(t, e)
	mustUpdate(t, e, tx, 7, "undo me")

	store.SetFailAllSyncs(true)
	if err := e.Abort(tx); err != nil {
		t.Fatalf("Abort on dead device = %v, want success (aborts need no durability)", err)
	}
	wantValue(t, e, 7, "")
	if h := e.Health(); h.State != StateDegraded {
		t.Fatalf("Health = %v, want degraded after the failed abort force", h.State)
	}
}
