package core

import (
	"fmt"
	"testing"

	"ariesrh/internal/storage"
	"ariesrh/internal/wal"
)

func crashAndRecover(t *testing.T, e *Engine) {
	t.Helper()
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryCommittedSurvivesCrash(t *testing.T) {
	e := newEngine(t)
	tx := mustBegin(t, e)
	mustUpdate(t, e, tx, 1, "durable")
	mustCommit(t, e, tx)
	crashAndRecover(t, e)
	wantValue(t, e, 1, "durable")
}

func TestRecoveryUncommittedRolledBack(t *testing.T) {
	e := newEngine(t)
	setup := mustBegin(t, e)
	mustUpdate(t, e, setup, 1, "base")
	mustCommit(t, e, setup)

	tx := mustBegin(t, e)
	mustUpdate(t, e, tx, 1, "dirty")
	mustUpdate(t, e, tx, 2, "junk")
	// No commit: crash loses the unflushed tail... but the updates may
	// have been flushed by pool pressure; force the worst case by
	// flushing the log explicitly (steal policy).
	if err := e.Log().Flush(e.Log().Head()); err != nil {
		t.Fatal(err)
	}
	crashAndRecover(t, e)
	wantValue(t, e, 1, "base")
	wantValue(t, e, 2, "")
}

func TestRecoveryUnflushedCommittedLost(t *testing.T) {
	// A transaction whose commit record never reached stable storage is
	// a loser: its updates must not survive.
	e := newEngine(t)
	tx := mustBegin(t, e)
	mustUpdate(t, e, tx, 1, "phantom")
	// Commit flushes; instead simulate the crash BEFORE commit.
	crashAndRecover(t, e)
	wantValue(t, e, 1, "")
	// The engine accepts new work after recovery.
	tx2 := mustBegin(t, e)
	mustUpdate(t, e, tx2, 1, "fresh")
	mustCommit(t, e, tx2)
	wantValue(t, e, 1, "fresh")
}

// TestRecoveryDelegationWinner is the heart of ARIES/RH: an update whose
// invoking transaction aborted/crashed survives because it was delegated
// to a transaction that committed before the crash.
func TestRecoveryDelegationWinner(t *testing.T) {
	e := newEngine(t)
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	mustUpdate(t, e, t1, 1, "delegated")
	mustDelegate(t, e, t1, t2, 1)
	mustCommit(t, e, t2)
	// t1 never commits; crash.
	crashAndRecover(t, e)
	wantValue(t, e, 1, "delegated")
}

// TestRecoveryDelegationLoser: the dual — the invoker committed, but the
// final delegatee is a loser, so the update is obliterated.
func TestRecoveryDelegationLoser(t *testing.T) {
	e := newEngine(t)
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	mustUpdate(t, e, t1, 1, "doomed")
	mustDelegate(t, e, t1, t2, 1)
	mustCommit(t, e, t1)
	// t2 active at crash time → loser.
	crashAndRecover(t, e)
	wantValue(t, e, 1, "")
}

func TestRecoveryDelegationChainAcrossCrash(t *testing.T) {
	e := newEngine(t)
	t0 := mustBegin(t, e)
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	mustUpdate(t, e, t0, 5, "chained")
	mustUpdate(t, e, t0, 6, "undelegated")
	mustDelegate(t, e, t0, t1, 5)
	mustDelegate(t, e, t1, t2, 5)
	mustCommit(t, e, t2)
	// t0 and t1 are losers.
	crashAndRecover(t, e)
	wantValue(t, e, 5, "chained") // final delegatee committed
	wantValue(t, e, 6, "")        // t0's own update rolled back
}

func TestRecoveryPaperExample2(t *testing.T) {
	// Example 2 with a crash instead of explicit terminations: t1
	// committed (first update survives), t2 active at crash (second
	// update undone), t committed.
	e := newEngine(t)
	tt := mustBegin(t, e)
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	const ob = 7
	mustUpdate(t, e, tt, ob, "first")
	mustDelegate(t, e, tt, t1, ob)
	mustUpdate(t, e, tt, ob, "second")
	mustDelegate(t, e, tt, t2, ob)
	mustCommit(t, e, tt)
	mustCommit(t, e, t1)
	crashAndRecover(t, e)
	wantValue(t, e, ob, "first")
}

func TestRecoveryWithCheckpoint(t *testing.T) {
	e := newEngine(t)
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	mustUpdate(t, e, t1, 1, "delegated")
	mustDelegate(t, e, t1, t2, 1)
	mustUpdate(t, e, t2, 2, "own")
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustUpdate(t, e, t2, 3, "after-ckpt")
	mustCommit(t, e, t2)
	// t1 is a loser; everything t2 was responsible for must survive,
	// including the delegated update recorded only via the checkpointed
	// scope state.
	crashAndRecover(t, e)
	wantValue(t, e, 1, "delegated")
	wantValue(t, e, 2, "own")
	wantValue(t, e, 3, "after-ckpt")
}

func TestRecoveryCheckpointLoserScopes(t *testing.T) {
	// The loser's delegated-in scopes cross a checkpoint: recovery must
	// undo updates that precede the checkpoint using the checkpointed
	// object lists.
	e := newEngine(t)
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	mustUpdate(t, e, t1, 1, "doomed")
	mustDelegate(t, e, t1, t2, 1)
	mustCommit(t, e, t1)
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustUpdate(t, e, t2, 2, "also-doomed")
	// Flush so the loser updates are stably logged, then crash.
	if err := e.Log().Flush(e.Log().Head()); err != nil {
		t.Fatal(err)
	}
	crashAndRecover(t, e)
	wantValue(t, e, 1, "")
	wantValue(t, e, 2, "")
}

func TestRecoveryAbortedBeforeCrashStaysRolledBack(t *testing.T) {
	e := newEngine(t)
	setup := mustBegin(t, e)
	mustUpdate(t, e, setup, 1, "base")
	mustCommit(t, e, setup)
	tx := mustBegin(t, e)
	mustUpdate(t, e, tx, 1, "junk")
	mustAbort(t, e, tx)
	crashAndRecover(t, e)
	wantValue(t, e, 1, "base")
}

func TestRecoveryCrashDuringRecovery(t *testing.T) {
	// Crash, recover partially (simulated by crashing immediately after
	// recovery completes and once more before), recover again: the CLRs
	// and compensated-set logic must keep undo idempotent.
	e := newEngine(t)
	setup := mustBegin(t, e)
	mustUpdate(t, e, setup, 1, "base")
	mustCommit(t, e, setup)
	tx := mustBegin(t, e)
	mustUpdate(t, e, tx, 1, "dirty")
	if err := e.Log().Flush(e.Log().Head()); err != nil {
		t.Fatal(err)
	}
	crashAndRecover(t, e) // first recovery rolls tx back, writes CLRs
	crashAndRecover(t, e) // second recovery must not double-undo
	crashAndRecover(t, e)
	wantValue(t, e, 1, "base")
}

func TestRecoveryIdempotentRedo(t *testing.T) {
	// Repeated crash/recover cycles leave committed state intact.
	e := newEngine(t)
	tx := mustBegin(t, e)
	for i := 1; i <= 20; i++ {
		mustUpdate(t, e, tx, wal.ObjectID(i%5+1), fmt.Sprintf("v%d", i))
	}
	mustCommit(t, e, tx)
	for i := 0; i < 3; i++ {
		crashAndRecover(t, e)
	}
	wantValue(t, e, 1, "v20")
	wantValue(t, e, 5, "v19")
}

func TestRecoveryReopenFromStores(t *testing.T) {
	// A brand-new engine over the same stable stores (process restart
	// rather than in-process crash) must recover identically.
	logDir := wal.NewMemDir()
	master := wal.NewMemStore()
	disk := storage.NewMemDisk()
	e, err := New(Options{PoolSize: 16, LogDir: logDir, Disk: disk, MasterStore: master})
	if err != nil {
		t.Fatal(err)
	}
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	mustUpdate(t, e, t1, 1, "delegated")
	mustDelegate(t, e, t1, t2, 1)
	mustCommit(t, e, t2)
	mustUpdate(t, e, t1, 2, "loser")
	if err := e.Log().Flush(e.Log().Head()); err != nil {
		t.Fatal(err)
	}
	// "Restart": open a second engine over the same stores.
	e2, err := New(Options{PoolSize: 16, LogDir: logDir, Disk: disk, MasterStore: master})
	if err != nil {
		t.Fatal(err)
	}
	wantValue(t, e2, 1, "delegated")
	wantValue(t, e2, 2, "")
}

func TestRecoveryStatsShape(t *testing.T) {
	e := newEngine(t)
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	mustUpdate(t, e, t1, 1, "a")
	mustDelegate(t, e, t1, t2, 1)
	mustCommit(t, e, t2)
	mustUpdate(t, e, t1, 2, "b")
	if err := e.Log().Flush(e.Log().Head()); err != nil {
		t.Fatal(err)
	}
	crashAndRecover(t, e)
	s := e.Stats()
	if s.RecWinners != 1 || s.RecLosers != 1 {
		t.Fatalf("winners=%d losers=%d", s.RecWinners, s.RecLosers)
	}
	if s.RecCLRs != 1 {
		t.Fatalf("recovery CLRs = %d, want 1 (only t1's own update)", s.RecCLRs)
	}
	if s.RecForwardRecords == 0 || s.RecRedone == 0 {
		t.Fatalf("forward pass stats empty: %+v", s)
	}
}

func TestCrashRejectsOperationsUntilRecover(t *testing.T) {
	e := newEngine(t)
	tx := mustBegin(t, e)
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Begin(); err != ErrCrashed {
		t.Fatalf("Begin err = %v", err)
	}
	if err := e.Update(tx, 1, []byte("x")); err != ErrCrashed {
		t.Fatalf("Update err = %v", err)
	}
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Begin(); err != nil {
		t.Fatal(err)
	}
	// Recover without a crash is an error.
	if err := e.Recover(); err == nil {
		t.Fatal("double Recover accepted")
	}
}

func TestRecoveryManyObjectsManyTxns(t *testing.T) {
	e := newEngine(t)
	committedVals := map[wal.ObjectID]string{}
	// Interleave 10 committed and 10 crashed transactions over 50 objects.
	for round := 0; round < 10; round++ {
		winner := mustBegin(t, e)
		loser := mustBegin(t, e)
		for i := 0; i < 5; i++ {
			wObj := wal.ObjectID(round*5 + i + 1)
			lObj := wal.ObjectID(round*5 + i + 1 + 500)
			wv := fmt.Sprintf("w%d-%d", round, i)
			mustUpdate(t, e, winner, wObj, wv)
			committedVals[wObj] = wv
			mustUpdate(t, e, loser, lObj, "junk")
		}
		mustCommit(t, e, winner)
		// losers stay active
	}
	if err := e.Log().Flush(e.Log().Head()); err != nil {
		t.Fatal(err)
	}
	crashAndRecover(t, e)
	for obj, want := range committedVals {
		wantValue(t, e, obj, want)
	}
	for obj := wal.ObjectID(501); obj <= 550; obj++ {
		wantValue(t, e, obj, "")
	}
}

func TestRecoverRetryWithoutCrashAfterInjectedFailure(t *testing.T) {
	// A failed recovery attempt must be retryable directly: the second
	// Recover starts from a clean slate instead of double-applying
	// delegations onto the half-built tables.
	e := newEngine(t)
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	mustUpdate(t, e, t1, 1, "delegated")
	mustDelegate(t, e, t1, t2, 1)
	mustCommit(t, e, t2)
	mustUpdate(t, e, t1, 2, "loser-a")
	mustUpdate(t, e, t1, 3, "loser-b")
	if err := e.Log().Flush(e.Log().Head()); err != nil {
		t.Fatal(err)
	}
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	e.SetRecoveryFailpoint(1)
	if err := e.Recover(); err == nil {
		t.Fatal("failpoint did not fire")
	}
	// Retry WITHOUT another Crash.
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}
	wantValue(t, e, 1, "delegated")
	wantValue(t, e, 2, "")
	wantValue(t, e, 3, "")
}
