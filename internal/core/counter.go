package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ariesrh/internal/lock"
	"ariesrh/internal/wal"
)

// Counters are objects holding an 8-byte little-endian signed integer,
// mutated with Increment — the paper's example of commuting updates
// (§2.1.1 "not all update operations conflict"; §3.4 "non-conflicting
// updates, e.g., increments of a counter").  Increments by different
// transactions may interleave on one object: the lock manager grants
// compatible Increment locks, the log records a logical delta, and undo
// applies the negated delta instead of restoring a physical before-image —
// physical images would be wrong once another transaction's increment
// lands in between.
//
// Delegation composes: an increment's scope travels exactly like an
// update's, so delegated increments follow their final delegatee's fate.

// ErrNotCounter is returned when Increment meets an object whose value is
// not a counter.
var ErrNotCounter = errors.New("core: object is not a counter")

// DecodeCounter interprets an object value as a counter (absent/empty
// values read as 0).
func DecodeCounter(v []byte) (int64, error) {
	switch len(v) {
	case 0:
		return 0, nil
	case 8:
		return int64(binary.LittleEndian.Uint64(v)), nil
	default:
		return 0, fmt.Errorf("%w: value is %d bytes", ErrNotCounter, len(v))
	}
}

// EncodeCounter renders a counter value as an object value.
func EncodeCounter(v int64) []byte {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, uint64(v))
	return out
}

// Increment adds delta to the counter obj under an Increment lock and
// returns the new value.  Concurrent increments by other transactions are
// permitted; reads and plain updates still conflict.
func (e *Engine) Increment(tx wal.TxID, obj wal.ObjectID, delta int64) (int64, error) {
	e.mu.Lock()
	if err := e.writableLocked(); err != nil {
		e.mu.Unlock()
		return 0, err
	}
	if _, err := e.activeInfo(tx); err != nil {
		e.mu.Unlock()
		return 0, err
	}
	e.mu.Unlock()

	if err := e.locks.Acquire(tx, obj, lock.Increment); err != nil {
		return 0, err
	}

	// See Update: take the page fault before re-acquiring the latch.
	e.store.Prefetch(obj)

	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.writableLocked(); err != nil {
		return 0, err
	}
	info, err := e.activeAfterLockLocked(tx)
	if err != nil {
		return 0, err
	}
	e.noteViolationsLocked(tx, obj, lock.Increment)
	curBytes, _, err := e.store.Read(obj)
	if err != nil {
		return 0, err
	}
	cur, err := DecodeCounter(curBytes)
	if err != nil {
		return 0, err
	}
	rec := &wal.Record{
		Type:    wal.TypeIncrement,
		TxID:    tx,
		PrevLSN: info.LastLSN,
		Object:  obj,
		Delta:   delta,
	}
	lsn, err := e.log.Append(rec)
	if err != nil {
		return 0, err
	}
	// As in Update: finish the volatile bookkeeping before the page write
	// so a write failure leaves the tables consistent with the log.
	e.state[tx].RecordUpdate(tx, obj, lsn)
	info.LastLSN = lsn
	next := cur + delta
	if err := e.store.Write(obj, EncodeCounter(next), lsn); err != nil {
		return 0, err
	}
	e.stats.Updates++
	return next, nil
}

// ReadCounter returns tx's view of the counter obj under a shared lock.
func (e *Engine) ReadCounter(tx wal.TxID, obj wal.ObjectID) (int64, error) {
	v, err := e.Read(tx, obj)
	if err != nil {
		return 0, err
	}
	return DecodeCounter(v)
}

// CounterValue reads the counter without locking; tool/test helper.
func (e *Engine) CounterValue(obj wal.ObjectID) (int64, error) {
	v, _, err := e.ReadObject(obj)
	if err != nil {
		return 0, err
	}
	return DecodeCounter(v)
}

// undoIncrement compensates an increment logically: a CLR carrying the
// negated delta is logged and applied.
func (e *Engine) undoIncrement(owner wal.TxID, rec *wal.Record) error {
	return e.undoIncrementInto(owner, rec, &e.stats)
}

// undoIncrementInto is undoIncrement with an explicit stats sink; see
// undoUpdateInto.
func (e *Engine) undoIncrementInto(owner wal.TxID, rec *wal.Record, st *Stats) error {
	info := e.txns.Get(owner)
	prev := wal.NilLSN
	if info != nil {
		prev = info.LastLSN
	}
	clr := &wal.Record{
		Type:        wal.TypeCLR,
		TxID:        owner,
		PrevLSN:     prev,
		Object:      rec.Object,
		UndoNextLSN: rec.PrevLSN,
		Compensates: rec.LSN,
		Logical:     true,
		Delta:       -rec.Delta,
	}
	lsn, err := e.log.Append(clr)
	if err != nil {
		return err
	}
	if err := e.applyDelta(rec.Object, clr.Delta, lsn); err != nil {
		return err
	}
	if info != nil {
		info.LastLSN = lsn
	}
	st.CLRs++
	e.met.clrs.Inc()
	return nil
}

// applyDelta adds delta to the stored counter, stamping the page with lsn.
func (e *Engine) applyDelta(obj wal.ObjectID, delta int64, lsn wal.LSN) error {
	curBytes, _, err := e.store.Read(obj)
	if err != nil {
		return err
	}
	cur, err := DecodeCounter(curBytes)
	if err != nil {
		return err
	}
	return e.store.Write(obj, EncodeCounter(cur+delta), lsn)
}
