package core

import (
	"bytes"
	"errors"
	"testing"

	"ariesrh/internal/wal"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(Options{PoolSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func mustBegin(t *testing.T, e *Engine) wal.TxID {
	t.Helper()
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func mustUpdate(t *testing.T, e *Engine, tx wal.TxID, obj wal.ObjectID, val string) {
	t.Helper()
	if err := e.Update(tx, obj, []byte(val)); err != nil {
		t.Fatalf("update t%d obj %d: %v", tx, obj, err)
	}
}

func mustDelegate(t *testing.T, e *Engine, tor, tee wal.TxID, obj wal.ObjectID) {
	t.Helper()
	if err := e.Delegate(tor, tee, obj); err != nil {
		t.Fatalf("delegate(t%d, t%d, %d): %v", tor, tee, obj, err)
	}
}

func mustCommit(t *testing.T, e *Engine, tx wal.TxID) {
	t.Helper()
	if err := e.Commit(tx); err != nil {
		t.Fatalf("commit t%d: %v", tx, err)
	}
}

func mustAbort(t *testing.T, e *Engine, tx wal.TxID) {
	t.Helper()
	if err := e.Abort(tx); err != nil {
		t.Fatalf("abort t%d: %v", tx, err)
	}
}

func wantValue(t *testing.T, e *Engine, obj wal.ObjectID, want string) {
	t.Helper()
	v, ok, err := e.ReadObject(obj)
	if err != nil {
		t.Fatal(err)
	}
	if want == "" {
		if ok && len(v) > 0 {
			t.Fatalf("object %d = %q, want absent/empty", obj, v)
		}
		return
	}
	if !ok || !bytes.Equal(v, []byte(want)) {
		t.Fatalf("object %d = %q (ok=%v), want %q", obj, v, ok, want)
	}
}

func TestCommitMakesUpdatesVisible(t *testing.T) {
	e := newEngine(t)
	tx := mustBegin(t, e)
	mustUpdate(t, e, tx, 1, "hello")
	mustCommit(t, e, tx)
	wantValue(t, e, 1, "hello")
}

func TestAbortRestoresBeforeImages(t *testing.T) {
	e := newEngine(t)
	setup := mustBegin(t, e)
	mustUpdate(t, e, setup, 1, "base")
	mustCommit(t, e, setup)

	tx := mustBegin(t, e)
	mustUpdate(t, e, tx, 1, "dirty")
	mustUpdate(t, e, tx, 2, "new")
	mustAbort(t, e, tx)
	wantValue(t, e, 1, "base")
	wantValue(t, e, 2, "")
	if e.Stats().CLRs != 2 {
		t.Fatalf("CLRs = %d, want 2", e.Stats().CLRs)
	}
}

func TestAbortUndoesInReverseOrder(t *testing.T) {
	e := newEngine(t)
	tx := mustBegin(t, e)
	mustUpdate(t, e, tx, 1, "v1")
	mustUpdate(t, e, tx, 1, "v2")
	mustUpdate(t, e, tx, 1, "v3")
	mustAbort(t, e, tx)
	wantValue(t, e, 1, "")
}

// TestFigure2Interpretation replays the log of §3.1 Example 1 / Figure 2
// and checks that ARIES/RH achieves the "after rewriting" picture by
// interpretation: the log records still carry t1's transaction ID, but
// ResponsibleTr for t1's updates to a is t2.
func TestFigure2Interpretation(t *testing.T) {
	e := newEngine(t)
	t1 := mustBegin(t, e) // log LSN 1
	t2 := mustBegin(t, e) // log LSN 2
	const a, b, x, y = 100, 101, 102, 103
	mustUpdate(t, e, t1, a, "1") // LSN 3: update[t1, a]
	mustUpdate(t, e, t2, x, "2") // LSN 4: update[t2, x]
	// t2 updates a: needs t1's X lock... in the paper's example the
	// updates commute; here t1 delegates nothing yet, so have t1 release
	// by delegating a to t2 later.  Use distinct objects to keep the
	// figure's shape: t2's update of a happens after t1's delegation in
	// lock terms, so this test exercises the scope bookkeeping on b/y
	// and the delegated object a.
	mustUpdate(t, e, t1, b, "3")  // LSN 5: update[t1, b]
	mustUpdate(t, e, t1, a, "4")  // LSN 6: update[t1, a]
	mustUpdate(t, e, t2, y, "5")  // LSN 7: update[t2, y]
	mustDelegate(t, e, t1, t2, a) // LSN 8: delegate(t1 -> t2, a)

	// The log itself is NOT rewritten: records 3 and 6 still carry t1.
	for _, lsn := range []wal.LSN{3, 6} {
		rec, err := e.Log().Get(lsn)
		if err != nil {
			t.Fatal(err)
		}
		if rec.TxID != t1 {
			t.Fatalf("record %d physically rewritten to t%d", lsn, rec.TxID)
		}
	}
	// But the interpretation says t2 is responsible for them now...
	for _, lsn := range []wal.LSN{3, 6} {
		owner, err := e.ResponsibleFor(lsn)
		if err != nil {
			t.Fatal(err)
		}
		if owner != t2 {
			t.Fatalf("ResponsibleTr(record %d) = t%d, want t%d", lsn, owner, t2)
		}
	}
	// ...while t1 keeps responsibility for its update of b.
	owner, err := e.ResponsibleFor(5)
	if err != nil {
		t.Fatal(err)
	}
	if owner != t1 {
		t.Fatalf("ResponsibleTr(record 5) = t%d, want t%d", owner, t1)
	}
}

// TestPaperExample2 runs §3.4 Example 2 end to end: t updates ob,
// delegates to t1, updates ob again, delegates to t2; then t2 aborts and
// t1 commits.  The first update must persist, the second must be undone —
// "regardless of t's fate".
func TestPaperExample2(t *testing.T) {
	for _, tFate := range []string{"commit", "abort", "active"} {
		t.Run("t_"+tFate, func(t *testing.T) {
			e := newEngine(t)
			tt := mustBegin(t, e)
			t1 := mustBegin(t, e)
			t2 := mustBegin(t, e)
			const ob = 7
			mustUpdate(t, e, tt, ob, "first")
			mustDelegate(t, e, tt, t1, ob)
			mustUpdate(t, e, tt, ob, "second")
			mustDelegate(t, e, tt, t2, ob)
			switch tFate {
			case "commit":
				mustCommit(t, e, tt)
			case "abort":
				mustAbort(t, e, tt)
			}
			mustAbort(t, e, t2) // second update undone → back to "first"
			wantValue(t, e, ob, "first")
			mustCommit(t, e, t1) // first update committed
			wantValue(t, e, ob, "first")
		})
	}
}

func TestDelegatorAbortDoesNotUndoDelegated(t *testing.T) {
	e := newEngine(t)
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	mustUpdate(t, e, t1, 1, "delegated")
	mustUpdate(t, e, t1, 2, "kept")
	mustDelegate(t, e, t1, t2, 1)
	mustAbort(t, e, t1)
	// Object 1's update survives t1's abort — t2 is responsible now.
	wantValue(t, e, 1, "delegated")
	wantValue(t, e, 2, "")
	mustCommit(t, e, t2)
	wantValue(t, e, 1, "delegated")
}

func TestDelegateeAbortUndoesReceivedUpdates(t *testing.T) {
	e := newEngine(t)
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	mustUpdate(t, e, t1, 1, "doomed")
	mustDelegate(t, e, t1, t2, 1)
	mustCommit(t, e, t1) // invoker commits...
	mustAbort(t, e, t2)  // ...but the responsible transaction aborts
	wantValue(t, e, 1, "")
}

func TestDelegationChain(t *testing.T) {
	// t0 → t1 → t2: the final delegatee decides the fate.
	e := newEngine(t)
	t0 := mustBegin(t, e)
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	mustUpdate(t, e, t0, 5, "chained")
	mustDelegate(t, e, t0, t1, 5)
	mustDelegate(t, e, t1, t2, 5)
	mustAbort(t, e, t0)
	mustAbort(t, e, t1)
	wantValue(t, e, 5, "chained")
	mustCommit(t, e, t2)
	wantValue(t, e, 5, "chained")
}

func TestDelegationChainLoserEnd(t *testing.T) {
	e := newEngine(t)
	t0 := mustBegin(t, e)
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	mustUpdate(t, e, t0, 5, "doomed")
	mustDelegate(t, e, t0, t1, 5)
	mustDelegate(t, e, t1, t2, 5)
	mustCommit(t, e, t0)
	mustCommit(t, e, t1)
	mustAbort(t, e, t2)
	wantValue(t, e, 5, "")
}

func TestDelegatePreconditions(t *testing.T) {
	e := newEngine(t)
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	// t1 has no updates on 9: ill-formed.
	if err := e.Delegate(t1, t2, 9); !errors.Is(err, ErrNotResponsible) {
		t.Fatalf("err = %v, want ErrNotResponsible", err)
	}
	// Unknown transactions.
	mustUpdate(t, e, t1, 9, "v")
	if err := e.Delegate(t1, 999, 9); !errors.Is(err, ErrNoSuchTxn) {
		t.Fatalf("err = %v, want ErrNoSuchTxn", err)
	}
	if err := e.Delegate(999, t2, 9); !errors.Is(err, ErrNoSuchTxn) {
		t.Fatalf("err = %v, want ErrNoSuchTxn", err)
	}
	// Terminated delegatee.
	mustCommit(t, e, t2)
	if err := e.Delegate(t1, t2, 9); !errors.Is(err, ErrNoSuchTxn) {
		t.Fatalf("err = %v, want ErrNoSuchTxn", err)
	}
	// After delegating away, t1 is no longer responsible.
	t3 := mustBegin(t, e)
	mustDelegate(t, e, t1, t3, 9)
	if err := e.Delegate(t1, t3, 9); !errors.Is(err, ErrNotResponsible) {
		t.Fatalf("re-delegation err = %v, want ErrNotResponsible", err)
	}
}

func TestUpdateAfterDelegationSharedAccess(t *testing.T) {
	// §2.1.2: a transaction can keep operating on an object it has
	// delegated (Example 2 depends on it).  The delegator retains its
	// hold, the delegatee co-holds, and third parties stay excluded
	// until every holder terminates.
	e := newEngine(t)
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	t3 := mustBegin(t, e)
	mustUpdate(t, e, t1, 3, "first")
	mustDelegate(t, e, t1, t2, 3)
	// The delegator proceeds without blocking.
	mustUpdate(t, e, t1, 3, "second")
	// A third transaction blocks until both holders are done.
	done := make(chan error, 1)
	go func() { done <- e.Update(t3, 3, []byte("intruder")) }()
	select {
	case err := <-done:
		t.Fatalf("third party acquired a co-held lock (err=%v)", err)
	default:
	}
	mustCommit(t, e, t1) // t1's hold released; t2 still holds
	select {
	case err := <-done:
		t.Fatalf("third party acquired while delegatee held (err=%v)", err)
	default:
	}
	mustCommit(t, e, t2)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	mustCommit(t, e, t3)
	wantValue(t, e, 3, "intruder")
}

func TestDelegateAll(t *testing.T) {
	e := newEngine(t)
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	for obj := wal.ObjectID(1); obj <= 5; obj++ {
		mustUpdate(t, e, t1, obj, "v")
	}
	if err := e.DelegateAll(t1, t2); err != nil {
		t.Fatal(err)
	}
	mustAbort(t, e, t1)
	mustCommit(t, e, t2)
	for obj := wal.ObjectID(1); obj <= 5; obj++ {
		wantValue(t, e, obj, "v")
	}
}

func TestOpList(t *testing.T) {
	e := newEngine(t)
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	mustUpdate(t, e, t1, 1, "a") // LSN 3
	mustUpdate(t, e, t1, 2, "b") // LSN 4
	mustUpdate(t, e, t2, 3, "c") // LSN 5
	mustDelegate(t, e, t1, t2, 1)
	ops, err := e.OpList(t2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 || ops[0] != 3 || ops[1] != 5 {
		t.Fatalf("OpList(t2) = %v, want [3 5]", ops)
	}
	ops1, err := e.OpList(t1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops1) != 1 || ops1[0] != 4 {
		t.Fatalf("OpList(t1) = %v, want [4]", ops1)
	}
}

// TestBackwardChains checks the Figure 4/6 structure: the delegate record
// carries pointers to the previous records of both delegator and delegatee.
func TestBackwardChains(t *testing.T) {
	e := newEngine(t)
	t1 := mustBegin(t, e)         // LSN 1
	t2 := mustBegin(t, e)         // LSN 2
	mustUpdate(t, e, t1, 7, "a")  // LSN 3
	mustUpdate(t, e, t2, 8, "b")  // LSN 4
	mustDelegate(t, e, t1, t2, 7) // LSN 5
	rec, err := e.Log().Get(5)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Type != wal.TypeDelegate || rec.Tor != t1 || rec.Tee != t2 {
		t.Fatalf("delegate record = %+v", rec)
	}
	if rec.TorPrev != 3 {
		t.Fatalf("torBC = %d, want 3 (t1's previous record)", rec.TorPrev)
	}
	if rec.TeePrev != 4 {
		t.Fatalf("teeBC = %d, want 4 (t2's previous record)", rec.TeePrev)
	}
	// A subsequent update by t1 chains to the delegate record.
	t3 := mustBegin(t, e) // LSN 6 (keeps lock simple: update different object)
	_ = t3
	mustUpdate(t, e, t1, 9, "c") // LSN 7
	rec7, err := e.Log().Get(7)
	if err != nil {
		t.Fatal(err)
	}
	if rec7.PrevLSN != 5 {
		t.Fatalf("t1's chain head after delegate = %d, want 5", rec7.PrevLSN)
	}
}

func TestReadSeesCommittedAndOwnWrites(t *testing.T) {
	e := newEngine(t)
	t1 := mustBegin(t, e)
	mustUpdate(t, e, t1, 1, "mine")
	v, err := e.Read(t1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "mine" {
		t.Fatalf("own read = %q", v)
	}
	mustCommit(t, e, t1)
	t2 := mustBegin(t, e)
	v, err = e.Read(t2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "mine" {
		t.Fatalf("committed read = %q", v)
	}
	mustCommit(t, e, t2)
}

func TestOperationsOnTerminatedTxnFail(t *testing.T) {
	e := newEngine(t)
	tx := mustBegin(t, e)
	mustCommit(t, e, tx)
	if err := e.Update(tx, 1, []byte("x")); !errors.Is(err, ErrNoSuchTxn) {
		t.Fatalf("update err = %v", err)
	}
	if err := e.Commit(tx); !errors.Is(err, ErrNoSuchTxn) {
		t.Fatalf("commit err = %v", err)
	}
	if err := e.Abort(tx); !errors.Is(err, ErrNoSuchTxn) {
		t.Fatalf("abort err = %v", err)
	}
}
