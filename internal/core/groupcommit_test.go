package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"ariesrh/internal/storage"
	"ariesrh/internal/wal"
)

// TestDelegateAllAtomicVsConcurrentAbort is the regression test for the
// DelegateAll atomicity bug: the old implementation dropped the engine
// latch between per-object Delegate calls, so a concurrent Abort of the
// delegatee could land mid-loop and leave responsibility split between
// delegator and (dead) delegatee.  With the latch held across the batch
// the outcome must be all-or-nothing: either every object moved to the
// delegatee before its abort undid them, or the abort won and the
// delegator still holds every object with its values intact.
func TestDelegateAllAtomicVsConcurrentAbort(t *testing.T) {
	e := newEngine(t)
	const objs = 6
	rounds := 300
	if testing.Short() {
		rounds = 60
	}
	for round := 0; round < rounds; round++ {
		tor := mustBegin(t, e)
		tee := mustBegin(t, e)
		base := wal.ObjectID(round*16 + 1)
		for k := 0; k < objs; k++ {
			mustUpdate(t, e, tor, base+wal.ObjectID(k), fmt.Sprintf("r%d-o%d", round, k))
		}
		var wg sync.WaitGroup
		var delegErr, abortErr error
		wg.Add(2)
		go func() {
			defer wg.Done()
			abortErr = e.Abort(tee)
		}()
		go func() {
			defer wg.Done()
			delegErr = e.DelegateAll(tor, tee)
		}()
		wg.Wait()
		if abortErr != nil {
			t.Fatalf("round %d: abort(tee): %v", round, abortErr)
		}
		held, err := e.ObjectsOf(tor)
		if err != nil {
			t.Fatalf("round %d: ObjectsOf(tor): %v", round, err)
		}
		switch {
		case delegErr == nil:
			// Delegation won the race: every object moved to tee, whose
			// abort then undid every update.
			if len(held) != 0 {
				t.Fatalf("round %d: DelegateAll succeeded but tor still holds %d objects (partial batch)", round, len(held))
			}
			for k := 0; k < objs; k++ {
				wantValue(t, e, base+wal.ObjectID(k), "")
			}
		case errors.Is(delegErr, ErrNoSuchTxn):
			// Abort won: tee was gone before the batch started, so NO
			// object may have moved and every value must be intact.
			if len(held) != objs {
				t.Fatalf("round %d: DelegateAll failed with tee dead but tor holds %d/%d objects (partial batch)", round, len(held), objs)
			}
			for k := 0; k < objs; k++ {
				wantValue(t, e, base+wal.ObjectID(k), fmt.Sprintf("r%d-o%d", round, k))
			}
		default:
			t.Fatalf("round %d: unexpected DelegateAll error: %v", round, delegErr)
		}
		mustAbort(t, e, tor)
	}
}

// errInjectedWrite is the fault injected by failingDisk.
var errInjectedWrite = errors.New("injected page-write failure")

// failingDisk wraps a DiskManager, failing WritePage while armed.
type failingDisk struct {
	storage.DiskManager
	fail atomic.Bool
}

func (d *failingDisk) WritePage(pid storage.PageID, p *storage.Page) error {
	if d.fail.Load() {
		return errInjectedWrite
	}
	return d.DiskManager.WritePage(pid, p)
}

// TestUpdateBookkeepingSurvivesWriteFailure covers Update's error path
// after log.Append succeeded but store.Write failed (here: the write
// faults a fresh page in, which evicts a dirty page whose write-back is
// made to fail).  The logged update is real — recovery would redo it — so
// the volatile bookkeeping must already reflect it: the scope recorded AND
// the backward chain advanced.  The old ordering advanced LastLSN only
// after the page write, leaving a logged update outside the backward chain
// on this path (a later CLR would then carry a PrevLSN skipping it).
// Abort after the failure must cleanly compensate everything.
func TestUpdateBookkeepingSurvivesWriteFailure(t *testing.T) {
	disk := &failingDisk{DiskManager: storage.NewMemDisk()}
	e, err := New(Options{PoolSize: 1, Disk: disk})
	if err != nil {
		t.Fatal(err)
	}
	tx := mustBegin(t, e)
	// Fill page 0 completely so the next new object needs a second page —
	// and, with a one-frame pool, evicting dirty page 0 to load it.
	for s := 0; s < storage.SlotsPerPage; s++ {
		mustUpdate(t, e, tx, wal.ObjectID(s+1), "fill")
	}
	obj := wal.ObjectID(storage.SlotsPerPage + 1)

	disk.fail.Store(true)
	uerr := e.Update(tx, obj, []byte("doomed"))
	disk.fail.Store(false)
	if !errors.Is(uerr, errInjectedWrite) {
		t.Fatalf("Update error = %v, want injected write failure", uerr)
	}

	// The update record reached the log...
	head := e.Log().Head()
	rec, err := e.Log().Get(head)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Type != wal.TypeUpdate || rec.Object != obj {
		t.Fatalf("log head is %v on object %d, want the failed update of %d", rec.Type, rec.Object, obj)
	}
	// ...so the backward chain must include it...
	if info := e.txns.Get(tx); info == nil || info.LastLSN != head {
		t.Fatalf("LastLSN = %v, want %d (the logged-but-unapplied update)", info, head)
	}
	// ...and the scope must cover it.
	held, err := e.ObjectsOf(tx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, o := range held {
		if o == obj {
			found = true
		}
	}
	if !found {
		t.Fatalf("object %d missing from tx's Ob_List after logged update", obj)
	}

	// Abort must undo the whole transaction, including the failed update.
	mustAbort(t, e, tx)
	wantValue(t, e, obj, "")
	for s := 0; s < storage.SlotsPerPage; s++ {
		wantValue(t, e, wal.ObjectID(s+1), "")
	}
}

// TestGroupCommitConcurrentStress hammers the restructured commit path:
// workers on disjoint object ranges run begin → update ×2 → delegate →
// commit/abort loops with group commit on, so commit records from many
// goroutines continuously share leader flushes while updates and
// delegations interleave through the latch windows.  Afterwards the final
// state is verified, the engine is crashed and recovered, and verified
// again (committed work must survive, aborted work must not).  The
// Makefile race target runs this under -race.
func TestGroupCommitConcurrentStress(t *testing.T) {
	e, err := New(Options{PoolSize: 128, GroupCommit: GroupCommitOn})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	iters := 40
	if testing.Short() {
		iters = 10
	}
	type expectation struct {
		obj wal.ObjectID
		val string // "" = must be absent/empty
	}
	expected := make([][]expectation, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := wal.ObjectID(1 + w*4096)
			for i := 0; i < iters; i++ {
				objA := base + wal.ObjectID(2*i)
				objB := objA + 1
				valA := fmt.Sprintf("w%d-i%d-a", w, i)
				valB := fmt.Sprintf("w%d-i%d-b", w, i)
				t1, err := e.Begin()
				if err != nil {
					errs[w] = err
					return
				}
				t2, err := e.Begin()
				if err != nil {
					errs[w] = err
					return
				}
				if err := e.Update(t1, objA, []byte(valA)); err != nil {
					errs[w] = err
					return
				}
				if err := e.Update(t1, objB, []byte(valB)); err != nil {
					errs[w] = err
					return
				}
				// t2 becomes responsible for objA; its commit makes that
				// update permanent regardless of t1's fate.
				if err := e.Delegate(t1, t2, objA); err != nil {
					errs[w] = err
					return
				}
				if err := e.Commit(t2); err != nil {
					errs[w] = err
					return
				}
				if i%2 == 0 {
					if err := e.Abort(t1); err != nil {
						errs[w] = err
						return
					}
					expected[w] = append(expected[w], expectation{objA, valA}, expectation{objB, ""})
				} else {
					if err := e.Commit(t1); err != nil {
						errs[w] = err
						return
					}
					expected[w] = append(expected[w], expectation{objA, valA}, expectation{objB, valB})
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}

	// Commits should have shared flushes; at minimum the counters must be
	// consistent (every grouped flush served at least one waiter).
	stats := e.LogStats()
	if stats.GroupedFlushes == 0 || stats.FlushWaiters < stats.GroupedFlushes {
		t.Fatalf("implausible group-flush counters: grouped=%d waiters=%d", stats.GroupedFlushes, stats.FlushWaiters)
	}

	check := func(phase string) {
		for w := range expected {
			for _, exp := range expected[w] {
				v, ok, err := e.ReadObject(exp.obj)
				if err != nil {
					t.Fatalf("%s: worker %d object %d: %v", phase, w, exp.obj, err)
				}
				got := ""
				if ok {
					got = string(v)
				}
				if got != exp.val {
					t.Fatalf("%s: worker %d object %d = %q, want %q", phase, w, exp.obj, got, exp.val)
				}
			}
		}
	}
	check("pre-crash")

	if err := e.Log().Flush(e.Log().Head()); err != nil {
		t.Fatal(err)
	}
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}
	check("post-recovery")
}
