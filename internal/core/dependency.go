package core

import (
	"errors"
	"fmt"

	"ariesrh/internal/txn"
	"ariesrh/internal/wal"
)

// Form-dependency is the third ASSET primitive (with delegate and permit):
// it establishes structure-related inter-transaction dependencies checked
// at commit/abort time.  Two ACTA dependency kinds are supported:
//
//   - AbortDependency(dep, on): if `on` aborts, dep must abort.  Aborting
//     `on` cascades to every abort-dependent, transitively.
//   - CommitDependency(dep, on): dep may not commit while `on` is still
//     active; it must wait for `on` to terminate (commit OR abort — the
//     ACTA commit dependency only orders commits, it does not couple
//     fates).  Commit returns ErrDependencyPending rather than blocking,
//     so callers control waiting policy.
//
// Dependencies are volatile: a crash aborts every active transaction, so
// nothing needs recovering.  Biliris et al. note that forming a dependency
// requires a cycle check; FormDependency rejects dependency cycles.

// DependencyKind selects the ACTA dependency formed.
type DependencyKind int

// Dependency kinds.
const (
	// AbortDependency: the dependent aborts if the depended-on
	// transaction aborts.
	AbortDependency DependencyKind = iota
	// CommitDependency: the dependent may commit only after the
	// depended-on transaction has terminated.
	CommitDependency
)

// String names the kind.
func (k DependencyKind) String() string {
	if k == CommitDependency {
		return "commit-dependency"
	}
	return "abort-dependency"
}

// Errors for dependency processing.
var (
	// ErrDependencyPending is returned by Commit while a commit
	// dependency's target is still active.
	ErrDependencyPending = errors.New("core: commit dependency pending")
	// ErrDependencyCycle is returned by FormDependency when adding the
	// edge would create a dependency cycle.
	ErrDependencyCycle = errors.New("core: dependency cycle")
)

type depEdge struct {
	on   wal.TxID
	kind DependencyKind
}

// FormDependency establishes a dependency of dep on `on` (§1: ASSET's
// form-dependency "is done by adding edges to the dependency graph, after
// checking for certain cycles").
func (e *Engine) FormDependency(dep, on wal.TxID, kind DependencyKind) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.writableLocked(); err != nil {
		return err
	}
	if dep == on {
		return fmt.Errorf("core: self-dependency of t%d", dep)
	}
	if _, err := e.activeInfo(dep); err != nil {
		return err
	}
	if _, err := e.activeInfo(on); err != nil {
		return err
	}
	if e.dependencyPathLocked(on, dep) {
		return fmt.Errorf("%w: t%d already depends on t%d", ErrDependencyCycle, on, dep)
	}
	e.deps[dep] = append(e.deps[dep], depEdge{on: on, kind: kind})
	return nil
}

// addDependencyEdgeLocked records dep→on without FormDependency's
// public-API validation.  The early-lock-release path uses it to charge
// a violator with an abort dependency on a pre-durable committer: `on`
// is already Committed (never Active), so the activeInfo checks would
// wrongly reject the edge, and a cycle is impossible — a committed
// transaction forms no further dependencies of its own.  Duplicate
// edges are coalesced.
func (e *Engine) addDependencyEdgeLocked(dep, on wal.TxID, kind DependencyKind) {
	for _, edge := range e.deps[dep] {
		if edge.on == on && edge.kind == kind {
			return
		}
	}
	e.deps[dep] = append(e.deps[dep], depEdge{on: on, kind: kind})
}

// dependencyPathLocked reports whether from transitively depends on to.
func (e *Engine) dependencyPathLocked(from, to wal.TxID) bool {
	seen := map[wal.TxID]bool{}
	var dfs func(tx wal.TxID) bool
	dfs = func(tx wal.TxID) bool {
		if tx == to {
			return true
		}
		if seen[tx] {
			return false
		}
		seen[tx] = true
		for _, edge := range e.deps[tx] {
			if dfs(edge.on) {
				return true
			}
		}
		return false
	}
	return dfs(from)
}

// checkCommitDependenciesLocked returns ErrDependencyPending if tx has a
// commit dependency on a still-active transaction.
func (e *Engine) checkCommitDependenciesLocked(tx wal.TxID) error {
	for _, edge := range e.deps[tx] {
		if edge.kind != CommitDependency {
			continue
		}
		if info := e.txns.Get(edge.on); info != nil && info.Status == txn.Active {
			return fmt.Errorf("%w: t%d waits for t%d", ErrDependencyPending, tx, edge.on)
		}
	}
	return nil
}

// cascadeAbortsLocked aborts, transitively, every active transaction with
// an abort dependency on one of the just-aborted set.
func (e *Engine) cascadeAbortsLocked(aborted wal.TxID) error {
	// Collect dependents first: abortLocked mutates e.deps.
	var victims []wal.TxID
	for dep, edges := range e.deps {
		for _, edge := range edges {
			if edge.on == aborted && edge.kind == AbortDependency {
				if info := e.txns.Get(dep); info != nil && info.Status == txn.Active {
					victims = append(victims, dep)
				}
			}
		}
	}
	for _, v := range victims {
		if info := e.txns.Get(v); info == nil || info.Status != txn.Active {
			continue // already gone via another cascade path
		}
		if err := e.abortLocked(v); err != nil {
			return fmt.Errorf("core: cascading abort of t%d: %w", v, err)
		}
	}
	return nil
}
