package core

import (
	"time"

	"ariesrh/internal/obs"
)

// engineMetrics holds the engine's pre-resolved metric handles (see
// internal/obs).  The engine owns the registry; the WAL, buffer pool and
// lock manager bind their own handles to the same registry at
// construction, so one snapshot covers the whole stack.
type engineMetrics struct {
	begins, updates, reads, delegations, commits, aborts,
	clrs, checkpoints *obs.Counter

	// Backward-sweep counters, shared by normal-processing aborts and
	// the recovery backward pass: positions visited, positions skipped
	// between clusters, clusters entered.
	undoVisited, undoSkipped, undoClusters *obs.Counter

	// Recovery counters (cumulative over Recover calls).
	recRuns, recForwardRecords, recRedone, recCLRs,
	recLosers, recWinners *obs.Counter

	// Degraded-mode accounting: deviceErrors counts persistent device
	// errors that degraded the engine, degradedRejects the operations
	// turned away with ErrDegraded; degraded is 1 while degraded.
	deviceErrors, degradedRejects *obs.Counter
	degraded                      *obs.Gauge

	// Follower-mode accounting: records applied via FollowerApply and
	// the replayed LSN watermark (the replica side of replication lag;
	// the primary side lives in internal/repl).
	replApplied  *obs.Counter
	replReplayed *obs.Gauge

	// Early-lock-release accounting: commits that released their locks
	// pre-durably, violations admitted (dependency edges formed on a
	// pre-durable committer), ELR commits rolled back by a failed flush,
	// and the transactions those rollbacks cascaded into.
	elrCommits, elrViolations, elrFailedCommits, elrCascadeAborts *obs.Counter

	// Cross-shard 2PC accounting (internal/shard): prepares voted,
	// prepared transactions committed/aborted by a decision, and in-doubt
	// transactions resolved after recovery by the coordinator's answer.
	prepares, twopcCommits, twopcAborts,
	indoubtCommitted, indoubtAborted,
	delegateOuts, delegateIns *obs.Counter

	// Per-operation end-to-end latency (lock waits included).
	updateNs, delegateNs, commitNs, abortNs *obs.Histogram

	// prepareNs is the end-to-end prepare latency, force included.
	prepareNs *obs.Histogram

	// elrAckDeferNs is the span an ELR committer spends between releasing
	// its locks (commit-record append) and receiving the durability ack —
	// the time the violation window is open.
	elrAckDeferNs *obs.Histogram

	// Per-phase recovery durations.
	recForwardNs, recBackwardNs, recTotalNs *obs.Histogram
}

func bindEngineMetrics(r *obs.Registry) engineMetrics {
	return engineMetrics{
		begins:            r.Counter("core.begins"),
		updates:           r.Counter("core.updates"),
		reads:             r.Counter("core.reads"),
		delegations:       r.Counter("core.delegations"),
		commits:           r.Counter("core.commits"),
		aborts:            r.Counter("core.aborts"),
		clrs:              r.Counter("core.clrs"),
		checkpoints:       r.Counter("core.checkpoints"),
		undoVisited:       r.Counter("undo.visited"),
		undoSkipped:       r.Counter("undo.skipped"),
		undoClusters:      r.Counter("undo.clusters"),
		recRuns:           r.Counter("recovery.runs"),
		recForwardRecords: r.Counter("recovery.forward_records"),
		recRedone:         r.Counter("recovery.redone"),
		recCLRs:           r.Counter("recovery.clrs"),
		recLosers:         r.Counter("recovery.losers"),
		recWinners:        r.Counter("recovery.winners"),
		deviceErrors:      r.Counter("core.device_errors"),
		degradedRejects:   r.Counter("core.degraded_rejects"),
		degraded:          r.Gauge("core.degraded"),
		replApplied:       r.Counter("repl.applied_records"),
		replReplayed:      r.Gauge("repl.replayed_lsn"),
		elrCommits:        r.Counter("elr.commits"),
		elrViolations:     r.Counter("elr.violations"),
		elrFailedCommits:  r.Counter("elr.failed_commits"),
		elrCascadeAborts:  r.Counter("elr.cascade_aborts"),
		elrAckDeferNs:     r.Histogram("elr.ack_defer_ns"),
		prepares:          r.Counter("twopc.prepares"),
		twopcCommits:      r.Counter("twopc.commits"),
		twopcAborts:       r.Counter("twopc.aborts"),
		indoubtCommitted:  r.Counter("twopc.indoubt_committed"),
		indoubtAborted:    r.Counter("twopc.indoubt_aborted"),
		delegateOuts:      r.Counter("twopc.delegate_out"),
		delegateIns:       r.Counter("twopc.delegate_in"),
		prepareNs:         r.Histogram("twopc.prepare_ns"),
		updateNs:          r.Histogram("core.update_ns"),
		delegateNs:        r.Histogram("core.delegate_ns"),
		commitNs:          r.Histogram("core.commit_ns"),
		abortNs:           r.Histogram("core.abort_ns"),
		recForwardNs:      r.Histogram("recovery.forward_ns"),
		recBackwardNs:     r.Histogram("recovery.backward_ns"),
		recTotalNs:        r.Histogram("recovery.total_ns"),
	}
}

// RecoveryStage is one stage of a recovery run: its name, wall-clock
// duration, and how many units (records, chains, positions — per the
// stage) it processed.  Sequential recovery reports two stages (forward,
// backward); the parallel pipeline reports scan, analysis, redo, undo
// and finish — redo and undo overlap in wall time, which is the point.
type RecoveryStage struct {
	Name  string
	Dur   time.Duration
	Units uint64
}

// RecoveryTrace describes one Recover call: how long each phase took and
// how much log it touched.  The counters here are per-run (unlike the
// cumulative registry counters), which is what the claim tests and the
// rhrecover tool want.
type RecoveryTrace struct {
	// Phase durations.  For the parallel pipeline ForwardDur covers scan
	// + analysis (the work done before reads become available) and
	// BackwardDur the undo sweep; the Stages list has the full split.
	ForwardDur  time.Duration
	BackwardDur time.Duration
	TotalDur    time.Duration

	// Stages is the per-stage breakdown in execution order.  Stage
	// durations may overlap (parallel redo and undo run concurrently),
	// so they need not sum to TotalDur.
	Stages []RecoveryStage

	// Parallel reports whether the instant-restart pipeline ran this
	// recovery; Segments is the number of log shards its scan fanned out
	// over, and OnDemandReads counts reads served mid-recovery (each
	// triggering redo of just its object's chain).
	Parallel      bool
	Segments      int
	OnDemandReads uint64

	// Forward pass: records scanned and redone.
	ForwardRecords uint64
	Redone         uint64

	// Backward pass: positions visited by the cluster sweep, positions
	// skipped between clusters, clusters entered, CLRs written.
	BackwardVisited uint64
	BackwardSkipped uint64
	Clusters        uint64
	CLRs            uint64

	// Classification.
	Losers  uint64
	Winners uint64
}

// Registry returns the engine's metric registry.  Callers may read
// metrics or install an event hook; they must not repurpose the registry
// for unrelated series.
func (e *Engine) Registry() *obs.Registry { return e.reg }

// Metrics returns a point-in-time snapshot of every metric in the
// engine's registry — WAL, buffer pool, lock manager and engine series
// together.  Subtract two snapshots (obs.Snapshot.Sub) for a delta.
func (e *Engine) Metrics() obs.Snapshot { return e.reg.Snapshot() }

// SetEventHook installs fn as the engine's structured event hook; nil
// uninstalls.  The hook runs synchronously on the emitting goroutine,
// often under the engine latch: it must be fast and must not call back
// into the engine.
func (e *Engine) SetEventHook(fn func(obs.Event)) { e.reg.SetEventHook(fn) }

// LastRecoveryTrace returns the trace of the most recent Recover call
// (zero value if Recover has not run).
func (e *Engine) LastRecoveryTrace() RecoveryTrace {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastTrace
}
