package core

import (
	"errors"
	"testing"
)

func TestAbortDependencyCascades(t *testing.T) {
	e := newEngine(t)
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	t3 := mustBegin(t, e)
	mustUpdate(t, e, t1, 1, "a")
	mustUpdate(t, e, t2, 2, "b")
	mustUpdate(t, e, t3, 3, "c")
	// t2 depends on t1, t3 depends on t2: aborting t1 takes all three.
	if err := e.FormDependency(t2, t1, AbortDependency); err != nil {
		t.Fatal(err)
	}
	if err := e.FormDependency(t3, t2, AbortDependency); err != nil {
		t.Fatal(err)
	}
	mustAbort(t, e, t1)
	wantValue(t, e, 1, "")
	wantValue(t, e, 2, "")
	wantValue(t, e, 3, "")
	// All three are gone.
	if err := e.Commit(t2); !errors.Is(err, ErrNoSuchTxn) {
		t.Fatalf("t2 commit err = %v", err)
	}
	if err := e.Commit(t3); !errors.Is(err, ErrNoSuchTxn) {
		t.Fatalf("t3 commit err = %v", err)
	}
}

func TestAbortDependencyOneWay(t *testing.T) {
	// Aborting the DEPENDENT does not touch the depended-on transaction.
	e := newEngine(t)
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	mustUpdate(t, e, t1, 1, "survives")
	mustUpdate(t, e, t2, 2, "dies")
	if err := e.FormDependency(t2, t1, AbortDependency); err != nil {
		t.Fatal(err)
	}
	mustAbort(t, e, t2)
	mustCommit(t, e, t1)
	wantValue(t, e, 1, "survives")
	wantValue(t, e, 2, "")
}

func TestCommitDependencyOrdersCommits(t *testing.T) {
	e := newEngine(t)
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	mustUpdate(t, e, t2, 2, "v")
	if err := e.FormDependency(t2, t1, CommitDependency); err != nil {
		t.Fatal(err)
	}
	// t2 cannot commit while t1 is active...
	if err := e.Commit(t2); !errors.Is(err, ErrDependencyPending) {
		t.Fatalf("err = %v, want ErrDependencyPending", err)
	}
	// ...but may after t1 terminates (either way; here: abort).
	mustAbort(t, e, t1)
	mustCommit(t, e, t2)
	wantValue(t, e, 2, "v")
}

func TestDependencyCycleRejected(t *testing.T) {
	e := newEngine(t)
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	t3 := mustBegin(t, e)
	if err := e.FormDependency(t2, t1, AbortDependency); err != nil {
		t.Fatal(err)
	}
	if err := e.FormDependency(t3, t2, CommitDependency); err != nil {
		t.Fatal(err)
	}
	if err := e.FormDependency(t1, t3, AbortDependency); !errors.Is(err, ErrDependencyCycle) {
		t.Fatalf("err = %v, want ErrDependencyCycle", err)
	}
	// Direct mutual edge is also a cycle.
	if err := e.FormDependency(t1, t2, CommitDependency); !errors.Is(err, ErrDependencyCycle) {
		t.Fatalf("mutual err = %v", err)
	}
	// Self-dependency rejected.
	if err := e.FormDependency(t1, t1, AbortDependency); err == nil {
		t.Fatal("self-dependency accepted")
	}
}

func TestDependencyWithDelegation(t *testing.T) {
	// A cascaded abort respects delegation: work the victim delegated
	// away survives its cascaded death.
	e := newEngine(t)
	anchor := mustBegin(t, e)
	victim := mustBegin(t, e)
	keeper := mustBegin(t, e)
	mustUpdate(t, e, victim, 1, "delegated-out")
	mustUpdate(t, e, victim, 2, "own")
	mustDelegate(t, e, victim, keeper, 1)
	if err := e.FormDependency(victim, anchor, AbortDependency); err != nil {
		t.Fatal(err)
	}
	mustAbort(t, e, anchor) // cascades to victim
	wantValue(t, e, 1, "delegated-out")
	wantValue(t, e, 2, "")
	mustCommit(t, e, keeper)
	wantValue(t, e, 1, "delegated-out")
}

func TestDependencyClearedOnCommit(t *testing.T) {
	// Once the depended-on transaction commits, its dependents are free.
	e := newEngine(t)
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	mustUpdate(t, e, t2, 2, "v")
	if err := e.FormDependency(t2, t1, CommitDependency); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, e, t1)
	mustCommit(t, e, t2)
	wantValue(t, e, 2, "v")
	// And an abort dependency on a committed transaction never fires.
	t3 := mustBegin(t, e)
	t4 := mustBegin(t, e)
	mustUpdate(t, e, t4, 4, "w")
	if err := e.FormDependency(t4, t3, AbortDependency); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, e, t3)
	mustCommit(t, e, t4)
	wantValue(t, e, 4, "w")
}
