package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"ariesrh/internal/storage"
	"ariesrh/internal/wal"
)

// instantWorkloadObjects bounds the object IDs instantWorkload touches;
// counters live just below it.
const instantWorkloadObjects = 2100

// instantWorkload drives a deterministic mix of updates, increments,
// delegations, commits and aborts, leaving some transactions live so the
// crash has losers.  GroupCommitOff keeps the durable prefix — and with
// it the recovered state — identical across runs.  Each transaction
// updates only its own object range (counters use compatible Increment
// locks) so the single-threaded driver never blocks on a lock.
func instantWorkload(t *testing.T, e *Engine, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var live []wal.TxID
	delegated := make(map[wal.TxID]bool)
	for step := 0; step < 250; step++ {
		switch {
		case len(live) < 3 || (len(live) < 6 && rng.Intn(3) == 0):
			tx, err := e.Begin()
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, tx)
		case rng.Intn(8) == 0 && len(live) >= 2:
			tor := live[rng.Intn(len(live))]
			tee := live[rng.Intn(len(live))]
			// One delegation per delegator, of an object reserved for it
			// and never touched again — the lock moves to the delegatee.
			if tor != tee && !delegated[tor] {
				obj := wal.ObjectID(tor*4 + 3)
				mustUpdate(t, e, tor, obj, fmt.Sprintf("deleg%d", tor))
				mustDelegate(t, e, tor, tee, obj)
				delegated[tor] = true
			}
		case rng.Intn(6) == 0:
			i := rng.Intn(len(live))
			tx := live[i]
			live = append(live[:i], live[i+1:]...)
			if rng.Intn(3) == 0 {
				mustAbort(t, e, tx)
			} else {
				mustCommit(t, e, tx)
			}
		case rng.Intn(4) == 0:
			tx := live[rng.Intn(len(live))]
			obj := wal.ObjectID(instantWorkloadObjects - 1 - rng.Intn(4))
			if _, err := e.Increment(tx, obj, int64(rng.Intn(9)-4)); err != nil {
				t.Fatal(err)
			}
		default:
			tx := live[rng.Intn(len(live))]
			obj := wal.ObjectID(tx*4) + wal.ObjectID(rng.Intn(3))
			mustUpdate(t, e, tx, obj, fmt.Sprintf("v%d-%d", step, obj))
		}
	}
	// Flush so the crash keeps a long prefix (including loser updates).
	if err := e.Log().Flush(e.Log().Head()); err != nil {
		t.Fatal(err)
	}
}

// TestParallelRecoveryMatchesSequential is the equivalence claim behind
// Options.ParallelRecovery: the pipeline recovers byte-identical state.
// Two engines run the same deterministic workload (identical logs), crash,
// and recover — one sequentially, one through the pipeline; every object
// and counter must agree.
func TestParallelRecoveryMatchesSequential(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seq, err := New(Options{PoolSize: 16, GroupCommit: GroupCommitOff})
		if err != nil {
			t.Fatal(err)
		}
		par, err := New(Options{PoolSize: 16, GroupCommit: GroupCommitOff, ParallelRecovery: true})
		if err != nil {
			t.Fatal(err)
		}
		instantWorkload(t, seq, seed)
		instantWorkload(t, par, seed)
		if sh, ph := seq.Log().Head(), par.Log().Head(); sh != ph {
			t.Fatalf("seed %d: non-deterministic workload: heads %d vs %d", seed, sh, ph)
		}
		mustDo(t, seq.Crash())
		mustDo(t, par.Crash())
		mustDo(t, seq.Recover())
		mustDo(t, par.Recover())
		// A few on-demand reads race the drain; they must already be final.
		for obj := wal.ObjectID(0); obj < 5; obj++ {
			pv, pok, perr := par.ReadObject(obj)
			if perr != nil {
				t.Fatal(perr)
			}
			sv, sok, serr := seq.ReadObject(obj)
			if serr != nil {
				t.Fatal(serr)
			}
			if pok != sok || !bytes.Equal(pv, sv) {
				t.Fatalf("seed %d: mid-recovery read obj %d = %q (ok=%v), sequential %q (ok=%v)",
					seed, obj, pv, pok, sv, sok)
			}
		}
		mustDo(t, par.WaitRecovered())
		for obj := wal.ObjectID(0); obj < instantWorkloadObjects; obj++ {
			pv, pok, perr := par.ReadObject(obj)
			sv, sok, serr := seq.ReadObject(obj)
			if perr != nil || serr != nil {
				t.Fatal(perr, serr)
			}
			if pok != sok || !bytes.Equal(pv, sv) {
				t.Fatalf("seed %d: obj %d = %q (ok=%v), sequential %q (ok=%v)",
					seed, obj, pv, pok, sv, sok)
			}
		}
		tr := par.LastRecoveryTrace()
		if !tr.Parallel {
			t.Fatalf("seed %d: trace not marked parallel", seed)
		}
		str := seq.LastRecoveryTrace()
		if tr.CLRs != str.CLRs || tr.Losers != str.Losers || tr.Winners != str.Winners {
			t.Fatalf("seed %d: trace mismatch: parallel CLRs/Losers/Winners %d/%d/%d, sequential %d/%d/%d",
				seed, tr.CLRs, tr.Losers, tr.Winners, str.CLRs, str.Losers, str.Winners)
		}
	}
}

// TestParallelRecoveryWritesRejected: while the pipeline runs, reads are
// served but every mutating operation returns ErrRecovering — writes
// never interleave with redo or the backward pass.  SetRecoveryHold
// parks the pipeline after all recovery work, giving a deterministic
// recovering window.
func TestParallelRecoveryWritesRejected(t *testing.T) {
	e, err := New(Options{PoolSize: 16, GroupCommit: GroupCommitOff, ParallelRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	tx := mustBegin(t, e)
	mustUpdate(t, e, tx, 1, "durable")
	mustCommit(t, e, tx)
	loser := mustBegin(t, e)
	mustUpdate(t, e, loser, 2, "doomed")
	mustDo(t, e.Log().Flush(e.Log().Head()))

	hold := make(chan struct{})
	e.SetRecoveryHold(hold)
	mustDo(t, e.Crash())
	mustDo(t, e.Recover())

	if h := e.Health(); h.State != StateRecovering {
		t.Fatalf("health during pipeline = %v, want recovering", h.State)
	}
	if _, err := e.Begin(); !errors.Is(err, ErrRecovering) {
		t.Fatalf("Begin during recovery: err = %v, want ErrRecovering", err)
	}
	if err := e.Checkpoint(); !errors.Is(err, ErrRecovering) {
		t.Fatalf("Checkpoint during recovery: err = %v, want ErrRecovering", err)
	}
	// Reads flow: the committed value is visible, the loser rolled back.
	wantValue(t, e, 1, "durable")
	wantValue(t, e, 2, "")

	close(hold)
	mustDo(t, e.WaitRecovered())
	if h := e.Health(); h.State != StateHealthy {
		t.Fatalf("health after pipeline = %v, want healthy", h.State)
	}
	tx2 := mustBegin(t, e)
	mustUpdate(t, e, tx2, 2, "fresh")
	mustCommit(t, e, tx2)
	wantValue(t, e, 2, "fresh")

	tr := e.LastRecoveryTrace()
	if tr.OnDemandReads < 2 {
		t.Fatalf("OnDemandReads = %d, want >= 2", tr.OnDemandReads)
	}
	if len(tr.Stages) != 5 {
		t.Fatalf("stages = %v, want scan/analysis/redo/undo/finish", tr.Stages)
	}
}

// TestParallelRecoveryFailpoint: an injected backward-pass failure lands
// the engine back in the crashed state, WaitRecovered reports the error,
// and a retried Recover completes.
func TestParallelRecoveryFailpoint(t *testing.T) {
	e, err := New(Options{PoolSize: 16, GroupCommit: GroupCommitOff, ParallelRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	setup := mustBegin(t, e)
	mustUpdate(t, e, setup, 1, "base")
	mustUpdate(t, e, setup, 2, "base2")
	mustCommit(t, e, setup)
	loser := mustBegin(t, e)
	mustUpdate(t, e, loser, 1, "dirty")
	mustUpdate(t, e, loser, 2, "dirty2")
	mustDo(t, e.Log().Flush(e.Log().Head()))

	e.SetRecoveryFailpoint(1)
	mustDo(t, e.Crash())
	mustDo(t, e.Recover())
	if err := e.WaitRecovered(); !errors.Is(err, ErrInjectedRecoveryFailure) {
		t.Fatalf("WaitRecovered = %v, want injected failure", err)
	}
	if h := e.Health(); h.State != StateCrashed {
		t.Fatalf("health after failed pipeline = %v, want crashed", h.State)
	}
	// A late WaitRecovered still reports the engine unusable.
	if err := e.WaitRecovered(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("late WaitRecovered = %v, want ErrCrashed", err)
	}
	mustDo(t, e.Recover())
	mustDo(t, e.WaitRecovered())
	wantValue(t, e, 1, "base")
	wantValue(t, e, 2, "base2")
}

// TestParallelPromotionConcurrentReads: follower reads keep flowing while
// a parallel Promote sweeps the losers.  Every read must observe either
// the replayed (pre-promotion) value or the recovered one — never a torn
// intermediate — and after WaitRecovered the engine accepts writes with
// exactly sequential promotion's state.
func TestParallelPromotionConcurrentReads(t *testing.T) {
	p, err := New(Options{GroupCommit: GroupCommitOff})
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := p.Begin()
	t2, _ := p.Begin()
	t3, _ := p.Begin()
	mustDo(t, p.Update(t1, 1, []byte("delegated")))
	mustDo(t, p.Update(t2, 2, []byte("committed")))
	mustDo(t, p.Delegate(t1, t2, 1))
	mustDo(t, p.Commit(t2))
	mustDo(t, p.Update(t3, 3, []byte("loser")))
	mustDo(t, p.Update(t1, 4, []byte("loser2")))

	f, err := New(Options{Follower: true, ParallelRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.FollowerApply(shipAll(t, p)); err != nil {
		t.Fatal(err)
	}

	// Legal values per object: index 0 pre-promotion, index 1 final.
	legal := map[wal.ObjectID][2]string{
		1: {"delegated", "delegated"}, // survives: delegated to winner t2
		2: {"committed", "committed"},
		3: {"loser", ""},  // t3 active → undone
		4: {"loser2", ""}, // t1 active → undone
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for obj := wal.ObjectID(1); obj <= 4; obj++ {
		wg.Add(1)
		go func(obj wal.ObjectID) {
			defer wg.Done()
			sawFinal := false
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, _, _, err := f.FollowerRead(obj)
				if err != nil {
					errCh <- fmt.Errorf("FollowerRead(%d): %w", obj, err)
					return
				}
				got := string(v)
				pre, fin := legal[obj][0], legal[obj][1]
				switch got {
				case fin:
					sawFinal = true
				case pre:
					if sawFinal && pre != fin {
						errCh <- fmt.Errorf("obj %d went back to pre-promotion value %q", obj, got)
						return
					}
				default:
					errCh <- fmt.Errorf("obj %d = %q, want %q or %q", obj, got, pre, fin)
					return
				}
			}
		}(obj)
	}

	mustDo(t, f.Promote())
	mustDo(t, f.WaitRecovered())
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	wantValue(t, f, 1, "delegated")
	wantValue(t, f, 2, "committed")
	wantValue(t, f, 3, "")
	wantValue(t, f, 4, "")
	tx := mustBegin(t, f)
	mustUpdate(t, f, tx, 3, "post-promotion")
	mustCommit(t, f, tx)
	wantValue(t, f, 3, "post-promotion")
	if f.IsFollower() {
		t.Fatal("still a follower after parallel promotion")
	}
}

// TestParallelRecoveryNewOpensInstantly: New over existing stable stores
// with ParallelRecovery starts the pipeline and returns; the first read
// is served on demand before WaitRecovered.
func TestParallelRecoveryNewOpensInstantly(t *testing.T) {
	logDir := wal.NewMemDir()
	master := wal.NewMemStore()
	disk := storage.NewMemDisk()
	e, err := New(Options{PoolSize: 16, GroupCommit: GroupCommitOff,
		LogDir: logDir, Disk: disk, MasterStore: master})
	if err != nil {
		t.Fatal(err)
	}
	tx := mustBegin(t, e)
	mustUpdate(t, e, tx, 1, "persisted")
	mustCommit(t, e, tx)
	loser := mustBegin(t, e)
	mustUpdate(t, e, loser, 2, "gone")
	mustDo(t, e.Log().Flush(e.Log().Head()))

	// "Restart": a second engine over the same stores, pipeline enabled.
	re, err := New(Options{PoolSize: 16, GroupCommit: GroupCommitOff,
		LogDir: logDir, Disk: disk, MasterStore: master, ParallelRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	wantValue(t, re, 1, "persisted")
	wantValue(t, re, 2, "")
	mustDo(t, re.WaitRecovered())
	if tr := re.LastRecoveryTrace(); !tr.Parallel {
		t.Fatal("open-time recovery did not use the pipeline")
	}
}
