package core

import (
	"errors"
	"fmt"
	"time"

	"ariesrh/internal/delegation"
	"ariesrh/internal/lock"
	"ariesrh/internal/obs"
	"ariesrh/internal/txn"
	"ariesrh/internal/wal"
)

// Early lock release (controlled lock violation).  See the
// Options.EarlyLockRelease contract in engine.go and the "Commit
// pipeline" section of ARCHITECTURE.md.  The pipeline is:
//
//	append commit record → release locks (violable) → group flush → ack
//
// Only the ack is deferred on durability.  A transaction that acquires
// a conflicting lock on an object whose pre-durable committer released
// it ("violates" the lock) forms an abort dependency on that committer,
// so a flush failure cascades rollback through everything built on the
// never-durable data.  The ordering half of the commit dependency —
// "don't ack the violator before its predecessor" — costs nothing: the
// violator's own commit record has a higher LSN and flushes are
// prefix-ordered, so its ack (and any durable survival across a crash)
// already implies the predecessor's durability.

// pendingCommit is the engine-side bookkeeping for one early-lock-release
// committer whose commit record (at lsn) is not yet durable.  prevLast is
// the transaction's backward-chain head before the commit record, needed
// to rewind past it if the commit has to be rolled back.
type pendingCommit struct {
	lsn      wal.LSN
	prevLast wal.LSN
}

// commitELR is Commit's early-lock-release tail: entered with the engine
// latch held, the commit record for tx already appended at lsn, and info
// current.  It releases tx's locks (marking them violable), waits for
// the group flush off-latch, and completes or rolls back the commit.
func (e *Engine) commitELR(tx wal.TxID, info *txn.Info, lsn, prevLast wal.LSN, start time.Time) error {
	// The appended commit record is the commit point: mark Committed
	// before unlatching so cascading aborts (Active victims only) cannot
	// undo the updates during the wait, exactly as in the plain
	// group-commit path — and release every lock now, which is the whole
	// point: waiters stop paying for this transaction's device sync.
	info.Status = txn.Committed
	info.LastLSN = lsn
	e.predurable[tx] = pendingCommit{lsn: lsn, prevLast: prevLast}
	e.locks.ReleaseAllViolable(tx)
	e.met.elrCommits.Inc()
	// The durability callback clears the violable markers promptly (so
	// acquirers stop forming edges) even though this committer may still
	// be parked on the flush channel.
	e.log.OnDurable(lsn, func(err error) { e.durableNotify(tx, lsn, err) })
	ch := e.log.FlushAsync(lsn)
	e.mu.Unlock()

	deferStart := time.Now()
	ferr := <-ch
	e.met.elrAckDeferNs.Observe(time.Since(deferStart))

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		// Crash during the wait: the usual commit-ack ambiguity.  The
		// durable log alone decides the transaction's fate at Recover,
		// and prefix flushing guarantees no violator's commit survived
		// if ours did not.
		return ErrCrashed
	}
	if ferr != nil {
		if errors.Is(ferr, wal.ErrLogCrashed) {
			// Not a device refusal: the log instance went down (Crash)
			// while the ack was pending, discarding the volatile tail.
			// The engine-level crashed flag may not be visible yet (Crash
			// takes the WAL lock before the engine latch), but the
			// outcome is the same commit-ack ambiguity as the e.crashed
			// branch above: recovery alone decides the record's fate, so
			// report the crash rather than degrading a healthy device.
			return ErrCrashed
		}
		// The device refused the flush past the WAL's retry budget.  But
		// under group commit a failed round is not the last word: other
		// queued FlushAsync waiters trigger later rounds, and one of
		// those may have carried our record to the device before we
		// reacquired the latch.  If so, the commit IS durable — its
		// updates are visible and must stay — so finish it and report
		// success; returning ErrCommitAborted here would break the
		// "rolled back" contract and leak the txn as Committed forever.
		// The entry still being present with lsn above the horizon is
		// the only genuinely failed shape: the success delivery is the
		// sole path that removes it while leaving the status Committed,
		// and elrFlushFailureLocked (run by a sibling waiter of the same
		// round) consumes it only after demoting the victim.
		if info = e.txns.Get(tx); info != nil && info.Status == txn.Committed {
			if _, pending := e.predurable[tx]; !pending || lsn <= e.log.FlushedLSN() {
				delete(e.predurable, tx)
				e.locks.ClearViolable(tx)
				return e.finishCommitLocked(tx, info, lsn, start)
			}
		}
		// The locks are gone, so the transaction cannot return to Active
		// the way the default path's failure handling does — strict 2PL
		// no longer isolates its updates.  Roll back every pre-durable
		// committer stranded above the durable horizon, cascading
		// through the dependencies the violation window admitted.
		e.degradeLocked(ferr)
		if err := e.elrFlushFailureLocked(); err != nil {
			return err
		}
		return fmt.Errorf("%w: %w", ErrCommitAborted, ferr)
	}
	info = e.txns.Get(tx)
	if info == nil || info.Status != txn.Committed {
		// Defensive: with our record durable nothing victimizes us, but
		// never finish a commit for a transaction the tables disown.
		return fmt.Errorf("%w: %d", ErrNoSuchTxn, tx)
	}
	// Backstop the durability callback: the WAL drops ALL OnDurable
	// registrations with an error on any failed flush attempt — including
	// a direct Flush of a smaller prefix (e.g. a checkpoint) that never
	// tried our LSN — and durableNotify ignores error deliveries.  If the
	// record then became durable via a succeeding round, nothing else
	// would ever remove the predurable entry or the violable markers, and
	// later acquirers would keep forming abort edges on a long-durable
	// committer.  Both calls are no-ops in the common case where the
	// success delivery already cleaned up.
	delete(e.predurable, tx)
	e.locks.ClearViolable(tx)
	return e.finishCommitLocked(tx, info, lsn, start)
}

// durableNotify is the wal.OnDurable callback for an early-lock-release
// commit: once tx's commit record (at lsn) is on stable storage its
// violable markers are moot — clear them so later acquirers stop forming
// edges.  The entry is validated against the predurable map before
// acting: TxIDs and LSNs are both reused after a crash, so a stale or
// failed delivery must never touch a reincarnated transaction's state.
// Failure deliveries are ignored outright — the committer's own flush
// wait (or Crash) settles those paths, and commitELR clears the entry
// and markers itself whenever it finds the commit durable, so a dropped
// or failed delivery is never load-bearing.
func (e *Engine) durableNotify(tx wal.TxID, lsn wal.LSN, err error) {
	if err != nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	pc, ok := e.predurable[tx]
	if !ok || pc.lsn != lsn {
		return
	}
	delete(e.predurable, tx)
	e.locks.ClearViolable(tx)
}

// noteViolationsLocked records the controlled lock violations tx just
// committed by acquiring a mode lock on obj: for every pre-durable
// committer whose early-released conflicting lock on obj is still
// marked, tx gains an abort dependency — if the committer's record never
// reaches the device, tx (having read or overwritten its dirty data)
// must go down with it.  Called under the engine latch right after the
// post-acquire revalidation; a marker whose releaser already left the
// predurable map (durability won a callback race) forms no edge.
func (e *Engine) noteViolationsLocked(tx wal.TxID, obj wal.ObjectID, mode lock.Mode) {
	if len(e.predurable) == 0 {
		return
	}
	hooked := e.reg.HasEventHook()
	for _, pred := range e.locks.Violators(tx, obj, mode) {
		if _, pending := e.predurable[pred]; !pending {
			continue
		}
		e.addDependencyEdgeLocked(tx, pred, AbortDependency)
		e.met.elrViolations.Inc()
		if hooked {
			e.reg.Emit(obs.Event{Name: "elr.violate", Tx: uint64(tx), Object: uint64(obj), Value: int64(pred)})
		}
	}
}

// elrFlushFailureLocked rolls back every early-lock-release committer
// whose commit record is stranded above the durable horizon after a
// failed flush round, together with — transitively — every active
// transaction holding an abort dependency on one of them (the violators
// that built on the never-durable data).
//
// All of them are undone in ONE combined reverse-LSN sweep over the
// union of their scopes, driven by the recovery cluster planner.  With
// early lock release, two live transactions CAN have interleaved
// updates on one object (the violator overwrote after the committer
// released); per-transaction aborts would then restore a later
// transaction's stale after-image over an earlier one's restored
// before-image.  The global reverse order is the same argument recovery
// itself relies on.
//
// Idempotent: victims are identified by their live predurable entries,
// which are consumed here, so the second waiter woken by the same
// failed round finds nothing left to do.
func (e *Engine) elrFlushFailureLocked() error {
	flushed := e.log.FlushedLSN()
	type victim struct {
		tx       wal.TxID
		prevLast wal.LSN
	}
	var victims []victim
	for tx, pc := range e.predurable {
		if pc.lsn > flushed {
			victims = append(victims, victim{tx: tx, prevLast: pc.prevLast})
			delete(e.predurable, tx)
		}
	}
	if len(victims) == 0 {
		return nil
	}
	failed := len(victims)
	// Transitive closure of active abort-dependents: they interleave
	// with the victims on the log, so they join the same sweep.
	doomed := make(map[wal.TxID]bool, failed)
	for _, v := range victims {
		doomed[v.tx] = true
	}
	for changed := true; changed; {
		changed = false
		for dep, edges := range e.deps {
			if doomed[dep] {
				continue
			}
			info := e.txns.Get(dep)
			if info == nil || info.Status != txn.Active {
				continue
			}
			for _, edge := range edges {
				if edge.kind == AbortDependency && doomed[edge.on] {
					doomed[dep] = true
					victims = append(victims, victim{tx: dep, prevLast: info.LastLSN})
					changed = true
					break
				}
			}
		}
	}
	// Every victim becomes an Active loser with its backward chain
	// rewound past any never-durable commit record, so the sweep's CLRs
	// hang off its last update, exactly as recovery would chain them.
	var scopes []delegation.Scope
	for _, v := range victims {
		e.locks.ClearViolable(v.tx)
		if info := e.txns.Get(v.tx); info != nil {
			info.Status = txn.Active
			info.LastLSN = v.prevLast
		}
		if ol, ok := e.state[v.tx]; ok {
			scopes = append(scopes, ol.OwnedScopes(v.tx)...)
		}
	}
	if err := e.undoScopes(scopes, nil); err != nil {
		return err
	}
	// Terminate each victim: abort + end records and volatile cleanup.
	// No further cascading is needed — the closure above already
	// collected every abort-dependent.
	hooked := e.reg.HasEventHook()
	for i, v := range victims {
		info := e.txns.Get(v.tx)
		if info == nil {
			continue
		}
		lsn, err := e.log.Append(&wal.Record{Type: wal.TypeAbort, TxID: v.tx, PrevLSN: info.LastLSN})
		if err != nil {
			return err
		}
		info.Status = txn.Aborted
		info.LastLSN = lsn
		endLSN, err := e.log.Append(&wal.Record{Type: wal.TypeEnd, TxID: v.tx, PrevLSN: lsn})
		if err != nil {
			return err
		}
		info.LastLSN = endLSN
		e.locks.ReleaseAll(v.tx)
		delete(e.state, v.tx)
		delete(e.deps, v.tx)
		e.txns.Remove(v.tx)
		e.stats.Aborts++
		e.met.aborts.Inc()
		if i < failed {
			e.met.elrFailedCommits.Inc()
		} else {
			e.met.elrCascadeAborts.Inc()
		}
		if hooked {
			e.reg.Emit(obs.Event{Name: "elr.rollback", Tx: uint64(v.tx), LSN: uint64(lsn)})
		}
	}
	return nil
}
