package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"ariesrh/internal/delegation"
	"ariesrh/internal/storage"
	"ariesrh/internal/txn"
	"ariesrh/internal/wal"
)

// checkpointData is the state serialized into a checkpoint-end record:
// everything recovery needs to resume analysis at the checkpoint rather
// than the start of the log — the transaction table, the full delegation
// state (object lists with scopes), and the dirty-page table whose minimum
// recLSN bounds where redo must start.
type checkpointData struct {
	beginLSN wal.LSN
	txns     []txn.Info
	state    delegation.State
	dpt      map[storage.PageID]wal.LSN
	// 2PC state (internal/core/twopc.go): in-doubt participants and
	// retained coordinator decisions at checkpoint time.  A recovery that
	// starts analysis at the checkpoint would otherwise miss prepare
	// records logged before it — an in-doubt transaction, or a decision a
	// peer shard may still ask for, must never silently vanish behind a
	// checkpoint.  Encoded as optional trailing sections so pre-2PC
	// checkpoint payloads still decode.
	prepared map[wal.TxID]preparedInfo
	globals  map[uint64]globalDecision
}

func encodeCheckpoint(d *checkpointData) []byte {
	var buf []byte
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d.beginLSN))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(d.txns)))
	for _, info := range d.txns {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(info.ID))
		buf = append(buf, byte(info.Status))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(info.LastLSN))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(info.UndoNextLSN))
	}
	st := delegation.EncodeState(d.state)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(st)))
	buf = append(buf, st...)
	pids := make([]storage.PageID, 0, len(d.dpt))
	for pid := range d.dpt {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(pids)))
	for _, pid := range pids {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(pid))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(d.dpt[pid]))
	}
	// Trailing 2PC sections (absent in pre-2PC payloads): prepared
	// participants, then retained decisions, both in sorted order so the
	// encoding is deterministic.
	txs := make([]wal.TxID, 0, len(d.prepared))
	for tx := range d.prepared {
		txs = append(txs, tx)
	}
	sort.Slice(txs, func(i, j int) bool { return txs[i] < txs[j] })
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(txs)))
	for _, tx := range txs {
		pi := d.prepared[tx]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(tx))
		buf = binary.LittleEndian.AppendUint64(buf, pi.gid)
		buf = binary.LittleEndian.AppendUint32(buf, pi.coord)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(pi.prepareLSN))
	}
	gids := make([]uint64, 0, len(d.globals))
	for gid := range d.globals {
		gids = append(gids, gid)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(gids)))
	for _, gid := range gids {
		buf = binary.LittleEndian.AppendUint64(buf, gid)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(d.globals[gid].prepareLSN))
	}
	return buf
}

func decodeCheckpoint(buf []byte) (*checkpointData, error) {
	fail := func() (*checkpointData, error) {
		return nil, fmt.Errorf("core: truncated checkpoint payload")
	}
	off := 0
	need := func(n int) bool { return off+n <= len(buf) }
	if !need(8 + 4) {
		return fail()
	}
	d := &checkpointData{
		state: delegation.State{},
		dpt:   map[storage.PageID]wal.LSN{},
	}
	d.beginLSN = wal.LSN(binary.LittleEndian.Uint64(buf[off:]))
	off += 8
	nTx := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	for i := 0; i < nTx; i++ {
		if !need(4 + 1 + 8 + 8) {
			return fail()
		}
		info := txn.Info{
			ID:          wal.TxID(binary.LittleEndian.Uint32(buf[off:])),
			Status:      txn.Status(buf[off+4]),
			LastLSN:     wal.LSN(binary.LittleEndian.Uint64(buf[off+5:])),
			UndoNextLSN: wal.LSN(binary.LittleEndian.Uint64(buf[off+13:])),
		}
		off += 21
		d.txns = append(d.txns, info)
	}
	if !need(4) {
		return fail()
	}
	stLen := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	if !need(stLen) {
		return fail()
	}
	st, err := delegation.DecodeState(buf[off : off+stLen])
	if err != nil {
		return nil, err
	}
	d.state = st
	off += stLen
	if !need(4) {
		return fail()
	}
	nDpt := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	for i := 0; i < nDpt; i++ {
		if !need(4 + 8) {
			return fail()
		}
		pid := storage.PageID(binary.LittleEndian.Uint32(buf[off:]))
		d.dpt[pid] = wal.LSN(binary.LittleEndian.Uint64(buf[off+4:]))
		off += 12
	}
	d.prepared = map[wal.TxID]preparedInfo{}
	d.globals = map[uint64]globalDecision{}
	if off == len(buf) {
		// Pre-2PC payload: no trailing sections.
		return d, nil
	}
	if !need(4) {
		return fail()
	}
	nPrep := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	for i := 0; i < nPrep; i++ {
		if !need(4 + 8 + 4 + 8) {
			return fail()
		}
		tx := wal.TxID(binary.LittleEndian.Uint32(buf[off:]))
		d.prepared[tx] = preparedInfo{
			gid:        binary.LittleEndian.Uint64(buf[off+4:]),
			coord:      binary.LittleEndian.Uint32(buf[off+12:]),
			prepareLSN: wal.LSN(binary.LittleEndian.Uint64(buf[off+16:])),
		}
		off += 24
	}
	if !need(4) {
		return fail()
	}
	nGlob := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	for i := 0; i < nGlob; i++ {
		if !need(8 + 8) {
			return fail()
		}
		gid := binary.LittleEndian.Uint64(buf[off:])
		d.globals[gid] = globalDecision{prepareLSN: wal.LSN(binary.LittleEndian.Uint64(buf[off+8:]))}
		off += 16
	}
	if off != len(buf) {
		return nil, fmt.Errorf("core: %d trailing bytes in checkpoint payload", len(buf)-off)
	}
	return d, nil
}
