package core

import (
	"bytes"
	"reflect"
	"testing"

	"ariesrh/internal/delegation"
	"ariesrh/internal/storage"
	"ariesrh/internal/txn"
	"ariesrh/internal/wal"
)

// sampleCheckpoints builds representative checkpoint payloads for the fuzz
// seed corpus: empty, transactions-only, and a full state with delegated
// scopes and a dirty-page table.
func sampleCheckpoints() []*checkpointData {
	olA := delegation.NewObList()
	olA.SetEntry(7, &delegation.Entry{
		Deleg: 3,
		Closed: []delegation.Scope{
			{Object: 7, Invoker: 2, First: 4, Last: 9},
		},
		HasActive: true,
		Active:    delegation.Scope{Object: 7, Invoker: 3, First: 12, Last: 15},
	})
	olB := delegation.NewObList()
	olB.SetEntry(1, &delegation.Entry{
		HasActive: true,
		Active:    delegation.Scope{Object: 1, Invoker: 5, First: 2, Last: 2},
	})
	return []*checkpointData{
		{
			state: delegation.State{},
			dpt:   map[storage.PageID]wal.LSN{},
		},
		{
			beginLSN: 17,
			txns: []txn.Info{
				{ID: 2, Status: txn.Active, LastLSN: 9, UndoNextLSN: 9},
				{ID: 3, Status: txn.Committed, LastLSN: 15},
			},
			state: delegation.State{},
			dpt:   map[storage.PageID]wal.LSN{},
		},
		{
			beginLSN: 40,
			txns: []txn.Info{
				{ID: 3, Status: txn.Active, LastLSN: 44, UndoNextLSN: 41},
				{ID: 5, Status: txn.Aborted, LastLSN: 39, UndoNextLSN: 2},
			},
			state: delegation.State{3: olA, 5: olB},
			dpt:   map[storage.PageID]wal.LSN{0: 41, 9: 12, 4: 40},
		},
		{
			beginLSN: 60,
			txns: []txn.Info{
				{ID: 8, Status: txn.Prepared, LastLSN: 58, UndoNextLSN: 55},
			},
			state:    delegation.State{},
			dpt:      map[storage.PageID]wal.LSN{},
			prepared: map[wal.TxID]preparedInfo{8: {gid: 91, coord: 2, prepareLSN: 58}},
			globals:  map[uint64]globalDecision{90: {prepareLSN: 50}, 89: {prepareLSN: 44}},
		},
	}
}

// FuzzDecodeCheckpoint mirrors internal/wal's FuzzDecodeRecord for the
// checkpoint-end payload: arbitrary bytes must never panic the decoder,
// and anything it accepts must survive an encode/decode round trip — the
// re-encoding is byte-stable after one normalization pass (encodeCheckpoint
// sorts the dirty-page table, so a mutated-but-valid payload may reorder
// once) and decodes back to an identical structure.  Recovery trusts this
// payload to rebuild the transaction table and delegation state, so a
// decoder crash here is a recovery crash.
func FuzzDecodeCheckpoint(f *testing.F) {
	for _, d := range sampleCheckpoints() {
		f.Add(encodeCheckpoint(d))
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := decodeCheckpoint(data)
		if err != nil {
			return
		}
		enc := encodeCheckpoint(d)
		d2, err := decodeCheckpoint(enc)
		if err != nil {
			t.Fatalf("accepted payload does not re-decode: %v", err)
		}
		if d2.beginLSN != d.beginLSN || !reflect.DeepEqual(d2.txns, d.txns) || !reflect.DeepEqual(d2.dpt, d.dpt) ||
			!reflect.DeepEqual(d2.prepared, d.prepared) || !reflect.DeepEqual(d2.globals, d.globals) {
			t.Fatalf("round trip changed checkpoint:\n in  %+v\n out %+v", d, d2)
		}
		if enc2 := encodeCheckpoint(d2); !bytes.Equal(enc2, enc) {
			t.Fatalf("re-encoding is not stable:\n first  %x\n second %x", enc, enc2)
		}
	})
}
