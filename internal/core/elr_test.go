package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ariesrh/internal/txn"
	"ariesrh/internal/wal"
)

// elrStore is a fault-injecting wal.Dir that gates device Syncs for
// early-lock-release tests.  In gate mode (arm) each armed Sync signals
// entered, blocks on the gate, and — if failOnRelease was set while it
// was blocked — fails with a no-retry device error.  In script mode
// (armScript) each armed Sync signals entered and then consumes one
// directive from script: true fails that one attempt, false lets it
// through — so consecutive device rounds can deterministically fail then
// succeed.
type elrStore struct {
	*wal.MemDir
	mu            sync.Mutex
	armed         bool
	scripted      bool
	failOnRelease bool
	gate          chan struct{}
	entered       chan struct{}
	script        chan bool
}

func newELRStore() *elrStore {
	return &elrStore{
		MemDir:  wal.NewMemDir(),
		gate:    make(chan struct{}),
		entered: make(chan struct{}, 16),
		script:  make(chan bool),
	}
}

func (s *elrStore) arm()     { s.mu.Lock(); s.armed = true; s.mu.Unlock() }
func (s *elrStore) disarm()  { s.mu.Lock(); s.armed = false; s.mu.Unlock() }
func (s *elrStore) failAll() { s.mu.Lock(); s.failOnRelease = true; s.mu.Unlock() }

func (s *elrStore) armScript() {
	s.mu.Lock()
	s.armed = true
	s.scripted = true
	s.mu.Unlock()
}

// reset returns the store to passthrough: future Syncs hit the device
// directly.  In-flight Syncs are unaffected (they already read the mode
// on entry), so a directive consumed before the reset still applies.
func (s *elrStore) reset() {
	s.mu.Lock()
	s.armed = false
	s.scripted = false
	s.failOnRelease = false
	s.mu.Unlock()
}

func (s *elrStore) Open(name string) (wal.Store, error) {
	dev, err := s.MemDir.Open(name)
	if err != nil {
		return nil, err
	}
	return &elrDev{Store: dev, dir: s}, nil
}

type elrDev struct {
	wal.Store
	dir *elrStore
}

func (d *elrDev) Sync() error {
	s := d.dir
	s.mu.Lock()
	armed, scripted := s.armed, s.scripted
	s.mu.Unlock()
	if !armed {
		return d.Store.Sync()
	}
	s.entered <- struct{}{}
	if scripted {
		if <-s.script {
			return fmt.Errorf("%w: injected sync failure", wal.ErrNoRetry)
		}
		return d.Store.Sync()
	}
	<-s.gate
	s.mu.Lock()
	fail := s.failOnRelease
	s.mu.Unlock()
	if fail {
		return fmt.Errorf("%w: injected sync failure", wal.ErrNoRetry)
	}
	return d.Store.Sync()
}

func newELREngine(t *testing.T) (*Engine, *elrStore) {
	t.Helper()
	store := newELRStore()
	e, err := New(Options{PoolSize: 16, LogDir: store, GroupCommit: GroupCommitOn, EarlyLockRelease: true})
	if err != nil {
		t.Fatal(err)
	}
	return e, store
}

// commitAsync starts Commit on its own goroutine and returns the error
// channel.
func commitAsync(e *Engine, tx wal.TxID) <-chan error {
	ch := make(chan error, 1)
	go func() { ch <- e.Commit(tx) }()
	return ch
}

// TestELRReleasesLocksBeforeDurability is the tentpole's core property:
// with EarlyLockRelease a committer's X lock is available to others
// while its commit record is still waiting on the device, the violator
// gains an abort dependency on it, and both commits complete once the
// flush lands.
func TestELRReleasesLocksBeforeDurability(t *testing.T) {
	e, store := newELREngine(t)
	t1 := mustBegin(t, e)
	mustUpdate(t, e, t1, 1, "from-t1")
	t2 := mustBegin(t, e)

	store.arm()
	c1 := commitAsync(e, t1)
	<-store.entered // t1's commit record is on its way to the device

	// The violation: t2 takes t1's early-released X lock and reads the
	// pre-durable value, all while t1's sync is still in flight.
	updDone := make(chan error, 1)
	go func() { updDone <- e.Update(t2, 1, []byte("from-t2")) }()
	select {
	case err := <-updDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("update blocked on an early-released lock: ELR did not release at commit-record append")
	}

	e.mu.Lock()
	var hasEdge bool
	for _, edge := range e.deps[t2] {
		if edge.on == t1 && edge.kind == AbortDependency {
			hasEdge = true
		}
	}
	e.mu.Unlock()
	if !hasEdge {
		t.Fatal("violator formed no abort dependency on the pre-durable committer")
	}

	store.disarm()
	close(store.gate)
	if err := <-c1; err != nil {
		t.Fatalf("t1 commit: %v", err)
	}
	mustCommit(t, e, t2)
	wantValue(t, e, 1, "from-t2")

	m := e.Metrics()
	if got := m.Counter("elr.commits"); got == 0 {
		t.Fatal("elr.commits not counted")
	}
	if got := m.Counter("elr.violations"); got != 1 {
		t.Fatalf("elr.violations = %d, want 1", got)
	}
	if got := m.Counter("lock.violable_marks"); got == 0 {
		t.Fatal("lock.violable_marks not counted")
	}
	if m.Histogram("elr.ack_defer_ns").Count == 0 {
		t.Fatal("elr.ack_defer_ns not observed")
	}
}

// TestELRViolableMarkersClearedAfterDurability: once the committer's
// record is durable, later acquirers must not keep forming edges.
func TestELRViolableMarkersClearedAfterDurability(t *testing.T) {
	e, _ := newELREngine(t)
	t1 := mustBegin(t, e)
	mustUpdate(t, e, t1, 1, "v1")
	if err := e.Commit(t1); err != nil {
		t.Fatal(err)
	}
	// The OnDurable callback runs asynchronously; give it a moment.
	deadline := time.Now().Add(2 * time.Second)
	for {
		e.mu.Lock()
		n := len(e.predurable)
		e.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("predurable entry never cleared after a durable commit")
		}
		time.Sleep(time.Millisecond)
	}
	t2 := mustBegin(t, e)
	mustUpdate(t, e, t2, 1, "v2")
	e.mu.Lock()
	edges := len(e.deps[t2])
	e.mu.Unlock()
	if edges != 0 {
		t.Fatalf("edge formed on a durably committed transaction (%d edges)", edges)
	}
	mustCommit(t, e, t2)
}

// TestELRFlushFailureRollsBackAndCascades: when the commit record cannot
// reach the device, the ELR committer is rolled back (ErrCommitAborted)
// and the rollback cascades to the violator that overwrote its
// pre-durable data; the object returns to its last durable value and the
// engine degrades.
func TestELRFlushFailureRollsBackAndCascades(t *testing.T) {
	e, store := newELREngine(t)
	setup := mustBegin(t, e)
	mustUpdate(t, e, setup, 1, "init")
	mustCommit(t, e, setup)

	t1 := mustBegin(t, e)
	mustUpdate(t, e, t1, 1, "t1-dirty")
	t2 := mustBegin(t, e)

	store.arm()
	c1 := commitAsync(e, t1)
	<-store.entered

	if err := e.Update(t2, 1, []byte("t2-dirty")); err != nil {
		t.Fatal(err)
	}

	store.failAll()
	close(store.gate)

	err := <-c1
	if !errors.Is(err, ErrCommitAborted) {
		t.Fatalf("t1 commit error = %v, want ErrCommitAborted", err)
	}
	// The violator went down with it.
	if _, err := e.Read(t2, 1); !errors.Is(err, ErrNoSuchTxn) {
		t.Fatalf("violator survived its predecessor's lost commit: Read err = %v", err)
	}
	// The combined reverse-LSN sweep restored the last durable value:
	// t2's after-image must not resurface over t1's undo.
	wantValue(t, e, 1, "init")
	if h := e.Health(); h.State != StateDegraded {
		t.Fatalf("health = %v after persistent flush failure, want degraded", h.State)
	}
	m := e.Metrics()
	if got := m.Counter("elr.failed_commits"); got != 1 {
		t.Fatalf("elr.failed_commits = %d, want 1", got)
	}
	if got := m.Counter("elr.cascade_aborts"); got != 1 {
		t.Fatalf("elr.cascade_aborts = %d, want 1", got)
	}
}

// TestELRFailedRoundThenDurableCompletesCommit: the committer's own
// group-flush round fails, but a later flush carries its commit record
// to the device before the waiter reacquires the engine latch (under
// group commit, rounds triggered by other queued waiters can do exactly
// that).  The commit IS durable — its updates are visible and must stay
// — so Commit must finish it and return nil, not ErrCommitAborted, and
// must neither leak the transaction as Committed in the table nor
// degrade the engine.
func TestELRFailedRoundThenDurableCompletesCommit(t *testing.T) {
	e, store := newELREngine(t)
	t1 := mustBegin(t, e)
	mustUpdate(t, e, t1, 1, "v1")

	store.armScript()
	c1 := commitAsync(e, t1)
	<-store.entered // t1's round is at the device, predurable entry live

	// Hold the latch so the waiter cannot act on its failure delivery
	// until the record is durable, fail the round, then land the record
	// with a direct flush (standing in for the later group round).
	e.mu.Lock()
	lsn := e.predurable[t1].lsn
	store.script <- true
	store.reset()
	if err := e.log.Flush(lsn); err != nil {
		e.mu.Unlock()
		t.Fatalf("rescue flush: %v", err)
	}
	e.mu.Unlock()

	if err := <-c1; err != nil {
		t.Fatalf("commit returned %v with a durable commit record, want nil", err)
	}
	wantValue(t, e, 1, "v1")
	if h := e.Health(); h.State == StateDegraded {
		t.Fatal("engine degraded although the commit became durable")
	}
	e.mu.Lock()
	pending := len(e.predurable)
	tracked := e.txns.Get(t1)
	e.mu.Unlock()
	if pending != 0 {
		t.Fatalf("predurable entries = %d after a durable commit, want 0", pending)
	}
	if tracked != nil {
		t.Fatal("durably committed transaction leaked in the txn table")
	}
	if got := e.Metrics().Counter("elr.failed_commits"); got != 0 {
		t.Fatalf("elr.failed_commits = %d, want 0", got)
	}
	// The violable markers are gone too: a later acquirer of t1's object
	// forms no edge on the long-durable committer.
	t2 := mustBegin(t, e)
	mustUpdate(t, e, t2, 1, "v2")
	e.mu.Lock()
	edges := len(e.deps[t2])
	e.mu.Unlock()
	if edges != 0 {
		t.Fatalf("edge formed on a durably committed transaction (%d edges)", edges)
	}
	mustCommit(t, e, t2)
	wantValue(t, e, 1, "v2")
}

// TestELRSuccessPathBackstopsLostDurableDelivery: the WAL drops ALL
// OnDurable registrations with an error on any failed flush attempt —
// including a direct Flush of a smaller prefix (a checkpoint, say) that
// never tried the registrant's LSN — and durableNotify ignores error
// deliveries.  If the record then becomes durable via a succeeding
// round, the success path itself must clear the predurable entry and
// the violable markers, or later acquirers keep forming abort edges on
// a long-durable committer forever.  The lost delivery is simulated by
// skewing the recorded LSN so the pending success callback validates
// against the entry and no-ops, exactly as if it had been dropped.
func TestELRSuccessPathBackstopsLostDurableDelivery(t *testing.T) {
	e, store := newELREngine(t)
	t1 := mustBegin(t, e)
	mustUpdate(t, e, t1, 1, "v1")

	store.arm()
	c1 := commitAsync(e, t1)
	<-store.entered // sync in flight, predurable entry live

	e.mu.Lock()
	pc := e.predurable[t1]
	pc.lsn += 1 << 20 // durableNotify will see a mismatch and no-op
	e.predurable[t1] = pc
	e.mu.Unlock()

	store.disarm()
	close(store.gate)
	if err := <-c1; err != nil {
		t.Fatalf("t1 commit: %v", err)
	}

	e.mu.Lock()
	pending := len(e.predurable)
	e.mu.Unlock()
	if pending != 0 {
		t.Fatalf("predurable entries = %d after the ack, want 0", pending)
	}
	t2 := mustBegin(t, e)
	mustUpdate(t, e, t2, 1, "v2")
	e.mu.Lock()
	edges := len(e.deps[t2])
	e.mu.Unlock()
	if edges != 0 {
		t.Fatalf("spurious edge on a durably committed transaction (%d edges)", edges)
	}
	mustCommit(t, e, t2)
	wantValue(t, e, 1, "v2")
}

// TestELRDelegationCarriesDependency: a violator that delegates the
// dirty scope hands the abort dependency to the delegatee — the
// delegator's own abort no longer undoes those updates, so the edge must
// travel with responsibility.
func TestELRDelegationCarriesDependency(t *testing.T) {
	e, store := newELREngine(t)
	setup := mustBegin(t, e)
	mustUpdate(t, e, setup, 1, "init")
	mustCommit(t, e, setup)

	t1 := mustBegin(t, e)
	mustUpdate(t, e, t1, 1, "t1-dirty")
	t2 := mustBegin(t, e)
	t3 := mustBegin(t, e)

	store.arm()
	c1 := commitAsync(e, t1)
	<-store.entered

	if err := e.Update(t2, 1, []byte("t2-dirty")); err != nil {
		t.Fatal(err)
	}
	// t2 delegates the violating scope to t3 and commits its way out...
	if err := e.Delegate(t2, t3, 1); err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	var t3HasEdge bool
	for _, edge := range e.deps[t3] {
		if edge.on == t1 && edge.kind == AbortDependency {
			t3HasEdge = true
		}
	}
	e.mu.Unlock()
	if !t3HasEdge {
		t.Fatal("delegatee did not inherit the delegator's dependency on the pre-durable committer")
	}

	store.failAll()
	close(store.gate)
	if err := <-c1; !errors.Is(err, ErrCommitAborted) {
		t.Fatalf("t1 commit error = %v, want ErrCommitAborted", err)
	}
	// t3 owns the dirty delegated scope: it must be gone, and the
	// delegated update undone.
	if _, err := e.Read(t3, 1); !errors.Is(err, ErrNoSuchTxn) {
		t.Fatalf("delegatee of dirty scope survived: Read err = %v", err)
	}
	wantValue(t, e, 1, "init")
}

// TestELRDelegateThenViolate: the delegator commits pre-durably AFTER
// delegating a scope away; the delegatee commits while the delegator's
// record is still in flight.  The delegated updates belong to the
// delegatee — delegation rewrote history — so both survive once the
// flush lands, in commit order dictated by the log.
func TestELRDelegateThenViolate(t *testing.T) {
	e, store := newELREngine(t)
	t1 := mustBegin(t, e)
	mustUpdate(t, e, t1, 1, "delegated")
	mustUpdate(t, e, t1, 2, "t1-own")
	t2 := mustBegin(t, e)
	if err := e.Delegate(t1, t2, 1); err != nil {
		t.Fatal(err)
	}

	store.arm()
	c1 := commitAsync(e, t1) // t1 pre-durable, locks released
	<-store.entered
	c2 := commitAsync(e, t2) // delegatee commits before delegator durable

	// Both acks are pending on the same (or later) flush rounds; neither
	// may have completed yet.
	select {
	case err := <-c1:
		t.Fatalf("t1 acked before its record was durable: %v", err)
	case err := <-c2:
		t.Fatalf("t2 acked before its record was durable: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	store.disarm()
	close(store.gate)
	if err := <-c1; err != nil {
		t.Fatalf("t1 commit: %v", err)
	}
	if err := <-c2; err != nil {
		t.Fatalf("t2 commit: %v", err)
	}
	wantValue(t, e, 1, "delegated")
	wantValue(t, e, 2, "t1-own")
}

// TestELROffHoldsLocksAcrossFlush pins the seed semantics: without
// EarlyLockRelease a committer's locks stay held until the flush
// completes, so a conflicting acquirer waits out the device sync.
func TestELROffHoldsLocksAcrossFlush(t *testing.T) {
	store := newELRStore()
	e, err := New(Options{PoolSize: 16, LogDir: store, GroupCommit: GroupCommitOn})
	if err != nil {
		t.Fatal(err)
	}
	t1 := mustBegin(t, e)
	mustUpdate(t, e, t1, 1, "from-t1")
	t2 := mustBegin(t, e)

	store.arm()
	c1 := commitAsync(e, t1)
	<-store.entered

	updDone := make(chan error, 1)
	go func() { updDone <- e.Update(t2, 1, []byte("from-t2")) }()
	select {
	case err := <-updDone:
		t.Fatalf("update got the lock during the committer's sync without ELR (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}

	store.disarm()
	close(store.gate)
	if err := <-c1; err != nil {
		t.Fatal(err)
	}
	if err := <-updDone; err != nil {
		t.Fatal(err)
	}
	mustCommit(t, e, t2)
	wantValue(t, e, 1, "from-t2")
}

// TestAbortWhileBlockedReleasesStaleGrant is the regression test for the
// stale-grant cleanup now centralized in activeAfterLockLocked: a
// transaction aborted while blocked in the lock manager receives its
// grant posthumously, and the operation must drop that hold — otherwise
// the object stays locked by a dead transaction forever.
func TestAbortWhileBlockedReleasesStaleGrant(t *testing.T) {
	e := newEngine(t)
	t1 := mustBegin(t, e)
	mustUpdate(t, e, t1, 1, "holder")
	t2 := mustBegin(t, e)

	updDone := make(chan error, 1)
	go func() { updDone <- e.Update(t2, 1, []byte("blocked")) }()
	deadline := time.Now().Add(2 * time.Second)
	for e.Metrics().Gauge("lock.waiters") != 1 {
		if time.Now().After(deadline) {
			t.Fatal("t2 never blocked on the lock")
		}
		time.Sleep(time.Millisecond)
	}

	// Abort t2 while it is blocked, then release the lock: the grant
	// lands for a dead transaction.
	mustAbort(t, e, t2)
	mustCommit(t, e, t1)
	if err := <-updDone; !errors.Is(err, ErrNoSuchTxn) {
		t.Fatalf("posthumous update error = %v, want ErrNoSuchTxn", err)
	}

	// The regression: a third transaction must be able to lock obj 1.
	t3 := mustBegin(t, e)
	upd3 := make(chan error, 1)
	go func() { upd3 <- e.Update(t3, 1, []byte("after")) }()
	select {
	case err := <-upd3:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("object still locked by a dead transaction's stale grant")
	}
	mustCommit(t, e, t3)
	wantValue(t, e, 1, "after")
}

// TestFormDependencyConcurrentNoCycle hammers dependency formation from
// racing goroutines (run under -race in CI) and asserts the graph never
// admits a cycle: every successful FormDependency kept the graph acyclic
// no matter how the cycle checks interleaved.
func TestFormDependencyConcurrentNoCycle(t *testing.T) {
	e := newEngine(t)
	const n = 8
	txs := make([]wal.TxID, n)
	for i := range txs {
		txs[i] = mustBegin(t, e)
	}
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Deterministic per-goroutine pair sequence; collectively the
			// goroutines attempt edges in both directions between many
			// pairs, so only the cycle check keeps the graph acyclic.
			for i := 0; i < 200; i++ {
				dep := txs[(g+i)%n]
				on := txs[(g*3+i*7+1)%n]
				if dep == on {
					continue
				}
				kind := AbortDependency
				if i%2 == 0 {
					kind = CommitDependency
				}
				err := e.FormDependency(dep, on, kind)
				if err != nil && !errors.Is(err, ErrDependencyCycle) {
					t.Errorf("FormDependency(t%d, t%d): %v", dep, on, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// Kahn's algorithm: the final graph must topologically sort.
	e.mu.Lock()
	indeg := make(map[wal.TxID]int, n)
	out := make(map[wal.TxID][]wal.TxID, n)
	for _, tx := range txs {
		indeg[tx] = 0
	}
	edges := 0
	for dep, list := range e.deps {
		for _, edge := range list {
			out[edge.on] = append(out[edge.on], dep)
			indeg[dep]++
			edges++
		}
	}
	e.mu.Unlock()
	if edges == 0 {
		t.Fatal("no edges formed; the hammer did not exercise anything")
	}
	var queue []wal.TxID
	for tx, d := range indeg {
		if d == 0 {
			queue = append(queue, tx)
		}
	}
	sorted := 0
	for len(queue) > 0 {
		tx := queue[0]
		queue = queue[1:]
		sorted++
		for _, next := range out[tx] {
			indeg[next]--
			if indeg[next] == 0 {
				queue = append(queue, next)
			}
		}
	}
	if sorted != n {
		t.Fatalf("dependency graph admitted a cycle: %d of %d transactions sorted", sorted, n)
	}
}

// TestELRCommitStatusDuringWindow: while the ack is deferred the
// transaction reports Committed (not Active), so cascading aborts cannot
// victimize it and dependents observe the right state.
func TestELRCommitStatusDuringWindow(t *testing.T) {
	e, store := newELREngine(t)
	t1 := mustBegin(t, e)
	mustUpdate(t, e, t1, 1, "v")
	store.arm()
	c1 := commitAsync(e, t1)
	<-store.entered
	e.mu.Lock()
	info := e.txns.Get(t1)
	status := txn.Aborted
	if info != nil {
		status = info.Status
	}
	pending := len(e.predurable)
	e.mu.Unlock()
	if status != txn.Committed {
		t.Fatalf("pre-durable ELR committer status = %v, want Committed", status)
	}
	if pending != 1 {
		t.Fatalf("predurable entries = %d, want 1", pending)
	}
	store.disarm()
	close(store.gate)
	if err := <-c1; err != nil {
		t.Fatal(err)
	}
}
