package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ariesrh/internal/lock"
	"ariesrh/internal/wal"
)

// TestConcurrentDisjointTransactions runs many goroutine transactions over
// disjoint object ranges; all must commit and all values must be correct.
func TestConcurrentDisjointTransactions(t *testing.T) {
	e := newEngine(t)
	const workers, perWorker = 8, 40
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tx, err := e.Begin()
				if err != nil {
					errs <- err
					return
				}
				obj := wal.ObjectID(w*10_000 + i + 1)
				if err := e.Update(tx, obj, []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					errs <- err
					return
				}
				if err := e.Commit(tx); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			wantValue(t, e, wal.ObjectID(w*10_000+i+1), fmt.Sprintf("w%d-%d", w, i))
		}
	}
}

// TestConcurrentContention hammers a small object set; deadlock victims
// retry, and the engine must neither hang nor corrupt values.
func TestConcurrentContention(t *testing.T) {
	e := newEngine(t)
	const workers = 6
	var wg sync.WaitGroup
	var fatal sync.Map
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				tx, err := e.Begin()
				if err != nil {
					fatal.Store(w, err)
					return
				}
				a := wal.ObjectID(uint64(w+i)%4 + 1)
				b := wal.ObjectID(uint64(w*i)%4 + 1)
				err1 := e.Update(tx, a, []byte("x"))
				var err2 error
				if err1 == nil {
					err2 = e.Update(tx, b, []byte("y"))
				}
				if errors.Is(err1, lock.ErrDeadlock) || errors.Is(err2, lock.ErrDeadlock) {
					if err := e.Abort(tx); err != nil {
						fatal.Store(w, err)
						return
					}
					continue
				}
				if err1 != nil {
					fatal.Store(w, err1)
					return
				}
				if err2 != nil {
					fatal.Store(w, err2)
					return
				}
				if err := e.Commit(tx); err != nil {
					fatal.Store(w, err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("contention test hung")
	}
	fatal.Range(func(k, v interface{}) bool {
		t.Fatalf("worker %v: %v", k, v)
		return false
	})
}

// TestConcurrentDelegationHandoff pipelines work between producer and
// consumer goroutines via delegation: producers create results and
// delegate them to a committing consumer transaction.
func TestConcurrentDelegationHandoff(t *testing.T) {
	e := newEngine(t)
	const producers, items = 4, 20
	type handoff struct {
		tx  wal.TxID
		obj wal.ObjectID
	}
	ch := make(chan handoff, producers*items)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < items; i++ {
				tx, err := e.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				obj := wal.ObjectID(p*1000 + i + 1)
				if err := e.Update(tx, obj, []byte(fmt.Sprintf("p%d-%d", p, i))); err != nil {
					t.Error(err)
					return
				}
				ch <- handoff{tx: tx, obj: obj}
			}
		}(p)
	}
	go func() { wg.Wait(); close(ch) }()

	// The consumer collects delegations in batches and commits them; the
	// producers then abort, and their delegated results must survive.
	var producedTxs []wal.TxID
	consumer, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for h := range ch {
		if err := e.Delegate(h.tx, consumer, h.obj); err != nil {
			t.Fatalf("delegate: %v", err)
		}
		producedTxs = append(producedTxs, h.tx)
		n++
	}
	if n != producers*items {
		t.Fatalf("received %d handoffs", n)
	}
	for _, tx := range producedTxs {
		if err := e.Abort(tx); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Commit(consumer); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < producers; p++ {
		for i := 0; i < items; i++ {
			wantValue(t, e, wal.ObjectID(p*1000+i+1), fmt.Sprintf("p%d-%d", p, i))
		}
	}
}

// TestFullScanUndoAblationEquivalent: the rejected full-scan undo produces
// the same state as the cluster sweep, at a higher visit count.
func TestFullScanUndoAblationEquivalent(t *testing.T) {
	run := func(fullScan bool) (*Engine, uint64) {
		e, err := New(Options{PoolSize: 64, FullScanUndo: fullScan})
		if err != nil {
			t.Fatal(err)
		}
		t1 := mustBegin(t, e)
		t2 := mustBegin(t, e)
		t3 := mustBegin(t, e)
		mustUpdate(t, e, t1, 1, "delegated")
		mustDelegate(t, e, t1, t2, 1)
		mustCommit(t, e, t2)
		mustUpdate(t, e, t1, 2, "loser") // early loser scope...
		// ...then winner traffic between the loser scopes: the full
		// scan must wade through it, the cluster sweep skips it.
		for i := 0; i < 100; i++ {
			w := mustBegin(t, e)
			mustUpdate(t, e, w, wal.ObjectID(100+i), "pad")
			mustCommit(t, e, w)
		}
		mustUpdate(t, e, t3, 3, "loser-too") // late loser scope
		if err := e.Log().Flush(e.Log().Head()); err != nil {
			t.Fatal(err)
		}
		before := e.Stats().RecBackwardVisited
		crashAndRecover(t, e)
		return e, e.Stats().RecBackwardVisited - before
	}
	cluster, clusterVisited := run(false)
	full, fullVisited := run(true)
	for _, obj := range []wal.ObjectID{1, 2, 3} {
		cv, cok, _ := cluster.ReadObject(obj)
		fv, fok, _ := full.ReadObject(obj)
		if string(cv) != string(fv) || (cok && len(cv) > 0) != (fok && len(fv) > 0) {
			t.Fatalf("object %d differs: cluster=%q full=%q", obj, cv, fv)
		}
	}
	wantValue(t, cluster, 1, "delegated")
	wantValue(t, cluster, 2, "")
	wantValue(t, cluster, 3, "")
	if fullVisited <= clusterVisited*2 {
		t.Fatalf("full scan visited %d vs cluster %d — expected a clear gap", fullVisited, clusterVisited)
	}
}
