package core

import (
	"bytes"
	"errors"
	"testing"

	"ariesrh/internal/obs"
	"ariesrh/internal/storage"
	"ariesrh/internal/wal"
)

func mustDo(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// shipAll drains the primary's durable log through a subscription, the
// same way the replication primary does.
func shipAll(t *testing.T, p *Engine) []*wal.Record {
	t.Helper()
	if err := p.Log().Flush(p.Log().Head()); err != nil {
		t.Fatal(err)
	}
	sub, err := p.Log().Subscribe(1)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	recs, err := sub.Next(0)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestFollowerReplaysAndPromotes is the end-to-end core contract: a
// follower fed the primary's durable log holds the same state recovery's
// forward pass would, and Promote — the existing backward pass — lands it
// on exactly the state the crashed primary recovers to.
func TestFollowerReplaysAndPromotes(t *testing.T) {
	p, err := New(Options{GroupCommit: GroupCommitOff})
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := p.Begin()
	t2, _ := p.Begin()
	t3, _ := p.Begin()
	// t1's update to 1 is delegated to t2, which commits: the update
	// survives even though t1 dies a loser.  t3 and t1's own update die.
	mustDo(t, p.Update(t1, 1, []byte("a1")))
	mustDo(t, p.Update(t2, 2, []byte("b1")))
	mustDo(t, p.Delegate(t1, t2, 1))
	mustDo(t, p.Commit(t2))
	mustDo(t, p.Update(t3, 3, []byte("c1")))
	mustDo(t, p.Update(t1, 4, []byte("d1")))

	f, err := New(Options{Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	recs := shipAll(t, p)
	if err := f.FollowerApply(recs); err != nil {
		t.Fatal(err)
	}
	if got, want := f.ReplayedLSN(), p.Log().Head(); got != want {
		t.Fatalf("ReplayedLSN = %d, want %d", got, want)
	}
	if h := f.Health(); h.State != StateFollower {
		t.Fatalf("follower health = %v", h.State)
	}

	// Follower reads see the replayed (pre-promotion) state: every
	// update is on the pages, losers included — exactly mid-forward-pass
	// recovery state.
	for obj, want := range map[wal.ObjectID]string{1: "a1", 2: "b1", 3: "c1", 4: "d1"} {
		v, ok, at, err := f.FollowerRead(obj)
		if err != nil || !ok || string(v) != want {
			t.Fatalf("FollowerRead(%d) = %q, %v, %v; want %q", obj, v, ok, err, want)
		}
		if at != f.ReplayedLSN() {
			t.Fatalf("read consistency point %d != replayed %d", at, f.ReplayedLSN())
		}
	}

	// Promotion's backward pass must satisfy the undo-visit invariants:
	// strictly decreasing LSNs, no position visited twice.
	var visits []wal.LSN
	f.SetEventHook(func(ev obs.Event) {
		if ev.Name == "undo.visit" {
			visits = append(visits, wal.LSN(ev.LSN))
		}
	})
	if err := f.Promote(); err != nil {
		t.Fatal(err)
	}
	f.SetEventHook(nil)
	for i := 1; i < len(visits); i++ {
		if visits[i] >= visits[i-1] {
			t.Fatalf("undo visits not strictly decreasing: %v", visits)
		}
	}
	if len(visits) == 0 {
		t.Fatal("promotion ran no backward pass despite live losers")
	}
	if f.IsFollower() {
		t.Fatal("still a follower after Promote")
	}

	// The promoted state must equal the crashed primary's recovered state.
	if err := p.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := p.Recover(); err != nil {
		t.Fatal(err)
	}
	for obj := wal.ObjectID(1); obj <= 4; obj++ {
		pv, pok, err := p.ReadObject(obj)
		if err != nil {
			t.Fatal(err)
		}
		fv, fok, err := f.ReadObject(obj)
		if err != nil {
			t.Fatal(err)
		}
		if pok != fok || !bytes.Equal(pv, fv) {
			t.Fatalf("object %d: promoted %q/%v, recovered primary %q/%v", obj, fv, fok, pv, pok)
		}
	}
	// And the promoted engine accepts new work.
	tx, err := f.Begin()
	if err != nil {
		t.Fatal(err)
	}
	mustDo(t, f.Update(tx, 9, []byte("post")))
	mustDo(t, f.Commit(tx))
}

func TestFollowerRejectsWritesAndGaps(t *testing.T) {
	f, err := New(Options{Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Begin(); !errors.Is(err, ErrFollower) {
		t.Fatalf("Begin on follower = %v, want ErrFollower", err)
	}
	if err := f.Quiesce(func() error { return nil }); !errors.Is(err, ErrFollower) {
		t.Fatalf("Quiesce on follower = %v, want ErrFollower", err)
	}
	// A gap in the stream is rejected before anything is applied.
	if err := f.FollowerApply([]*wal.Record{{Type: wal.TypeBegin, TxID: 1, LSN: 5}}); err == nil {
		t.Fatal("gap accepted")
	}
	if f.Log().Head() != 0 {
		t.Fatalf("gap appended anyway: head %d", f.Log().Head())
	}
	// Recover is not how a follower heals; Promote on a primary is an error.
	if err := f.Recover(); err == nil {
		t.Fatal("Recover on follower succeeded")
	}
	p, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Promote(); err == nil {
		t.Fatal("Promote on primary succeeded")
	}
	if err := p.FollowerApply(nil); err == nil {
		t.Fatal("FollowerApply on primary succeeded")
	}
}

// TestFollowerCatchUpFromLocalLog reopens existing stable state in
// follower mode: the forward pass replays the local log but leaves
// in-flight transactions live, so the stream (or Promote) decides their
// fate — unlike Recover, which would roll them back immediately.
func TestFollowerCatchUpFromLocalLog(t *testing.T) {
	logDir, master := wal.NewMemDir(), wal.NewMemStore()
	disk := storage.NewMemDisk()
	p, err := New(Options{LogDir: logDir, Disk: disk, MasterStore: master, GroupCommit: GroupCommitOff})
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := p.Begin()
	t2, _ := p.Begin()
	mustDo(t, p.Update(t1, 1, []byte("keep")))
	mustDo(t, p.Commit(t1))
	mustDo(t, p.Update(t2, 2, []byte("loser")))
	if err := p.Log().Flush(p.Log().Head()); err != nil {
		t.Fatal(err)
	}
	// Reopen the same stable state as a follower (no Close: the old
	// engine is simply abandoned, as after a primary failure).
	f, err := New(Options{LogDir: logDir, Disk: disk, MasterStore: master, Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := f.ReplayedLSN(), f.Log().Head(); got != want {
		t.Fatalf("ReplayedLSN = %d, want %d", got, want)
	}
	// t2 is still live, not rolled back.
	if v, ok, _, err := f.FollowerRead(2); err != nil || !ok || string(v) != "loser" {
		t.Fatalf("in-flight update missing after catch-up: %q %v %v", v, ok, err)
	}
	if err := f.Promote(); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := f.ReadObject(1); err != nil || !ok || string(v) != "keep" {
		t.Fatalf("committed value lost: %q %v %v", v, ok, err)
	}
	// The loser's insert is compensated back to its empty before-image.
	if v, _, err := f.ReadObject(2); err != nil || len(v) != 0 {
		t.Fatalf("loser survived promotion: %q err=%v", v, err)
	}
}

// TestFollowerFlushBoundsAcks pins the durability contract: FollowerFlush
// returns the LSN through which the local log is durable, and only that
// may be acknowledged upstream.
func TestFollowerFlushBoundsAcks(t *testing.T) {
	p, err := New(Options{GroupCommit: GroupCommitOff})
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := p.Begin()
	mustDo(t, p.Update(t1, 1, []byte("x")))
	mustDo(t, p.Commit(t1))

	f, err := New(Options{Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.FollowerApply(shipAll(t, p)); err != nil {
		t.Fatal(err)
	}
	if got := f.Log().FlushedLSN(); got != 0 {
		t.Fatalf("apply flushed on its own: %d", got)
	}
	durable, err := f.FollowerFlush()
	if err != nil {
		t.Fatal(err)
	}
	if durable != f.Log().Head() || f.Log().FlushedLSN() != durable {
		t.Fatalf("FollowerFlush = %d, head %d, flushed %d", durable, f.Log().Head(), f.Log().FlushedLSN())
	}
	// The follower's log is a record-identical prefix of the primary's:
	// Append re-derived the same LSNs and the encoding is deterministic.
	for lsn := wal.LSN(1); lsn <= durable; lsn++ {
		pr, err := p.Log().Get(lsn)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := f.Log().Get(lsn)
		if err != nil {
			t.Fatal(err)
		}
		pb, _ := wal.EncodeRecord(pr)
		fb, _ := wal.EncodeRecord(fr)
		if !bytes.Equal(pb, fb) {
			t.Fatalf("log diverges at %d:\nprimary  %v\nfollower %v", lsn, pr, fr)
		}
	}
}
