package core

import (
	"fmt"

	"ariesrh/internal/delegation"
	"ariesrh/internal/txn"
	"ariesrh/internal/wal"
)

// Savepoints implement partial rollback — one of the "variety of recovery
// primitives" the paper's conclusion calls for (§6: "making recovery a
// first-class concept").  A savepoint is an LSN marker; RollbackTo undoes
// exactly the updates the transaction is currently responsible for that
// were logged after the marker, writing CLRs as usual, and trims its
// scopes accordingly.
//
// Interaction with delegation follows from responsibility:
//
//   - updates the transaction delegated AWAY after the savepoint are NOT
//     undone (they are no longer its responsibility — the delegation
//     stands, exactly as a full abort would leave it);
//   - updates received THROUGH delegation after the savepoint ARE undone
//     (they are its responsibility, and they postdate the marker).
//
// Savepoints are volatile: they do not survive a crash (a crash aborts
// the transaction entirely), so nothing is logged for the savepoint
// itself, mirroring ARIES.

// Savepoint marks a rollback point inside a transaction.
type Savepoint struct {
	tx  wal.TxID
	lsn wal.LSN
}

// Savepoint records a rollback point for tx at the current end of its
// history.
func (e *Engine) Savepoint(tx wal.TxID) (Savepoint, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.writableLocked(); err != nil {
		return Savepoint{}, err
	}
	if _, err := e.activeInfo(tx); err != nil {
		return Savepoint{}, err
	}
	return Savepoint{tx: tx, lsn: e.log.Head()}, nil
}

// RollbackTo undoes every update tx is responsible for with LSN greater
// than the savepoint, in reverse LSN order, and trims tx's scopes to the
// savepoint.  The transaction remains active and may continue.
func (e *Engine) RollbackTo(sp Savepoint) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.writableLocked(); err != nil {
		return err
	}
	if _, err := e.activeInfo(sp.tx); err != nil {
		return err
	}
	ol, ok := e.state[sp.tx]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchTxn, sp.tx)
	}
	// Clip each scope to the part after the savepoint and undo that.
	var after []delegation.Scope
	for _, s := range ol.OwnedScopes(sp.tx) {
		if s.Last <= sp.lsn {
			continue
		}
		clipped := s
		if clipped.First <= sp.lsn {
			clipped.First = sp.lsn + 1
		}
		after = append(after, clipped)
	}
	if err := e.undoScopes(after, nil); err != nil {
		return err
	}
	// Trim the object list: drop or shorten scopes past the marker.
	e.state[sp.tx] = trimObList(ol, sp.lsn)
	return nil
}

// trimObList returns a copy of ol with every scope clipped to LSNs ≤ cut;
// entries left with no scopes are dropped.
func trimObList(ol *delegation.ObList, cut wal.LSN) *delegation.ObList {
	out := delegation.NewObList()
	for _, obj := range ol.Objects() {
		src := ol.Entry(obj)
		dst := &delegation.Entry{Deleg: src.Deleg}
		for _, s := range src.Closed {
			if s.First > cut {
				continue
			}
			if s.Last > cut {
				s.Last = cut
			}
			dst.Closed = append(dst.Closed, s)
		}
		if src.HasActive && src.Active.First <= cut {
			if src.Active.Last > cut {
				// The active scope straddled the savepoint: its
				// tail was just undone (CLRs written).  Close the
				// surviving prefix so a later update opens a FRESH
				// scope rather than re-extending this one across
				// the compensated gap — re-covering those LSNs
				// would make a later full abort undo them twice.
				clipped := src.Active
				clipped.Last = cut
				dst.Closed = append(dst.Closed, clipped)
			} else {
				dst.HasActive = true
				dst.Active = src.Active
			}
		}
		if len(dst.Closed) > 0 || dst.HasActive {
			out.SetEntry(obj, dst)
		}
	}
	return out
}

// MinRequiredLSN returns the oldest log record a future recovery could
// need: the minimum of the last checkpoint's redo start and the first LSN
// of any live scope.  Everything before it may be archived.
//
// This exposes a consequence of delegation the paper leaves implicit:
// because a delegated scope can travel between long-lived transactions,
// a live scope may reach arbitrarily far back in the log, pinning it —
// log reclamation interacts with the transaction model, not just with
// checkpoints.
func (e *Engine) MinRequiredLSN() (wal.LSN, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return wal.NilLSN, ErrCrashed
	}
	min := e.log.Head() + 1
	// Checkpoint bound: next recovery starts at the last checkpoint's
	// redo start (or 1 with no checkpoint).
	ckptEnd, err := e.master.Get()
	if err != nil {
		return wal.NilLSN, err
	}
	if ckptEnd == wal.NilLSN {
		if e.log.Head() == 0 {
			return 1, nil
		}
		min = 1
	} else {
		rec, err := e.log.Get(ckptEnd)
		if err != nil {
			return wal.NilLSN, err
		}
		ck, err := decodeCheckpoint(rec.Payload)
		if err != nil {
			return wal.NilLSN, err
		}
		redoStart := ck.beginLSN
		for _, recLSN := range ck.dpt {
			if recLSN != wal.NilLSN && recLSN < redoStart {
				redoStart = recLSN
			}
		}
		if redoStart < min {
			min = redoStart
		}
	}
	// Scope bound: any live transaction's scopes may need undoing.
	for _, ol := range e.state {
		if first := ol.MinFirst(); first != wal.NilLSN && first < min {
			min = first
		}
	}
	// Uncommitted chains: a live transaction's own records back to its
	// begin may be traversed (e.g. CLR UndoNextLSN bookkeeping).  A
	// prepared (in-doubt) transaction is live in exactly the same sense:
	// the decision may yet be abort, and its whole chain must survive
	// for the undo.
	for _, info := range e.txns.Snapshot() {
		if (info.Status == txn.Active || info.Status == txn.Prepared) && info.LastLSN != wal.NilLSN {
			// Conservative: keep from its first record; scopes
			// already bound updates, this bounds begin records.
			if first := e.beginOf(info.ID); first != wal.NilLSN && first < min {
				min = first
			}
		}
	}
	// Decision pins: a retained coordinator commit decision must stay
	// re-derivable from this shard's log until every participant has a
	// durable commit (ReleaseGlobal), or an in-doubt peer recovering
	// after an archive could no longer learn the verdict and presumed
	// abort would contradict a committed participant.  Mirrors repl's
	// retention pins: the prepare record that binds the gid is the pin.
	for _, g := range e.globals {
		if g.prepareLSN != wal.NilLSN && g.prepareLSN < min {
			min = g.prepareLSN
		}
	}
	return min, nil
}

// ArchiveLog reclaims log space: it computes MinRequiredLSN and discards
// every earlier record from the log, compacting the stable device.  It
// returns the new base (the highest archived LSN).  Safe at any time; with
// live delegated scopes reaching far back it simply reclaims little.
func (e *Engine) ArchiveLog() (wal.LSN, error) {
	min, err := e.MinRequiredLSN()
	if err != nil {
		return wal.NilLSN, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.writableLocked(); err != nil {
		// Compaction rewrites the stable device; a degraded device
		// must not be touched.
		return wal.NilLSN, err
	}
	if min <= 1 {
		return e.log.Base(), nil
	}
	upTo := min - 1
	if flushed := e.log.FlushedLSN(); upTo > flushed {
		upTo = flushed
	}
	if err := e.log.Archive(upTo); err != nil {
		return wal.NilLSN, err
	}
	return e.log.Base(), nil
}

// beginOf walks tx's backward chain to its begin record; used only by the
// archive bound, which is not on the hot path.
func (e *Engine) beginOf(tx wal.TxID) wal.LSN {
	info := e.txns.Get(tx)
	if info == nil {
		return wal.NilLSN
	}
	lsn := info.LastLSN
	for lsn != wal.NilLSN {
		rec, err := e.log.Get(lsn)
		if err != nil {
			return wal.NilLSN
		}
		if rec.Type == wal.TypeBegin {
			return lsn
		}
		prev := rec.PrevLSN
		if (rec.Type == wal.TypeDelegate || rec.Type == wal.TypeDelegateOut) && rec.Tee == tx {
			prev = rec.TeePrev
		}
		if prev >= lsn {
			return wal.NilLSN // defensive: chains must strictly decrease
		}
		lsn = prev
	}
	return wal.NilLSN
}
