package core

import (
	"errors"
	"fmt"
	"time"

	"ariesrh/internal/delegation"
	"ariesrh/internal/obs"
	"ariesrh/internal/txn"
	"ariesrh/internal/wal"
)

// ErrInjectedRecoveryFailure is returned by Recover when an armed
// failpoint fires (see SetRecoveryFailpoint).
var ErrInjectedRecoveryFailure = errors.New("core: injected recovery failure")

// Recover restores the engine after a Crash, following §3.6:
//
//  1. A single forward pass (analysis + redo) from the last checkpoint —
//     or from the minimum recLSN in its dirty-page table, if smaller —
//     rebuilds the transaction table and the object lists, replaying
//     delegate records into the scopes exactly as normal processing did,
//     and repeats history by redoing logged updates not yet on the pages.
//  2. Winners (committed before the crash) and Losers (everything else,
//     including transactions that had aborted) are identified; LsrScopes
//     is the union of the loser objects' scopes.
//  3. The backward pass sweeps the clusters of overlapping loser scopes in
//     strictly decreasing LSN order, undoing exactly the loser updates —
//     updates whose *final delegatee* is a loser — and writing a CLR per
//     undo.  Updates invoked by losers but delegated to winners survive;
//     updates invoked by winners but delegated to losers are obliterated.
//
// The log is never modified in place: history is rewritten by
// interpretation, not mutation.
func (e *Engine) Recover() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.crashed {
		return fmt.Errorf("core: Recover called without a crash")
	}
	// Start from a clean slate even if a previous Recover attempt died
	// midway (e.g. an injected failure): replaying analysis onto
	// half-built tables would double-apply delegate records.
	e.txns.Reset(1)
	e.state = delegation.State{}

	// Trace bookkeeping: the per-run counters are computed as deltas of
	// the cumulative stats (safe — the latch is held throughout).
	e.met.recRuns.Inc()
	totalStart := time.Now()
	statsBefore := e.stats
	clustersBefore := e.met.undoClusters.Load()

	// ---- Locate the last complete checkpoint. ----
	scanStart := wal.LSN(1)
	analysisAfter := wal.NilLSN // records at or below this only redo
	head := e.log.Head()
	if ckptEnd, err := e.master.Get(); err != nil {
		return err
	} else if ckptEnd != wal.NilLSN && ckptEnd <= head {
		rec, err := e.log.Get(ckptEnd)
		if err != nil {
			return err
		}
		if rec.Type != wal.TypeCheckpointEnd {
			return fmt.Errorf("core: master record points at %v, not a checkpoint end", rec.Type)
		}
		ck, err := decodeCheckpoint(rec.Payload)
		if err != nil {
			return err
		}
		for _, info := range ck.txns {
			reg := e.txns.Register(info.ID)
			reg.Status = info.Status
			reg.LastLSN = info.LastLSN
			reg.UndoNextLSN = info.UndoNextLSN
		}
		e.state = ck.state
		redoStart := ck.beginLSN
		for _, recLSN := range ck.dpt {
			if recLSN == wal.NilLSN {
				// A dirty page with no known recLSN forces a
				// full redo (defensive; the buffer layer always
				// records one).
				redoStart = 1
				break
			}
			if recLSN < redoStart {
				redoStart = recLSN
			}
		}
		scanStart = redoStart
		analysisAfter = ckptEnd
	}

	// ---- Forward pass: analysis + redo in one sweep (§3.6.1). ----
	// applied tracks, per object, the LSN through which the stable page
	// image already reflects the object's updates (discovered lazily
	// from the pageLSN of the page holding it); redo applies only
	// younger records, making redo idempotent across repeated crashes.
	applied := make(map[wal.ObjectID]wal.LSN)
	compensated := make(map[wal.LSN]bool)
	forwardStart := time.Now()
	e.log.ResetReadCursor()
	err := e.log.Scan(scanStart, wal.NilLSN, func(rec *wal.Record) (bool, error) {
		e.stats.RecForwardRecords++
		analyze := rec.LSN > analysisAfter
		switch rec.Type {
		case wal.TypeBegin:
			if analyze {
				info := e.txns.Register(rec.TxID)
				info.Status = txn.Active
				info.LastLSN = rec.LSN
				e.state[rec.TxID] = delegation.NewObList()
			}
		case wal.TypeUpdate, wal.TypeIncrement:
			if analyze {
				info := e.txns.Register(rec.TxID)
				info.LastLSN = rec.LSN
				ol := e.state[rec.TxID]
				if ol == nil {
					ol = delegation.NewObList()
					e.state[rec.TxID] = ol
				}
				ol.RecordUpdate(rec.TxID, rec.Object, rec.LSN)
			}
			if rec.Type == wal.TypeIncrement {
				if err := e.redoApplyDelta(applied, rec.Object, rec.Delta, rec.LSN); err != nil {
					return false, err
				}
			} else if err := e.redoApply(applied, rec.Object, rec.After, rec.LSN); err != nil {
				return false, err
			}
		case wal.TypeCLR:
			compensated[rec.Compensates] = true
			if analyze {
				if info := e.txns.Get(rec.TxID); info != nil {
					info.LastLSN = rec.LSN
				}
			}
			if rec.Logical {
				if err := e.redoApplyDelta(applied, rec.Object, rec.Delta, rec.LSN); err != nil {
					return false, err
				}
			} else if err := e.redoApply(applied, rec.Object, rec.Before, rec.LSN); err != nil {
				return false, err
			}
		case wal.TypeDelegate:
			if analyze {
				torList := e.state[rec.Tor]
				teeList := e.state[rec.Tee]
				if torList == nil || teeList == nil {
					return false, fmt.Errorf("core: delegate record %d references unknown transactions", rec.LSN)
				}
				torList.DelegateTo(teeList, rec.Tor, rec.Object)
				if torInfo := e.txns.Get(rec.Tor); torInfo != nil {
					torInfo.LastLSN = rec.LSN
				}
				if teeInfo := e.txns.Get(rec.Tee); teeInfo != nil {
					teeInfo.LastLSN = rec.LSN
				}
			}
		case wal.TypeCommit:
			if analyze {
				e.stats.RecWinners++
				if info := e.txns.Get(rec.TxID); info != nil {
					info.Status = txn.Committed
					info.LastLSN = rec.LSN
				}
			}
		case wal.TypeAbort:
			if analyze {
				if info := e.txns.Get(rec.TxID); info != nil {
					info.Status = txn.Aborted
					info.LastLSN = rec.LSN
				}
			}
		case wal.TypeEnd:
			if analyze {
				e.txns.Remove(rec.TxID)
				delete(e.state, rec.TxID)
			}
		case wal.TypeCheckpointBegin, wal.TypeCheckpointEnd:
			// Checkpoints carry no database changes.
		default:
			return false, fmt.Errorf("core: unexpected record %v during recovery", rec.Type)
		}
		return true, nil
	})
	if err != nil {
		return err
	}
	forwardDur := time.Since(forwardStart)

	// ---- Classify winners and losers; build LsrScopes (§3.6.1). ----
	var losers []wal.TxID
	for _, info := range e.txns.Snapshot() {
		if info.Status == txn.Committed {
			// Winner whose End record was lost with the crash:
			// its effects are already redone; finish bookkeeping.
			if _, err := e.log.Append(&wal.Record{Type: wal.TypeEnd, TxID: info.ID, PrevLSN: info.LastLSN}); err != nil {
				return err
			}
			e.txns.Remove(info.ID)
			delete(e.state, info.ID)
			continue
		}
		losers = append(losers, info.ID)
	}
	var lsrScopes []delegation.Scope
	for _, id := range losers {
		e.stats.RecLosers++
		if ol := e.state[id]; ol != nil {
			lsrScopes = append(lsrScopes, ol.OwnedScopes(id)...)
		}
	}

	// ---- Backward pass: cluster sweep undoing loser updates (§3.6.2). ----
	backwardStart := time.Now()
	undoneBefore := e.stats.CLRs
	if e.opts.FullScanUndo {
		// Ablation: the rejected alternative — "scan all log records
		// backwards, identifying the loser updates … unnecessarily
		// inspecting many winner updates."
		if err := e.undoScopesFullScan(lsrScopes, compensated); err != nil {
			return err
		}
	} else if err := e.undoScopes(lsrScopes, compensated); err != nil {
		return err
	}
	e.stats.RecCLRs += e.stats.CLRs - undoneBefore
	e.stats.RecUndone += e.stats.CLRs - undoneBefore
	backwardDur := time.Since(backwardStart)

	// ---- Terminate losers. ----
	for _, id := range losers {
		info := e.txns.Get(id)
		if info == nil {
			continue
		}
		if info.Status != txn.Aborted {
			lsn, err := e.log.Append(&wal.Record{Type: wal.TypeAbort, TxID: id, PrevLSN: info.LastLSN})
			if err != nil {
				return err
			}
			info.LastLSN = lsn
		}
		if _, err := e.log.Append(&wal.Record{Type: wal.TypeEnd, TxID: id, PrevLSN: info.LastLSN}); err != nil {
			return err
		}
		e.txns.Remove(id)
		delete(e.state, id)
	}
	if err := e.log.Flush(e.log.Head()); err != nil {
		return err
	}
	e.crashed = false

	// ---- Record the trace and the cumulative recovery metrics. ----
	delta := func(after, before uint64) uint64 { return after - before }
	e.lastTrace = RecoveryTrace{
		ForwardDur:      forwardDur,
		BackwardDur:     backwardDur,
		TotalDur:        time.Since(totalStart),
		ForwardRecords:  delta(e.stats.RecForwardRecords, statsBefore.RecForwardRecords),
		Redone:          delta(e.stats.RecRedone, statsBefore.RecRedone),
		BackwardVisited: delta(e.stats.RecBackwardVisited, statsBefore.RecBackwardVisited),
		BackwardSkipped: delta(e.stats.RecBackwardSkipped, statsBefore.RecBackwardSkipped),
		Clusters:        e.met.undoClusters.Load() - clustersBefore,
		CLRs:            delta(e.stats.RecCLRs, statsBefore.RecCLRs),
		Losers:          delta(e.stats.RecLosers, statsBefore.RecLosers),
		Winners:         delta(e.stats.RecWinners, statsBefore.RecWinners),
	}
	e.met.recForwardRecords.Add(e.lastTrace.ForwardRecords)
	e.met.recRedone.Add(e.lastTrace.Redone)
	e.met.recCLRs.Add(e.lastTrace.CLRs)
	e.met.recLosers.Add(e.lastTrace.Losers)
	e.met.recWinners.Add(e.lastTrace.Winners)
	e.met.recForwardNs.Observe(forwardDur)
	e.met.recBackwardNs.Observe(backwardDur)
	e.met.recTotalNs.Observe(e.lastTrace.TotalDur)
	if e.reg.HasEventHook() {
		e.reg.Emit(obs.Event{Name: "recovery.complete", Value: int64(e.lastTrace.CLRs), Dur: e.lastTrace.TotalDur})
	}
	// RecoveryComplete.
	return nil
}

// undoScopesFullScan is the ablation counterpart of undoScopes: it visits
// EVERY log position from the head down to the oldest loser scope,
// checking each update against the scopes.  Functionally identical to the
// cluster sweep; the visit counters expose the cost difference the paper's
// cluster design avoids.
func (e *Engine) undoScopesFullScan(scopes []delegation.Scope, compensated map[wal.LSN]bool) error {
	if len(scopes) == 0 {
		return nil
	}
	low := scopes[0].First
	high := scopes[0].Last
	for _, s := range scopes[1:] {
		if s.First < low {
			low = s.First
		}
		if s.Last > high {
			high = s.Last
		}
	}
	hooked := e.reg.HasEventHook()
	for k := high; k >= low && k != wal.NilLSN; k-- {
		e.stats.RecBackwardVisited++
		e.met.undoVisited.Inc()
		if hooked {
			e.reg.Emit(obs.Event{Name: "undo.visit", LSN: uint64(k)})
		}
		rec, err := e.log.Get(k)
		if err != nil {
			return err
		}
		if !rec.IsUndoable() || compensated[k] {
			continue
		}
		for _, s := range scopes {
			if s.Invoker == rec.TxID && s.Object == rec.Object && s.Contains(k) {
				if rec.Type == wal.TypeIncrement {
					if err := e.undoIncrement(s.Owner, rec); err != nil {
						return err
					}
				} else if err := e.undoUpdate(s.Owner, rec); err != nil {
					return err
				}
				break
			}
		}
	}
	return nil
}

// redoApply repeats history for one logged change: the value is applied
// unless the object's stable image already reflects it.  On the first
// touch of an object the page image's coverage is discovered from its
// pageLSN: a page flushed at pageLSN pl contains exactly the updates with
// LSN ≤ pl for every object stored in it.
func (e *Engine) redoApply(applied map[wal.ObjectID]wal.LSN, obj wal.ObjectID, val []byte, lsn wal.LSN) error {
	la, ok := applied[obj]
	if !ok {
		pl, err := e.store.PageLSN(obj)
		if err != nil {
			return err
		}
		la = pl
		applied[obj] = la
	}
	if lsn <= la {
		return nil
	}
	if err := e.store.Write(obj, val, lsn); err != nil {
		return err
	}
	applied[obj] = lsn
	e.stats.RecRedone++
	return nil
}

// redoApplyDelta repeats history for a logical (increment or logical-CLR)
// change, with the same per-object coverage discipline as redoApply.
func (e *Engine) redoApplyDelta(applied map[wal.ObjectID]wal.LSN, obj wal.ObjectID, delta int64, lsn wal.LSN) error {
	la, ok := applied[obj]
	if !ok {
		pl, err := e.store.PageLSN(obj)
		if err != nil {
			return err
		}
		la = pl
		applied[obj] = la
	}
	if lsn <= la {
		return nil
	}
	if err := e.applyDelta(obj, delta, lsn); err != nil {
		return err
	}
	applied[obj] = lsn
	e.stats.RecRedone++
	return nil
}

// IsCrashed reports whether the engine is between Crash and Recover.
func (e *Engine) IsCrashed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.crashed
}

// ErrIs reports whether err matches any engine sentinel; convenience for
// callers that treat deadlock and ill-formed delegation uniformly.
func ErrIs(err error, sentinels ...error) bool {
	for _, s := range sentinels {
		if errors.Is(err, s) {
			return true
		}
	}
	return false
}
