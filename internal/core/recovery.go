package core

import (
	"errors"
	"fmt"
	"time"

	"ariesrh/internal/delegation"
	"ariesrh/internal/obs"
	"ariesrh/internal/txn"
	"ariesrh/internal/wal"
)

// ErrInjectedRecoveryFailure is returned by Recover when an armed
// failpoint fires (see SetRecoveryFailpoint).
var ErrInjectedRecoveryFailure = errors.New("core: injected recovery failure")

// replayState is the working state of recovery's forward pass (analysis +
// redo).  Recover builds one for the duration of the scan; a follower
// engine keeps one alive for its whole lifetime, because a follower IS a
// forward pass that never finishes — until Promote runs the backward pass
// over it.
type replayState struct {
	// applied tracks, per object, the LSN through which the stable page
	// image already reflects the object's updates (discovered lazily from
	// the pageLSN of the page holding it); redo applies only younger
	// records, making redo idempotent across repeated crashes.
	applied map[wal.ObjectID]wal.LSN
	// compensated lists the update LSNs already undone by a CLR seen in
	// the forward direction; the backward pass skips them.
	compensated map[wal.LSN]bool
}

func newReplayState() *replayState {
	return &replayState{
		applied:     make(map[wal.ObjectID]wal.LSN),
		compensated: make(map[wal.LSN]bool),
	}
}

// recoveryBook carries the trace bookkeeping captured at the start of a
// Recover (or Promote) into finishRecoveryLocked, which computes the
// per-run trace as deltas of the cumulative stats (safe — the latch is
// held throughout).
type recoveryBook struct {
	statsBefore    Stats
	clustersBefore uint64
	totalStart     time.Time
	forwardDur     time.Duration
}

// Recover restores the engine after a Crash, following §3.6:
//
//  1. A single forward pass (analysis + redo) from the last checkpoint —
//     or from the minimum recLSN in its dirty-page table, if smaller —
//     rebuilds the transaction table and the object lists, replaying
//     delegate records into the scopes exactly as normal processing did,
//     and repeats history by redoing logged updates not yet on the pages.
//  2. Winners (committed before the crash) and Losers (everything else,
//     including transactions that had aborted) are identified; LsrScopes
//     is the union of the loser objects' scopes.
//  3. The backward pass sweeps the clusters of overlapping loser scopes in
//     strictly decreasing LSN order, undoing exactly the loser updates —
//     updates whose *final delegatee* is a loser — and writing a CLR per
//     undo.  Updates invoked by losers but delegated to winners survive;
//     updates invoked by winners but delegated to losers are obliterated.
//
// The log is never modified in place: history is rewritten by
// interpretation, not mutation.
func (e *Engine) Recover() error {
	if e.opts.ParallelRecovery {
		return e.recoverParallel()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.follower {
		return fmt.Errorf("core: a follower does not Recover; reopen it in follower mode or Promote it")
	}
	if !e.crashed {
		return fmt.Errorf("core: Recover called without a crash")
	}
	// Start from a clean slate even if a previous Recover attempt died
	// midway (e.g. an injected failure): replaying analysis onto
	// half-built tables would double-apply delegate records.
	e.txns.Reset(1)
	e.state = delegation.State{}
	e.prepared = make(map[wal.TxID]preparedInfo)
	e.globals = make(map[uint64]globalDecision)

	e.met.recRuns.Inc()
	book := recoveryBook{
		totalStart:     time.Now(),
		statsBefore:    e.stats,
		clustersBefore: e.met.undoClusters.Load(),
	}

	scanStart, analysisAfter, err := e.locateCheckpointLocked()
	if err != nil {
		return err
	}

	// ---- Forward pass: analysis + redo in one sweep (§3.6.1). ----
	rs := newReplayState()
	forwardStart := time.Now()
	e.log.ResetReadCursor()
	err = e.log.Scan(scanStart, wal.NilLSN, func(rec *wal.Record) (bool, error) {
		e.stats.RecForwardRecords++
		if err := e.applyRecordLocked(rec, rec.LSN > analysisAfter, rs); err != nil {
			return false, err
		}
		return true, nil
	})
	if err != nil {
		return err
	}
	book.forwardDur = time.Since(forwardStart)

	return e.finishRecoveryLocked(rs, book)
}

// locateCheckpointLocked consults the master record, seeds the transaction
// table and the object lists from the last complete checkpoint, and
// returns where the forward scan starts (the checkpoint's redo point, or
// LSN 1 without one) and the LSN at or below which records are redo-only
// because analysis state comes from the checkpoint snapshot.
func (e *Engine) locateCheckpointLocked() (scanStart, analysisAfter wal.LSN, err error) {
	scanStart = 1
	analysisAfter = wal.NilLSN
	head := e.log.Head()
	ckptEnd, err := e.master.Get()
	if err != nil {
		return 0, 0, err
	}
	if ckptEnd == wal.NilLSN || ckptEnd > head {
		return scanStart, analysisAfter, nil
	}
	rec, err := e.log.Get(ckptEnd)
	if err != nil {
		return 0, 0, err
	}
	if rec.Type != wal.TypeCheckpointEnd {
		return 0, 0, fmt.Errorf("core: master record points at %v, not a checkpoint end", rec.Type)
	}
	ck, err := decodeCheckpoint(rec.Payload)
	if err != nil {
		return 0, 0, err
	}
	for _, info := range ck.txns {
		reg := e.txns.Register(info.ID)
		reg.Status = info.Status
		reg.LastLSN = info.LastLSN
		reg.UndoNextLSN = info.UndoNextLSN
	}
	e.state = ck.state
	for tx, pi := range ck.prepared {
		e.prepared[tx] = pi
		if pi.gid > e.maxGID {
			e.maxGID = pi.gid
		}
	}
	for gid, g := range ck.globals {
		e.globals[gid] = g
		if gid > e.maxGID {
			e.maxGID = gid
		}
	}
	redoStart := ck.beginLSN
	for _, recLSN := range ck.dpt {
		if recLSN == wal.NilLSN {
			// A dirty page with no known recLSN forces a full redo
			// (defensive; the buffer layer always records one).
			redoStart = 1
			break
		}
		if recLSN < redoStart {
			redoStart = recLSN
		}
	}
	return redoStart, ckptEnd, nil
}

// applyRecordLocked replays one log record into the volatile tables: when
// analyze is set the transaction table and the object lists absorb it
// (delegate records rewrite scopes exactly as normal processing did), and
// updates/CLRs are redone onto pages not already covering them.  This is
// the body of recovery's forward pass; a follower engine calls it once
// per shipped record, forever.
func (e *Engine) applyRecordLocked(rec *wal.Record, analyze bool, rs *replayState) error {
	if err := e.analyzeRecordLocked(rec, analyze, rs); err != nil {
		return err
	}
	switch rec.Type {
	case wal.TypeUpdate:
		return e.redoApply(rs.applied, rec.Object, rec.After, rec.LSN)
	case wal.TypeIncrement:
		return e.redoApplyDelta(rs.applied, rec.Object, rec.Delta, rec.LSN)
	case wal.TypeCLR:
		if rec.Logical {
			return e.redoApplyDelta(rs.applied, rec.Object, rec.Delta, rec.LSN)
		}
		return e.redoApply(rs.applied, rec.Object, rec.Before, rec.LSN)
	}
	return nil
}

// analyzeRecordLocked is the analysis half of the forward pass: the
// transaction-table and object-list bookkeeping for one record, with no
// page access.  The parallel pipeline runs it sequentially in LSN order
// over the scanned shards (analysis is inherently ordered — a delegate
// record rewrites the scopes the records before it built) while the redo
// half is deferred to the per-object chains.
func (e *Engine) analyzeRecordLocked(rec *wal.Record, analyze bool, rs *replayState) error {
	switch rec.Type {
	case wal.TypeBegin:
		if analyze {
			info := e.txns.Register(rec.TxID)
			info.Status = txn.Active
			info.LastLSN = rec.LSN
			e.state[rec.TxID] = delegation.NewObList()
		}
	case wal.TypeUpdate, wal.TypeIncrement:
		if analyze {
			info := e.txns.Register(rec.TxID)
			info.LastLSN = rec.LSN
			ol := e.state[rec.TxID]
			if ol == nil {
				ol = delegation.NewObList()
				e.state[rec.TxID] = ol
			}
			ol.RecordUpdate(rec.TxID, rec.Object, rec.LSN)
		}
	case wal.TypeCLR:
		rs.compensated[rec.Compensates] = true
		if analyze {
			if info := e.txns.Get(rec.TxID); info != nil {
				info.LastLSN = rec.LSN
			}
		}
	case wal.TypeDelegate:
		if analyze {
			torList := e.state[rec.Tor]
			teeList := e.state[rec.Tee]
			if torList == nil || teeList == nil {
				return fmt.Errorf("core: delegate record %d references unknown transactions", rec.LSN)
			}
			torList.DelegateTo(teeList, rec.Tor, rec.Object)
			if torInfo := e.txns.Get(rec.Tor); torInfo != nil {
				torInfo.LastLSN = rec.LSN
			}
			if teeInfo := e.txns.Get(rec.Tee); teeInfo != nil {
				teeInfo.LastLSN = rec.LSN
			}
		}
	case wal.TypeCommit:
		if analyze {
			e.stats.RecWinners++
			if info := e.txns.Get(rec.TxID); info != nil {
				info.Status = txn.Committed
				info.LastLSN = rec.LSN
			}
			// A commit following a prepare record resolves the global
			// transaction.  On the coordinator (the prepare record named
			// this shard) retain the decision — queryable by peer shards,
			// archive-pinned at the prepare record — until released; a
			// participant's commit merely applied it, so retain nothing.
			if pi, ok := e.prepared[rec.TxID]; ok {
				if pi.coord == e.opts.ShardID {
					e.globals[pi.gid] = globalDecision{prepareLSN: pi.prepareLSN}
				}
				delete(e.prepared, rec.TxID)
			}
		}
	case wal.TypeAbort:
		if analyze {
			if info := e.txns.Get(rec.TxID); info != nil {
				info.Status = txn.Aborted
				info.LastLSN = rec.LSN
			}
			// An aborted voter is no longer in-doubt; presumed abort
			// retains nothing.
			delete(e.prepared, rec.TxID)
		}
	case wal.TypeEnd:
		if analyze {
			e.txns.Remove(rec.TxID)
			delete(e.state, rec.TxID)
			delete(e.prepared, rec.TxID)
		}
	case wal.TypePrepare:
		if analyze {
			info := e.txns.Register(rec.TxID)
			info.Status = txn.Prepared
			info.LastLSN = rec.LSN
			e.prepared[rec.TxID] = preparedInfo{gid: rec.GID, coord: rec.Shard, prepareLSN: rec.LSN}
			if rec.GID > e.maxGID {
				e.maxGID = rec.GID
			}
		}
	case wal.TypeDelegateOut:
		// The home-shard half of a cross-shard delegation transfers
		// responsibility between two local transactions exactly like a
		// plain delegate record; the gid/peer fields are audit trail.
		if analyze {
			torList := e.state[rec.Tor]
			teeList := e.state[rec.Tee]
			if torList == nil || teeList == nil {
				return fmt.Errorf("core: delegate-out record %d references unknown transactions", rec.LSN)
			}
			torList.DelegateTo(teeList, rec.Tor, rec.Object)
			if torInfo := e.txns.Get(rec.Tor); torInfo != nil {
				torInfo.LastLSN = rec.LSN
			}
			if teeInfo := e.txns.Get(rec.Tee); teeInfo != nil {
				teeInfo.LastLSN = rec.LSN
			}
			if rec.GID > e.maxGID {
				e.maxGID = rec.GID
			}
		}
	case wal.TypeDelegateIn:
		// Acquirer-side bookkeeping of a cross-shard delegation: no state
		// change on this shard — the object and its scopes live on the
		// home shard — only the backward chain advances.
		if analyze {
			info := e.txns.Register(rec.TxID)
			info.LastLSN = rec.LSN
			if rec.GID > e.maxGID {
				e.maxGID = rec.GID
			}
		}
	case wal.TypeCheckpointBegin, wal.TypeCheckpointEnd:
		// Checkpoints carry no database changes.
	default:
		return fmt.Errorf("core: unexpected record %v during recovery", rec.Type)
	}
	return nil
}

// finishRecoveryLocked runs everything after the forward pass:
// classification, the backward cluster sweep, loser termination, the final
// log force, and the trace.  Recover calls it after its scan; Promote
// calls it over the follower's continuously maintained replay state —
// promotion IS this function, there is no separate code path.
func (e *Engine) finishRecoveryLocked(rs *replayState, book recoveryBook) error {
	losers, lsrScopes, err := e.classifyLocked()
	if err != nil {
		return err
	}

	// ---- Backward pass: cluster sweep undoing loser updates (§3.6.2). ----
	backwardStart := time.Now()
	undoneBefore := e.stats.CLRs
	if e.opts.FullScanUndo {
		// Ablation: the rejected alternative — "scan all log records
		// backwards, identifying the loser updates … unnecessarily
		// inspecting many winner updates."
		if err := e.undoScopesFullScan(lsrScopes, rs.compensated); err != nil {
			return err
		}
	} else if err := e.undoScopes(lsrScopes, rs.compensated); err != nil {
		return err
	}
	e.stats.RecCLRs += e.stats.CLRs - undoneBefore
	e.stats.RecUndone += e.stats.CLRs - undoneBefore
	backwardDur := time.Since(backwardStart)

	// ---- Terminate losers. ----
	if err := e.terminateLosers(losers); err != nil {
		return err
	}
	if err := e.log.Flush(e.log.Head()); err != nil {
		return err
	}
	e.crashed = false

	// ---- Record the trace and the cumulative recovery metrics. ----
	delta := func(after, before uint64) uint64 { return after - before }
	tr := RecoveryTrace{
		ForwardDur:      book.forwardDur,
		BackwardDur:     backwardDur,
		TotalDur:        time.Since(book.totalStart),
		ForwardRecords:  delta(e.stats.RecForwardRecords, book.statsBefore.RecForwardRecords),
		Redone:          delta(e.stats.RecRedone, book.statsBefore.RecRedone),
		BackwardVisited: delta(e.stats.RecBackwardVisited, book.statsBefore.RecBackwardVisited),
		BackwardSkipped: delta(e.stats.RecBackwardSkipped, book.statsBefore.RecBackwardSkipped),
		Clusters:        e.met.undoClusters.Load() - book.clustersBefore,
		CLRs:            delta(e.stats.RecCLRs, book.statsBefore.RecCLRs),
		Losers:          delta(e.stats.RecLosers, book.statsBefore.RecLosers),
		Winners:         delta(e.stats.RecWinners, book.statsBefore.RecWinners),
	}
	tr.Stages = []RecoveryStage{
		{Name: "forward", Dur: tr.ForwardDur, Units: tr.ForwardRecords},
		{Name: "backward", Dur: tr.BackwardDur, Units: tr.BackwardVisited},
	}
	e.emitRecoveryTraceLocked(tr)
	return nil
}

// emitRecoveryTraceLocked stores tr as the last recovery trace and feeds
// the cumulative recovery metrics and the completion event from it.
// Shared by sequential recovery, promotion and the parallel pipeline's
// finisher (which holds the latch when it calls).
func (e *Engine) emitRecoveryTraceLocked(tr RecoveryTrace) {
	e.lastTrace = tr
	e.met.recForwardRecords.Add(tr.ForwardRecords)
	e.met.recRedone.Add(tr.Redone)
	e.met.recCLRs.Add(tr.CLRs)
	e.met.recLosers.Add(tr.Losers)
	e.met.recWinners.Add(tr.Winners)
	e.met.recForwardNs.Observe(tr.ForwardDur)
	e.met.recBackwardNs.Observe(tr.BackwardDur)
	e.met.recTotalNs.Observe(tr.TotalDur)
	if e.reg.HasEventHook() {
		e.reg.Emit(obs.Event{Name: "recovery.complete", Value: int64(tr.CLRs), Dur: tr.TotalDur})
	}
}

// classifyLocked identifies winners and losers from the transaction
// table after the forward pass (§3.6.1): winners whose End record was
// lost get one appended and leave the tables; everything else is a loser
// and contributes its owned scopes to LsrScopes.  Shared by sequential
// recovery, promotion, and the parallel pipeline's setup phase.
func (e *Engine) classifyLocked() (losers []wal.TxID, lsrScopes []delegation.Scope, err error) {
	for _, info := range e.txns.Snapshot() {
		if info.Status == txn.Committed {
			// Winner whose End record was lost with the crash:
			// its effects are already redone; finish bookkeeping.
			if _, err := e.log.Append(&wal.Record{Type: wal.TypeEnd, TxID: info.ID, PrevLSN: info.LastLSN}); err != nil {
				return nil, nil, err
			}
			e.txns.Remove(info.ID)
			delete(e.state, info.ID)
			continue
		}
		if info.Status == txn.Prepared {
			// In-doubt 2PC participant: neither winner nor loser.  Its
			// effects stay redone and un-undone, its entry and scopes
			// stay live, until the coordinator's decision (or presumed
			// abort) resolves it via CommitPrepared/AbortPrepared.
			continue
		}
		losers = append(losers, info.ID)
	}
	for _, id := range losers {
		e.stats.RecLosers++
		if ol := e.state[id]; ol != nil {
			lsrScopes = append(lsrScopes, ol.OwnedScopes(id)...)
		}
	}
	return losers, lsrScopes, nil
}

// terminateLosers appends the Abort (where needed) and End records that
// finish every loser and drops them from the volatile tables.  The
// caller owns the transaction table — either by holding the engine latch
// (sequential recovery) or by being the pipeline's finisher after its
// workers have drained.
func (e *Engine) terminateLosers(losers []wal.TxID) error {
	for _, id := range losers {
		info := e.txns.Get(id)
		if info == nil {
			continue
		}
		if info.Status != txn.Aborted {
			lsn, err := e.log.Append(&wal.Record{Type: wal.TypeAbort, TxID: id, PrevLSN: info.LastLSN})
			if err != nil {
				return err
			}
			info.LastLSN = lsn
		}
		if _, err := e.log.Append(&wal.Record{Type: wal.TypeEnd, TxID: id, PrevLSN: info.LastLSN}); err != nil {
			return err
		}
		e.txns.Remove(id)
		delete(e.state, id)
	}
	// With the losers gone the lock table is empty; in-doubt participants
	// re-take their object locks so nothing can touch their data before
	// the decision arrives.
	return e.relockInDoubtLocked()
}

// undoScopesFullScan is the ablation counterpart of undoScopes: it visits
// EVERY log position from the head down to the oldest loser scope,
// checking each update against the scopes.  Functionally identical to the
// cluster sweep; the visit counters expose the cost difference the paper's
// cluster design avoids.
func (e *Engine) undoScopesFullScan(scopes []delegation.Scope, compensated map[wal.LSN]bool) error {
	if len(scopes) == 0 {
		return nil
	}
	low := scopes[0].First
	high := scopes[0].Last
	for _, s := range scopes[1:] {
		if s.First < low {
			low = s.First
		}
		if s.Last > high {
			high = s.Last
		}
	}
	hooked := e.reg.HasEventHook()
	for k := high; k >= low && k != wal.NilLSN; k-- {
		e.stats.RecBackwardVisited++
		e.met.undoVisited.Inc()
		if hooked {
			e.reg.Emit(obs.Event{Name: "undo.visit", LSN: uint64(k)})
		}
		rec, err := e.log.Get(k)
		if err != nil {
			return err
		}
		if !rec.IsUndoable() || compensated[k] {
			continue
		}
		for _, s := range scopes {
			if s.Invoker == rec.TxID && s.Object == rec.Object && s.Contains(k) {
				if rec.Type == wal.TypeIncrement {
					if err := e.undoIncrement(s.Owner, rec); err != nil {
						return err
					}
				} else if err := e.undoUpdate(s.Owner, rec); err != nil {
					return err
				}
				break
			}
		}
	}
	return nil
}

// redoApply repeats history for one logged change: the value is applied
// unless the object's stable image already reflects it.  On the first
// touch of an object the page image's coverage is discovered from its
// pageLSN: a page flushed at pageLSN pl contains exactly the updates with
// LSN ≤ pl for every object stored in it.
func (e *Engine) redoApply(applied map[wal.ObjectID]wal.LSN, obj wal.ObjectID, val []byte, lsn wal.LSN) error {
	la, ok := applied[obj]
	if !ok {
		pl, err := e.store.PageLSN(obj)
		if err != nil {
			return err
		}
		la = pl
		applied[obj] = la
	}
	if lsn <= la {
		return nil
	}
	if err := e.store.Write(obj, val, lsn); err != nil {
		return err
	}
	applied[obj] = lsn
	e.stats.RecRedone++
	return nil
}

// redoApplyDelta repeats history for a logical (increment or logical-CLR)
// change, with the same per-object coverage discipline as redoApply.
func (e *Engine) redoApplyDelta(applied map[wal.ObjectID]wal.LSN, obj wal.ObjectID, delta int64, lsn wal.LSN) error {
	la, ok := applied[obj]
	if !ok {
		pl, err := e.store.PageLSN(obj)
		if err != nil {
			return err
		}
		la = pl
		applied[obj] = la
	}
	if lsn <= la {
		return nil
	}
	if err := e.applyDelta(obj, delta, lsn); err != nil {
		return err
	}
	applied[obj] = lsn
	e.stats.RecRedone++
	return nil
}

// IsCrashed reports whether the engine is between Crash and Recover.
func (e *Engine) IsCrashed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.crashed
}

// ErrIs reports whether err matches any engine sentinel; convenience for
// callers that treat deadlock and ill-formed delegation uniformly.
func ErrIs(err error, sentinels ...error) bool {
	for _, s := range sentinels {
		if errors.Is(err, s) {
			return true
		}
	}
	return false
}
