package core

import (
	"errors"
	"fmt"
	"time"

	"ariesrh/internal/wal"
)

// Follower mode runs the engine as a replication standby: recovery's
// forward pass (analysis + redo), normally a bounded scan, becomes a
// continuous process fed one batch of shipped log records at a time.
// Updates land on pages, delegate records rewrite the live Ob_List scopes
// exactly as they did on the primary, and the transaction table tracks
// every in-flight transaction — so at any instant the follower holds
// precisely the state a crashed primary's recovery would have after its
// forward pass.  That is what makes Promote cheap and honest: it runs the
// existing backward sweep over clusters of loser scopes
// (finishRecoveryLocked) and nothing else.  There is no separate
// promotion code path to trust.

// ErrFollower is returned for mutating operations on a follower engine;
// Promote turns the follower into a primary that accepts them.
var ErrFollower = errors.New("core: engine is a read-only follower; Promote to accept writes")

// IsFollower reports whether the engine is in follower mode.
func (e *Engine) IsFollower() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.follower
}

// followerCatchUpLocked replays the local log from the last checkpoint
// (analysis + redo, no undo) into the follower's live replay state.  On a
// restored backup this is exactly restart recovery's forward pass; the
// difference is that in-flight transactions are left live — the stream
// will decide their fate — instead of being rolled back as losers.
func (e *Engine) followerCatchUpLocked() error {
	scanStart, analysisAfter, err := e.locateCheckpointLocked()
	if err != nil {
		return err
	}
	e.log.ResetReadCursor()
	err = e.log.Scan(scanStart, wal.NilLSN, func(rec *wal.Record) (bool, error) {
		e.stats.RecForwardRecords++
		if err := e.applyRecordLocked(rec, rec.LSN > analysisAfter, e.frs); err != nil {
			return false, err
		}
		return true, nil
	})
	if err != nil {
		return err
	}
	e.replayedLSN = e.log.Head()
	e.met.replReplayed.Set(int64(e.replayedLSN))
	return nil
}

// FollowerApply appends a batch of shipped records to the local log and
// replays them.  Records must arrive in strict LSN order with no gaps:
// the first record's LSN must be exactly Head()+1 (Append then re-derives
// the same LSN, and the encoding is deterministic, so the follower's log
// stays a byte-identical prefix of the primary's durable log).  The
// records become durable on the follower only at the next FollowerFlush;
// acknowledgements sent upstream must wait for that.
func (e *Engine) FollowerApply(recs []*wal.Record) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.follower {
		return fmt.Errorf("core: FollowerApply on a non-follower engine")
	}
	if e.crashed {
		return ErrCrashed
	}
	for _, rec := range recs {
		if want := e.log.Head() + 1; rec.LSN != want {
			return fmt.Errorf("core: follower apply out of order: record lsn %d, expected %d", rec.LSN, want)
		}
		if _, err := e.log.Append(rec); err != nil {
			return err
		}
		e.stats.RecForwardRecords++
		if err := e.applyRecordLocked(rec, true, e.frs); err != nil {
			return err
		}
		e.replayedLSN = rec.LSN
	}
	e.met.replApplied.Add(uint64(len(recs)))
	e.met.replReplayed.Set(int64(e.replayedLSN))
	return nil
}

// FollowerFlush forces the follower's local log through the current head
// and returns the durable LSN.  The replica's acknowledgement to the
// primary — which releases the primary's retention pin — must never
// exceed this value.
func (e *Engine) FollowerFlush() (wal.LSN, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.follower {
		return wal.NilLSN, fmt.Errorf("core: FollowerFlush on a non-follower engine")
	}
	if e.crashed {
		return wal.NilLSN, ErrCrashed
	}
	head := e.log.Head()
	if err := e.log.Flush(head); err != nil {
		return wal.NilLSN, err
	}
	return head, nil
}

// ReplayedLSN returns the highest LSN the engine has replayed — the
// consistency point follower reads are served at.  On a promoted or
// primary engine it is simply the last value reached in follower mode
// (NilLSN if the engine was never a follower).
func (e *Engine) ReplayedLSN() wal.LSN {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.replayedLSN
}

// FollowerRead returns obj's value together with the replayed LSN it is
// consistent with, under one latch acquisition — the read-at-LSN
// primitive replica-side queries are built on.
func (e *Engine) FollowerRead(obj wal.ObjectID) ([]byte, bool, wal.LSN, error) {
	e.mu.Lock()
	if p := e.recovering; p != nil {
		// A parallel promotion is sweeping the loser clusters; the read
		// waits for its object's undo gate, so it observes either the
		// follower value (object untouched by losers) or the promoted
		// one — never a half-undone state.
		replayed := e.replayedLSN
		e.mu.Unlock()
		v, ok, err := p.readObject(obj)
		return v, ok, replayed, err
	}
	defer e.mu.Unlock()
	if e.crashed {
		return nil, false, wal.NilLSN, ErrCrashed
	}
	v, ok, err := e.store.Read(obj)
	return v, ok, e.replayedLSN, err
}

// Promote turns the follower into a primary.  The follower's replay state
// IS a completed recovery forward pass, so promotion is exactly the rest
// of recovery: classify winners and losers, run the existing backward
// cluster sweep over the loser scopes, terminate the losers, force the
// log (§3.6.2).  On success the engine accepts writes; on error it
// remains a follower and Promote may be retried (the CLRs already written
// are found via the compensated map and not re-applied).
//
// With Options.ParallelRecovery the backward pass runs as a pipeline:
// Promote returns once the sweep is started, the engine reports
// StateRecovering, follower reads keep flowing (each gated on the undo of
// the loser clusters covering its object), and writes are accepted after
// WaitRecovered returns nil.
func (e *Engine) Promote() error {
	if e.opts.ParallelRecovery {
		return e.promoteParallel()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.follower {
		return fmt.Errorf("core: Promote on a non-follower engine")
	}
	if e.crashed {
		return ErrCrashed
	}
	// The replayed prefix must be durable before the backward pass piles
	// CLRs on top of it (write-ahead: a CLR's flush assumes everything
	// below it is already on the device).
	if err := e.log.Flush(e.log.Head()); err != nil {
		return err
	}
	e.met.recRuns.Inc()
	book := recoveryBook{
		totalStart:     time.Now(),
		statsBefore:    e.stats,
		clustersBefore: e.met.undoClusters.Load(),
		// forwardDur stays zero: the forward pass already ran,
		// continuously, as the follower applied the stream.
	}
	if err := e.finishRecoveryLocked(e.frs, book); err != nil {
		return err
	}
	e.follower = false
	e.frs = nil
	return nil
}
