package core

import (
	"fmt"
	"time"

	"ariesrh/internal/lock"
	"ariesrh/internal/txn"
	"ariesrh/internal/wal"
)

// Two-phase-commit participant hooks for internal/shard's per-shard-logged
// 2PC.  There is no separate coordinator log: every record of the protocol
// rides some participant shard's own WAL.  A participant votes yes by
// forcing a prepare record (Prepare); the coordinator shard's decision IS
// the commit record of its own local transaction — whose prepare record
// ties the global id to it durably — and the protocol is presumed-abort:
// a global transaction with no durable commit decision on its coordinator
// shard aborted.
//
// After a crash, recovery's forward pass leaves every prepared-but-
// undecided local transaction in the table with status txn.Prepared:
// neither winner nor loser, its effects redone and not undone, its locks
// re-acquired, until InDoubt/GlobalDecision/CommitPrepared/AbortPrepared
// resolve it (internal/shard does this at open).

// ErrNotPrepared is returned by CommitPrepared and AbortPrepared when the
// transaction has no durable prepare record (it is not in-doubt).
var ErrNotPrepared = fmt.Errorf("core: transaction is not prepared")

// preparedInfo is the volatile bookkeeping for one prepared local
// transaction: which global transaction it participates in, which shard
// coordinates that global transaction, and where its prepare record
// landed on this shard's log.
type preparedInfo struct {
	gid        uint64
	coord      uint32
	prepareLSN wal.LSN
}

// globalDecision is a retained coordinator-side commit decision: the
// global transaction committed, decided by the commit record at
// decideLSN of the coordinator-local transaction whose prepare record
// (at prepareLSN) bound the gid.  Entries pin the archive at prepareLSN
// until ReleaseGlobal so a recovering peer shard can always re-derive
// the decision from this shard's log or checkpoint.  Presumed abort
// means aborted global transactions retain nothing.
type globalDecision struct {
	prepareLSN wal.LSN
}

// InDoubtTxn describes one unresolved prepared local transaction, as
// reported by InDoubt after recovery.
type InDoubtTxn struct {
	// Tx is the local transaction id on this shard.
	Tx wal.TxID
	// GID is the cross-shard transaction it participates in.
	GID uint64
	// Coord is the index of the shard coordinating GID — the shard whose
	// log holds (or durably lacks) the decision.
	Coord uint32
}

// Prepare votes yes on behalf of tx for the cross-shard transaction gid
// coordinated by shard coord: it appends a prepare record to tx's own
// backward chain and forces the log through it.  On return the
// transaction is txn.Prepared — it holds its locks, refuses Update/
// Delegate/Commit/Abort, and survives a crash as an in-doubt transaction
// that only CommitPrepared, AbortPrepared or recovery-time resolution
// can finish.
//
// Crash contract: a nil return means the prepare record is durable — the
// vote stands, and after any crash the transaction re-enters the table
// as in-doubt rather than being rolled back as a loser.  An error return
// means the vote was never cast: the record may or may not be durable,
// but the transaction stays Active (abortable), and a crash before a
// durable prepare resolves it as an ordinary loser.
func (e *Engine) Prepare(tx wal.TxID, gid uint64, coord uint32) error {
	start := time.Now()
	e.mu.Lock()
	if err := e.writableLocked(); err != nil {
		e.mu.Unlock()
		return err
	}
	info, err := e.activeInfo(tx)
	if err != nil {
		e.mu.Unlock()
		return err
	}
	if err := e.checkCommitDependenciesLocked(tx); err != nil {
		e.mu.Unlock()
		return err
	}
	prevLast := info.LastLSN
	lsn, err := e.log.Append(&wal.Record{Type: wal.TypePrepare, TxID: tx, PrevLSN: prevLast, GID: gid, Shard: coord})
	if err != nil {
		e.mu.Unlock()
		return err
	}
	// Mark Prepared before any unlatched wait so cascading aborts (which
	// victimize Active transactions only) cannot roll the voter back
	// while its prepare record is in flight to the device.
	info.Status = txn.Prepared
	info.LastLSN = lsn
	e.prepared[tx] = preparedInfo{gid: gid, coord: coord, prepareLSN: lsn}
	if gid > e.maxGID {
		e.maxGID = gid
	}

	if !e.opts.groupCommit() {
		defer e.mu.Unlock()
		if err := e.log.Flush(lsn); err != nil {
			info.Status = txn.Active
			info.LastLSN = prevLast
			delete(e.prepared, tx)
			e.degradeLocked(err)
			return err
		}
		e.met.prepares.Inc()
		e.met.prepareNs.Observe(time.Since(start))
		return nil
	}

	ch := e.log.FlushAsync(lsn)
	e.mu.Unlock()
	ferr := <-ch

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return ErrCrashed
	}
	if ferr != nil {
		// The vote was never cast: return the transaction to Active with
		// its chain rewound past the never-flushed prepare record, as
		// Commit does for a failed commit force.
		if info := e.txns.Get(tx); info != nil && info.Status == txn.Prepared {
			info.Status = txn.Active
			info.LastLSN = prevLast
		}
		delete(e.prepared, tx)
		e.degradeLocked(ferr)
		return ferr
	}
	e.met.prepares.Inc()
	e.met.prepareNs.Observe(time.Since(start))
	return nil
}

// CommitPrepared commits a prepared transaction: the decision half of the
// protocol.  On the coordinator shard (the engine whose ShardID the
// prepare record named as coordinator) this is the global decision — the
// forced commit record following tx's prepare record is what makes gid
// committed, and the engine retains the decision (queryable via
// GlobalDecision, archive-pinned at the prepare record) until
// ReleaseGlobal.  On a participant shard it applies a decision already
// durable at the coordinator, retaining nothing: only the coordinator's
// log answers decision queries, so a participant entry would just pin
// that shard's archive forever.
//
// Crash contract: a nil return means the commit record is durable and the
// transaction is finished (locks released, tables cleaned).  On a failed
// force the transaction REMAINS Prepared — unlike Commit's return to
// Active — because the vote already stands; the caller retries or leaves
// it in-doubt for recovery, and the engine degrades.
func (e *Engine) CommitPrepared(tx wal.TxID) error {
	start := time.Now()
	e.mu.Lock()
	if err := e.writableLocked(); err != nil {
		e.mu.Unlock()
		return err
	}
	info := e.txns.Get(tx)
	pi, ok := e.prepared[tx]
	if info == nil || info.Status != txn.Prepared || !ok {
		e.mu.Unlock()
		return fmt.Errorf("%w: t%d", ErrNotPrepared, tx)
	}
	prevLast := info.LastLSN
	lsn, err := e.log.Append(&wal.Record{Type: wal.TypeCommit, TxID: tx, PrevLSN: prevLast})
	if err != nil {
		e.mu.Unlock()
		return err
	}
	info.Status = txn.Committed
	info.LastLSN = lsn

	finish := func() error {
		defer e.mu.Unlock()
		info := e.txns.Get(tx)
		if info == nil {
			return fmt.Errorf("%w: %d", ErrNoSuchTxn, tx)
		}
		if pi.coord == e.opts.ShardID {
			e.globals[pi.gid] = globalDecision{prepareLSN: pi.prepareLSN}
		}
		delete(e.prepared, tx)
		e.met.twopcCommits.Inc()
		return e.finishCommitLocked(tx, info, lsn, start)
	}

	if !e.opts.groupCommit() {
		if err := e.log.Flush(lsn); err != nil {
			info.Status = txn.Prepared
			info.LastLSN = prevLast
			e.degradeLocked(err)
			e.mu.Unlock()
			return err
		}
		return finish()
	}

	ch := e.log.FlushAsync(lsn)
	e.mu.Unlock()
	ferr := <-ch

	e.mu.Lock()
	if e.crashed {
		e.mu.Unlock()
		return ErrCrashed
	}
	if ferr != nil {
		// The decision is not durable: stay Prepared (the prepare record
		// IS durable; the vote cannot be taken back) and degrade.
		if info := e.txns.Get(tx); info != nil && info.Status == txn.Committed {
			info.Status = txn.Prepared
			info.LastLSN = prevLast
		}
		e.degradeLocked(ferr)
		e.mu.Unlock()
		return ferr
	}
	return finish()
}

// AbortPrepared rolls back a prepared transaction — the presumed-abort
// resolution of an in-doubt participant whose coordinator has no durable
// commit decision.  Identical to Abort thereafter: every update the
// transaction is responsible for is undone with CLRs, the abort needs no
// durability of its own (recovery re-aborts idempotently), and a device
// error degrades the engine rather than failing the abort.
func (e *Engine) AbortPrepared(tx wal.TxID) error {
	e.mu.Lock()
	if e.crashed {
		e.mu.Unlock()
		return ErrCrashed
	}
	info := e.txns.Get(tx)
	if info == nil || info.Status != txn.Prepared {
		e.mu.Unlock()
		return fmt.Errorf("%w: t%d", ErrNotPrepared, tx)
	}
	// Re-enter the ordinary abort path: flip to Active (abortLocked
	// victimizes Active transactions) and drop the prepared entry — the
	// abort record terminates the chain, so the vote is void.
	info.Status = txn.Active
	delete(e.prepared, tx)
	e.met.twopcAborts.Inc()
	if !e.opts.groupCommit() {
		defer e.mu.Unlock()
		return e.abortLocked(tx)
	}
	if err := e.abortLocked(tx); err != nil {
		e.mu.Unlock()
		return err
	}
	ch := e.log.FlushAsync(e.log.Head())
	e.mu.Unlock()
	if ferr := <-ch; ferr != nil {
		e.mu.Lock()
		e.degradeLocked(ferr)
		e.mu.Unlock()
	}
	return nil
}

// InDoubt returns the prepared local transactions whose global decision
// this engine does not itself hold, sorted by local transaction id.
// After recovery these are exactly the transactions a shard must resolve
// against their coordinator shards before serving writes.
func (e *Engine) InDoubt() []InDoubtTxn {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []InDoubtTxn
	for tx, pi := range e.prepared {
		if info := e.txns.Get(tx); info == nil || info.Status != txn.Prepared {
			continue
		}
		out = append(out, InDoubtTxn{Tx: tx, GID: pi.gid, Coord: pi.coord})
	}
	sortInDoubt(out)
	return out
}

func sortInDoubt(s []InDoubtTxn) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Tx < s[j-1].Tx; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// GlobalDecision reports this shard's decision for the cross-shard
// transaction gid: committed is true when a durable commit decision
// exists here (this shard coordinated gid and committed it).  With
// presumed abort, an unknown gid IS the abort decision — peers treat
// committed == false as "abort", so the answer is total and needs no
// error path.  Answerable in every state, including degraded: the
// decision was made durable before it was ever recorded here.
func (e *Engine) GlobalDecision(gid uint64) (committed bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ok := e.globals[gid]
	return ok
}

// ReleaseGlobal drops the retained commit decision for gid, unpinning
// the archive below its prepare record.  Call it only when every
// participant shard has acknowledged a durable commit — after that no
// recovery anywhere can ask for the decision again (a participant with a
// durable commit record resolves forward on its own).
func (e *Engine) ReleaseGlobal(gid uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.globals, gid)
}

// ReleaseAllGlobals drops every retained commit decision at once.  A
// sharded DB calls it on all shards after open-time resolution: once no
// in-doubt transaction remains anywhere, no shard can ever ask for a
// decision again, so the pins are dead weight.
func (e *Engine) ReleaseAllGlobals() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.globals = make(map[uint64]globalDecision)
}

// MaxSeenGID returns the highest cross-shard transaction id this engine
// has observed (via Prepare, recovery analysis, or checkpoint state); a
// sharded DB restarts its gid counter above the maximum across shards so
// ids never repeat after a crash.
func (e *Engine) MaxSeenGID() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.maxGID
}

// ResolveInDoubt applies a coordinator decision to one in-doubt
// transaction after recovery: CommitPrepared when the coordinator holds
// a durable commit decision, AbortPrepared otherwise (presumed abort).
// It exists so resolution is counted distinctly from normal-processing
// 2PC traffic (twopc.indoubt_committed / twopc.indoubt_aborted).
//
// Crash contract: that of CommitPrepared or AbortPrepared respectively;
// resolution is idempotent across crashes — an unresolved participant
// simply comes back in-doubt and is resolved again.
func (e *Engine) ResolveInDoubt(tx wal.TxID, commit bool) error {
	if commit {
		if err := e.CommitPrepared(tx); err != nil {
			return err
		}
		e.met.indoubtCommitted.Inc()
		return nil
	}
	if err := e.AbortPrepared(tx); err != nil {
		return err
	}
	e.met.indoubtAborted.Inc()
	return nil
}

// DelegateOut logs the home-shard half of a cross-shard delegation:
// responsibility for obj moves from local transaction tor to local
// transaction tee on THIS shard's log — exactly as Delegate — with the
// record additionally naming the delegatee's global transaction (gid)
// and coordinator shard (peer).  Cluster undo stays local: after a
// crash, this shard alone can rewrite obj's history correctly because
// the scope transfer is on its own log.
//
// Crash contract: identical to Delegate — the record needs no force of
// its own (recovery replays it during analysis), and a crash before it
// is durable simply leaves responsibility with tor.
func (e *Engine) DelegateOut(tor, tee wal.TxID, obj wal.ObjectID, gid uint64, peer uint32) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.writableLocked(); err != nil {
		return err
	}
	if err := e.delegateAsLocked(tor, tee, obj, wal.TypeDelegateOut, gid, peer); err != nil {
		return err
	}
	e.met.delegateOuts.Inc()
	return nil
}

// DelegateIn logs the acquirer-side half of a cross-shard delegation on
// this (the delegatee's coordinator) shard: a bookkeeping record on tx's
// backward chain saying the global transaction gid took responsibility
// for obj, which lives on shard home.  No volatile state changes — the
// object, its scopes, and the undo work all stay on the home shard —
// so redo and undo both skip the record.
//
// Crash contract: the record needs no force; it exists so the
// coordinator shard's log tells the full story of gid for audit and so
// the delegatee's chain reflects the acquisition.
func (e *Engine) DelegateIn(tx wal.TxID, obj wal.ObjectID, gid uint64, home uint32) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.writableLocked(); err != nil {
		return err
	}
	info, err := e.activeInfo(tx)
	if err != nil {
		return err
	}
	lsn, err := e.log.Append(&wal.Record{Type: wal.TypeDelegateIn, TxID: tx, PrevLSN: info.LastLSN, Object: obj, GID: gid, Shard: home})
	if err != nil {
		return err
	}
	info.LastLSN = lsn
	e.met.delegateIns.Inc()
	return nil
}

// relockInDoubtLocked re-acquires object locks for every in-doubt
// transaction after recovery's backward pass: a crash emptied the lock
// table, but a prepared transaction still holds its write intent until
// the decision arrives, and no new transaction may touch its objects
// meanwhile.  Objects delegated between in-doubt transactions are shared
// between their holders, exactly as Delegate left them.  The caller owns
// the transaction table (latch held, or pipeline finisher).
func (e *Engine) relockInDoubtLocked() error {
	holders := make(map[wal.ObjectID]wal.TxID)
	for tx := range e.prepared {
		info := e.txns.Get(tx)
		if info == nil || info.Status != txn.Prepared {
			continue
		}
		ol := e.state[tx]
		if ol == nil {
			continue
		}
		for _, obj := range ol.Objects() {
			if first, locked := holders[obj]; locked {
				if err := e.locks.Share(first, tx, obj); err != nil {
					return err
				}
				continue
			}
			// Nothing else can hold obj between recovery and this call, so
			// the acquire cannot block.
			if err := e.locks.Acquire(tx, obj, lock.Exclusive); err != nil {
				return err
			}
			holders[obj] = tx
		}
	}
	return nil
}
