package core

import (
	"errors"
	"testing"
	"time"

	"ariesrh/internal/wal"
)

func wantCounter(t *testing.T, e *Engine, obj wal.ObjectID, want int64) {
	t.Helper()
	got, err := e.CounterValue(obj)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("counter %d = %d, want %d", obj, got, want)
	}
}

func TestIncrementBasic(t *testing.T) {
	e := newEngine(t)
	tx := mustBegin(t, e)
	if v, err := e.Increment(tx, 1, 5); err != nil || v != 5 {
		t.Fatalf("v=%d err=%v", v, err)
	}
	if v, err := e.Increment(tx, 1, -2); err != nil || v != 3 {
		t.Fatalf("v=%d err=%v", v, err)
	}
	mustCommit(t, e, tx)
	wantCounter(t, e, 1, 3)
}

func TestIncrementAbortLogicalUndo(t *testing.T) {
	e := newEngine(t)
	setup := mustBegin(t, e)
	if _, err := e.Increment(setup, 1, 100); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, e, setup)
	tx := mustBegin(t, e)
	if _, err := e.Increment(tx, 1, 7); err != nil {
		t.Fatal(err)
	}
	mustAbort(t, e, tx)
	wantCounter(t, e, 1, 100)
}

// TestConcurrentIncrementsCommute is the §3.4 counter scenario: two
// transactions increment the same object concurrently (compatible
// Increment locks); the object appears in BOTH Ob_Lists with different
// scopes; one aborts, and only its delta is removed — a physical
// before-image would have clobbered the survivor's contribution.
func TestConcurrentIncrementsCommute(t *testing.T) {
	e := newEngine(t)
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	if _, err := e.Increment(t1, 1, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Increment(t2, 1, 100); err != nil { // concurrent: no block
		t.Fatal(err)
	}
	if _, err := e.Increment(t1, 1, 1); err != nil { // interleaved again
		t.Fatal(err)
	}
	// Both are responsible for their own increments on object 1.
	objs1, _ := e.ObjectsOf(t1)
	objs2, _ := e.ObjectsOf(t2)
	if len(objs1) != 1 || len(objs2) != 1 {
		t.Fatalf("ObjectsOf: %v %v", objs1, objs2)
	}
	mustAbort(t, e, t1) // removes 10+1, leaves t2's 100
	wantCounter(t, e, 1, 100)
	mustCommit(t, e, t2)
	wantCounter(t, e, 1, 100)
}

func TestIncrementConflictsWithUpdateAndRead(t *testing.T) {
	e := newEngine(t)
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	if _, err := e.Increment(t1, 1, 5); err != nil {
		t.Fatal(err)
	}
	// A plain update must wait for the increment lock.
	done := make(chan error, 1)
	go func() { done <- e.Update(t2, 1, EncodeCounter(42)) }()
	select {
	case err := <-done:
		t.Fatalf("update did not block on increment lock (err=%v)", err)
	case <-time.After(20 * time.Millisecond):
	}
	mustCommit(t, e, t1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	mustCommit(t, e, t2)
	wantCounter(t, e, 1, 42)
}

func TestIncrementDelegation(t *testing.T) {
	// Delegated increments follow the final delegatee's fate.
	e := newEngine(t)
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	if _, err := e.Increment(t1, 1, 10); err != nil {
		t.Fatal(err)
	}
	mustDelegate(t, e, t1, t2, 1)
	mustAbort(t, e, t1) // does NOT remove the delegated increment
	wantCounter(t, e, 1, 10)
	mustCommit(t, e, t2)
	wantCounter(t, e, 1, 10)
}

func TestIncrementDelegationLoser(t *testing.T) {
	e := newEngine(t)
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	t3 := mustBegin(t, e)
	if _, err := e.Increment(t1, 1, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Increment(t3, 1, 100); err != nil { // concurrent survivor
		t.Fatal(err)
	}
	mustDelegate(t, e, t1, t2, 1)
	mustCommit(t, e, t1)
	mustAbort(t, e, t2) // the delegated +10 is removed
	wantCounter(t, e, 1, 100)
	mustCommit(t, e, t3)
	wantCounter(t, e, 1, 100)
}

func TestIncrementCrashRecovery(t *testing.T) {
	e := newEngine(t)
	w := mustBegin(t, e)
	l := mustBegin(t, e)
	if _, err := e.Increment(w, 1, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Increment(l, 1, 100); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, e, w)
	if err := e.Log().Flush(e.Log().Head()); err != nil {
		t.Fatal(err)
	}
	crashAndRecover(t, e)
	// Redo replays both increments; undo removes only the loser's.
	wantCounter(t, e, 1, 10)
}

func TestIncrementCrashRecoveryDelegated(t *testing.T) {
	e := newEngine(t)
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	if _, err := e.Increment(t1, 1, 10); err != nil {
		t.Fatal(err)
	}
	mustDelegate(t, e, t1, t2, 1)
	mustCommit(t, e, t2)
	// t1 active at crash → loser; its delegated increment survives.
	crashAndRecover(t, e)
	wantCounter(t, e, 1, 10)
}

func TestIncrementRepeatedCrashesIdempotent(t *testing.T) {
	e := newEngine(t)
	w := mustBegin(t, e)
	if _, err := e.Increment(w, 1, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Increment(w, 1, 4); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, e, w)
	l := mustBegin(t, e)
	if _, err := e.Increment(l, 1, 1000); err != nil {
		t.Fatal(err)
	}
	if err := e.Log().Flush(e.Log().Head()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		crashAndRecover(t, e)
	}
	wantCounter(t, e, 1, 7)
}

func TestIncrementRejectsNonCounter(t *testing.T) {
	e := newEngine(t)
	tx := mustBegin(t, e)
	mustUpdate(t, e, tx, 1, "not-a-counter")
	if _, err := e.Increment(tx, 1, 1); !errors.Is(err, ErrNotCounter) {
		t.Fatalf("err = %v", err)
	}
	mustAbort(t, e, tx)
}

func TestIncrementWithSavepoint(t *testing.T) {
	e := newEngine(t)
	tx := mustBegin(t, e)
	if _, err := e.Increment(tx, 1, 10); err != nil {
		t.Fatal(err)
	}
	sp, err := e.Savepoint(tx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Increment(tx, 1, 100); err != nil {
		t.Fatal(err)
	}
	if err := e.RollbackTo(sp); err != nil {
		t.Fatal(err)
	}
	wantCounter(t, e, 1, 10)
	mustCommit(t, e, tx)
	wantCounter(t, e, 1, 10)
}

func TestIncrementCheckpointedScope(t *testing.T) {
	e := newEngine(t)
	t1 := mustBegin(t, e)
	if _, err := e.Increment(t1, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Increment(t1, 1, 6); err != nil {
		t.Fatal(err)
	}
	if err := e.Log().Flush(e.Log().Head()); err != nil {
		t.Fatal(err)
	}
	crashAndRecover(t, e) // t1 is a loser: both increments removed
	wantCounter(t, e, 1, 0)
}
