package core

// Instant restart: the parallel recovery pipeline behind
// Options.ParallelRecovery.
//
// Sequential recovery (recovery.go) redoes the whole log before the first
// read can be served, so restart latency grows linearly with log length.
// The pipeline decouples the two:
//
//	Stage 1 — parallel log scan.  The segmented WAL's manifest already
//	  splits the log into sealed, immutable segments; one worker per
//	  segment groups the redoable records (updates, increments, CLRs)
//	  into per-object redo chains.  No page is touched.
//	Stage 2 — on-demand redo.  A read during recovery redoes just its
//	  object's chain and returns; a background drainer applies the
//	  remaining chains by descending heat (longest chain first).
//	Stage 3 — backward cluster undo, started concurrently with tail
//	  redo.  Before undoing a record the worker applies that object's
//	  redo chain (the redo-before-undo gate: a CLR — especially a
//	  logical counter CLR — must land on a fully redone object), and a
//	  read of an object covered by a loser scope waits until the sweep
//	  has passed below the lowest First of the scopes covering it.
//
// Analysis cannot be parallelised — a delegate record rewrites the scopes
// the records before it built — so it runs sequentially over the scanned
// shards during setup, which is cheap: the shard records are already
// decoded and analysis touches only the volatile tables.
//
// Correctness hinges on one rule the sequential path gets for free from
// LSN-ordered redo: a page flushed at pageLSN pl contains exactly the
// updates with LSN ≤ pl of EVERY object stored on it, so each object's
// redo baseline must be its page's pre-recovery pageLSN.  The pipeline
// applies chains (and writes CLRs) out of global LSN order, and any such
// write ratchets the shared page's LSN — which would corrupt the baseline
// of objects on the same page whose chains apply later.  Therefore every
// page application runs under one applyMu, and the page's stable pageLSN
// is captured into pageBase at the first pipeline touch, before the first
// pipeline write to it.  applyMu also keeps recovering reads atomic with
// pipeline writes; the parallelism that pays for time-to-first-read lives
// in the scan and in the ORDER of redo (on-demand first), not in
// concurrent page writes, which the shared buffer pool would serialise
// anyway.
//
// Lock order: e.mu → applyMu.  Goroutines holding applyMu never take
// e.mu; the finisher takes e.mu and never applyMu.

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ariesrh/internal/delegation"
	"ariesrh/internal/obs"
	"ariesrh/internal/storage"
	"ariesrh/internal/wal"
)

// objectChain is one object's redo work: its redoable records in LSN
// order.  Applied exactly once (sync.Once) — by the first of the
// background drainer, an on-demand read, or the undo worker's
// redo-before-undo gate.
type objectChain struct {
	obj  wal.ObjectID
	recs []*wal.Record
	once sync.Once
	err  error
}

// undoGate blocks reads of an object covered by loser scopes until the
// backward sweep has passed below minFirst — the lowest First of the
// scopes covering the object, below which no loser record can touch it.
// Released (closed) by the undo worker.
type undoGate struct {
	minFirst wal.LSN
	ch       chan struct{}
}

// recoveryPipeline is one in-flight parallel recovery (or promotion).
// All maps and slices are immutable after setup; mutable state is the
// per-chain once, the applyMu-guarded page state, and the undo worker's
// locals.
type recoveryPipeline struct {
	e         *Engine
	promotion bool

	// Built during setup, immutable afterwards.
	chains      map[wal.ObjectID]*objectChain
	heat        []*objectChain // chains by descending length; drain order
	gates       map[wal.ObjectID]*undoGate
	gateSeq     []*undoGate // gates by descending minFirst; release order
	losers      []wal.TxID
	scopes      []delegation.Scope
	compensated map[wal.LSN]bool
	segments    int
	hold        <-chan struct{}
	savedFrs    *replayState // promotion only: restored on failure
	book        recoveryBook
	scanDur     time.Duration
	analysisDur time.Duration

	// applyMu serializes every page application of the pipeline: chain
	// redo, undo CLR writes, and recovering reads.  pageBase holds each
	// page's pre-recovery pageLSN, captured before the pipeline's first
	// write to the page; stats holds the pipeline-local counters merged
	// into e.stats under e.mu at finish.
	applyMu  sync.Mutex
	pageBase map[storage.PageID]wal.LSN
	stats    Stats

	// failpoint is the captured one-shot recovery failpoint; decremented
	// only by the undo worker.
	failpoint int

	onDemand atomic.Uint64

	// err is the terminal pipeline error; written (if at all) before done
	// is closed, or before e.recovering is cleared under e.mu.
	err  error
	done chan struct{}
}

// WaitRecovered blocks until any in-flight parallel recovery (or
// promotion) pipeline completes and returns its error.  With no pipeline
// in flight it returns nil immediately — or ErrCrashed if the engine is
// crashed, which is what a failed pipeline leaves behind for callers that
// arrive after the fact.
func (e *Engine) WaitRecovered() error {
	e.mu.Lock()
	p := e.recovering
	crashed := e.crashed
	e.mu.Unlock()
	if p == nil {
		if crashed {
			return ErrCrashed
		}
		return nil
	}
	<-p.done
	return p.err
}

// recoverParallel is Recover with Options.ParallelRecovery set: it runs
// the scan and analysis stages synchronously under the engine latch,
// installs the pipeline, and returns with recovery still in flight.  The
// engine then reports StateRecovering; reads route through the pipeline,
// writes are rejected with ErrRecovering until it completes.
func (e *Engine) recoverParallel() error {
	e.mu.Lock()
	if e.follower {
		e.mu.Unlock()
		return fmt.Errorf("core: a follower does not Recover; reopen it in follower mode or Promote it")
	}
	if !e.crashed {
		e.mu.Unlock()
		return fmt.Errorf("core: Recover called without a crash")
	}
	// Clean slate, exactly as sequential Recover: a previous attempt may
	// have died midway.
	e.txns.Reset(1)
	e.state = delegation.State{}
	e.prepared = make(map[wal.TxID]preparedInfo)
	e.globals = make(map[uint64]globalDecision)

	e.met.recRuns.Inc()
	book := recoveryBook{
		totalStart:     time.Now(),
		statsBefore:    e.stats,
		clustersBefore: e.met.undoClusters.Load(),
	}

	scanStart, analysisAfter, err := e.locateCheckpointLocked()
	if err != nil {
		e.mu.Unlock()
		return err
	}
	e.log.ResetReadCursor()

	// ---- Stage 1: manifest-driven parallel scan, one worker per sealed
	// segment, grouping redoable records into per-object chains. ----
	scanT := time.Now()
	shards := e.log.RecordShards(scanStart)
	indexes := make([]map[wal.ObjectID][]*wal.Record, len(shards))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(shards) {
		workers = len(shards)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(shards) {
					return
				}
				m := make(map[wal.ObjectID][]*wal.Record)
				for _, rec := range shards[i] {
					switch rec.Type {
					case wal.TypeUpdate, wal.TypeIncrement, wal.TypeCLR:
						m[rec.Object] = append(m[rec.Object], rec)
					}
				}
				indexes[i] = m
			}
		}()
	}
	wg.Wait()
	// Merge in shard order: shards are LSN-ordered between themselves and
	// within, so each chain comes out in LSN order.
	chains := make(map[wal.ObjectID]*objectChain)
	for _, m := range indexes {
		for obj, recs := range m {
			c := chains[obj]
			if c == nil {
				c = &objectChain{obj: obj}
				chains[obj] = c
			}
			c.recs = append(c.recs, recs...)
		}
	}
	scanDur := time.Since(scanT)

	// ---- Stage 2 setup: analysis, strictly in LSN order (delegate
	// records rewrite the scopes earlier records built), then winner /
	// loser classification.  Redo is deferred to the chains. ----
	analysisT := time.Now()
	rs := newReplayState()
	for _, shard := range shards {
		for _, rec := range shard {
			e.stats.RecForwardRecords++
			if err := e.analyzeRecordLocked(rec, rec.LSN > analysisAfter, rs); err != nil {
				e.mu.Unlock()
				return err
			}
		}
	}
	losers, scopes, err := e.classifyLocked()
	if err != nil {
		e.mu.Unlock()
		return err
	}
	analysisDur := time.Since(analysisT)

	heat := make([]*objectChain, 0, len(chains))
	for _, c := range chains {
		heat = append(heat, c)
	}
	sort.Slice(heat, func(i, j int) bool {
		if len(heat[i].recs) != len(heat[j].recs) {
			return len(heat[i].recs) > len(heat[j].recs)
		}
		return heat[i].obj < heat[j].obj
	})
	gates, gateSeq := buildUndoGates(scopes)

	book.forwardDur = scanDur + analysisDur
	p := &recoveryPipeline{
		e:           e,
		chains:      chains,
		heat:        heat,
		gates:       gates,
		gateSeq:     gateSeq,
		losers:      losers,
		scopes:      scopes,
		compensated: rs.compensated,
		segments:    len(shards),
		hold:        e.recoveryHold,
		book:        book,
		scanDur:     scanDur,
		analysisDur: analysisDur,
		pageBase:    make(map[storage.PageID]wal.LSN),
		failpoint:   e.recoveryFailpoint,
		done:        make(chan struct{}),
	}
	e.recoveryFailpoint = 0
	e.recoveryHold = nil
	e.crashed = false
	e.recovering = p
	e.mu.Unlock()

	go p.run()
	return nil
}

// promoteParallel is Promote with Options.ParallelRecovery set: the
// follower's replay state is a completed forward pass, so the pipeline
// is undo-only — no scan, no chains — but follower reads keep flowing
// during the sweep, each gated on the undo of the loser clusters covering
// its object.  Returns with promotion still in flight; on pipeline
// failure the engine returns to follower mode and Promote may be retried.
func (e *Engine) promoteParallel() error {
	e.mu.Lock()
	if !e.follower {
		e.mu.Unlock()
		return fmt.Errorf("core: Promote on a non-follower engine")
	}
	if e.crashed {
		e.mu.Unlock()
		return ErrCrashed
	}
	// As in sequential Promote: the replayed prefix must be durable
	// before the backward pass piles CLRs on top of it.
	if err := e.log.Flush(e.log.Head()); err != nil {
		e.mu.Unlock()
		return err
	}
	e.met.recRuns.Inc()
	book := recoveryBook{
		totalStart:     time.Now(),
		statsBefore:    e.stats,
		clustersBefore: e.met.undoClusters.Load(),
	}
	losers, scopes, err := e.classifyLocked()
	if err != nil {
		e.mu.Unlock()
		return err
	}
	gates, gateSeq := buildUndoGates(scopes)
	p := &recoveryPipeline{
		e:           e,
		promotion:   true,
		chains:      map[wal.ObjectID]*objectChain{},
		gates:       gates,
		gateSeq:     gateSeq,
		losers:      losers,
		scopes:      scopes,
		compensated: e.frs.compensated,
		hold:        e.recoveryHold,
		book:        book,
		pageBase:    make(map[storage.PageID]wal.LSN),
		failpoint:   e.recoveryFailpoint,
		savedFrs:    e.frs,
		done:        make(chan struct{}),
	}
	e.recoveryFailpoint = 0
	e.recoveryHold = nil
	e.follower = false
	e.frs = nil
	e.recovering = p
	e.mu.Unlock()

	go p.run()
	return nil
}

// buildUndoGates derives the per-object undo gates from the loser scopes:
// one gate per covered object, keyed by the lowest First among the scopes
// covering it, plus the same gates sorted by descending minFirst for the
// sweep to release in order.
func buildUndoGates(scopes []delegation.Scope) (map[wal.ObjectID]*undoGate, []*undoGate) {
	gates := make(map[wal.ObjectID]*undoGate, len(scopes))
	for _, s := range scopes {
		g := gates[s.Object]
		if g == nil {
			gates[s.Object] = &undoGate{minFirst: s.First, ch: make(chan struct{})}
		} else if s.First < g.minFirst {
			g.minFirst = s.First
		}
	}
	seq := make([]*undoGate, 0, len(gates))
	for _, g := range gates {
		seq = append(seq, g)
	}
	sort.Slice(seq, func(i, j int) bool { return seq[i].minFirst > seq[j].minFirst })
	return gates, seq
}

// run drives the pipeline to completion: background redo drain and the
// undo sweep concurrently, then loser termination, the final log force,
// the trace, and the flip back to a writable state.
func (p *recoveryPipeline) run() {
	e := p.e
	var redoErr error
	var redoDur time.Duration
	var wg sync.WaitGroup
	if !p.promotion {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.Now()
			redoErr = p.runDrain()
			redoDur = time.Since(t)
		}()
	}
	undoT := time.Now()
	undoErr := p.runUndo()
	undoDur := time.Since(undoT)
	wg.Wait()
	err := undoErr
	if err == nil {
		err = redoErr
	}
	if err != nil {
		p.fail(err)
		return
	}

	// ---- Finish: terminate losers, force the log, emit the trace. ----
	finishT := time.Now()
	e.mu.Lock()
	if err := e.terminateLosers(p.losers); err != nil {
		e.mu.Unlock()
		p.fail(err)
		return
	}
	if err := e.log.Flush(e.log.Head()); err != nil {
		e.mu.Unlock()
		p.fail(err)
		return
	}
	finishDur := time.Since(finishT)

	// Merge the pipeline-local counters into the engine stats, then
	// compute the per-run trace as deltas — same bookkeeping as
	// finishRecoveryLocked.
	e.stats.RecRedone += p.stats.RecRedone
	e.stats.RecBackwardVisited += p.stats.RecBackwardVisited
	e.stats.RecBackwardSkipped += p.stats.RecBackwardSkipped
	e.stats.CLRs += p.stats.CLRs
	e.stats.RecCLRs += p.stats.CLRs
	e.stats.RecUndone += p.stats.CLRs

	book := p.book
	delta := func(after, before uint64) uint64 { return after - before }
	tr := RecoveryTrace{
		ForwardDur:      book.forwardDur,
		BackwardDur:     undoDur,
		TotalDur:        time.Since(book.totalStart),
		Parallel:        true,
		Segments:        p.segments,
		OnDemandReads:   p.onDemand.Load(),
		ForwardRecords:  delta(e.stats.RecForwardRecords, book.statsBefore.RecForwardRecords),
		Redone:          delta(e.stats.RecRedone, book.statsBefore.RecRedone),
		BackwardVisited: delta(e.stats.RecBackwardVisited, book.statsBefore.RecBackwardVisited),
		BackwardSkipped: delta(e.stats.RecBackwardSkipped, book.statsBefore.RecBackwardSkipped),
		Clusters:        e.met.undoClusters.Load() - book.clustersBefore,
		CLRs:            delta(e.stats.RecCLRs, book.statsBefore.RecCLRs),
		Losers:          delta(e.stats.RecLosers, book.statsBefore.RecLosers),
		Winners:         delta(e.stats.RecWinners, book.statsBefore.RecWinners),
	}
	if p.promotion {
		tr.Stages = []RecoveryStage{
			{Name: "undo", Dur: undoDur, Units: tr.BackwardVisited},
			{Name: "finish", Dur: finishDur, Units: uint64(len(p.losers))},
		}
	} else {
		tr.Stages = []RecoveryStage{
			{Name: "scan", Dur: p.scanDur, Units: tr.ForwardRecords},
			{Name: "analysis", Dur: p.analysisDur, Units: tr.ForwardRecords},
			{Name: "redo", Dur: redoDur, Units: tr.Redone},
			{Name: "undo", Dur: undoDur, Units: tr.BackwardVisited},
			{Name: "finish", Dur: finishDur, Units: uint64(len(p.losers))},
		}
	}
	e.emitRecoveryTraceLocked(tr)
	e.mu.Unlock()

	// One-shot test hook: everything is recovered — reads are fully
	// served — but the flip to a writable state waits for the release.
	if p.hold != nil {
		<-p.hold
	}
	e.mu.Lock()
	e.recovering = nil
	e.mu.Unlock()
	close(p.done)
}

// fail moves the engine back to the state a failed recovery leaves
// behind — crashed for restart recovery, follower for promotion — and
// publishes the error to every waiter.
func (p *recoveryPipeline) fail(err error) {
	e := p.e
	p.err = err
	e.mu.Lock()
	if p.promotion {
		e.follower = true
		e.frs = p.savedFrs
	} else {
		e.crashed = true
	}
	e.recovering = nil
	e.mu.Unlock()
	close(p.done)
}

// runDrain applies every chain in descending heat order.  On-demand
// reads jump this queue: their applyChain wins the chain's once and the
// drainer's call becomes a no-op.
func (p *recoveryPipeline) runDrain() error {
	for _, c := range p.heat {
		if err := p.applyChain(c); err != nil {
			return err
		}
	}
	return nil
}

// applyChain redoes c exactly once; concurrent callers block until the
// first finishes and share its error.
func (p *recoveryPipeline) applyChain(c *objectChain) error {
	c.once.Do(func() { c.err = p.applyChainBody(c) })
	return c.err
}

// applyChainBody applies c's records in LSN order under applyMu.  The
// baseline is the object's page pre-recovery pageLSN (pageBase), NilLSN
// for objects absent from stable storage — per-page, not per-object,
// because a page flushed at pageLSN pl covers the ≤ pl updates of every
// object on it.
func (p *recoveryPipeline) applyChainBody(c *objectChain) error {
	e := p.e
	p.applyMu.Lock()
	defer p.applyMu.Unlock()
	base, err := p.baselineLocked(c.obj)
	if err != nil {
		return err
	}
	for _, rec := range c.recs {
		if rec.LSN <= base {
			continue
		}
		if err := p.ensurePageLocked(c.obj); err != nil {
			return err
		}
		switch rec.Type {
		case wal.TypeUpdate:
			err = e.store.Write(c.obj, rec.After, rec.LSN)
		case wal.TypeIncrement:
			err = e.applyDelta(c.obj, rec.Delta, rec.LSN)
		case wal.TypeCLR:
			if rec.Logical {
				err = e.applyDelta(c.obj, rec.Delta, rec.LSN)
			} else {
				err = e.store.Write(c.obj, rec.Before, rec.LSN)
			}
		}
		if err != nil {
			return err
		}
		p.stats.RecRedone++
	}
	return nil
}

// baselineLocked returns the redo baseline for obj: the captured stable
// pageLSN of the page holding it, or NilLSN for objects absent from the
// stable directory (their page — possibly allocated later by a pipeline
// write of another object — says nothing about them).  Caller holds
// applyMu.
func (p *recoveryPipeline) baselineLocked(obj wal.ObjectID) (wal.LSN, error) {
	pid, ok := p.e.store.PageOf(obj)
	if !ok {
		return wal.NilLSN, nil
	}
	if b, ok := p.pageBase[pid]; ok {
		return b, nil
	}
	pl, err := p.e.store.PageLSNAt(pid)
	if err != nil {
		return wal.NilLSN, err
	}
	p.pageBase[pid] = pl
	return pl, nil
}

// ensurePageLocked locates (allocating if needed) obj's page and captures
// its pageLSN into pageBase if this is the pipeline's first touch — it
// must run before every pipeline write, because the write ratchets the
// page's LSN and would poison the baseline of the page's other objects.
// Caller holds applyMu.
func (p *recoveryPipeline) ensurePageLocked(obj wal.ObjectID) error {
	pid, err := p.e.store.Locate(obj)
	if err != nil {
		return err
	}
	if _, ok := p.pageBase[pid]; !ok {
		pl, err := p.e.store.PageLSNAt(pid)
		if err != nil {
			return err
		}
		p.pageBase[pid] = pl
	}
	return nil
}

// runUndo is the pipeline's backward pass: the same cluster sweep as
// undoScopes, in strictly decreasing LSN order, with two pipeline twists —
// each record's object is redone first (redo-before-undo gate), and the
// per-object read gates are released as the sweep passes below their
// minFirst.
func (p *recoveryPipeline) runUndo() error {
	e := p.e
	planner := delegation.NewPlanner(p.scopes)
	hooked := e.reg.HasEventHook()
	released := 0
	release := func(k wal.LSN) {
		for released < len(p.gateSeq) && p.gateSeq[released].minFirst > k {
			close(p.gateSeq[released].ch)
			released++
		}
	}
	for {
		k, ok := planner.Next()
		if !ok {
			break
		}
		// Every position > k is settled; any gate whose records all lie
		// above k opens now.  Gates at exactly k stay shut until the
		// record at k is undone.
		release(k)
		p.stats.RecBackwardVisited++
		e.met.undoVisited.Inc()
		if hooked {
			e.reg.Emit(obs.Event{Name: "undo.visit", LSN: uint64(k)})
		}
		rec, err := e.log.Get(k)
		if err != nil {
			return fmt.Errorf("core: undo sweep at %d: %w", k, err)
		}
		if !rec.IsUndoable() {
			continue
		}
		owner, hit := planner.ShouldUndo(rec.TxID, rec.Object, k)
		if !hit || p.compensated[k] {
			continue
		}
		// Redo-before-undo: the CLR must land on a fully redone object —
		// a logical counter CLR applied to a stale value would compute
		// the wrong result, and any CLR write would poison the object's
		// redo baseline.  Promotion has no chains (the follower already
		// applied everything).
		if c := p.chains[rec.Object]; c != nil {
			if err := p.applyChain(c); err != nil {
				return err
			}
		}
		p.applyMu.Lock()
		if err := p.ensurePageLocked(rec.Object); err == nil {
			if rec.Type == wal.TypeIncrement {
				err = e.undoIncrementInto(owner, rec, &p.stats)
			} else {
				err = e.undoUpdateInto(owner, rec, &p.stats)
			}
			p.applyMu.Unlock()
			if err != nil {
				return err
			}
		} else {
			p.applyMu.Unlock()
			return err
		}
		if p.failpoint > 0 {
			p.failpoint--
			if p.failpoint == 0 {
				return ErrInjectedRecoveryFailure
			}
		}
	}
	p.stats.RecBackwardSkipped += planner.Skipped
	e.met.undoSkipped.Add(planner.Skipped)
	e.met.undoClusters.Add(planner.Clusters)
	release(wal.NilLSN)
	return nil
}

// readObject serves a read during recovery: redo the object's chain on
// demand, wait for its undo gate, then read — the caller never observes
// a half-recovered object.  If the pipeline completes (or fails) while
// waiting, the read follows the engine's new state.
func (p *recoveryPipeline) readObject(obj wal.ObjectID) ([]byte, bool, error) {
	p.onDemand.Add(1)
	if c := p.chains[obj]; c != nil {
		if err := p.applyChain(c); err != nil {
			return nil, false, err
		}
	}
	if g := p.gates[obj]; g != nil {
		select {
		case <-g.ch:
		case <-p.done:
			// Success releases every gate before done closes, so this
			// branch means failure.
			if err := p.err; err != nil {
				return nil, false, err
			}
		}
	}
	e := p.e
	e.mu.Lock()
	if e.recovering != p {
		// The pipeline finished while we waited; the flip (or the
		// failure) is visible because both happen under e.mu.
		e.mu.Unlock()
		if err := p.err; err != nil {
			return nil, false, err
		}
		return e.ReadObject(obj)
	}
	// Hold e.mu (so the pipeline cannot flip and admit a writer) and
	// applyMu (so no pipeline write interleaves) across the read.
	p.applyMu.Lock()
	v, ok, err := e.store.Read(obj)
	p.applyMu.Unlock()
	e.mu.Unlock()
	return v, ok, err
}
