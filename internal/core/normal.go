package core

import (
	"fmt"
	"time"

	"ariesrh/internal/delegation"
	"ariesrh/internal/lock"
	"ariesrh/internal/obs"
	"ariesrh/internal/txn"
	"ariesrh/internal/wal"
)

// Begin starts a new transaction and returns its ID (§3.5 begin: add to
// Tr_List, create Ob_List).
func (e *Engine) Begin() (wal.TxID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.writableLocked(); err != nil {
		return wal.NilTx, err
	}
	info := e.txns.Begin()
	lsn, err := e.log.Append(&wal.Record{Type: wal.TypeBegin, TxID: info.ID})
	if err != nil {
		return wal.NilTx, err
	}
	info.LastLSN = lsn
	e.state[info.ID] = delegation.NewObList()
	e.stats.Begins++
	e.met.begins.Inc()
	return info.ID, nil
}

// activeInfo returns the table entry for tx if it is active.
func (e *Engine) activeInfo(tx wal.TxID) (*txn.Info, error) {
	info := e.txns.Get(tx)
	if info == nil || info.Status != txn.Active {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchTxn, tx)
	}
	return info, nil
}

// activeAfterLockLocked revalidates tx after an unlatched lock wait.  A
// transaction can terminate while one of its operations is blocked in
// lock.Acquire — a cascading abort, or a deadlock victimization on
// another of its own goroutines — and the grant then re-registers a lock
// hold for a dead transaction.  That stale grant must be dropped here,
// or the object stays blocked forever.  The caller holds the engine
// latch, having re-acquired it after the lock grant.
func (e *Engine) activeAfterLockLocked(tx wal.TxID) (*txn.Info, error) {
	info, err := e.activeInfo(tx)
	if err != nil {
		e.locks.ReleaseAll(tx)
		return nil, err
	}
	return info, nil
}

// Read returns the value of obj under a shared lock held by tx.  Absent
// objects read as an empty value (objects are registers; see
// internal/object).
func (e *Engine) Read(tx wal.TxID, obj wal.ObjectID) ([]byte, error) {
	e.mu.Lock()
	if e.crashed {
		e.mu.Unlock()
		return nil, ErrCrashed
	}
	if _, err := e.activeInfo(tx); err != nil {
		e.mu.Unlock()
		return nil, err
	}
	e.mu.Unlock()

	// Block on the lock without holding the engine latch.
	if err := e.locks.Acquire(tx, obj, lock.Shared); err != nil {
		return nil, err
	}

	// See Update: take the page fault before re-acquiring the latch.
	e.store.Prefetch(obj)

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return nil, ErrCrashed
	}
	if _, err := e.activeAfterLockLocked(tx); err != nil {
		return nil, err
	}
	e.noteViolationsLocked(tx, obj, lock.Shared)
	v, _, err := e.store.Read(obj)
	if err != nil {
		return nil, err
	}
	e.stats.Reads++
	e.met.reads.Inc()
	return v, nil
}

// Update performs update[tx, obj] ← val (§3.5 update): it X-locks the
// object, logs the physical before/after images, adjusts tx's scope on the
// object (open a new scope on the first update since begin or since tx
// last delegated obj; extend the active scope otherwise), and applies the
// change in place.
func (e *Engine) Update(tx wal.TxID, obj wal.ObjectID, val []byte) error {
	start := time.Now()
	e.mu.Lock()
	if err := e.writableLocked(); err != nil {
		e.mu.Unlock()
		return err
	}
	if _, err := e.activeInfo(tx); err != nil {
		e.mu.Unlock()
		return err
	}
	e.mu.Unlock()

	if err := e.locks.Acquire(tx, obj, lock.Exclusive); err != nil {
		return err
	}

	// Latch-scope reduction: fault the object's page into the buffer pool
	// now, while no latch is held, so the latched section below hits
	// memory.  Any page-fault read — and any eviction write-back with its
	// WAL-rule log flush — lands on this goroutine instead of stalling
	// every other transaction behind the engine latch.
	e.store.Prefetch(obj)

	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.writableLocked(); err != nil {
		// The tx keeps its lock grant: it is still alive and must be
		// able to abort (which releases everything).
		return err
	}
	info, err := e.activeAfterLockLocked(tx)
	if err != nil {
		return err
	}
	e.noteViolationsLocked(tx, obj, lock.Exclusive)
	before, _, err := e.store.Read(obj)
	if err != nil {
		return err
	}
	rec := &wal.Record{
		Type:    wal.TypeUpdate,
		TxID:    tx,
		PrevLSN: info.LastLSN,
		Object:  obj,
		Before:  before,
		After:   val,
	}
	lsn, err := e.log.Append(rec)
	if err != nil {
		return err
	}
	// The update is on the log: complete ALL volatile bookkeeping — scope
	// and backward chain — before touching the page, so a failed page
	// write leaves the tables consistent with the log and Abort (or
	// recovery) can compensate the logged update.  Advancing LastLSN
	// only after the write would leave a logged update outside the
	// backward chain on error.
	e.state[tx].RecordUpdate(tx, obj, lsn)
	info.LastLSN = lsn
	if err := e.store.Write(obj, val, lsn); err != nil {
		return err
	}
	e.stats.Updates++
	e.met.updates.Inc()
	e.met.updateNs.Observe(time.Since(start))
	return nil
}

// Delegate executes delegate(tor, tee, obj) (§3.5): after checking the
// precondition (tor is responsible for updates on obj), it writes a
// delegate log record linked into both backward chains and transfers the
// object's scopes from tor's Ob_List to tee's.  The delegatee also
// inherits tor's lock on the object, broadening its visibility.
func (e *Engine) Delegate(tor, tee wal.TxID, obj wal.ObjectID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.writableLocked(); err != nil {
		return err
	}
	return e.delegateLocked(tor, tee, obj)
}

// delegateLocked is Delegate's body; the caller holds the engine latch.
// Factored out so DelegateAll can apply a whole batch under one latch
// acquisition.
func (e *Engine) delegateLocked(tor, tee wal.TxID, obj wal.ObjectID) error {
	return e.delegateAsLocked(tor, tee, obj, wal.TypeDelegate, 0, 0)
}

// delegateAsLocked is the shared body of Delegate and DelegateOut: the
// record type distinguishes a purely local delegation from the home-shard
// half of a cross-shard one (which additionally stamps the delegatee's
// global transaction id and coordinator shard onto the record).  The
// volatile effects are identical — responsibility moves between two LOCAL
// transactions on this engine's log either way.
func (e *Engine) delegateAsLocked(tor, tee wal.TxID, obj wal.ObjectID, typ wal.RecordType, gid uint64, peer uint32) error {
	start := time.Now()
	if tor == tee {
		return fmt.Errorf("core: delegate(t%d, t%d): delegator and delegatee must differ", tor, tee)
	}
	torInfo, err := e.activeInfo(tor)
	if err != nil {
		return err
	}
	teeInfo, err := e.activeInfo(tee)
	if err != nil {
		return err
	}
	// WELL-FORMED?  (§3.5 step 1)
	if !e.state[tor].Has(obj) {
		return fmt.Errorf("%w: t%d does not hold updates on object %d", ErrNotResponsible, tor, obj)
	}
	// PREPARE + WRITE DELEGATION LOG RECORD (§3.5 steps 2 and 4).
	rec := &wal.Record{
		Type:    typ,
		TxID:    tor,
		PrevLSN: torInfo.LastLSN,
		Tor:     tor,
		Tee:     tee,
		TorPrev: torInfo.LastLSN,
		TeePrev: teeInfo.LastLSN,
		Object:  obj,
		GID:     gid,
		Shard:   peer,
	}
	lsn, err := e.log.Append(rec)
	if err != nil {
		return err
	}
	// TRANSFER RESPONSIBILITY (§3.5 step 3).
	e.state[tor].DelegateTo(e.state[tee], tor, obj)
	// The delegatee inherits a hold on the delegator's lock so the
	// delegated updates stay protected by their (new) responsible
	// transaction; the delegator keeps its own hold and may continue to
	// operate on the object (§2.1.2).  Third parties remain excluded
	// until every holder terminates.
	if _, held := e.locks.Holds(tor, obj); held {
		if err := e.locks.Share(tor, tee, obj); err != nil {
			return err
		}
	}
	// A delegated scope carries its recoverability lineage: if the
	// delegator's updates were built over a pre-durable committer's
	// early-released locks (it holds an abort dependency on one), the
	// delegatee now owns those updates and must share their fate — the
	// delegator's own abort no longer undoes them.  Copying all such
	// edges (not just ones attributable to obj) is conservative: it can
	// only over-abort, never let dirty data survive.
	if len(e.predurable) > 0 {
		for _, edge := range e.deps[tor] {
			if edge.kind != AbortDependency {
				continue
			}
			if _, pending := e.predurable[edge.on]; !pending {
				continue
			}
			e.addDependencyEdgeLocked(tee, edge.on, AbortDependency)
		}
	}
	// The delegate record heads both backward chains.
	if !e.opts.DisableChaining {
		torInfo.LastLSN = lsn
		teeInfo.LastLSN = lsn
	}
	e.stats.Delegations++
	e.met.delegations.Inc()
	e.met.delegateNs.Observe(time.Since(start))
	if e.reg.HasEventHook() {
		e.reg.Emit(obs.Event{Name: "txn.delegate", Tx: uint64(tor), LSN: uint64(lsn), Object: uint64(obj), Value: int64(tee)})
	}
	return nil
}

// DelegateAll delegates every object in tor's Ob_List to tee — the
// "delegate(t2, t1)" form used by join and nested-transaction commit
// (§2.2).  The delegations are applied atomically with respect to other
// engine operations.
func (e *Engine) DelegateAll(tor, tee wal.TxID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.writableLocked(); err != nil {
		return err
	}
	ol, ok := e.state[tor]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchTxn, tor)
	}
	// The latch is held across the whole loop: no other operation — in
	// particular no termination of tor or tee — can interleave between
	// the per-object delegations.
	for _, obj := range ol.Objects() {
		if err := e.delegateLocked(tor, tee, obj); err != nil {
			return err
		}
	}
	return nil
}

// Permit grants grantee access to holder's lock on obj without
// transferring responsibility — ASSET's permit primitive: data sharing
// without forming dependencies.  Nothing is logged; permits are pure
// visibility and play no role in recovery.
func (e *Engine) Permit(holder, grantee wal.TxID, obj wal.ObjectID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.writableLocked(); err != nil {
		return err
	}
	if _, err := e.activeInfo(holder); err != nil {
		return err
	}
	if _, err := e.activeInfo(grantee); err != nil {
		return err
	}
	if _, held := e.locks.Holds(holder, obj); !held {
		return fmt.Errorf("core: permit of object %d from t%d which holds no lock", obj, holder)
	}
	return e.locks.Share(holder, grantee, obj)
}

// ObjectsOf returns the objects tx is currently responsible for (its
// Ob_List), sorted.
func (e *Engine) ObjectsOf(tx wal.TxID) ([]wal.ObjectID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ol, ok := e.state[tx]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchTxn, tx)
	}
	return ol.Objects(), nil
}

// Commit commits tx (§3.5): the operations tx is responsible for are
// already on the log; a commit record is appended and the log is flushed
// through it before the commit is acknowledged.
//
// With group commit (Options.GroupCommit, the default) the flush happens
// off-latch: the commit record is appended under the latch, the latch is
// released, and the committer waits on wal.Log.FlushAsync — one device
// sync then covers every commit record queued meanwhile, and unrelated
// operations (Update/Delegate/Read) proceed during the sync instead of
// stalling behind it.  With GroupCommitOff every commit performs its own
// synchronous flush under the latch, the pre-group-commit behavior.
func (e *Engine) Commit(tx wal.TxID) error {
	start := time.Now()
	e.mu.Lock()
	if err := e.writableLocked(); err != nil {
		e.mu.Unlock()
		return err
	}
	info, err := e.activeInfo(tx)
	if err != nil {
		e.mu.Unlock()
		return err
	}
	if err := e.checkCommitDependenciesLocked(tx); err != nil {
		e.mu.Unlock()
		return err
	}
	prevLast := info.LastLSN
	lsn, err := e.log.Append(&wal.Record{Type: wal.TypeCommit, TxID: tx, PrevLSN: prevLast})
	if err != nil {
		e.mu.Unlock()
		return err
	}

	if !e.opts.groupCommit() {
		defer e.mu.Unlock()
		if err := e.log.Flush(lsn); err != nil {
			// The WAL already retried transient errors; what surfaces
			// here is a persistent device failure.  The commit was
			// never acknowledged (the transaction stays Active and
			// abortable); the engine degrades to read-only.
			e.degradeLocked(err)
			return err
		}
		info.Status = txn.Committed
		info.LastLSN = lsn
		return e.finishCommitLocked(tx, info, lsn, start)
	}

	if e.opts.elr() {
		// Early lock release: release the locks at the commit point and
		// defer only the durability ack.  See internal/core/elr.go.
		return e.commitELR(tx, info, lsn, prevLast, start)
	}

	// Group commit.  The appended commit record is the commit point: mark
	// the transaction Committed *before* releasing the latch so cascading
	// aborts (which only victimize Active transactions) cannot undo its
	// updates during the unlatched wait.  A dependent that observes the
	// Committed status and commits ahead of us is safe: its commit record
	// has a higher LSN, and flushes are prefix-ordered, so it cannot
	// become durable unless ours does.
	info.Status = txn.Committed
	info.LastLSN = lsn
	ch := e.log.FlushAsync(lsn)
	e.mu.Unlock()
	ferr := <-ch

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		// A crash interleaved with the flush wait.  Whether the commit
		// record reached the device before the crash decides the
		// transaction's fate at Recover — the usual commit-ack
		// ambiguity of a crash during commit processing.
		return ErrCrashed
	}
	if ferr != nil {
		// The device refused the flush: the commit is not durable and
		// was never acknowledged.  Return the transaction to Active —
		// matching the synchronous path, where a failed flush also
		// leaves the transaction alive (retriable, abortable,
		// cascadable) — and rewind LastLSN past the never-flushed
		// commit record: the transaction's backward chain must head at
		// its last update/CLR, or a subsequent Abort would hang its
		// CLRs off a commit record that recovery may never see.
		if info := e.txns.Get(tx); info != nil && info.Status == txn.Committed {
			info.Status = txn.Active
			info.LastLSN = prevLast
		}
		// A force failure past the WAL's retry budget is a persistent
		// device problem: degrade so later mutations are turned away
		// instead of queuing more never-flushable records.
		e.degradeLocked(ferr)
		return ferr
	}
	info = e.txns.Get(tx)
	if info == nil {
		return fmt.Errorf("%w: %d", ErrNoSuchTxn, tx)
	}
	return e.finishCommitLocked(tx, info, lsn, start)
}

// finishCommitLocked completes a commit whose commit record (at lsn) is
// durable: append the end record, release locks and clean up the volatile
// tables.  The caller holds the latch and has already set info.Status.
func (e *Engine) finishCommitLocked(tx wal.TxID, info *txn.Info, lsn wal.LSN, start time.Time) error {
	endLSN, err := e.log.Append(&wal.Record{Type: wal.TypeEnd, TxID: tx, PrevLSN: lsn})
	if err != nil {
		return err
	}
	info.LastLSN = endLSN
	e.locks.ReleaseAll(tx)
	delete(e.state, tx)
	delete(e.deps, tx)
	e.txns.Remove(tx)
	e.stats.Commits++
	e.met.commits.Inc()
	e.met.commitNs.Observe(time.Since(start))
	if e.reg.HasEventHook() {
		e.reg.Emit(obs.Event{Name: "txn.commit", Tx: uint64(tx), LSN: uint64(lsn)})
	}
	return nil
}

// Abort rolls back tx (§3.5): every update tx is responsible for — whether
// invoked by tx or received through delegation — is undone in reverse LSN
// order using the scope machinery, writing a compensation log record per
// undo.  Updates tx delegated away are NOT undone: they now belong to
// their delegatee.
//
// With group commit (Options.GroupCommit, the default) the log force for
// the abort record happens off-latch on the coalesced flusher
// (wal.Log.FlushAsync), so concurrent aborts — and aborts racing commits —
// share device syncs instead of serializing the whole engine behind one
// sync per abort.  The abort itself (undo, abort and end records, lock
// release, dependency cascade) still happens atomically under the latch,
// exactly as in the synchronous path: ARIES does not require the abort
// record to be durable before the abort completes — an abort that never
// reaches the device is simply re-aborted idempotently by recovery — so
// deferring the force changes only when Abort returns, not what state it
// leaves behind.  With GroupCommitOff every abort performs its own
// synchronous flush under the latch, the pre-group-commit behavior.
//
// Crash-safety contract: a nil return means the abort took effect in
// volatile state; its durability is NOT guaranteed.  If the device
// refuses the force the abort still stands — recovery re-aborts the
// loser idempotently from the durable log — so Abort succeeds and the
// device error instead degrades the engine (see ErrDegraded, Health).
// This also makes Abort available IN degraded mode: it is the one
// mutating operation that needs no new durable bytes, and the escape
// hatch by which in-flight transactions release their locks.
func (e *Engine) Abort(tx wal.TxID) error {
	start := time.Now()
	e.mu.Lock()
	if e.crashed {
		e.mu.Unlock()
		return ErrCrashed
	}
	if !e.opts.groupCommit() {
		defer e.mu.Unlock()
		if err := e.abortLocked(tx); err != nil {
			return err
		}
		e.met.abortNs.Observe(time.Since(start))
		return nil
	}

	// Group-commit mode: complete the abort — including any cascaded
	// aborts, whose records are appended before we read Head — then wait
	// for one coalesced flush covering all of it with the latch released.
	if err := e.abortLocked(tx); err != nil {
		e.mu.Unlock()
		return err
	}
	ch := e.log.FlushAsync(e.log.Head())
	e.mu.Unlock()
	if ferr := <-ch; ferr != nil {
		// The abort stands — the transaction is terminated and recovery
		// would re-abort it regardless — but the force failed past the
		// WAL's retry budget: degrade instead of failing the abort.
		e.mu.Lock()
		e.degradeLocked(ferr)
		e.mu.Unlock()
	}
	e.met.abortNs.Observe(time.Since(start))
	return nil
}

func (e *Engine) abortLocked(tx wal.TxID) error {
	if e.crashed {
		return ErrCrashed
	}
	info, err := e.activeInfo(tx)
	if err != nil {
		return err
	}
	// ABORT OPERATIONS: undo everything covered by tx's scopes, sweeping
	// backwards from the largest covered LSN to minLSN (§3.5).
	if err := e.undoScopes(e.state[tx].OwnedScopes(tx), nil); err != nil {
		return err
	}
	// WRITE ABORT RECORD.  In group-commit mode the force is deferred to
	// the top-level Abort's coalesced off-latch flush (every abort —
	// cascaded ones included — runs under exactly one top-level Abort);
	// with GroupCommitOff the record is forced here, under the latch.
	info = e.txns.Get(tx) // lastLSN advanced by the CLRs
	lsn, err := e.log.Append(&wal.Record{Type: wal.TypeAbort, TxID: tx, PrevLSN: info.LastLSN})
	if err != nil {
		return err
	}
	if !e.opts.groupCommit() {
		if err := e.log.Flush(lsn); err != nil {
			// See Abort's contract: the force is best-effort — the
			// abort completes in volatile state and the device error
			// degrades the engine rather than failing the abort.
			e.degradeLocked(err)
		}
	}
	info.Status = txn.Aborted
	info.LastLSN = lsn
	endLSN, err := e.log.Append(&wal.Record{Type: wal.TypeEnd, TxID: tx, PrevLSN: lsn})
	if err != nil {
		return err
	}
	info.LastLSN = endLSN
	e.locks.ReleaseAll(tx)
	delete(e.state, tx)
	delete(e.deps, tx)
	e.txns.Remove(tx)
	e.stats.Aborts++
	e.met.aborts.Inc()
	if e.reg.HasEventHook() {
		e.reg.Emit(obs.Event{Name: "txn.abort", Tx: uint64(tx), LSN: uint64(lsn)})
	}
	// Cascade: abort-dependents of tx must abort too.
	return e.cascadeAbortsLocked(tx)
}

// undoScopes sweeps the given scopes with the cluster planner, undoing
// every covered update and writing CLRs.  compensated (may be nil) lists
// update LSNs already undone by earlier CLRs; they are skipped.  Used both
// by normal-processing aborts (scopes of one transaction) and by the
// recovery backward pass (all loser scopes).
func (e *Engine) undoScopes(scopes []delegation.Scope, compensated map[wal.LSN]bool) error {
	planner := delegation.NewPlanner(scopes)
	hooked := e.reg.HasEventHook()
	for {
		k, ok := planner.Next()
		if !ok {
			break
		}
		e.stats.RecBackwardVisited++
		e.met.undoVisited.Inc()
		if hooked {
			e.reg.Emit(obs.Event{Name: "undo.visit", LSN: uint64(k)})
		}
		rec, err := e.log.Get(k)
		if err != nil {
			return fmt.Errorf("core: undo sweep at %d: %w", k, err)
		}
		if !rec.IsUndoable() {
			continue
		}
		owner, hit := planner.ShouldUndo(rec.TxID, rec.Object, k)
		if !hit || compensated[k] {
			continue
		}
		if rec.Type == wal.TypeIncrement {
			if err := e.undoIncrement(owner, rec); err != nil {
				return err
			}
		} else if err := e.undoUpdate(owner, rec); err != nil {
			return err
		}
		if err := e.fireRecoveryFailpoint(); err != nil {
			return err
		}
	}
	e.stats.RecBackwardSkipped += planner.Skipped
	e.met.undoSkipped.Add(planner.Skipped)
	e.met.undoClusters.Add(planner.Clusters)
	return nil
}

// fireRecoveryFailpoint decrements an armed failpoint and reports the
// injected failure when it reaches zero.  Disarmed (or non-recovery)
// contexts are a no-op: the failpoint only counts while Recover holds the
// engine in the crashed state.
func (e *Engine) fireRecoveryFailpoint() error {
	if !e.crashed || e.recoveryFailpoint <= 0 {
		return nil
	}
	e.recoveryFailpoint--
	if e.recoveryFailpoint == 0 {
		return ErrInjectedRecoveryFailure
	}
	return nil
}

// undoUpdate restores rec's before-image and logs a CLR on behalf of the
// responsible transaction owner.
func (e *Engine) undoUpdate(owner wal.TxID, rec *wal.Record) error {
	return e.undoUpdateInto(owner, rec, &e.stats)
}

// undoUpdateInto is undoUpdate with an explicit stats sink: the parallel
// recovery pipeline counts into pipeline-local stats (merged under the
// engine latch at finish) because its undo worker runs without the latch.
func (e *Engine) undoUpdateInto(owner wal.TxID, rec *wal.Record, st *Stats) error {
	info := e.txns.Get(owner)
	prev := wal.NilLSN
	if info != nil {
		prev = info.LastLSN
	}
	clr := &wal.Record{
		Type:        wal.TypeCLR,
		TxID:        owner,
		PrevLSN:     prev,
		Object:      rec.Object,
		Before:      rec.Before,
		UndoNextLSN: rec.PrevLSN,
		Compensates: rec.LSN,
	}
	lsn, err := e.log.Append(clr)
	if err != nil {
		return err
	}
	if err := e.store.Write(rec.Object, rec.Before, lsn); err != nil {
		return err
	}
	if info != nil {
		info.LastLSN = lsn
	}
	st.CLRs++
	e.met.clrs.Inc()
	return nil
}

// Checkpoint takes a fuzzy checkpoint (no page flushing): it brackets a
// serialized snapshot of the transaction table, the delegation state (all
// object lists with their scopes) and the dirty-page table between
// checkpoint-begin/end records, flushes the log, and updates the master
// record.  Recovery starts analysis at the checkpoint instead of the
// beginning of the log.
func (e *Engine) Checkpoint() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.writableLocked(); err != nil {
		return err
	}
	beginLSN, err := e.log.Append(&wal.Record{Type: wal.TypeCheckpointBegin})
	if err != nil {
		return err
	}
	payload := encodeCheckpoint(&checkpointData{
		beginLSN: beginLSN,
		txns:     e.txns.Snapshot(),
		state:    e.state,
		dpt:      e.pool.DirtyPageTable(),
		prepared: e.prepared,
		globals:  e.globals,
	})
	endLSN, err := e.log.Append(&wal.Record{Type: wal.TypeCheckpointEnd, PrevLSN: beginLSN, Payload: payload})
	if err != nil {
		return err
	}
	if err := e.log.Flush(endLSN); err != nil {
		e.degradeLocked(err)
		return err
	}
	if err := e.master.Set(endLSN); err != nil {
		e.degradeLocked(err)
		return err
	}
	e.stats.Checkpoints++
	e.met.checkpoints.Inc()
	return nil
}
