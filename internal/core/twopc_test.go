package core

import (
	"errors"
	"testing"

	"ariesrh/internal/txn"
	"ariesrh/internal/wal"
)

// TestPrepareCommitLifecycle covers the happy path of the participant
// hooks: prepare forces the vote, the prepared transaction refuses
// ordinary operations, CommitPrepared finishes it and retains the
// decision, ReleaseGlobal drops it.
func TestPrepareCommitLifecycle(t *testing.T) {
	e, err := New(Options{GroupCommit: GroupCommitOff})
	if err != nil {
		t.Fatal(err)
	}
	tx := mustBegin(t, e)
	mustUpdate(t, e, tx, 7, "v1")
	if err := e.Prepare(tx, 41, 0); err != nil {
		t.Fatal(err)
	}
	// Prepared transactions are frozen: no updates, no plain commit/abort.
	if err := e.Update(tx, 7, []byte("v2")); err == nil {
		t.Fatal("update on a prepared transaction succeeded")
	}
	if err := e.Commit(tx); err == nil {
		t.Fatal("plain Commit on a prepared transaction succeeded")
	}
	if err := e.Abort(tx); err == nil {
		t.Fatal("plain Abort on a prepared transaction succeeded")
	}
	if got := e.InDoubt(); len(got) != 1 || got[0].GID != 41 || got[0].Tx != tx {
		t.Fatalf("InDoubt = %+v, want one entry for t%d gid 41", got, tx)
	}
	if err := e.CommitPrepared(tx); err != nil {
		t.Fatal(err)
	}
	if !e.GlobalDecision(41) {
		t.Fatal("decision for gid 41 not retained after CommitPrepared")
	}
	if v, _, _ := e.ReadObject(7); string(v) != "v1" {
		t.Fatalf("object 7 = %q, want v1", v)
	}
	e.ReleaseGlobal(41)
	if e.GlobalDecision(41) {
		t.Fatal("decision survived ReleaseGlobal")
	}
	if got := e.MaxSeenGID(); got != 41 {
		t.Fatalf("MaxSeenGID = %d, want 41", got)
	}
}

// TestPreparedSurvivesCrashInDoubt pins the analysis contract: a durable
// prepare with no decision leaves the transaction in the table as
// Prepared after recovery — its update neither undone nor committed —
// and AbortPrepared (presumed abort) then rolls it back.
func TestPreparedSurvivesCrashInDoubt(t *testing.T) {
	e, err := New(Options{GroupCommit: GroupCommitOff})
	if err != nil {
		t.Fatal(err)
	}
	base := mustBegin(t, e)
	mustUpdate(t, e, base, 9, "committed-base")
	if err := e.Commit(base); err != nil {
		t.Fatal(err)
	}
	tx := mustBegin(t, e)
	mustUpdate(t, e, tx, 9, "in-doubt")
	if err := e.Prepare(tx, 7, 3); err != nil {
		t.Fatal(err)
	}
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}
	ind := e.InDoubt()
	if len(ind) != 1 || ind[0].GID != 7 || ind[0].Coord != 3 {
		t.Fatalf("InDoubt after recovery = %+v, want one entry gid=7 coord=3", ind)
	}
	// Effects stay redone until resolution.
	if v, _, _ := e.ReadObject(9); string(v) != "in-doubt" {
		t.Fatalf("object 9 = %q before resolution, want in-doubt (redone, not undone)", v)
	}
	// The in-doubt transaction's lock was re-acquired: another
	// transaction cannot write the object (deadlock error expected since
	// nothing will ever release it on this single-engine test).
	// Resolution by presumed abort rolls it back.
	if err := e.ResolveInDoubt(ind[0].Tx, false); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := e.ReadObject(9); string(v) != "committed-base" {
		t.Fatalf("object 9 = %q after presumed abort, want committed-base", v)
	}
	if len(e.InDoubt()) != 0 {
		t.Fatal("in-doubt entry survived resolution")
	}
}

// TestDecisionSurvivesCrash pins the coordinator side: prepare + commit
// on the same local transaction is the decision, and recovery rebuilds
// the retained decision from the forward pass — and from checkpoint
// state when the records are behind a checkpoint.  The engine is opened
// as shard 1 and the prepare names shard 1 as coordinator, so retention
// applies.
func TestDecisionSurvivesCrash(t *testing.T) {
	for _, withCkpt := range []bool{false, true} {
		e, err := New(Options{GroupCommit: GroupCommitOff, ShardID: 1})
		if err != nil {
			t.Fatal(err)
		}
		tx := mustBegin(t, e)
		mustUpdate(t, e, tx, 4, "decided")
		if err := e.Prepare(tx, 99, 1); err != nil {
			t.Fatal(err)
		}
		if err := e.CommitPrepared(tx); err != nil {
			t.Fatal(err)
		}
		if withCkpt {
			if err := e.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Crash(); err != nil {
			t.Fatal(err)
		}
		if err := e.Recover(); err != nil {
			t.Fatal(err)
		}
		if !e.GlobalDecision(99) {
			t.Fatalf("withCkpt=%v: commit decision for gid 99 lost across crash", withCkpt)
		}
		if got := e.MaxSeenGID(); got != 99 {
			t.Fatalf("withCkpt=%v: MaxSeenGID = %d, want 99", withCkpt, got)
		}
	}
}

// TestParticipantCommitRetainsNoDecision pins the participant side of
// phase 2: committing a prepared branch whose coordinator is ANOTHER
// shard must not retain a decision — only the coordinator's log answers
// decision queries, and a participant entry would pin this shard's
// archive forever (one leaked entry per cross-shard commit).  The same
// holds for recovery's rebuild from the prepare+commit pair.
func TestParticipantCommitRetainsNoDecision(t *testing.T) {
	e, err := New(Options{GroupCommit: GroupCommitOff}) // shard 0
	if err != nil {
		t.Fatal(err)
	}
	tx := mustBegin(t, e)
	mustUpdate(t, e, tx, 3, "phase2")
	if err := e.Prepare(tx, 8, 2); err != nil { // coordinated elsewhere
		t.Fatal(err)
	}
	if err := e.CommitPrepared(tx); err != nil {
		t.Fatal(err)
	}
	if e.GlobalDecision(8) {
		t.Fatal("participant retained a decision for gid 8")
	}
	if v, _, _ := e.ReadObject(3); string(v) != "phase2" {
		t.Fatalf("object 3 = %q, want phase2", v)
	}
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}
	if e.GlobalDecision(8) {
		t.Fatal("recovery rebuilt a participant-side decision for gid 8")
	}
	if len(e.InDoubt()) != 0 {
		t.Fatal("committed participant branch came back in doubt")
	}
	if v, _, _ := e.ReadObject(3); string(v) != "phase2" {
		t.Fatalf("object 3 = %q after recovery, want phase2", v)
	}
}

// TestArchiveClampedBelowUnreleasedDecision is the presumed-abort edge
// regression (satellite 2): while a commit decision is retained, Archive
// must not reclaim the prepare record that binds its gid — an in-doubt
// peer recovering after the archive would otherwise presume abort on a
// committed transaction.  ReleaseGlobal lifts the pin.
func TestArchiveClampedBelowUnreleasedDecision(t *testing.T) {
	e, err := New(Options{GroupCommit: GroupCommitOff, LogSegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	tx := mustBegin(t, e)
	mustUpdate(t, e, tx, 2, "pinned")
	if err := e.Prepare(tx, 5, 0); err != nil {
		t.Fatal(err)
	}
	prepLSN := e.Log().Head() // prepare is the last record appended
	if err := e.CommitPrepared(tx); err != nil {
		t.Fatal(err)
	}
	// Pile on unrelated committed work so there is something to archive.
	for i := 0; i < 40; i++ {
		w := mustBegin(t, e)
		mustUpdate(t, e, w, wal.ObjectID(100+i), "filler")
		if err := e.Commit(w); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.FlushPages(); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	min, err := e.MinRequiredLSN()
	if err != nil {
		t.Fatal(err)
	}
	if min > prepLSN {
		t.Fatalf("MinRequiredLSN = %d, want <= prepare LSN %d while the decision is retained", min, prepLSN)
	}
	if _, err := e.ArchiveLog(); err != nil {
		t.Fatal(err)
	}
	if base := e.Log().Base(); base >= prepLSN {
		t.Fatalf("archive base %d reached prepare LSN %d despite the decision pin", base, prepLSN)
	}
	// The decision must still be re-derivable after a crash right here.
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}
	if !e.GlobalDecision(5) {
		t.Fatal("decision for gid 5 lost after archive + crash")
	}
	// Releasing the decision unpins; the next archive may pass it.
	e.ReleaseGlobal(5)
	if err := e.FlushPages(); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	min2, err := e.MinRequiredLSN()
	if err != nil {
		t.Fatal(err)
	}
	if min2 <= prepLSN {
		t.Fatalf("MinRequiredLSN = %d still pinned at prepare LSN %d after ReleaseGlobal", min2, prepLSN)
	}
}

// TestInDoubtRelockBlocksWriters verifies that recovery re-acquires an
// in-doubt transaction's object locks: a new transaction trying to write
// the object must not be granted the lock (it deadlocks against a holder
// that never releases until resolution).
func TestInDoubtRelockBlocksWriters(t *testing.T) {
	e, err := New(Options{GroupCommit: GroupCommitOff})
	if err != nil {
		t.Fatal(err)
	}
	tx := mustBegin(t, e)
	mustUpdate(t, e, tx, 11, "held")
	if err := e.Prepare(tx, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}
	intruder := mustBegin(t, e)
	done := make(chan error, 1)
	go func() { done <- e.Update(intruder, 11, []byte("stolen")) }()
	// Resolve the in-doubt holder as committed: the lock is then
	// released and the blocked intruder proceeds.
	ind := e.InDoubt()
	if len(ind) != 1 {
		t.Fatalf("InDoubt = %+v, want 1", ind)
	}
	if err := e.ResolveInDoubt(ind[0].Tx, true); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil && !errors.Is(err, ErrNoSuchTxn) {
		t.Fatalf("intruder update after resolution: %v", err)
	}
}

// TestPreparedStatusString pins the new status rendering.
func TestPreparedStatusString(t *testing.T) {
	if got := txn.Prepared.String(); got != "prepared" {
		t.Fatalf("txn.Prepared.String() = %q", got)
	}
}
