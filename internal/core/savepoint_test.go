package core

import (
	"testing"

	"ariesrh/internal/wal"
)

func TestSavepointBasicPartialRollback(t *testing.T) {
	e := newEngine(t)
	tx := mustBegin(t, e)
	mustUpdate(t, e, tx, 1, "keep")
	sp, err := e.Savepoint(tx)
	if err != nil {
		t.Fatal(err)
	}
	mustUpdate(t, e, tx, 1, "drop")
	mustUpdate(t, e, tx, 2, "drop-too")
	if err := e.RollbackTo(sp); err != nil {
		t.Fatal(err)
	}
	// Transaction still active; pre-savepoint state restored.
	wantValue(t, e, 1, "keep")
	wantValue(t, e, 2, "")
	// It can keep working and commit.
	mustUpdate(t, e, tx, 3, "after-rollback")
	mustCommit(t, e, tx)
	wantValue(t, e, 1, "keep")
	wantValue(t, e, 3, "after-rollback")
}

func TestSavepointThenFullAbort(t *testing.T) {
	// The double-undo hazard: updates undone by a partial rollback must
	// not be undone again by the eventual full abort.
	e := newEngine(t)
	setup := mustBegin(t, e)
	mustUpdate(t, e, setup, 1, "base")
	mustCommit(t, e, setup)

	tx := mustBegin(t, e)
	mustUpdate(t, e, tx, 1, "v1")
	sp, err := e.Savepoint(tx)
	if err != nil {
		t.Fatal(err)
	}
	mustUpdate(t, e, tx, 1, "v2")
	if err := e.RollbackTo(sp); err != nil {
		t.Fatal(err)
	}
	wantValue(t, e, 1, "v1")
	// Update again after the rollback, then abort everything.
	mustUpdate(t, e, tx, 1, "v3")
	mustAbort(t, e, tx)
	// A correct abort lands on "base"; double-undoing v2's CLR region
	// or mis-ordering would leave "v1" or "v2".
	wantValue(t, e, 1, "base")
}

func TestSavepointDoesNotTouchDelegatedAway(t *testing.T) {
	e := newEngine(t)
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	sp, err := e.Savepoint(t1)
	if err != nil {
		t.Fatal(err)
	}
	mustUpdate(t, e, t1, 1, "delegated")
	mustDelegate(t, e, t1, t2, 1)
	if err := e.RollbackTo(sp); err != nil {
		t.Fatal(err)
	}
	// The update postdates the savepoint but was delegated away: it is
	// t2's responsibility and must survive t1's partial rollback.
	wantValue(t, e, 1, "delegated")
	mustCommit(t, e, t2)
	mustAbort(t, e, t1)
	wantValue(t, e, 1, "delegated")
}

func TestSavepointUndoesDelegatedIn(t *testing.T) {
	e := newEngine(t)
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	sp, err := e.Savepoint(t2)
	if err != nil {
		t.Fatal(err)
	}
	mustUpdate(t, e, t1, 1, "received")
	mustDelegate(t, e, t1, t2, 1)
	// The delegated-in update postdates t2's savepoint: rolled back.
	if err := e.RollbackTo(sp); err != nil {
		t.Fatal(err)
	}
	wantValue(t, e, 1, "")
	mustCommit(t, e, t2)
	mustCommit(t, e, t1)
	wantValue(t, e, 1, "")
}

func TestSavepointKeepsDelegatedInBeforeMark(t *testing.T) {
	e := newEngine(t)
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	mustUpdate(t, e, t1, 1, "early")
	mustDelegate(t, e, t1, t2, 1)
	sp, err := e.Savepoint(t2)
	if err != nil {
		t.Fatal(err)
	}
	mustUpdate(t, e, t2, 2, "late")
	if err := e.RollbackTo(sp); err != nil {
		t.Fatal(err)
	}
	wantValue(t, e, 1, "early") // predates the savepoint: kept
	wantValue(t, e, 2, "")      // postdates it: undone
	mustCommit(t, e, t2)
	wantValue(t, e, 1, "early")
}

func TestSavepointNestedRollbacks(t *testing.T) {
	e := newEngine(t)
	tx := mustBegin(t, e)
	mustUpdate(t, e, tx, 1, "v1")
	sp1, _ := e.Savepoint(tx)
	mustUpdate(t, e, tx, 1, "v2")
	sp2, _ := e.Savepoint(tx)
	mustUpdate(t, e, tx, 1, "v3")
	if err := e.RollbackTo(sp2); err != nil {
		t.Fatal(err)
	}
	wantValue(t, e, 1, "v2")
	if err := e.RollbackTo(sp1); err != nil {
		t.Fatal(err)
	}
	wantValue(t, e, 1, "v1")
	mustCommit(t, e, tx)
	wantValue(t, e, 1, "v1")
}

func TestSavepointCrashAbortsEverything(t *testing.T) {
	e := newEngine(t)
	tx := mustBegin(t, e)
	mustUpdate(t, e, tx, 1, "before-sp")
	sp, _ := e.Savepoint(tx)
	mustUpdate(t, e, tx, 1, "after-sp")
	if err := e.RollbackTo(sp); err != nil {
		t.Fatal(err)
	}
	if err := e.Log().Flush(e.Log().Head()); err != nil {
		t.Fatal(err)
	}
	crashAndRecover(t, e)
	// Savepoints don't survive: the whole transaction is a loser.
	wantValue(t, e, 1, "")
}

func TestSavepointOnTerminatedTxnFails(t *testing.T) {
	e := newEngine(t)
	tx := mustBegin(t, e)
	sp, err := e.Savepoint(tx)
	if err != nil {
		t.Fatal(err)
	}
	mustCommit(t, e, tx)
	if _, err := e.Savepoint(tx); err == nil {
		t.Fatal("savepoint on committed txn accepted")
	}
	if err := e.RollbackTo(sp); err == nil {
		t.Fatal("rollback of committed txn accepted")
	}
}

func TestMinRequiredLSNAdvancesWithCheckpoint(t *testing.T) {
	e := newEngine(t)
	tx := mustBegin(t, e)
	mustUpdate(t, e, tx, 1, "v")
	mustCommit(t, e, tx)
	min1, err := e.MinRequiredLSN()
	if err != nil {
		t.Fatal(err)
	}
	if min1 != 1 {
		t.Fatalf("before checkpoint min = %d, want 1", min1)
	}
	// A checkpoint with no dirty-page history... flush pages first so
	// the DPT is empty and redo can start at the checkpoint.
	if err := e.store.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	min2, err := e.MinRequiredLSN()
	if err != nil {
		t.Fatal(err)
	}
	if min2 <= min1 {
		t.Fatalf("checkpoint did not advance the bound: %d -> %d", min1, min2)
	}
}

func TestMinRequiredLSNPinnedByDelegatedScope(t *testing.T) {
	// A live delegated scope reaches back before the checkpoint: the log
	// stays pinned at the scope's first LSN.
	e := newEngine(t)
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	mustUpdate(t, e, t1, 1, "old") // LSN 3
	mustDelegate(t, e, t1, t2, 1)
	mustCommit(t, e, t1)
	if err := e.store.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Pad the log.
	t3 := mustBegin(t, e)
	for i := 0; i < 50; i++ {
		mustUpdate(t, e, t3, wal.ObjectID(100+i), "pad")
	}
	mustCommit(t, e, t3)
	min, err := e.MinRequiredLSN()
	if err != nil {
		t.Fatal(err)
	}
	if min > 3 {
		t.Fatalf("min = %d; t2's delegated scope at LSN 3 must pin the log", min)
	}
	// Once the pinning transaction ends, the bound advances.
	mustCommit(t, e, t2)
	if err := e.store.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	min2, err := e.MinRequiredLSN()
	if err != nil {
		t.Fatal(err)
	}
	if min2 <= 3 {
		t.Fatalf("bound did not advance after the delegatee committed: %d", min2)
	}
}
