package core

import (
	"errors"
	"fmt"
	"testing"

	"ariesrh/internal/wal"
)

func TestArchiveLogReclaimsAndRecoveryStillWorks(t *testing.T) {
	e := newEngine(t)
	for i := 0; i < 50; i++ {
		tx := mustBegin(t, e)
		mustUpdate(t, e, tx, wal.ObjectID(i+1), fmt.Sprintf("v%d", i))
		mustCommit(t, e, tx)
	}
	if err := e.store.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	base, err := e.ArchiveLog()
	if err != nil {
		t.Fatal(err)
	}
	if base == wal.NilLSN {
		t.Fatal("nothing archived despite a clean checkpoint")
	}
	// Archived records are gone...
	if _, err := e.Log().Get(1); !errors.Is(err, wal.ErrArchived) {
		t.Fatalf("Get(1) err = %v", err)
	}
	// ...but work continues and recovery still functions.
	tx := mustBegin(t, e)
	mustUpdate(t, e, tx, 999, "post-archive")
	mustCommit(t, e, tx)
	loser := mustBegin(t, e)
	mustUpdate(t, e, loser, 998, "junk")
	if err := e.Log().Flush(e.Log().Head()); err != nil {
		t.Fatal(err)
	}
	crashAndRecover(t, e)
	wantValue(t, e, 999, "post-archive")
	wantValue(t, e, 998, "")
	for i := 0; i < 50; i++ {
		wantValue(t, e, wal.ObjectID(i+1), fmt.Sprintf("v%d", i))
	}
}

func TestArchiveLogBlockedByDelegatedScope(t *testing.T) {
	e := newEngine(t)
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	mustUpdate(t, e, t1, 1, "pinned") // LSN 3
	mustDelegate(t, e, t1, t2, 1)
	mustCommit(t, e, t1)
	if err := e.store.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Pad.
	for i := 0; i < 30; i++ {
		w := mustBegin(t, e)
		mustUpdate(t, e, w, wal.ObjectID(100+i), "pad")
		mustCommit(t, e, w)
	}
	base, err := e.ArchiveLog()
	if err != nil {
		t.Fatal(err)
	}
	if base >= 3 {
		t.Fatalf("archived through %d despite t2's live scope at LSN 3", base)
	}
	// The pinned record is still readable and the update recoverable.
	if _, err := e.Log().Get(3); err != nil {
		t.Fatal(err)
	}
	if err := e.Log().Flush(e.Log().Head()); err != nil {
		t.Fatal(err)
	}
	crashAndRecover(t, e) // t2 is a loser: the pinned update is undone
	wantValue(t, e, 1, "")
}

func TestArchiveLogAfterDelegateeCommits(t *testing.T) {
	e := newEngine(t)
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	mustUpdate(t, e, t1, 1, "pinned")
	mustDelegate(t, e, t1, t2, 1)
	mustCommit(t, e, t1)
	mustCommit(t, e, t2) // the pin is released
	if err := e.store.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	base, err := e.ArchiveLog()
	if err != nil {
		t.Fatal(err)
	}
	if base < 3 {
		t.Fatalf("base = %d; expected the old records reclaimed", base)
	}
	wantValue(t, e, 1, "pinned")
}
