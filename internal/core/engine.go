// Package core implements ARIES/RH, the paper's extension of ARIES with
// delegation support ("Delegation: Efficiently Rewriting History",
// Pedregal Martin & Ramamritham, ICDE 1997).
//
// The engine provides the usual transactional operations — Begin, Read,
// Update, Commit, Abort — plus Delegate(tor, tee, ob), which transfers
// responsibility for tor's updates to ob over to tee.  Delegation is
// "rewriting history": after delegate(t1, t2, ob), recovery must behave as
// if every update[t1, ob] record had been written by t2.  ARIES/RH obtains
// that behaviour without ever modifying the log: it tracks responsibility
// in volatile scopes (internal/delegation), logs a delegate record so the
// scopes are reconstructible, and during recovery *interprets* the log
// according to the delegations (§3.2).
//
// Normal processing follows §3.5, recovery follows §3.6: a single forward
// analysis+redo pass that replays delegate records into the object lists,
// then a backward pass that undoes exactly the loser updates by sweeping
// clusters of overlapping loser scopes in strictly decreasing LSN order.
//
// Crashes are simulated: Crash discards all volatile state (buffer pool,
// lock table, transaction table, object lists, unflushed log tail) and
// Recover rebuilds from stable storage.
package core

import (
	"errors"
	"fmt"
	"sync"

	"ariesrh/internal/buffer"
	"ariesrh/internal/delegation"
	"ariesrh/internal/lock"
	"ariesrh/internal/object"
	"ariesrh/internal/obs"
	"ariesrh/internal/storage"
	"ariesrh/internal/txn"
	"ariesrh/internal/wal"
)

// Errors returned by engine operations.
var (
	// ErrNoSuchTxn is returned for operations naming an unknown or
	// terminated transaction.
	ErrNoSuchTxn = errors.New("core: no such transaction")
	// ErrNotResponsible is returned when a delegation's precondition
	// fails: the delegator is not responsible for any update on the
	// object (§2.1.2).
	ErrNotResponsible = errors.New("core: delegator not responsible for object")
	// ErrCrashed is returned for operations attempted between Crash and
	// Recover.
	ErrCrashed = errors.New("core: engine crashed; run Recover")
	// ErrRecovering is returned for mutating operations while a parallel
	// recovery (or promotion) pipeline is still running: reads are served
	// as soon as their object's redo and undo are settled, but writes
	// must wait for the whole pipeline so they can never interleave with
	// redo or the backward pass.  Retry after WaitRecovered (or when
	// Health stops reporting StateRecovering).
	ErrRecovering = errors.New("core: engine is recovering; writes unavailable until recovery completes")
	// ErrDegraded is returned for mutating operations while the engine is
	// in the read-only degraded state it enters after a persistent log
	// device error (a commit- or abort-time force that failed even after
	// the WAL's bounded retries).  Reads and Aborts remain available —
	// aborts need no durability, recovery re-aborts them idempotently —
	// and Crash+Recover clears the state once the device is healthy.
	ErrDegraded = errors.New("core: engine degraded to read-only (persistent log device error)")
	// ErrCommitAborted is returned by Commit when an early-lock-release
	// commit could not be made durable: the transaction's locks were
	// already released at commit-record append, so — unlike the default
	// path, where a failed force returns the transaction to Active — it
	// cannot keep living under strict two-phase locking.  It has been
	// rolled back, together with (cascading) every transaction that
	// violated its early-released locks.  Wraps the device error.
	ErrCommitAborted = errors.New("core: commit aborted (early-released locks could not be made durable)")
)

// HealthState classifies engine availability; see (*Engine).Health.
type HealthState int

const (
	// StateHealthy: all operations available.
	StateHealthy HealthState = iota
	// StateDegraded: a persistent log device error was observed; the
	// engine accepts reads and aborts but rejects every operation that
	// would need new durable log records with ErrDegraded.
	StateDegraded
	// StateCrashed: between Crash and Recover; everything but Recover is
	// rejected with ErrCrashed.
	StateCrashed
	// StateFollower: the engine is a replication standby; reads are
	// served at the replayed LSN, mutations are rejected with
	// ErrFollower until Promote.
	StateFollower
	// StateRecovering: a parallel recovery (or promotion) pipeline is
	// running.  Reads are available — each waits only for its own
	// object's redo chain and undo gate — while mutations are rejected
	// with ErrRecovering until the pipeline completes.
	StateRecovering
)

// String renders the state for logs and error messages.
func (s HealthState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateCrashed:
		return "crashed"
	case StateFollower:
		return "follower"
	case StateRecovering:
		return "recovering"
	}
	return fmt.Sprintf("HealthState(%d)", int(s))
}

// Health reports engine availability: the state and, when degraded, the
// device error that caused it.
type Health struct {
	State HealthState
	// Err is the underlying device error for StateDegraded, nil
	// otherwise.
	Err error
}

// GroupCommitMode selects how Commit forces the log.
type GroupCommitMode int

const (
	// GroupCommitAuto (the zero value) enables group commit: committers
	// append their commit record under the engine latch, release it, and
	// wait on a coalesced flush (wal.Log.FlushAsync), so concurrent
	// commits share device syncs and never stall unrelated operations.
	GroupCommitAuto GroupCommitMode = iota
	// GroupCommitOn enables group commit explicitly.
	GroupCommitOn
	// GroupCommitOff forces the synchronous path: every commit performs
	// its own log flush while holding the engine latch.  Deterministic
	// crash tests and the sim oracle use it to pin down flush timing.
	GroupCommitOff
)

// Options configures an Engine.
type Options struct {
	// PoolSize is the buffer-pool capacity in pages (default 128).
	PoolSize int
	// ShardID is this engine's index in a sharded cluster (0 for a
	// standalone engine).  Two-phase commit uses it to tell coordinator
	// from participant: only the engine whose ShardID matches a prepared
	// transaction's coordinator field retains the commit decision (and
	// pins its archive) when that transaction commits — participants
	// apply the decision without retaining anything.
	ShardID uint32
	// LogDir, Disk and MasterStore override the default in-memory
	// stable storage (used for file-backed operation).  LogDir is the
	// segmented log's directory (see wal.Dir); the engine closes it on
	// Close.
	LogDir      wal.Dir
	Disk        storage.DiskManager
	MasterStore wal.Store
	// LogSegmentBytes overrides the log's segment rotation threshold
	// (0 means wal.DefaultSegmentBytes).  Small values are useful to
	// exercise rotation in tests and benchmarks.
	LogSegmentBytes int64
	// DisableChaining skips delegate-record backward-chain maintenance;
	// used only by ablation benchmarks.
	DisableChaining bool
	// FullScanUndo replaces the cluster sweep of the recovery backward
	// pass with the naïve alternative §3.6.2 rejects: scan every log
	// record backwards, testing each against the loser scopes.  Results
	// are identical; only the visit counts differ.  Ablation benchmarks
	// only.
	FullScanUndo bool
	// GroupCommit selects commit-time log forcing; the zero value
	// (GroupCommitAuto) enables coalesced group commit.
	GroupCommit GroupCommitMode
	// Follower opens the engine as a read-only replication follower: it
	// catches up on whatever the local log already holds (forward pass
	// only — losers stay live, their object lists intact), then waits for
	// records via FollowerApply.  Mutating operations are rejected with
	// ErrFollower until Promote runs the backward pass.
	Follower bool
	// EarlyLockRelease enables controlled lock violation in the commit
	// path: Commit appends the commit record, releases the transaction's
	// locks immediately — marking write (X/Increment) locks violable —
	// and defers only the durability ack to the group flusher, so lock
	// hold time no longer includes the device sync.  A transaction that
	// then acquires a conflicting lock on a marked object has violated
	// the pre-durable committer's lock: it forms an abort dependency on
	// it, and a delegation of such data carries the edge to the
	// delegatee.  Requires group commit (ignored with GroupCommitOff).
	//
	// Crash contract.  Nothing weakens: the commit ack still implies
	// durability.  A violator's own commit record necessarily follows
	// its predecessor's in the log, and flushes are prefix-ordered, so a
	// dependent can never be acknowledged — or survive recovery — unless
	// every predecessor's commit is durable too.  What changes is the
	// failure mode before the ack: if the flush fails (device error) and
	// the commit record is still above the durable horizon when the
	// committer observes the failure, the committer cannot return to
	// Active, because its locks are gone; Commit instead rolls the
	// transaction back — undoing it and every dependent in one combined
	// reverse-LSN sweep — and returns ErrCommitAborted.  (If a later
	// group round made the record durable first, the commit completes
	// normally and returns nil.)  A crash in the window between lock release and
	// flush completion needs no special handling at all: recovery judges
	// every transaction purely from the durable log, and prefix flushing
	// guarantees no dependent's commit record survives a predecessor's
	// lost one.
	EarlyLockRelease bool
	// ParallelRecovery rebuilds Recover (and Promote) as the three-stage
	// instant-restart pipeline: a manifest-driven parallel scan of the
	// log segments builds per-object redo chains, redo runs on demand —
	// a read during recovery redoes just its object's chain and returns,
	// while background workers drain the rest by descending heat — and
	// the backward cluster-undo pass runs concurrently with tail redo,
	// gated per record on the redo of the pages it touches.  Recover
	// returns once the pipeline is started; the engine then reports
	// StateRecovering, serves reads (each gated on its own object's redo
	// and undo), and rejects writes with ErrRecovering until the
	// pipeline completes (WaitRecovered blocks for it).
	//
	// Crash contract: unchanged.  The recovered state is byte-identical
	// to sequential recovery's — redo baselines are captured per page
	// before the pipeline's first write to that page, the undo sweep
	// still visits loser clusters in strictly decreasing LSN order, and
	// a read is served only after its object's redo chain has applied
	// AND every loser cluster covering the object has been undone.  A
	// pipeline failure returns the engine to the crashed state;
	// WaitRecovered reports the error and Recover may be retried.
	ParallelRecovery bool
}

// groupCommit reports whether commits use the coalesced flush path.
func (o Options) groupCommit() bool { return o.GroupCommit != GroupCommitOff }

// elr reports whether commits use early lock release (controlled lock
// violation); it rides on the group-commit flusher, so GroupCommitOff
// disables it.
func (o Options) elr() bool { return o.EarlyLockRelease && o.groupCommit() }

// Stats counts engine activity.
type Stats struct {
	Begins      uint64
	Updates     uint64
	Reads       uint64
	Delegations uint64
	Commits     uint64
	Aborts      uint64
	CLRs        uint64
	Checkpoints uint64

	// Recovery counters (cumulative over all Recover calls).
	RecForwardRecords  uint64
	RecRedone          uint64
	RecUndone          uint64
	RecBackwardVisited uint64
	RecBackwardSkipped uint64
	RecCLRs            uint64
	RecLosers          uint64
	RecWinners         uint64
}

// Engine is the ARIES/RH transaction manager.  It is safe for concurrent
// use: object locks are taken before the engine latch, so lock waits never
// block unrelated transactions' progress.
type Engine struct {
	mu    sync.Mutex
	log   *wal.Log
	disk  storage.DiskManager
	pool  *buffer.Pool
	store *object.Store
	locks *lock.Manager
	txns  *txn.Table

	// state holds each live transaction's object list (Ob_List, §3.4).
	state delegation.State
	// deps holds the ASSET form-dependency graph (volatile).
	deps map[wal.TxID][]depEdge
	// predurable maps each early-lock-release committer whose commit
	// record is appended but not yet durable to its pending-commit
	// bookkeeping.  Entries leave via durableNotify (record reached the
	// device), elrFlushFailureLocked (flush failed; rollback), or Crash.
	predurable map[wal.TxID]pendingCommit
	// prepared maps each in-doubt 2PC participant (status txn.Prepared)
	// to its global-transaction bookkeeping; globals retains coordinator-
	// side commit decisions until ReleaseGlobal, pinning the archive at
	// their prepare LSNs; maxGID is the highest global id seen.  All
	// three are rebuilt by recovery from the log and checkpoint state.
	// See internal/core/twopc.go.
	prepared map[wal.TxID]preparedInfo
	globals  map[uint64]globalDecision
	maxGID   uint64

	master  *masterRecord
	crashed bool
	// follower marks a replication standby: recovery's forward pass runs
	// continuously (FollowerApply), writes are rejected, and frs holds
	// the live replay state Promote finishes from.  replayedLSN is the
	// consistency point follower reads are served at.
	follower    bool
	frs         *replayState
	replayedLSN wal.LSN
	// degraded holds the persistent device error that moved the engine
	// to read-only degraded mode (nil while healthy).  See ErrDegraded.
	degraded error
	stats    Stats
	opts     Options

	// reg is the engine's metric registry; every component (WAL, buffer
	// pool, lock manager) binds its handles to it.  met caches the
	// engine's own handles; lastTrace records the most recent Recover.
	reg       *obs.Registry
	met       engineMetrics
	lastTrace RecoveryTrace

	// recoveryFailpoint, when positive, makes the NEXT Recover fail
	// after that many backward-pass CLRs — fault injection for
	// crash-during-recovery testing.  One-shot; cleared when it fires.
	recoveryFailpoint int

	// recovering is the live instant-restart pipeline while a parallel
	// Recover (or Promote) is in flight, nil otherwise.  While set, the
	// pipeline's goroutines own the transaction table, the object lists
	// and all page applications; every other path must either route
	// through it (reads) or reject with ErrRecovering (writes).
	recovering *recoveryPipeline
	// recoveryHold, when non-nil, makes the next pipeline block right
	// before flipping the engine back to healthy until the channel is
	// closed — a deterministic window for tests that must observe the
	// recovering state.  One-shot; consumed by the next pipeline.
	recoveryHold <-chan struct{}
}

// New creates an engine over fresh or existing stable storage.
func New(opts Options) (*Engine, error) {
	if opts.PoolSize <= 0 {
		opts.PoolSize = 128
	}
	if opts.LogDir == nil {
		opts.LogDir = wal.NewMemDir()
	}
	if opts.Disk == nil {
		opts.Disk = storage.NewMemDisk()
	}
	if opts.MasterStore == nil {
		opts.MasterStore = wal.NewMemStore()
	}
	log, err := wal.NewLogWith(opts.LogDir, wal.LogOptions{SegmentBytes: opts.LogSegmentBytes})
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	e := &Engine{
		log:        log,
		disk:       opts.Disk,
		locks:      lock.NewManager(),
		txns:       txn.NewTable(),
		state:      delegation.State{},
		deps:       make(map[wal.TxID][]depEdge),
		predurable: make(map[wal.TxID]pendingCommit),
		prepared:   make(map[wal.TxID]preparedInfo),
		globals:    make(map[uint64]globalDecision),
		master:     &masterRecord{store: opts.MasterStore},
		opts:       opts,
		reg:        reg,
		met:        bindEngineMetrics(reg),
	}
	e.log.Instrument(reg)
	e.locks.Instrument(reg)
	e.pool = buffer.NewPool(opts.Disk, opts.PoolSize, func(lsn wal.LSN) error { return e.log.Flush(lsn) })
	e.pool.Instrument(reg)
	e.store, err = object.Open(e.pool, opts.Disk)
	if err != nil {
		return nil, err
	}
	if log.Head() > log.FlushedLSN() {
		// Cannot happen on a fresh open; defensive.
		return nil, fmt.Errorf("core: log has unflushed tail at open")
	}
	if opts.Follower {
		// Follower open: forward pass over the local log (a restored
		// backup, or empty) without the backward pass — in-flight
		// transactions are not losers yet, their object lists stay live
		// for the records FollowerApply will ship.
		e.follower = true
		e.frs = newReplayState()
		e.mu.Lock()
		err := e.followerCatchUpLocked()
		e.mu.Unlock()
		if err != nil {
			return nil, err
		}
		return e, nil
	}
	if log.Head() > 0 {
		// Existing stable state: recover before accepting work.
		e.crashed = true
		if err := e.Recover(); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Log exposes the write-ahead log for inspection by tests, the demo tools
// and the benchmark harness.  Callers must not mutate it.
func (e *Engine) Log() *wal.Log { return e.log }

// Health returns the engine's availability state.  It never blocks on
// the device and is answerable in every state — including degraded and
// crashed — so operators can always ask.
func (e *Engine) Health() Health {
	e.mu.Lock()
	defer e.mu.Unlock()
	switch {
	case e.recovering != nil:
		return Health{State: StateRecovering}
	case e.crashed:
		return Health{State: StateCrashed}
	case e.follower:
		return Health{State: StateFollower}
	case e.degraded != nil:
		return Health{State: StateDegraded, Err: e.degraded}
	}
	return Health{State: StateHealthy}
}

// writableLocked gates operations that would append (and eventually
// force) new log records.  The caller holds the engine latch.
func (e *Engine) writableLocked() error {
	if e.recovering != nil {
		// Writes never interleave with the pipeline's redo or undo: they
		// are rejected until the pipeline completes and flips the state.
		return ErrRecovering
	}
	if e.crashed {
		return ErrCrashed
	}
	if e.follower {
		return ErrFollower
	}
	if e.degraded != nil {
		e.met.degradedRejects.Inc()
		return fmt.Errorf("%w: %v", ErrDegraded, e.degraded)
	}
	return nil
}

// degradeLocked moves the engine to read-only degraded mode after a
// persistent device error surfaced from a log force (the WAL has already
// spent its retry budget by the time the error reaches here).  First
// error wins; a crashed engine does not degrade (the crash supersedes).
// The caller holds the engine latch.
func (e *Engine) degradeLocked(err error) {
	if err == nil || e.crashed || e.degraded != nil {
		return
	}
	e.degraded = err
	e.met.deviceErrors.Inc()
	e.met.degraded.Set(1)
	if e.reg.HasEventHook() {
		e.reg.Emit(obs.Event{Name: "core.degraded"})
	}
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// LogStats returns the log access counters.
func (e *Engine) LogStats() wal.AccessStats { return e.log.Stats() }

// ReadObject returns the current stable/buffered value of obj without any
// locking — for tests, tools and the history checker, not for transactions.
// During a parallel recovery it is the recovering-reads surface: the call
// triggers on-demand redo of obj's chain, waits for any loser cluster
// covering obj to be undone, and returns the fully recovered value — it
// never observes a half-recovered object.
func (e *Engine) ReadObject(obj wal.ObjectID) ([]byte, bool, error) {
	e.mu.Lock()
	if p := e.recovering; p != nil {
		e.mu.Unlock()
		return p.readObject(obj)
	}
	defer e.mu.Unlock()
	if e.crashed {
		return nil, false, ErrCrashed
	}
	return e.store.Read(obj)
}

// ResponsibleFor returns the transaction currently responsible for the
// update logged at lsn (NilTx if none — e.g. the record is not an update
// or its responsible transaction has terminated).  This is the paper's
// ResponsibleTr function (§2.1.1), computed from the scopes, and is what
// "interpreting the log" means: the Figure 2 rewrite is visible through
// this lens while the log itself stays untouched.
func (e *Engine) ResponsibleFor(lsn wal.LSN) (wal.TxID, error) {
	rec, err := e.log.Get(lsn)
	if err != nil {
		return wal.NilTx, err
	}
	if !rec.IsUndoable() {
		return wal.NilTx, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.recovering != nil {
		// The pipeline's workers own the object lists until it completes.
		return wal.NilTx, ErrRecovering
	}
	for owner, ol := range e.state {
		entry := ol.Entry(rec.Object)
		if entry == nil {
			continue
		}
		for _, s := range entry.Scopes() {
			if s.Invoker == rec.TxID && s.Contains(lsn) {
				return owner, nil
			}
		}
	}
	return wal.NilTx, nil
}

// OpList returns the LSNs of the updates tx is currently responsible for —
// the paper's Op_List(t) (§2.1.1), computed from scopes by interpreting
// the log.  Sorted ascending.
//
// The whole list is produced by one bounded Scan over [min First,
// max Last] with a per-record filter.  Interleaved scopes would make a
// per-scope walk re-read the shared range once per scope with a latched
// Get per LSN, and a scope reaching below the archived log base would
// error; Scan reads each position once and starts above the base.
func (e *Engine) OpList(tx wal.TxID) ([]wal.LSN, error) {
	e.mu.Lock()
	if e.recovering != nil {
		e.mu.Unlock()
		return nil, ErrRecovering
	}
	ol, ok := e.state[tx]
	if !ok {
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: %d", ErrNoSuchTxn, tx)
	}
	scopes := ol.AllScopes()
	e.mu.Unlock()

	if len(scopes) == 0 {
		return nil, nil
	}
	lo, hi := scopes[0].First, scopes[0].Last
	for _, s := range scopes[1:] {
		if s.First < lo {
			lo = s.First
		}
		if s.Last > hi {
			hi = s.Last
		}
	}
	var out []wal.LSN
	err := e.log.Scan(lo, hi, func(rec *wal.Record) (bool, error) {
		if !rec.IsUndoable() {
			return true, nil
		}
		for _, s := range scopes {
			if s.Invoker == rec.TxID && s.Object == rec.Object && s.Contains(rec.LSN) {
				out = append(out, rec.LSN)
				break
			}
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SetRecoveryFailpoint arms a one-shot fault: the next Recover returns
// ErrInjectedRecoveryFailure after writing n compensation log records in
// its backward pass, leaving the system exactly as a crash during recovery
// would.  Testing hook; n <= 0 disarms.
func (e *Engine) SetRecoveryFailpoint(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.recoveryFailpoint = n
}

// SetRecoveryHold arms a one-shot testing hook for parallel recovery:
// the next pipeline completes all of its work — redo drain, backward
// pass, loser termination, the final log force — but blocks right before
// flipping the engine back to a writable state until ch is closed.
// Reads are fully served during the hold (every gate has been released);
// writes keep returning ErrRecovering.  This gives tests a
// deterministic window in which to observe the recovering state; nil
// disarms.
func (e *Engine) SetRecoveryHold(ch <-chan struct{}) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.recoveryHold = ch
}

// Quiesce flushes the whole log and then runs fn while holding the engine
// latch, so no operation can mutate stable state during fn.  Used for
// online backup: fn copies the stable stores and gets a crash-consistent
// snapshot (restoring it runs normal recovery).
func (e *Engine) Quiesce(fn func() error) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.writableLocked(); err != nil {
		return err
	}
	if err := e.log.Flush(e.log.Head()); err != nil {
		e.degradeLocked(err)
		return err
	}
	return fn()
}

// FlushPages writes every dirty buffer-pool page back to disk, honoring
// the WAL rule (the log is forced up to each page's LSN first).  Fuzzy
// checkpoints do not flush pages, so a hot page that is never evicted
// pins the dirty-page table's recLSN — and with it the archive bound —
// arbitrarily far back; flushing pages before a checkpoint lets
// ArchiveLog reclaim up to the checkpoint itself.
func (e *Engine) FlushPages() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.writableLocked(); err != nil {
		return err
	}
	if err := e.store.FlushAll(); err != nil {
		e.degradeLocked(err)
		return err
	}
	return nil
}

// drainRecovery waits for any live parallel-recovery pipeline to finish
// (successfully or not) so the caller can take exclusive ownership of the
// engine's volatile state.  Returns with no latch held.
func (e *Engine) drainRecovery() {
	for {
		e.mu.Lock()
		p := e.recovering
		e.mu.Unlock()
		if p == nil {
			return
		}
		<-p.done
	}
}

// Crash simulates a failure: the unflushed log tail, buffer pool, lock
// table, transaction table and all object lists are lost.  Stable storage
// (flushed log, written pages, master record) survives.  The engine
// rejects new work until Recover is called.  A parallel recovery still in
// flight is drained first — the crash then lands on whatever that
// recovery made durable, exactly as a crash during sequential recovery
// would land on its durable prefix.
func (e *Engine) Crash() error {
	e.drainRecovery()
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.log.Crash(); err != nil {
		return err
	}
	if err := e.store.Crash(); err != nil {
		return err
	}
	e.locks.Reset()
	e.txns.Reset(1)
	e.state = delegation.State{}
	e.deps = make(map[wal.TxID][]depEdge)
	// Pending early-lock-release commits die with the volatile state;
	// their wal.OnDurable callbacks fire with an error and validate
	// against this (now empty) map, so a post-recovery reuse of the same
	// TxID/LSN pair can never be touched by a stale delivery.
	e.predurable = make(map[wal.TxID]pendingCommit)
	// 2PC state is volatile too: recovery rebuilds in-doubt participants
	// and retained decisions from the durable log and checkpoint.
	e.prepared = make(map[wal.TxID]preparedInfo)
	e.globals = make(map[uint64]globalDecision)
	e.crashed = true
	// A crash clears degraded mode: the restart is the repair action —
	// if the device is still broken, Recover's final flush fails and the
	// engine stays crashed instead.
	e.degraded = nil
	e.met.degraded.Set(0)
	return nil
}

// Close flushes everything for a clean shutdown and releases the stable
// stores (log, master record and disk), including any file handles behind
// them.  A parallel recovery still in flight is waited for first.
func (e *Engine) Close() error {
	e.drainRecovery()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return ErrCrashed
	}
	if err := e.log.Flush(e.log.Head()); err != nil {
		return err
	}
	if err := e.store.FlushAll(); err != nil {
		return err
	}
	err := e.disk.Close()
	if cerr := e.opts.LogDir.Close(); err == nil {
		err = cerr
	}
	if cerr := e.opts.MasterStore.Close(); err == nil {
		err = cerr
	}
	return err
}

// masterRecord persists the LSN of the last complete checkpoint outside
// the log (the ARIES "master record").
type masterRecord struct {
	store wal.Store
}

func (m *masterRecord) Set(lsn wal.LSN) error {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(lsn >> (8 * i))
	}
	if _, err := m.store.WriteAt(buf[:], 0); err != nil {
		return err
	}
	return m.store.Sync()
}

func (m *masterRecord) Get() (wal.LSN, error) {
	size, err := m.store.Size()
	if err != nil {
		return wal.NilLSN, err
	}
	if size < 8 {
		return wal.NilLSN, nil
	}
	var buf [8]byte
	if _, err := m.store.ReadAt(buf[:], 0); err != nil {
		return wal.NilLSN, err
	}
	var lsn wal.LSN
	for i := 0; i < 8; i++ {
		lsn |= wal.LSN(buf[i]) << (8 * i)
	}
	return lsn, nil
}
