package core

import (
	"fmt"
	"testing"

	"ariesrh/internal/wal"
)

// TestOpListSingleBoundedScan is the regression test for the OpList
// rewrite: the old implementation did a latched log.Get per LSN per
// scope, so k interleaved scopes spanning a shared range cost ~k× the
// range in log reads — and a scope above an archived prefix still worked
// only by luck of iteration order.  The new implementation is one bounded
// Scan with a per-record filter: wide interleaved scopes after ArchiveLog
// must produce the exact Op_List with ~one read per position in the
// union of the scope ranges.
func TestOpListSingleBoundedScan(t *testing.T) {
	e := newEngine(t)

	// Committed, flushed, checkpointed prefix so ArchiveLog reclaims it.
	for i := 0; i < 20; i++ {
		tx := mustBegin(t, e)
		mustUpdate(t, e, tx, wal.ObjectID(1000+i), fmt.Sprintf("old%d", i))
		mustCommit(t, e, tx)
	}
	if err := e.store.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	base, err := e.ArchiveLog()
	if err != nil {
		t.Fatal(err)
	}
	if base == wal.NilLSN {
		t.Fatal("nothing archived; the test needs a non-trivial log base")
	}

	// Two live transactions with wide interleaved scopes above the
	// archived base: t1 round-robins over four objects (four overlapping
	// scopes spanning nearly the whole live range) with t2's updates
	// interleaved between every one of them.
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	var want1, want2 []wal.LSN
	const rounds, objs = 10, 4
	for i := 0; i < rounds; i++ {
		for k := 0; k < objs; k++ {
			mustUpdate(t, e, t1, wal.ObjectID(1+k), fmt.Sprintf("t1-%d-%d", i, k))
			want1 = append(want1, e.Log().Head())
			mustUpdate(t, e, t2, wal.ObjectID(50+k), fmt.Sprintf("t2-%d-%d", i, k))
			want2 = append(want2, e.Log().Head())
		}
	}

	readsBefore := e.LogStats().Reads
	ops, err := e.OpList(t1)
	if err != nil {
		t.Fatalf("OpList(t1): %v", err)
	}
	readsDelta := e.LogStats().Reads - readsBefore

	if len(ops) != len(want1) {
		t.Fatalf("OpList(t1) has %d entries, want %d", len(ops), len(want1))
	}
	for i := range ops {
		if ops[i] != want1[i] {
			t.Fatalf("OpList(t1)[%d] = %d, want %d (ascending update LSNs)", i, ops[i], want1[i])
		}
	}

	// One bounded scan: the read count is the span of the union of t1's
	// scopes, not objs× it.  t1's scopes run from its first update to its
	// last, with t2's records in between.
	span := uint64(want1[len(want1)-1] - want1[0] + 1)
	if readsDelta > span+2 {
		t.Fatalf("OpList(t1) performed %d log reads over a %d-position span; per-scope rescans (old behavior would be ~%d)",
			readsDelta, span, uint64(objs)*span)
	}

	ops2, err := e.OpList(t2)
	if err != nil {
		t.Fatalf("OpList(t2): %v", err)
	}
	if len(ops2) != len(want2) {
		t.Fatalf("OpList(t2) has %d entries, want %d", len(ops2), len(want2))
	}

	// Delegation moves the scopes but not the arithmetic: after t1
	// delegates one object away, its Op_List shrinks by that object's
	// updates and the delegatee's grows by them.
	mustDelegate(t, e, t1, t2, 1)
	ops, err = e.OpList(t1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != (objs-1)*rounds {
		t.Fatalf("OpList(t1) after delegating object 1 has %d entries, want %d", len(ops), (objs-1)*rounds)
	}
	ops2, err = e.OpList(t2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops2) != (objs+1)*rounds {
		t.Fatalf("OpList(t2) after receiving object 1 has %d entries, want %d", len(ops2), (objs+1)*rounds)
	}
	mustAbort(t, e, t2)
	mustCommit(t, e, t1)
}
