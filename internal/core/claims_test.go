package core

import (
	"fmt"
	"testing"

	"ariesrh/internal/aries"
	"ariesrh/internal/obs"
	"ariesrh/internal/wal"
)

// claimEngine is the operation surface shared by ARIES/RH and the plain
// ARIES baseline, enough to drive an identical delegation-free workload
// through both for the C1 parity check.
type claimEngine interface {
	Begin() (wal.TxID, error)
	Update(wal.TxID, wal.ObjectID, []byte) error
	Commit(wal.TxID) error
	Abort(wal.TxID) error
	Checkpoint() error
	Crash() error
	Recover() error
	Log() *wal.Log
	ReadObject(wal.ObjectID) ([]byte, bool, error)
}

// runDelegationFreeWorkload drives the same script through either engine:
// committers, explicit aborts, a fuzzy checkpoint mid-stream, and two
// in-flight losers at the crash.  Every operation is deterministic, so
// two engines running it must append records at the same LSNs.
func runDelegationFreeWorkload(t *testing.T, e claimEngine) {
	t.Helper()
	begin := func() wal.TxID {
		tx, err := e.Begin()
		if err != nil {
			t.Fatal(err)
		}
		return tx
	}
	update := func(tx wal.TxID, obj wal.ObjectID, val string) {
		if err := e.Update(tx, obj, []byte(val)); err != nil {
			t.Fatal(err)
		}
	}

	// Three committers with interleaved updates.
	t1, t2, t3 := begin(), begin(), begin()
	for i := 0; i < 3; i++ {
		update(t1, wal.ObjectID(10+i), fmt.Sprintf("a%d", i))
		update(t2, wal.ObjectID(20+i), fmt.Sprintf("b%d", i))
		update(t3, wal.ObjectID(30+i), fmt.Sprintf("c%d", i))
	}
	if err := e.Commit(t1); err != nil {
		t.Fatal(err)
	}

	// An explicit abort exercising the CLR path.
	t4 := begin()
	update(t4, 40, "doomed")
	update(t4, 41, "doomed")
	if err := e.Abort(t4); err != nil {
		t.Fatal(err)
	}

	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(t2); err != nil {
		t.Fatal(err)
	}

	// Two losers in flight at the crash: t3 committed, t5 and t6 did not.
	t5, t6 := begin(), begin()
	update(t5, 50, "lost")
	update(t5, 51, "lost")
	update(t6, 60, "lost")
	if err := e.Commit(t3); err != nil {
		t.Fatal(err)
	}
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}
}

// TestClaimC1DelegationFreeParity asserts the paper's C1 (§4.2): on a
// workload with no delegations, ARIES/RH performs exactly the work plain
// ARIES performs — same log records appended, same CLRs, and a recovery
// pass that reads, redoes and compensates the same record counts.  The
// comparison is made in internal/obs counter units on the RH side against
// the baseline engine's own counters.
func TestClaimC1DelegationFreeParity(t *testing.T) {
	rh, err := New(Options{GroupCommit: GroupCommitOff})
	if err != nil {
		t.Fatal(err)
	}
	base, err := aries.New(aries.Options{})
	if err != nil {
		t.Fatal(err)
	}
	runDelegationFreeWorkload(t, rh)
	runDelegationFreeWorkload(t, base)

	m := rh.Metrics()
	bs := base.Stats()
	bls := base.Log().Stats()
	trace := rh.LastRecoveryTrace()

	if got, want := m.Counter("wal.appends"), bls.Appends; got != want {
		t.Errorf("wal.appends = %d, baseline ARIES appended %d (C1: no delegation, no extra log records)", got, want)
	}
	if got, want := rh.Log().Head(), base.Log().Head(); got != want {
		t.Errorf("log head = %d, baseline %d", got, want)
	}
	if got, want := m.Counter("core.delegations"), uint64(0); got != want {
		t.Errorf("core.delegations = %d on a delegation-free workload", got)
	}
	if got, want := trace.ForwardRecords, bs.RecForwardRecords; got != want {
		t.Errorf("recovery forward records = %d, baseline %d", got, want)
	}
	if got, want := trace.Redone, bs.RecRedone; got != want {
		t.Errorf("recovery redone = %d, baseline %d", got, want)
	}
	if got, want := trace.CLRs, bs.RecCLRs; got != want {
		t.Errorf("recovery CLRs = %d, baseline %d", got, want)
	}
	if got, want := trace.Losers, bs.RecLosers; got != want {
		t.Errorf("recovery losers = %d, baseline %d", got, want)
	}
	if got, want := trace.Winners, bs.RecWinners; got != want {
		t.Errorf("recovery winners = %d, baseline %d", got, want)
	}
	if got, want := m.Counter("recovery.forward_records"), bs.RecForwardRecords; got != want {
		t.Errorf("recovery.forward_records counter = %d, baseline %d", got, want)
	}

	// Same final object states on both sides.
	for obj := wal.ObjectID(10); obj <= 61; obj++ {
		gv, gok, err := rh.ReadObject(obj)
		if err != nil {
			t.Fatal(err)
		}
		bv, bok, err := base.ReadObject(obj)
		if err != nil {
			t.Fatal(err)
		}
		if gok != bok || string(gv) != string(bv) {
			t.Errorf("object %d: ARIES/RH has (%q,%v), baseline (%q,%v)", obj, gv, gok, bv, bok)
		}
	}
}

// TestClaimC2DelegateCostLinear asserts the paper's C2 (§4.2): the
// normal-processing cost of delegate(tor, tee) is linear in the number of
// objects delegated — one appended log record and one lock share per
// object, zero device flushes, and independent of how many updates each
// object carries.
func TestClaimC2DelegateCostLinear(t *testing.T) {
	for _, tc := range []struct {
		objects, updatesPerObject int
	}{
		{1, 1}, {2, 6}, {4, 1}, {4, 6}, {8, 3},
	} {
		e, err := New(Options{GroupCommit: GroupCommitOff})
		if err != nil {
			t.Fatal(err)
		}
		tor := mustBegin(t, e)
		tee := mustBegin(t, e)
		for k := 0; k < tc.objects; k++ {
			for u := 0; u < tc.updatesPerObject; u++ {
				mustUpdate(t, e, tor, wal.ObjectID(1+k), fmt.Sprintf("v%d-%d", k, u))
			}
		}
		before := e.Metrics()
		if err := e.DelegateAll(tor, tee); err != nil {
			t.Fatal(err)
		}
		d := e.Metrics().Sub(before)

		n := uint64(tc.objects)
		if got := d.Counter("wal.appends"); got != n {
			t.Errorf("%d objects × %d updates: delegation appended %d records, want %d (one per object)",
				tc.objects, tc.updatesPerObject, got, n)
		}
		if got := d.Counter("core.delegations"); got != n {
			t.Errorf("%d objects: core.delegations delta = %d, want %d", tc.objects, got, n)
		}
		if got := d.Counter("lock.transfers") + d.Counter("lock.shares"); got != n {
			t.Errorf("%d objects: lock shares+transfers delta = %d, want %d (one inherited hold per object)",
				tc.objects, got, n)
		}
		if got := d.Counter("wal.flushes"); got != 0 {
			t.Errorf("%d objects: delegation forced %d device flushes, want 0 (append-only cost)", tc.objects, got)
		}
		mustCommit(t, e, tee)
		mustCommit(t, e, tor)
	}
}

// TestClaimC3UndoVisitInvariant asserts the paper's C3 (§4.2): the
// backward cluster-undo pass of recovery visits log records at most once
// each, at strictly decreasing LSNs — a single monotone sweep, exactly
// like ARIES' undo, with no extra passes over the log.  The visit order
// is captured from the undo.visit event stream and the at-most-once bound
// from the undo.visited/undo.skipped counters.
func TestClaimC3UndoVisitInvariant(t *testing.T) {
	e, err := New(Options{GroupCommit: GroupCommitOff})
	if err != nil {
		t.Fatal(err)
	}

	// Losers with delegations and a committed winner interleaved, so the
	// sweep has overlapping loser clusters to merge.
	t1 := mustBegin(t, e)
	t2 := mustBegin(t, e)
	t3 := mustBegin(t, e)
	for i := 0; i < 4; i++ {
		mustUpdate(t, e, t1, wal.ObjectID(1+i%2), fmt.Sprintf("l1-%d", i))
		mustUpdate(t, e, t2, wal.ObjectID(10+i%2), fmt.Sprintf("l2-%d", i))
		mustUpdate(t, e, t3, wal.ObjectID(20+i%2), fmt.Sprintf("w-%d", i))
	}
	mustDelegate(t, e, t1, t2, 1)
	mustUpdate(t, e, t2, 1, "l2-after-delegate")
	mustCommit(t, e, t3)
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}

	var visits []wal.LSN
	e.SetEventHook(func(ev obs.Event) {
		if ev.Name == "undo.visit" {
			visits = append(visits, wal.LSN(ev.LSN))
		}
	})
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}
	e.SetEventHook(nil)

	if len(visits) == 0 {
		t.Fatal("recovery undid losers but emitted no undo.visit events")
	}
	seen := make(map[wal.LSN]bool, len(visits))
	for i, lsn := range visits {
		if seen[lsn] {
			t.Fatalf("undo visited LSN %d twice (C3: at most one visit per record)", lsn)
		}
		seen[lsn] = true
		if i > 0 && lsn >= visits[i-1] {
			t.Fatalf("undo visit order not strictly decreasing: LSN %d after %d", lsn, visits[i-1])
		}
	}

	trace := e.LastRecoveryTrace()
	m := e.Metrics()
	if got := trace.BackwardVisited; got != uint64(len(visits)) {
		t.Errorf("trace.BackwardVisited = %d, %d undo.visit events", got, len(visits))
	}
	if got := m.Counter("undo.visited"); got != uint64(len(visits)) {
		t.Errorf("undo.visited counter = %d, %d undo.visit events", got, len(visits))
	}
	// No extra sweep: every log position is visited or skipped at most
	// once, so the total backward work is bounded by the log itself.
	if work := trace.BackwardVisited + trace.BackwardSkipped; work > uint64(e.Log().Head()) {
		t.Errorf("backward pass touched %d positions over a %d-record log (C3: no extra sweeps)",
			work, e.Log().Head())
	}
	if trace.Clusters == 0 {
		t.Error("undo.clusters = 0; the sweep should have formed at least one loser cluster")
	}
	if got, want := m.Counter("undo.clusters"), trace.Clusters; got != want {
		t.Errorf("undo.clusters counter = %d, trace says %d", got, want)
	}

	// Correctness corollary (§4.1): all loser updates undone, no winner
	// update undone.
	for _, obj := range []wal.ObjectID{1, 2, 10, 11} {
		wantValue(t, e, obj, "")
	}
	wantValue(t, e, 20, "w-2")
	wantValue(t, e, 21, "w-3")
}
