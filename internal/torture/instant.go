package torture

import (
	"fmt"
	"runtime"
	"sync"

	"ariesrh/internal/core"
	"ariesrh/internal/fault"
	"ariesrh/internal/obs"
	"ariesrh/internal/sim"
	"ariesrh/internal/wal"
)

// RunReadsDuringRecovery executes the crash-point sweep with the engine's
// parallel recovery pipeline (core.Options.ParallelRecovery) and, at
// every boundary, issues reads of every object and counter WHILE the
// pipeline is still running — Recover returns with recovery in flight,
// so the reads race the redo drain and the backward undo sweep.  Each
// read triggers on-demand redo of its object's chain and waits for the
// undo of the loser clusters covering it, so it must already return the
// fully recovered value; the reads are judged by the same durable-log
// oracle as the sequential sweep, and the post-WaitRecovered state is
// checked against it a second time.  The undo-visit stream must stay one
// strictly decreasing, duplicate-free sweep — the pipeline changes when
// redo happens, never the undo order.
func RunReadsDuringRecovery(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	trace := sim.Generate(cfg.simConfig())

	// Probe exactly as Run does: boundaries are a pure function of the
	// trace, independent of how recovery will later be performed.
	probe := fault.NewDir(fault.Plan{})
	eng, err := core.New(core.Options{
		LogDir:      probe,
		GroupCommit: core.GroupCommitOff,
		PoolSize:    cfg.PoolSize,
	})
	if err != nil {
		return Result{}, err
	}
	if err := sim.NewReplayer(sim.CoreTarget{Engine: eng}, trace).RunTo(-1); err != nil {
		return Result{}, fmt.Errorf("torture: probe replay: %w", err)
	}
	boundaries := int(probe.Syncs())

	res := Result{Boundaries: boundaries}
	sweep := boundaries
	if cfg.MaxBoundaries > 0 && sweep > cfg.MaxBoundaries {
		sweep = cfg.MaxBoundaries
	}

	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for k := 1; k <= sweep; k++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(k int) {
			defer wg.Done()
			defer func() { <-sem }()
			b, err := cfg.runBoundaryInstant(trace, uint64(k))
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("torture: reads-during-recovery seed %d boundary %d: %w", cfg.Seed, k, err)
				}
				return
			}
			res.Crashes++
			res.TornCrashes += b.torn
			res.AmbiguousWins += b.ambiguous
			res.Winners += b.winners
			res.Losers += b.losers
			res.Records += b.records
			res.UndoVisits += b.undoVisits
		}(k)
	}
	wg.Wait()
	if firstErr != nil {
		return res, firstErr
	}
	return res, nil
}

// checkOracleState compares the engine's visible state for every object
// and counter against the oracle; phase labels the error ("during
// recovery" vs "after recovery").
func (cfg Config) checkOracleState(eng *core.Engine, oracle *logOracle, phase string) error {
	for obj := 1; obj <= cfg.Objects; obj++ {
		id := wal.ObjectID(obj)
		got, _, err := eng.ReadObject(id)
		if err != nil {
			return fmt.Errorf("%s: read object %d: %w", phase, obj, err)
		}
		if want := oracle.values[id]; string(got) != string(want) {
			return fmt.Errorf("%s: object %d: engine %q, oracle %q", phase, obj, got, want)
		}
	}
	for c := cfg.Objects + 1; c <= cfg.Objects+cfg.Counters; c++ {
		id := wal.ObjectID(c)
		got, err := eng.CounterValue(id)
		if err != nil {
			return fmt.Errorf("%s: read counter %d: %w", phase, c, err)
		}
		if want := oracle.counters[id]; got != want {
			return fmt.Errorf("%s: counter %d: engine %d, oracle %d", phase, c, got, want)
		}
	}
	return nil
}

// runBoundaryInstant is runBoundary with the parallel pipeline: same
// plan, same oracle, but recovery is left in flight while concurrent
// readers check every object against the oracle mid-pipeline.
func (cfg Config) runBoundaryInstant(trace []sim.Action, k uint64) (boundaryStats, error) {
	var bs boundaryStats
	plan := fault.Plan{
		Seed:        cfg.Seed ^ int64(uint64(k)*0x9E3779B97F4A7C15),
		CrashAtSync: k,
		TornTail:    cfg.TornEvery > 0 && k%uint64(cfg.TornEvery) == 0,
	}
	store := fault.NewDir(plan)
	mk := func() (*core.Engine, error) {
		return core.New(core.Options{
			LogDir:           store,
			GroupCommit:      core.GroupCommitOff,
			PoolSize:         cfg.PoolSize,
			ParallelRecovery: true,
		})
	}
	eng, err := mk()
	if err != nil {
		if !isCrashSignal(err) {
			return bs, err
		}
		torn, err := initCrashRecovery(store, mk)
		if err != nil {
			return bs, err
		}
		if torn {
			bs.torn = 1
		}
		return bs, nil
	}
	r := sim.NewReplayer(sim.CoreTarget{Engine: eng}, trace)

	failedIdx := -1
	for {
		ok, err := r.Step()
		if err != nil {
			if !isCrashSignal(err) {
				return bs, fmt.Errorf("unexpected replay error: %w", err)
			}
			failedIdx = r.Pos() - 1
			break
		}
		if !ok {
			break
		}
	}
	tornBytes, err := store.CrashNow()
	if err != nil {
		return bs, err
	}
	if tornBytes > 0 {
		bs.torn = 1
	}
	recs, err := decodeStable(store)
	if err != nil {
		return bs, fmt.Errorf("decode durable log: %w", err)
	}
	bs.records = len(recs)
	winners := durableWinners(recs)

	oracle := newLogOracle()
	for _, rec := range recs {
		oracle.apply(rec)
	}
	oracle.crashUndo()

	ids := r.IDs()
	bs.winners = len(winners)
	bs.losers = len(ids) - len(winners)
	if failedIdx >= 0 && trace[failedIdx].Kind == sim.ActCommit && winners[ids[trace[failedIdx].Tx]] {
		bs.ambiguous++
	}

	if err := eng.Crash(); err != nil {
		return bs, err
	}
	var visitMu sync.Mutex
	var visits []wal.LSN
	eng.SetEventHook(func(ev obs.Event) {
		if ev.Name == "undo.visit" {
			visitMu.Lock()
			visits = append(visits, wal.LSN(ev.LSN))
			visitMu.Unlock()
		}
	})
	// Recover returns with the pipeline still running...
	if err := eng.Recover(); err != nil {
		return bs, fmt.Errorf("recover: %w", err)
	}
	// ...and the mid-recovery readers race it: two goroutines split the
	// object space and check every value against the oracle while redo
	// and undo are (possibly) still in flight.
	var readerWG sync.WaitGroup
	readerErrs := make([]error, 2)
	for part := 0; part < 2; part++ {
		readerWG.Add(1)
		go func(part int) {
			defer readerWG.Done()
			for obj := 1; obj <= cfg.Objects+cfg.Counters; obj++ {
				if obj%2 != part {
					continue
				}
				id := wal.ObjectID(obj)
				if obj <= cfg.Objects {
					got, _, err := eng.ReadObject(id)
					if err != nil {
						readerErrs[part] = fmt.Errorf("mid-recovery read object %d: %w", obj, err)
						return
					}
					if want := oracle.values[id]; string(got) != string(want) {
						readerErrs[part] = fmt.Errorf("mid-recovery object %d: engine %q, oracle %q", obj, got, want)
						return
					}
				} else {
					got, err := eng.CounterValue(id)
					if err != nil {
						readerErrs[part] = fmt.Errorf("mid-recovery read counter %d: %w", obj, err)
						return
					}
					if want := oracle.counters[id]; got != want {
						readerErrs[part] = fmt.Errorf("mid-recovery counter %d: engine %d, oracle %d", obj, got, want)
						return
					}
				}
			}
		}(part)
	}
	readerWG.Wait()
	for _, rerr := range readerErrs {
		if rerr != nil {
			return bs, rerr
		}
	}
	if err := eng.WaitRecovered(); err != nil {
		return bs, fmt.Errorf("wait recovered: %w", err)
	}
	eng.SetEventHook(nil)
	bs.undoVisits = len(visits)

	// The pipeline must not change the undo order: one monotone sweep,
	// strictly decreasing, no duplicates.
	seen := make(map[wal.LSN]bool, len(visits))
	for i, lsn := range visits {
		if seen[lsn] {
			return bs, fmt.Errorf("undo visited LSN %d twice", lsn)
		}
		seen[lsn] = true
		if i > 0 && lsn >= visits[i-1] {
			return bs, fmt.Errorf("undo visits not strictly decreasing: %d then %d", visits[i-1], lsn)
		}
	}

	// Settled-state check: same judgment, after the pipeline completed.
	return bs, cfg.checkOracleState(eng, oracle, "after recovery")
}
