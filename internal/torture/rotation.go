// Rotation/archive torture: crash-at-every-sync during segment rotation
// and log archiving.
//
// The serial sweep in torture.go runs with the default segment cap and
// never archives, so its crash schedule only ever lands on frame-flush
// syncs.  The segmented log has two more maintenance paths with their own
// device mutations: rotation (a fresh segment image created and its
// header synced when an append passes the cap) and Archive (a new
// manifest generation written and synced, then whole sealed segments
// deleted).  This sweep forces both to run constantly — the segment cap
// is tiny, so every few appends seal a segment, and every few rounds a
// checkpoint plus ArchiveLog reclaims the prefix — and then crashes the
// device at every sync boundary the workload performs, so the freeze
// lands inside rotations, inside archive's manifest commit, and between
// the manifest sync and the segment deletes.
//
// Judging needs one extra ingredient over torture.go: archive deletes
// durable records, so the post-crash image alone cannot reconstruct
// object state written before the base.  The workload is serial and
// deterministic, so a fault-free capture run with archiving disabled
// (archive appends no records, hence the record sequence is identical)
// provides the full record sequence.  Each boundary's durable image must
// then be byte-identical to the capture at every surviving LSN — archive
// must never mutate a record it retains — and the expected post-recovery
// state is the log oracle replayed over the capture prefix up to the
// boundary's durable head.
package torture

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"ariesrh/internal/core"
	"ariesrh/internal/fault"
	"ariesrh/internal/wal"
)

// RotationConfig parameterizes a rotation/archive crash sweep.  The zero
// value is usable: every field defaults to a workload that rotates on
// nearly every transaction and archives several times.
type RotationConfig struct {
	// Seed determines the trace and every injected fault.
	Seed int64
	// Rounds is the number of serial transactions.
	Rounds int
	// Objects and Counters size the object space (values 1..Objects,
	// counters Objects+1..Objects+Counters).
	Objects  int
	Counters int
	// ArchiveEvery issues Checkpoint + ArchiveLog after every
	// ArchiveEvery-th round.
	ArchiveEvery int
	// SegmentBytes is the forced segment cap; tiny values make every few
	// appends rotate.
	SegmentBytes int64
	// PoolSize is the engine buffer-pool size.  Deliberately small: page
	// evictions flush pages, advancing the dirty-page bound so archive
	// actually reclaims segments.
	PoolSize int
	// MaxBoundaries caps the number of crash points swept (0 = all).
	MaxBoundaries int
	// TornEvery tears the unsynced tail at every TornEvery-th boundary.
	TornEvery int
}

func (c RotationConfig) withDefaults() RotationConfig {
	if c.Rounds <= 0 {
		c.Rounds = 80
	}
	if c.Objects <= 0 {
		c.Objects = 16
	}
	if c.Counters == 0 {
		c.Counters = 4
	}
	if c.ArchiveEvery <= 0 {
		c.ArchiveEvery = 7
	}
	if c.SegmentBytes == 0 {
		c.SegmentBytes = 256
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 8
	}
	if c.TornEvery == 0 {
		c.TornEvery = 2
	}
	return c
}

// RotationResult aggregates a rotation/archive sweep.
type RotationResult struct {
	// Boundaries is the number of distinct sync boundaries the workload
	// performs; Crashes how many were crashed and recovered.
	Boundaries int
	Crashes    int
	// TornCrashes counts boundaries that persisted a torn tail.
	TornCrashes int
	// Rotations and Archives are the maintenance operations the fault-free
	// probe run performed — the sweep's reason to exist; ArchivedBase is
	// the probe's final base (non-nil proves archiving really reclaimed).
	Rotations    uint64
	Archives     uint64
	ArchivedBase wal.LSN
	// Winners, Losers and Records are cumulative durable-log
	// classifications across boundaries, as in Result.
	Winners, Losers int
	Records         int
}

func (cfg RotationConfig) newEngine(dir wal.Dir) (*core.Engine, error) {
	return core.New(core.Options{
		LogDir:          dir,
		GroupCommit:     core.GroupCommitOff,
		PoolSize:        cfg.PoolSize,
		LogSegmentBytes: cfg.SegmentBytes,
	})
}

// workload runs the serial deterministic trace: each round updates one or
// two objects, sometimes increments a counter, then commits (or aborts a
// fixed fraction); after every ArchiveEvery-th round a checkpoint and —
// when doArchive — an ArchiveLog reclaim the durable prefix.  The rng
// consumption is independent of doArchive and of any device behavior, so
// the appended record sequence is a pure function of the config.  It
// returns the first error (the crash schedule surfacing, for fault runs).
func (cfg RotationConfig) workload(eng *core.Engine, doArchive bool) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	for r := 0; r < cfg.Rounds; r++ {
		tx, err := eng.Begin()
		if err != nil {
			return err
		}
		objs := []wal.ObjectID{wal.ObjectID(1 + rng.Intn(cfg.Objects))}
		if rng.Intn(2) == 0 {
			second := wal.ObjectID(1 + rng.Intn(cfg.Objects))
			if second != objs[0] {
				objs = append(objs, second)
			}
		}
		for _, obj := range objs {
			if err := eng.Update(tx, obj, []byte(fmt.Sprintf("r%d.o%d", r, obj))); err != nil {
				return err
			}
		}
		if rng.Float64() < 0.3 {
			ctr := wal.ObjectID(cfg.Objects + 1 + rng.Intn(cfg.Counters))
			if _, err := eng.Increment(tx, ctr, int64(rng.Intn(5)+1)); err != nil {
				return err
			}
		}
		if rng.Float64() < 0.2 {
			if err := eng.Abort(tx); err != nil {
				return err
			}
		} else if err := eng.Commit(tx); err != nil {
			return err
		}
		if (r+1)%cfg.ArchiveEvery == 0 {
			// Flush pages first so the checkpoint's dirty-page table does
			// not pin the archive bound at some hot page's ancient recLSN.
			if err := eng.FlushPages(); err != nil {
				return err
			}
			if err := eng.Checkpoint(); err != nil {
				return err
			}
			if doArchive {
				if _, err := eng.ArchiveLog(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// RotationRun executes the rotation/archive crash sweep.  A capture run
// (fault-free, archiving disabled) records the full record sequence; a
// probe run (fault-free, archiving on) counts the sync boundaries and
// proves rotation and archive really fire; then every boundary is swept.
func RotationRun(cfg RotationConfig) (RotationResult, error) {
	cfg = cfg.withDefaults()

	// Capture: the full record sequence, with nothing ever archived.
	capEng, err := cfg.newEngine(wal.NewMemDir())
	if err != nil {
		return RotationResult{}, err
	}
	if err := cfg.workload(capEng, false); err != nil {
		return RotationResult{}, fmt.Errorf("torture: rotation capture: %w", err)
	}
	head := capEng.Log().Head()
	fullRecs := make([]*wal.Record, head)
	for lsn := wal.LSN(1); lsn <= head; lsn++ {
		rec, err := capEng.Log().Get(lsn)
		if err != nil {
			return RotationResult{}, fmt.Errorf("torture: rotation capture read %d: %w", lsn, err)
		}
		fullRecs[lsn-1] = rec
	}

	// Probe: count the sync boundaries of the real (archiving) workload.
	probe := fault.NewDir(fault.Plan{})
	probeEng, err := cfg.newEngine(probe)
	if err != nil {
		return RotationResult{}, err
	}
	if err := cfg.workload(probeEng, true); err != nil {
		return RotationResult{}, fmt.Errorf("torture: rotation probe: %w", err)
	}
	stats := probeEng.Log().Stats()
	res := RotationResult{
		Boundaries:   int(probe.Syncs()),
		Rotations:    stats.Rotations,
		Archives:     stats.Archives,
		ArchivedBase: probeEng.Log().Base(),
	}

	sweep := res.Boundaries
	if cfg.MaxBoundaries > 0 && sweep > cfg.MaxBoundaries {
		sweep = cfg.MaxBoundaries
	}

	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for k := 1; k <= sweep; k++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(k int) {
			defer wg.Done()
			defer func() { <-sem }()
			b, err := cfg.runRotationBoundary(fullRecs, uint64(k))
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("torture: rotation seed %d boundary %d: %w", cfg.Seed, k, err)
				}
				return
			}
			res.Crashes++
			res.TornCrashes += b.torn
			res.Winners += b.winners
			res.Losers += b.losers
			res.Records += b.records
		}(k)
	}
	wg.Wait()
	if firstErr != nil {
		return res, firstErr
	}
	return res, nil
}

type rotationBoundaryStats struct {
	torn    int
	winners int
	losers  int
	records int
}

// runRotationBoundary runs the archiving workload against a device frozen
// after sync k, crashes, and judges the durable image against the capture
// sequence: every surviving record byte-identical to the capture at its
// LSN, recovered state equal to the oracle over the capture prefix up to
// the durable head.
func (cfg RotationConfig) runRotationBoundary(fullRecs []*wal.Record, k uint64) (rotationBoundaryStats, error) {
	var bs rotationBoundaryStats
	plan := fault.Plan{
		Seed:        cfg.Seed ^ int64(k*0x9E3779B97F4A7C15),
		CrashAtSync: k,
		TornTail:    cfg.TornEvery > 0 && k%uint64(cfg.TornEvery) == 0,
	}
	store := fault.NewDir(plan)
	eng, err := cfg.newEngine(store)
	if err != nil {
		if !isCrashSignal(err) {
			return bs, err
		}
		// The boundary fired inside log initialization — settle it as a
		// crash over the partial bootstrap.
		torn, err := initCrashRecovery(store, func() (*core.Engine, error) {
			return cfg.newEngine(store)
		})
		if err != nil {
			return bs, err
		}
		if torn {
			bs.torn = 1
		}
		return bs, nil
	}
	if err := cfg.workload(eng, true); err != nil && !isCrashSignal(err) {
		return bs, fmt.Errorf("unexpected workload error: %w", err)
	}

	// Materialize the crash and judge from the durable image.
	tornBytes, err := store.CrashNow()
	if err != nil {
		return bs, err
	}
	if tornBytes > 0 {
		bs.torn = 1
	}
	base, recs, err := wal.ReadDurable(store.StableDir())
	if err != nil {
		return bs, fmt.Errorf("decode durable log: %w", err)
	}
	bs.records = len(recs)

	// Retained-record identity: archive commits a manifest and deletes
	// whole files; it must never rewrite a surviving record, so every
	// durable record equals the capture at its LSN.
	durableHead := base
	for _, rec := range recs {
		if rec.LSN < 1 || int(rec.LSN) > len(fullRecs) {
			return bs, fmt.Errorf("durable record at LSN %d outside the captured trace (len %d)", rec.LSN, len(fullRecs))
		}
		want, err := wal.EncodeRecord(fullRecs[rec.LSN-1])
		if err != nil {
			return bs, err
		}
		got, err := wal.EncodeRecord(rec)
		if err != nil {
			return bs, err
		}
		if !bytes.Equal(got, want) {
			return bs, fmt.Errorf("durable record at LSN %d diverges from the capture", rec.LSN)
		}
		if rec.LSN > durableHead {
			durableHead = rec.LSN
		}
	}
	if int(durableHead) > len(fullRecs) {
		return bs, fmt.Errorf("durable head %d beyond captured trace (len %d)", durableHead, len(fullRecs))
	}

	// Expected state: the oracle over the capture prefix — the archived
	// records plus the surviving suffix — then undo the losers.
	prefix := fullRecs[:durableHead]
	oracle := newLogOracle()
	for _, rec := range prefix {
		oracle.apply(rec)
	}
	oracle.crashUndo()
	winners := durableWinners(prefix)
	began := make(map[wal.TxID]bool)
	for _, rec := range prefix {
		if rec.Type == wal.TypeBegin {
			began[rec.TxID] = true
		}
	}
	bs.winners = len(winners)
	bs.losers = len(began) - len(winners)

	// Crash, recover, and require oracle agreement on every object and
	// counter.
	if err := eng.Crash(); err != nil {
		return bs, err
	}
	if err := eng.Recover(); err != nil {
		return bs, fmt.Errorf("recover: %w", err)
	}
	for obj := 1; obj <= cfg.Objects; obj++ {
		id := wal.ObjectID(obj)
		want := oracle.values[id]
		got, _, err := eng.ReadObject(id)
		if err != nil {
			return bs, err
		}
		if string(got) != string(want) {
			return bs, fmt.Errorf("object %d: engine %q, oracle %q (base %d, head %d)",
				obj, got, want, base, durableHead)
		}
	}
	for c := cfg.Objects + 1; c <= cfg.Objects+cfg.Counters; c++ {
		id := wal.ObjectID(c)
		got, err := eng.CounterValue(id)
		if err != nil {
			return bs, err
		}
		if want := oracle.counters[id]; got != want {
			return bs, fmt.Errorf("counter %d: engine %d, oracle %d", c, got, want)
		}
	}
	return bs, nil
}
