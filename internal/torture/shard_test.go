package torture

import "testing"

// TestShardSweep is the headline cross-shard torture run: every shard
// of a 3-shard cluster is crashed at every device sync its log
// performs — inside bootstrap, before and after prepares, around the
// coordinator's decision force, mid phase 2 — and the recovered
// cluster must agree with the decision-settled log oracle on every
// object, with no transaction left in doubt.
func TestShardSweep(t *testing.T) {
	cfg := ShardConfig{Seed: 1}
	if testing.Short() {
		cfg.MaxBoundaries = 45
	}
	res, err := RunShards(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("shard sweep: %+v", res)
	if res.Boundaries < 100 {
		t.Errorf("workload exposed %d cross-shard crash points, want >= 100", res.Boundaries)
	}
	want := res.Boundaries
	if cfg.MaxBoundaries > 0 && want > cfg.MaxBoundaries {
		want = cfg.MaxBoundaries
	}
	if res.Crashes != want {
		t.Errorf("recovered at %d of %d boundaries", res.Crashes, want)
	}
	if res.TornCrashes == 0 {
		t.Error("no boundary produced a torn tail")
	}
	if res.GlobalCommits == 0 {
		t.Error("no boundary ever found a durable two-phase decision")
	}
	if res.Resolved == 0 {
		t.Error("no recovery ever resolved an in-doubt participant")
	}
}

// TestShardSweepSecondSeed re-runs the sweep under a different seed —
// the acceptance bar is zero atomicity violations on two seeds, not
// one lucky trace.
func TestShardSweepSecondSeed(t *testing.T) {
	cfg := ShardConfig{Seed: 7}
	if testing.Short() {
		cfg.MaxBoundaries = 45
	}
	res, err := RunShards(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("shard sweep: %+v", res)
	if res.Crashes == 0 || res.GlobalCommits == 0 {
		t.Fatalf("sweep did no useful work: %+v", res)
	}
}

// TestShardSweepDeterminism pins reproducibility: one seed fully
// determines the trace, every per-shard sync count, and every injected
// fault, so two runs must aggregate identically.
func TestShardSweepDeterminism(t *testing.T) {
	cfg := ShardConfig{Seed: 3, Steps: 30, MaxBoundaries: 30}
	a, err := RunShards(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunShards(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed, different sweeps:\n  %+v\n  %+v", a, b)
	}
}
