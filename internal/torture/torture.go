// Package torture is the fault-injection torture harness for crash
// recovery: it drives delegation-heavy randomized workloads over a
// fault.Store, crashes the engine at every injected boundary, recovers,
// and checks the recovered state against the sim oracle plus log-level
// invariants.
//
// The central entry point is Run, the crash-point sweep.  One seed fully
// determines a workload trace AND the set of crash points it is swept
// over: a probe replay counts the device syncs the trace performs (with
// group commit off, every commit and abort forces exactly one), then the
// trace is re-run once per boundary k with a fault.Plan that freezes the
// device after sync k — on even boundaries additionally persisting a
// seeded torn prefix of the unsynced tail.  Every boundary is therefore
// enumerable, reproducible and independently replayable.
//
// Correctness at a boundary is judged against the durable log, not
// against what the replay observed: post-crash state is a function of
// the bytes on the device alone.  A commit whose ack never returned may
// still be durable (its record landed in the torn tail) and is then a
// winner — the classic commit-ack ambiguity — while an abort that ran
// to completion in memory may have left no durable CLRs and so never
// happened.  The harness therefore decodes the post-crash device image
// and replays the record sequence through an independent record-level
// oracle (responsibility moved by delegate records, extinguished by
// commit records and CLRs, losers undone in reverse LSN order), and
// requires the recovered engine to agree with it on every object and
// counter.  The sim package's trace-level oracle judges the no-crash
// modes (TransientRun), where volatile execution and durable log agree.
//
// Two further modes complement the sweep: ScopeAudit replays a trace
// while re-deriving every live transaction's Op_List from the raw
// durable log bytes after each action (checking the engine's scope
// bookkeeping against a second, scope-free formulation), and
// TransientRun replays under a transient sync-error schedule asserting
// the WAL's bounded-backoff retry absorbs every episode without
// surfacing an error or degrading the engine.
package torture

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"ariesrh/internal/core"
	"ariesrh/internal/fault"
	"ariesrh/internal/obs"
	"ariesrh/internal/sim"
	"ariesrh/internal/wal"
)

// Config parameterizes a torture run.  The zero value is usable: every
// field defaults to a workload heavy enough for a meaningful sweep.
type Config struct {
	// Seed determines the trace and every injected fault.  Equal
	// configs produce byte-identical sweeps.
	Seed int64
	// Steps, Objects, MaxActive, DelegationRate, TerminateRate,
	// AbortFraction, SavepointRate, Counters and IncrementRate are the
	// sim.Config workload knobs (see that package).
	Steps          int
	Objects        int
	MaxActive      int
	DelegationRate float64
	TerminateRate  float64
	AbortFraction  float64
	SavepointRate  float64
	Counters       int
	IncrementRate  float64
	// PoolSize is the engine buffer-pool size.
	PoolSize int
	// MaxBoundaries caps the number of crash points swept (0 = all).
	MaxBoundaries int
	// TornEvery tears the unsynced tail at every TornEvery-th boundary
	// (0 disables torn tails; the default tears every 2nd boundary).
	TornEvery int
}

func (c Config) withDefaults() Config {
	if c.Steps <= 0 {
		c.Steps = 1200
	}
	if c.Objects <= 0 {
		c.Objects = 24
	}
	if c.MaxActive <= 0 {
		c.MaxActive = 6
	}
	if c.DelegationRate == 0 {
		c.DelegationRate = 0.25
	}
	if c.TerminateRate == 0 {
		c.TerminateRate = 0.18
	}
	if c.AbortFraction == 0 {
		c.AbortFraction = 0.35
	}
	if c.SavepointRate == 0 {
		c.SavepointRate = 0.08
	}
	if c.Counters == 0 {
		c.Counters = 4
	}
	if c.IncrementRate == 0 {
		c.IncrementRate = 0.06
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 64
	}
	if c.TornEvery == 0 {
		c.TornEvery = 2
	}
	return c
}

func (c Config) simConfig() sim.Config {
	return sim.Config{
		Seed:           c.Seed,
		Steps:          c.Steps,
		Objects:        c.Objects,
		MaxActive:      c.MaxActive,
		DelegationRate: c.DelegationRate,
		TerminateRate:  c.TerminateRate,
		AbortFraction:  c.AbortFraction,
		SavepointRate:  c.SavepointRate,
		Counters:       c.Counters,
		IncrementRate:  c.IncrementRate,
	}
}

// Result aggregates a sweep.
type Result struct {
	// Boundaries is the number of distinct crash points enumerated;
	// Crashes is how many were actually crashed and recovered (equal
	// unless MaxBoundaries capped the sweep).
	Boundaries int
	Crashes    int
	// TornCrashes counts boundaries where a non-empty torn prefix of
	// the unsynced tail was persisted.
	TornCrashes int
	// AmbiguousWins counts commits whose ack was lost to the crash but
	// whose record survived in the torn tail — durable winners the
	// client saw fail.
	AmbiguousWins int
	// Winners and Losers are cumulative transaction classifications
	// across all boundaries; Records is the cumulative count of durable
	// records decoded from post-crash images; UndoVisits is the
	// cumulative number of log records recovery's backward pass visited.
	Winners, Losers int
	Records         int
	UndoVisits      int
}

// isCrashSignal reports whether a replay error is the expected face of an
// armed crash schedule: the frozen device surfacing through a commit
// force, or the engine having already moved to degraded mode because an
// abort absorbed the device error.
func isCrashSignal(err error) bool {
	return errors.Is(err, fault.ErrCrashPoint) || errors.Is(err, core.ErrDegraded)
}

// decodeStable decodes a post-crash directory image into its durable
// record sequence via wal.ReadDurable: manifest selection, per-segment
// frames, stopping cleanly at the torn tail — exactly as recovery's
// analysis scan does.
func decodeStable(dir *fault.Dir) ([]*wal.Record, error) {
	_, recs, err := wal.ReadDurable(dir.StableDir())
	return recs, err
}

// initCrashRecovery settles a boundary that fired inside log
// initialization: the segmented log takes its own syncs to come up (the
// first segment header, then manifest generation 1), so the earliest
// boundaries freeze the device before the engine ever exists.  The
// crash contract is the same as at any other point — the durable image
// (a partial bootstrap: possibly a segment header with no manifest)
// must decode to zero records, and a fresh engine opened over it must
// come up empty.  Reports whether a torn tail was persisted.
func initCrashRecovery(store *fault.Dir, open func() (*core.Engine, error)) (bool, error) {
	tornBytes, err := store.CrashNow()
	if err != nil {
		return false, err
	}
	recs, err := decodeStable(store)
	if err != nil {
		return false, fmt.Errorf("decode durable log after init-time crash: %w", err)
	}
	if len(recs) != 0 {
		return false, fmt.Errorf("init-time crash left %d durable records, want 0", len(recs))
	}
	eng, err := open()
	if err != nil {
		return false, fmt.Errorf("reopen after init-time crash: %w", err)
	}
	if got, _, err := eng.ReadObject(1); err != nil {
		return false, err
	} else if len(got) != 0 {
		return false, fmt.Errorf("object 1 = %q after init-time crash, want empty", got)
	}
	return tornBytes > 0, nil
}

// durableWinners returns the transactions with a durable commit record —
// the winners of the crash, regardless of whether their commit was ever
// acknowledged.
func durableWinners(recs []*wal.Record) map[wal.TxID]bool {
	winners := make(map[wal.TxID]bool)
	for _, rec := range recs {
		if rec.Type == wal.TypeCommit {
			winners[rec.TxID] = true
		}
	}
	return winners
}

// logOp is one undoable durable record still attributable to a live
// transaction — what the logOracle must undo if that transaction loses.
type logOp struct {
	lsn     wal.LSN
	obj     wal.ObjectID
	before  []byte
	logical bool
	delta   int64
}

// logOracle computes the expected post-recovery state directly from the
// durable record sequence.  The volatile trace is deliberately NOT
// consulted: post-crash state is a function of the durable log alone
// (crash discards all volatile state and recovery rebuilds from the
// device), so effects that executed but never reached the device — a
// commit whose force failed, an abort whose CLRs sat in the unsynced
// tail — must not influence the expectation.  Responsibility follows the
// paper's semantics: initially the invoker, moved by delegate records,
// extinguished by commit records and CLRs.
type logOracle struct {
	values   map[wal.ObjectID][]byte
	counters map[wal.ObjectID]int64
	live     map[wal.TxID]map[wal.ObjectID]map[wal.LSN]*logOp
	// prepared maps transactions with a durable prepare record to their
	// global id: at settlement they are winners iff the cluster decided
	// commit for that gid, losers otherwise (presumed abort).
	prepared map[wal.TxID]uint64
}

func newLogOracle() *logOracle {
	return &logOracle{
		values:   make(map[wal.ObjectID][]byte),
		counters: make(map[wal.ObjectID]int64),
		live:     make(map[wal.TxID]map[wal.ObjectID]map[wal.LSN]*logOp),
		prepared: make(map[wal.TxID]uint64),
	}
}

func (o *logOracle) addLive(tx wal.TxID, op *logOp) {
	objs := o.live[tx]
	if objs == nil {
		objs = make(map[wal.ObjectID]map[wal.LSN]*logOp)
		o.live[tx] = objs
	}
	if objs[op.obj] == nil {
		objs[op.obj] = make(map[wal.LSN]*logOp)
	}
	objs[op.obj][op.lsn] = op
}

func (o *logOracle) apply(rec *wal.Record) {
	switch rec.Type {
	case wal.TypeUpdate:
		o.values[rec.Object] = append([]byte(nil), rec.After...)
		o.addLive(rec.TxID, &logOp{
			lsn:    rec.LSN,
			obj:    rec.Object,
			before: append([]byte(nil), rec.Before...),
		})
	case wal.TypeIncrement:
		o.counters[rec.Object] += rec.Delta
		o.addLive(rec.TxID, &logOp{
			lsn:     rec.LSN,
			obj:     rec.Object,
			logical: true,
			delta:   rec.Delta,
		})
	case wal.TypeCLR:
		// A CLR both applies its compensation and extinguishes the
		// compensated update's undo obligation.
		if rec.Logical {
			o.counters[rec.Object] += rec.Delta // Delta is pre-negated
		} else {
			o.values[rec.Object] = append([]byte(nil), rec.Before...)
		}
		delete(o.live[rec.TxID][rec.Object], rec.Compensates)
	case wal.TypeDelegate, wal.TypeDelegateOut:
		// Everything tor is responsible for on the object moves to tee.
		// A delegate-out is the same local transfer — its gid/shard
		// fields only describe the cross-shard acquirer.
		moved := o.live[rec.Tor][rec.Object]
		if len(moved) == 0 {
			return
		}
		delete(o.live[rec.Tor], rec.Object)
		for _, op := range moved {
			o.addLive(rec.Tee, op)
		}
	case wal.TypeDelegateIn:
		// Bookkeeping on the acquirer's coordinator shard: no state.
	case wal.TypePrepare:
		// The vote: the transaction's fate now follows its global id.
		o.prepared[rec.TxID] = rec.GID
	case wal.TypeCommit:
		// The winner's responsibilities become permanent.
		delete(o.live, rec.TxID)
		delete(o.prepared, rec.TxID)
	case wal.TypeEnd:
		delete(o.live, rec.TxID)
		delete(o.prepared, rec.TxID)
	}
}

// settle resolves this shard's prepared transactions against the
// cluster-wide decisions — a prepared transaction whose global id the
// coordinator durably committed is a winner; every other prepared
// transaction falls to presumed abort — then undoes the remaining
// losers.  Single-shard sweeps call crashUndo directly (no prepares).
func (o *logOracle) settle(committed map[uint64]bool) {
	for tx, gid := range o.prepared {
		if committed[gid] {
			delete(o.live, tx)
		}
	}
	o.crashUndo()
}

// crashUndo settles the crash: every update still attributable to a live
// (= loser) transaction is undone, in reverse LSN order — exactly the
// backward pass recovery performs.
func (o *logOracle) crashUndo() {
	var ops []*logOp
	for _, objs := range o.live {
		for _, lsns := range objs {
			for _, op := range lsns {
				ops = append(ops, op)
			}
		}
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].lsn > ops[j].lsn })
	for _, op := range ops {
		if op.logical {
			o.counters[op.obj] -= op.delta
		} else {
			o.values[op.obj] = append([]byte(nil), op.before...)
		}
	}
	o.live = make(map[wal.TxID]map[wal.ObjectID]map[wal.LSN]*logOp)
}

// Run executes the crash-point sweep for cfg and returns the aggregated
// result.  Boundaries are independent (each gets a fresh engine and
// device) and are swept concurrently; the first failure aborts the sweep.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	trace := sim.Generate(cfg.simConfig())

	// Probe: count the sync boundaries the trace performs.  With group
	// commit off every commit/abort forces exactly one device sync (plus
	// the log-initialization and any rotation syncs), so the count — and
	// with it every crash point — is a pure function of the trace.
	probe := fault.NewDir(fault.Plan{})
	eng, err := core.New(core.Options{
		LogDir:      probe,
		GroupCommit: core.GroupCommitOff,
		PoolSize:    cfg.PoolSize,
	})
	if err != nil {
		return Result{}, err
	}
	if err := sim.NewReplayer(sim.CoreTarget{Engine: eng}, trace).RunTo(-1); err != nil {
		return Result{}, fmt.Errorf("torture: probe replay: %w", err)
	}
	boundaries := int(probe.Syncs())

	res := Result{Boundaries: boundaries}
	sweep := boundaries
	if cfg.MaxBoundaries > 0 && sweep > cfg.MaxBoundaries {
		sweep = cfg.MaxBoundaries
	}

	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for k := 1; k <= sweep; k++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(k int) {
			defer wg.Done()
			defer func() { <-sem }()
			b, err := cfg.runBoundary(trace, uint64(k))
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("torture: seed %d boundary %d: %w", cfg.Seed, k, err)
				}
				return
			}
			res.Crashes++
			res.TornCrashes += b.torn
			res.AmbiguousWins += b.ambiguous
			res.Winners += b.winners
			res.Losers += b.losers
			res.Records += b.records
			res.UndoVisits += b.undoVisits
		}(k)
	}
	wg.Wait()
	if firstErr != nil {
		return res, firstErr
	}
	return res, nil
}

type boundaryStats struct {
	torn       int
	ambiguous  int
	winners    int
	losers     int
	records    int
	undoVisits int
}

// runBoundary replays trace against a device that freezes after sync k,
// crashes at the frozen boundary, recovers, and checks the recovered
// state against the oracle and the undo-pass invariants.
func (cfg Config) runBoundary(trace []sim.Action, k uint64) (boundaryStats, error) {
	var bs boundaryStats
	plan := fault.Plan{
		// Decorrelate the torn-tail length choice across boundaries
		// while keeping each boundary individually reproducible.
		Seed:        cfg.Seed ^ int64(uint64(k)*0x9E3779B97F4A7C15),
		CrashAtSync: k,
		TornTail:    cfg.TornEvery > 0 && k%uint64(cfg.TornEvery) == 0,
	}
	store := fault.NewDir(plan)
	mk := func() (*core.Engine, error) {
		return core.New(core.Options{
			LogDir:      store,
			GroupCommit: core.GroupCommitOff,
			PoolSize:    cfg.PoolSize,
		})
	}
	eng, err := mk()
	if err != nil {
		if !isCrashSignal(err) {
			return bs, err
		}
		// The boundary fired inside log initialization — no engine, no
		// workload.  Settle it as a crash over the partial bootstrap.
		torn, err := initCrashRecovery(store, mk)
		if err != nil {
			return bs, err
		}
		if torn {
			bs.torn = 1
		}
		return bs, nil
	}
	r := sim.NewReplayer(sim.CoreTarget{Engine: eng}, trace)

	// Replay until the crash schedule surfaces (or the trace ends, for
	// boundaries at or past the last sync).  failedIdx is the index of
	// the one action that observed the device error, -1 if none did.
	failedIdx := -1
	for {
		ok, err := r.Step()
		if err != nil {
			if !isCrashSignal(err) {
				return bs, fmt.Errorf("unexpected replay error: %w", err)
			}
			failedIdx = r.Pos() - 1
			break
		}
		if !ok {
			break
		}
	}
	// Materialize the crash: rewind the device to the stable image plus
	// the plan's torn tail, then judge everything from what is actually
	// on the device.
	tornBytes, err := store.CrashNow()
	if err != nil {
		return bs, err
	}
	if tornBytes > 0 {
		bs.torn = 1
	}
	recs, err := decodeStable(store)
	if err != nil {
		return bs, fmt.Errorf("decode durable log: %w", err)
	}
	bs.records = len(recs)
	winners := durableWinners(recs)

	// Expected state: replay the durable record sequence through the
	// log oracle, then undo whatever is still attributable to a loser.
	oracle := newLogOracle()
	for _, rec := range recs {
		oracle.apply(rec)
	}
	oracle.crashUndo()

	ids := r.IDs()
	bs.winners = len(winners)
	bs.losers = len(ids) - len(winners)
	// Commit-ack ambiguity: the replay saw this commit FAIL, yet its
	// record is durable (it landed in the torn tail) — a winner whose
	// ack was lost to the crash.
	if failedIdx >= 0 && trace[failedIdx].Kind == sim.ActCommit && winners[ids[trace[failedIdx].Tx]] {
		bs.ambiguous++
	}

	// Crash and recover, capturing the undo visit stream.
	if err := eng.Crash(); err != nil {
		return bs, err
	}
	var visits []wal.LSN
	eng.SetEventHook(func(ev obs.Event) {
		if ev.Name == "undo.visit" {
			visits = append(visits, wal.LSN(ev.LSN))
		}
	})
	err = eng.Recover()
	eng.SetEventHook(nil)
	if err != nil {
		return bs, fmt.Errorf("recover: %w", err)
	}
	bs.undoVisits = len(visits)

	// Log-level invariants: the backward pass is one monotone sweep —
	// strictly decreasing LSNs, no record visited twice.
	seen := make(map[wal.LSN]bool, len(visits))
	for i, lsn := range visits {
		if seen[lsn] {
			return bs, fmt.Errorf("undo visited LSN %d twice", lsn)
		}
		seen[lsn] = true
		if i > 0 && lsn >= visits[i-1] {
			return bs, fmt.Errorf("undo visits not strictly decreasing: %d then %d", visits[i-1], lsn)
		}
	}

	// State check: the recovered engine must agree with the oracle on
	// every object and every counter.
	for obj := 1; obj <= cfg.Objects; obj++ {
		id := wal.ObjectID(obj)
		want := oracle.values[id]
		got, _, err := eng.ReadObject(id)
		if err != nil {
			return bs, err
		}
		if string(got) != string(want) {
			return bs, fmt.Errorf("object %d: engine %q, oracle %q (winners %v)",
				obj, got, want, winners)
		}
	}
	for c := cfg.Objects + 1; c <= cfg.Objects+cfg.Counters; c++ {
		id := wal.ObjectID(c)
		got, err := eng.CounterValue(id)
		if err != nil {
			return bs, err
		}
		if want := oracle.counters[id]; got != want {
			return bs, fmt.Errorf("counter %d: engine %d, oracle %d", c, got, want)
		}
	}
	return bs, nil
}
