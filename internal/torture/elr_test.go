package torture

import "testing"

// TestELRCrashSweep is the headline early-lock-release torture run: a
// concurrent, contended workload is crashed at every device-sync
// boundary, and every boundary must recover to oracle agreement with no
// dependent transaction surviving a predecessor's lost commit.  The run
// must actually exercise the mechanism: violations (commit-dependency
// edges) must form, crashes must fire inside the pre-durable window, and
// both winners and losers must appear.
func TestELRCrashSweep(t *testing.T) {
	cfg := ELRConfig{Seed: 11}
	if testing.Short() {
		cfg.MaxBoundaries = 20
	}
	res, err := ELRRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("elr sweep: %+v", res)
	if res.Boundaries == 0 {
		t.Fatal("probe run performed no syncs")
	}
	want := res.Boundaries
	if cfg.MaxBoundaries > 0 && want > cfg.MaxBoundaries {
		want = cfg.MaxBoundaries
	}
	if res.Crashes != want {
		t.Errorf("recovered at %d of %d boundaries", res.Crashes, want)
	}
	if res.Fired == 0 {
		t.Error("no boundary froze the device inside the workload")
	}
	if res.Violations == 0 {
		t.Error("no lock violation formed; the sweep never opened the ELR window")
	}
	if res.Winners == 0 || res.Losers == 0 {
		t.Errorf("degenerate classification: %d winners, %d losers", res.Winners, res.Losers)
	}
	if res.TornCrashes == 0 {
		t.Error("no boundary produced a torn tail")
	}
}

// TestELRSweepSecondSeed re-runs a smaller sweep under a different seed,
// guarding against the headline test passing by seed luck.
func TestELRSweepSecondSeed(t *testing.T) {
	res, err := ELRRun(ELRConfig{Seed: 12, Rounds: 15, MaxBoundaries: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes == 0 || res.Violations == 0 {
		t.Fatalf("sweep did no useful work: %+v", res)
	}
}
