package torture

// Cross-shard crash torture: the sharded analogue of Run.  One seed
// determines a trace of global transactions over a shard.DB — updates,
// cross-shard delegations, commits (single-shard and two-phase) and
// aborts — plus the full set of crash points it is swept over: a probe
// replay counts each shard's device syncs, then the trace is re-run
// once per (shard, boundary) pair with a fault.Plan freezing THAT
// shard's device after ITS sync k, so every participant of every
// two-phase commit is crashed at every force it performs: before its
// prepare, between prepare and the coordinator's decision, after the
// decision but before phase 2, and inside its own log bootstrap.
//
// Atomicity is judged against the durable logs alone, per the
// per-shard-logged protocol's own rule: a global transaction is
// committed iff some shard's durable log carries both its prepare
// record and a commit record for the same local transaction — the
// coordinator's decision, or a phase-2 commit that can only exist
// after it.  Every shard's expected state is then the log oracle's
// settlement under those decisions (prepared branches of decided
// winners survive; everything else falls to presumed abort), and the
// recovered cluster must agree on every object, with no transaction
// left in doubt.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"ariesrh/internal/core"
	"ariesrh/internal/fault"
	"ariesrh/internal/shard"
	"ariesrh/internal/wal"
)

// ShardConfig parameterizes a cross-shard sweep.  The zero value is
// usable.
type ShardConfig struct {
	// Seed determines the trace and every injected fault.
	Seed int64
	// Shards is the cluster size (default 3 — enough for a coordinator
	// plus two voting participants in one transaction).
	Shards int
	// Steps is the number of global transactions the trace terminates.
	Steps int
	// Objects is the object-id space; ids route to shard id%Shards.
	Objects int
	// MaxOpen bounds concurrently open global transactions.
	MaxOpen int
	// DelegationRate is the per-step probability of a cross-transaction
	// delegation; AbortFraction the fraction of terminations that abort.
	DelegationRate float64
	AbortFraction  float64
	// PoolSize is each shard engine's buffer-pool size.
	PoolSize int
	// MaxBoundaries caps the number of (shard, sync) crash points swept
	// (0 = all).  Points are enumerated boundary-first across shards, so
	// a capped sweep still crashes every shard.
	MaxBoundaries int
	// TornEvery tears the crashed shard's unsynced tail at every
	// TornEvery-th boundary (0 disables; default every 2nd).
	TornEvery int
}

func (c ShardConfig) withDefaults() ShardConfig {
	if c.Shards <= 0 {
		c.Shards = 3
	}
	if c.Steps <= 0 {
		c.Steps = 60
	}
	if c.Objects <= 0 {
		c.Objects = 18
	}
	if c.MaxOpen <= 0 {
		c.MaxOpen = 3
	}
	if c.DelegationRate == 0 {
		c.DelegationRate = 0.30
	}
	if c.AbortFraction == 0 {
		c.AbortFraction = 0.30
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 64
	}
	if c.TornEvery == 0 {
		c.TornEvery = 2
	}
	return c
}

// ShardResult aggregates a cross-shard sweep.
type ShardResult struct {
	// Boundaries is the number of (shard, sync) crash points enumerated;
	// Crashes how many were crashed and recovered.
	Boundaries int
	Crashes    int
	// TornCrashes counts boundaries where the crashed shard persisted a
	// non-empty torn prefix of its unsynced tail.
	TornCrashes int
	// GlobalCommits is the cumulative count of globally-decided
	// two-phase commits found durable across all boundaries; Resolved
	// the cumulative in-doubt transactions recovery had to settle.
	GlobalCommits int
	Resolved      int
	// Records is the cumulative durable record count decoded from
	// post-crash images, summed over shards.
	Records int
}

// shardModRouter routes obj to shard obj % n: deterministic placement
// so the trace generator knows every transaction's participant set.
type shardModRouter struct{}

func (shardModRouter) Route(obj wal.ObjectID, n int) uint32 {
	return uint32(uint64(obj) % uint64(n))
}

// Trace ops.
const (
	shardOpBegin = iota
	shardOpUpdate
	shardOpDelegate
	shardOpCommit
	shardOpAbort
)

type shardOp struct {
	kind int
	txn  int // trace-local transaction index
	to   int // delegatee index (delegate only)
	obj  wal.ObjectID
	val  []byte
}

// genTxn is the generator's view of one open global transaction.
type genTxn struct {
	idx    int
	locked []wal.ObjectID       // lock-acquisition order, for deterministic picks
	resp   map[wal.ObjectID]bool // objects with undoable updates (delegable)
}

// genShardTrace generates a deterministic, conflict-free trace: the
// replay runs single-threaded, and the generator only ever lets a
// transaction update an object no OTHER open transaction holds, so no
// op can block on a lock.  Delegation shares the object's lock between
// delegator and delegatee (matching the engine's transfer semantics),
// after which neither — nor anyone else — updates it until both have
// terminated.
func genShardTrace(cfg ShardConfig) []shardOp {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var ops []shardOp
	var open []*genTxn
	holders := make(map[wal.ObjectID][]int)
	next, terminated, seq := 0, 0, 0

	holdsOnly := func(obj wal.ObjectID, idx int) bool {
		hs := holders[obj]
		return len(hs) == 0 || (len(hs) == 1 && hs[0] == idx)
	}
	holds := func(obj wal.ObjectID, idx int) bool {
		for _, h := range holders[obj] {
			if h == idx {
				return true
			}
		}
		return false
	}
	terminate := func(t *genTxn, kind int) {
		ops = append(ops, shardOp{kind: kind, txn: t.idx})
		for _, obj := range t.locked {
			hs := holders[obj][:0]
			for _, h := range holders[obj] {
				if h != t.idx {
					hs = append(hs, h)
				}
			}
			holders[obj] = hs
		}
		for i, o := range open {
			if o == t {
				open = append(open[:i], open[i+1:]...)
				break
			}
		}
		terminated++
	}

	for terminated < cfg.Steps {
		if len(open) < cfg.MaxOpen && (len(open) == 0 || rng.Float64() < 0.35) {
			t := &genTxn{idx: next, resp: make(map[wal.ObjectID]bool)}
			next++
			open = append(open, t)
			ops = append(ops, shardOp{kind: shardOpBegin, txn: t.idx})
		}
		t := open[rng.Intn(len(open))]
		r := rng.Float64()
		switch {
		case r < 0.22:
			kind := shardOpCommit
			if rng.Float64() < cfg.AbortFraction {
				kind = shardOpAbort
			}
			terminate(t, kind)
		case r < 0.22+cfg.DelegationRate && len(open) >= 2 && len(t.resp) > 0:
			// Delegate one of t's objects to another open transaction.
			var cands []wal.ObjectID
			for _, obj := range t.locked {
				if t.resp[obj] {
					cands = append(cands, obj)
				}
			}
			obj := cands[rng.Intn(len(cands))]
			var others []*genTxn
			for _, o := range open {
				if o != t {
					others = append(others, o)
				}
			}
			to := others[rng.Intn(len(others))]
			ops = append(ops, shardOp{kind: shardOpDelegate, txn: t.idx, to: to.idx, obj: obj})
			delete(t.resp, obj)
			if !holds(obj, to.idx) {
				holders[obj] = append(holders[obj], to.idx)
				to.locked = append(to.locked, obj)
			}
		default:
			// Update an object free of other transactions' locks.
			var cands []wal.ObjectID
			for obj := wal.ObjectID(1); obj <= wal.ObjectID(cfg.Objects); obj++ {
				if holdsOnly(obj, t.idx) {
					cands = append(cands, obj)
				}
			}
			if len(cands) == 0 {
				terminate(t, shardOpCommit)
				continue
			}
			obj := cands[rng.Intn(len(cands))]
			seq++
			ops = append(ops, shardOp{
				kind: shardOpUpdate, txn: t.idx, obj: obj,
				val: []byte(fmt.Sprintf("g%d.%d", t.idx, seq)),
			})
			if !holds(obj, t.idx) {
				holders[obj] = append(holders[obj], t.idx)
				t.locked = append(t.locked, obj)
			}
			t.resp[obj] = true
		}
	}
	return ops
}

// replayShardTrace drives the trace against db, stopping cleanly at
// the first crash signal (the armed schedule surfacing).  Any other
// error is a harness failure.
func replayShardTrace(db *shard.DB, ops []shardOp) error {
	txns := make(map[int]*shard.Txn)
	for _, op := range ops {
		var err error
		switch op.kind {
		case shardOpBegin:
			txns[op.txn], err = db.Begin()
		case shardOpUpdate:
			err = txns[op.txn].Update(op.obj, op.val)
		case shardOpDelegate:
			err = txns[op.txn].Delegate(txns[op.to], op.obj)
		case shardOpCommit:
			err = txns[op.txn].Commit()
		case shardOpAbort:
			err = txns[op.txn].Abort()
		}
		if err != nil {
			if isCrashSignal(err) {
				return nil
			}
			return fmt.Errorf("unexpected replay error: %w", err)
		}
	}
	return nil
}

// durableDecisions scans every shard's durable records for the
// protocol's commit evidence: a prepare record binding a local
// transaction to a gid, followed by a commit record for that local
// transaction on the same log.  On the coordinator that pair IS the
// decision; on a participant it is phase 2, which only runs after the
// decision was forced — either way the gid is globally committed.
//
// It also enforces the protocol's no-contradiction invariant directly
// on the durable bytes: no shard's log may carry an abort record for a
// prepared branch of a gid any log commits.  A prepared branch may
// only be aborted while no decision can be durable (a phase-1 failure,
// or presumed abort at recovery — which runs after this scan), so a
// durable commit decision coexisting with a durable participant abort
// means some run aborted a branch whose global transaction was
// decided committed: the exact cross-shard atomicity violation a
// failed decision force could cause if it were treated as an abort.
func durableDecisions(perShard [][]*wal.Record) (map[uint64]bool, error) {
	committed := make(map[uint64]bool)
	aborted := make(map[uint64]int)
	for i, recs := range perShard {
		prepGID := make(map[wal.TxID]uint64)
		for _, rec := range recs {
			switch rec.Type {
			case wal.TypePrepare:
				prepGID[rec.TxID] = rec.GID
			case wal.TypeCommit:
				if gid, ok := prepGID[rec.TxID]; ok {
					committed[gid] = true
				}
			case wal.TypeAbort:
				if gid, ok := prepGID[rec.TxID]; ok {
					aborted[gid] = i
					delete(prepGID, rec.TxID)
				}
			}
		}
	}
	for gid, shard := range aborted {
		if committed[gid] {
			return nil, fmt.Errorf("atomicity violation in durable logs: shard %d aborted a prepared branch of gid %d, which another log commits", shard, gid)
		}
	}
	return committed, nil
}

// RunShards executes the cross-shard crash sweep for cfg.  Boundaries
// are independent (each gets a fresh cluster and devices) and are
// swept concurrently; the first failure aborts the sweep.
func RunShards(cfg ShardConfig) (ShardResult, error) {
	cfg = cfg.withDefaults()
	trace := genShardTrace(cfg)

	// Probe: count each shard's sync boundaries.  With group commit off
	// every prepare, decision and single-shard commit forces exactly one
	// sync on its shard, so each shard's count — and with it every crash
	// point — is a pure function of the trace and the router.
	probeDirs := make([]wal.Dir, cfg.Shards)
	probeFDs := make([]*fault.Dir, cfg.Shards)
	for i := range probeDirs {
		probeFDs[i] = fault.NewDir(fault.Plan{})
		probeDirs[i] = probeFDs[i]
	}
	db, err := cfg.openCluster(probeDirs)
	if err != nil {
		return ShardResult{}, fmt.Errorf("torture: shard probe open: %w", err)
	}
	if err := replayShardTrace(db, trace); err != nil {
		return ShardResult{}, fmt.Errorf("torture: shard probe replay: %w", err)
	}
	syncs := make([]uint64, cfg.Shards)
	for i, fd := range probeFDs {
		syncs[i] = fd.Syncs()
	}
	db.Close()

	// Enumerate (shard, k) crash points boundary-first, so a capped
	// sweep still exercises every shard's early boundaries.
	type point struct {
		shard int
		k     uint64
	}
	var pts []point
	var maxK uint64
	for _, n := range syncs {
		if n > maxK {
			maxK = n
		}
	}
	for k := uint64(1); k <= maxK; k++ {
		for s := 0; s < cfg.Shards; s++ {
			if k <= syncs[s] {
				pts = append(pts, point{shard: s, k: k})
			}
		}
	}
	res := ShardResult{Boundaries: len(pts)}
	sweep := pts
	if cfg.MaxBoundaries > 0 && len(sweep) > cfg.MaxBoundaries {
		sweep = sweep[:cfg.MaxBoundaries]
	}

	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for _, p := range sweep {
		wg.Add(1)
		sem <- struct{}{}
		go func(p point) {
			defer wg.Done()
			defer func() { <-sem }()
			b, err := cfg.runShardBoundary(trace, p.shard, p.k)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("torture: seed %d shard %d boundary %d: %w",
						cfg.Seed, p.shard, p.k, err)
				}
				return
			}
			res.Crashes++
			res.TornCrashes += b.torn
			res.GlobalCommits += b.commits
			res.Resolved += b.resolved
			res.Records += b.records
		}(p)
	}
	wg.Wait()
	if firstErr != nil {
		return res, firstErr
	}
	return res, nil
}

// openCluster opens a shard.DB over the given per-shard log devices
// with the sweep's deterministic mod router and group commit off.
func (cfg ShardConfig) openCluster(dirs []wal.Dir) (*shard.DB, error) {
	return shard.Open(shard.Options{
		Shards:      cfg.Shards,
		LogDirs:     dirs,
		PoolSize:    cfg.PoolSize,
		GroupCommit: core.GroupCommitOff,
		Router:      shardModRouter{},
	})
}

type shardBoundaryStats struct {
	torn     int
	commits  int
	resolved int
	records  int
}

// runShardBoundary replays trace against a cluster whose shard s
// freezes after its sync k, crashes the whole cluster at that point,
// recovers, and checks every shard against the decision-settled log
// oracle.
func (cfg ShardConfig) runShardBoundary(trace []shardOp, s int, k uint64) (shardBoundaryStats, error) {
	var bs shardBoundaryStats
	dirs := make([]wal.Dir, cfg.Shards)
	fds := make([]*fault.Dir, cfg.Shards)
	for i := range dirs {
		plan := fault.Plan{}
		if i == s {
			plan = fault.Plan{
				Seed:        cfg.Seed ^ int64(uint64(s)<<32) ^ int64(uint64(k)*0x9E3779B97F4A7C15),
				CrashAtSync: k,
				TornTail:    cfg.TornEvery > 0 && k%uint64(cfg.TornEvery) == 0,
			}
		}
		fds[i] = fault.NewDir(plan)
		dirs[i] = fds[i]
	}

	db, err := cfg.openCluster(dirs)
	if err != nil {
		if !isCrashSignal(err) {
			return bs, err
		}
		// The boundary fired inside shard s's log bootstrap — no
		// cluster, no workload.  Settle it like any crash: materialize
		// every device's stable image (only shard s was armed; the
		// others just lose their unsynced tails), require the partial
		// bootstrap to decode to zero records, and require a reopened
		// cluster to come up empty.
		for _, fd := range fds {
			if _, err := fd.CrashNow(); err != nil {
				return bs, err
			}
		}
		recs, err := decodeStable(fds[s])
		if err != nil {
			return bs, fmt.Errorf("decode shard %d after init-time crash: %w", s, err)
		}
		if len(recs) != 0 {
			return bs, fmt.Errorf("init-time crash left %d durable records on shard %d, want 0", len(recs), s)
		}
		db, err := cfg.openCluster(dirs)
		if err != nil {
			return bs, fmt.Errorf("reopen after init-time crash: %w", err)
		}
		defer db.Close()
		if v, ok, err := db.ReadCommitted(1); err != nil {
			return bs, err
		} else if ok {
			return bs, fmt.Errorf("object 1 = %q after init-time crash, want empty", v)
		}
		return bs, nil
	}

	// Replay until shard s's frozen device surfaces through a force (or
	// the trace ends, for boundaries at or past s's last sync).
	if err := replayShardTrace(db, trace); err != nil {
		return bs, err
	}

	// Materialize the whole-cluster crash: every shard rewinds to its
	// stable image — shard s at its frozen boundary (plus the plan's
	// torn tail), the others simply losing unsynced bytes.
	for i, fd := range fds {
		tornBytes, err := fd.CrashNow()
		if err != nil {
			return bs, err
		}
		if i == s && tornBytes > 0 {
			bs.torn = 1
		}
	}
	perShard := make([][]*wal.Record, cfg.Shards)
	for i, fd := range fds {
		recs, err := decodeStable(fd)
		if err != nil {
			return bs, fmt.Errorf("decode shard %d durable log: %w", i, err)
		}
		perShard[i] = recs
		bs.records += len(recs)
	}

	// The protocol's own atomicity rule, applied to the durable bytes:
	// which global ids are committed, everywhere or nowhere — and no
	// durable abort may contradict a durable decision.
	committed, err := durableDecisions(perShard)
	if err != nil {
		return bs, err
	}
	bs.commits = len(committed)

	// Expected per-shard state: each shard's durable records through the
	// log oracle, prepared branches settled by the global decisions,
	// remaining losers undone.
	oracles := make([]*logOracle, cfg.Shards)
	for i, recs := range perShard {
		oracles[i] = newLogOracle()
		for _, rec := range recs {
			oracles[i].apply(rec)
		}
		oracles[i].settle(committed)
	}

	// Crash and recover the cluster; Recover resolves every in-doubt
	// participant from the coordinator's durable decision.
	if err := db.Crash(); err != nil {
		return bs, err
	}
	if err := db.Recover(); err != nil {
		return bs, fmt.Errorf("recover: %w", err)
	}
	bs.resolved = int(db.Metrics().Counter("router.indoubt_resolved"))
	for i := 0; i < cfg.Shards; i++ {
		if d := db.Engine(i).InDoubt(); len(d) != 0 {
			return bs, fmt.Errorf("shard %d: %d transactions still in doubt after Recover", i, len(d))
		}
	}

	// State check: every shard must agree with its settled oracle on
	// every object it is home to — this IS the atomicity check, since
	// the oracles applied one global decision set across all shards.
	for obj := wal.ObjectID(1); obj <= wal.ObjectID(cfg.Objects); obj++ {
		home := int(uint64(obj) % uint64(cfg.Shards))
		want := oracles[home].values[obj]
		got, _, err := db.Engine(home).ReadObject(obj)
		if err != nil {
			return bs, err
		}
		if string(got) != string(want) {
			return bs, fmt.Errorf("object %d (shard %d): engine %q, oracle %q (committed gids %v)",
				obj, home, got, want, committed)
		}
	}
	return bs, db.Close()
}
