package torture

import "testing"

// TestReplPromoteSweep is the replication headline: at every sync
// boundary of a delegation-heavy trace, crash the primary mid-stream,
// promote the live replica, and require the promoted state to equal the
// durable-log oracle over the replica's own log — with the promotion
// backward pass holding the recovery undo invariants, and the replica's
// log a byte-exact prefix of the crashed primary's device image.
func TestReplPromoteSweep(t *testing.T) {
	cfg := Config{Seed: 11, Steps: 600}
	if testing.Short() {
		cfg.MaxBoundaries = 24
	}
	res, err := ReplRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("repl sweep: %+v", res)
	want := res.Boundaries
	if cfg.MaxBoundaries > 0 && want > cfg.MaxBoundaries {
		want = cfg.MaxBoundaries
	}
	if res.Promotions != want {
		t.Errorf("promoted at %d of %d boundaries", res.Promotions, want)
	}
	if res.TornCrashes == 0 {
		t.Error("no boundary left a torn tail on the primary")
	}
	if !testing.Short() && res.UnshippedRecords == 0 {
		t.Error("no boundary had unflushed primary records missing from the replica; " +
			"the prefix assertion proved nothing")
	}
	if res.Winners == 0 || res.Losers == 0 {
		t.Errorf("degenerate classification: %d winners, %d losers", res.Winners, res.Losers)
	}
	if res.UndoVisits == 0 {
		t.Error("no promotion ever visited a record in its backward pass")
	}
}

// TestReplPromoteSweepDeterminism pins reproducibility for the
// replication sweep: aggregation must be identical across runs despite
// the concurrent stream (the stream only changes WHEN records arrive,
// never what is durable where).
func TestReplPromoteSweepDeterminism(t *testing.T) {
	cfg := Config{Seed: 12, Steps: 300, MaxBoundaries: 20}
	a, err := ReplRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReplRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed, different repl sweeps:\n  %+v\n  %+v", a, b)
	}
}
