// ELR torture: the crash-between-release-and-flush sweep.
//
// Early lock release opens a window the serial sweep in torture.go cannot
// reach: a committer has appended its commit record and released its
// write locks, but the record is not yet durable.  Other transactions
// acquire those locks inside the window, form commit dependencies, and
// commit on top of the pre-durable predecessor.  A crash inside the
// window must not let any dependent survive a predecessor whose commit
// record was lost — that would expose a write derived from a commit that
// never happened.
//
// The serial replayer cannot open this window (it issues one operation at
// a time, so nothing runs while a commit waits for its flush), so the ELR
// sweep drives a genuinely concurrent workload: several workers hammer a
// small set of hot objects, occasionally delegating mid-transaction, with
// every device sync slowed by an injected delay so that commits linger in
// the pre-durable state while competitors run.  The interleaving is
// nondeterministic; correctness is judged — exactly as in the serial
// sweep — from the durable bytes alone, via the record-level log oracle.
// On top of the oracle check the sweep asserts the dependency invariant
// directly: every violation edge (dependent, predecessor) observed at
// runtime must satisfy "dependent durable ⇒ predecessor durable", which
// the single prefix-flushed log is supposed to make structural.
package torture

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"ariesrh/internal/core"
	"ariesrh/internal/fault"
	"ariesrh/internal/lock"
	"ariesrh/internal/obs"
	"ariesrh/internal/wal"
)

// ELRConfig parameterizes an early-lock-release crash sweep.  The zero
// value is usable; every field defaults to a contended workload.
type ELRConfig struct {
	// Seed drives each worker's operation choices and each boundary's
	// torn-tail length.  The interleaving itself is scheduler-dependent,
	// so unlike Config the sweep is not byte-reproducible — judging from
	// the durable image makes that sound.
	Seed int64
	// Workers is the number of concurrent committers.
	Workers int
	// Rounds is the number of transactions each worker attempts.
	Rounds int
	// Objects is the number of hot value objects (IDs 1..Objects); small
	// counts maximize lock violations.  Counters adds hot counter
	// objects (IDs Objects+1..Objects+Counters) exercised by Increment.
	Objects  int
	Counters int
	// DelegationRate is the fraction of rounds that delegate their first
	// object to a second transaction before committing — covering the
	// delegate-then-violate interaction.
	DelegationRate float64
	// AbortFraction is the fraction of rounds that abort instead of
	// committing.
	AbortFraction float64
	// MaxBoundaries caps the number of crash points swept (0 = all).
	MaxBoundaries int
	// TornEvery tears the unsynced tail at every TornEvery-th boundary.
	TornEvery int
	// SyncDelay is injected before every device sync, widening the
	// pre-durable window so violations actually form.
	SyncDelay time.Duration
}

func (c ELRConfig) withDefaults() ELRConfig {
	if c.Workers <= 0 {
		c.Workers = 6
	}
	if c.Rounds <= 0 {
		c.Rounds = 30
	}
	if c.Objects <= 0 {
		c.Objects = 4
	}
	if c.Counters == 0 {
		c.Counters = 2
	}
	if c.DelegationRate == 0 {
		c.DelegationRate = 0.2
	}
	if c.AbortFraction == 0 {
		c.AbortFraction = 0.15
	}
	if c.TornEvery == 0 {
		c.TornEvery = 2
	}
	if c.SyncDelay == 0 {
		c.SyncDelay = 200 * time.Microsecond
	}
	return c
}

// ELRResult aggregates an ELR sweep.
type ELRResult struct {
	// Boundaries is the sync count of the fault-free probe run; Crashes
	// is how many boundaries were swept; Fired counts boundaries where
	// the crash schedule actually triggered (a boundary past the swept
	// run's own sync count never freezes — the workload just finishes).
	Boundaries int
	Crashes    int
	Fired      int
	// TornCrashes counts boundaries that persisted a torn tail.
	TornCrashes int
	// Violations is the cumulative count of lock violations observed
	// (elr.violate events = commit-dependency edges formed); every one
	// was checked against the dependency invariant.
	Violations int
	// Winners, Losers and Records are cumulative durable-log
	// classifications across boundaries, as in Result.
	Winners, Losers int
	Records         int
}

// violationEdge is one observed elr.violate event: dep acquired a lock
// released early by the then-pre-durable pred.
type violationEdge struct {
	dep, pred wal.TxID
}

// elrStop reports whether a worker should stop: the device is frozen or
// the engine has left normal processing.  ErrCommitAborted means this
// worker's own commit was rolled back by a flush failure — under the
// injected crash schedule the device never heals, so there is no point
// continuing.
func elrStop(err error) bool {
	return errors.Is(err, fault.ErrCrashPoint) ||
		errors.Is(err, core.ErrDegraded) ||
		errors.Is(err, core.ErrCrashed) ||
		errors.Is(err, core.ErrCommitAborted)
}

// elrBenign reports whether a worker error is an expected casualty of the
// concurrent workload rather than a bug: a deadlock victimization, or the
// transaction having been terminated underneath the worker by a cascaded
// abort.
func elrBenign(err error) bool {
	return errors.Is(err, lock.ErrDeadlock) || errors.Is(err, core.ErrNoSuchTxn)
}

// ELRRun executes the early-lock-release crash sweep and returns the
// aggregated result.  A probe run (no crash schedule) counts the sync
// boundaries of the workload; the workload is then re-run once per
// boundary k with the device frozen after sync k, and each post-crash
// image is judged by the log oracle plus the dependency invariant.
func ELRRun(cfg ELRConfig) (ELRResult, error) {
	cfg = cfg.withDefaults()

	probe := fault.NewDir(fault.Plan{
		Seed:              cfg.Seed,
		SyncDelay:         cfg.SyncDelay,
		DelayEveryNthSync: 1,
	})
	eng, err := newELRTortureEngine(probe)
	if err != nil {
		return ELRResult{}, err
	}
	if err := cfg.workload(eng); err != nil {
		return ELRResult{}, fmt.Errorf("torture: elr probe: %w", err)
	}
	boundaries := int(probe.Syncs())

	res := ELRResult{Boundaries: boundaries}
	sweep := boundaries
	if cfg.MaxBoundaries > 0 && sweep > cfg.MaxBoundaries {
		sweep = cfg.MaxBoundaries
	}

	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for k := 1; k <= sweep; k++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(k int) {
			defer wg.Done()
			defer func() { <-sem }()
			b, err := cfg.runELRBoundary(uint64(k))
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("torture: elr seed %d boundary %d: %w", cfg.Seed, k, err)
				}
				return
			}
			res.Crashes++
			res.Fired += b.fired
			res.TornCrashes += b.torn
			res.Violations += b.violations
			res.Winners += b.winners
			res.Losers += b.losers
			res.Records += b.records
		}(k)
	}
	wg.Wait()
	if firstErr != nil {
		return res, firstErr
	}
	return res, nil
}

func newELRTortureEngine(dir wal.Dir) (*core.Engine, error) {
	return core.New(core.Options{
		LogDir:           dir,
		GroupCommit:      core.GroupCommitOn,
		EarlyLockRelease: true,
		PoolSize:         64,
	})
}

type elrBoundaryStats struct {
	fired      int
	torn       int
	violations int
	winners    int
	losers     int
	records    int
}

// runELRBoundary runs the concurrent workload against a device that
// freezes after sync k, crashes, recovers, and judges the outcome.
func (cfg ELRConfig) runELRBoundary(k uint64) (elrBoundaryStats, error) {
	var bs elrBoundaryStats
	plan := fault.Plan{
		Seed:              cfg.Seed ^ int64(k*0x9E3779B97F4A7C15),
		CrashAtSync:       k,
		TornTail:          cfg.TornEvery > 0 && k%uint64(cfg.TornEvery) == 0,
		SyncDelay:         cfg.SyncDelay,
		DelayEveryNthSync: 1,
	}
	store := fault.NewDir(plan)
	eng, err := newELRTortureEngine(store)
	if err != nil {
		if !isCrashSignal(err) {
			return bs, err
		}
		// The boundary fired inside log initialization — no engine, no
		// workload.  Settle it as a crash over the partial bootstrap.
		torn, err := initCrashRecovery(store, func() (*core.Engine, error) {
			return newELRTortureEngine(store)
		})
		if err != nil {
			return bs, err
		}
		bs.fired = 1
		if torn {
			bs.torn = 1
		}
		return bs, nil
	}

	// Capture every commit-dependency edge the run forms.  The hook runs
	// under the engine latch, so the slice needs its own lock only against
	// the final read below.
	var (
		edgeMu sync.Mutex
		edges  []violationEdge
	)
	eng.SetEventHook(func(ev obs.Event) {
		if ev.Name == "elr.violate" {
			edgeMu.Lock()
			edges = append(edges, violationEdge{dep: wal.TxID(ev.Tx), pred: wal.TxID(ev.Value)})
			edgeMu.Unlock()
		}
	})
	if err := cfg.workload(eng); err != nil {
		return bs, err
	}
	eng.SetEventHook(nil)
	if store.Frozen() {
		bs.fired = 1
	}

	// Materialize the crash and judge from the durable image.
	tornBytes, err := store.CrashNow()
	if err != nil {
		return bs, err
	}
	if tornBytes > 0 {
		bs.torn = 1
	}
	recs, err := decodeStable(store)
	if err != nil {
		return bs, fmt.Errorf("decode durable log: %w", err)
	}
	bs.records = len(recs)
	winners := durableWinners(recs)

	// The dependency invariant: a dependent's durable commit implies its
	// predecessor's.  The dependent committed strictly after the
	// predecessor appended its commit record, so with prefix-ordered
	// flushing a surviving dependent commit record certifies the
	// predecessor's — any violation here means a dependent survived a
	// predecessor's lost commit.
	edgeMu.Lock()
	bs.violations = len(edges)
	for _, e := range edges {
		if winners[e.dep] && !winners[e.pred] {
			edgeMu.Unlock()
			return bs, fmt.Errorf("dependent %d durable but predecessor %d's commit was lost",
				e.dep, e.pred)
		}
	}
	edgeMu.Unlock()

	oracle := newLogOracle()
	for _, rec := range recs {
		oracle.apply(rec)
	}
	oracle.crashUndo()
	bs.winners = len(winners)

	// Losers: transactions with a durable begin record but no durable
	// commit.
	began := make(map[wal.TxID]bool)
	for _, rec := range recs {
		if rec.Type == wal.TypeBegin {
			began[rec.TxID] = true
		}
	}
	bs.losers = len(began) - len(winners)

	// Crash, recover, and require oracle agreement on every object and
	// counter.
	if err := eng.Crash(); err != nil {
		return bs, err
	}
	if err := eng.Recover(); err != nil {
		return bs, fmt.Errorf("recover: %w", err)
	}
	for obj := 1; obj <= cfg.Objects; obj++ {
		id := wal.ObjectID(obj)
		want := oracle.values[id]
		got, _, err := eng.ReadObject(id)
		if err != nil {
			return bs, err
		}
		if string(got) != string(want) {
			return bs, fmt.Errorf("object %d: engine %q, oracle %q (winners %v)",
				obj, got, want, winners)
		}
	}
	for c := cfg.Objects + 1; c <= cfg.Objects+cfg.Counters; c++ {
		id := wal.ObjectID(c)
		got, err := eng.CounterValue(id)
		if err != nil {
			return bs, err
		}
		if want := oracle.counters[id]; got != want {
			return bs, fmt.Errorf("counter %d: engine %d, oracle %d", c, got, want)
		}
	}
	return bs, nil
}

// workload drives cfg.Workers concurrent committers over the hot object
// set until every worker finishes its rounds or stops on a crash signal.
// It returns the first unexpected error any worker hit (nil if the run —
// crashed or not — stayed within the fault model).
func (cfg ELRConfig) workload(eng *core.Engine) error {
	var (
		wg     sync.WaitGroup
		errMu  sync.Mutex
		badErr error
		setErr = func(err error) {
			errMu.Lock()
			if badErr == nil {
				badErr = err
			}
			errMu.Unlock()
		}
	)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*1000003 + int64(w)))
			for r := 0; r < cfg.Rounds; r++ {
				stop, err := cfg.round(eng, rng, w, r)
				if err != nil {
					setErr(err)
					return
				}
				if stop {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return badErr
}

// round runs one worker transaction: update one or two hot objects (in
// ascending ID order, bounding deadlocks), sometimes increment a hot
// counter, sometimes delegate the first object to a second transaction
// before committing, sometimes abort.  It reports (stop, err): stop ends
// the worker (the device froze or the engine left normal processing); a
// non-nil err is an unexpected failure that fails the boundary.  Every
// exit path terminates the transactions it began — a leaked active
// transaction would hold locks forever and wedge the other workers.
func (cfg ELRConfig) round(eng *core.Engine, rng *rand.Rand, w, r int) (bool, error) {
	tx, err := eng.Begin()
	if err != nil {
		if elrStop(err) {
			return true, nil
		}
		return true, err
	}
	// settle classifies an operation error: benign casualties abort the
	// transaction and end the round; crash signals end the worker.
	settle := func(err error) (bool, error) {
		_ = eng.Abort(tx) // best-effort; the tx may already be gone
		if elrStop(err) {
			return true, nil
		}
		if elrBenign(err) {
			return false, nil
		}
		return true, err
	}

	first := wal.ObjectID(1 + rng.Intn(cfg.Objects))
	objs := []wal.ObjectID{first}
	if rng.Intn(2) == 0 {
		second := wal.ObjectID(1 + rng.Intn(cfg.Objects))
		if second > first {
			objs = append(objs, second)
		}
	}
	for _, obj := range objs {
		val := []byte(fmt.Sprintf("w%d.r%d.o%d", w, r, obj))
		if err := eng.Update(tx, obj, val); err != nil {
			return settle(err)
		}
	}
	if rng.Float64() < 0.3 {
		ctr := wal.ObjectID(cfg.Objects + 1 + rng.Intn(cfg.Counters))
		if _, err := eng.Increment(tx, ctr, int64(rng.Intn(5)+1)); err != nil {
			return settle(err)
		}
	}

	if rng.Float64() < cfg.AbortFraction {
		if err := eng.Abort(tx); err != nil {
			if elrStop(err) || elrBenign(err) {
				return elrStop(err), nil
			}
			return true, err
		}
		return false, nil
	}

	if rng.Float64() < cfg.DelegationRate {
		return cfg.delegateAndCommit(eng, rng, tx, objs[0], w, r)
	}

	if err := eng.Commit(tx); err != nil {
		return settle(err)
	}
	return false, nil
}

// delegateAndCommit covers the delegation × ELR interaction: tx delegates
// its first object to a fresh transaction tee, commits (releasing its
// remaining locks early), and tee then updates the delegated object again
// and commits on top — the delegate-then-violate interleaving.  A crash
// between the two commits must take tee down with tx.
func (cfg ELRConfig) delegateAndCommit(eng *core.Engine, rng *rand.Rand, tx wal.TxID, obj wal.ObjectID, w, r int) (bool, error) {
	tee, err := eng.Begin()
	if err != nil {
		_ = eng.Abort(tx)
		if elrStop(err) {
			return true, nil
		}
		return true, err
	}
	settleBoth := func(err error) (bool, error) {
		_ = eng.Abort(tee)
		_ = eng.Abort(tx)
		if elrStop(err) {
			return true, nil
		}
		if elrBenign(err) {
			return false, nil
		}
		return true, err
	}
	if err := eng.Delegate(tx, tee, obj); err != nil {
		return settleBoth(err)
	}
	if err := eng.Commit(tx); err != nil {
		_ = eng.Abort(tee)
		if elrStop(err) {
			return true, nil
		}
		if elrBenign(err) {
			return false, nil
		}
		return true, err
	}
	settleTee := func(err error) (bool, error) {
		_ = eng.Abort(tee)
		if elrStop(err) {
			return true, nil
		}
		if elrBenign(err) {
			return false, nil
		}
		return true, err
	}
	if err := eng.Update(tee, obj, []byte(fmt.Sprintf("w%d.r%d.tee", w, r))); err != nil {
		return settleTee(err)
	}
	if err := eng.Commit(tee); err != nil {
		return settleTee(err)
	}
	return false, nil
}
