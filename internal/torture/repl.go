package torture

import (
	"bytes"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"ariesrh/internal/core"
	"ariesrh/internal/fault"
	"ariesrh/internal/obs"
	"ariesrh/internal/repl"
	"ariesrh/internal/sim"
	"ariesrh/internal/wal"
)

// ReplResult aggregates a replication promote-under-crash sweep.
type ReplResult struct {
	// Boundaries is the number of distinct crash points enumerated;
	// Promotions is how many were crashed and promoted (equal unless
	// MaxBoundaries capped the sweep).
	Boundaries int
	Promotions int
	// TornCrashes counts boundaries where the primary's device kept a
	// torn prefix of its unsynced tail — records the replica, which only
	// ever receives flushed records, must NOT have.
	TornCrashes int
	// UnshippedRecords is the cumulative count of records durable on the
	// crashed primary's device but absent from the replica (torn-tail
	// records that were never flushed, hence never shipped).
	UnshippedRecords int
	// Winners and Losers are cumulative transaction classifications as
	// judged from the REPLICA's durable log; Records is the cumulative
	// count of records the replicas had made durable at promotion time;
	// UndoVisits is the cumulative number of records promotion's backward
	// pass visited.
	Winners, Losers int
	Records         int
	UndoVisits      int
}

// ReplRun executes the replication sweep: for every sync boundary of the
// trace, run a primary that freezes its device after sync k with a live
// replica attached over an in-process pipe, crash the primary once the
// schedule fires, wait for the replica to drain the flushed prefix,
// sever the stream, and promote the replica.
//
// Promotion is judged exactly like recovery, but against the replica's
// own durable log: only flushed records ever ship, so the replica's log
// must be a (possibly strict) prefix of the primary's post-crash device
// image, and the promoted object state must equal the log oracle's
// verdict over that prefix.  The backward pass must hold the same
// invariants as crash recovery — every record visited at most once, in
// strictly decreasing LSN order.
func ReplRun(cfg Config) (ReplResult, error) {
	cfg = cfg.withDefaults()
	trace := sim.Generate(cfg.simConfig())

	// Probe: replication never touches the primary's device, so the sync
	// boundaries are the same pure function of the trace as in Run.
	probe := fault.NewDir(fault.Plan{})
	eng, err := core.New(core.Options{
		LogDir:      probe,
		GroupCommit: core.GroupCommitOff,
		PoolSize:    cfg.PoolSize,
	})
	if err != nil {
		return ReplResult{}, err
	}
	if err := sim.NewReplayer(sim.CoreTarget{Engine: eng}, trace).RunTo(-1); err != nil {
		return ReplResult{}, fmt.Errorf("torture: repl probe replay: %w", err)
	}
	boundaries := int(probe.Syncs())

	res := ReplResult{Boundaries: boundaries}
	sweep := boundaries
	if cfg.MaxBoundaries > 0 && sweep > cfg.MaxBoundaries {
		sweep = cfg.MaxBoundaries
	}

	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for k := 1; k <= sweep; k++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(k int) {
			defer wg.Done()
			defer func() { <-sem }()
			b, err := cfg.runReplBoundary(trace, uint64(k))
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("torture: repl seed %d boundary %d: %w", cfg.Seed, k, err)
				}
				return
			}
			res.Promotions++
			res.TornCrashes += b.torn
			res.UnshippedRecords += b.unshipped
			res.Winners += b.winners
			res.Losers += b.losers
			res.Records += b.records
			res.UndoVisits += b.undoVisits
		}(k)
	}
	wg.Wait()
	if firstErr != nil {
		return res, firstErr
	}
	return res, nil
}

type replBoundaryStats struct {
	torn       int
	unshipped  int
	winners    int
	losers     int
	records    int
	undoVisits int
}

// runReplBoundary runs one primary+replica pair with the primary's device
// frozen after sync k, crashes the primary, promotes the replica and
// judges the promoted state.
func (cfg Config) runReplBoundary(trace []sim.Action, k uint64) (replBoundaryStats, error) {
	var bs replBoundaryStats
	plan := fault.Plan{
		Seed:        cfg.Seed ^ int64(uint64(k)*0x9E3779B97F4A7C15),
		CrashAtSync: k,
		TornTail:    cfg.TornEvery > 0 && k%uint64(cfg.TornEvery) == 0,
	}
	store := fault.NewDir(plan)
	mkPrimary := func() (*core.Engine, error) {
		return core.New(core.Options{
			LogDir:      store,
			GroupCommit: core.GroupCommitOff,
			PoolSize:    cfg.PoolSize,
		})
	}
	primary, err := mkPrimary()
	if err != nil {
		if !isCrashSignal(err) {
			return bs, err
		}
		// The boundary fired inside log initialization: the primary never
		// came up, nothing was ever shipped, and there is no replica to
		// promote.  Settle it as a crash over the partial bootstrap.
		torn, err := initCrashRecovery(store, mkPrimary)
		if err != nil {
			return bs, err
		}
		if torn {
			bs.torn = 1
		}
		return bs, nil
	}
	feed, err := repl.NewPrimary(primary)
	if err != nil {
		return bs, err
	}
	follower, err := core.New(core.Options{Follower: true, PoolSize: cfg.PoolSize})
	if err != nil {
		return bs, err
	}
	rep, err := repl.NewReplica(follower)
	if err != nil {
		return bs, err
	}
	c1, c2 := net.Pipe()
	serveDone := make(chan error, 1)
	followDone := make(chan error, 1)
	go func() { serveDone <- feed.Serve(c1) }()
	go func() { followDone <- rep.Follow(c2) }()

	// Replay until the crash schedule surfaces (or the trace ends, for
	// the boundary at the last sync) while the stream ships live.
	r := sim.NewReplayer(sim.CoreTarget{Engine: primary}, trace)
	for {
		ok, err := r.Step()
		if err != nil {
			if !isCrashSignal(err) {
				return bs, fmt.Errorf("unexpected replay error: %w", err)
			}
			break
		}
		if !ok {
			break
		}
	}

	// Drain: everything the primary flushed must reach the replica.  The
	// flushed horizon is final here — the device is frozen (or the trace
	// is over), so no further record can become shippable.
	target := primary.Log().FlushedLSN()
	deadline := time.Now().Add(30 * time.Second)
	for follower.ReplayedLSN() < target {
		if time.Now().After(deadline) {
			return bs, fmt.Errorf("replica stuck at %d, want %d", follower.ReplayedLSN(), target)
		}
		time.Sleep(100 * time.Microsecond)
	}

	// The primary is lost: sever the stream, materialize the crash.
	c2.Close()
	<-serveDone
	<-followDone
	feed.Close()
	tornBytes, err := store.CrashNow()
	if err != nil {
		return bs, err
	}
	if tornBytes > 0 {
		bs.torn = 1
	}
	if err := primary.Crash(); err != nil {
		return bs, err
	}

	// The replica's durable log must be a prefix of the primary's
	// post-crash device image: only flushed records ship, and flushed
	// records are exactly the stable (pre-torn-tail) image.
	primaryRecs, err := decodeStable(store)
	if err != nil {
		return bs, fmt.Errorf("decode primary durable log: %w", err)
	}
	var replicaRecs []*wal.Record
	follower.Log().ResetReadCursor()
	err = follower.Log().Scan(1, wal.NilLSN, func(rec *wal.Record) (bool, error) {
		replicaRecs = append(replicaRecs, rec)
		return true, nil
	})
	if err != nil {
		return bs, err
	}
	if len(replicaRecs) > len(primaryRecs) {
		return bs, fmt.Errorf("replica has %d records, primary device only %d",
			len(replicaRecs), len(primaryRecs))
	}
	for i, rec := range replicaRecs {
		want, err := wal.EncodeRecord(primaryRecs[i])
		if err != nil {
			return bs, err
		}
		got, err := wal.EncodeRecord(rec)
		if err != nil {
			return bs, err
		}
		if !bytes.Equal(got, want) {
			return bs, fmt.Errorf("replica record %d (LSN %d) diverges from primary image", i, rec.LSN)
		}
	}
	bs.records = len(replicaRecs)
	bs.unshipped = len(primaryRecs) - len(replicaRecs)

	// Expected state: the oracle over the REPLICA's durable log.  Records
	// in the primary's torn tail were never flushed, never shipped, and
	// must not influence the promoted state.
	oracle := newLogOracle()
	for _, rec := range replicaRecs {
		oracle.apply(rec)
	}
	oracle.crashUndo()
	winners := durableWinners(replicaRecs)
	bs.winners = len(winners)
	bs.losers = len(r.IDs()) - len(winners)

	// Promote, capturing the undo visit stream.
	var visits []wal.LSN
	follower.SetEventHook(func(ev obs.Event) {
		if ev.Name == "undo.visit" {
			visits = append(visits, wal.LSN(ev.LSN))
		}
	})
	err = follower.Promote()
	follower.SetEventHook(nil)
	if err != nil {
		return bs, fmt.Errorf("promote: %w", err)
	}
	bs.undoVisits = len(visits)

	// Promotion's backward pass is the recovery backward pass: one
	// monotone sweep, strictly decreasing LSNs, no record visited twice.
	seen := make(map[wal.LSN]bool, len(visits))
	for i, lsn := range visits {
		if seen[lsn] {
			return bs, fmt.Errorf("promotion undo visited LSN %d twice", lsn)
		}
		seen[lsn] = true
		if i > 0 && lsn >= visits[i-1] {
			return bs, fmt.Errorf("promotion undo visits not strictly decreasing: %d then %d", visits[i-1], lsn)
		}
	}

	// State check: the promoted engine must agree with the oracle on
	// every object and every counter.
	for obj := 1; obj <= cfg.Objects; obj++ {
		id := wal.ObjectID(obj)
		want := oracle.values[id]
		got, _, err := follower.ReadObject(id)
		if err != nil {
			return bs, err
		}
		if string(got) != string(want) {
			return bs, fmt.Errorf("object %d: promoted %q, oracle %q (winners %v)",
				obj, got, want, winners)
		}
	}
	for c := cfg.Objects + 1; c <= cfg.Objects+cfg.Counters; c++ {
		id := wal.ObjectID(c)
		got, err := follower.CounterValue(id)
		if err != nil {
			return bs, err
		}
		if want := oracle.counters[id]; got != want {
			return bs, fmt.Errorf("counter %d: promoted %d, oracle %d", c, got, want)
		}
	}
	return bs, nil
}
