package torture

import (
	"fmt"

	"ariesrh/internal/core"
	"ariesrh/internal/fault"
	"ariesrh/internal/sim"
	"ariesrh/internal/wal"
)

// ScopeAuditResult aggregates a ScopeAudit run.
type ScopeAuditResult struct {
	// Actions is the number of trace actions replayed; Checks the
	// number of live-transaction Op_List comparisons performed; Records
	// the number of durable log records decoded along the way.
	Actions int
	Checks  int
	Records int
}

// shadowResp is the audit's independent formulation of responsibility:
// for each live transaction, the set of undoable LSNs it is responsible
// for, grouped by object so delegation can move them wholesale.  It is
// derived purely from raw durable log records — no scopes, no Ob_Lists —
// so agreement with the engine's scope-computed Op_List checks the
// paper's central bookkeeping against a second implementation.
type shadowResp map[wal.TxID]map[wal.ObjectID]map[wal.LSN]bool

func (sr shadowResp) apply(rec *wal.Record) {
	switch rec.Type {
	case wal.TypeUpdate, wal.TypeIncrement:
		objs := sr[rec.TxID]
		if objs == nil {
			objs = make(map[wal.ObjectID]map[wal.LSN]bool)
			sr[rec.TxID] = objs
		}
		if objs[rec.Object] == nil {
			objs[rec.Object] = make(map[wal.LSN]bool)
		}
		objs[rec.Object][rec.LSN] = true
	case wal.TypeDelegate:
		// delegate(tor, tee, obj): everything tor is responsible for on
		// obj — its own updates and any it received earlier — moves.
		moved := sr[rec.Tor][rec.Object]
		if len(moved) == 0 {
			return
		}
		delete(sr[rec.Tor], rec.Object)
		objs := sr[rec.Tee]
		if objs == nil {
			objs = make(map[wal.ObjectID]map[wal.LSN]bool)
			sr[rec.Tee] = objs
		}
		if objs[rec.Object] == nil {
			objs[rec.Object] = make(map[wal.LSN]bool)
		}
		for lsn := range moved {
			objs[rec.Object][lsn] = true
		}
	case wal.TypeCLR:
		// The compensated update is dead; its owner (the transaction
		// writing the CLR) is no longer responsible for it.
		delete(sr[rec.TxID][rec.Object], rec.Compensates)
	case wal.TypeEnd:
		delete(sr, rec.TxID)
	}
}

// list flattens a transaction's responsibility set, sorted ascending —
// the same shape Engine.OpList returns.
func (sr shadowResp) list(tx wal.TxID) []wal.LSN {
	var out []wal.LSN
	for _, lsns := range sr[tx] {
		for lsn := range lsns {
			out = append(out, lsn)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// ScopeAudit replays cfg's trace one action at a time, flushing the log
// after each, and checks that the engine's scope bookkeeping — queried
// through Op_List — matches the responsibility sets reconstructed from
// the raw durable log bytes for every live transaction.  This is the
// Ob_List reconstruction invariant: the scopes must never drift from
// what the log says.
func ScopeAudit(cfg Config) (ScopeAuditResult, error) {
	cfg = cfg.withDefaults()
	var res ScopeAuditResult
	trace := sim.Generate(cfg.simConfig())
	store := fault.NewDir(fault.Plan{Seed: cfg.Seed})
	eng, err := core.New(core.Options{
		LogDir:      store,
		GroupCommit: core.GroupCommitOff,
		PoolSize:    cfg.PoolSize,
	})
	if err != nil {
		return res, err
	}
	r := sim.NewReplayer(sim.CoreTarget{Engine: eng}, trace)

	shadow := make(shadowResp)
	applied := wal.NilLSN
	for {
		ok, err := r.Step()
		if err != nil {
			return res, fmt.Errorf("torture: audit replay: %w", err)
		}
		if !ok {
			break
		}
		res.Actions++
		if err := eng.Log().Flush(eng.Log().Head()); err != nil {
			return res, err
		}
		// Fold the newly durable records into the shadow sets: re-decode
		// the stable directory image (manifest + segment frames, exactly
		// what a crash would preserve) and apply what the LSN cursor has
		// not seen yet.
		_, recs, derr := wal.ReadDurable(store.StableDir())
		if derr != nil {
			return res, fmt.Errorf("torture: audit decode: %w", derr)
		}
		for _, rec := range recs {
			if rec.LSN <= applied {
				continue
			}
			shadow.apply(rec)
			applied = rec.LSN
			res.Records++
		}
		ids := r.IDs()
		for _, slot := range r.LiveSlots() {
			id := ids[slot]
			got, err := eng.OpList(id)
			if err != nil {
				return res, err
			}
			want := shadow.list(id)
			if !equalLSNs(got, want) {
				return res, fmt.Errorf(
					"torture: step %d: Op_List(t%d) = %v, log-derived responsibility %v",
					res.Actions-1, id, got, want)
			}
			res.Checks++
		}
	}
	return res, nil
}

func equalLSNs(a, b []wal.LSN) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TransientResult aggregates a TransientRun.
type TransientResult struct {
	// Actions is the number of trace actions replayed; Retries the WAL
	// flush retries performed; Injected the sync errors injected.
	Actions  int
	Retries  uint64
	Injected uint64
}

// TransientRun replays cfg's trace (group commit ON) against a device
// that fails every failEveryNth sync attempt with a transient error, and
// verifies the WAL's bounded-backoff retry absorbs every episode: no
// action surfaces an error, the engine stays healthy, and the settled
// final state matches the oracle.  failEveryNth below 2 (which would
// starve the retry budget) is raised to 3.
func TransientRun(cfg Config, failEveryNth uint64) (TransientResult, error) {
	cfg = cfg.withDefaults()
	if failEveryNth < 2 {
		failEveryNth = 3
	}
	var res TransientResult
	trace := sim.Generate(cfg.simConfig())
	store := fault.NewDir(fault.Plan{
		Seed:             cfg.Seed,
		FailEveryNthSync: failEveryNth,
	})
	eng, err := core.New(core.Options{
		LogDir:      store,
		GroupCommit: core.GroupCommitOn,
		PoolSize:    cfg.PoolSize,
	})
	if err != nil {
		return res, err
	}
	r := sim.NewReplayer(sim.CoreTarget{Engine: eng}, trace)
	oracle := sim.NewOracle()
	for {
		ok, err := r.Step()
		if err != nil {
			return res, fmt.Errorf("torture: transient replay surfaced an error: %w", err)
		}
		if !ok {
			break
		}
		if err := oracle.Apply(trace[res.Actions]); err != nil {
			return res, err
		}
		res.Actions++
	}
	// Settle: abort the stragglers, mirrored in the oracle in the same
	// deterministic order.
	live := r.LiveSlots()
	if err := r.AbortLive(); err != nil {
		return res, fmt.Errorf("torture: transient settle: %w", err)
	}
	for _, slot := range live {
		if err := oracle.Apply(sim.Action{Kind: sim.ActAbort, Tx: slot}); err != nil {
			return res, err
		}
	}
	if h := eng.Health(); h.State != core.StateHealthy {
		return res, fmt.Errorf("torture: engine %v after transient-only faults (%v)", h.State, h.Err)
	}
	for obj := 1; obj <= cfg.Objects; obj++ {
		id := wal.ObjectID(obj)
		want, _ := oracle.Value(id)
		got, _, err := eng.ReadObject(id)
		if err != nil {
			return res, err
		}
		if string(got) != string(want) {
			return res, fmt.Errorf("torture: object %d: engine %q, oracle %q", obj, got, want)
		}
	}
	for c := cfg.Objects + 1; c <= cfg.Objects+cfg.Counters; c++ {
		id := wal.ObjectID(c)
		got, err := eng.CounterValue(id)
		if err != nil {
			return res, err
		}
		if want := oracle.Counter(id); got != want {
			return res, fmt.Errorf("torture: counter %d: engine %d, oracle %d", c, got, want)
		}
	}
	res.Retries = eng.LogStats().FlushRetries
	res.Injected = store.InjectedErrors()
	return res, nil
}
