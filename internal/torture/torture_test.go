package torture

import (
	"errors"
	"testing"

	"ariesrh/internal/core"
	"ariesrh/internal/fault"
	"ariesrh/internal/sim"
	"ariesrh/internal/wal"
)

// TestCrashSweepEnumeratesBoundaries is the headline torture run: the
// default workload must expose at least 200 distinct crash points, and
// the engine must recover correctly at every single one — oracle
// agreement on all objects and counters, undo visits strictly decreasing
// and unique — with torn tails at every second boundary.
func TestCrashSweepEnumeratesBoundaries(t *testing.T) {
	cfg := Config{Seed: 1}
	if testing.Short() {
		cfg.MaxBoundaries = 40
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sweep: %+v", res)
	if res.Boundaries < 200 {
		t.Errorf("workload exposed %d crash points, want >= 200", res.Boundaries)
	}
	want := res.Boundaries
	if cfg.MaxBoundaries > 0 && want > cfg.MaxBoundaries {
		want = cfg.MaxBoundaries
	}
	if res.Crashes != want {
		t.Errorf("recovered at %d of %d boundaries", res.Crashes, want)
	}
	if res.TornCrashes == 0 {
		t.Error("no boundary produced a torn tail")
	}
	if res.Winners == 0 || res.Losers == 0 {
		t.Errorf("degenerate classification: %d winners, %d losers", res.Winners, res.Losers)
	}
	if res.UndoVisits == 0 {
		t.Error("no recovery ever visited a record in its backward pass")
	}
}

// TestCrashSweepSecondSeed re-runs a smaller sweep under a different
// seed, guarding against the headline test passing by seed luck.
func TestCrashSweepSecondSeed(t *testing.T) {
	res, err := Run(Config{Seed: 2, Steps: 500, MaxBoundaries: 80})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes == 0 || res.Losers == 0 {
		t.Fatalf("sweep did no useful work: %+v", res)
	}
}

// TestSweepDeterminism pins the reproducibility contract: one seed fully
// determines the sweep, so two runs must aggregate identically.
func TestSweepDeterminism(t *testing.T) {
	cfg := Config{Seed: 5, Steps: 300, MaxBoundaries: 40}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed, different sweeps:\n  %+v\n  %+v", a, b)
	}
}

// TestScopeAudit checks the Ob_List reconstruction invariant over a full
// trace: after every action, each live transaction's Op_List must equal
// the responsibility set derived from the raw durable log bytes.
func TestScopeAudit(t *testing.T) {
	res, err := ScopeAudit(Config{Seed: 3, Steps: 350})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("audit: %+v", res)
	if res.Checks == 0 || res.Records == 0 {
		t.Fatalf("audit did no useful work: %+v", res)
	}
}

// TestTransientRetries verifies transient sync failures on the commit
// path are absorbed by the WAL's bounded-backoff retry: every commit in
// the run succeeds, the engine stays healthy, and the final state
// matches the oracle — while the counters prove faults really fired.
func TestTransientRetries(t *testing.T) {
	res, err := TransientRun(Config{Seed: 4, Steps: 400}, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("transient: %+v", res)
	if res.Injected == 0 {
		t.Fatal("no sync errors were injected; the run proved nothing")
	}
	if res.Retries == 0 {
		t.Fatal("injected sync errors but the WAL recorded no retries")
	}
}

// TestPersistentFailureDegradesMidTrace kills the device partway through
// a replay and verifies the engine lands in degraded read-only mode —
// errors surface, nothing wedges — and that a restart with a healed
// device recovers to a healthy, oracle-agreeing state.
func TestPersistentFailureDegradesMidTrace(t *testing.T) {
	cfg := Config{Seed: 6, Steps: 400}.withDefaults()
	trace := sim.Generate(cfg.simConfig())
	store := fault.NewDir(fault.Plan{Seed: cfg.Seed})
	eng, err := core.New(core.Options{
		LogDir:      store,
		GroupCommit: core.GroupCommitOff,
		PoolSize:    cfg.PoolSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := sim.NewReplayer(sim.CoreTarget{Engine: eng}, trace)
	if err := r.RunTo(len(trace) / 2); err != nil {
		t.Fatal(err)
	}
	store.SetFailAllSyncs(true)
	var stepErr error
	for stepErr == nil {
		ok, err := r.Step()
		if err != nil {
			stepErr = err
			break
		}
		if !ok {
			break
		}
	}
	if stepErr == nil {
		// Possible only if no remaining action forced the log; the
		// workload makes that astronomically unlikely.
		t.Fatal("no action surfaced the dead device")
	}
	if !errors.Is(stepErr, fault.ErrDeviceFailed) && !errors.Is(stepErr, core.ErrDegraded) {
		t.Fatalf("replay error = %v, want the device failure or ErrDegraded", stepErr)
	}
	if h := eng.Health(); h.State != core.StateDegraded {
		t.Fatalf("Health = %v, want degraded", h.State)
	}

	// Restart with a healed device: recovery must succeed and agree
	// with the oracle given the durable winners.
	store.SetFailAllSyncs(false)
	if _, err := store.CrashNow(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Recover(); err != nil {
		t.Fatal(err)
	}
	if h := eng.Health(); h.State != core.StateHealthy {
		t.Fatalf("Health after restart = %v, want healthy", h.State)
	}
	recs, err := decodeStable(store)
	if err != nil {
		t.Fatal(err)
	}
	oracle := newLogOracle()
	for _, rec := range recs {
		oracle.apply(rec)
	}
	oracle.crashUndo()
	for obj := 1; obj <= cfg.Objects; obj++ {
		id := wal.ObjectID(obj)
		want := oracle.values[id]
		got, _, err := eng.ReadObject(id)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("object %d after restart: engine %q, oracle %q", obj, got, want)
		}
	}
}

// TestRotationArchiveCrashSweep crashes the device at every sync boundary
// of a workload that rotates segments constantly (tiny segment cap) and
// archives every few rounds, so the freeze lands inside rotations, inside
// archive's manifest commit, and between the manifest sync and the
// segment deletes.  Every boundary must recover to the state the capture
// oracle predicts, and every surviving durable record must be
// byte-identical to the capture — archive never rewrites live bytes.
func TestRotationArchiveCrashSweep(t *testing.T) {
	cfg := RotationConfig{Seed: 7}
	if testing.Short() {
		cfg.MaxBoundaries = 40
	}
	res, err := RotationRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("rotation sweep: %+v", res)
	if res.Rotations == 0 {
		t.Error("workload never rotated a segment; the sweep proved nothing")
	}
	if res.Archives == 0 || res.ArchivedBase == wal.NilLSN {
		t.Errorf("workload never archived (archives %d, base %d); the sweep proved nothing",
			res.Archives, res.ArchivedBase)
	}
	want := res.Boundaries
	if cfg.MaxBoundaries > 0 && want > cfg.MaxBoundaries {
		want = cfg.MaxBoundaries
	}
	if res.Crashes != want {
		t.Errorf("recovered at %d of %d boundaries", res.Crashes, want)
	}
	if res.TornCrashes == 0 {
		t.Error("no boundary produced a torn tail")
	}
	if res.Winners == 0 || res.Losers == 0 {
		t.Errorf("degenerate classification: %d winners, %d losers", res.Winners, res.Losers)
	}
}

// TestRotationSweepDeterminism pins reproducibility: the workload is
// serial and seeded, so two sweeps must aggregate identically.
func TestRotationSweepDeterminism(t *testing.T) {
	cfg := RotationConfig{Seed: 8, Rounds: 40, MaxBoundaries: 30}
	a, err := RotationRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RotationRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed, different sweeps:\n  %+v\n  %+v", a, b)
	}
}
