package torture

import "testing"

// TestReadsDuringRecoverySweep is the instant-restart torture run: at
// every sync boundary of the default workload the engine recovers through
// the parallel pipeline while concurrent readers check every object and
// counter against the durable-log oracle MID-recovery — then the settled
// state is checked again.  The undo-visit stream must remain one strictly
// decreasing, duplicate-free sweep.
func TestReadsDuringRecoverySweep(t *testing.T) {
	cfg := Config{Seed: 1}
	if testing.Short() {
		cfg.MaxBoundaries = 40
	}
	res, err := RunReadsDuringRecovery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("reads-during-recovery sweep: %+v", res)
	want := res.Boundaries
	if cfg.MaxBoundaries > 0 && want > cfg.MaxBoundaries {
		want = cfg.MaxBoundaries
	}
	if res.Crashes != want {
		t.Errorf("recovered at %d of %d boundaries", res.Crashes, want)
	}
	if res.Winners == 0 || res.Losers == 0 {
		t.Errorf("degenerate classification: %d winners, %d losers", res.Winners, res.Losers)
	}
	if res.UndoVisits == 0 {
		t.Error("no recovery ever visited a record in its backward pass")
	}
}

// TestReadsDuringRecoverySecondSeed guards the sweep against seed luck
// with a smaller run under a different seed and torn tails at every
// boundary.
func TestReadsDuringRecoverySecondSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: headline sweep covers the short path")
	}
	res, err := RunReadsDuringRecovery(Config{Seed: 2, Steps: 500, MaxBoundaries: 80, TornEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes == 0 || res.Losers == 0 {
		t.Fatalf("sweep did no useful work: %+v", res)
	}
}
