package obs

import "time"

// Event is one structured trace event.  Fields are plain integers rather
// than the wal package's named types so obs stays dependency-free (it is
// imported by wal itself); emitters widen, hooks narrow.  Unused fields
// are zero.
type Event struct {
	// Name identifies the event, dotted like metric names
	// (e.g. "recovery.undo.visit", "txn.commit").
	Name string
	// Tx is the transaction involved (0 = none).
	Tx uint64
	// LSN is the log position involved (0 = none).
	LSN uint64
	// Object is the object involved (0 = none).
	Object uint64
	// Value carries an event-specific quantity (records visited, waiters
	// released, ...).
	Value int64
	// Dur carries an event-specific duration (op latency, phase
	// duration, ...).
	Dur time.Duration
}

// eventHook wraps the hook function for atomic.Value (which requires a
// consistent concrete type).
type eventHook struct{ fn func(Event) }

// SetEventHook installs fn as the registry's event hook; nil uninstalls.
// At most one hook is active; installing replaces the previous one.
//
// The hook runs synchronously on the emitting goroutine — often while an
// engine latch is held — so it must be fast and must not call back into
// the engine.  Record what you need and return; offload to a channel if
// processing is heavy.
func (r *Registry) SetEventHook(fn func(Event)) {
	r.hook.Store(eventHook{fn: fn})
}

// Emit delivers ev to the installed hook, if any.  Without a hook the
// cost is one atomic load.
func (r *Registry) Emit(ev Event) {
	h, _ := r.hook.Load().(eventHook)
	if h.fn != nil {
		h.fn(ev)
	}
}

// HasEventHook reports whether a hook is installed; emitters building an
// expensive event can skip construction when no one is listening.
func (r *Registry) HasEventHook() bool {
	h, _ := r.hook.Load().(eventHook)
	return h.fn != nil
}
