package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.b") != c {
		t.Fatal("Counter is not get-or-create")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestSnapshotSubDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	c.Add(10)
	before := r.Snapshot()
	c.Add(7)
	r.Gauge("depth").Set(3)
	delta := r.Snapshot().Sub(before)
	if got := delta.Counter("ops"); got != 7 {
		t.Fatalf("delta ops = %d, want 7", got)
	}
	if got := delta.Gauge("depth"); got != 3 {
		t.Fatalf("delta gauge = %d, want 3 (gauges keep current value)", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	// 100 observations of 1µs, one of 1ms.
	for i := 0; i < 100; i++ {
		h.Observe(time.Microsecond)
	}
	h.Observe(time.Millisecond)
	s := h.Snapshot()
	if s.Count != 101 {
		t.Fatalf("count = %d, want 101", s.Count)
	}
	if s.Max != int64(time.Millisecond) {
		t.Fatalf("max = %d, want 1ms", s.Max)
	}
	if got := s.Mean(); got < int64(time.Microsecond) || got > int64(time.Millisecond) {
		t.Fatalf("mean = %d out of range", got)
	}
	// p50 must bound 1µs within its log2 bucket; p100 hits the max.
	if q := s.Quantile(0.5); q < int64(time.Microsecond) || q > 2*int64(time.Microsecond) {
		t.Fatalf("p50 = %d, want within [1µs, 2µs]", q)
	}
	if q := s.Quantile(1); q != s.Max {
		t.Fatalf("p100 = %d, want max %d", q, s.Max)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 46, 46}, {1<<47 + 1, NumBuckets - 1}, {1 << 62, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestConcurrentMutators(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	h := r.Histogram("lat")
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.ObserveNs(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := h.Snapshot().Count; got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}

func TestEventHook(t *testing.T) {
	r := NewRegistry()
	if r.HasEventHook() {
		t.Fatal("fresh registry claims a hook")
	}
	r.Emit(Event{Name: "dropped"}) // no hook: must be a no-op
	var got []Event
	r.SetEventHook(func(ev Event) { got = append(got, ev) })
	if !r.HasEventHook() {
		t.Fatal("hook not installed")
	}
	r.Emit(Event{Name: "a", LSN: 7, Value: 2})
	r.SetEventHook(nil)
	r.Emit(Event{Name: "after-uninstall"})
	if len(got) != 1 || got[0].Name != "a" || got[0].LSN != 7 || got[0].Value != 2 {
		t.Fatalf("hook saw %v, want exactly the one installed-window event", got)
	}
}

func TestFormatIncludesNonZeroSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter("wal.appends").Add(3)
	r.Counter("zero.series") // stays 0: omitted
	r.Gauge("pool.size").Set(128)
	r.Histogram("op.ns").Observe(time.Microsecond)
	out := r.Snapshot().Format()
	for _, want := range []string{"wal.appends", "pool.size", "op.ns", "count=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "zero.series") {
		t.Fatalf("Format output includes zero counter:\n%s", out)
	}
}
