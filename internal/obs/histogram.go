package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of histogram buckets.  Bucket i counts
// observations v (in nanoseconds) with 2^(i-1) < v ≤ 2^i (bucket 0 counts
// v ≤ 1); the last bucket absorbs everything larger.  48 buckets cover
// 1ns through ~78 hours, so no realistic latency saturates the range.
const NumBuckets = 48

// Histogram is a fixed log2-bucket latency histogram.  Observations are
// lock-free; buckets, count, sum and max are all atomics, so a snapshot
// taken concurrently with observations is approximate at the margin but
// never torn in a way that matters for reporting.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
}

// bucketOf returns the bucket index for a nanosecond value: bucket i
// holds 2^(i-1) < ns ≤ 2^i, so the right edge of bucket i is 2^i.
func bucketOf(ns int64) int {
	if ns <= 1 {
		return 0
	}
	b := bits.Len64(uint64(ns - 1))
	if b >= NumBuckets {
		return NumBuckets - 1
	}
	return b
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNs(int64(d)) }

// ObserveNs records one nanosecond value.
func (h *Histogram) ObserveNs(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Count   uint64
	Sum     int64
	Max     int64
	Buckets [NumBuckets]uint64
}

// Snapshot copies the current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// Sub returns the bucket-wise delta s - prev.  Max is kept from s (the
// later snapshot): per-interval maxima are not recoverable from two
// cumulative snapshots.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{
		Count: s.Count - prev.Count,
		Sum:   s.Sum - prev.Sum,
		Max:   s.Max,
	}
	for i := range s.Buckets {
		out.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
	}
	return out
}

// Merge returns the bucket-wise sum of s and o — the combined
// distribution of two independent populations (e.g. the same series
// across shards).  Count and Sum add; Max is the larger of the two.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{
		Count: s.Count + o.Count,
		Sum:   s.Sum + o.Sum,
		Max:   s.Max,
	}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	for i := range s.Buckets {
		out.Buckets[i] = s.Buckets[i] + o.Buckets[i]
	}
	return out
}

// Mean returns the mean observation in nanoseconds (0 when empty).
func (s HistogramSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / int64(s.Count)
}

// Quantile returns an upper bound on the q-quantile (0 ≤ q ≤ 1) in
// nanoseconds: the right edge of the bucket the q-th observation falls
// into.  Log-bucket resolution — within a factor of 2.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen uint64
	for i, n := range s.Buckets {
		seen += n
		if seen > rank {
			edge := int64(1) << i // right edge of bucket i
			if edge > s.Max && s.Max > 0 {
				return s.Max
			}
			return edge
		}
	}
	return s.Max
}
