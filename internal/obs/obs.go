// Package obs is the observability layer of the repository: dependency-free
// atomic counters, gauges and log-scale latency histograms collected in a
// named Registry, plus a structured event hook for tracing.
//
// The paper's efficiency claims (§4.2 C1–C3) are phrased in units this
// package counts — log records appended, flushed, visited, skipped —
// and the claim tests in internal/core assert them as metric invariants
// rather than arguing them in prose.  Every engine instance owns one
// Registry; the components it is built from (WAL, buffer pool, lock
// manager) bind their metric handles to it at construction via their
// Instrument methods, so a snapshot of the registry is a coherent picture
// of the whole stack.
//
// All mutators are lock-free atomics and safe for concurrent use; metric
// handles are resolved once (Registry.Counter et al.) and then updated
// without any map lookup, so instrumented hot paths pay one atomic add.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a settable int64 (last-write-wins).
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Registry is a named collection of metrics.  Metric constructors are
// get-or-create: asking twice for the same name returns the same handle,
// so independently instrumented components may share series.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	// hook holds the installed event hook (type eventHook); see event.go.
	hook atomic.Value
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it if
// needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of a registry's metrics.  Snapshots
// are plain values: subtract two (Sub) for a per-interval delta, or
// Format one for humans.
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Counter returns the named counter's value (0 if absent).
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Gauge returns the named gauge's value (0 if absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Histogram returns the named histogram's snapshot (zero value if absent).
func (s Snapshot) Histogram(name string) HistogramSnapshot { return s.Histograms[name] }

// Sub returns the delta s - prev: counters and histogram totals are
// subtracted element-wise; gauges keep their current (s) value, since a
// gauge delta is rarely meaningful.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		out.Histograms[name] = h.Sub(prev.Histograms[name])
	}
	return out
}

// Format renders the snapshot as aligned, sorted text: counters and
// gauges one per line, histograms with count/mean/p50/p99/max.  Zero
// counters are omitted to keep tool output readable.
func (s Snapshot) Format() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters)+len(s.Gauges))
	width := 0
	for name, v := range s.Counters {
		if v == 0 {
			continue
		}
		names = append(names, name)
		if len(name) > width {
			width = len(name)
		}
	}
	for name := range s.Gauges {
		names = append(names, name)
		if len(name) > width {
			width = len(name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		if v, ok := s.Counters[name]; ok {
			fmt.Fprintf(&b, "%-*s %d\n", width, name, v)
		} else {
			fmt.Fprintf(&b, "%-*s %d\n", width, name, s.Gauges[name])
		}
	}
	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		if s.Histograms[name].Count > 0 {
			hnames = append(hnames, name)
		}
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "%s  count=%d mean=%s p50=%s p99=%s max=%s\n",
			name, h.Count, fmtNs(h.Mean()), fmtNs(h.Quantile(0.50)), fmtNs(h.Quantile(0.99)), fmtNs(h.Max))
	}
	return b.String()
}

// fmtNs renders a nanosecond quantity with a human unit.
func fmtNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
