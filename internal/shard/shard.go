// Package shard implements the sharded ARIES/RH database: N
// independent core.Engine instances — each with its own write-ahead
// log, group flusher, lock manager and buffer pool — behind an
// object→shard router.
//
// Single-shard transactions route straight through to their engine's
// ordinary commit path, untouched.  A transaction that touches several
// shards commits through a lightweight two-phase commit whose
// prepare/commit/abort records ride each participant shard's own log:
// there is no separate coordinator log.  The coordinator is simply the
// first shard the transaction wrote on (read-only branches never
// vote); its local transaction prepares like any participant (binding
// the global id durably) and then commits — that forced commit record
// IS the global decision.  If no
// decision is durable anywhere, the outcome is abort (presumed abort):
// recovery on each shard re-instates its prepared transactions as
// in-doubt, asks the coordinator shard's recovered engine for the
// decision, and resolves them locally.
//
// Cross-shard delegation — the headline primitive — transfers
// responsibility for updates on an object between global transactions
// whose coordinators live on different shards.  The transfer itself is
// a delegate-out record on the object's home shard, between the two
// global transactions' LOCAL transactions there, so the paper's
// cluster-undo machinery never needs to cross a shard boundary; a
// delegate-in record on the acquirer's coordinator shard records the
// acquisition for observability and idempotent replay.
package shard

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"

	"ariesrh/internal/core"
	"ariesrh/internal/obs"
	"ariesrh/internal/storage"
	"ariesrh/internal/wal"
)

// Errors returned by the sharded database (engines' own errors — lock
// deadlocks, ErrDegraded, ErrCrashed — pass through unchanged).
var (
	// ErrTxnDone is returned for operations on a committed or aborted
	// global transaction handle.
	ErrTxnDone = errors.New("shard: global transaction already terminated")
	// ErrBadShards is returned by Open for an invalid shard count or a
	// LogDirs slice whose length disagrees with Shards.
	ErrBadShards = errors.New("shard: invalid shard configuration")
	// ErrInDoubt is returned (wrapped around the device error) by
	// Txn.Commit when the coordinator's decision force failed: the commit
	// record may or may not be durable, so the global outcome is unknown.
	// Every branch stays prepared, holding its locks, until the next
	// Recover settles them all from the coordinator's durable log —
	// commit if the record made it to the device, presumed abort
	// otherwise.
	ErrInDoubt = errors.New("shard: commit outcome in doubt until recovery")
)

// Router maps objects to shards.  Implementations must be pure
// functions of (obj, shards): the same object must route to the same
// shard on every call and across restarts, or recovery will replay
// records on the wrong engine.
type Router interface {
	// Route returns the home shard of obj, in [0, shards).
	Route(obj wal.ObjectID, shards int) uint32
}

// HashRouter is the default Router: a Fibonacci multiplicative hash of
// the object id.  Stateless, uniform, stable across restarts.
type HashRouter struct{}

// Route implements Router.
func (HashRouter) Route(obj wal.ObjectID, shards int) uint32 {
	h := uint64(obj) * 0x9E3779B97F4A7C15
	return uint32(h % uint64(shards))
}

// Options configures Open.
type Options struct {
	// Shards is the number of engine instances (>= 1).  With one shard
	// the database degenerates to a plain single-engine ARIES/RH
	// instance behind the same API (every transaction is single-shard).
	Shards int
	// Dir, when non-empty, makes the database file-backed: shard i
	// keeps its log, pages and master record under Dir/shard-<i>.
	// Mutually exclusive with LogDirs.
	Dir string
	// LogDirs, when non-nil, supplies each shard's stable log directory
	// — typically fault.Dir instances injecting per-shard crash
	// schedules.  Length must equal Shards.
	LogDirs []wal.Dir
	// PoolSize is each shard's buffer-pool capacity in pages.
	PoolSize int
	// GroupCommit selects commit-time log forcing for every shard.
	GroupCommit core.GroupCommitMode
	// LogSegmentBytes overrides each shard log's segment rotation
	// threshold (0 means the WAL default).
	LogSegmentBytes int64
	// EarlyLockRelease enables controlled lock violation on each
	// shard's single-shard commit path; cross-shard prepares and
	// decisions always force synchronously.
	EarlyLockRelease bool
	// ParallelRecovery runs each shard's recovery as the
	// instant-restart pipeline.  Sharded recovery waits for every
	// shard's pipeline before resolving in-doubt transactions, so
	// Recover returns with all shards writable.
	ParallelRecovery bool
	// Router overrides the object→shard mapping (default HashRouter).
	// It must be deterministic and stable across restarts.
	Router Router
}

// DB is a sharded ARIES/RH database.  It is safe for concurrent use;
// individual Txn handles are not (like Tx in the public API).
type DB struct {
	engs   []*core.Engine
	router Router

	reg *obs.Registry
	met dbMetrics

	mu      sync.Mutex
	nextGID uint64
}

// Open creates or reopens a sharded database.  Engines holding state
// from a previous incarnation recover individually during Open; Open
// then resolves every in-doubt two-phase participant by asking its
// coordinator shard for the decision (presumed abort when none is
// durable), releases all retained decisions, and seeds the global-id
// counter above every id the logs have seen.  A nil error means all
// shards are writable and no transaction is in doubt.
func Open(opts Options) (*DB, error) {
	if opts.Shards < 1 {
		return nil, fmt.Errorf("%w: Shards=%d", ErrBadShards, opts.Shards)
	}
	if opts.LogDirs != nil && len(opts.LogDirs) != opts.Shards {
		return nil, fmt.Errorf("%w: %d LogDirs for %d shards", ErrBadShards, len(opts.LogDirs), opts.Shards)
	}
	if opts.Dir != "" && opts.LogDirs != nil {
		return nil, fmt.Errorf("%w: Dir and LogDirs are mutually exclusive", ErrBadShards)
	}
	if opts.Router == nil {
		opts.Router = HashRouter{}
	}
	db := &DB{
		router:  opts.Router,
		reg:     obs.NewRegistry(),
		nextGID: 1,
	}
	db.met = bindDBMetrics(db.reg)
	db.met.shards.Set(int64(opts.Shards))
	for i := 0; i < opts.Shards; i++ {
		eo := core.Options{
			ShardID:          uint32(i),
			PoolSize:         opts.PoolSize,
			GroupCommit:      opts.GroupCommit,
			LogSegmentBytes:  opts.LogSegmentBytes,
			EarlyLockRelease: opts.EarlyLockRelease,
			ParallelRecovery: opts.ParallelRecovery,
		}
		cleanup := func() {}
		if opts.LogDirs != nil {
			eo.LogDir = opts.LogDirs[i]
		} else if opts.Dir != "" {
			base := filepath.Join(opts.Dir, fmt.Sprintf("shard-%d", i))
			logDir, err := wal.OpenFileDir(filepath.Join(base, "wal"))
			if err != nil {
				db.closeEngines()
				return nil, err
			}
			master, err := wal.OpenFileStore(filepath.Join(base, "master"))
			if err != nil {
				logDir.Close()
				db.closeEngines()
				return nil, err
			}
			disk, err := storage.OpenFileDisk(filepath.Join(base, "pages.db"))
			if err != nil {
				logDir.Close()
				master.Close()
				db.closeEngines()
				return nil, err
			}
			eo.LogDir = logDir
			eo.MasterStore = master
			eo.Disk = disk
			cleanup = func() {
				logDir.Close()
				master.Close()
				disk.Close()
			}
		}
		eng, err := core.New(eo)
		if err != nil {
			cleanup()
			db.closeEngines()
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		db.engs = append(db.engs, eng)
	}
	if opts.ParallelRecovery {
		if err := db.WaitRecovered(); err != nil {
			db.closeEngines()
			return nil, err
		}
	}
	if err := db.resolveInDoubt(); err != nil {
		db.closeEngines()
		return nil, err
	}
	return db, nil
}

// closeEngines best-effort closes whatever engines were constructed.
func (db *DB) closeEngines() {
	for _, e := range db.engs {
		e.Close()
	}
}

// Shards returns the number of shards.
func (db *DB) Shards() int { return len(db.engs) }

// Engine returns shard i's engine for tools, tests and the torture
// harness.  Callers must not drive two-phase state behind the DB's
// back.
func (db *DB) Engine(i int) *core.Engine { return db.engs[i] }

// Route returns the home shard of obj under the database's router.
func (db *DB) Route(obj wal.ObjectID) uint32 {
	return db.router.Route(obj, len(db.engs))
}

// Checkpoint takes a fuzzy checkpoint on every shard, bounding the
// work of each shard's next recovery.  Checkpoints are per-shard and
// not mutually atomic — they don't need to be: each shard's checkpoint
// carries that shard's prepared transactions and retained decisions,
// and recovery correctness depends only on each log individually.
func (db *DB) Checkpoint() error {
	for i, e := range db.engs {
		if err := e.Checkpoint(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Crash simulates a whole-cluster failure: every shard loses its
// volatile state (buffer pool, lock table, transaction table, object
// lists, unflushed log tail).  All live Txn handles become invalid.
// Call Recover before issuing new work.
func (db *DB) Crash() error {
	var first error
	for i, e := range db.engs {
		if err := e.Crash(); err != nil && first == nil {
			first = fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return first
}

// Recover replays every shard's log (concurrently — shard recoveries
// are independent until in-doubt resolution), then resolves in-doubt
// two-phase participants: each shard's prepared transactions are
// committed iff the coordinator shard's recovered log holds the commit
// decision for their global id, aborted otherwise (presumed abort).
// Retained decisions are then released on every shard and the
// global-id counter re-seeded.  A nil return means every shard is
// writable and no transaction is in doubt.
func (db *DB) Recover() error {
	errs := make([]error, len(db.engs))
	var wg sync.WaitGroup
	for i, e := range db.engs {
		wg.Add(1)
		go func(i int, e *core.Engine) {
			defer wg.Done()
			if err := e.Recover(); err != nil {
				errs[i] = err
				return
			}
			// With ParallelRecovery, Recover returns with the pipeline
			// in flight; in-doubt resolution needs the rebuilt prepared
			// set, so wait for this shard's pipeline here (shards still
			// overlap with each other).
			errs[i] = e.WaitRecovered()
		}(i, e)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return db.resolveInDoubt()
}

// resolveInDoubt settles every prepared transaction left by recovery
// (or found at Open) using the coordinator's durable decision, then
// releases all retained decisions and re-seeds the global-id counter.
func (db *DB) resolveInDoubt() error {
	for i, e := range db.engs {
		for _, d := range e.InDoubt() {
			committed := false
			if int(d.Coord) < len(db.engs) {
				committed = db.engs[d.Coord].GlobalDecision(d.GID)
			}
			if err := e.ResolveInDoubt(d.Tx, committed); err != nil {
				return fmt.Errorf("shard %d: resolve t%d (gid %d): %w", i, d.Tx, d.GID, err)
			}
			db.met.indoubtResolved.Inc()
		}
	}
	// Every in-doubt participant is resolved, so no decision needs
	// retaining (and pinning its shard's archive) any longer.
	for _, e := range db.engs {
		e.ReleaseAllGlobals()
	}
	var max uint64
	for _, e := range db.engs {
		if g := e.MaxSeenGID(); g > max {
			max = g
		}
	}
	db.mu.Lock()
	if db.nextGID <= max {
		db.nextGID = max + 1
	}
	db.mu.Unlock()
	return nil
}

// WaitRecovered blocks until every shard's in-flight parallel recovery
// pipeline completes, returning the first failure (that shard is back
// in the crashed state; Recover may be retried).
func (db *DB) WaitRecovered() error {
	for i, e := range db.engs {
		if err := e.WaitRecovered(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Health returns the worst availability state across shards: a single
// degraded or crashed shard makes the cluster report it, since any
// cross-shard transaction may need that shard.
func (db *DB) Health() core.Health {
	worst := core.Health{State: core.StateHealthy}
	for _, e := range db.engs {
		h := e.Health()
		if h.State > worst.State {
			worst = h
		}
	}
	return worst
}

// ShardHealth returns each shard's individual availability.
func (db *DB) ShardHealth() []core.Health {
	out := make([]core.Health, len(db.engs))
	for i, e := range db.engs {
		out[i] = e.Health()
	}
	return out
}

// ReadCommitted returns the current committed/buffered value of obj
// from its home shard, without any transactional context.
func (db *DB) ReadCommitted(obj wal.ObjectID) ([]byte, bool, error) {
	v, present, err := db.engs[db.Route(obj)].ReadObject(obj)
	if err != nil || !present || len(v) == 0 {
		return nil, false, err
	}
	return v, true, nil
}

// CounterValue reads the committed/buffered counter value of obj from
// its home shard without any transactional context.
func (db *DB) CounterValue(obj wal.ObjectID) (int64, error) {
	return db.engs[db.Route(obj)].CounterValue(obj)
}

// SetEventHook installs fn as every shard's structured event hook; nil
// uninstalls.  Same contract as the single-engine hook: synchronous,
// often under an engine latch, must not call back into the database.
func (db *DB) SetEventHook(fn func(obs.Event)) {
	for _, e := range db.engs {
		e.SetEventHook(fn)
	}
}

// Close flushes and closes every shard, returning the first error.
func (db *DB) Close() error {
	var first error
	for i, e := range db.engs {
		if err := e.Close(); err != nil && first == nil {
			first = fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return first
}
