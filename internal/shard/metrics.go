package shard

import (
	"fmt"

	"ariesrh/internal/core"
	"ariesrh/internal/obs"
)

// dbMetrics holds the router-level metric handles — the series that
// exist above any single engine.  Per-shard engine series are folded
// into Metrics() snapshots, not duplicated here.
type dbMetrics struct {
	// Commit routing: transactions settled through the single-shard
	// fast path vs. the cross-shard two-phase path; cross-shard global
	// aborts (user aborts of multi-shard transactions plus presumed
	// aborts triggered by a phase-1 failure).
	singleCommits, crossCommits, crossAborts *obs.Counter

	// crossDelegations counts delegate-out/delegate-in pairs (cross-
	// coordinator transfers; same-shard delegations ride the engines'
	// core.delegations counter).
	crossDelegations *obs.Counter

	// indoubtResolved counts prepared transactions settled at
	// Open/Recover from the coordinator's decision; phase2Failures
	// counts branches left prepared by a post-decision device failure;
	// commitsInDoubt counts commits whose decision force failed — the
	// outcome unknown (ErrInDoubt) until the next Recover reads the
	// coordinator's durable log.
	indoubtResolved, phase2Failures, commitsInDoubt *obs.Counter

	// shards is the configured shard count.
	shards *obs.Gauge

	// crossCommitNs is the end-to-end latency of the two-phase commit
	// path (all prepare forces + decision force + phase 2).
	crossCommitNs *obs.Histogram
}

func bindDBMetrics(r *obs.Registry) dbMetrics {
	return dbMetrics{
		singleCommits:    r.Counter("router.single_shard_commits"),
		crossCommits:     r.Counter("router.cross_shard_commits"),
		crossAborts:      r.Counter("router.cross_shard_aborts"),
		crossDelegations: r.Counter("router.cross_delegations"),
		indoubtResolved:  r.Counter("router.indoubt_resolved"),
		phase2Failures:   r.Counter("router.phase2_failures"),
		commitsInDoubt:   r.Counter("router.commits_indoubt"),
		shards:           r.Gauge("router.shards"),
		crossCommitNs:    r.Histogram("router.cross_commit_ns"),
	}
}

// Metrics returns one snapshot covering the whole cluster.  Router
// series appear under their own names; every engine series appears
// twice — once under "shard.<i>." with its shard's value, and once
// under its base name aggregated across shards (counters and gauges
// sum, histograms merge bucket-wise).  So "core.commits" is the
// cluster-wide commit count and "shard.2.core.commits" is shard 2's
// share.
func (db *DB) Metrics() obs.Snapshot {
	out := db.reg.Snapshot()
	for i, e := range db.engs {
		s := e.Metrics()
		p := fmt.Sprintf("shard.%d.", i)
		for name, v := range s.Counters {
			out.Counters[p+name] = v
			out.Counters[name] += v
		}
		for name, v := range s.Gauges {
			out.Gauges[p+name] = v
			out.Gauges[name] += v
		}
		for name, h := range s.Histograms {
			out.Histograms[p+name] = h
			out.Histograms[name] = out.Histograms[name].Merge(h)
		}
	}
	return out
}

// Registry returns the router-level metric registry (engine registries
// live on the engines; Metrics() folds them together).
func (db *DB) Registry() *obs.Registry { return db.reg }

// LastRecoveryTrace returns the cluster view of the most recent
// recovery: record/visit/loser counts summed across shards, durations
// taken as the maximum over shards (shard recoveries run
// concurrently, so the slowest shard is the cluster's recovery time).
// Per-shard traces are available from RecoveryTraces.
func (db *DB) LastRecoveryTrace() core.RecoveryTrace {
	var out core.RecoveryTrace
	for _, e := range db.engs {
		tr := e.LastRecoveryTrace()
		if tr.ForwardDur > out.ForwardDur {
			out.ForwardDur = tr.ForwardDur
		}
		if tr.BackwardDur > out.BackwardDur {
			out.BackwardDur = tr.BackwardDur
		}
		if tr.TotalDur > out.TotalDur {
			out.TotalDur = tr.TotalDur
		}
		out.Parallel = out.Parallel || tr.Parallel
		out.Segments += tr.Segments
		out.OnDemandReads += tr.OnDemandReads
		out.ForwardRecords += tr.ForwardRecords
		out.Redone += tr.Redone
		out.BackwardVisited += tr.BackwardVisited
		out.BackwardSkipped += tr.BackwardSkipped
		out.Clusters += tr.Clusters
		out.CLRs += tr.CLRs
		out.Losers += tr.Losers
		out.Winners += tr.Winners
	}
	return out
}

// RecoveryTraces returns each shard's trace of its most recent
// recovery, indexed by shard.
func (db *DB) RecoveryTraces() []core.RecoveryTrace {
	out := make([]core.RecoveryTrace, len(db.engs))
	for i, e := range db.engs {
		out[i] = e.LastRecoveryTrace()
	}
	return out
}
