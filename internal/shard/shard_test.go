package shard

import (
	"errors"
	"testing"

	"ariesrh/internal/core"
	"ariesrh/internal/fault"
	"ariesrh/internal/wal"
)

// modRouter routes obj to shard obj % n — deterministic object
// placement for tests (object k lives on shard k%n).
type modRouter struct{}

func (modRouter) Route(obj wal.ObjectID, n int) uint32 { return uint32(uint64(obj) % uint64(n)) }

func openTest(t *testing.T, shards int) *DB {
	t.Helper()
	db, err := Open(Options{
		Shards:      shards,
		GroupCommit: core.GroupCommitOff,
		Router:      modRouter{},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func mustRead(t *testing.T, db *DB, obj wal.ObjectID) string {
	t.Helper()
	v, ok, err := db.ReadCommitted(obj)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		return ""
	}
	return string(v)
}

// TestSingleShardFastPath pins that a transaction touching one shard
// commits through the ordinary engine path: no prepare records, the
// router counts it as single-shard.
func TestSingleShardFastPath(t *testing.T) {
	db := openTest(t, 4)
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	// Objects 4 and 8 both live on shard 0 under modRouter.
	if err := tx.Update(4, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update(8, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	if got := m.Counter("router.single_shard_commits"); got != 1 {
		t.Fatalf("single_shard_commits = %d, want 1", got)
	}
	if got := m.Counter("twopc.prepares"); got != 0 {
		t.Fatalf("twopc.prepares = %d, want 0 on the fast path", got)
	}
	if v := mustRead(t, db, 4); v != "a" {
		t.Fatalf("obj 4 = %q", v)
	}
}

// TestReadOnlyParticipantsSkipPrepare pins the read-only optimization:
// a transaction that reads on one shard and writes on another commits
// through the fast path (the read-only branch just aborts, releasing
// its locks — presumed abort already describes it).
func TestReadOnlyParticipantsSkipPrepare(t *testing.T) {
	db := openTest(t, 2)
	seed, _ := db.Begin()
	seed.Update(1, []byte("s1")) // shard 1
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	if _, err := tx.Read(1); err != nil { // shard 1, read-only
		t.Fatal(err)
	}
	if err := tx.Update(2, []byte("w")); err != nil { // shard 0
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	if got := m.Counter("twopc.prepares"); got != 0 {
		t.Fatalf("twopc.prepares = %d, want 0 (read-only branch must not vote)", got)
	}
	if got := m.Counter("router.single_shard_commits"); got != 2 {
		t.Fatalf("single_shard_commits = %d, want 2", got)
	}
	// The read lock on shard 1 was released: a writer proceeds.
	w, _ := db.Begin()
	if err := w.Update(1, []byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestCrossShardCommitSurvivesCrash is the basic 2PC happy path: a
// two-shard transaction commits, the cluster crashes, and recovery
// keeps both branches' effects.
func TestCrossShardCommitSurvivesCrash(t *testing.T) {
	db := openTest(t, 2)
	tx, _ := db.Begin()
	if err := tx.Update(10, []byte("even")); err != nil { // shard 0 (coordinator)
		t.Fatal(err)
	}
	if err := tx.Update(11, []byte("odd")); err != nil { // shard 1
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	if got := m.Counter("router.cross_shard_commits"); got != 1 {
		t.Fatalf("cross_shard_commits = %d, want 1", got)
	}
	// Coordinator + one participant each voted.
	if got := m.Counter("twopc.prepares"); got != 2 {
		t.Fatalf("twopc.prepares = %d, want 2", got)
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	if v := mustRead(t, db, 10); v != "even" {
		t.Fatalf("obj 10 = %q after crash", v)
	}
	if v := mustRead(t, db, 11); v != "odd" {
		t.Fatalf("obj 11 = %q after crash", v)
	}
}

// TestGlobalAbortRollsBackAllShards: a user abort of a multi-shard
// transaction undoes every branch.
func TestGlobalAbortRollsBackAllShards(t *testing.T) {
	db := openTest(t, 2)
	tx, _ := db.Begin()
	tx.Update(20, []byte("x"))
	tx.Update(21, []byte("y"))
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if v := mustRead(t, db, 20); v != "" {
		t.Fatalf("obj 20 = %q after global abort", v)
	}
	if v := mustRead(t, db, 21); v != "" {
		t.Fatalf("obj 21 = %q after global abort", v)
	}
}

// TestPresumedAbortAfterCrash drives phase 1 by hand: a participant's
// vote is durable but no decision is, the cluster crashes, and sharded
// recovery resolves the in-doubt branch by presumed abort — both
// branches rolled back.
func TestPresumedAbortAfterCrash(t *testing.T) {
	db := openTest(t, 2)
	tx, _ := db.Begin()
	tx.Update(30, []byte("c")) // shard 0 = coordinator
	tx.Update(31, []byte("p")) // shard 1 = participant
	p, ok := tx.Local(1)
	if !ok {
		t.Fatal("no local txn on shard 1")
	}
	// Participant votes; coordinator never decides.
	if err := db.Engine(1).Prepare(p, tx.GID(), 0); err != nil {
		t.Fatal(err)
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	if v := mustRead(t, db, 30); v != "" {
		t.Fatalf("coordinator branch survived: obj 30 = %q", v)
	}
	if v := mustRead(t, db, 31); v != "" {
		t.Fatalf("prepared branch survived presumed abort: obj 31 = %q", v)
	}
	if got := db.Metrics().Counter("router.indoubt_resolved"); got != 1 {
		t.Fatalf("indoubt_resolved = %d, want 1", got)
	}
	if got := db.Metrics().Counter("twopc.indoubt_aborted"); got != 1 {
		t.Fatalf("twopc.indoubt_aborted = %d, want 1", got)
	}
}

// TestInDoubtCommitResolvedFromCoordinator drives the window between
// the decision force and phase 2: the participant is prepared, the
// coordinator's commit decision is durable, the cluster crashes before
// the participant learns the outcome.  Recovery must commit the
// participant's branch from the coordinator's retained decision.
func TestInDoubtCommitResolvedFromCoordinator(t *testing.T) {
	db := openTest(t, 2)
	tx, _ := db.Begin()
	tx.Update(40, []byte("c")) // shard 0 = coordinator
	tx.Update(41, []byte("p")) // shard 1 = participant
	c, _ := tx.Local(0)
	p, _ := tx.Local(1)
	gid := tx.GID()
	if err := db.Engine(1).Prepare(p, gid, 0); err != nil {
		t.Fatal(err)
	}
	if err := db.Engine(0).Prepare(c, gid, 0); err != nil {
		t.Fatal(err)
	}
	if err := db.Engine(0).CommitPrepared(c); err != nil {
		t.Fatal(err)
	}
	// Crash before phase 2 reaches the participant.
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	if v := mustRead(t, db, 40); v != "c" {
		t.Fatalf("coordinator branch lost: obj 40 = %q", v)
	}
	if v := mustRead(t, db, 41); v != "p" {
		t.Fatalf("participant branch lost the committed decision: obj 41 = %q", v)
	}
	if got := db.Metrics().Counter("twopc.indoubt_committed"); got != 1 {
		t.Fatalf("twopc.indoubt_committed = %d, want 1", got)
	}
	// Resolution released the retained decision everywhere.
	if db.Engine(0).GlobalDecision(gid) {
		t.Fatal("decision still retained after full resolution")
	}
}

// TestCrossShardDelegation is the headline primitive: responsibility
// for an update moves to a global transaction coordinated on another
// shard; the delegator's abort no longer touches it, the delegatee's
// commit makes it permanent, and the whole history survives a crash.
func TestCrossShardDelegation(t *testing.T) {
	db := openTest(t, 2)
	t1, _ := db.Begin()
	if err := t1.Update(50, []byte("anchor-t1")); err != nil { // shard 0: t1 coordinates there
		t.Fatal(err)
	}
	if err := t1.Update(51, []byte("delegated")); err != nil { // shard 1
		t.Fatal(err)
	}
	t2, _ := db.Begin()
	if err := t2.Update(52, []byte("anchor-t2")); err != nil { // shard 0: t2 coordinates there
		t.Fatal(err)
	}
	// Move responsibility for object 51 (home shard 1) to t2, whose
	// coordinator is shard 0 → delegate-out on shard 1, delegate-in on
	// shard 0.
	if err := t1.Delegate(t2, 51); err != nil {
		t.Fatal(err)
	}
	if got := db.Metrics().Counter("router.cross_delegations"); got != 1 {
		t.Fatalf("cross_delegations = %d, want 1", got)
	}
	// The delegator aborts: its own update dies, the delegated one is
	// now t2's responsibility and survives.
	if err := t1.Abort(); err != nil {
		t.Fatal(err)
	}
	if v := mustRead(t, db, 50); v != "" {
		t.Fatalf("t1's own update survived its abort: obj 50 = %q", v)
	}
	// t2 commits cross-shard (wrote on shard 0; responsible on shard 1
	// via the delegation).
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if v := mustRead(t, db, 51); v != "delegated" {
		t.Fatalf("delegated update lost: obj 51 = %q", v)
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	if v := mustRead(t, db, 51); v != "delegated" {
		t.Fatalf("delegated update lost across crash: obj 51 = %q", v)
	}
	if v := mustRead(t, db, 52); v != "anchor-t2" {
		t.Fatalf("obj 52 = %q", v)
	}
}

// TestCrossShardDelegationAbortUndoesLocally: the delegatee's abort
// (or a crash before it commits) obliterates the delegated update via
// the home shard's own backward pass — no cross-shard undo exists.
func TestCrossShardDelegationAbortUndoesLocally(t *testing.T) {
	for _, crash := range []bool{false, true} {
		db := openTest(t, 2)
		t1, _ := db.Begin()
		t1.Update(60, []byte("anchor"))    // shard 0
		t1.Update(61, []byte("tentative")) // shard 1
		t2, _ := db.Begin()
		t2.Update(62, []byte("t2")) // shard 0: coordinator
		if err := t1.Delegate(t2, 61); err != nil {
			t.Fatal(err)
		}
		if err := t1.Abort(); err != nil {
			t.Fatal(err)
		}
		if crash {
			if err := db.Crash(); err != nil {
				t.Fatal(err)
			}
			if err := db.Recover(); err != nil {
				t.Fatal(err)
			}
		} else if err := t2.Abort(); err != nil {
			t.Fatal(err)
		}
		if v := mustRead(t, db, 61); v != "" {
			t.Fatalf("crash=%v: delegated update survived delegatee's demise: obj 61 = %q", crash, v)
		}
	}
}

// TestDelegationToSameShardStaysLocal: when the delegatee coordinates
// on the object's own home shard, Delegate degenerates to the plain
// local primitive — no cross-shard records.
func TestDelegationToSameShardStaysLocal(t *testing.T) {
	db := openTest(t, 2)
	t1, _ := db.Begin()
	t1.Update(71, []byte("v")) // shard 1; t1 coordinates on shard 1
	t2, _ := db.Begin()
	if err := t1.Delegate(t2, 71); err != nil { // t2's first touch: shard 1 → local
		t.Fatal(err)
	}
	if got := db.Metrics().Counter("router.cross_delegations"); got != 0 {
		t.Fatalf("cross_delegations = %d, want 0 for a same-shard delegation", got)
	}
	if got := db.Metrics().Counter("twopc.delegate_out"); got != 0 {
		t.Fatalf("twopc.delegate_out = %d, want 0", got)
	}
	if err := t1.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if v := mustRead(t, db, 71); v != "v" {
		t.Fatalf("obj 71 = %q", v)
	}
}

// TestDecisionForceFailureLeavesInDoubt is the failed-decision
// regression: when the coordinator's decision force fails, the commit
// record may or may not be durable, so Commit must not abort ANY
// branch — a durable participant abort could contradict a durable
// commit decision.  Instead every branch stays prepared (ErrInDoubt)
// and the next Recover settles them all from the coordinator's durable
// log — here by presumed abort, since the frozen device never got the
// record.
func TestDecisionForceFailureLeavesInDoubt(t *testing.T) {
	// The scenario, identical across both runs: a two-shard transaction,
	// shard 0 coordinating.  With group commit off, shard 0's last sync
	// is the decision force.
	run := func(dirs []wal.Dir) (*DB, error) {
		db, err := Open(Options{Shards: 2, LogDirs: dirs, GroupCommit: core.GroupCommitOff, Router: modRouter{}})
		if err != nil {
			t.Fatal(err)
		}
		tx, _ := db.Begin()
		if err := tx.Update(130, []byte("c")); err != nil { // shard 0 = coordinator
			t.Fatal(err)
		}
		if err := tx.Update(131, []byte("p")); err != nil { // shard 1
			t.Fatal(err)
		}
		return db, tx.Commit()
	}

	// Probe: count shard 0's syncs over a clean run of the scenario.
	probe := fault.NewDir(fault.Plan{})
	db, err := run([]wal.Dir{probe, fault.NewDir(fault.Plan{})})
	if err != nil {
		t.Fatalf("probe commit: %v", err)
	}
	syncs := probe.Syncs()
	db.Close()

	// Real run: freeze shard 0's device right before the decision force,
	// so the coordinator's prepare is durable but the decision fails.
	fds := []*fault.Dir{
		fault.NewDir(fault.Plan{CrashAtSync: syncs - 1}),
		fault.NewDir(fault.Plan{}),
	}
	db, err = run([]wal.Dir{fds[0], fds[1]})
	if !errors.Is(err, ErrInDoubt) {
		t.Fatalf("Commit = %v, want ErrInDoubt", err)
	}
	// Nothing was aborted: both branches are in doubt, locks held.
	if n := len(db.Engine(0).InDoubt()); n != 1 {
		t.Fatalf("coordinator in-doubt count = %d, want 1", n)
	}
	if n := len(db.Engine(1).InDoubt()); n != 1 {
		t.Fatalf("participant in-doubt count = %d, want 1", n)
	}
	if got := db.Metrics().Counter("router.commits_indoubt"); got != 1 {
		t.Fatalf("commits_indoubt = %d, want 1", got)
	}

	// Crash and recover: the commit record never reached the device, so
	// presumed abort settles both branches, and nothing stays in doubt.
	for _, fd := range fds {
		if _, err := fd.CrashNow(); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	if v := mustRead(t, db, 130); v != "" {
		t.Fatalf("coordinator branch survived an undurable decision: obj 130 = %q", v)
	}
	if v := mustRead(t, db, 131); v != "" {
		t.Fatalf("participant branch survived an undurable decision: obj 131 = %q", v)
	}
	if got := db.Metrics().Counter("router.indoubt_resolved"); got != 2 {
		t.Fatalf("indoubt_resolved = %d, want 2", got)
	}
}

// TestDelegateInRidesCommitCoordinator pins where the delegate-in
// record lands: on the delegatee's commit coordinator — its first
// WRITTEN shard — not its first-touched shard.  Here t2 first touches
// shard 0 read-only and first writes on shard 1, so shard 1 is the
// decision log and must carry the delegate-in.
func TestDelegateInRidesCommitCoordinator(t *testing.T) {
	db := openTest(t, 3)
	seed, _ := db.Begin()
	if err := seed.Update(3, []byte("s")); err != nil { // shard 0
		t.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	t1, _ := db.Begin()
	if err := t1.Update(5, []byte("d")); err != nil { // shard 2 (home of the delegation)
		t.Fatal(err)
	}
	t2, _ := db.Begin()
	if _, err := t2.Read(3); err != nil { // shard 0: t2's first touch, read-only
		t.Fatal(err)
	}
	if err := t2.Update(4, []byte("w")); err != nil { // shard 1: first write = coordinator
		t.Fatal(err)
	}
	if err := t1.Delegate(t2, 5); err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	if got := m.Counter("shard.1.twopc.delegate_in"); got != 1 {
		t.Fatalf("shard.1.twopc.delegate_in = %d, want 1 (the decision log)", got)
	}
	if got := m.Counter("shard.0.twopc.delegate_in"); got != 0 {
		t.Fatalf("shard.0.twopc.delegate_in = %d, want 0 (read-only anchor must not carry it)", got)
	}
	if err := t1.Abort(); err != nil {
		t.Fatal(err)
	}
	gid := t2.GID()
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if v := mustRead(t, db, 5); v != "d" {
		t.Fatalf("delegated update lost: obj 5 = %q", v)
	}
	// A fully-settled cross-shard commit retains no decision anywhere:
	// the coordinator released its entry, and participants never retain
	// one (each leaked entry would pin that shard's archive forever).
	for i := 0; i < db.Shards(); i++ {
		if db.Engine(i).GlobalDecision(gid) {
			t.Fatalf("shard %d still retains the decision for gid %d after full phase 2", i, gid)
		}
	}
}

// TestGIDCounterReseededAfterRecovery: global ids never repeat across
// a crash — the counter restarts above every id the logs have seen.
func TestGIDCounterReseededAfterRecovery(t *testing.T) {
	db := openTest(t, 2)
	tx, _ := db.Begin()
	tx.Update(80, []byte("a"))
	tx.Update(81, []byte("b"))
	gid := tx.GID()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	next, _ := db.Begin()
	if next.GID() <= gid {
		t.Fatalf("gid %d reused after recovery (previous %d)", next.GID(), gid)
	}
}

// TestMetricsAggregation pins the snapshot contract: per-shard series
// under shard.<i>., base names summed across shards, router series on
// top.
func TestMetricsAggregation(t *testing.T) {
	db := openTest(t, 2)
	a, _ := db.Begin()
	a.Update(90, []byte("s0"))
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	b, _ := db.Begin()
	b.Update(91, []byte("s1"))
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	if got := m.Counter("shard.0.core.commits"); got != 1 {
		t.Fatalf("shard.0.core.commits = %d, want 1", got)
	}
	if got := m.Counter("shard.1.core.commits"); got != 1 {
		t.Fatalf("shard.1.core.commits = %d, want 1", got)
	}
	if got := m.Counter("core.commits"); got != 2 {
		t.Fatalf("aggregated core.commits = %d, want 2", got)
	}
	if got := m.Gauge("router.shards"); got != 2 {
		t.Fatalf("router.shards = %d, want 2", got)
	}
	// Histograms merge: per-shard counts sum into the base series.
	base := m.Histogram("core.commit_ns")
	if base.Count != m.Histogram("shard.0.core.commit_ns").Count+m.Histogram("shard.1.core.commit_ns").Count {
		t.Fatal("aggregated commit_ns count is not the sum of the shard series")
	}
}

// TestShardedRecoveryTrace: after a crash and recovery the merged
// trace sums counts across shards.
func TestShardedRecoveryTrace(t *testing.T) {
	db := openTest(t, 2)
	tx, _ := db.Begin()
	tx.Update(100, []byte("a"))
	tx.Update(101, []byte("b"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	tr := db.LastRecoveryTrace()
	if tr.ForwardRecords == 0 {
		t.Fatal("merged trace shows no forward records")
	}
	per := db.RecoveryTraces()
	if len(per) != 2 {
		t.Fatalf("RecoveryTraces returned %d entries", len(per))
	}
	var sum uint64
	for _, p := range per {
		sum += p.ForwardRecords
	}
	if tr.ForwardRecords != sum {
		t.Fatalf("merged ForwardRecords %d != per-shard sum %d", tr.ForwardRecords, sum)
	}
}

// TestFileBackedReopen: a sharded database over real files reopens
// with all committed state, resolving nothing (clean shutdown).
func TestFileBackedReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Shards: 2, Dir: dir, Router: modRouter{}, GroupCommit: core.GroupCommitOff})
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	tx.Update(110, []byte("f0"))
	tx.Update(111, []byte("f1"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Options{Shards: 2, Dir: dir, Router: modRouter{}, GroupCommit: core.GroupCommitOff})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if v := mustRead(t, db2, 110); v != "f0" {
		t.Fatalf("obj 110 = %q after reopen", v)
	}
	if v := mustRead(t, db2, 111); v != "f1" {
		t.Fatalf("obj 111 = %q after reopen", v)
	}
}

// TestParallelRecoverySharded: the instant-restart pipeline per shard
// composes with in-doubt resolution — Recover returns with all shards
// writable and the in-doubt branch settled.
func TestParallelRecoverySharded(t *testing.T) {
	db, err := Open(Options{Shards: 2, Router: modRouter{}, GroupCommit: core.GroupCommitOff, ParallelRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	tx.Update(120, []byte("c"))
	tx.Update(121, []byte("p"))
	c, _ := tx.Local(0)
	p, _ := tx.Local(1)
	if err := db.Engine(1).Prepare(p, tx.GID(), 0); err != nil {
		t.Fatal(err)
	}
	if err := db.Engine(0).Prepare(c, tx.GID(), 0); err != nil {
		t.Fatal(err)
	}
	if err := db.Engine(0).CommitPrepared(c); err != nil {
		t.Fatal(err)
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	if v := mustRead(t, db, 121); v != "p" {
		t.Fatalf("obj 121 = %q after parallel sharded recovery", v)
	}
	w, _ := db.Begin()
	if err := w.Update(120, []byte("post")); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestBadShardConfigs pins Open's validation.
func TestBadShardConfigs(t *testing.T) {
	if _, err := Open(Options{Shards: 0}); err == nil {
		t.Fatal("Shards=0 accepted")
	}
	if _, err := Open(Options{Shards: 2, LogDirs: []wal.Dir{wal.NewMemDir()}}); err == nil {
		t.Fatal("mismatched LogDirs accepted")
	}
}
