package shard

import (
	"errors"
	"time"

	"ariesrh/internal/core"
	"ariesrh/internal/wal"
)

// Txn is a global transaction: a set of lazily-begun local
// transactions, one per shard it touches.  At commit, the first shard
// the transaction wrote on becomes the coordinator — the shard whose
// log will carry the commit decision; read-only branches never vote.
// A Txn is not safe for concurrent use by multiple goroutines;
// distinct Txn values are.
type Txn struct {
	db  *DB
	gid uint64

	// local maps each touched shard to the global transaction's local
	// transaction there; order records the touch sequence (order[0] is
	// the anchor shard cross-shard delegations are recorded against);
	// wrote marks shards holding undoable work (an update, increment,
	// or responsibility acquired by delegation) — the first written
	// shard coordinates commit, read-only branches skip the prepare
	// force and simply abort.
	local map[uint32]wal.TxID
	order []uint32
	wrote map[uint32]bool
	done  bool
}

// Begin starts a global transaction.  No shard is touched (and no
// coordinator chosen) until the first operation routes somewhere.
func (db *DB) Begin() (*Txn, error) {
	db.mu.Lock()
	gid := db.nextGID
	db.nextGID++
	db.mu.Unlock()
	return &Txn{
		db:    db,
		gid:   gid,
		local: make(map[uint32]wal.TxID),
		wrote: make(map[uint32]bool),
	}, nil
}

// GID returns the transaction's cluster-wide identifier.  It appears
// durably only on the logs of transactions that prepared (or received
// a cross-shard delegation); single-shard transactions never log it.
func (t *Txn) GID() uint64 { return t.gid }

// Shards returns the shards this transaction has touched, in touch
// order; the first entry is the coordinator.
func (t *Txn) Shards() []uint32 {
	out := make([]uint32, len(t.order))
	copy(out, t.order)
	return out
}

// Local returns the global transaction's local transaction id on
// shard s, if it has touched that shard.  Exposed for tests and the
// torture harness, which drive two-phase state through the engines
// directly to build crash schedules.
func (t *Txn) Local(s uint32) (wal.TxID, bool) {
	id, ok := t.local[s]
	return id, ok
}

// ensureLocal returns the transaction's local transaction on shard s,
// beginning one (and recording the touch) on first use.
func (t *Txn) ensureLocal(s uint32) (wal.TxID, error) {
	if id, ok := t.local[s]; ok {
		return id, nil
	}
	id, err := t.db.engs[s].Begin()
	if err != nil {
		return 0, err
	}
	t.local[s] = id
	t.order = append(t.order, s)
	return id, nil
}

// coord returns the transaction's anchor shard — the first shard it
// touched, where incoming cross-shard delegations are recorded.
// (Commit's coordinator is the first WRITTEN shard; a delegation makes
// its home shard written, so for any transaction that acquires data
// cross-shard before writing elsewhere the two coincide with its
// anchor only if the anchor wrote.)  Valid only after the first touch.
func (t *Txn) coord() uint32 { return t.order[0] }

// Read returns the transaction's view of obj under a shared lock on
// obj's home shard.
func (t *Txn) Read(obj wal.ObjectID) ([]byte, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	s := t.db.Route(obj)
	id, err := t.ensureLocal(s)
	if err != nil {
		return nil, err
	}
	return t.db.engs[s].Read(id, obj)
}

// Update sets obj to val under an exclusive lock on obj's home shard,
// logging before/after images there.  Durability arrives with the
// global commit (single-shard: the commit force; cross-shard: the
// prepare force of the home shard's local transaction).
func (t *Txn) Update(obj wal.ObjectID, val []byte) error {
	if t.done {
		return ErrTxnDone
	}
	s := t.db.Route(obj)
	id, err := t.ensureLocal(s)
	if err != nil {
		return err
	}
	if err := t.db.engs[s].Update(id, obj, val); err != nil {
		return err
	}
	t.wrote[s] = true
	return nil
}

// Increment adds delta to the counter obj on its home shard and
// returns the new value.
func (t *Txn) Increment(obj wal.ObjectID, delta int64) (int64, error) {
	if t.done {
		return 0, ErrTxnDone
	}
	s := t.db.Route(obj)
	id, err := t.ensureLocal(s)
	if err != nil {
		return 0, err
	}
	v, err := t.db.engs[s].Increment(id, obj, delta)
	if err != nil {
		return 0, err
	}
	t.wrote[s] = true
	return v, nil
}

// ReadCounter returns the transaction's view of the counter obj under
// a shared lock on its home shard.
func (t *Txn) ReadCounter(obj wal.ObjectID) (int64, error) {
	if t.done {
		return 0, ErrTxnDone
	}
	s := t.db.Route(obj)
	id, err := t.ensureLocal(s)
	if err != nil {
		return 0, err
	}
	return t.db.engs[s].ReadCounter(id, obj)
}

// Delegate transfers responsibility for t's updates on obj over to the
// global transaction `to` — the paper's delegate(t1, t2, ob) lifted
// across shards.  The transfer is always performed between the two
// transactions' LOCAL transactions on obj's home shard, so undo (and
// recovery's cluster sweep) never crosses a shard boundary.  When the
// delegatee's coordinator is a different shard, the home shard logs a
// delegate-out record naming the delegatee's global id and coordinator
// shard, and the coordinator shard logs a matching delegate-in; both
// are unforced — durability rides the delegatee's eventual
// prepare/commit forces, exactly like an ordinary update.
//
// Crash contract: a crash before the delegatee commits aborts both
// global transactions (presumed abort), and each shard's local
// backward pass undoes the delegated scope wherever it currently
// lives — no cross-shard undo exists.
func (t *Txn) Delegate(to *Txn, obj wal.ObjectID) error {
	if t.done || to.done {
		return ErrTxnDone
	}
	home := t.db.Route(obj)
	torL, ok := t.local[home]
	if !ok {
		// Never touched the object's shard → holds no updates there.
		return core.ErrNotResponsible
	}
	teeL, err := to.ensureLocal(home)
	if err != nil {
		return err
	}
	if to.coord() == home {
		// The delegatee coordinates on the object's own shard: a plain
		// local delegation, byte-identical to the unsharded primitive.
		if err := t.db.engs[home].Delegate(torL, teeL, obj); err != nil {
			return err
		}
	} else {
		coordShard := to.coord()
		if err := t.db.engs[home].DelegateOut(torL, teeL, obj, to.gid, coordShard); err != nil {
			return err
		}
		if err := t.db.engs[coordShard].DelegateIn(to.local[coordShard], obj, to.gid, home); err != nil {
			return err
		}
		t.db.met.crossDelegations.Inc()
	}
	// The delegatee is now responsible for undoable history on home.
	to.wrote[home] = true
	return nil
}

// Commit makes every update the transaction is responsible for
// permanent, across all shards it touched.
//
// A transaction that touched one shard (or wrote on at most one)
// commits through that engine's ordinary commit path — group commit,
// early lock release and all — with no two-phase overhead; read-only
// locks on other shards are simply released.
//
// A transaction that wrote on several shards runs two-phase commit on
// the participants' own logs, coordinated by the first shard it wrote
// on: each other writing participant forces a prepare record (its
// vote, binding the global id and coordinator shard), then the
// coordinator's local transaction prepares and commits — that forced
// commit record is the global decision — and finally the participants
// commit.  A nil return means the decision
// record is on the coordinator shard's stable storage: the transaction
// is globally committed and will survive any crash.  Any failure
// before the decision is durable aborts every branch (presumed abort)
// and returns the cause.  A participant failure AFTER the decision
// (degraded device) leaves that branch prepared and the decision
// retained — pinning the coordinator's archive — so the next
// Recover resolves it; Commit still returns nil, because the global
// outcome is decided.
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	if len(t.order) == 0 {
		t.done = true
		return nil
	}

	// Release read-only branches first: they hold no undoable work, so
	// presumed abort already describes them — no vote, no force.  What
	// remains are the writers; the first of them coordinates (its log
	// carries the decision).
	var writers []uint32
	for _, s := range t.order {
		if t.wrote[s] {
			writers = append(writers, s)
		} else if err := t.db.engs[s].Abort(t.local[s]); err != nil {
			return err
		}
	}
	if len(writers) == 0 {
		t.done = true
		return nil
	}
	coord := writers[0]
	parts := writers[1:] // non-coordinator shards that must vote

	if len(parts) == 0 {
		// Single-shard fast path: the ordinary commit, untouched.
		if err := t.db.engs[coord].Commit(t.local[coord]); err != nil {
			if errors.Is(err, core.ErrCommitAborted) {
				// The early-lock-release rollback terminated the local
				// transaction; the global handle is dead too.
				t.done = true
			}
			return err
		}
		t.done = true
		t.db.met.singleCommits.Inc()
		return nil
	}

	start := time.Now()
	// Phase 1: participants vote by forced prepare record.
	var prepared []uint32
	for _, s := range parts {
		if err := t.db.engs[s].Prepare(t.local[s], t.gid, coord); err != nil {
			t.abortBranches(prepared, coord, true)
			return err
		}
		prepared = append(prepared, s)
	}
	// The coordinator prepares too — binding the gid durably on the
	// decision log — then commits; the forced commit record is the
	// global decision.
	if err := t.db.engs[coord].Prepare(t.local[coord], t.gid, coord); err != nil {
		t.abortBranches(prepared, coord, true)
		return err
	}
	if err := t.db.engs[coord].CommitPrepared(t.local[coord]); err != nil {
		// No decision is durable: presumed abort, everywhere.
		t.db.engs[coord].AbortPrepared(t.local[coord])
		t.abortBranches(prepared, coord, false)
		return err
	}
	// Decision durable.  Phase 2: commit the participants.
	var stuck bool
	for _, s := range parts {
		if err := t.db.engs[s].CommitPrepared(t.local[s]); err != nil {
			// The branch stays prepared on a (likely degraded) shard;
			// recovery will resolve it from the retained decision.
			stuck = true
			t.db.met.phase2Failures.Inc()
		}
	}
	if !stuck {
		// All branches settled: the decision needs no retaining, and
		// the coordinator's archive is unpinned.
		t.db.engs[coord].ReleaseGlobal(t.gid)
	}
	t.done = true
	t.db.met.crossCommits.Inc()
	t.db.met.crossCommitNs.Observe(time.Since(start))
	return nil
}

// abortBranches rolls back phase-1 state: AbortPrepared on every shard
// in preparedShards, plain Abort on the coordinator's still-active
// branch when abortCoord.  Best-effort — the error that triggered the
// abort is what the caller reports; a branch that cannot abort
// (degraded shard) is left for recovery, which re-aborts it by
// presumed abort.
func (t *Txn) abortBranches(preparedShards []uint32, coord uint32, abortCoord bool) {
	for _, s := range preparedShards {
		t.db.engs[s].AbortPrepared(t.local[s])
	}
	if abortCoord {
		t.db.engs[coord].Abort(t.local[coord])
	}
	t.done = true
	t.db.met.crossAborts.Inc()
}

// Abort rolls back every branch on every shard the transaction
// touched.  Same crash contract as the single-engine abort: a nil
// return means the rollback took effect in volatile state everywhere;
// durability is unnecessary — a crash simply makes each shard's
// recovery re-abort its branch (presumed abort for any that managed to
// prepare in a concurrent Commit, ordinary loser undo otherwise).
func (t *Txn) Abort() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	var first error
	for _, s := range t.order {
		if err := t.db.engs[s].Abort(t.local[s]); err != nil && first == nil {
			first = err
		}
	}
	if len(t.order) > 1 {
		t.db.met.crossAborts.Inc()
	}
	return first
}

// Done reports whether the transaction was terminated through this
// handle.
func (t *Txn) Done() bool { return t.done }
