package shard

import (
	"errors"
	"fmt"
	"time"

	"ariesrh/internal/core"
	"ariesrh/internal/wal"
)

// Txn is a global transaction: a set of lazily-begun local
// transactions, one per shard it touches.  The first shard the
// transaction writes on becomes the coordinator — the shard whose log
// will carry the commit decision; it is fixed from that first write
// on, so cross-shard delegation records always name the actual
// decision log.  Read-only branches never vote.  A Txn is not safe
// for concurrent use by multiple goroutines; distinct Txn values are.
type Txn struct {
	db  *DB
	gid uint64

	// local maps each touched shard to the global transaction's local
	// transaction there; order records the touch sequence; wrote marks
	// shards holding undoable work (an update, increment, or
	// responsibility acquired by delegation), with writeOrder recording
	// the order shards first gained it — writeOrder[0] is the commit
	// coordinator, stable from the transaction's first write.  Read-only
	// branches skip the prepare force and simply abort.
	local      map[uint32]wal.TxID
	order      []uint32
	wrote      map[uint32]bool
	writeOrder []uint32
	done       bool
}

// Begin starts a global transaction.  No shard is touched (and no
// coordinator chosen) until the first operation routes somewhere.
func (db *DB) Begin() (*Txn, error) {
	db.mu.Lock()
	gid := db.nextGID
	db.nextGID++
	db.mu.Unlock()
	return &Txn{
		db:    db,
		gid:   gid,
		local: make(map[uint32]wal.TxID),
		wrote: make(map[uint32]bool),
	}, nil
}

// GID returns the transaction's cluster-wide identifier.  It appears
// durably only on the logs of transactions that prepared (or received
// a cross-shard delegation); single-shard transactions never log it.
func (t *Txn) GID() uint64 { return t.gid }

// Shards returns the shards this transaction has touched, in touch
// order.  The commit coordinator is the first shard it WROTE on, which
// need not be the first it touched.
func (t *Txn) Shards() []uint32 {
	out := make([]uint32, len(t.order))
	copy(out, t.order)
	return out
}

// Local returns the global transaction's local transaction id on
// shard s, if it has touched that shard.  Exposed for tests and the
// torture harness, which drive two-phase state through the engines
// directly to build crash schedules.
func (t *Txn) Local(s uint32) (wal.TxID, bool) {
	id, ok := t.local[s]
	return id, ok
}

// ensureLocal returns the transaction's local transaction on shard s,
// beginning one (and recording the touch) on first use.
func (t *Txn) ensureLocal(s uint32) (wal.TxID, error) {
	if id, ok := t.local[s]; ok {
		return id, nil
	}
	id, err := t.db.engs[s].Begin()
	if err != nil {
		return 0, err
	}
	t.local[s] = id
	t.order = append(t.order, s)
	return id, nil
}

// markWrote records that shard s holds undoable work of this
// transaction.  The first marked shard becomes — and remains — the
// commit coordinator.
func (t *Txn) markWrote(s uint32) {
	if !t.wrote[s] {
		t.wrote[s] = true
		t.writeOrder = append(t.writeOrder, s)
	}
}

// Read returns the transaction's view of obj under a shared lock on
// obj's home shard.
func (t *Txn) Read(obj wal.ObjectID) ([]byte, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	s := t.db.Route(obj)
	id, err := t.ensureLocal(s)
	if err != nil {
		return nil, err
	}
	return t.db.engs[s].Read(id, obj)
}

// Update sets obj to val under an exclusive lock on obj's home shard,
// logging before/after images there.  Durability arrives with the
// global commit (single-shard: the commit force; cross-shard: the
// prepare force of the home shard's local transaction).
func (t *Txn) Update(obj wal.ObjectID, val []byte) error {
	if t.done {
		return ErrTxnDone
	}
	s := t.db.Route(obj)
	id, err := t.ensureLocal(s)
	if err != nil {
		return err
	}
	if err := t.db.engs[s].Update(id, obj, val); err != nil {
		return err
	}
	t.markWrote(s)
	return nil
}

// Increment adds delta to the counter obj on its home shard and
// returns the new value.
func (t *Txn) Increment(obj wal.ObjectID, delta int64) (int64, error) {
	if t.done {
		return 0, ErrTxnDone
	}
	s := t.db.Route(obj)
	id, err := t.ensureLocal(s)
	if err != nil {
		return 0, err
	}
	v, err := t.db.engs[s].Increment(id, obj, delta)
	if err != nil {
		return 0, err
	}
	t.markWrote(s)
	return v, nil
}

// ReadCounter returns the transaction's view of the counter obj under
// a shared lock on its home shard.
func (t *Txn) ReadCounter(obj wal.ObjectID) (int64, error) {
	if t.done {
		return 0, ErrTxnDone
	}
	s := t.db.Route(obj)
	id, err := t.ensureLocal(s)
	if err != nil {
		return 0, err
	}
	return t.db.engs[s].ReadCounter(id, obj)
}

// Delegate transfers responsibility for t's updates on obj over to the
// global transaction `to` — the paper's delegate(t1, t2, ob) lifted
// across shards.  The transfer is always performed between the two
// transactions' LOCAL transactions on obj's home shard, so undo (and
// recovery's cluster sweep) never crosses a shard boundary.  When the
// delegatee's commit coordinator — its first written shard, fixed from
// that write on; the home shard itself when this delegation is its
// first write — is a different shard, the home shard logs a
// delegate-out record naming the delegatee's global id and coordinator
// shard, and the coordinator shard logs a matching delegate-in, so the
// log that will carry (or durably lack) the commit decision also tells
// the acquisition story.  Both records are unforced — durability rides
// the delegatee's eventual prepare/commit forces, exactly like an
// ordinary update.
//
// Crash contract: a crash before the delegatee commits aborts both
// global transactions (presumed abort), and each shard's local
// backward pass undoes the delegated scope wherever it currently
// lives — no cross-shard undo exists.
func (t *Txn) Delegate(to *Txn, obj wal.ObjectID) error {
	if t.done || to.done {
		return ErrTxnDone
	}
	home := t.db.Route(obj)
	torL, ok := t.local[home]
	if !ok {
		// Never touched the object's shard → holds no updates there.
		return core.ErrNotResponsible
	}
	teeL, err := to.ensureLocal(home)
	if err != nil {
		return err
	}
	// The delegatee's coordinator: its first written shard, or — when
	// this delegation is its first undoable work — the home shard
	// itself, which the markWrote below then fixes as coordinator.
	coordShard := home
	if len(to.writeOrder) > 0 {
		coordShard = to.writeOrder[0]
	}
	if coordShard == home {
		// The delegatee coordinates on the object's own shard: a plain
		// local delegation, byte-identical to the unsharded primitive.
		if err := t.db.engs[home].Delegate(torL, teeL, obj); err != nil {
			return err
		}
	} else {
		if err := t.db.engs[home].DelegateOut(torL, teeL, obj, to.gid, coordShard); err != nil {
			return err
		}
		if err := t.db.engs[coordShard].DelegateIn(to.local[coordShard], obj, to.gid, home); err != nil {
			return err
		}
		t.db.met.crossDelegations.Inc()
	}
	// The delegatee is now responsible for undoable history on home.
	to.markWrote(home)
	return nil
}

// Commit makes every update the transaction is responsible for
// permanent, across all shards it touched.
//
// A transaction that touched one shard (or wrote on at most one)
// commits through that engine's ordinary commit path — group commit,
// early lock release and all — with no two-phase overhead; read-only
// locks on other shards are simply released.
//
// A transaction that wrote on several shards runs two-phase commit on
// the participants' own logs, coordinated by the first shard it wrote
// on: each other writing participant forces a prepare record (its
// vote, binding the global id and coordinator shard), then the
// coordinator's local transaction prepares and commits — that forced
// commit record is the global decision — and finally the participants
// commit.  A nil return means the decision
// record is on the coordinator shard's stable storage: the transaction
// is globally committed and will survive any crash.
//
// A phase-1 failure (a prepare force that did not complete) aborts
// every branch and returns the cause: the coordinator never appended
// its commit record, so no durable decision can exist and presumed
// abort is safe everywhere.  A failed DECISION force is different —
// the commit record may or may not have reached the device, so
// aborting anything could contradict a decision that is in fact
// durable.  Commit therefore aborts nothing: every branch (the
// coordinator's included) stays prepared, in doubt, holding its locks,
// and the error returned wraps ErrInDoubt; the next Recover settles
// all branches from the coordinator's durable log — commit if the
// record made it, presumed abort otherwise.
//
// A participant failure AFTER the decision (degraded device) leaves
// that branch prepared and the decision retained — pinning the
// coordinator's archive below the prepare record — and Commit still
// returns nil, because the global outcome is decided and durable.  The
// stuck branch keeps its exclusive locks, blocking any transaction
// that touches its objects, until the degraded shard is taken through
// Crash/Recover (or the process restarts and reopens): resolution then
// commits the branch from the coordinator's decision and releases the
// pin.  There is no in-place retry — a shard degrades only on a
// persistent device error, which a retry cannot outwait.
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	if len(t.order) == 0 {
		t.done = true
		return nil
	}

	// Release read-only branches first: they hold no undoable work, so
	// presumed abort already describes them — no vote, no force.  What
	// remains are the writers, in first-write order; the first of them
	// coordinates (its log carries the decision).
	for _, s := range t.order {
		if !t.wrote[s] {
			if err := t.db.engs[s].Abort(t.local[s]); err != nil {
				return err
			}
		}
	}
	writers := t.writeOrder
	if len(writers) == 0 {
		t.done = true
		return nil
	}
	coord := writers[0]
	parts := writers[1:] // non-coordinator shards that must vote

	if len(parts) == 0 {
		// Single-shard fast path: the ordinary commit, untouched.
		if err := t.db.engs[coord].Commit(t.local[coord]); err != nil {
			if errors.Is(err, core.ErrCommitAborted) {
				// The early-lock-release rollback terminated the local
				// transaction; the global handle is dead too.
				t.done = true
			}
			return err
		}
		t.done = true
		t.db.met.singleCommits.Inc()
		return nil
	}

	start := time.Now()
	// Phase 1: participants vote by forced prepare record.  On any
	// failure the coordinator has not appended its commit record, so no
	// decision can be durable and every branch aborts: the already-
	// prepared ones by presumed abort, the failed one and the not-yet-
	// prepared ones (still Active) by plain rollback.
	for i, s := range parts {
		if err := t.db.engs[s].Prepare(t.local[s], t.gid, coord); err != nil {
			active := make([]uint32, 0, len(parts)-i+1)
			active = append(active, parts[i:]...)
			active = append(active, coord)
			t.abortBranches(parts[:i], active)
			return err
		}
	}
	// The coordinator prepares too — binding the gid durably on the
	// decision log — then commits; the forced commit record is the
	// global decision.
	if err := t.db.engs[coord].Prepare(t.local[coord], t.gid, coord); err != nil {
		t.abortBranches(parts, []uint32{coord})
		return err
	}
	if err := t.db.engs[coord].CommitPrepared(t.local[coord]); err != nil {
		// The decision force failed, but the commit record MAY still be
		// durable (core's crash contract for a failed force).  Aborting
		// any branch here could durably contradict it — participants
		// would log abort records for a transaction the coordinator's
		// log commits — so nothing is aborted: every branch stays
		// prepared, in doubt, and the next Recover resolves them all
		// from the coordinator's durable log.
		t.done = true
		t.db.met.commitsInDoubt.Inc()
		return fmt.Errorf("%w: coordinator shard %d decision force: %w", ErrInDoubt, coord, err)
	}
	// Decision durable.  Phase 2: commit the participants.
	var stuck bool
	for _, s := range parts {
		if err := t.db.engs[s].CommitPrepared(t.local[s]); err != nil {
			// The branch stays prepared on a (likely degraded) shard,
			// holding its locks, and the decision stays retained on the
			// coordinator; the shard's next Recover resolves it.
			stuck = true
			t.db.met.phase2Failures.Inc()
		}
	}
	if !stuck {
		// All branches settled: the decision needs no retaining, and
		// the coordinator's archive is unpinned.
		t.db.engs[coord].ReleaseGlobal(t.gid)
	}
	t.done = true
	t.db.met.crossCommits.Inc()
	t.db.met.crossCommitNs.Observe(time.Since(start))
	return nil
}

// abortBranches rolls back a failed phase 1: AbortPrepared on every
// shard in preparedShards, plain Abort on the still-active branches in
// activeShards.  Only legal while no decision can be durable (the
// coordinator never appended its commit record).  Best-effort — the
// error that triggered the abort is what the caller reports; a branch
// that cannot abort (degraded shard) is left for recovery, which
// re-aborts it by presumed abort.
func (t *Txn) abortBranches(preparedShards, activeShards []uint32) {
	for _, s := range preparedShards {
		t.db.engs[s].AbortPrepared(t.local[s])
	}
	for _, s := range activeShards {
		t.db.engs[s].Abort(t.local[s])
	}
	t.done = true
	t.db.met.crossAborts.Inc()
}

// Abort rolls back every branch on every shard the transaction
// touched.  Same crash contract as the single-engine abort: a nil
// return means the rollback took effect in volatile state everywhere;
// durability is unnecessary — a crash simply makes each shard's
// recovery re-abort its branch (presumed abort for any that managed to
// prepare in a concurrent Commit, ordinary loser undo otherwise).
func (t *Txn) Abort() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	var first error
	for _, s := range t.order {
		if err := t.db.engs[s].Abort(t.local[s]); err != nil && first == nil {
			first = err
		}
	}
	if len(t.order) > 1 {
		t.db.met.crossAborts.Inc()
	}
	return first
}

// Done reports whether the transaction was terminated through this
// handle.
func (t *Txn) Done() bool { return t.done }
