// Package lock implements a strict two-phase-locking lock manager with
// shared/exclusive object locks, FIFO waiting, wait-for-graph deadlock
// detection, and lock transfer.
//
// Lock transfer supports delegation: when t1 delegates an object to t2, the
// delegatee inherits the delegator's lock on it so the delegated updates
// stay protected until their (new) responsible transaction terminates —
// this is the lock-manager half of the paper's "broadening of visibility".
package lock

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ariesrh/internal/obs"
	"ariesrh/internal/wal"
)

// Mode is a lock mode.
type Mode int

// Lock modes.
const (
	// Shared permits concurrent readers.
	Shared Mode = iota
	// Exclusive permits a single writer.
	Exclusive
	// Increment permits concurrent commutative increments: Increment is
	// compatible with Increment but conflicts with Shared and Exclusive
	// (readers must not observe half-applied counter groups; writers
	// must not overwrite concurrently incremented counters).
	Increment
)

// String returns "S", "X" or "I".
func (m Mode) String() string {
	switch m {
	case Exclusive:
		return "X"
	case Increment:
		return "I"
	default:
		return "S"
	}
}

// compatibleModes reports whether two holders may coexist.
func compatibleModes(a, b Mode) bool {
	return (a == Shared && b == Shared) || (a == Increment && b == Increment)
}

// combineModes returns the mode a single transaction holds after being
// granted next while already holding cur: equal modes stay; any
// combination involving Exclusive — or the incomparable pair
// Shared+Increment — escalates to Exclusive, so peers that would conflict
// with either constituent stay excluded.
func combineModes(cur, next Mode) Mode {
	if cur == next {
		return cur
	}
	return Exclusive
}

// ErrDeadlock is returned to a requester whose wait would close a cycle in
// the wait-for graph; the requester is the victim and should abort.
var ErrDeadlock = errors.New("lock: deadlock")

type request struct {
	tx   wal.TxID
	mode Mode
}

type lockState struct {
	// holders maps each holding transaction to its granted mode.
	holders map[wal.TxID]Mode
	queue   []request
	// violable maps each transaction that released a write lock (X or I)
	// on this object pre-durably — via ReleaseAllViolable, the early-
	// lock-release commit path — to the mode it held.  A later acquirer
	// whose mode conflicts with a recorded mode has "violated" that
	// lock in the controlled-lock-violation sense: it may observe data
	// whose commit record is not yet on stable storage, and the engine
	// forms a commit dependency on the releaser.  Entries are cleared by
	// ClearViolable once the releaser's commit record is durable (or its
	// commit failed and was rolled back).  Shared releases are never
	// recorded: a pre-durable reader leaves no dirty data behind, so
	// overwriting what it read creates no recoverability obligation.
	violable map[wal.TxID]Mode
}

// Manager is the lock manager.  All methods are safe for concurrent use;
// Acquire blocks the calling goroutine until the lock is granted or the
// request is chosen as a deadlock victim.
type Manager struct {
	mu    sync.Mutex
	cond  *sync.Cond
	locks map[wal.ObjectID]*lockState
	// held tracks, per transaction, the objects it holds locks on.
	held map[wal.TxID]map[wal.ObjectID]struct{}
	// heldSince records when each transaction acquired its first lock;
	// ReleaseAll observes the span as the transaction's lock-hold time.
	heldSince map[wal.TxID]time.Time
	// waitsFor maps a blocked transaction to the transactions it waits on.
	waitsFor map[wal.TxID]map[wal.TxID]struct{}
	// violableBy indexes, per pre-durable releaser, the objects carrying
	// its violable markers, so ClearViolable is O(objects released).
	violableBy map[wal.TxID]map[wal.ObjectID]struct{}
	met        lockMetrics
}

// lockMetrics holds the manager's pre-resolved metric handles.  A fresh
// manager binds them to a private registry so they are never nil; the
// owning engine rebinds them to its own registry via Instrument.
type lockMetrics struct {
	acquires, waits, deadlocks, shares, transfers *obs.Counter
	// Per-mode acquire counts (satellite contention observability: the
	// S/X/I mix tells whether a hot object is read- or write-contended).
	acquiresShared, acquiresExclusive, acquiresIncrement *obs.Counter
	// violableMarks counts objects marked by pre-durable releases;
	// violations counts conflicting acquisitions over a live marker.
	violableMarks, violations *obs.Counter
	// waiters is the number of transactions currently blocked in Acquire.
	waiters *obs.Gauge
	// waitNs observes time spent blocked per Acquire that waited; holdNs
	// observes, per transaction, first-acquire-to-release lock-hold time.
	waitNs, holdNs *obs.Histogram
}

func bindLockMetrics(r *obs.Registry) lockMetrics {
	return lockMetrics{
		acquires:          r.Counter("lock.acquires"),
		waits:             r.Counter("lock.waits"),
		deadlocks:         r.Counter("lock.deadlocks"),
		shares:            r.Counter("lock.shares"),
		transfers:         r.Counter("lock.transfers"),
		acquiresShared:    r.Counter("lock.acquires.shared"),
		acquiresExclusive: r.Counter("lock.acquires.exclusive"),
		acquiresIncrement: r.Counter("lock.acquires.increment"),
		violableMarks:     r.Counter("lock.violable_marks"),
		violations:        r.Counter("lock.violations"),
		waiters:           r.Gauge("lock.waiters"),
		waitNs:            r.Histogram("lock.wait_ns"),
		holdNs:            r.Histogram("lock.hold_ns"),
	}
}

// Instrument rebinds the manager's metrics to reg (see internal/obs).
// Call it at construction time, before the manager is shared.
func (m *Manager) Instrument(reg *obs.Registry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.met = bindLockMetrics(reg)
}

// NewManager returns an empty lock manager.
func NewManager() *Manager {
	m := &Manager{
		locks:      make(map[wal.ObjectID]*lockState),
		held:       make(map[wal.TxID]map[wal.ObjectID]struct{}),
		heldSince:  make(map[wal.TxID]time.Time),
		waitsFor:   make(map[wal.TxID]map[wal.TxID]struct{}),
		violableBy: make(map[wal.TxID]map[wal.ObjectID]struct{}),
		met:        bindLockMetrics(obs.NewRegistry()),
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *Manager) state(obj wal.ObjectID) *lockState {
	ls, ok := m.locks[obj]
	if !ok {
		ls = &lockState{holders: make(map[wal.TxID]Mode)}
		m.locks[obj] = ls
	}
	return ls
}

// Acquire grants tx a mode lock on obj, blocking while incompatible locks
// are held.  Re-acquisition is a no-op when the held mode already covers
// the request; a Shared→Exclusive upgrade waits for other holders to leave.
// Returns ErrDeadlock if waiting would complete a wait-for cycle; the
// caller should abort tx.
func (m *Manager) Acquire(tx wal.TxID, obj wal.ObjectID, mode Mode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	ls := m.state(obj)
	m.met.acquires.Inc()
	switch mode {
	case Exclusive:
		m.met.acquiresExclusive.Inc()
	case Increment:
		m.met.acquiresIncrement.Inc()
	default:
		m.met.acquiresShared.Inc()
	}
	if hm, ok := ls.holders[tx]; ok && (hm == Exclusive || hm == mode) {
		return nil // already covered
	}
	ls.queue = append(ls.queue, request{tx: tx, mode: mode})
	var waitStart time.Time
	for !m.isGrantableLocked(ls, tx, mode) {
		if waitStart.IsZero() {
			waitStart = time.Now()
			m.met.waits.Inc()
			m.met.waiters.Add(1)
		}
		m.recordWaitsLocked(ls, tx, mode)
		if m.hasCycleLocked(tx) {
			m.removeRequestLocked(ls, tx, mode)
			delete(m.waitsFor, tx)
			m.met.deadlocks.Inc()
			m.met.waiters.Add(-1)
			m.met.waitNs.Observe(time.Since(waitStart))
			m.cond.Broadcast()
			return fmt.Errorf("%w: transaction %d victimized on object %d", ErrDeadlock, tx, obj)
		}
		m.cond.Wait()
	}
	if !waitStart.IsZero() {
		m.met.waiters.Add(-1)
		m.met.waitNs.Observe(time.Since(waitStart))
	}
	delete(m.waitsFor, tx)
	m.removeRequestLocked(ls, tx, mode)
	if cur, ok := ls.holders[tx]; ok {
		ls.holders[tx] = combineModes(cur, mode)
	} else {
		ls.holders[tx] = mode
	}
	if m.held[tx] == nil {
		m.held[tx] = make(map[wal.ObjectID]struct{})
		m.heldSince[tx] = time.Now()
	}
	m.held[tx][obj] = struct{}{}
	m.cond.Broadcast()
	return nil
}

// compatibleLocked reports whether tx may hold mode alongside the current
// holders of ls.
func (m *Manager) compatibleLocked(ls *lockState, tx wal.TxID, mode Mode) bool {
	for holder, hm := range ls.holders {
		if holder == tx {
			continue
		}
		if !compatibleModes(hm, mode) {
			return false
		}
	}
	return true
}

// isGrantableLocked applies FIFO granting: tx's request may be granted only
// if it is compatible with holders and not queued behind an incompatible
// earlier request (avoids writer starvation).  Upgrades (tx already a
// holder) bypass the queue-order check, else they could deadlock on their
// own queue position.
func (m *Manager) isGrantableLocked(ls *lockState, tx wal.TxID, mode Mode) bool {
	if !m.compatibleLocked(ls, tx, mode) {
		return false
	}
	if _, holder := ls.holders[tx]; holder {
		return true
	}
	for _, q := range ls.queue {
		if q.tx == tx && q.mode == mode {
			return true
		}
		if !compatibleModes(q.mode, mode) {
			return false
		}
	}
	return true
}

func (m *Manager) removeRequestLocked(ls *lockState, tx wal.TxID, mode Mode) {
	for i, q := range ls.queue {
		if q.tx == tx && q.mode == mode {
			ls.queue = append(ls.queue[:i], ls.queue[i+1:]...)
			return
		}
	}
}

// recordWaitsLocked updates tx's wait-for edges: tx waits on incompatible
// holders and on earlier incompatible queued requests.
func (m *Manager) recordWaitsLocked(ls *lockState, tx wal.TxID, mode Mode) {
	edges := make(map[wal.TxID]struct{})
	for holder, hm := range ls.holders {
		if holder == tx {
			continue
		}
		if !compatibleModes(hm, mode) {
			edges[holder] = struct{}{}
		}
	}
	for _, q := range ls.queue {
		if q.tx == tx {
			break
		}
		if !compatibleModes(q.mode, mode) {
			edges[q.tx] = struct{}{}
		}
	}
	m.waitsFor[tx] = edges
}

// hasCycleLocked reports whether the wait-for graph contains a cycle
// through start.
func (m *Manager) hasCycleLocked(start wal.TxID) bool {
	seen := make(map[wal.TxID]bool)
	var dfs func(tx wal.TxID) bool
	dfs = func(tx wal.TxID) bool {
		for next := range m.waitsFor[tx] {
			if next == start {
				return true
			}
			if !seen[next] {
				seen[next] = true
				if dfs(next) {
					return true
				}
			}
		}
		return false
	}
	return dfs(start)
}

// Share grants to a co-hold on obj at the mode from holds, without
// revoking from's own hold.  This is the lock-manager effect of delegation
// (and of ASSET's permit): the delegatee gains access to the delegated
// object — broadening its visibility — while the delegator may keep
// operating on it, which the paper explicitly allows (§2.1.2: a
// transaction can perform operations on an object even after delegating
// it).  Third parties still conflict as usual.  Each co-holder's
// termination releases only its own hold.
func (m *Manager) Share(from, to wal.TxID, obj wal.ObjectID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	ls := m.state(obj)
	fm, ok := ls.holders[from]
	if !ok {
		return fmt.Errorf("lock: share of object %d from t%d which holds no lock", obj, from)
	}
	m.met.shares.Inc()
	if tm, held := ls.holders[to]; held {
		ls.holders[to] = combineModes(tm, fm)
	} else {
		ls.holders[to] = fm
	}
	if m.held[to] == nil {
		m.held[to] = make(map[wal.ObjectID]struct{})
		m.heldSince[to] = time.Now()
	}
	m.held[to][obj] = struct{}{}
	m.cond.Broadcast()
	return nil
}

// Transfer moves transaction from's lock on obj to to, as part of a
// delegation.  If the delegatee already holds a lock on obj the stronger
// mode wins.  It is an error for from not to hold a lock on obj.
func (m *Manager) Transfer(from, to wal.TxID, obj wal.ObjectID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	ls := m.state(obj)
	fm, ok := ls.holders[from]
	if !ok {
		return fmt.Errorf("lock: transfer of object %d from t%d which holds no lock", obj, from)
	}
	m.met.transfers.Inc()
	delete(ls.holders, from)
	if m.held[from] != nil {
		delete(m.held[from], obj)
	}
	if tm, held := ls.holders[to]; held {
		ls.holders[to] = combineModes(tm, fm)
	} else {
		ls.holders[to] = fm
	}
	if m.held[to] == nil {
		m.held[to] = make(map[wal.ObjectID]struct{})
		m.heldSince[to] = time.Now()
	}
	m.held[to][obj] = struct{}{}
	m.cond.Broadcast()
	return nil
}

// ReleaseAll drops every lock held by tx (transaction termination under
// strict 2PL) and wakes waiters.
func (m *Manager) ReleaseAll(tx wal.TxID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.releaseAllLocked(tx, false)
}

// ReleaseAllViolable drops every lock held by tx exactly like ReleaseAll,
// but additionally marks each object tx held in a write mode (Exclusive
// or Increment) as carrying tx's violable lock: tx's commit record is
// appended but not yet durable, and a later conflicting acquirer must
// form a commit dependency on tx (see Violators).  This is the lock-
// manager half of early lock release / controlled lock violation; the
// engine clears the markers with ClearViolable once tx's commit record
// reaches stable storage or its commit fails and is rolled back.
func (m *Manager) ReleaseAllViolable(tx wal.TxID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.releaseAllLocked(tx, true)
}

func (m *Manager) releaseAllLocked(tx wal.TxID, violable bool) {
	for obj := range m.held[tx] {
		ls, ok := m.locks[obj]
		if !ok {
			continue
		}
		mode := ls.holders[tx]
		delete(ls.holders, tx)
		if violable && mode != Shared {
			if ls.violable == nil {
				ls.violable = make(map[wal.TxID]Mode)
			}
			ls.violable[tx] = mode
			if m.violableBy[tx] == nil {
				m.violableBy[tx] = make(map[wal.ObjectID]struct{})
			}
			m.violableBy[tx][obj] = struct{}{}
			m.met.violableMarks.Inc()
		}
		m.dropStateIfEmptyLocked(obj, ls)
	}
	if since, ok := m.heldSince[tx]; ok {
		m.met.holdNs.Observe(time.Since(since))
	}
	delete(m.heldSince, tx)
	delete(m.held, tx)
	delete(m.waitsFor, tx)
	m.cond.Broadcast()
}

// dropStateIfEmptyLocked garbage-collects an object's lock state once
// nothing references it: no holders, no queued requests, no violable
// markers awaiting their releaser's durability.
func (m *Manager) dropStateIfEmptyLocked(obj wal.ObjectID, ls *lockState) {
	if len(ls.holders) == 0 && len(ls.queue) == 0 && len(ls.violable) == 0 {
		delete(m.locks, obj)
	}
}

// ClearViolable removes every violable marker left by tx's early lock
// release: its commit record became durable (the markers impose no
// constraint any more) or its commit failed and the rollback's cascade
// already settled the dependents.
func (m *Manager) ClearViolable(tx wal.TxID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for obj := range m.violableBy[tx] {
		if ls, ok := m.locks[obj]; ok {
			delete(ls.violable, tx)
			m.dropStateIfEmptyLocked(obj, ls)
		}
	}
	delete(m.violableBy, tx)
}

// Violators returns the transactions whose early-released (violable)
// lock on obj conflicts with an acquisition in mode by tx — the
// pre-durable committers tx has violated and must form commit
// dependencies on.  A compatible acquisition (Increment over a released
// Increment) is not a violation: it could have been granted while the
// releaser still held its lock.  The caller is expected to filter the
// result against its own pre-durable set: a marker may outlive its
// releaser's durability by the breadth of a callback race.
func (m *Manager) Violators(tx wal.TxID, obj wal.ObjectID, mode Mode) []wal.TxID {
	m.mu.Lock()
	defer m.mu.Unlock()
	ls, ok := m.locks[obj]
	if !ok || len(ls.violable) == 0 {
		return nil
	}
	var out []wal.TxID
	for releaser, rm := range ls.violable {
		if releaser == tx || compatibleModes(rm, mode) {
			continue
		}
		out = append(out, releaser)
	}
	if len(out) > 0 {
		m.met.violations.Add(uint64(len(out)))
	}
	return out
}

// Holds reports the mode tx holds on obj, if any.
func (m *Manager) Holds(tx wal.TxID, obj wal.ObjectID) (Mode, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ls, ok := m.locks[obj]
	if !ok {
		return 0, false
	}
	mode, ok := ls.holders[tx]
	return mode, ok
}

// Reset discards all lock state (crash simulation: locks are volatile).
func (m *Manager) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.locks = make(map[wal.ObjectID]*lockState)
	m.held = make(map[wal.TxID]map[wal.ObjectID]struct{})
	m.heldSince = make(map[wal.TxID]time.Time)
	m.waitsFor = make(map[wal.TxID]map[wal.TxID]struct{})
	m.violableBy = make(map[wal.TxID]map[wal.ObjectID]struct{})
	m.cond.Broadcast()
}
