package lock

import (
	"testing"

	"ariesrh/internal/wal"
)

func BenchmarkAcquireReleaseUncontended(b *testing.B) {
	m := NewManager()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tx := wal.TxID(i%100 + 1)
		if err := m.Acquire(tx, wal.ObjectID(i%512), Exclusive); err != nil {
			b.Fatal(err)
		}
		m.ReleaseAll(tx)
	}
}

func BenchmarkSharedParallel(b *testing.B) {
	m := NewManager()
	b.RunParallel(func(pb *testing.PB) {
		tx := wal.TxID(1)
		for pb.Next() {
			tx++
			if tx == 0 {
				tx = 1
			}
			if err := m.Acquire(tx, 7, Shared); err != nil {
				b.Fatal(err)
			}
			m.ReleaseAll(tx)
		}
	})
}

func BenchmarkIncrementModeParallel(b *testing.B) {
	m := NewManager()
	b.RunParallel(func(pb *testing.PB) {
		tx := wal.TxID(1)
		for pb.Next() {
			tx += 2
			if tx == 0 {
				tx = 1
			}
			if err := m.Acquire(tx, 7, Increment); err != nil {
				b.Fatal(err)
			}
			m.ReleaseAll(tx)
		}
	})
}
