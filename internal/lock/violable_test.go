package lock

import (
	"testing"
	"time"
)

// TestViolableMarksAndViolators: an early release marks write locks
// violable; conflicting acquirers see the releaser, compatible ones and
// the releaser itself do not.
func TestViolableMarksAndViolators(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, 10, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, 11, Increment); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, 12, Shared); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAllViolable(1)

	// Locks are gone: a conflicting acquire must not block.
	done := make(chan error, 1)
	go func() { done <- m.Acquire(2, 10, Exclusive) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("acquire blocked on an early-released lock")
	}

	if v := m.Violators(2, 10, Exclusive); len(v) != 1 || v[0] != 1 {
		t.Fatalf("X over released X: violators = %v, want [1]", v)
	}
	if v := m.Violators(2, 11, Increment); len(v) != 0 {
		t.Fatalf("I over released I is compatible, got violators %v", v)
	}
	if v := m.Violators(2, 11, Exclusive); len(v) != 1 || v[0] != 1 {
		t.Fatalf("X over released I: violators = %v, want [1]", v)
	}
	// Shared releases are never marked: no dirty data left behind.
	if v := m.Violators(2, 12, Exclusive); len(v) != 0 {
		t.Fatalf("released S lock must not be violable, got %v", v)
	}
	// The releaser is never its own violator.
	if v := m.Violators(1, 10, Exclusive); len(v) != 0 {
		t.Fatalf("self-violation reported: %v", v)
	}
}

// TestClearViolable: markers disappear once the releaser's durability is
// settled, and the lock state is garbage-collected.
func TestClearViolable(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, 10, Exclusive); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAllViolable(1)
	if v := m.Violators(2, 10, Exclusive); len(v) != 1 {
		t.Fatalf("marker missing before clear: %v", v)
	}
	m.ClearViolable(1)
	if v := m.Violators(2, 10, Exclusive); len(v) != 0 {
		t.Fatalf("marker survived clear: %v", v)
	}
	m.mu.Lock()
	_, exists := m.locks[10]
	m.mu.Unlock()
	if exists {
		t.Fatal("empty lock state not garbage-collected after clear")
	}
}

// TestViolableStateSurvivesRelease: the lockState must not be
// garbage-collected while a violable marker is live, even with no
// holders and no queue.
func TestViolableStateSurvivesRelease(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, 10, Exclusive); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAllViolable(1)
	// A full acquire/release cycle by another transaction must not drop
	// the marker.
	if err := m.Acquire(2, 10, Exclusive); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
	if v := m.Violators(3, 10, Exclusive); len(v) != 1 || v[0] != 1 {
		t.Fatalf("marker lost to state GC: violators = %v, want [1]", v)
	}
}

// TestPlainReleaseLeavesNoMarkers: ReleaseAll (commit with durability in
// hand, or abort) must not mark anything violable.
func TestPlainReleaseLeavesNoMarkers(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, 10, Exclusive); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
	if v := m.Violators(2, 10, Exclusive); len(v) != 0 {
		t.Fatalf("plain release left violable markers: %v", v)
	}
}

// TestViolableMetrics: marks and violations are counted; per-mode
// acquires, waiters gauge and hold-time histogram are wired.
func TestViolableMetrics(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, 10, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, 11, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, 12, Increment); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAllViolable(1)
	m.Violators(2, 10, Exclusive)

	if got := m.met.acquiresExclusive.Load(); got != 1 {
		t.Fatalf("acquiresExclusive = %d, want 1", got)
	}
	if got := m.met.acquiresShared.Load(); got != 1 {
		t.Fatalf("acquiresShared = %d, want 1", got)
	}
	if got := m.met.acquiresIncrement.Load(); got != 1 {
		t.Fatalf("acquiresIncrement = %d, want 1", got)
	}
	if got := m.met.violableMarks.Load(); got != 2 { // X and I, not S
		t.Fatalf("violableMarks = %d, want 2", got)
	}
	if got := m.met.violations.Load(); got != 1 {
		t.Fatalf("violations = %d, want 1", got)
	}
	if got := m.met.holdNs.Snapshot().Count; got != 1 {
		t.Fatalf("holdNs count = %d, want 1", got)
	}
}

// TestWaitersGauge: the gauge rises while a transaction is blocked and
// falls when it is granted.
func TestWaitersGauge(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, 10, Exclusive); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(2, 10, Exclusive) }()
	deadline := time.Now().Add(time.Second)
	for m.met.waiters.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiters gauge never rose")
		}
		time.Sleep(time.Millisecond)
	}
	m.ReleaseAll(1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := m.met.waiters.Load(); got != 0 {
		t.Fatalf("waiters gauge = %d after grant, want 0", got)
	}
	if got := m.met.waitNs.Snapshot().Count; got != 1 {
		t.Fatalf("waitNs count = %d, want 1", got)
	}
}
