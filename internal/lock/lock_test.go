package lock

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ariesrh/internal/wal"
)

func TestSharedLocksCoexist(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, 100, Shared); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(2, 100, Shared) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("second shared lock blocked")
	}
}

func TestExclusiveBlocks(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, 100, Exclusive); err != nil {
		t.Fatal(err)
	}
	var acquired atomic.Bool
	done := make(chan struct{})
	go func() {
		if err := m.Acquire(2, 100, Exclusive); err != nil {
			t.Error(err)
		}
		acquired.Store(true)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	if acquired.Load() {
		t.Fatal("conflicting lock granted while held")
	}
	m.ReleaseAll(1)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("waiter not woken after release")
	}
}

func TestReacquireIsNoop(t *testing.T) {
	m := NewManager()
	for i := 0; i < 3; i++ {
		if err := m.Acquire(1, 5, Exclusive); err != nil {
			t.Fatal(err)
		}
	}
	if mode, ok := m.Holds(1, 5); !ok || mode != Exclusive {
		t.Fatalf("holds = %v %v", mode, ok)
	}
	// Shared request while holding Exclusive is covered.
	if err := m.Acquire(1, 5, Shared); err != nil {
		t.Fatal(err)
	}
	if mode, _ := m.Holds(1, 5); mode != Exclusive {
		t.Fatalf("mode downgraded to %v", mode)
	}
}

func TestUpgradeSoleHolder(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, 5, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, 5, Exclusive); err != nil {
		t.Fatal(err)
	}
	if mode, _ := m.Holds(1, 5); mode != Exclusive {
		t.Fatalf("mode = %v after upgrade", mode)
	}
}

func TestDeadlockDetected(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, 10, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, 20, Exclusive); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- m.Acquire(1, 20, Exclusive) }() // 1 waits on 2
	time.Sleep(20 * time.Millisecond)
	go func() { errs <- m.Acquire(2, 10, Exclusive) }() // 2 waits on 1: cycle
	var deadlocked, granted int
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if errors.Is(err, ErrDeadlock) {
				deadlocked++
				// Victim aborts, releasing its locks.
				if deadlocked == 1 {
					m.ReleaseAll(2)
				}
			} else if err == nil {
				granted++
			} else {
				t.Fatalf("unexpected error: %v", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("deadlock not detected")
		}
	}
	if deadlocked != 1 || granted != 1 {
		t.Fatalf("deadlocked=%d granted=%d", deadlocked, granted)
	}
}

func TestUpgradeDeadlockDetected(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, 7, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, 7, Shared); err != nil {
		t.Fatal(err)
	}
	type result struct {
		tx  wal.TxID
		err error
	}
	results := make(chan result, 2)
	go func() { results <- result{1, m.Acquire(1, 7, Exclusive)} }()
	time.Sleep(20 * time.Millisecond)
	go func() { results <- result{2, m.Acquire(2, 7, Exclusive)} }()
	// Both want to upgrade; each waits on the other's shared hold: one
	// must be victimized and abort (releasing its locks), after which the
	// survivor's upgrade is granted.
	var deadlocked int
	for i := 0; i < 2; i++ {
		select {
		case r := <-results:
			if errors.Is(r.err, ErrDeadlock) {
				deadlocked++
				m.ReleaseAll(r.tx) // the victim aborts
			} else if r.err != nil {
				t.Fatalf("unexpected error: %v", r.err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("upgrade deadlock not resolved")
		}
	}
	if deadlocked != 1 {
		t.Fatalf("deadlocked = %d, want 1", deadlocked)
	}
}

func TestTransfer(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, 30, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Transfer(1, 2, 30); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Holds(1, 30); ok {
		t.Fatal("delegator still holds the lock")
	}
	if mode, ok := m.Holds(2, 30); !ok || mode != Exclusive {
		t.Fatalf("delegatee holds %v %v", mode, ok)
	}
	// Transfer without a held lock errors.
	if err := m.Transfer(5, 6, 30); err == nil {
		t.Fatal("transfer from non-holder accepted")
	}
	// ReleaseAll on the delegatee frees the object for others.
	m.ReleaseAll(2)
	if err := m.Acquire(3, 30, Exclusive); err != nil {
		t.Fatal(err)
	}
}

func TestTransferKeepsStrongerMode(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 9, Shared)
	m.Acquire(2, 9, Exclusive-1) // Shared
	// t2 upgrades later; here t1 delegates its Shared to t2 who holds Shared.
	if err := m.Transfer(1, 2, 9); err != nil {
		t.Fatal(err)
	}
	if mode, ok := m.Holds(2, 9); !ok || mode != Shared {
		t.Fatalf("mode = %v ok=%v", mode, ok)
	}
}

func TestFIFONoWriterStarvation(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, 50, Shared); err != nil {
		t.Fatal(err)
	}
	writerDone := make(chan struct{})
	go func() {
		if err := m.Acquire(2, 50, Exclusive); err != nil {
			t.Error(err)
		}
		close(writerDone)
	}()
	time.Sleep(20 * time.Millisecond)
	// A reader arriving after the queued writer must wait behind it.
	readerDone := make(chan struct{})
	go func() {
		if err := m.Acquire(3, 50, Shared); err != nil {
			t.Error(err)
		}
		close(readerDone)
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-readerDone:
		t.Fatal("late reader jumped the queued writer")
	default:
	}
	m.ReleaseAll(1)
	<-writerDone
	m.ReleaseAll(2)
	<-readerDone
}

func TestConcurrentStress(t *testing.T) {
	m := NewManager()
	const txs = 16
	var wg sync.WaitGroup
	var deadlocks atomic.Int64
	for i := 1; i <= txs; i++ {
		wg.Add(1)
		go func(tx wal.TxID) {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				a := wal.ObjectID(uint64(tx)*31%7 + 1)
				b := wal.ObjectID(uint64(round)%7 + 1)
				if err := m.Acquire(tx, a, Exclusive); err != nil {
					deadlocks.Add(1)
					m.ReleaseAll(tx)
					continue
				}
				if err := m.Acquire(tx, b, Exclusive); err != nil {
					deadlocks.Add(1)
					m.ReleaseAll(tx)
					continue
				}
				m.ReleaseAll(tx)
			}
		}(wal.TxID(i))
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("stress test hung (lost wakeup or undetected deadlock)")
	}
}

func TestIncompatibleSelfModesEscalate(t *testing.T) {
	// A transaction holding Shared that acquires Increment (or the
	// reverse) must exclude BOTH reader and incrementer peers afterwards
	// — the combined hold escalates to Exclusive.
	m := NewManager()
	if err := m.Acquire(1, 7, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, 7, Increment); err != nil {
		t.Fatal(err)
	}
	if mode, _ := m.Holds(1, 7); mode != Exclusive {
		t.Fatalf("combined S+I hold = %v, want X", mode)
	}
	// A reader must now block.
	readerDone := make(chan struct{})
	go func() {
		if err := m.Acquire(2, 7, Shared); err != nil {
			t.Error(err)
		}
		close(readerDone)
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-readerDone:
		t.Fatal("reader granted against a combined S+I hold")
	default:
	}
	m.ReleaseAll(1)
	<-readerDone
	m.ReleaseAll(2)

	// The reverse order: Increment then Shared.
	if err := m.Acquire(3, 8, Increment); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(3, 8, Shared); err != nil {
		t.Fatal(err)
	}
	incDone := make(chan struct{})
	go func() {
		if err := m.Acquire(4, 8, Increment); err != nil {
			t.Error(err)
		}
		close(incDone)
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-incDone:
		t.Fatal("incrementer granted against a combined I+S hold")
	default:
	}
	m.ReleaseAll(3)
	<-incDone
}
