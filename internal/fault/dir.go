package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"ariesrh/internal/wal"
)

// Dir is a fault-injecting wal.Dir: a directory of dual-image devices
// sharing ONE fault schedule.  The segmented WAL spreads its syncs over
// many devices (segment images, manifest generations); a crash schedule
// that counted per device would miss exactly the cross-device windows
// that matter (rotation: segment sync then manifest sync; archive:
// manifest sync then deletes).  Dir counts every Sync on every device
// against the same Plan, so CrashAtSync=N freezes the whole directory
// at the Nth sync boundary of the run, whichever device it lands on.
//
// Model per device: as fault.Store (working image, stable image
// snapshotted on successful Sync, torn-tail only for pure appends).
// Namespace model: Remove is durable immediately while the directory is
// healthy; once the crash schedule fires (frozen), Remove fails with
// ErrCrashPoint — files cannot disappear after the crash point — and
// Open of a NEW name fails likewise, since nothing new can become
// stable.  A device created but never successfully synced does not
// survive CrashNow (its directory entry was never durable).
type Dir struct {
	mu    sync.Mutex
	plan  Plan
	rng   *rand.Rand
	files map[string]*dirFile

	frozen        bool
	transientLeft int

	syncs    uint64
	writes   uint64
	injected uint64
	torn     uint64
}

// dirFile is one device in a Dir.  It implements wal.Store; all state is
// guarded by the owning Dir's mutex.
type dirFile struct {
	d    *Dir
	name string

	working []byte
	stable  []byte
	// stableExists is set by the first successful Sync: only then does
	// the device survive a crash at all.
	stableExists bool
	// overwrote is set when an unsynced write or truncation touched the
	// stable image; CrashNow then drops the whole unsynced delta (the
	// torn-tail model only covers pure appends).
	overwrote bool
}

// NewDir creates an empty fault-injecting directory with the given plan.
func NewDir(plan Plan) *Dir {
	return &Dir{
		plan:          plan,
		rng:           rand.New(rand.NewSource(plan.Seed)),
		files:         make(map[string]*dirFile),
		transientLeft: plan.TransientSyncErrors,
	}
}

// Open returns the named device, creating it if absent.  Creation fails
// with ErrCrashPoint while the directory is frozen: past the crash point
// nothing new can become stable, so handing out a writable fresh device
// would let the log believe in bytes the crash must discard.
func (d *Dir) Open(name string) (wal.Store, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if f, ok := d.files[name]; ok {
		return f, nil
	}
	if d.frozen {
		d.injected++
		return nil, fmt.Errorf("open %s: %w", name, ErrCrashPoint)
	}
	f := &dirFile{d: d, name: name}
	d.files[name] = f
	return f, nil
}

// Remove deletes the named device — immediately durable while healthy,
// refused with ErrCrashPoint while frozen (a crashed directory cannot
// lose entries; recovery must observe them and sweep them itself).
func (d *Dir) Remove(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[name]; !ok {
		return fmt.Errorf("fault: remove %s: no such device", name)
	}
	if d.frozen {
		d.injected++
		return fmt.Errorf("remove %s: %w", name, ErrCrashPoint)
	}
	delete(d.files, name)
	return nil
}

// List returns the device names, sorted.
func (d *Dir) List() ([]string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.files))
	for name := range d.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Close is a no-op (the images are in memory).
func (d *Dir) Close() error { return nil }

// CrashNow materializes the crash across the whole directory: every
// never-synced device vanishes, every other device is rewound to its
// stable image — extended, if the plan asks for torn tails and its
// unsynced delta is a pure append, by a seeded-length prefix of that
// delta.  Devices are processed in sorted name order so the seeded
// choices are deterministic.  The crash schedule is disarmed afterwards;
// persistent failure modes (FailAllSyncs) stay armed.
func (d *Dir) CrashNow() (tornBytes int, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.frozen = false
	d.plan.CrashAtSync = 0
	names := make([]string, 0, len(d.files))
	for name := range d.files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := d.files[name]
		if !f.stableExists {
			delete(d.files, name)
			continue
		}
		img := append([]byte(nil), f.stable...)
		if d.plan.TornTail && !f.overwrote && len(f.working) > len(f.stable) {
			tail := f.working[len(f.stable):]
			keep := d.rng.Intn(len(tail) + 1)
			img = append(img, tail[:keep]...)
			tornBytes += keep
			if keep > 0 {
				d.torn++
			}
		}
		f.working = img
		f.stable = append([]byte(nil), img...)
		f.overwrote = false
	}
	return tornBytes, nil
}

// StableDir snapshots the crash-surviving state of the directory as a
// wal.MemDir: exactly the devices (and bytes) CrashNow would leave
// behind, minus torn tails.  Oracles decode it with wal.ReadDurable to
// learn the durable log without disturbing the live directory.
func (d *Dir) StableDir() *wal.MemDir {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := wal.NewMemDir()
	for name, f := range d.files {
		if f.stableExists {
			out.Put(name, append([]byte(nil), f.stable...))
		}
	}
	return out
}

// SetFailAllSyncs arms or disarms the persistent-failure mode.
func (d *Dir) SetFailAllSyncs(on bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.plan.FailAllSyncs = on
}

// SetTransientSyncErrors arms n further transient sync failures.
func (d *Dir) SetTransientSyncErrors(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.transientLeft = n
}

// Syncs returns the number of Sync attempts observed across all devices
// (including failed ones); a fault-free probe run's count enumerates the
// sync boundaries of a workload.
func (d *Dir) Syncs() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.syncs
}

// Writes returns the number of WriteAt calls observed across all devices.
func (d *Dir) Writes() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writes
}

// InjectedErrors returns the number of errors injected so far (failed
// syncs plus refused opens/removes while frozen).
func (d *Dir) InjectedErrors() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.injected
}

// TornCrashes returns the number of devices that kept a non-empty torn
// tail across CrashNow calls.
func (d *Dir) TornCrashes() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.torn
}

// Frozen reports whether the crash schedule has fired.
func (d *Dir) Frozen() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.frozen
}

// ReadAt implements io.ReaderAt over the working image.
func (f *dirFile) ReadAt(p []byte, off int64) (int, error) {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("fault: negative offset %d", off)
	}
	if off >= int64(len(f.working)) {
		if len(p) == 0 {
			return 0, nil
		}
		return 0, fmt.Errorf("fault: read %s at %d beyond size %d", f.name, off, len(f.working))
	}
	n := copy(p, f.working[off:])
	if n < len(p) {
		return n, fmt.Errorf("fault: short read %s at %d", f.name, off)
	}
	return n, nil
}

// WriteAt implements io.WriterAt into the working image; the bytes are
// not durable until the next successful Sync.
func (f *dirFile) WriteAt(p []byte, off int64) (int, error) {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("fault: negative offset %d", off)
	}
	f.d.writes++
	if off < int64(len(f.stable)) {
		f.overwrote = true
	}
	end := off + int64(len(p))
	if end > int64(len(f.working)) {
		grown := make([]byte, end)
		copy(grown, f.working)
		f.working = grown
	}
	copy(f.working[off:], p)
	return len(p), nil
}

// Size returns the working image size.
func (f *dirFile) Size() (int64, error) {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	return int64(len(f.working)), nil
}

// Truncate shrinks the working image; truncating into the stable image
// counts as an overwrite for the torn-tail model.
func (f *dirFile) Truncate(size int64) error {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	if size < int64(len(f.stable)) {
		f.overwrote = true
	}
	if size >= 0 && size < int64(len(f.working)) {
		f.working = f.working[:size]
	}
	return nil
}

// Sync runs the directory's shared fault schedule; on success this
// device's working image becomes its stable image.
func (f *dirFile) Sync() error {
	d := f.d
	d.mu.Lock()
	defer d.mu.Unlock()
	d.syncs++
	n := d.syncs
	if d.plan.DelayEveryNthSync > 0 && d.plan.SyncDelay > 0 && n%d.plan.DelayEveryNthSync == 0 {
		time.Sleep(d.plan.SyncDelay)
	}
	if d.frozen {
		d.injected++
		return ErrCrashPoint
	}
	if d.plan.FailAllSyncs {
		d.injected++
		return ErrDeviceFailed
	}
	if d.transientLeft > 0 {
		d.transientLeft--
		d.injected++
		return ErrInjectedSync
	}
	if d.plan.FailEveryNthSync > 0 && n%d.plan.FailEveryNthSync == 0 {
		d.injected++
		return ErrInjectedSync
	}
	f.stable = append(f.stable[:0], f.working...)
	f.stableExists = true
	f.overwrote = false
	if d.plan.CrashAtSync > 0 && n >= d.plan.CrashAtSync {
		d.frozen = true
	}
	return nil
}

// Close is a no-op; the Dir owns the images.
func (f *dirFile) Close() error { return nil }
