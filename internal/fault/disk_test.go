package fault

import (
	"errors"
	"testing"

	"ariesrh/internal/storage"
)

// TestDiskCrashAtWrite verifies the page-write crash schedule: writes
// before the boundary land, the boundary write and everything after it
// fail atomically (never partially applied), reads keep working, and
// CrashNow disarms the freeze.
func TestDiskCrashAtWrite(t *testing.T) {
	d := NewDisk(storage.NewMemDisk(), DiskPlan{CrashAtWrite: 3})
	for i := 0; i < 4; i++ {
		if _, err := d.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	page := func(val byte) *storage.Page {
		p := &storage.Page{}
		p.Slots[0] = storage.Slot{Used: true, Object: 1, Value: []byte{val}}
		return p
	}
	if err := d.WritePage(0, page(1)); err != nil { // write 1
		t.Fatal(err)
	}
	if err := d.WritePage(1, page(2)); err != nil { // write 2
		t.Fatal(err)
	}
	if err := d.WritePage(2, page(3)); !errors.Is(err, ErrCrashPoint) { // write 3: crash
		t.Fatalf("write at crash boundary = %v, want ErrCrashPoint", err)
	}
	if err := d.WritePage(0, page(9)); !errors.Is(err, ErrCrashPoint) {
		t.Fatalf("write after crash = %v, want ErrCrashPoint", err)
	}
	if _, err := d.Allocate(); !errors.Is(err, ErrCrashPoint) {
		t.Fatalf("allocate after crash = %v, want ErrCrashPoint", err)
	}
	// The crashed write never landed; earlier writes are intact and readable.
	p2, err := d.ReadPage(2)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Slots[0].Used {
		t.Fatal("page 2 holds data after its write crashed; page writes must be atomic")
	}
	p0, err := d.ReadPage(0)
	if err != nil {
		t.Fatal(err)
	}
	if !p0.Slots[0].Used || p0.Slots[0].Value[0] != 1 {
		t.Fatalf("page 0 slot = %+v, want the pre-crash write", p0.Slots[0])
	}

	d.CrashNow()
	if err := d.WritePage(2, page(3)); err != nil {
		t.Fatalf("write after disarmed crash: %v", err)
	}
	if got := d.InjectedErrors(); got != 3 {
		t.Fatalf("InjectedErrors = %d, want 3", got)
	}
}

// TestDiskFailWrites covers the persistent write-failure mode and its
// runtime disarm.
func TestDiskFailWrites(t *testing.T) {
	d := NewDisk(storage.NewMemDisk(), DiskPlan{})
	if _, err := d.Allocate(); err != nil {
		t.Fatal(err)
	}
	d.SetFailWrites(true)
	p := &storage.Page{}
	p.Slots[0] = storage.Slot{Used: true, Object: 1, Value: []byte("x")}
	if err := d.WritePage(0, p); !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("write on failed device = %v, want ErrDeviceFailed", err)
	}
	d.SetFailWrites(false)
	if err := d.WritePage(0, p); err != nil {
		t.Fatalf("write after healing: %v", err)
	}
}
