package fault

import (
	"bytes"
	"errors"
	"testing"

	"ariesrh/internal/wal"
)

// appendRecords appends n update records to l and returns their LSNs.
func appendRecords(t *testing.T, l *wal.Log, tx wal.TxID, n int) []wal.LSN {
	t.Helper()
	lsns := make([]wal.LSN, 0, n)
	for i := 0; i < n; i++ {
		lsn, err := l.Append(&wal.Record{
			Type:   wal.TypeUpdate,
			TxID:   tx,
			Object: wal.ObjectID(i + 1),
			After:  []byte("payload-payload-payload"),
		})
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	return lsns
}

// TestStableImageSemantics checks the dual-image core: synced bytes
// survive CrashNow, unsynced bytes do not (TornTail off).
func TestStableImageSemantics(t *testing.T) {
	s, err := NewStore(wal.NewMemStore(), Plan{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := wal.NewLog(s) // header write + sync
	if err != nil {
		t.Fatal(err)
	}
	appendRecords(t, l, 1, 3)
	if err := l.Flush(l.Head()); err != nil {
		t.Fatal(err)
	}
	durableHead := l.Head()
	appendRecords(t, l, 1, 2) // volatile: appended, never flushed
	stableBefore := s.StableBytes()

	if _, err := s.CrashNow(); err != nil {
		t.Fatal(err)
	}
	if err := l.Crash(); err != nil {
		t.Fatal(err)
	}
	if got := l.Head(); got != durableHead {
		t.Fatalf("post-crash head = %d, want %d (only synced records survive)", got, durableHead)
	}
	if !bytes.Equal(s.StableBytes(), stableBefore) {
		t.Fatal("stable image changed across a crash with no torn tail")
	}
}

// TestUnsyncedWriteLostWithoutSync makes the volatile window explicit:
// bytes written to the store but never covered by a successful Sync are
// gone after CrashNow.
func TestUnsyncedWriteLostWithoutSync(t *testing.T) {
	s, err := NewStore(wal.NewMemStore(), Plan{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteAt([]byte("never synced"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CrashNow(); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Size(); n != 0 {
		t.Fatalf("device holds %d bytes after crash, want 0 (nothing was synced)", n)
	}
}

// TestCrashAtSyncFreezesDevice verifies the crash schedule: the stable
// image is pinned right after the Nth sync, later syncs fail with
// ErrCrashPoint (marked no-retry), and CrashNow disarms the freeze.
func TestCrashAtSyncFreezesDevice(t *testing.T) {
	s, err := NewStore(wal.NewMemStore(), Plan{CrashAtSync: 2})
	if err != nil {
		t.Fatal(err)
	}
	l, err := wal.NewLog(s) // sync 1: header
	if err != nil {
		t.Fatal(err)
	}
	appendRecords(t, l, 1, 2)
	if err := l.Flush(l.Head()); err != nil { // sync 2: succeeds, then freezes
		t.Fatal(err)
	}
	frozenHead := l.Head()
	appendRecords(t, l, 1, 2)
	ferr := l.Flush(l.Head())
	if !errors.Is(ferr, ErrCrashPoint) {
		t.Fatalf("post-freeze flush error = %v, want ErrCrashPoint", ferr)
	}
	if !errors.Is(ferr, wal.ErrNoRetry) {
		t.Fatal("ErrCrashPoint must be marked wal.ErrNoRetry (sweeps would burn the backoff budget)")
	}
	if !s.Frozen() {
		t.Fatal("store not frozen after its crash schedule fired")
	}

	if _, err := s.CrashNow(); err != nil {
		t.Fatal(err)
	}
	if err := l.Crash(); err != nil {
		t.Fatal(err)
	}
	if got := l.Head(); got != frozenHead {
		t.Fatalf("post-crash head = %d, want %d (the frozen boundary)", got, frozenHead)
	}
	// Disarmed: the device must work again for recovery traffic.
	appendRecords(t, l, 2, 1)
	if err := l.Flush(l.Head()); err != nil {
		t.Fatalf("flush after disarmed crash: %v", err)
	}
}

// TestTornTailReopenStopsCleanly is the torn-write property the
// recovery scan must provide: a crash that persists a partial final
// append yields a device the log re-opens WITHOUT error, recovering
// exactly the complete-frame prefix.  Every possible torn length is a
// legal device state, so the test sweeps seeds until it has seen both a
// mid-frame tear and a clean boundary.
func TestTornTailReopenStopsCleanly(t *testing.T) {
	sawPartial := false
	for seed := int64(0); seed < 64; seed++ {
		// Sync 1 is the header stamp, sync 2 the first flush; the
		// freeze then makes the second flush's write land without its
		// sync — the written-but-unsynced bytes a crash can tear.
		s, err := NewStore(wal.NewMemStore(), Plan{Seed: seed, TornTail: true, CrashAtSync: 2})
		if err != nil {
			t.Fatal(err)
		}
		l, err := wal.NewLog(s)
		if err != nil {
			t.Fatal(err)
		}
		appendRecords(t, l, 1, 2)
		if err := l.Flush(l.Head()); err != nil {
			t.Fatal(err)
		}
		durable := l.Head()
		appendRecords(t, l, 1, 3)
		if err := l.Flush(l.Head()); !errors.Is(err, ErrCrashPoint) {
			t.Fatalf("seed %d: flush into frozen device = %v, want ErrCrashPoint", seed, err)
		}
		stableLen := s.StableSize()

		torn, err := s.CrashNow()
		if err != nil {
			t.Fatal(err)
		}
		if torn > 0 {
			sawPartial = true
		}
		if size, _ := s.Size(); size != stableLen+int64(torn) {
			t.Fatalf("seed %d: device size %d, want stable %d + torn %d", seed, size, stableLen, torn)
		}
		// The log must re-open cleanly whatever the torn length.
		if err := l.Crash(); err != nil {
			t.Fatalf("seed %d: reopen over torn tail (%d bytes): %v", seed, torn, err)
		}
		if head := l.Head(); head < durable {
			t.Fatalf("seed %d: post-crash head %d below durable horizon %d", seed, head, durable)
		}
		// Complete frames in the torn tail may legitimately survive;
		// every surviving record must decode and be readable.
		for lsn := wal.LSN(1); lsn <= l.Head(); lsn++ {
			if _, err := l.Get(lsn); err != nil {
				t.Fatalf("seed %d: surviving record %d unreadable: %v", seed, lsn, err)
			}
		}
	}
	if !sawPartial {
		t.Fatal("no seed produced a torn tail; the torn-write path went unexercised")
	}
}

// TestTransientAndPersistentSyncModes covers the error-injection plan
// knobs the engine's retry/degrade logic is built against.
func TestTransientAndPersistentSyncModes(t *testing.T) {
	s, err := NewStore(wal.NewMemStore(), Plan{TransientSyncErrors: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("sync 1 = %v, want transient failure", err)
	}
	if errors.Is(s.Sync(), nil) {
		t.Fatal("sync 2 should still fail")
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("sync 3 = %v, want success after transient budget", err)
	}
	if got := s.InjectedErrors(); got != 2 {
		t.Fatalf("InjectedErrors = %d, want 2", got)
	}

	s.SetFailAllSyncs(true)
	for i := 0; i < 3; i++ {
		if err := s.Sync(); !errors.Is(err, ErrDeviceFailed) {
			t.Fatalf("persistent sync %d = %v, want ErrDeviceFailed", i, err)
		}
	}
	if errors.Is(ErrDeviceFailed, wal.ErrNoRetry) {
		t.Fatal("persistent failures must look retriable so the retry-then-degrade path is exercised")
	}
	s.SetFailAllSyncs(false)
	if err := s.Sync(); err != nil {
		t.Fatalf("sync after healing = %v", err)
	}
}

// TestFailEveryNthSync checks the periodic transient mode is absorbed
// by a single retry (attempt n fails, attempt n+1 is off-period).
func TestFailEveryNthSync(t *testing.T) {
	s, err := NewStore(wal.NewMemStore(), Plan{FailEveryNthSync: 3})
	if err != nil {
		t.Fatal(err)
	}
	var failures int
	for i := 0; i < 9; i++ {
		if err := s.Sync(); err != nil {
			failures++
			if err2 := s.Sync(); err2 != nil {
				t.Fatalf("sync immediately after periodic failure also failed: %v", err2)
			}
		}
	}
	if failures == 0 {
		t.Fatal("periodic sync failures never fired")
	}
}

// TestDeterministicAcrossRuns replays the same workload against the
// same plan twice and requires byte-identical crash images.
func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []byte {
		s, err := NewStore(wal.NewMemStore(), Plan{Seed: 42, TornTail: true, CrashAtSync: 2})
		if err != nil {
			t.Fatal(err)
		}
		l, err := wal.NewLog(s)
		if err != nil {
			t.Fatal(err)
		}
		appendRecords(t, l, 1, 4)
		if err := l.Flush(l.Head()); err != nil {
			t.Fatal(err)
		}
		appendRecords(t, l, 1, 4)
		_ = l.Flush(l.Head()) // hits the frozen device
		if _, err := s.CrashNow(); err != nil {
			t.Fatal(err)
		}
		return s.StableBytes()
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("identical plans and workloads produced different crash images")
	}
}
