package fault

import (
	"errors"
	"reflect"
	"testing"

	"ariesrh/internal/wal"
)

// appendRecords appends n update records to l and returns their LSNs.
func appendRecords(t *testing.T, l *wal.Log, tx wal.TxID, n int) []wal.LSN {
	t.Helper()
	lsns := make([]wal.LSN, 0, n)
	for i := 0; i < n; i++ {
		lsn, err := l.Append(&wal.Record{
			Type:   wal.TypeUpdate,
			TxID:   tx,
			Object: wal.ObjectID(i + 1),
			After:  []byte("payload-payload-payload"),
		})
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	return lsns
}

// snapshotBytes flattens a MemDir snapshot to name → bytes for equality
// checks.
func snapshotBytes(t *testing.T, d *wal.MemDir) map[string]string {
	t.Helper()
	names, err := d.List()
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string, len(names))
	for _, name := range names {
		dev, err := d.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		size, err := dev.Size()
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, size)
		if size > 0 {
			if _, err := dev.ReadAt(buf, 0); err != nil {
				t.Fatal(err)
			}
		}
		out[name] = string(buf)
	}
	return out
}

// Opening a fresh log costs two syncs (segment-1 header, manifest gen 1);
// the directory's shared schedule counts them, so "crash at the first
// flush" is CrashAtSync: 3.
const initSyncs = 2

// TestDirStableImageSemantics checks the dual-image core across a whole
// directory: synced bytes survive CrashNow, unsynced bytes do not
// (TornTail off).
func TestDirStableImageSemantics(t *testing.T) {
	d := NewDir(Plan{})
	l, err := wal.NewLog(d)
	if err != nil {
		t.Fatal(err)
	}
	appendRecords(t, l, 1, 3)
	if err := l.Flush(l.Head()); err != nil {
		t.Fatal(err)
	}
	durableHead := l.Head()
	appendRecords(t, l, 1, 2) // volatile: appended, never flushed

	_, recs, err := wal.ReadDurable(d.StableDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != int(durableHead) {
		t.Fatalf("stable snapshot holds %d records, want %d", len(recs), durableHead)
	}
	stableBefore := snapshotBytes(t, d.StableDir())

	if _, err := d.CrashNow(); err != nil {
		t.Fatal(err)
	}
	if err := l.Crash(); err != nil {
		t.Fatal(err)
	}
	if got := l.Head(); got != durableHead {
		t.Fatalf("post-crash head = %d, want %d (only synced records survive)", got, durableHead)
	}
	// Recovery over the crashed directory rewrites nothing durable beyond
	// pruning; the surviving records must be byte-identical.
	if !reflect.DeepEqual(snapshotBytes(t, d.StableDir()), stableBefore) {
		t.Fatal("stable image changed across a crash with no torn tail")
	}
}

// TestUnsyncedWriteLostWithoutSync makes the volatile window explicit:
// bytes written to the store but never covered by a successful Sync are
// gone after CrashNow.
func TestUnsyncedWriteLostWithoutSync(t *testing.T) {
	s, err := NewStore(wal.NewMemStore(), Plan{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteAt([]byte("never synced"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CrashNow(); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Size(); n != 0 {
		t.Fatalf("device holds %d bytes after crash, want 0 (nothing was synced)", n)
	}
}

// TestDirCrashAtSyncFreezes verifies the shared crash schedule: the
// directory freezes right after the Nth sync wherever it lands, later
// syncs fail with ErrCrashPoint (marked no-retry), and CrashNow disarms
// the freeze.
func TestDirCrashAtSyncFreezes(t *testing.T) {
	d := NewDir(Plan{CrashAtSync: initSyncs + 1})
	l, err := wal.NewLog(d)
	if err != nil {
		t.Fatal(err)
	}
	appendRecords(t, l, 1, 2)
	if err := l.Flush(l.Head()); err != nil { // sync 3: succeeds, then freezes
		t.Fatal(err)
	}
	frozenHead := l.Head()
	appendRecords(t, l, 1, 2)
	ferr := l.Flush(l.Head())
	if !errors.Is(ferr, ErrCrashPoint) {
		t.Fatalf("post-freeze flush error = %v, want ErrCrashPoint", ferr)
	}
	if !errors.Is(ferr, wal.ErrNoRetry) {
		t.Fatal("ErrCrashPoint must be marked wal.ErrNoRetry (sweeps would burn the backoff budget)")
	}
	if !d.Frozen() {
		t.Fatal("directory not frozen after its crash schedule fired")
	}

	if _, err := d.CrashNow(); err != nil {
		t.Fatal(err)
	}
	if err := l.Crash(); err != nil {
		t.Fatal(err)
	}
	if got := l.Head(); got != frozenHead {
		t.Fatalf("post-crash head = %d, want %d (the frozen boundary)", got, frozenHead)
	}
	// Disarmed: the directory must work again for recovery traffic.
	appendRecords(t, l, 2, 1)
	if err := l.Flush(l.Head()); err != nil {
		t.Fatalf("flush after disarmed crash: %v", err)
	}
}

// TestDirFrozenNamespace pins the namespace half of the crash model:
// past the crash point nothing new can become stable (Open of a fresh
// name is refused), nothing can disappear (Remove is refused), and a
// device created but never synced does not survive CrashNow.
func TestDirFrozenNamespace(t *testing.T) {
	d := NewDir(Plan{CrashAtSync: 1})
	dev, err := d.Open("unsynced")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.WriteAt([]byte("volatile"), 0); err != nil {
		t.Fatal(err)
	}
	synced, err := d.Open("synced")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := synced.WriteAt([]byte("durable"), 0); err != nil {
		t.Fatal(err)
	}
	if err := synced.Sync(); err != nil { // sync 1: succeeds, then freezes
		t.Fatal(err)
	}
	if !d.Frozen() {
		t.Fatal("directory not frozen")
	}
	if _, err := d.Open("fresh-name"); !errors.Is(err, ErrCrashPoint) {
		t.Fatalf("frozen Open of new name = %v, want ErrCrashPoint", err)
	}
	if err := d.Remove("synced"); !errors.Is(err, ErrCrashPoint) {
		t.Fatalf("frozen Remove = %v, want ErrCrashPoint", err)
	}
	if _, err := d.CrashNow(); err != nil {
		t.Fatal(err)
	}
	names, err := d.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "synced" {
		t.Fatalf("post-crash names = %v, want [synced] (never-synced devices vanish)", names)
	}
}

// TestDirTornTailReopenStopsCleanly is the torn-write property the
// recovery scan must provide: a crash that persists a partial final
// append yields a directory the log re-opens WITHOUT error, recovering
// exactly the complete-frame prefix.  Every possible torn length is a
// legal device state, so the test sweeps seeds until it has seen both a
// mid-frame tear and a clean boundary.
func TestDirTornTailReopenStopsCleanly(t *testing.T) {
	sawPartial := false
	for seed := int64(0); seed < 64; seed++ {
		// The freeze after the first flush makes the second flush's write
		// land without its sync — the written-but-unsynced bytes a crash
		// can tear.
		d := NewDir(Plan{Seed: seed, TornTail: true, CrashAtSync: initSyncs + 1})
		l, err := wal.NewLog(d)
		if err != nil {
			t.Fatal(err)
		}
		appendRecords(t, l, 1, 2)
		if err := l.Flush(l.Head()); err != nil {
			t.Fatal(err)
		}
		durable := l.Head()
		appendRecords(t, l, 1, 3)
		if err := l.Flush(l.Head()); !errors.Is(err, ErrCrashPoint) {
			t.Fatalf("seed %d: flush into frozen directory = %v, want ErrCrashPoint", seed, err)
		}

		torn, err := d.CrashNow()
		if err != nil {
			t.Fatal(err)
		}
		if torn > 0 {
			sawPartial = true
		}
		// The log must re-open cleanly whatever the torn length.
		if err := l.Crash(); err != nil {
			t.Fatalf("seed %d: reopen over torn tail (%d bytes): %v", seed, torn, err)
		}
		if head := l.Head(); head < durable {
			t.Fatalf("seed %d: post-crash head %d below durable horizon %d", seed, head, durable)
		}
		// Complete frames in the torn tail may legitimately survive;
		// every surviving record must decode and be readable.
		for lsn := wal.LSN(1); lsn <= l.Head(); lsn++ {
			if _, err := l.Get(lsn); err != nil {
				t.Fatalf("seed %d: surviving record %d unreadable: %v", seed, lsn, err)
			}
		}
	}
	if !sawPartial {
		t.Fatal("no seed produced a torn tail; the torn-write path went unexercised")
	}
}

// TestTransientAndPersistentSyncModes covers the error-injection plan
// knobs the engine's retry/degrade logic is built against.
func TestTransientAndPersistentSyncModes(t *testing.T) {
	s, err := NewStore(wal.NewMemStore(), Plan{TransientSyncErrors: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("sync 1 = %v, want transient failure", err)
	}
	if errors.Is(s.Sync(), nil) {
		t.Fatal("sync 2 should still fail")
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("sync 3 = %v, want success after transient budget", err)
	}
	if got := s.InjectedErrors(); got != 2 {
		t.Fatalf("InjectedErrors = %d, want 2", got)
	}

	s.SetFailAllSyncs(true)
	for i := 0; i < 3; i++ {
		if err := s.Sync(); !errors.Is(err, ErrDeviceFailed) {
			t.Fatalf("persistent sync %d = %v, want ErrDeviceFailed", i, err)
		}
	}
	if errors.Is(ErrDeviceFailed, wal.ErrNoRetry) {
		t.Fatal("persistent failures must look retriable so the retry-then-degrade path is exercised")
	}
	s.SetFailAllSyncs(false)
	if err := s.Sync(); err != nil {
		t.Fatalf("sync after healing = %v", err)
	}
}

// TestFailEveryNthSync checks the periodic transient mode is absorbed
// by a single retry (attempt n fails, attempt n+1 is off-period).
func TestFailEveryNthSync(t *testing.T) {
	s, err := NewStore(wal.NewMemStore(), Plan{FailEveryNthSync: 3})
	if err != nil {
		t.Fatal(err)
	}
	var failures int
	for i := 0; i < 9; i++ {
		if err := s.Sync(); err != nil {
			failures++
			if err2 := s.Sync(); err2 != nil {
				t.Fatalf("sync immediately after periodic failure also failed: %v", err2)
			}
		}
	}
	if failures == 0 {
		t.Fatal("periodic sync failures never fired")
	}
}

// TestDirDeterministicAcrossRuns replays the same workload against the
// same plan twice and requires byte-identical crash images.
func TestDirDeterministicAcrossRuns(t *testing.T) {
	run := func() map[string]string {
		d := NewDir(Plan{Seed: 42, TornTail: true, CrashAtSync: initSyncs + 1})
		l, err := wal.NewLog(d)
		if err != nil {
			t.Fatal(err)
		}
		appendRecords(t, l, 1, 4)
		if err := l.Flush(l.Head()); err != nil {
			t.Fatal(err)
		}
		appendRecords(t, l, 1, 4)
		_ = l.Flush(l.Head()) // hits the frozen directory
		if _, err := d.CrashNow(); err != nil {
			t.Fatal(err)
		}
		return snapshotBytes(t, d.StableDir())
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("identical plans and workloads produced different crash images")
	}
}
