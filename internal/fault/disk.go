package fault

import (
	"sync"
	"time"

	"ariesrh/internal/storage"
)

// DiskPlan describes the fault schedule of a Disk.  Because page writes
// are atomic at page granularity (the DiskManager contract), the only
// crash shapes are "write N and everything after it never happened" —
// there is no torn-page mode.
type DiskPlan struct {
	// CrashAtWrite makes the Nth WritePage call (1-based) and every
	// subsequent write or allocation fail with ErrCrashPoint: the
	// process "died" during write N, which therefore never lands.  0
	// disables the schedule.
	CrashAtWrite uint64

	// FailWrites makes every WritePage fail with ErrDeviceFailed until
	// disarmed with SetFailWrites(false).
	FailWrites bool

	// WriteDelay and DelayEveryNthWrite inject latency spikes: every
	// Nth WritePage sleeps WriteDelay first.  Either zero disables.
	WriteDelay         time.Duration
	DelayEveryNthWrite uint64
}

// Disk wraps a storage.DiskManager with the DiskPlan's fault schedule.
// Reads always pass through (already-written pages stay readable, as on
// a real device whose write path failed); writes and allocations are
// subject to injection.  It is safe for concurrent use and implements
// storage.DiskManager.
type Disk struct {
	mu     sync.Mutex
	inner  storage.DiskManager
	plan   DiskPlan
	writes uint64
	// frozen is set once the crash schedule fires; every later write
	// or allocation fails with ErrCrashPoint.
	frozen   bool
	injected uint64
}

// NewDisk wraps inner with the given fault plan.
func NewDisk(inner storage.DiskManager, plan DiskPlan) *Disk {
	return &Disk{inner: inner, plan: plan}
}

// ReadPage delegates to the wrapped manager; reads are never failed.
func (d *Disk) ReadPage(pid storage.PageID) (*storage.Page, error) {
	return d.inner.ReadPage(pid)
}

// WritePage applies the fault schedule, then delegates.  A write that
// returns an error did not happen: the on-device page is unchanged.
func (d *Disk) WritePage(pid storage.PageID, p *storage.Page) error {
	d.mu.Lock()
	d.writes++
	n := d.writes
	if d.plan.DelayEveryNthWrite > 0 && d.plan.WriteDelay > 0 && n%d.plan.DelayEveryNthWrite == 0 {
		time.Sleep(d.plan.WriteDelay)
	}
	if d.plan.CrashAtWrite > 0 && n >= d.plan.CrashAtWrite {
		d.frozen = true
	}
	if d.frozen {
		d.injected++
		d.mu.Unlock()
		return ErrCrashPoint
	}
	if d.plan.FailWrites {
		d.injected++
		d.mu.Unlock()
		return ErrDeviceFailed
	}
	d.mu.Unlock()
	return d.inner.WritePage(pid, p)
}

// Allocate delegates unless the disk is frozen or failing (growing the
// device is a write).
func (d *Disk) Allocate() (storage.PageID, error) {
	d.mu.Lock()
	if d.frozen {
		d.injected++
		d.mu.Unlock()
		return 0, ErrCrashPoint
	}
	if d.plan.FailWrites {
		d.injected++
		d.mu.Unlock()
		return 0, ErrDeviceFailed
	}
	d.mu.Unlock()
	return d.inner.Allocate()
}

// NumPages delegates to the wrapped manager.
func (d *Disk) NumPages() storage.PageID { return d.inner.NumPages() }

// Stats delegates to the wrapped manager.
func (d *Disk) Stats() storage.DiskStats { return d.inner.Stats() }

// Close closes the wrapped manager.
func (d *Disk) Close() error { return d.inner.Close() }

// CrashNow disarms the crash schedule so the device works again after
// the simulated restart.  Unlike the log store there is no image to
// rewind: rejected page writes never reached the device.
func (d *Disk) CrashNow() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.frozen = false
	d.plan.CrashAtWrite = 0
}

// SetFailWrites arms or disarms the persistent write-failure mode.
func (d *Disk) SetFailWrites(on bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.plan.FailWrites = on
}

// Writes returns the number of WritePage attempts observed.
func (d *Disk) Writes() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writes
}

// InjectedErrors returns the number of write/allocate errors injected.
func (d *Disk) InjectedErrors() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.injected
}

// Frozen reports whether the crash schedule has fired.
func (d *Disk) Frozen() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.frozen
}
