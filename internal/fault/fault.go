// Package fault provides deterministic fault injection for the two
// stable devices the engine writes: the log store (wal.Store) and the
// page store (storage.DiskManager).
//
// The central abstraction is the dual image: a fault.Store tracks both
// the working contents of the wrapped device (everything written) and
// the stable image (the contents as of the last successful Sync).  A
// simulated crash (CrashNow) rewinds the device to the stable image,
// optionally extended by a seeded torn prefix of the unsynced tail —
// exactly the set of states a real disk can present after power loss,
// given that the WAL appends sequentially and syncs in prefix order.
//
// Faults are described by a Plan and are fully deterministic: the same
// plan and the same workload produce the same injected errors, the same
// crash image and the same torn-tail length.  Schedules are enumerable —
// a probe run counts the sync boundaries of a workload, then one run
// per boundary crashes at each (see internal/torture).
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ariesrh/internal/wal"
)

// ErrCrashPoint is the error injected once a crash schedule triggers:
// the device is frozen (no further bytes can become stable) and every
// subsequent Sync fails with it until CrashNow materializes the crash.
// It wraps wal.ErrNoRetry — retrying a crash is pointless, and skipping
// the backoff keeps enumerated crash sweeps fast.
var ErrCrashPoint = fmt.Errorf("fault: injected crash point (%w)", wal.ErrNoRetry)

// ErrInjectedSync is the transient sync failure injected by
// TransientSyncErrors / FailEveryNthSync plans.  It does not wrap
// wal.ErrNoRetry: the WAL's bounded-backoff retry is expected to absorb
// it.
var ErrInjectedSync = errors.New("fault: injected transient sync failure")

// ErrDeviceFailed is the persistent device failure injected while
// FailAllSyncs is armed.  Deliberately not marked wal.ErrNoRetry: a
// real dying device looks transient until the retry budget is spent, so
// this exercises the full retry-then-degrade path.
var ErrDeviceFailed = errors.New("fault: injected persistent device failure")

// Plan describes the fault schedule of a Store.  The zero Plan injects
// nothing: the wrapper then only tracks the stable/working split, which
// is itself useful (StableBytes exposes exactly what a crash would
// preserve).
type Plan struct {
	// Seed drives every random choice the injector makes (currently
	// the torn-tail length).  Runs with equal seeds and workloads are
	// byte-identical.
	Seed int64

	// CrashAtSync freezes the device immediately after the Nth Sync
	// call returns (1-based, counting every attempt): the stable image
	// is pinned at that boundary and later Syncs fail with
	// ErrCrashPoint.  0 disables the schedule.
	CrashAtSync uint64

	// TornTail, when set, makes CrashNow persist a seeded-length
	// prefix of the unsynced appended tail instead of dropping it
	// whole — the torn-write case a real disk can produce.
	TornTail bool

	// TransientSyncErrors makes the first N Sync calls fail with
	// ErrInjectedSync before the device starts behaving.
	TransientSyncErrors int

	// FailEveryNthSync makes every Nth Sync attempt (1-based, counting
	// every attempt including retries) fail once with ErrInjectedSync.
	// With a retry budget ≥ 1 and N ≥ 2 every episode is absorbed.
	FailEveryNthSync uint64

	// FailAllSyncs makes every Sync fail with ErrDeviceFailed until
	// disarmed with SetFailAllSyncs(false).
	FailAllSyncs bool

	// SyncDelay and DelayEveryNthSync inject latency spikes: every Nth
	// Sync sleeps SyncDelay before proceeding.  Either zero disables.
	SyncDelay         time.Duration
	DelayEveryNthSync uint64
}

// Store wraps a wal.Store with the Plan's fault schedule.  It is safe
// for concurrent use and implements wal.Store.
//
// Crash-safety model: Store mirrors the wrapped device into a working
// image, and snapshots it into a stable image on every successful Sync.
// CrashNow rewinds the wrapped device to the stable image (plus an
// optional torn tail), which is precisely the durability contract a
// wal.Store promises — synced bytes survive, unsynced bytes may not.
type Store struct {
	mu    sync.Mutex
	inner wal.Store
	plan  Plan
	rng   *rand.Rand

	working []byte // device contents as written
	stable  []byte // device contents as of the last successful Sync
	// overwrote is set when an unsynced write (or truncation) touched
	// bytes inside the stable image.  The torn-tail model only applies
	// to pure appends; if stable bytes were overwritten, CrashNow
	// conservatively drops the whole unsynced delta.
	overwrote bool
	// frozen is set once a CrashAtSync schedule fires: the stable
	// image can no longer advance.
	frozen bool

	transientLeft int

	syncs    uint64
	writes   uint64
	injected uint64
	torn     uint64
}

// NewStore wraps inner with the given fault plan.  Any contents already
// on inner are adopted as both the working and the stable image.
func NewStore(inner wal.Store, plan Plan) (*Store, error) {
	s := &Store{
		inner:         inner,
		plan:          plan,
		rng:           rand.New(rand.NewSource(plan.Seed)),
		transientLeft: plan.TransientSyncErrors,
	}
	size, err := inner.Size()
	if err != nil {
		return nil, fmt.Errorf("fault: size of wrapped store: %w", err)
	}
	if size > 0 {
		buf := make([]byte, size)
		if _, err := inner.ReadAt(buf, 0); err != nil {
			return nil, fmt.Errorf("fault: read wrapped store: %w", err)
		}
		s.working = buf
		s.stable = append([]byte(nil), buf...)
	}
	return s, nil
}

// ReadAt implements io.ReaderAt by delegating to the wrapped device.
func (s *Store) ReadAt(p []byte, off int64) (int, error) { return s.inner.ReadAt(p, off) }

// WriteAt implements io.WriterAt.  The bytes land on the wrapped device
// and in the working image but are not durable until the next
// successful Sync: a CrashNow before then loses them (modulo a torn
// tail).
func (s *Store) WriteAt(p []byte, off int64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("fault: negative offset %d", off)
	}
	s.writes++
	if off < int64(len(s.stable)) {
		s.overwrote = true
	}
	end := off + int64(len(p))
	if end > int64(len(s.working)) {
		grown := make([]byte, end)
		copy(grown, s.working)
		s.working = grown
	}
	copy(s.working[off:], p)
	return s.inner.WriteAt(p, off)
}

// Size returns the size of the wrapped device.
func (s *Store) Size() (int64, error) { return s.inner.Size() }

// Truncate shrinks the device.  Like a write, the truncation is only
// durable after a successful Sync; truncating into the stable image
// counts as an overwrite for the torn-tail model.
func (s *Store) Truncate(size int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if size < int64(len(s.stable)) {
		s.overwrote = true
	}
	if size >= 0 && size < int64(len(s.working)) {
		s.working = s.working[:size]
	}
	return s.inner.Truncate(size)
}

// Sync implements the fault schedule.  On success the working image
// becomes the new stable image; on injected failure nothing becomes
// durable and the appropriate sentinel is returned.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncs++
	n := s.syncs
	if s.plan.DelayEveryNthSync > 0 && s.plan.SyncDelay > 0 && n%s.plan.DelayEveryNthSync == 0 {
		time.Sleep(s.plan.SyncDelay)
	}
	if s.frozen {
		s.injected++
		return ErrCrashPoint
	}
	if s.plan.FailAllSyncs {
		s.injected++
		return ErrDeviceFailed
	}
	if s.transientLeft > 0 {
		s.transientLeft--
		s.injected++
		return ErrInjectedSync
	}
	if s.plan.FailEveryNthSync > 0 && n%s.plan.FailEveryNthSync == 0 {
		s.injected++
		return ErrInjectedSync
	}
	if err := s.inner.Sync(); err != nil {
		return err
	}
	s.stable = append(s.stable[:0], s.working...)
	s.overwrote = false
	if s.plan.CrashAtSync > 0 && n >= s.plan.CrashAtSync {
		s.frozen = true
	}
	return nil
}

// Close closes the wrapped device.
func (s *Store) Close() error { return s.inner.Close() }

// CrashNow materializes a crash: the wrapped device is rewound to the
// stable image, extended — if the plan asks for torn tails and the
// unsynced delta is a pure append — by a seeded-length prefix of that
// delta.  It returns the number of torn bytes persisted.  The crash
// schedule (CrashAtSync freeze) is disarmed so the device works again
// afterwards, mirroring a restart on healthy hardware; persistent
// failure modes (FailAllSyncs) stay armed.
func (s *Store) CrashNow() (tornBytes int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.frozen = false
	s.plan.CrashAtSync = 0
	img := append([]byte(nil), s.stable...)
	if s.plan.TornTail && !s.overwrote && len(s.working) > len(s.stable) {
		tail := s.working[len(s.stable):]
		keep := s.rng.Intn(len(tail) + 1)
		img = append(img, tail[:keep]...)
		tornBytes = keep
		if keep > 0 {
			s.torn++
		}
	}
	if err := s.inner.Truncate(0); err != nil {
		return 0, fmt.Errorf("fault: crash truncate: %w", err)
	}
	if len(img) > 0 {
		if _, err := s.inner.WriteAt(img, 0); err != nil {
			return 0, fmt.Errorf("fault: crash rewrite: %w", err)
		}
	}
	// What is on the device after the crash IS the durable state.
	s.working = img
	s.stable = append([]byte(nil), img...)
	s.overwrote = false
	return tornBytes, nil
}

// SetFailAllSyncs arms or disarms the persistent-failure mode at
// runtime (e.g. to kill the device mid-workload and heal it later).
func (s *Store) SetFailAllSyncs(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.plan.FailAllSyncs = on
}

// SetTransientSyncErrors arms n further transient sync failures.
func (s *Store) SetTransientSyncErrors(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.transientLeft = n
}

// Syncs returns the number of Sync attempts observed (including failed
// ones).  A fault-free probe run's count enumerates the sync boundaries
// of a workload.
func (s *Store) Syncs() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncs
}

// Writes returns the number of WriteAt calls observed.
func (s *Store) Writes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writes
}

// InjectedErrors returns the number of sync errors injected so far.
func (s *Store) InjectedErrors() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.injected
}

// TornCrashes returns the number of CrashNow calls that persisted a
// non-empty torn tail.
func (s *Store) TornCrashes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.torn
}

// Frozen reports whether a crash schedule has fired (the stable image
// is pinned and syncs fail with ErrCrashPoint).
func (s *Store) Frozen() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.frozen
}

// StableBytes returns a copy of the stable image: exactly the bytes a
// crash at this moment would preserve.  For a segment image, decoding it
// with wal.DecodeRecord (after skipping wal.SegmentHeaderSize) yields
// the durable records independently of any engine state.
func (s *Store) StableBytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.stable...)
}

// StableSize returns the size of the stable image in bytes.
func (s *Store) StableSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.stable))
}

// StableSince returns a copy of the stable image from byte offset off
// on — the incremental form of StableBytes for callers that decode the
// durable log as it grows.
func (s *Store) StableSince(off int64) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if off < 0 || off > int64(len(s.stable)) {
		return nil
	}
	return append([]byte(nil), s.stable[off:]...)
}
