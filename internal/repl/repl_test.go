package repl

import (
	"errors"
	"net"
	"testing"
	"time"

	"ariesrh/internal/core"
	"ariesrh/internal/wal"
)

func newPrimaryEngine(t *testing.T) *core.Engine {
	t.Helper()
	e, err := core.New(core.Options{GroupCommit: core.GroupCommitOff})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func newFollowerEngine(t *testing.T) *core.Engine {
	t.Helper()
	e, err := core.New(core.Options{Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// startStream wires a primary and replica together over an in-process
// pipe and returns the replica-side conn closer for forced disconnects.
func startStream(t *testing.T, p *Primary, r *Replica) (disconnect func(), serveDone, followDone chan error) {
	t.Helper()
	c1, c2 := net.Pipe()
	serveDone = make(chan error, 1)
	followDone = make(chan error, 1)
	go func() { serveDone <- p.Serve(c1) }()
	go func() { followDone <- r.Follow(c2) }()
	return func() { c2.Close() }, serveDone, followDone
}

func waitCaughtUp(t *testing.T, eng *core.Engine, r *Replica) {
	t.Helper()
	target := eng.Log().FlushedLSN()
	deadline := time.Now().Add(5 * time.Second)
	for r.Engine().ReplayedLSN() < target {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at %d, want %d", r.Engine().ReplayedLSN(), target)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestReplicationEndToEnd(t *testing.T) {
	p := newPrimaryEngine(t)
	prim, err := NewPrimary(p)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplica(newFollowerEngine(t))
	if err != nil {
		t.Fatal(err)
	}
	_, _, _ = startStream(t, prim, rep)

	// A delegation-heavy workload streamed live: t1's update travels to
	// the committed t2; t3 stays in flight.
	t1, _ := p.Begin()
	t2, _ := p.Begin()
	t3, _ := p.Begin()
	for _, step := range []error{
		p.Update(t1, 1, []byte("a1")),
		p.Update(t2, 2, []byte("b1")),
		p.Delegate(t1, t2, 1),
		p.Commit(t2),
		p.Update(t3, 3, []byte("c1")),
	} {
		if step != nil {
			t.Fatal(step)
		}
	}
	if err := p.Log().Flush(p.Log().Head()); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, p, rep)

	// Consistent reads at the replayed LSN see the full replayed state.
	for obj, want := range map[wal.ObjectID]string{1: "a1", 2: "b1", 3: "c1"} {
		v, ok, at, err := rep.Read(obj)
		if err != nil || !ok || string(v) != want {
			t.Fatalf("replica read(%d) = %q, %v, %v", obj, v, ok, err)
		}
		if at != rep.Engine().ReplayedLSN() {
			t.Fatalf("read at %d, replayed %d", at, rep.Engine().ReplayedLSN())
		}
	}

	// Health and lag: once caught up and acked, the primary's gauges
	// settle at zero and the counters account for the whole stream.
	deadline := time.Now().Add(5 * time.Second)
	for prim.AckedLSN() < p.Log().FlushedLSN() {
		if time.Now().After(deadline) {
			t.Fatalf("acks stuck at %v, want %v", prim.AckedLSN(), p.Log().FlushedLSN())
		}
		time.Sleep(time.Millisecond)
	}
	snap := p.Metrics()
	if n := snap.Counter("repl.shipped_records"); n < uint64(p.Log().FlushedLSN()) {
		t.Fatalf("shipped_records = %d, want >= %d", n, p.Log().FlushedLSN())
	}
	if snap.Counter("repl.shipped_bytes") == 0 {
		t.Fatal("shipped_bytes = 0")
	}
	if lag := snap.Gauge("repl.lag_records"); lag != 0 {
		t.Fatalf("lag_records = %d after full ack", lag)
	}
	h := rep.Health()
	if h.ReplayedLSN != p.Log().FlushedLSN() || h.DurableLSN != h.ReplayedLSN || h.LagRecords != 0 {
		t.Fatalf("health = %+v (primary flushed %d)", h, p.Log().FlushedLSN())
	}
}

func TestReplicaCatchUpAfterDisconnect(t *testing.T) {
	p := newPrimaryEngine(t)
	prim, err := NewPrimary(p)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplica(newFollowerEngine(t))
	if err != nil {
		t.Fatal(err)
	}
	disconnect, serveDone, followDone := startStream(t, prim, rep)

	t1, _ := p.Begin()
	if err := p.Update(t1, 1, []byte("before")); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(t1); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, p, rep)
	acked := prim.AckedLSN()
	if acked == wal.NilLSN {
		t.Fatal("no ack before disconnect")
	}

	// Force a disconnect; both loops terminate.
	disconnect()
	<-serveDone
	<-followDone

	// While disconnected the primary keeps working — and keeps the
	// unacked suffix safe from Archive.
	t2, _ := p.Begin()
	if err := p.Update(t2, 2, []byte("during")); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(t2); err != nil {
		t.Fatal(err)
	}
	if err := p.Log().Flush(p.Log().Head()); err != nil {
		t.Fatal(err)
	}
	if err := p.Log().Archive(p.Log().FlushedLSN()); err != nil {
		t.Fatal(err)
	}
	if base := p.Log().Base(); base > acked {
		t.Fatalf("Archive discarded past the replica's ack: base %d > acked %d", base, acked)
	}

	// Reconnect: the replica resumes from its own durable head.
	_, _, _ = startStream(t, prim, rep)
	waitCaughtUp(t, p, rep)
	if v, ok, _, err := rep.Read(2); err != nil || !ok || string(v) != "during" {
		t.Fatalf("post-reconnect read = %q, %v, %v", v, ok, err)
	}
}

func TestFollowSnapshotNeeded(t *testing.T) {
	p := newPrimaryEngine(t)
	t1, _ := p.Begin()
	if err := p.Update(t1, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(t1); err != nil {
		t.Fatal(err)
	}
	if err := p.Log().Flush(p.Log().Head()); err != nil {
		t.Fatal(err)
	}
	if err := p.Log().Archive(p.Log().FlushedLSN()); err != nil {
		t.Fatal(err)
	}
	// Attach AFTER archiving: a fresh (empty) replica's cursor (LSN 1)
	// is below the base, so the stream cannot help it.
	prim, err := NewPrimary(p)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplica(newFollowerEngine(t))
	if err != nil {
		t.Fatal(err)
	}
	_, serveDone, followDone := startStream(t, prim, rep)
	if err := <-followDone; !errors.Is(err, ErrSnapshotNeeded) {
		t.Fatalf("Follow = %v, want ErrSnapshotNeeded", err)
	}
	if err := <-serveDone; !errors.Is(err, wal.ErrArchived) {
		t.Fatalf("Serve = %v, want ErrArchived", err)
	}
}

func TestPrimaryCloseReleasesPin(t *testing.T) {
	p := newPrimaryEngine(t)
	prim, err := NewPrimary(p)
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := p.Begin()
	if err := p.Update(t1, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(t1); err != nil {
		t.Fatal(err)
	}
	if err := p.Log().Flush(p.Log().Head()); err != nil {
		t.Fatal(err)
	}
	// Pinned: nothing may be archived.
	if err := p.Log().Archive(p.Log().FlushedLSN()); err != nil {
		t.Fatal(err)
	}
	if p.Log().Base() != 0 {
		t.Fatalf("archived despite pin: base %d", p.Log().Base())
	}
	prim.Close()
	prim.Close() // idempotent
	if err := p.Log().Archive(p.Log().FlushedLSN()); err != nil {
		t.Fatal(err)
	}
	if p.Log().Base() == 0 {
		t.Fatal("pin survived Close")
	}
}

// TestPromoteAfterStream is the subsystem's headline: stream a
// delegation workload, kill the connection, promote the replica, and the
// promoted state matches what the crashed primary itself would recover
// to.
func TestPromoteAfterStream(t *testing.T) {
	p := newPrimaryEngine(t)
	prim, err := NewPrimary(p)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplica(newFollowerEngine(t))
	if err != nil {
		t.Fatal(err)
	}
	disconnect, serveDone, followDone := startStream(t, prim, rep)

	t1, _ := p.Begin()
	t2, _ := p.Begin()
	t3, _ := p.Begin()
	for _, step := range []error{
		p.Update(t1, 1, []byte("a1")),
		p.Delegate(t1, t2, 1),
		p.Commit(t2),
		p.Update(t3, 3, []byte("c1")),
		p.Update(t1, 4, []byte("d1")),
	} {
		if step != nil {
			t.Fatal(step)
		}
	}
	if err := p.Log().Flush(p.Log().Head()); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, p, rep)
	disconnect()
	<-serveDone
	<-followDone

	eng, err := rep.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := p.Recover(); err != nil {
		t.Fatal(err)
	}
	for obj := wal.ObjectID(1); obj <= 4; obj++ {
		pv, pok, err := p.ReadObject(obj)
		if err != nil {
			t.Fatal(err)
		}
		fv, fok, err := eng.ReadObject(obj)
		if err != nil {
			t.Fatal(err)
		}
		if pok != fok || string(pv) != string(fv) {
			t.Fatalf("object %d: promoted %q/%v vs recovered %q/%v", obj, fv, fok, pv, pok)
		}
	}
	tx, err := eng.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Update(tx, 9, []byte("new-primary")); err != nil {
		t.Fatal(err)
	}
	if err := eng.Commit(tx); err != nil {
		t.Fatal(err)
	}
}
