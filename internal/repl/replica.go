package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"ariesrh/internal/core"
	"ariesrh/internal/obs"
	"ariesrh/internal/wal"
)

// ErrSnapshotNeeded is returned by Follow when the primary has archived
// the records this replica's cursor points at: incremental catch-up is
// impossible and the replica must be rebuilt from a fresh backup of the
// primary (see ariesrh.DB.Backup / OpenStandby).
var ErrSnapshotNeeded = errors.New("repl: replica cursor is archived on the primary; bootstrap from a fresh backup")

// ErrNotFollower is returned by NewReplica for an engine that is not in
// follower mode.
var ErrNotFollower = errors.New("repl: engine is not a follower")

// Replica is the receiving side of replication: it feeds shipped records
// into a follower-mode engine (continuous analysis + redo — updates land
// on pages, delegate records rewrite the live Ob_List scopes), makes them
// durable in its local log, and acknowledges the durable LSN upstream.
type Replica struct {
	eng *core.Engine

	mu          sync.Mutex
	primaryLSN  wal.LSN // primary's flushed LSN as of the last records message
	lagRecords  *obs.Gauge
	appliedMsgs uint64
}

// NewReplica wraps a follower engine (core.Options.Follower).
func NewReplica(eng *core.Engine) (*Replica, error) {
	if !eng.IsFollower() {
		return nil, ErrNotFollower
	}
	return &Replica{
		eng:        eng,
		lagRecords: eng.Registry().Gauge("repl.lag_records"),
	}, nil
}

// Engine returns the underlying follower engine (for reads at the
// replayed LSN and for Promote).
func (r *Replica) Engine() *core.Engine { return r.eng }

// Follow connects to a primary over rw and streams until the connection
// fails or the primary reports an error.  The hello carries this
// replica's LSN cursor — its local log head plus one — so a reconnect
// after a disconnect resumes exactly where the durable prefix ends.
// Records are applied, forced to the local log, and acknowledged; the
// primary releases retained log space only up to what is durable HERE.
func (r *Replica) Follow(rw io.ReadWriter) error {
	if err := writeLSNMsg(rw, msgHello, r.eng.Log().Head()+1); err != nil {
		return err
	}
	for {
		kind, payload, err := readMsg(rw)
		if err != nil {
			return err
		}
		switch kind {
		case msgRecords:
			if len(payload) < 8 {
				return fmt.Errorf("repl: short records message (%d bytes)", len(payload))
			}
			primaryLSN := wal.LSN(binary.LittleEndian.Uint64(payload))
			recs, err := decodeRecords(payload[8:])
			if err != nil {
				return err
			}
			if len(recs) > 0 {
				if err := r.eng.FollowerApply(recs); err != nil {
					return err
				}
				durable, err := r.eng.FollowerFlush()
				if err != nil {
					return err
				}
				if err := writeLSNMsg(rw, msgAck, durable); err != nil {
					return err
				}
			}
			r.mu.Lock()
			r.primaryLSN = primaryLSN
			r.appliedMsgs++
			r.mu.Unlock()
			lag := int64(0)
			if replayed := r.eng.ReplayedLSN(); primaryLSN > replayed {
				lag = int64(primaryLSN - replayed)
			}
			r.lagRecords.Set(lag)
		case msgError:
			if len(payload) >= 1 && payload[0] == errCodeSnapshotNeeded {
				return fmt.Errorf("%w: %s", ErrSnapshotNeeded, payload[1:])
			}
			detail := payload
			if len(detail) >= 1 {
				detail = detail[1:]
			}
			return fmt.Errorf("repl: primary error: %s", detail)
		default:
			return fmt.Errorf("repl: unexpected message kind %d from primary", kind)
		}
	}
}

// Health describes the replica's position in the stream.
type Health struct {
	// ReplayedLSN is the consistency point reads are served at.
	ReplayedLSN wal.LSN
	// DurableLSN is how far the local log is forced; it bounds what this
	// replica has acknowledged.
	DurableLSN wal.LSN
	// PrimaryLSN is the primary's flushed LSN as of the last records
	// message (NilLSN before the first).
	PrimaryLSN wal.LSN
	// LagRecords is max(0, PrimaryLSN - ReplayedLSN).
	LagRecords uint64
}

// Health returns the replica's current watermarks.
func (r *Replica) Health() Health {
	r.mu.Lock()
	primary := r.primaryLSN
	r.mu.Unlock()
	h := Health{
		ReplayedLSN: r.eng.ReplayedLSN(),
		DurableLSN:  r.eng.Log().FlushedLSN(),
		PrimaryLSN:  primary,
	}
	if primary > h.ReplayedLSN {
		h.LagRecords = uint64(primary - h.ReplayedLSN)
	}
	return h
}

// Read returns obj's value and the replayed LSN it is consistent with.
func (r *Replica) Read(obj wal.ObjectID) ([]byte, bool, wal.LSN, error) {
	return r.eng.FollowerRead(obj)
}

// Promote runs the engine's promotion — recovery's backward pass over the
// follower's live analysis state — and returns the promoted engine, now a
// primary accepting writes.  Stop Follow (disconnect the transport)
// before promoting.
func (r *Replica) Promote() (*core.Engine, error) {
	if err := r.eng.Promote(); err != nil {
		return nil, err
	}
	return r.eng, nil
}
